#!/usr/bin/env bash
# SupMR correctness gate: plain tier-1 build + TSan + ASan+UBSan.
#
# Stages:
#   plain — full build, full ctest (the tier-1 gate from ROADMAP.md)
#   tsan  — -DSUPMR_SANITIZE=thread,           ctest -L sanitizer
#   asan  — -DSUPMR_SANITIZE=address,undefined, ctest -L sanitizer
#
# Usage:
#   tools/check.sh            # all three stages
#   tools/check.sh tsan       # one stage
#   JOBS=8 tools/check.sh     # override parallelism
#
# Each stage uses its own build tree (build-check-<stage>), so repeat runs
# are incremental. Suppression files (empty by default) are wired from
# tools/sanitizers/; sanitizer reports fail the run.
set -euo pipefail

ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
JOBS="${JOBS:-$(nproc)}"
SUPP="${ROOT}/tools/sanitizers"
STAGES=("$@")
[ ${#STAGES[@]} -eq 0 ] && STAGES=(plain tsan asan)

configure_and_build() {
  local dir="$1"; shift
  cmake -B "${dir}" -S "${ROOT}" "$@" >/dev/null
  cmake --build "${dir}" -j "${JOBS}"
}

run_stage() {
  local stage="$1"
  echo "==> stage: ${stage}"
  case "${stage}" in
    plain)
      configure_and_build "${ROOT}/build-check-plain"
      (cd "${ROOT}/build-check-plain" && ctest --output-on-failure -j "${JOBS}")
      ;;
    tsan)
      configure_and_build "${ROOT}/build-check-tsan" \
        -DSUPMR_SANITIZE=thread -DSUPMR_BUILD_BENCH=OFF \
        -DSUPMR_BUILD_EXAMPLES=OFF
      (cd "${ROOT}/build-check-tsan" &&
        TSAN_OPTIONS="suppressions=${SUPP}/tsan.supp halt_on_error=1 second_deadlock_stack=1" \
        ctest -L sanitizer --output-on-failure -j "${JOBS}")
      ;;
    asan)
      configure_and_build "${ROOT}/build-check-asan" \
        -DSUPMR_SANITIZE=address,undefined -DSUPMR_BUILD_BENCH=OFF \
        -DSUPMR_BUILD_EXAMPLES=OFF
      (cd "${ROOT}/build-check-asan" &&
        ASAN_OPTIONS="suppressions=${SUPP}/asan.supp detect_leaks=1" \
        LSAN_OPTIONS="suppressions=${SUPP}/lsan.supp" \
        UBSAN_OPTIONS="suppressions=${SUPP}/ubsan.supp print_stacktrace=1" \
        ctest -L sanitizer --output-on-failure -j "${JOBS}")
      ;;
    *)
      echo "unknown stage '${stage}' (want plain, tsan, or asan)" >&2
      return 2
      ;;
  esac
  echo "==> stage ${stage}: OK"
}

for stage in "${STAGES[@]}"; do
  run_stage "${stage}"
done
echo "==> all stages passed"
