#!/usr/bin/env bash
# SupMR correctness gate: plain tier-1 build + TSan + ASan+UBSan.
#
# Stages:
#   plain     — full build, full ctest (the tier-1 gate from ROADMAP.md)
#   tsan      — -DSUPMR_SANITIZE=thread,           ctest -L sanitizer
#   asan      — -DSUPMR_SANITIZE=address,undefined, ctest -L sanitizer
#   obs-smoke — run the quickstart with --metrics-json/--trace-out and
#               validate both emitted files; then compile-check the
#               -DSUPMR_OBS=OFF configuration (macros must vanish cleanly)
#   fault-smoke — quickstart under a seeded transient FaultPlan must
#               succeed with storage.retries > 0 in the metrics; under a
#               permanent plan it must exit non-zero with a clean JSON
#               error report on stdout
#   coverage  — --coverage build + unit/sanitizer-labeled ctest, then line
#               coverage for the merge (src/merge/) and container
#               (src/containers/) layers via gcovr when installed, else
#               tools/coverage_summary.py (plain gcov). Fails if either
#               layer drops below its branch-point floor (COVERAGE_FLOOR_*)
#   harness   — e2e oracle-conformance harness (docs/testing.md): ctest -L
#               harness, then the mutation smoke — both checked-in repro
#               specs must replay clean AND report "conformance: FAIL"
#               under their seeded SUPMR_TEST_MUTATION, proving the
#               differential harness can actually catch an injected bug
#   harness-asan — the harness suite under ASan+UBSan
#   jobmix-smoke — the multi-tenant runtime's concurrent-jobs suites
#               (ctest -L jobmix: JobManager unit tests, the managed
#               conformance harness with racing tenants, the seeded
#               JobManager stress, and the `supmr serve` CLI smoke)
#               under ThreadSanitizer
#   graph-smoke — the chained-app JobGraph suites (ctest -L graph: DAG
#               validation + handoff unit tests and the pmi/tfidf/msort
#               differential lattice) under ThreadSanitizer, then the
#               checked-in graph spec through the instrumented
#               `supmr graph` CLI — must report "conformance: PASS"
#   combining-smoke — the in-mapper combining container suites (ctest -L
#               combining: the differential/SchedFuzz property suite and
#               the checked-in combining replay spec) under
#               ThreadSanitizer, then that spec through the instrumented
#               CLI — must report "conformance: PASS"
#   cluster-smoke — the sharded-shuffle suites (ctest -L cluster: the
#               shuffle protocol/property suite and the node-count ×
#               mode × merge differential lattice) under ThreadSanitizer
#               (N worker nodes run concurrently on private pools), then
#               the checked-in cluster spec through the instrumented
#               `supmr cluster` CLI — must report "conformance: PASS"
#
# Usage:
#   tools/check.sh            # all stages
#   tools/check.sh tsan       # one stage
#   JOBS=8 tools/check.sh     # override parallelism
#
# Each stage uses its own build tree (build-check-<stage>), so repeat runs
# are incremental. Suppression files (empty by default) are wired from
# tools/sanitizers/; sanitizer reports fail the run.
set -euo pipefail

ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
JOBS="${JOBS:-$(nproc)}"
SUPP="${ROOT}/tools/sanitizers"
STAGES=("$@")
[ ${#STAGES[@]} -eq 0 ] &&
  STAGES=(plain tsan asan obs-smoke fault-smoke coverage harness harness-asan
    jobmix-smoke graph-smoke combining-smoke cluster-smoke)

# Branch-point line-coverage floors for the merge-critical layers (the
# coverage stage fails if a change lets these regress).
COVERAGE_FLOOR_MERGE="${COVERAGE_FLOOR_MERGE:-97.5}"
COVERAGE_FLOOR_CONTAINERS="${COVERAGE_FLOOR_CONTAINERS:-97.5}"
COVERAGE_FLOOR_CLUSTER="${COVERAGE_FLOOR_CLUSTER:-97.5}"

# Validate that a file exists, is non-empty, and parses as JSON. Uses
# python3's parser when present; otherwise falls back to a shape check so
# the stage still catches empty/truncated output on minimal hosts.
validate_json_file() {
  local f="$1"
  [ -s "${f}" ] || { echo "check: ${f} missing or empty" >&2; return 1; }
  if command -v python3 >/dev/null 2>&1; then
    python3 -m json.tool "${f}" >/dev/null ||
      { echo "check: ${f} is not valid JSON" >&2; return 1; }
  else
    local first last
    first="$(head -c1 "${f}")"
    last="$(tail -c2 "${f}" | tr -d '\n')"
    { [ "${first}" = "{" ] && [ "${last}" = "}" ]; } ||
      { echo "check: ${f} does not look like a JSON object" >&2; return 1; }
  fi
}

configure_and_build() {
  local dir="$1"; shift
  cmake -B "${dir}" -S "${ROOT}" "$@" >/dev/null
  cmake --build "${dir}" -j "${JOBS}"
}

# Mutation-testing smoke for the conformance harness: each checked-in repro
# spec must replay clean, and must report "conformance: FAIL" when its
# seeded mutation is switched on. An injected comparator/routing bug that
# the harness does NOT flag means the oracle comparison is broken.
mutation_smoke() {
  local cli="$1"
  local specs="${ROOT}/tests/harness"
  "${cli}" replay "${specs}/replay_pway_smoke.json" |
    grep -q 'conformance: PASS' ||
    { echo "harness: pway smoke spec does not replay clean" >&2; return 1; }
  "${cli}" replay "${specs}/replay_partitioned_smoke.json" |
    grep -q 'conformance: PASS' ||
    { echo "harness: partitioned smoke spec does not replay clean" >&2
      return 1; }
  # io=mmap cell: zero-copy borrowed views must match the oracle too.
  "${cli}" replay "${specs}/replay_mmap_smoke.json" |
    grep -q 'conformance: PASS' ||
    { echo "harness: mmap smoke spec does not replay clean" >&2; return 1; }
  # container=combining cell: the emit-time fold must be invisible against
  # the oracle's default-container run.
  "${cli}" replay "${specs}/replay_combining_smoke.json" |
    grep -q 'conformance: PASS' ||
    { echo "harness: combining smoke spec does not replay clean" >&2
      return 1; }
  # The mutated replays exit non-zero BY DESIGN, so capture output first
  # (a plain pipeline would trip pipefail even when grep matches) and
  # assert on the explicit verdict string.
  local out
  out="$(SUPMR_TEST_MUTATION=pway-comparator \
    "${cli}" replay "${specs}/replay_pway_smoke.json" 2>/dev/null || true)"
  grep -q 'conformance: FAIL' <<<"${out}" ||
    { echo "harness: pway-comparator mutation was NOT detected" >&2
      return 1; }
  out="$(SUPMR_TEST_MUTATION=partition-routing \
    "${cli}" replay "${specs}/replay_partitioned_smoke.json" 2>/dev/null ||
    true)"
  grep -q 'conformance: FAIL' <<<"${out}" ||
    { echo "harness: partition-routing mutation was NOT detected" >&2
      return 1; }
  # Sharded-shuffle cell: the cluster spec must replay clean, and a rotated
  # partition route (cluster routing goes through merge::partition_of) must
  # scramble the owner concat order into a detected divergence.
  "${cli}" cluster "--spec=${specs}/replay_cluster_smoke.json" |
    grep -q 'conformance: PASS' ||
    { echo "harness: cluster smoke spec does not replay clean" >&2
      return 1; }
  out="$(SUPMR_TEST_MUTATION=partition-routing \
    "${cli}" cluster "--spec=${specs}/replay_cluster_smoke.json" \
    2>/dev/null || true)"
  grep -q 'conformance: FAIL' <<<"${out}" ||
    { echo "harness: cluster partition-routing mutation was NOT detected" >&2
      return 1; }
  echo "harness: mutation smoke OK (3 specs x clean+mutated, 1 mmap cell, 1 combining cell)"
}

run_stage() {
  local stage="$1"
  echo "==> stage: ${stage}"
  case "${stage}" in
    plain)
      configure_and_build "${ROOT}/build-check-plain"
      (cd "${ROOT}/build-check-plain" && ctest --output-on-failure -j "${JOBS}")
      ;;
    tsan)
      configure_and_build "${ROOT}/build-check-tsan" \
        -DSUPMR_SANITIZE=thread -DSUPMR_BUILD_BENCH=OFF \
        -DSUPMR_BUILD_EXAMPLES=OFF
      (cd "${ROOT}/build-check-tsan" &&
        TSAN_OPTIONS="suppressions=${SUPP}/tsan.supp halt_on_error=1 second_deadlock_stack=1" \
        ctest -L sanitizer --output-on-failure -j "${JOBS}")
      ;;
    asan)
      configure_and_build "${ROOT}/build-check-asan" \
        -DSUPMR_SANITIZE=address,undefined -DSUPMR_BUILD_BENCH=OFF \
        -DSUPMR_BUILD_EXAMPLES=OFF
      (cd "${ROOT}/build-check-asan" &&
        ASAN_OPTIONS="suppressions=${SUPP}/asan.supp detect_leaks=1" \
        LSAN_OPTIONS="suppressions=${SUPP}/lsan.supp" \
        UBSAN_OPTIONS="suppressions=${SUPP}/ubsan.supp print_stacktrace=1" \
        ctest -L sanitizer --output-on-failure -j "${JOBS}")
      ;;
    obs-smoke)
      # End-to-end: the quickstart must emit valid metrics + trace JSON.
      configure_and_build "${ROOT}/build-check-plain"
      local out="${ROOT}/build-check-plain/obs-smoke"
      mkdir -p "${out}"
      "${ROOT}/build-check-plain/examples/quickstart" \
        "--metrics-json=${out}/metrics.json" "--trace-out=${out}/trace.json"
      validate_json_file "${out}/metrics.json"
      validate_json_file "${out}/trace.json"
      grep -q '"traceEvents"' "${out}/trace.json" ||
        { echo "obs-smoke: trace.json lacks traceEvents" >&2; return 1; }
      grep -q '"counters"' "${out}/metrics.json" ||
        { echo "obs-smoke: metrics.json lacks counters" >&2; return 1; }
      # The compiled-out configuration must still build everything.
      configure_and_build "${ROOT}/build-check-obs-off" -DSUPMR_OBS=OFF
      ;;
    fault-smoke)
      # End-to-end fault tolerance (docs/fault-tolerance.md). The fault
      # plan is seeded, so both runs are reproducible.
      configure_and_build "${ROOT}/build-check-plain"
      local out="${ROOT}/build-check-plain/fault-smoke"
      mkdir -p "${out}"
      # 1. Transient faults within the retry budget: the job must succeed
      #    and the retry layer must have actually fired.
      "${ROOT}/build-check-plain/examples/quickstart" \
        "--fault-plan=seed=7;transient=0.25" --retry-attempts=6 \
        "--metrics-json=${out}/metrics.json" > "${out}/transient.out"
      validate_json_file "${out}/metrics.json"
      grep -q '"storage.retries":[1-9]' "${out}/metrics.json" ||
        { echo "fault-smoke: no retries recorded in metrics.json" >&2
          return 1; }
      # 2. A permanent fault must fail the job: non-zero exit, and stdout
      #    carries a machine-readable error report.
      if "${ROOT}/build-check-plain/examples/quickstart" \
        --fault-plan=permanent=0-999999999 --retry-attempts=2 \
        > "${out}/permanent.json" 2>/dev/null; then
        echo "fault-smoke: permanent fault did not fail the job" >&2
        return 1
      fi
      validate_json_file "${out}/permanent.json"
      grep -q '"ok":false' "${out}/permanent.json" ||
        { echo "fault-smoke: error report lacks \"ok\":false" >&2; return 1; }
      ;;
    coverage)
      # Line coverage for the merge-critical layers. gcovr when installed;
      # otherwise tools/coverage_summary.py aggregates plain `gcov
      # --json-format` output (header-only code is attributed to the header
      # across every TU that instantiated it).
      configure_and_build "${ROOT}/build-check-coverage" \
        -DCMAKE_BUILD_TYPE=Debug \
        -DCMAKE_CXX_FLAGS=--coverage -DCMAKE_EXE_LINKER_FLAGS=--coverage \
        -DSUPMR_BUILD_BENCH=OFF -DSUPMR_BUILD_EXAMPLES=OFF
      (cd "${ROOT}/build-check-coverage" &&
        ctest -L 'unit|stress' --output-on-failure -j "${JOBS}")
      if command -v gcovr >/dev/null 2>&1; then
        gcovr --root "${ROOT}" --object-directory "${ROOT}/build-check-coverage" \
          --filter 'src/merge/.*' \
          --fail-under-line "${COVERAGE_FLOOR_MERGE}"
        gcovr --root "${ROOT}" --object-directory "${ROOT}/build-check-coverage" \
          --filter 'src/containers/.*' \
          --fail-under-line "${COVERAGE_FLOOR_CONTAINERS}"
        gcovr --root "${ROOT}" --object-directory "${ROOT}/build-check-coverage" \
          --filter 'src/cluster/.*' \
          --fail-under-line "${COVERAGE_FLOOR_CLUSTER}"
      else
        python3 "${ROOT}/tools/coverage_summary.py" \
          "${ROOT}/build-check-coverage" --filter src/merge \
          --fail-under "${COVERAGE_FLOOR_MERGE}"
        python3 "${ROOT}/tools/coverage_summary.py" \
          "${ROOT}/build-check-coverage" --filter src/containers \
          --fail-under "${COVERAGE_FLOOR_CONTAINERS}"
        python3 "${ROOT}/tools/coverage_summary.py" \
          "${ROOT}/build-check-coverage" --filter src/cluster \
          --fail-under "${COVERAGE_FLOOR_CLUSTER}"
      fi
      ;;
    harness)
      configure_and_build "${ROOT}/build-check-plain"
      (cd "${ROOT}/build-check-plain" &&
        ctest -L harness --output-on-failure -j "${JOBS}")
      mutation_smoke "${ROOT}/build-check-plain/tools/supmr"
      ;;
    harness-asan)
      configure_and_build "${ROOT}/build-check-asan" \
        -DSUPMR_SANITIZE=address,undefined -DSUPMR_BUILD_BENCH=OFF \
        -DSUPMR_BUILD_EXAMPLES=OFF
      (cd "${ROOT}/build-check-asan" &&
        ASAN_OPTIONS="suppressions=${SUPP}/asan.supp detect_leaks=1" \
        LSAN_OPTIONS="suppressions=${SUPP}/lsan.supp" \
        UBSAN_OPTIONS="suppressions=${SUPP}/ubsan.supp print_stacktrace=1" \
        ctest -L harness --output-on-failure -j "${JOBS}")
      ;;
    jobmix-smoke)
      # Multi-tenant runtime under TSan: many jobs racing through one
      # JobManager (shared pool, leases, chunk buffers) must stay
      # byte-identical to the sequential reference with no data races.
      # Reuses the tsan build tree; `jobmix` selects the concurrent-jobs
      # suites plus the `supmr serve` CLI smoke (docs/runtime.md).
      configure_and_build "${ROOT}/build-check-tsan" \
        -DSUPMR_SANITIZE=thread -DSUPMR_BUILD_BENCH=OFF \
        -DSUPMR_BUILD_EXAMPLES=OFF
      (cd "${ROOT}/build-check-tsan" &&
        TSAN_OPTIONS="suppressions=${SUPP}/tsan.supp halt_on_error=1 second_deadlock_stack=1" \
        ctest -L jobmix --output-on-failure -j "${JOBS}")
      ;;
    graph-smoke)
      # Chained-app graphs under TSan: stage handoff (in-memory edges, file
      # spill) plus every graph lattice cell must be race-free and
      # byte-identical to ref::run_graph. Reuses the tsan build tree;
      # `graph` selects the JobGraph unit suite and the graph differential
      # lattice, then the checked-in spec runs through the instrumented CLI.
      configure_and_build "${ROOT}/build-check-tsan" \
        -DSUPMR_SANITIZE=thread -DSUPMR_BUILD_BENCH=OFF \
        -DSUPMR_BUILD_EXAMPLES=OFF
      (cd "${ROOT}/build-check-tsan" &&
        TSAN_OPTIONS="suppressions=${SUPP}/tsan.supp halt_on_error=1 second_deadlock_stack=1" \
        ctest -L graph --output-on-failure -j "${JOBS}")
      TSAN_OPTIONS="suppressions=${SUPP}/tsan.supp halt_on_error=1 second_deadlock_stack=1" \
        "${ROOT}/build-check-tsan/tools/supmr" graph \
        "--spec=${ROOT}/tests/harness/replay_graph_smoke.json" |
        grep -q 'conformance: PASS' ||
        { echo "graph-smoke: checked-in graph spec is not conformant" >&2
          return 1; }
      ;;
    combining-smoke)
      # In-mapper combining under TSan: single-writer stripe counters and
      # concurrent disjoint-partition reduces must be race-free, and the
      # checked-in combining spec must replay conformant through the
      # instrumented CLI. Reuses the tsan build tree; `combining` selects
      # the property suite and the replay smoke (docs/containers.md).
      configure_and_build "${ROOT}/build-check-tsan" \
        -DSUPMR_SANITIZE=thread -DSUPMR_BUILD_BENCH=OFF \
        -DSUPMR_BUILD_EXAMPLES=OFF
      (cd "${ROOT}/build-check-tsan" &&
        TSAN_OPTIONS="suppressions=${SUPP}/tsan.supp halt_on_error=1 second_deadlock_stack=1" \
        ctest -L combining --output-on-failure -j "${JOBS}")
      TSAN_OPTIONS="suppressions=${SUPP}/tsan.supp halt_on_error=1 second_deadlock_stack=1" \
        "${ROOT}/build-check-tsan/tools/supmr" replay \
        "${ROOT}/tests/harness/replay_combining_smoke.json" |
        grep -q 'conformance: PASS' ||
        { echo "combining-smoke: checked-in combining spec is not conformant" >&2
          return 1; }
      ;;
    cluster-smoke)
      # Sharded shuffle under TSan: N worker nodes run whole MapReduceJobs
      # concurrently on private leased pools, then shuffle senders and owner
      # merges race across the fabric RateLimiters — all of it must be
      # race-free and byte-identical to the sequential oracle. Reuses the
      # tsan build tree; `cluster` selects the protocol/property suite and
      # the node-count lattice, then the checked-in spec runs through the
      # instrumented `supmr cluster` CLI (docs/cluster.md).
      configure_and_build "${ROOT}/build-check-tsan" \
        -DSUPMR_SANITIZE=thread -DSUPMR_BUILD_BENCH=OFF \
        -DSUPMR_BUILD_EXAMPLES=OFF
      (cd "${ROOT}/build-check-tsan" &&
        TSAN_OPTIONS="suppressions=${SUPP}/tsan.supp halt_on_error=1 second_deadlock_stack=1" \
        ctest -L cluster --output-on-failure -j "${JOBS}")
      TSAN_OPTIONS="suppressions=${SUPP}/tsan.supp halt_on_error=1 second_deadlock_stack=1" \
        "${ROOT}/build-check-tsan/tools/supmr" cluster \
        "--spec=${ROOT}/tests/harness/replay_cluster_smoke.json" |
        grep -q 'conformance: PASS' ||
        { echo "cluster-smoke: checked-in cluster spec is not conformant" >&2
          return 1; }
      ;;
    *)
      echo "unknown stage '${stage}' (want plain, tsan, asan, obs-smoke, fault-smoke, coverage, harness, harness-asan, jobmix-smoke, graph-smoke, combining-smoke, or cluster-smoke)" >&2
      return 2
      ;;
  esac
  echo "==> stage ${stage}: OK"
}

for stage in "${STAGES[@]}"; do
  run_stage "${stage}"
done
echo "==> all stages passed"
