// supmr — command-line front end for the SupMR runtime.
//
//   supmr wordcount <file>        [--chunk=64MB] [--threads=N] [--top=10]
//   supmr sort <file> --out=<f>   [--chunk=64MB] [--key-bytes=10]
//                                 [--record-bytes=100]
//   supmr grep <patterns> <file>  [--chunk=64MB]   (comma-separated patterns)
//   supmr histogram <file>        [--lo=0] [--hi=256] [--bins=64]
//   supmr index <file...>         [--files-per-chunk=4]
//   supmr generate <kind> <path>  --size=64MB  (kind: text | terasort |
//                                 numeric)
//   supmr replay <spec.json>      re-run a conformance-harness repro cell
//                                 (also spelled --replay=<spec.json>); exits
//                                 non-zero when the cell still diverges from
//                                 the sequential reference runtime
//   supmr serve --jobs=<spec.json>  multi-tenant mode: run every job in the
//                                 spec concurrently through one JobManager
//                                 (shared thread pool, chunk buffers, and
//                                 memory budget; docs/runtime.md). Each job
//                                 is oracle-checked against the sequential
//                                 reference; exits non-zero on any failure
//                                 or divergence
//   supmr graph --spec=<spec.json>  run a chained-app JobGraph cell (app
//                                 pmi | tfidf | msort; docs/graphs.md):
//                                 stages hand output across edges in memory
//                                 (or spill per "graph":{...}), and the
//                                 final output is byte-checked against
//                                 ref::run_graph. `supmr replay` accepts
//                                 the same specs; this spelling prints the
//                                 stage/handoff breakdown
//   supmr cluster --spec=<spec.json>  run a sharded-shuffle cell (spec with
//                                 "cluster":{"nodes":N,...}; docs/cluster.md):
//                                 N simulated worker nodes each map a slice,
//                                 hash-partition their output across the
//                                 cluster over rate-limited links, merge
//                                 their owned partitions, and the reassembled
//                                 output is byte-checked against the
//                                 sequential oracle. `supmr replay` accepts
//                                 the same specs; this spelling prints the
//                                 shuffle breakdown
//
// Common flags:
//   --mode=supmr|original|adaptive   runtime (default supmr)
//   --merge=pway|pairwise|partitioned  final merge algorithm (default pway)
//   --partitions=N                   key-space partitions for
//                                    --merge=partitioned (default 0 = auto:
//                                    one per hardware context; docs/merge.md)
//   --threads=N                      mapper/reducer threads
//   --chunk=SIZE                     ingest chunk size (0/none = original)
//   --io=read|mmap                   ingest byte movement: copying reads or
//                                    zero-copy mmap views (default read);
//                                    falls back to read per chunk under
//                                    --throttle/--fault-plan (docs/cli.md)
//   --container=default|combining    intermediate container: each app's own
//                                    choice, or the in-mapper combining
//                                    hash-aggregate (docs/containers.md).
//                                    Rejected for apps without a declared
//                                    combiner (sort, grep, kmeans,
//                                    wordcount --budget)
//   --throttle=RATE                  emulate a slow device, e.g. 384MB
//   --trace=out.csv                  dump a /proc/stat utilization trace
//   --metrics-json=out.json          dump the runtime metrics snapshot
//   --trace-out=trace.json           dump a Chrome-trace (chrome://tracing /
//                                    Perfetto) event file
//
// Fault tolerance (docs/fault-tolerance.md):
//   --retry-attempts=N               max read attempts per chunk (default 1
//                                    = fail fast; >1 enables retry)
//   --retry-backoff=DUR              initial backoff, e.g. 1ms (doubles each
//                                    retry)
//   --retry-backoff-max=DUR          backoff cap, e.g. 250ms
//   --retry-deadline=DUR             per-read wall-clock budget, e.g. 2s
//   --retry-seed=N                   jitter RNG seed
//   --fault-plan=SPEC                inject faults, e.g.
//                                    'seed=7;transient=0.05' (quote the ';')
//   --degrade                        skip poisoned chunks (with accounting)
//                                    instead of failing the job
//
// Cluster topology (docs/cluster.md; wordcount/sort/grep/histogram):
//   --nodes=N                        run through the sharded-shuffle runtime
//                                    with N simulated worker nodes
//   --node-link-bps=RATE             per-node NIC rate, e.g. 125MB (0 = fast)
//   --uplink-bps=RATE                shared uplink every cross-node byte
//                                    also pays (0 = none)
//   --node-disk-bps=RATE             per-node ingest disk rate (0 = fast)
//   --node-budget=SIZE               per-partition merge memory budget;
//                                    over-budget fixed-record partitions
//                                    spill through the ExternalSorter
#include <sys/stat.h>
#include <unistd.h>

#include <cstdio>
#include <cstring>
#include <memory>
#include <thread>
#include <vector>

#include "apps/external_word_count.hpp"
#include "apps/grep.hpp"
#include "apps/kmeans.hpp"
#include "apps/histogram.hpp"
#include "apps/inverted_index.hpp"
#include "apps/tera_sort.hpp"
#include "apps/word_count.hpp"
#include "cluster/cluster_job.hpp"
#include "common/logging.hpp"
#include "core/job.hpp"
#include "core/proc_sampler.hpp"
#include "core/replay.hpp"
#include "core/report.hpp"
#include "ref/conformance.hpp"
#include "runtime/job_manager.hpp"
#include "runtime/serve_spec.hpp"
#include "fault/fault_plan.hpp"
#include "fault/retrying_device.hpp"
#include "ingest/adaptive.hpp"
#include "ingest/hybrid_source.hpp"
#include "ingest/record_format.hpp"
#include "ingest/source.hpp"
#include "storage/fault_device.hpp"
#include "storage/file_device.hpp"
#include "storage/mmap_device.hpp"
#include "storage/rate_limiter.hpp"
#include "storage/throttled_device.hpp"
#include "tools/flags.hpp"
#include "wload/numeric.hpp"
#include "wload/teragen.hpp"
#include "wload/text_corpus.hpp"

namespace supmr::tools {
namespace {

const std::set<std::string> kCommonFlags = {
    "mode",   "merge",   "partitions", "threads", "chunk", "throttle", "io",
    "container",
    "trace",  "top",     "out",     "key-bytes",  "record-bytes",
    "lo",     "hi",      "bins",    "files-per-chunk", "size",
    "verbose", "json",    "budget",  "clusters",   "dim",
    "iters",  "metrics-json", "trace-out",
    "retry-attempts", "retry-backoff", "retry-backoff-max",
    "retry-deadline", "retry-seed", "fault-plan", "degrade", "jobs", "spec",
    "nodes", "node-link-bps", "uplink-bps", "node-disk-bps", "node-budget"};

void usage() {
  std::fprintf(stderr,
               "usage: supmr <command> [args] [flags]\n"
               "commands: wordcount sort grep histogram index kmeans generate"
               " replay serve graph cluster\n"
               "see tools/supmr_cli.cpp header for the full flag list\n");
}

struct CommonConfig {
  core::JobConfig job;
  std::uint64_t chunk_bytes = 64 * kMB;
  std::string mode = "supmr";
  std::optional<double> throttle_bps;
  std::optional<std::string> trace_path;
  std::optional<fault::FaultPlan> fault_plan;  // --fault-plan injection spec
  bool json = false;
};

// Parses a --flag whose value is a duration (e.g. 1ms, 2s) into seconds.
StatusOr<double> get_duration(const Flags& flags, const std::string& name,
                              double def) {
  auto v = flags.get(name);
  if (!v) return def;
  auto parsed = fault::parse_duration(*v);
  if (!parsed.ok()) {
    return Status::InvalidArgument("bad duration for --" + name + ": " + *v);
  }
  return *parsed;
}

StatusOr<CommonConfig> common_config(const Flags& flags) {
  CommonConfig cfg;
  // Enum flags parse through the shared name tables (common/enum_names.hpp)
  // — the same vocabulary the replay/serve/graph spec parsers accept.
  cfg.mode = flags.get_or("mode", "supmr");
  SUPMR_ASSIGN_OR_RETURN(cfg.job.mode, core::exec_mode_from_name(cfg.mode));
  const std::string merge = flags.get_or("merge", "pway");
  SUPMR_ASSIGN_OR_RETURN(cfg.job.merge_mode,
                         core::merge_mode_from_name(merge));
  const std::string io = flags.get_or("io", "read");
  SUPMR_ASSIGN_OR_RETURN(cfg.job.io, core::io_mode_from_name(io));
  const std::string container = flags.get_or("container", "default");
  SUPMR_ASSIGN_OR_RETURN(cfg.job.container,
                         core::container_mode_from_name(container));
  SUPMR_ASSIGN_OR_RETURN(std::uint64_t partitions,
                         flags.get_int("partitions", 0));
  cfg.job.num_merge_partitions = partitions;
  if (partitions > 0 && merge != "partitioned") {
    return Status::InvalidArgument(
        "--partitions requires --merge=partitioned");
  }
  SUPMR_ASSIGN_OR_RETURN(std::uint64_t threads,
                         flags.get_int("threads", 0));
  if (threads > 0) {
    cfg.job.num_map_threads = threads;
    cfg.job.num_reduce_threads = threads;
  }
  if (auto chunk = flags.get("chunk")) {
    if (*chunk == "none") {
      cfg.chunk_bytes = 0;
    } else {
      SUPMR_ASSIGN_OR_RETURN(cfg.chunk_bytes,
                             flags.get_size("chunk", cfg.chunk_bytes));
    }
  }
  if (flags.get("throttle")) {
    SUPMR_ASSIGN_OR_RETURN(std::uint64_t rate, flags.get_size("throttle", 0));
    if (rate > 0) cfg.throttle_bps = double(rate);
  }
  cfg.trace_path = flags.get("trace");
  cfg.job.metrics_json_path = flags.get_or("metrics-json", "");
  cfg.job.trace_out_path = flags.get_or("trace-out", "");
  cfg.json = flags.get_bool("json");
  if (flags.get_bool("verbose")) Logger::set_level(LogLevel::kInfo);

  // Fault tolerance: retry policy + degrade mode + injection plan.
  fault::RetryPolicy& policy = cfg.job.recovery.policy;
  SUPMR_ASSIGN_OR_RETURN(std::uint64_t attempts,
                         flags.get_int("retry-attempts", policy.max_attempts));
  if (attempts == 0) {
    return Status::InvalidArgument("--retry-attempts must be >= 1");
  }
  policy.max_attempts = static_cast<std::uint32_t>(attempts);
  SUPMR_ASSIGN_OR_RETURN(
      policy.backoff_base_s,
      get_duration(flags, "retry-backoff", policy.backoff_base_s));
  SUPMR_ASSIGN_OR_RETURN(
      policy.backoff_max_s,
      get_duration(flags, "retry-backoff-max", policy.backoff_max_s));
  SUPMR_ASSIGN_OR_RETURN(
      policy.read_deadline_s,
      get_duration(flags, "retry-deadline", policy.read_deadline_s));
  SUPMR_ASSIGN_OR_RETURN(policy.seed,
                         flags.get_int("retry-seed", policy.seed));
  cfg.job.recovery.degrade = flags.get_bool("degrade");
  if (auto spec = flags.get("fault-plan")) {
    SUPMR_ASSIGN_OR_RETURN(cfg.fault_plan, fault::FaultPlan::parse(*spec));
  }
  if (cfg.job.recovery.degrade && !cfg.fault_plan) {
    return Status::InvalidArgument(
        "--degrade requires --fault-plan: degrade mode skips poisoned "
        "chunks, and without an injection plan there is nothing to degrade "
        "around (a real deployment's faults come from the device itself)");
  }

  // Cluster topology: --nodes routes the job through the sharded-shuffle
  // runtime (src/cluster/, docs/cluster.md). The bandwidth/budget knobs are
  // meaningless without a node count, so they hard-reject rather than
  // silently doing nothing.
  if (flags.get("nodes")) {
    SUPMR_ASSIGN_OR_RETURN(std::uint64_t nodes, flags.get_int("nodes", 0));
    if (nodes == 0) return Status::InvalidArgument("--nodes must be >= 1");
    cfg.job.num_nodes = static_cast<std::size_t>(nodes);
  }
  for (const char* knob :
       {"node-link-bps", "uplink-bps", "node-disk-bps", "node-budget"}) {
    if (flags.get(knob) && cfg.job.num_nodes == 0) {
      return Status::InvalidArgument(std::string("--") + knob +
                                     " requires --nodes");
    }
  }
  SUPMR_ASSIGN_OR_RETURN(std::uint64_t link_bps,
                         flags.get_size("node-link-bps", 0));
  cfg.job.node_link_bps = static_cast<double>(link_bps);
  SUPMR_ASSIGN_OR_RETURN(std::uint64_t uplink_bps,
                         flags.get_size("uplink-bps", 0));
  cfg.job.uplink_bps = static_cast<double>(uplink_bps);
  SUPMR_ASSIGN_OR_RETURN(std::uint64_t disk_bps,
                         flags.get_size("node-disk-bps", 0));
  cfg.job.node_disk_bps = static_cast<double>(disk_bps);
  SUPMR_ASSIGN_OR_RETURN(std::uint64_t node_budget,
                         flags.get_size("node-budget", 0));
  cfg.job.node_memory_budget = static_cast<std::size_t>(node_budget);
  return cfg;
}

// Builds the input device stack:
//   FileDevice -> [ThrottledDevice] -> [FaultDevice] -> [RetryingDevice]
// FaultDevice injects the --fault-plan; RetryingDevice (when the retry
// policy is enabled) absorbs transient faults at the read_at seam, so every
// byte source — pipeline chunks and spill reads alike — retries the same way.
StatusOr<std::shared_ptr<const storage::Device>> open_input(
    const std::string& path, const CommonConfig& cfg) {
  std::shared_ptr<const storage::Device> dev;
  if (cfg.job.io == core::IoMode::kMmap) {
    // Zero-copy base device. Any wrapper stacked below refuses to lend
    // views, so --throttle/--fault-plan/retry transparently force the
    // sources back onto the copying read path (a page fault cannot be
    // retried or rate-limited).
    SUPMR_ASSIGN_OR_RETURN(auto mapped, storage::MmapDevice::open(path));
    dev = std::move(mapped);
  } else {
    SUPMR_ASSIGN_OR_RETURN(auto file, storage::FileDevice::open(path));
    dev = std::move(file);
  }
  if (cfg.throttle_bps) {
    auto limiter = std::make_shared<storage::RateLimiter>(*cfg.throttle_bps);
    dev = std::make_shared<storage::ThrottledDevice>(dev, limiter);
  }
  if (cfg.fault_plan) {
    dev = std::make_shared<storage::FaultDevice>(dev, *cfg.fault_plan);
  }
  if (cfg.job.recovery.policy.enabled()) {
    dev = std::make_shared<fault::RetryingDevice>(dev,
                                                  cfg.job.recovery.policy);
  }
  return dev;
}

// Runs `app` over `source` honoring --mode; prints the phase row.
StatusOr<core::JobResult> run_app(core::Application& app,
                                  const ingest::IngestSource& source,
                                  const storage::Device* device,
                                  const ingest::RecordFormat* format,
                                  const CommonConfig& cfg) {
  // Container selection before init: apps without a combiner reject
  // --container=combining here instead of silently falling back.
  SUPMR_RETURN_IF_ERROR(app.use_container(cfg.job.container));
  core::MapReduceJob job(app, source, cfg.job);
  core::ProcStatSampler sampler(0.1);
  const bool tracing =
      cfg.trace_path.has_value() && core::ProcStatSampler::available();
  if (tracing) sampler.start();

  // --chunk=none/0 degenerates to the original one-shot ingest even when
  // --mode asked for a pipelined runtime (there is nothing to pipeline).
  core::ExecMode mode = cfg.job.mode;
  if (cfg.chunk_bytes == 0) mode = core::ExecMode::kOriginal;
  ingest::RateMatchingController controller;
  if (mode == core::ExecMode::kAdaptive) {
    if (device == nullptr || format == nullptr) {
      return Status::InvalidArgument(
          "--mode=adaptive requires a single-device input");
    }
    job.set_adaptive(*device, *format, controller);
  }
  StatusOr<core::JobResult> result = job.run(mode);
  if (tracing) {
    TimeSeries trace = sampler.stop();
    trace.write_csv(*cfg.trace_path);
    std::printf("utilization trace (%zu samples) -> %s\n", trace.samples(),
                cfg.trace_path->c_str());
  }
  if (!result.ok()) {
    // Machine-readable failure report: with --json, stdout carries a
    // well-formed error object instead of half a result.
    if (cfg.json) {
      std::printf("%s\n", core::status_to_json(result.status()).c_str());
    }
    return result.status();
  }
  if (cfg.json) {
    std::printf("%s\n", core::job_result_to_json(*result).c_str());
    return result;
  }
  std::printf("%s\n%s\n", PhaseBreakdown::table_header().c_str(),
              result->phases.to_table_row(cfg.mode).c_str());
  std::printf("chunks=%llu map_rounds=%llu merge_rounds=%llu results=%llu\n",
              (unsigned long long)result->chunks,
              (unsigned long long)result->map_rounds,
              (unsigned long long)result->phases.merge_rounds,
              (unsigned long long)result->result_count);
  return result;
}

// Reads a whole file into a string (spec files, cluster inputs).
StatusOr<std::string> slurp(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return Status::IoError("cannot open " + path);
  std::string text;
  char buf[4096];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) text.append(buf, n);
  std::fclose(f);
  return text;
}

// Cluster execution path for the single-device app subcommands: --nodes=N
// slurps the input and runs it through the sharded-shuffle runtime
// (docs/cluster.md) instead of one MapReduceJob, then prints the shuffle
// accounting. The product is the reassembled global output (identical to
// the single-node run byte for byte), so app-specific result printing does
// not apply here.
StatusOr<cluster::ClusterResult> run_cluster_cli(
    const std::string& path,
    std::shared_ptr<const ingest::RecordFormat> format,
    cluster::AppFactory make_app, const CommonConfig& cfg,
    std::size_t record_bytes) {
  if (cfg.fault_plan || cfg.job.recovery.degrade) {
    return Status::InvalidArgument(
        "--nodes does not combine with --fault-plan/--degrade (node slices "
        "are private in-memory devices)");
  }
  if (cfg.throttle_bps) {
    return Status::InvalidArgument(
        "--nodes does not combine with --throttle: model per-node ingest "
        "disks with --node-disk-bps instead");
  }
  cluster::ClusterJob job;
  SUPMR_ASSIGN_OR_RETURN(job.input, slurp(path));
  job.format = std::move(format);
  job.make_app = std::move(make_app);
  job.config = cfg.job;
  job.chunk_bytes = cfg.chunk_bytes;
  job.record_bytes = record_bytes;
  if (cfg.job.node_memory_budget > 0) {
    job.spill_dir = "/tmp/supmr_cluster_" + std::to_string(::getpid());
    ::mkdir(job.spill_dir.c_str(), 0777);  // best effort; the sorter reports
  }
  SUPMR_ASSIGN_OR_RETURN(cluster::ClusterResult result,
                         cluster::run_cluster(job));
  std::printf("cluster: %zu node(s), map output %s, shuffled %s "
              "cross-node, %s stayed local\n",
              result.nodes.size(),
              format_bytes(result.map_output_bytes).c_str(),
              format_bytes(result.shuffle_bytes).c_str(),
              format_bytes(result.local_bytes).c_str());
  for (std::size_t i = 0; i < result.nodes.size(); ++i) {
    const cluster::NodeStats& node = result.nodes[i];
    std::printf("  node %zu: in %s, map-out %s, sent %s, recv %s"
                "%s%s\n",
                i, format_bytes(node.input_bytes).c_str(),
                format_bytes(node.map_output_bytes).c_str(),
                format_bytes(node.sent_bytes).c_str(),
                format_bytes(node.recv_bytes).c_str(),
                node.spill_runs > 0 ? ", spill runs " : "",
                node.spill_runs > 0
                    ? std::to_string(node.spill_runs).c_str()
                    : "");
  }
  std::printf("cluster: %s output in %.3fs\n",
              format_bytes(result.output.size()).c_str(), result.elapsed_s);
  return result;
}

// ----------------------------------------------------------- subcommands

Status cmd_wordcount(const Flags& flags) {
  if (flags.positional().empty()) {
    return Status::InvalidArgument("wordcount needs an input file");
  }
  SUPMR_ASSIGN_OR_RETURN(CommonConfig cfg, common_config(flags));
  // --budget=SIZE switches to external aggregation (spill-and-merge) so the
  // intermediate set never exceeds the budget.
  SUPMR_ASSIGN_OR_RETURN(std::uint64_t budget, flags.get_size("budget", 0));
  if (cfg.job.num_nodes > 0) {
    return run_cluster_cli(
               flags.positional()[0], std::make_shared<ingest::LineFormat>(),
               [budget]() -> std::unique_ptr<core::Application> {
                 if (budget > 0) {
                   containers::SpillingHashContainer::Options opt;
                   opt.memory_budget_bytes = budget;
                   return std::make_unique<apps::ExternalWordCountApp>(opt);
                 }
                 return std::make_unique<apps::WordCountApp>();
               },
               cfg, 0)
        .status();
  }
  SUPMR_ASSIGN_OR_RETURN(auto dev, open_input(flags.positional()[0], cfg));
  auto format = std::make_shared<ingest::LineFormat>();
  ingest::SingleDeviceSource source(dev, format, cfg.chunk_bytes,
                                    cfg.job.io);
  std::vector<std::pair<std::string, std::uint64_t>> words;
  if (budget > 0) {
    containers::SpillingHashContainer::Options opt;
    opt.memory_budget_bytes = budget;
    apps::ExternalWordCountApp app(opt);
    SUPMR_ASSIGN_OR_RETURN(
        core::JobResult result,
        run_app(app, source, dev.get(), format.get(), cfg));
    (void)result;
    std::printf("spilled runs: %zu\n", app.runs_spilled());
    words = app.results();
  } else {
    apps::WordCountApp app;
    SUPMR_ASSIGN_OR_RETURN(
        core::JobResult result,
        run_app(app, source, dev.get(), format.get(), cfg));
    (void)result;
    words = app.results();
  }
  SUPMR_ASSIGN_OR_RETURN(std::uint64_t top, flags.get_int("top", 10));
  const std::size_t n = std::min<std::size_t>(top, words.size());
  std::partial_sort(words.begin(), words.begin() + n, words.end(),
                    [](const auto& a, const auto& b) {
                      return a.second > b.second;
                    });
  for (std::size_t i = 0; i < n; ++i)
    std::printf("%10llu  %s\n", (unsigned long long)words[i].second,
                words[i].first.c_str());
  return Status::Ok();
}

Status cmd_sort(const Flags& flags) {
  if (flags.positional().empty()) {
    return Status::InvalidArgument("sort needs an input file");
  }
  SUPMR_ASSIGN_OR_RETURN(CommonConfig cfg, common_config(flags));
  SUPMR_ASSIGN_OR_RETURN(std::uint64_t key_bytes,
                         flags.get_int("key-bytes", 10));
  SUPMR_ASSIGN_OR_RETURN(std::uint64_t record_bytes,
                         flags.get_int("record-bytes", 100));
  apps::TeraSortOptions opt;
  opt.key_bytes = static_cast<std::uint32_t>(key_bytes);
  opt.record_bytes = static_cast<std::uint32_t>(record_bytes);
  if (cfg.job.merge_mode == core::MergeMode::kPartitioned) {
    // Map-time partitioned shuffle: records land in key-range stripes as
    // they are mapped, so the merge phase is P independent merges.
    opt.partitions = cfg.job.merge_partitions();
  }
  if (cfg.job.num_nodes > 0) {
    SUPMR_ASSIGN_OR_RETURN(
        cluster::ClusterResult result,
        run_cluster_cli(flags.positional()[0],
                        std::make_shared<ingest::CrlfFormat>(),
                        [opt] { return std::make_unique<apps::TeraSortApp>(
                                    opt); },
                        cfg, static_cast<std::size_t>(record_bytes)));
    if (auto out = flags.get("out")) {
      std::FILE* f = std::fopen(out->c_str(), "wb");
      if (f == nullptr) return Status::IoError("cannot create " + *out);
      const bool ok = std::fwrite(result.output.data(), 1,
                                  result.output.size(),
                                  f) == result.output.size();
      std::fclose(f);
      if (!ok) return Status::IoError("short write to " + *out);
      std::printf("sorted output (%s) -> %s\n",
                  format_bytes(result.output.size()).c_str(), out->c_str());
    }
    return Status::Ok();
  }
  SUPMR_ASSIGN_OR_RETURN(auto dev, open_input(flags.positional()[0], cfg));
  auto format = std::make_shared<ingest::CrlfFormat>();
  ingest::SingleDeviceSource source(dev, format, cfg.chunk_bytes,
                                    cfg.job.io);
  apps::TeraSortApp app(opt);
  SUPMR_ASSIGN_OR_RETURN(core::JobResult result,
                         run_app(app, source, dev.get(), format.get(), cfg));
  (void)result;
  if (app.malformed_records() > 0) {
    std::printf("warning: %llu malformed records\n",
                (unsigned long long)app.malformed_records());
  }
  if (auto out = flags.get("out")) {
    std::FILE* f = std::fopen(out->c_str(), "wb");
    if (f == nullptr) return Status::IoError("cannot create " + *out);
    const auto& sorted = app.sorted_data();
    const bool ok =
        std::fwrite(sorted.data(), 1, sorted.size(), f) == sorted.size();
    std::fclose(f);
    if (!ok) return Status::IoError("short write to " + *out);
    std::printf("sorted output (%s) -> %s\n",
                format_bytes(sorted.size()).c_str(), out->c_str());
  }
  return Status::Ok();
}

Status cmd_grep(const Flags& flags) {
  if (flags.positional().size() < 2) {
    return Status::InvalidArgument("grep needs <patterns> <file>");
  }
  SUPMR_ASSIGN_OR_RETURN(CommonConfig cfg, common_config(flags));
  std::vector<std::string> patterns;
  const std::string& arg = flags.positional()[0];
  std::size_t pos = 0;
  while (pos <= arg.size()) {
    const std::size_t comma = arg.find(',', pos);
    patterns.push_back(arg.substr(
        pos, comma == std::string::npos ? std::string::npos : comma - pos));
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  if (cfg.job.num_nodes > 0) {
    return run_cluster_cli(
               flags.positional()[1], std::make_shared<ingest::LineFormat>(),
               [patterns] {
                 return std::make_unique<apps::GrepApp>(patterns);
               },
               cfg, 0)
        .status();
  }
  SUPMR_ASSIGN_OR_RETURN(auto dev, open_input(flags.positional()[1], cfg));
  auto format = std::make_shared<ingest::LineFormat>();
  ingest::SingleDeviceSource source(dev, format, cfg.chunk_bytes,
                                    cfg.job.io);
  apps::GrepApp app(patterns);
  SUPMR_ASSIGN_OR_RETURN(core::JobResult result,
                         run_app(app, source, dev.get(), format.get(), cfg));
  (void)result;
  for (const auto& [pattern, hits] : app.results())
    std::printf("%10llu  %s\n", (unsigned long long)hits, pattern.c_str());
  std::printf("lines scanned: %llu\n",
              (unsigned long long)app.lines_scanned());
  return Status::Ok();
}

Status cmd_histogram(const Flags& flags) {
  if (flags.positional().empty()) {
    return Status::InvalidArgument("histogram needs an input file");
  }
  SUPMR_ASSIGN_OR_RETURN(CommonConfig cfg, common_config(flags));
  apps::HistogramOptions opt;
  SUPMR_ASSIGN_OR_RETURN(std::uint64_t lo, flags.get_int("lo", 0));
  SUPMR_ASSIGN_OR_RETURN(std::uint64_t hi, flags.get_int("hi", 256));
  SUPMR_ASSIGN_OR_RETURN(std::uint64_t bins, flags.get_int("bins", 32));
  opt.lo = static_cast<std::int64_t>(lo);
  opt.hi = static_cast<std::int64_t>(hi);
  opt.bins = bins;
  if (cfg.job.num_nodes > 0) {
    return run_cluster_cli(
               flags.positional()[0], std::make_shared<ingest::LineFormat>(),
               [opt] { return std::make_unique<apps::HistogramApp>(opt); },
               cfg, 0)
        .status();
  }
  SUPMR_ASSIGN_OR_RETURN(auto dev, open_input(flags.positional()[0], cfg));
  auto format = std::make_shared<ingest::LineFormat>();
  ingest::SingleDeviceSource source(dev, format, cfg.chunk_bytes,
                                    cfg.job.io);
  apps::HistogramApp app(opt);
  SUPMR_ASSIGN_OR_RETURN(core::JobResult result,
                         run_app(app, source, dev.get(), format.get(), cfg));
  (void)result;
  std::uint64_t peak = 1;
  for (auto c : app.counts()) peak = std::max(peak, c);
  for (std::size_t b = 0; b < app.counts().size(); ++b) {
    const int bar = int(double(app.counts()[b]) / double(peak) * 50.0);
    std::printf("[%6lld,%6lld) %10llu |%.*s\n",
                (long long)(opt.lo + (opt.hi - opt.lo) * (long long)b /
                                         (long long)opt.bins),
                (long long)(opt.lo + (opt.hi - opt.lo) * (long long)(b + 1) /
                                         (long long)opt.bins),
                (unsigned long long)app.counts()[b], bar,
                "##################################################");
  }
  std::printf("parsed=%llu out-of-range=%llu\n",
              (unsigned long long)app.values_parsed(),
              (unsigned long long)app.values_out_of_range());
  return Status::Ok();
}

Status cmd_index(const Flags& flags) {
  if (flags.positional().empty()) {
    return Status::InvalidArgument("index needs input files");
  }
  SUPMR_ASSIGN_OR_RETURN(CommonConfig cfg, common_config(flags));
  std::vector<std::shared_ptr<const storage::Device>> files;
  for (const auto& path : flags.positional()) {
    SUPMR_ASSIGN_OR_RETURN(auto dev, open_input(path, cfg));
    files.push_back(std::move(dev));
  }
  SUPMR_ASSIGN_OR_RETURN(std::uint64_t per_chunk,
                         flags.get_int("files-per-chunk", 4));
  ingest::MultiFileSource source(files, per_chunk, cfg.job.io);
  apps::InvertedIndexApp app;
  SUPMR_ASSIGN_OR_RETURN(core::JobResult result,
                         run_app(app, source, nullptr, nullptr, cfg));
  (void)result;
  std::printf("%llu words indexed across %zu files\n",
              (unsigned long long)app.index().size(), files.size());
  return Status::Ok();
}

Status cmd_kmeans(const Flags& flags) {
  if (flags.positional().empty()) {
    return Status::InvalidArgument("kmeans needs an input points file");
  }
  SUPMR_ASSIGN_OR_RETURN(CommonConfig cfg, common_config(flags));
  if (cfg.job.container != core::ContainerMode::kDefault) {
    // run_kmeans owns its apps internally, so the run_app seam never sees
    // them — reject here with the same vocabulary.
    return Status::InvalidArgument(
        "container=" +
        std::string(core::container_mode_name(cfg.job.container)) +
        ": this application declares no combiner");
  }
  SUPMR_ASSIGN_OR_RETURN(auto dev, open_input(flags.positional()[0], cfg));
  SUPMR_ASSIGN_OR_RETURN(std::uint64_t clusters,
                         flags.get_int("clusters", 4));
  SUPMR_ASSIGN_OR_RETURN(std::uint64_t dim, flags.get_int("dim", 2));
  SUPMR_ASSIGN_OR_RETURN(std::uint64_t iters, flags.get_int("iters", 30));
  apps::KMeansOptions opt;
  opt.clusters = clusters;
  opt.dim = dim;
  // Initial centroids: spread along the diagonal (a real deployment would
  // sample the input; deterministic here).
  std::vector<std::vector<double>> init(clusters,
                                        std::vector<double>(dim, 0.0));
  for (std::size_t c = 0; c < clusters; ++c)
    for (std::size_t d = 0; d < dim; ++d)
      init[c][d] = 100.0 * double(c + 1) / double(clusters + 1);
  ingest::SingleDeviceSource source(dev, std::make_shared<ingest::LineFormat>(),
                                    cfg.chunk_bytes, cfg.job.io);
  auto result =
      apps::run_kmeans(source, cfg.job, opt, std::move(init), iters, 1e-6);
  if (!result.ok()) return result.status();
  std::printf("k-means: %zu iterations over %llu points (%.3fs, final "
              "shift %.2g)\n",
              result->iterations, (unsigned long long)result->points,
              result->total_s, result->final_shift);
  for (std::size_t c = 0; c < clusters; ++c) {
    std::printf("  centroid %zu: (", c);
    for (std::size_t d = 0; d < dim; ++d)
      std::printf("%s%.4f", d ? ", " : "", result->centroids[c][d]);
    std::printf(")\n");
  }
  return Status::Ok();
}

Status cmd_generate(const Flags& flags) {
  if (flags.positional().size() < 2) {
    return Status::InvalidArgument("generate needs <kind> <path>");
  }
  const std::string& kind = flags.positional()[0];
  const std::string& path = flags.positional()[1];
  SUPMR_ASSIGN_OR_RETURN(std::uint64_t size,
                         flags.get_size("size", 64 * kMB));
  if (kind == "text") {
    wload::TextCorpusConfig cfg;
    cfg.total_bytes = size;
    SUPMR_RETURN_IF_ERROR(wload::generate_text_file(cfg, path));
  } else if (kind == "terasort") {
    wload::TeraGenConfig cfg;
    cfg.num_records = size / cfg.record_bytes;
    SUPMR_RETURN_IF_ERROR(wload::teragen_to_file(cfg, path));
  } else if (kind == "points") {
    wload::PointsConfig cfg;
    cfg.num_points = size / 18;  // ~18 bytes per 2-d line
    std::FILE* f = std::fopen(path.c_str(), "wb");
    if (f == nullptr) return Status::IoError("cannot create " + path);
    const std::string data = wload::generate_points(cfg);
    const bool ok = std::fwrite(data.data(), 1, data.size(), f) == data.size();
    std::fclose(f);
    if (!ok) return Status::IoError("short write");
  } else if (kind == "numeric") {
    wload::NumericConfig cfg;
    cfg.num_values = size / 4;  // ~4 bytes per line
    std::FILE* f = std::fopen(path.c_str(), "wb");
    if (f == nullptr) return Status::IoError("cannot create " + path);
    const std::string data = wload::generate_numeric(cfg);
    const bool ok = std::fwrite(data.data(), 1, data.size(), f) == data.size();
    std::fclose(f);
    if (!ok) return Status::IoError("short write");
  } else {
    return Status::InvalidArgument("unknown dataset kind: " + kind);
  }
  std::printf("generated %s dataset (~%s) -> %s\n", kind.c_str(),
              format_bytes(size).c_str(), path.c_str());
  return Status::Ok();
}

// Re-runs one conformance cell from a harness-written repro spec
// (docs/testing.md). Non-zero exit iff the cell still diverges, so CI and
// bisect scripts can drive it directly.
Status cmd_replay(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return Status::IoError("cannot open " + path);
  std::string text;
  char buf[4096];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) text.append(buf, n);
  std::fclose(f);

  SUPMR_ASSIGN_OR_RETURN(core::ReplaySpec spec,
                         core::ReplaySpec::from_json(text));
  std::printf("replay: app=%s corpus=%s/%llu seed=%llu mode=%s merge=%s "
              "io=%s container=%s threads=%llu chunk=%llu partitions=%llu "
              "degrade=%d fault-plan=%s\n",
              spec.app.c_str(), spec.corpus.kind.c_str(),
              (unsigned long long)spec.corpus.bytes,
              (unsigned long long)spec.corpus.seed,
              std::string(core::exec_mode_name(spec.mode)).c_str(),
              std::string(core::merge_mode_name(spec.merge_mode)).c_str(),
              std::string(core::io_mode_name(spec.io)).c_str(),
              std::string(core::container_mode_name(spec.container)).c_str(),
              (unsigned long long)spec.threads,
              (unsigned long long)spec.chunk_bytes,
              (unsigned long long)spec.merge_partitions,
              spec.degrade ? 1 : 0,
              spec.fault_plan.empty() ? "none" : spec.fault_plan.c_str());
  SUPMR_ASSIGN_OR_RETURN(ref::ConformanceOutcome outcome,
                         ref::run_cell(spec));
  if (outcome.match) {
    std::printf("conformance: PASS (%llu output bytes, %llu chunks, "
                "%llu skipped)\n",
                (unsigned long long)outcome.sut_canonical.size(),
                (unsigned long long)outcome.job.chunks,
                (unsigned long long)outcome.job.chunks_skipped);
    return Status::Ok();
  }
  std::printf("conformance: FAIL\n%s\n", outcome.diff.c_str());
  return Status::Internal("replayed cell diverges from the reference");
}

// Runs a chained-app (JobGraph) conformance cell from a spec file
// (docs/graphs.md): executes the spec's multi-stage graph with the spec's
// handoff policy, byte-checks the sink against the sequential graph oracle,
// and prints the per-stage and handoff accounting. Non-zero exit iff the
// graph diverges or fails.
Status cmd_graph(const Flags& flags) {
  std::string path = flags.get_or("spec", "");
  if (path.empty() && !flags.positional().empty()) {
    path = flags.positional()[0];
  }
  if (path.empty()) {
    return Status::InvalidArgument("graph needs --spec=<spec.json>");
  }
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return Status::IoError("cannot open " + path);
  std::string text;
  char buf[4096];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) text.append(buf, n);
  std::fclose(f);

  SUPMR_ASSIGN_OR_RETURN(core::ReplaySpec spec,
                         core::ReplaySpec::from_json(text));
  if (!spec.is_graph()) {
    return Status::InvalidArgument(
        "graph needs a chained app (pmi | tfidf | msort), got: " + spec.app);
  }
  std::printf("graph: app=%s corpus=%s/%llu seed=%llu mode=%s merge=%s "
              "io=%s threads=%llu chunk=%llu handoff=%s budget=%llu\n",
              spec.app.c_str(), spec.corpus.kind.c_str(),
              (unsigned long long)spec.corpus.bytes,
              (unsigned long long)spec.corpus.seed,
              std::string(core::exec_mode_name(spec.mode)).c_str(),
              std::string(core::merge_mode_name(spec.merge_mode)).c_str(),
              std::string(core::io_mode_name(spec.io)).c_str(),
              (unsigned long long)spec.threads,
              (unsigned long long)spec.chunk_bytes,
              std::string(core::graph_handoff_name(spec.graph_handoff))
                  .c_str(),
              (unsigned long long)spec.graph_budget);
  SUPMR_ASSIGN_OR_RETURN(ref::ConformanceOutcome outcome,
                         ref::run_cell(spec));
  std::printf("graph: %llu stages, handoff %llu bytes in memory, "
              "spilled %llu bytes across %llu file(s)\n",
              (unsigned long long)outcome.graph_stages,
              (unsigned long long)outcome.graph_handoff_bytes,
              (unsigned long long)outcome.graph_spill_bytes,
              (unsigned long long)outcome.graph_spill_files);
  if (outcome.match) {
    std::printf("conformance: PASS (%llu output bytes)\n",
                (unsigned long long)outcome.sut_canonical.size());
    return Status::Ok();
  }
  std::printf("conformance: FAIL\n%s\n", outcome.diff.c_str());
  return Status::Internal("graph cell diverges from the reference");
}

// Runs a sharded-shuffle conformance cell from a spec file (docs/cluster.md):
// executes the spec through the cluster runtime, byte-checks the
// reassembled output against the sequential oracle, and prints the shuffle
// accounting. Non-zero exit iff the cell diverges or fails.
Status cmd_cluster(const Flags& flags) {
  std::string path = flags.get_or("spec", "");
  if (path.empty() && !flags.positional().empty()) {
    path = flags.positional()[0];
  }
  if (path.empty()) {
    return Status::InvalidArgument("cluster needs --spec=<spec.json>");
  }
  SUPMR_ASSIGN_OR_RETURN(std::string text, slurp(path));
  SUPMR_ASSIGN_OR_RETURN(core::ReplaySpec spec,
                         core::ReplaySpec::from_json(text));
  if (!spec.is_cluster()) {
    return Status::InvalidArgument(
        "cluster needs a spec with cluster.nodes >= 1 (app " + spec.app +
        ", nodes=0)");
  }
  std::printf("cluster: app=%s corpus=%s/%llu seed=%llu mode=%s merge=%s "
              "io=%s threads=%llu chunk=%llu nodes=%llu link=%llu "
              "uplink=%llu disk=%llu budget=%llu\n",
              spec.app.c_str(), spec.corpus.kind.c_str(),
              (unsigned long long)spec.corpus.bytes,
              (unsigned long long)spec.corpus.seed,
              std::string(core::exec_mode_name(spec.mode)).c_str(),
              std::string(core::merge_mode_name(spec.merge_mode)).c_str(),
              std::string(core::io_mode_name(spec.io)).c_str(),
              (unsigned long long)spec.threads,
              (unsigned long long)spec.chunk_bytes,
              (unsigned long long)spec.cluster_nodes,
              (unsigned long long)spec.cluster_link_bps,
              (unsigned long long)spec.cluster_uplink_bps,
              (unsigned long long)spec.cluster_disk_bps,
              (unsigned long long)spec.cluster_budget);
  SUPMR_ASSIGN_OR_RETURN(ref::ConformanceOutcome outcome,
                         ref::run_cell(spec));
  std::printf("cluster: %llu node(s), map output %llu bytes, %llu shuffled "
              "cross-node, %llu local, %llu spill run(s), owned max/min "
              "%llu/%llu bytes\n",
              (unsigned long long)outcome.cluster_nodes,
              (unsigned long long)outcome.cluster_map_output_bytes,
              (unsigned long long)outcome.cluster_shuffle_bytes,
              (unsigned long long)outcome.cluster_local_bytes,
              (unsigned long long)outcome.cluster_spill_runs,
              (unsigned long long)outcome.cluster_recv_max_bytes,
              (unsigned long long)outcome.cluster_recv_min_bytes);
  if (outcome.match) {
    std::printf("conformance: PASS (%llu output bytes)\n",
                (unsigned long long)outcome.sut_canonical.size());
    return Status::Ok();
  }
  std::printf("conformance: FAIL\n%s\n", outcome.diff.c_str());
  return Status::Internal("cluster cell diverges from the reference");
}

// Multi-tenant mode (docs/runtime.md): one JobManager, many concurrent
// jobs. Every entry in the --jobs spec is a conformance cell: a client
// thread submits it through the manager (honoring priority / lease
// overrides) and checks the managed run byte-for-byte against the
// sequential reference. Non-zero exit iff any job fails or diverges.
Status cmd_serve(const Flags& flags) {
  std::string path = flags.get_or("jobs", "");
  if (path.empty() && !flags.positional().empty()) {
    path = flags.positional()[0];
  }
  if (path.empty()) {
    return Status::InvalidArgument("serve needs --jobs=<spec.json>");
  }
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return Status::IoError("cannot open " + path);
  std::string text;
  char buf[4096];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) text.append(buf, n);
  std::fclose(f);

  SUPMR_ASSIGN_OR_RETURN(runtime::ServeSpec spec,
                         runtime::parse_serve_spec(text));
  runtime::JobManager::Options opts;
  if (spec.pool_threads != 0) opts.num_threads = spec.pool_threads;
  if (spec.memory_budget_bytes != 0) {
    opts.memory_budget_bytes = spec.memory_budget_bytes;
  }
  if (spec.max_queued != 0) opts.max_queued = spec.max_queued;
  runtime::JobManager manager(opts);

  struct ClientJob {
    const runtime::ServeJobSpec* job = nullptr;
    std::string name;
    Status status = Status::Ok();
    std::string diff;
    std::uint64_t output_bytes = 0;
  };
  std::vector<ClientJob> clients;
  for (const runtime::ServeJobSpec& job : spec.jobs) {
    const std::string base = job.name.empty() ? job.spec.app : job.name;
    for (std::size_t r = 0; r < job.repeat; ++r) {
      ClientJob c;
      c.job = &job;
      c.name = job.repeat > 1 ? base + "#" + std::to_string(r) : base;
      clients.push_back(std::move(c));
    }
  }
  std::printf("serve: pool=%llu threads, budget=%s, %llu job(s) from %s\n",
              (unsigned long long)manager.options().num_threads,
              format_bytes(manager.options().memory_budget_bytes).c_str(),
              (unsigned long long)clients.size(), path.c_str());

  // One client thread per job instance so submissions genuinely race: the
  // manager's admission queue and leases are the only coordination.
  std::vector<std::thread> threads;
  threads.reserve(clients.size());
  for (ClientJob& client : clients) {
    threads.emplace_back([&client, &manager] {
      ref::ManagedCellOptions opts;
      opts.priority = client.job->priority;
      opts.threads = client.job->threads;
      opts.memory_bytes = client.job->memory_bytes;
      opts.name = client.name;
      auto outcome = ref::run_cell_managed(client.job->spec, manager, opts);
      if (!outcome.ok()) {
        client.status = outcome.status();
        return;
      }
      client.output_bytes = outcome->sut_canonical.size();
      if (!outcome->match) {
        client.status = Status::Internal("diverges from the reference");
        client.diff = outcome->diff;
      }
    });
  }
  for (std::thread& t : threads) t.join();
  manager.drain();

  std::size_t failed = 0;
  for (const ClientJob& client : clients) {
    if (client.status.ok()) {
      std::printf("serve: PASS %-24s app=%-10s %llu output bytes\n",
                  client.name.c_str(), client.job->spec.app.c_str(),
                  (unsigned long long)client.output_bytes);
    } else {
      ++failed;
      std::printf("serve: FAIL %-24s app=%-10s %s\n", client.name.c_str(),
                  client.job->spec.app.c_str(),
                  client.status.to_string().c_str());
      if (!client.diff.empty()) std::printf("%s\n", client.diff.c_str());
    }
  }
  std::printf("serve: %llu/%llu jobs conformant\n",
              (unsigned long long)(clients.size() - failed),
              (unsigned long long)clients.size());
  if (failed != 0) {
    return Status::Internal(std::to_string(failed) + " job(s) failed");
  }
  return Status::Ok();
}

int run_main(int argc, char** argv) {
  if (argc < 2) {
    usage();
    return 2;
  }
  std::string command = argv[1];
  // `--replay=<file>` / `--replay <file>` are accepted in command position
  // as aliases for the replay subcommand (repro files print this form).
  if (command.rfind("--replay", 0) == 0) {
    std::string file;
    const std::size_t eq = command.find('=');
    if (eq != std::string::npos) {
      file = command.substr(eq + 1);
    } else if (argc >= 3) {
      file = argv[2];
    }
    if (file.empty()) {
      std::fprintf(stderr, "error: --replay needs a spec file\n");
      return 2;
    }
    const Status st = cmd_replay(file);
    if (!st.ok()) {
      std::fprintf(stderr, "error: %s\n", st.to_string().c_str());
      return 1;
    }
    return 0;
  }
  auto flags_or = Flags::parse(argc - 2, argv + 2, kCommonFlags);
  if (!flags_or.ok()) {
    std::fprintf(stderr, "error: %s\n",
                 flags_or.status().to_string().c_str());
    return 2;
  }
  const Flags& flags = *flags_or;

  Status st = Status::InvalidArgument("unknown command: " + command);
  if (command == "wordcount") st = cmd_wordcount(flags);
  else if (command == "kmeans") st = cmd_kmeans(flags);
  else if (command == "sort") st = cmd_sort(flags);
  else if (command == "grep") st = cmd_grep(flags);
  else if (command == "histogram") st = cmd_histogram(flags);
  else if (command == "index") st = cmd_index(flags);
  else if (command == "generate") st = cmd_generate(flags);
  else if (command == "replay") {
    if (flags.positional().empty()) {
      st = Status::InvalidArgument("replay needs a spec file");
    } else {
      st = cmd_replay(flags.positional()[0]);
    }
  }
  else if (command == "serve") st = cmd_serve(flags);
  else if (command == "graph") st = cmd_graph(flags);
  else if (command == "cluster") st = cmd_cluster(flags);
  else usage();

  if (!st.ok()) {
    std::fprintf(stderr, "error: %s\n", st.to_string().c_str());
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace supmr::tools

int main(int argc, char** argv) {
  return supmr::tools::run_main(argc, argv);
}
