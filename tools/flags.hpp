// Tiny command-line flag parser for the supmr CLI.
//
// Supports --name=value and --name (boolean) flags interleaved with
// positional arguments. Unknown flags are an error so typos fail loudly.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "common/status.hpp"
#include "common/units.hpp"

namespace supmr::tools {

class Flags {
 public:
  // `known` lists the accepted flag names (without the leading --).
  static StatusOr<Flags> parse(int argc, char** argv,
                               const std::set<std::string>& known) {
    Flags flags;
    for (int i = 0; i < argc; ++i) {
      const std::string arg = argv[i];
      if (arg.rfind("--", 0) == 0) {
        const std::size_t eq = arg.find('=');
        const std::string name = arg.substr(2, eq == std::string::npos
                                                   ? std::string::npos
                                                   : eq - 2);
        if (known.find(name) == known.end()) {
          return Status::InvalidArgument("unknown flag --" + name);
        }
        flags.values_[name] =
            eq == std::string::npos ? "true" : arg.substr(eq + 1);
      } else {
        flags.positional_.push_back(arg);
      }
    }
    return flags;
  }

  const std::vector<std::string>& positional() const { return positional_; }

  std::optional<std::string> get(const std::string& name) const {
    auto it = values_.find(name);
    if (it == values_.end()) return std::nullopt;
    return it->second;
  }

  std::string get_or(const std::string& name, std::string def) const {
    auto v = get(name);
    return v ? *v : def;
  }

  bool get_bool(const std::string& name) const {
    auto v = get(name);
    return v && *v != "false" && *v != "0";
  }

  StatusOr<std::uint64_t> get_size(const std::string& name,
                                   std::uint64_t def) const {
    auto v = get(name);
    if (!v) return def;
    auto parsed = parse_size(*v);
    if (!parsed) {
      return Status::InvalidArgument("bad size for --" + name + ": " + *v);
    }
    return *parsed;
  }

  StatusOr<std::uint64_t> get_int(const std::string& name,
                                  std::uint64_t def) const {
    auto v = get(name);
    if (!v) return def;
    char* end = nullptr;
    const std::uint64_t parsed = std::strtoull(v->c_str(), &end, 10);
    if (end == v->c_str() || *end != '\0') {
      return Status::InvalidArgument("bad integer for --" + name + ": " + *v);
    }
    return parsed;
  }

  StatusOr<double> get_double(const std::string& name, double def) const {
    auto v = get(name);
    if (!v) return def;
    char* end = nullptr;
    const double parsed = std::strtod(v->c_str(), &end);
    if (end == v->c_str() || *end != '\0') {
      return Status::InvalidArgument("bad number for --" + name + ": " + *v);
    }
    return parsed;
  }

 private:
  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
};

}  // namespace supmr::tools
