#!/usr/bin/env python3
"""Line-coverage summary from gcov JSON, scoped to source prefixes.

Minimal stand-in for gcovr on hosts that only ship gcc's gcov: walks a
--coverage build tree for .gcda note files, asks `gcov --json-format
--stdout` for per-line execution counts, and aggregates line coverage per
source file across every translation unit that instantiated it (so
header-only code like src/merge/*.hpp is attributed to the header, not the
including .cpp).

Usage:
  tools/coverage_summary.py BUILD_DIR --filter src/merge --filter src/containers \
      [--fail-under PCT] [--gcov GCOV]

A line is "covered" if any TU executed it at least once; "executable" if any
TU reports it as instrumented. Exit status is non-zero when the aggregate
over all filtered files falls below --fail-under.
"""

import argparse
import json
import os
import subprocess
import sys


def gcov_json_docs(gcda, gcov, repo_root):
    """Run gcov on one .gcda and yield parsed JSON documents."""
    try:
        proc = subprocess.run(
            [gcov, "--json-format", "--stdout", os.path.basename(gcda)],
            cwd=os.path.dirname(gcda),
            capture_output=True,
            text=True,
            timeout=120,
        )
    except (OSError, subprocess.TimeoutExpired) as err:
        print(f"coverage: gcov failed on {gcda}: {err}", file=sys.stderr)
        return
    # One JSON document per line of stdout (gcov emits one per input file).
    for line in proc.stdout.splitlines():
        line = line.strip()
        if not line.startswith("{"):
            continue
        try:
            yield json.loads(line)
        except json.JSONDecodeError:
            continue


def normalize(path, repo_root):
    """Repo-relative path for a gcov 'file' entry, or None if external."""
    if not os.path.isabs(path):
        path = os.path.join(repo_root, path)
    path = os.path.normpath(path)
    root = repo_root.rstrip(os.sep) + os.sep
    if not path.startswith(root):
        return None
    return path[len(root):]


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("build_dir", help="--coverage build tree to scan")
    ap.add_argument("--filter", action="append", default=[],
                    help="repo-relative path prefix to include (repeatable)")
    ap.add_argument("--fail-under", type=float, default=None,
                    help="fail if aggregate line coverage %% is below this")
    ap.add_argument("--gcov", default=os.environ.get("GCOV", "gcov"),
                    help="gcov executable (default: $GCOV or 'gcov')")
    args = ap.parse_args()

    build_dir = os.path.abspath(args.build_dir)
    repo_root = os.path.abspath(os.path.join(os.path.dirname(__file__), ".."))
    filters = [f.rstrip("/") + "/" for f in args.filter] or [""]

    gcdas = []
    for dirpath, _dirnames, filenames in os.walk(build_dir):
        gcdas.extend(os.path.join(dirpath, f)
                     for f in filenames if f.endswith(".gcda"))
    if not gcdas:
        print(f"coverage: no .gcda files under {build_dir} "
              "(build with --coverage and run the tests first)",
              file=sys.stderr)
        return 2

    # file -> line -> max count across TUs
    lines_by_file = {}
    for gcda in sorted(gcdas):
        for doc in gcov_json_docs(gcda, args.gcov, repo_root):
            for entry in doc.get("files", []):
                rel = normalize(entry.get("file", ""), repo_root)
                if rel is None or not any(rel.startswith(f) for f in filters):
                    continue
                per_line = lines_by_file.setdefault(rel, {})
                for ln in entry.get("lines", []):
                    num = ln.get("line_number")
                    cnt = ln.get("count", 0)
                    if num is None:
                        continue
                    per_line[num] = max(per_line.get(num, 0), cnt)

    if not lines_by_file:
        print("coverage: no instrumented lines matched "
              f"filters {args.filter}", file=sys.stderr)
        return 2

    total_exec = total_cov = 0
    width = max(len(f) for f in lines_by_file)
    for rel in sorted(lines_by_file):
        per_line = lines_by_file[rel]
        execable = len(per_line)
        covered = sum(1 for c in per_line.values() if c > 0)
        total_exec += execable
        total_cov += covered
        pct = 100.0 * covered / execable if execable else 100.0
        print(f"{rel:<{width}}  {covered:>5}/{execable:<5}  {pct:6.1f}%")

    aggregate = 100.0 * total_cov / total_exec if total_exec else 100.0
    print(f"{'TOTAL':<{width}}  {total_cov:>5}/{total_exec:<5}  "
          f"{aggregate:6.1f}%")

    if args.fail_under is not None and aggregate < args.fail_under:
        print(f"coverage: {aggregate:.1f}% is below the "
              f"--fail-under floor of {args.fail_under:.1f}%",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
