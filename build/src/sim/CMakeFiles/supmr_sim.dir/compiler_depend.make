# Empty compiler generated dependencies file for supmr_sim.
# This may be replaced when dependencies are built.
