file(REMOVE_RECURSE
  "CMakeFiles/supmr_sim.dir/engine.cpp.o"
  "CMakeFiles/supmr_sim.dir/engine.cpp.o.d"
  "CMakeFiles/supmr_sim.dir/machine.cpp.o"
  "CMakeFiles/supmr_sim.dir/machine.cpp.o.d"
  "CMakeFiles/supmr_sim.dir/resource.cpp.o"
  "CMakeFiles/supmr_sim.dir/resource.cpp.o.d"
  "CMakeFiles/supmr_sim.dir/tracer.cpp.o"
  "CMakeFiles/supmr_sim.dir/tracer.cpp.o.d"
  "libsupmr_sim.a"
  "libsupmr_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/supmr_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
