file(REMOVE_RECURSE
  "libsupmr_sim.a"
)
