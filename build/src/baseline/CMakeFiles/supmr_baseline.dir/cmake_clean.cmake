file(REMOVE_RECURSE
  "CMakeFiles/supmr_baseline.dir/omp_sort.cpp.o"
  "CMakeFiles/supmr_baseline.dir/omp_sort.cpp.o.d"
  "libsupmr_baseline.a"
  "libsupmr_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/supmr_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
