file(REMOVE_RECURSE
  "libsupmr_baseline.a"
)
