# Empty compiler generated dependencies file for supmr_baseline.
# This may be replaced when dependencies are built.
