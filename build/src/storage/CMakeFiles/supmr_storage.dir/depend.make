# Empty dependencies file for supmr_storage.
# This may be replaced when dependencies are built.
