file(REMOVE_RECURSE
  "CMakeFiles/supmr_storage.dir/file_device.cpp.o"
  "CMakeFiles/supmr_storage.dir/file_device.cpp.o.d"
  "CMakeFiles/supmr_storage.dir/hdfs_sim.cpp.o"
  "CMakeFiles/supmr_storage.dir/hdfs_sim.cpp.o.d"
  "CMakeFiles/supmr_storage.dir/mem_device.cpp.o"
  "CMakeFiles/supmr_storage.dir/mem_device.cpp.o.d"
  "CMakeFiles/supmr_storage.dir/raid0_device.cpp.o"
  "CMakeFiles/supmr_storage.dir/raid0_device.cpp.o.d"
  "CMakeFiles/supmr_storage.dir/rate_limiter.cpp.o"
  "CMakeFiles/supmr_storage.dir/rate_limiter.cpp.o.d"
  "CMakeFiles/supmr_storage.dir/throttled_device.cpp.o"
  "CMakeFiles/supmr_storage.dir/throttled_device.cpp.o.d"
  "libsupmr_storage.a"
  "libsupmr_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/supmr_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
