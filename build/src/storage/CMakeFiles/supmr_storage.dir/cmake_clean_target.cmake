file(REMOVE_RECURSE
  "libsupmr_storage.a"
)
