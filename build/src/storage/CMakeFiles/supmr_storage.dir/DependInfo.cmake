
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/storage/file_device.cpp" "src/storage/CMakeFiles/supmr_storage.dir/file_device.cpp.o" "gcc" "src/storage/CMakeFiles/supmr_storage.dir/file_device.cpp.o.d"
  "/root/repo/src/storage/hdfs_sim.cpp" "src/storage/CMakeFiles/supmr_storage.dir/hdfs_sim.cpp.o" "gcc" "src/storage/CMakeFiles/supmr_storage.dir/hdfs_sim.cpp.o.d"
  "/root/repo/src/storage/mem_device.cpp" "src/storage/CMakeFiles/supmr_storage.dir/mem_device.cpp.o" "gcc" "src/storage/CMakeFiles/supmr_storage.dir/mem_device.cpp.o.d"
  "/root/repo/src/storage/raid0_device.cpp" "src/storage/CMakeFiles/supmr_storage.dir/raid0_device.cpp.o" "gcc" "src/storage/CMakeFiles/supmr_storage.dir/raid0_device.cpp.o.d"
  "/root/repo/src/storage/rate_limiter.cpp" "src/storage/CMakeFiles/supmr_storage.dir/rate_limiter.cpp.o" "gcc" "src/storage/CMakeFiles/supmr_storage.dir/rate_limiter.cpp.o.d"
  "/root/repo/src/storage/throttled_device.cpp" "src/storage/CMakeFiles/supmr_storage.dir/throttled_device.cpp.o" "gcc" "src/storage/CMakeFiles/supmr_storage.dir/throttled_device.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/supmr_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
