file(REMOVE_RECURSE
  "CMakeFiles/supmr_containers.dir/spilling_hash.cpp.o"
  "CMakeFiles/supmr_containers.dir/spilling_hash.cpp.o.d"
  "libsupmr_containers.a"
  "libsupmr_containers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/supmr_containers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
