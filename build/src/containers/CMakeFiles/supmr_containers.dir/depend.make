# Empty dependencies file for supmr_containers.
# This may be replaced when dependencies are built.
