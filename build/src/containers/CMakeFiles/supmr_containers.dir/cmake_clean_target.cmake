file(REMOVE_RECURSE
  "libsupmr_containers.a"
)
