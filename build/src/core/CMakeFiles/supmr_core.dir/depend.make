# Empty dependencies file for supmr_core.
# This may be replaced when dependencies are built.
