file(REMOVE_RECURSE
  "libsupmr_core.a"
)
