file(REMOVE_RECURSE
  "CMakeFiles/supmr_core.dir/job.cpp.o"
  "CMakeFiles/supmr_core.dir/job.cpp.o.d"
  "CMakeFiles/supmr_core.dir/proc_sampler.cpp.o"
  "CMakeFiles/supmr_core.dir/proc_sampler.cpp.o.d"
  "CMakeFiles/supmr_core.dir/report.cpp.o"
  "CMakeFiles/supmr_core.dir/report.cpp.o.d"
  "libsupmr_core.a"
  "libsupmr_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/supmr_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
