file(REMOVE_RECURSE
  "CMakeFiles/supmr_ingest.dir/adaptive.cpp.o"
  "CMakeFiles/supmr_ingest.dir/adaptive.cpp.o.d"
  "CMakeFiles/supmr_ingest.dir/hybrid_source.cpp.o"
  "CMakeFiles/supmr_ingest.dir/hybrid_source.cpp.o.d"
  "CMakeFiles/supmr_ingest.dir/pipeline.cpp.o"
  "CMakeFiles/supmr_ingest.dir/pipeline.cpp.o.d"
  "CMakeFiles/supmr_ingest.dir/record_format.cpp.o"
  "CMakeFiles/supmr_ingest.dir/record_format.cpp.o.d"
  "CMakeFiles/supmr_ingest.dir/source.cpp.o"
  "CMakeFiles/supmr_ingest.dir/source.cpp.o.d"
  "libsupmr_ingest.a"
  "libsupmr_ingest.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/supmr_ingest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
