file(REMOVE_RECURSE
  "libsupmr_ingest.a"
)
