# Empty dependencies file for supmr_ingest.
# This may be replaced when dependencies are built.
