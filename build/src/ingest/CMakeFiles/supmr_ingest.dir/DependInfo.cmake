
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ingest/adaptive.cpp" "src/ingest/CMakeFiles/supmr_ingest.dir/adaptive.cpp.o" "gcc" "src/ingest/CMakeFiles/supmr_ingest.dir/adaptive.cpp.o.d"
  "/root/repo/src/ingest/hybrid_source.cpp" "src/ingest/CMakeFiles/supmr_ingest.dir/hybrid_source.cpp.o" "gcc" "src/ingest/CMakeFiles/supmr_ingest.dir/hybrid_source.cpp.o.d"
  "/root/repo/src/ingest/pipeline.cpp" "src/ingest/CMakeFiles/supmr_ingest.dir/pipeline.cpp.o" "gcc" "src/ingest/CMakeFiles/supmr_ingest.dir/pipeline.cpp.o.d"
  "/root/repo/src/ingest/record_format.cpp" "src/ingest/CMakeFiles/supmr_ingest.dir/record_format.cpp.o" "gcc" "src/ingest/CMakeFiles/supmr_ingest.dir/record_format.cpp.o.d"
  "/root/repo/src/ingest/source.cpp" "src/ingest/CMakeFiles/supmr_ingest.dir/source.cpp.o" "gcc" "src/ingest/CMakeFiles/supmr_ingest.dir/source.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/supmr_common.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/supmr_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/threading/CMakeFiles/supmr_threading.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
