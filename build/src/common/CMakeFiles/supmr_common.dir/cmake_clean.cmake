file(REMOVE_RECURSE
  "CMakeFiles/supmr_common.dir/json.cpp.o"
  "CMakeFiles/supmr_common.dir/json.cpp.o.d"
  "CMakeFiles/supmr_common.dir/logging.cpp.o"
  "CMakeFiles/supmr_common.dir/logging.cpp.o.d"
  "CMakeFiles/supmr_common.dir/phase_timer.cpp.o"
  "CMakeFiles/supmr_common.dir/phase_timer.cpp.o.d"
  "CMakeFiles/supmr_common.dir/rng.cpp.o"
  "CMakeFiles/supmr_common.dir/rng.cpp.o.d"
  "CMakeFiles/supmr_common.dir/stats.cpp.o"
  "CMakeFiles/supmr_common.dir/stats.cpp.o.d"
  "CMakeFiles/supmr_common.dir/status.cpp.o"
  "CMakeFiles/supmr_common.dir/status.cpp.o.d"
  "CMakeFiles/supmr_common.dir/timeseries.cpp.o"
  "CMakeFiles/supmr_common.dir/timeseries.cpp.o.d"
  "CMakeFiles/supmr_common.dir/units.cpp.o"
  "CMakeFiles/supmr_common.dir/units.cpp.o.d"
  "libsupmr_common.a"
  "libsupmr_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/supmr_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
