# Empty compiler generated dependencies file for supmr_common.
# This may be replaced when dependencies are built.
