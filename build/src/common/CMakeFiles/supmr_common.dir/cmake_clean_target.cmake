file(REMOVE_RECURSE
  "libsupmr_common.a"
)
