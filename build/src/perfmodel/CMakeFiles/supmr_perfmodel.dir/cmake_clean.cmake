file(REMOVE_RECURSE
  "CMakeFiles/supmr_perfmodel.dir/experiments.cpp.o"
  "CMakeFiles/supmr_perfmodel.dir/experiments.cpp.o.d"
  "CMakeFiles/supmr_perfmodel.dir/sim_job.cpp.o"
  "CMakeFiles/supmr_perfmodel.dir/sim_job.cpp.o.d"
  "libsupmr_perfmodel.a"
  "libsupmr_perfmodel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/supmr_perfmodel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
