file(REMOVE_RECURSE
  "libsupmr_perfmodel.a"
)
