# Empty dependencies file for supmr_perfmodel.
# This may be replaced when dependencies are built.
