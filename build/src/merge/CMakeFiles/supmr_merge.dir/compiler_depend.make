# Empty compiler generated dependencies file for supmr_merge.
# This may be replaced when dependencies are built.
