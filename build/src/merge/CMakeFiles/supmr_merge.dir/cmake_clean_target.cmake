file(REMOVE_RECURSE
  "libsupmr_merge.a"
)
