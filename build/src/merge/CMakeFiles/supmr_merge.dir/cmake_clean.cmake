file(REMOVE_RECURSE
  "CMakeFiles/supmr_merge.dir/external_sorter.cpp.o"
  "CMakeFiles/supmr_merge.dir/external_sorter.cpp.o.d"
  "libsupmr_merge.a"
  "libsupmr_merge.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/supmr_merge.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
