file(REMOVE_RECURSE
  "libsupmr_wload.a"
)
