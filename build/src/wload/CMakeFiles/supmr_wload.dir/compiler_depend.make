# Empty compiler generated dependencies file for supmr_wload.
# This may be replaced when dependencies are built.
