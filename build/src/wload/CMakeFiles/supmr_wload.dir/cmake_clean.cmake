file(REMOVE_RECURSE
  "CMakeFiles/supmr_wload.dir/numeric.cpp.o"
  "CMakeFiles/supmr_wload.dir/numeric.cpp.o.d"
  "CMakeFiles/supmr_wload.dir/teragen.cpp.o"
  "CMakeFiles/supmr_wload.dir/teragen.cpp.o.d"
  "CMakeFiles/supmr_wload.dir/text_corpus.cpp.o"
  "CMakeFiles/supmr_wload.dir/text_corpus.cpp.o.d"
  "libsupmr_wload.a"
  "libsupmr_wload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/supmr_wload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
