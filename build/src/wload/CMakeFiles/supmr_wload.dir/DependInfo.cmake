
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/wload/numeric.cpp" "src/wload/CMakeFiles/supmr_wload.dir/numeric.cpp.o" "gcc" "src/wload/CMakeFiles/supmr_wload.dir/numeric.cpp.o.d"
  "/root/repo/src/wload/teragen.cpp" "src/wload/CMakeFiles/supmr_wload.dir/teragen.cpp.o" "gcc" "src/wload/CMakeFiles/supmr_wload.dir/teragen.cpp.o.d"
  "/root/repo/src/wload/text_corpus.cpp" "src/wload/CMakeFiles/supmr_wload.dir/text_corpus.cpp.o" "gcc" "src/wload/CMakeFiles/supmr_wload.dir/text_corpus.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/supmr_common.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/supmr_storage.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
