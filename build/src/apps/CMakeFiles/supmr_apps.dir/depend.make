# Empty dependencies file for supmr_apps.
# This may be replaced when dependencies are built.
