file(REMOVE_RECURSE
  "libsupmr_apps.a"
)
