file(REMOVE_RECURSE
  "CMakeFiles/supmr_apps.dir/external_word_count.cpp.o"
  "CMakeFiles/supmr_apps.dir/external_word_count.cpp.o.d"
  "CMakeFiles/supmr_apps.dir/grep.cpp.o"
  "CMakeFiles/supmr_apps.dir/grep.cpp.o.d"
  "CMakeFiles/supmr_apps.dir/histogram.cpp.o"
  "CMakeFiles/supmr_apps.dir/histogram.cpp.o.d"
  "CMakeFiles/supmr_apps.dir/inverted_index.cpp.o"
  "CMakeFiles/supmr_apps.dir/inverted_index.cpp.o.d"
  "CMakeFiles/supmr_apps.dir/kmeans.cpp.o"
  "CMakeFiles/supmr_apps.dir/kmeans.cpp.o.d"
  "CMakeFiles/supmr_apps.dir/linear_regression.cpp.o"
  "CMakeFiles/supmr_apps.dir/linear_regression.cpp.o.d"
  "CMakeFiles/supmr_apps.dir/matrix_multiply.cpp.o"
  "CMakeFiles/supmr_apps.dir/matrix_multiply.cpp.o.d"
  "CMakeFiles/supmr_apps.dir/tera_sort.cpp.o"
  "CMakeFiles/supmr_apps.dir/tera_sort.cpp.o.d"
  "CMakeFiles/supmr_apps.dir/word_count.cpp.o"
  "CMakeFiles/supmr_apps.dir/word_count.cpp.o.d"
  "libsupmr_apps.a"
  "libsupmr_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/supmr_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
