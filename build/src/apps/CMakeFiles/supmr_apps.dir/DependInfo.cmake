
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/apps/external_word_count.cpp" "src/apps/CMakeFiles/supmr_apps.dir/external_word_count.cpp.o" "gcc" "src/apps/CMakeFiles/supmr_apps.dir/external_word_count.cpp.o.d"
  "/root/repo/src/apps/grep.cpp" "src/apps/CMakeFiles/supmr_apps.dir/grep.cpp.o" "gcc" "src/apps/CMakeFiles/supmr_apps.dir/grep.cpp.o.d"
  "/root/repo/src/apps/histogram.cpp" "src/apps/CMakeFiles/supmr_apps.dir/histogram.cpp.o" "gcc" "src/apps/CMakeFiles/supmr_apps.dir/histogram.cpp.o.d"
  "/root/repo/src/apps/inverted_index.cpp" "src/apps/CMakeFiles/supmr_apps.dir/inverted_index.cpp.o" "gcc" "src/apps/CMakeFiles/supmr_apps.dir/inverted_index.cpp.o.d"
  "/root/repo/src/apps/kmeans.cpp" "src/apps/CMakeFiles/supmr_apps.dir/kmeans.cpp.o" "gcc" "src/apps/CMakeFiles/supmr_apps.dir/kmeans.cpp.o.d"
  "/root/repo/src/apps/linear_regression.cpp" "src/apps/CMakeFiles/supmr_apps.dir/linear_regression.cpp.o" "gcc" "src/apps/CMakeFiles/supmr_apps.dir/linear_regression.cpp.o.d"
  "/root/repo/src/apps/matrix_multiply.cpp" "src/apps/CMakeFiles/supmr_apps.dir/matrix_multiply.cpp.o" "gcc" "src/apps/CMakeFiles/supmr_apps.dir/matrix_multiply.cpp.o.d"
  "/root/repo/src/apps/tera_sort.cpp" "src/apps/CMakeFiles/supmr_apps.dir/tera_sort.cpp.o" "gcc" "src/apps/CMakeFiles/supmr_apps.dir/tera_sort.cpp.o.d"
  "/root/repo/src/apps/word_count.cpp" "src/apps/CMakeFiles/supmr_apps.dir/word_count.cpp.o" "gcc" "src/apps/CMakeFiles/supmr_apps.dir/word_count.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/supmr_core.dir/DependInfo.cmake"
  "/root/repo/build/src/containers/CMakeFiles/supmr_containers.dir/DependInfo.cmake"
  "/root/repo/build/src/merge/CMakeFiles/supmr_merge.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/supmr_common.dir/DependInfo.cmake"
  "/root/repo/build/src/ingest/CMakeFiles/supmr_ingest.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/supmr_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/threading/CMakeFiles/supmr_threading.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
