file(REMOVE_RECURSE
  "libsupmr_threading.a"
)
