# Empty compiler generated dependencies file for supmr_threading.
# This may be replaced when dependencies are built.
