file(REMOVE_RECURSE
  "CMakeFiles/supmr_threading.dir/thread_pool.cpp.o"
  "CMakeFiles/supmr_threading.dir/thread_pool.cpp.o.d"
  "libsupmr_threading.a"
  "libsupmr_threading.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/supmr_threading.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
