file(REMOVE_RECURSE
  "CMakeFiles/fway_test.dir/fway_test.cpp.o"
  "CMakeFiles/fway_test.dir/fway_test.cpp.o.d"
  "fway_test"
  "fway_test.pdb"
  "fway_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fway_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
