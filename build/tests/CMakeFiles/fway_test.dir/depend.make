# Empty dependencies file for fway_test.
# This may be replaced when dependencies are built.
