file(REMOVE_RECURSE
  "CMakeFiles/spilling_test.dir/spilling_test.cpp.o"
  "CMakeFiles/spilling_test.dir/spilling_test.cpp.o.d"
  "spilling_test"
  "spilling_test.pdb"
  "spilling_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spilling_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
