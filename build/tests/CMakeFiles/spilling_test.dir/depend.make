# Empty dependencies file for spilling_test.
# This may be replaced when dependencies are built.
