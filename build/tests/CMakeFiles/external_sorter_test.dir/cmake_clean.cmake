file(REMOVE_RECURSE
  "CMakeFiles/external_sorter_test.dir/external_sorter_test.cpp.o"
  "CMakeFiles/external_sorter_test.dir/external_sorter_test.cpp.o.d"
  "external_sorter_test"
  "external_sorter_test.pdb"
  "external_sorter_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/external_sorter_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
