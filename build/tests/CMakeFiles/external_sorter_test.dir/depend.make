# Empty dependencies file for external_sorter_test.
# This may be replaced when dependencies are built.
