file(REMOVE_RECURSE
  "CMakeFiles/apps2_test.dir/apps2_test.cpp.o"
  "CMakeFiles/apps2_test.dir/apps2_test.cpp.o.d"
  "apps2_test"
  "apps2_test.pdb"
  "apps2_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/apps2_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
