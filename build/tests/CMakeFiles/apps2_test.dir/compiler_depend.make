# Empty compiler generated dependencies file for apps2_test.
# This may be replaced when dependencies are built.
