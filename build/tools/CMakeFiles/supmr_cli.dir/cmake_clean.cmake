file(REMOVE_RECURSE
  "CMakeFiles/supmr_cli.dir/supmr_cli.cpp.o"
  "CMakeFiles/supmr_cli.dir/supmr_cli.cpp.o.d"
  "supmr"
  "supmr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/supmr_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
