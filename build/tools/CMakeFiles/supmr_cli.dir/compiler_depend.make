# Empty compiler generated dependencies file for supmr_cli.
# This may be replaced when dependencies are built.
