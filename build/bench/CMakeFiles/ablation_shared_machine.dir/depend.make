# Empty dependencies file for ablation_shared_machine.
# This may be replaced when dependencies are built.
