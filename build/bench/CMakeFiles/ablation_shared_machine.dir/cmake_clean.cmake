file(REMOVE_RECURSE
  "CMakeFiles/ablation_shared_machine.dir/ablation_shared_machine.cpp.o"
  "CMakeFiles/ablation_shared_machine.dir/ablation_shared_machine.cpp.o.d"
  "ablation_shared_machine"
  "ablation_shared_machine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_shared_machine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
