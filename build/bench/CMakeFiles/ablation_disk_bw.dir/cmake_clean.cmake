file(REMOVE_RECURSE
  "CMakeFiles/ablation_disk_bw.dir/ablation_disk_bw.cpp.o"
  "CMakeFiles/ablation_disk_bw.dir/ablation_disk_bw.cpp.o.d"
  "ablation_disk_bw"
  "ablation_disk_bw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_disk_bw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
