# Empty dependencies file for ablation_disk_bw.
# This may be replaced when dependencies are built.
