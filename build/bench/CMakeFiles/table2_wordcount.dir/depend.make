# Empty dependencies file for table2_wordcount.
# This may be replaced when dependencies are built.
