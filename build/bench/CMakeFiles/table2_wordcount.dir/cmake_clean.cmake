file(REMOVE_RECURSE
  "CMakeFiles/table2_wordcount.dir/table2_wordcount.cpp.o"
  "CMakeFiles/table2_wordcount.dir/table2_wordcount.cpp.o.d"
  "table2_wordcount"
  "table2_wordcount.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_wordcount.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
