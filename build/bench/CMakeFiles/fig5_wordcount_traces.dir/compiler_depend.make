# Empty compiler generated dependencies file for fig5_wordcount_traces.
# This may be replaced when dependencies are built.
