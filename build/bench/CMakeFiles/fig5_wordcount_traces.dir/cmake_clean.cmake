file(REMOVE_RECURSE
  "CMakeFiles/fig5_wordcount_traces.dir/fig5_wordcount_traces.cpp.o"
  "CMakeFiles/fig5_wordcount_traces.dir/fig5_wordcount_traces.cpp.o.d"
  "fig5_wordcount_traces"
  "fig5_wordcount_traces.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_wordcount_traces.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
