file(REMOVE_RECURSE
  "CMakeFiles/fig6_sort_pway_trace.dir/fig6_sort_pway_trace.cpp.o"
  "CMakeFiles/fig6_sort_pway_trace.dir/fig6_sort_pway_trace.cpp.o.d"
  "fig6_sort_pway_trace"
  "fig6_sort_pway_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_sort_pway_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
