# Empty dependencies file for fig6_sort_pway_trace.
# This may be replaced when dependencies are built.
