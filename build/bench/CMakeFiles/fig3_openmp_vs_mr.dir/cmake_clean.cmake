file(REMOVE_RECURSE
  "CMakeFiles/fig3_openmp_vs_mr.dir/fig3_openmp_vs_mr.cpp.o"
  "CMakeFiles/fig3_openmp_vs_mr.dir/fig3_openmp_vs_mr.cpp.o.d"
  "fig3_openmp_vs_mr"
  "fig3_openmp_vs_mr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_openmp_vs_mr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
