# Empty compiler generated dependencies file for fig3_openmp_vs_mr.
# This may be replaced when dependencies are built.
