# Empty compiler generated dependencies file for table2_sort.
# This may be replaced when dependencies are built.
