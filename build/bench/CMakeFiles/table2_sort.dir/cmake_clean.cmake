file(REMOVE_RECURSE
  "CMakeFiles/table2_sort.dir/table2_sort.cpp.o"
  "CMakeFiles/table2_sort.dir/table2_sort.cpp.o.d"
  "table2_sort"
  "table2_sort.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_sort.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
