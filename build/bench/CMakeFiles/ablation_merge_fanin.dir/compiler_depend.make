# Empty compiler generated dependencies file for ablation_merge_fanin.
# This may be replaced when dependencies are built.
