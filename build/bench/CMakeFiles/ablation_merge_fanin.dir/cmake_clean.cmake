file(REMOVE_RECURSE
  "CMakeFiles/ablation_merge_fanin.dir/ablation_merge_fanin.cpp.o"
  "CMakeFiles/ablation_merge_fanin.dir/ablation_merge_fanin.cpp.o.d"
  "ablation_merge_fanin"
  "ablation_merge_fanin.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_merge_fanin.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
