file(REMOVE_RECURSE
  "CMakeFiles/fig7_hdfs_casestudy.dir/fig7_hdfs_casestudy.cpp.o"
  "CMakeFiles/fig7_hdfs_casestudy.dir/fig7_hdfs_casestudy.cpp.o.d"
  "fig7_hdfs_casestudy"
  "fig7_hdfs_casestudy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_hdfs_casestudy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
