# Empty compiler generated dependencies file for fig7_hdfs_casestudy.
# This may be replaced when dependencies are built.
