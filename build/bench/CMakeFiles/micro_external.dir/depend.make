# Empty dependencies file for micro_external.
# This may be replaced when dependencies are built.
