file(REMOVE_RECURSE
  "CMakeFiles/micro_external.dir/micro_external.cpp.o"
  "CMakeFiles/micro_external.dir/micro_external.cpp.o.d"
  "micro_external"
  "micro_external.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_external.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
