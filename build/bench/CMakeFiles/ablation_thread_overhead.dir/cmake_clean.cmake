file(REMOVE_RECURSE
  "CMakeFiles/ablation_thread_overhead.dir/ablation_thread_overhead.cpp.o"
  "CMakeFiles/ablation_thread_overhead.dir/ablation_thread_overhead.cpp.o.d"
  "ablation_thread_overhead"
  "ablation_thread_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_thread_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
