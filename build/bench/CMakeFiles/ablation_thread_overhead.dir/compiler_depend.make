# Empty compiler generated dependencies file for ablation_thread_overhead.
# This may be replaced when dependencies are built.
