file(REMOVE_RECURSE
  "CMakeFiles/ablation_container.dir/ablation_container.cpp.o"
  "CMakeFiles/ablation_container.dir/ablation_container.cpp.o.d"
  "ablation_container"
  "ablation_container.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_container.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
