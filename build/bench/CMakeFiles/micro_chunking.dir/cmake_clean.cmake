file(REMOVE_RECURSE
  "CMakeFiles/micro_chunking.dir/micro_chunking.cpp.o"
  "CMakeFiles/micro_chunking.dir/micro_chunking.cpp.o.d"
  "micro_chunking"
  "micro_chunking.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_chunking.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
