# Empty dependencies file for real_pipeline.
# This may be replaced when dependencies are built.
