file(REMOVE_RECURSE
  "CMakeFiles/real_pipeline.dir/real_pipeline.cpp.o"
  "CMakeFiles/real_pipeline.dir/real_pipeline.cpp.o.d"
  "real_pipeline"
  "real_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/real_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
