
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/micro_primitives.cpp" "bench/CMakeFiles/micro_primitives.dir/micro_primitives.cpp.o" "gcc" "bench/CMakeFiles/micro_primitives.dir/micro_primitives.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/apps/CMakeFiles/supmr_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/baseline/CMakeFiles/supmr_baseline.dir/DependInfo.cmake"
  "/root/repo/build/src/perfmodel/CMakeFiles/supmr_perfmodel.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/supmr_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/wload/CMakeFiles/supmr_wload.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/supmr_core.dir/DependInfo.cmake"
  "/root/repo/build/src/ingest/CMakeFiles/supmr_ingest.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/supmr_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/containers/CMakeFiles/supmr_containers.dir/DependInfo.cmake"
  "/root/repo/build/src/merge/CMakeFiles/supmr_merge.dir/DependInfo.cmake"
  "/root/repo/build/src/threading/CMakeFiles/supmr_threading.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/supmr_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
