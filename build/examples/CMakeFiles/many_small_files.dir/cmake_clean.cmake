file(REMOVE_RECURSE
  "CMakeFiles/many_small_files.dir/many_small_files.cpp.o"
  "CMakeFiles/many_small_files.dir/many_small_files.cpp.o.d"
  "many_small_files"
  "many_small_files.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/many_small_files.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
