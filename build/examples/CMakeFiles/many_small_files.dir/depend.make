# Empty dependencies file for many_small_files.
# This may be replaced when dependencies are built.
