# Empty dependencies file for terasort_pipeline.
# This may be replaced when dependencies are built.
