file(REMOVE_RECURSE
  "CMakeFiles/terasort_pipeline.dir/terasort_pipeline.cpp.o"
  "CMakeFiles/terasort_pipeline.dir/terasort_pipeline.cpp.o.d"
  "terasort_pipeline"
  "terasort_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/terasort_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
