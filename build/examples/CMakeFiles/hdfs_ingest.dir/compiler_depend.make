# Empty compiler generated dependencies file for hdfs_ingest.
# This may be replaced when dependencies are built.
