file(REMOVE_RECURSE
  "CMakeFiles/hdfs_ingest.dir/hdfs_ingest.cpp.o"
  "CMakeFiles/hdfs_ingest.dir/hdfs_ingest.cpp.o.d"
  "hdfs_ingest"
  "hdfs_ingest.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hdfs_ingest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
