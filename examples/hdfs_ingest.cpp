// The paper's Fig. 7 case study at interactive scale: a scale-up word count
// ingesting from an HDFS-like remote store behind ONE shared link.
//
// The store spreads blocks across data nodes (fast in aggregate), but every
// byte crosses the single 16 MB/s link — so ingest dominates, and the chunk
// pipeline raises utilization without shrinking the job much (paper
// Conclusion 4).
//
// Usage: ./examples/hdfs_ingest [total-size] [link-rate-MBps]
#include <cstdio>

#include "apps/word_count.hpp"
#include "common/units.hpp"
#include "core/job.hpp"
#include "ingest/record_format.hpp"
#include "ingest/source.hpp"
#include "storage/hdfs_sim.hpp"
#include "wload/text_corpus.hpp"

using namespace supmr;

namespace {

double run_job(const storage::HdfsSimStore& store,
               const std::vector<std::string>& paths, std::uint64_t chunk,
               bool pipelined) {
  std::vector<std::shared_ptr<const storage::Device>> files;
  for (const auto& p : paths) {
    auto dev = store.open(p);
    if (!dev.ok()) {
      std::fprintf(stderr, "open %s: %s\n", p.c_str(),
                   dev.status().to_string().c_str());
      return -1;
    }
    files.push_back(std::shared_ptr<const storage::Device>(std::move(*dev)));
  }
  (void)chunk;
  apps::WordCountApp app;
  // Intra-file chunking: combine remote files into ingest chunks, the
  // Hadoop-style many-small-files layout of Section III.A.1.
  ingest::MultiFileSource src(files, pipelined ? 2 : 0);
  core::JobConfig jc;
  jc.num_map_threads = 4;
  jc.num_reduce_threads = 2;
  core::MapReduceJob job(app, src, jc);
  auto r = pipelined ? job.run(core::ExecMode::kIngestMR) : job.run(core::ExecMode::kOriginal);
  if (!r.ok()) {
    std::fprintf(stderr, "job failed: %s\n", r.status().to_string().c_str());
    return -1;
  }
  std::printf("  %-28s total %6.2fs", pipelined ? "SupMR (pipelined ingest)"
                                                : "original (copy-then-run)",
              r->phases.total_s);
  if (pipelined) {
    std::printf("  [read+map %.2fs over %llu chunks]\n", r->phases.readmap_s,
                (unsigned long long)r->chunks);
  } else {
    std::printf("  [read %.2fs then map %.2fs]\n", r->phases.read_s,
                r->phases.map_s);
  }
  return r->phases.total_s;
}

}  // namespace

int main(int argc, char** argv) {
  std::uint64_t total = 12 * kMB;
  if (argc > 1) {
    if (auto parsed = parse_size(argv[1])) total = *parsed;
  }
  double link_mbps = 16.0;
  if (argc > 2) link_mbps = std::strtod(argv[2], nullptr);

  storage::HdfsConfig hc;
  hc.num_nodes = 16;
  hc.block_bytes = 512 * kKiB;
  hc.link_bps = link_mbps * 1e6;
  hc.per_node_bps = 200.0e6;
  storage::HdfsSimStore store(hc);

  // Load the corpus into the cluster as 12 part files.
  constexpr std::size_t kParts = 12;
  std::vector<std::string> paths;
  wload::TextCorpusConfig tc;
  tc.total_bytes = total / kParts;
  for (std::size_t i = 0; i < kParts; ++i) {
    tc.seed = 1000 + i;
    char name[64];
    std::snprintf(name, sizeof(name), "/corpus/part-%05zu", i);
    store.put(name, wload::generate_text(tc));
    paths.push_back(name);
  }
  std::printf("HDFS-sim: %zu files, %s total, %zu data nodes behind one "
              "%.0f MB/s link\n\n",
              kParts, format_bytes(total).c_str(), hc.num_nodes, link_mbps);

  const double original = run_job(store, paths, 0, false);
  const double supmr = run_job(store, paths, 2, true);
  if (original > 0 && supmr > 0) {
    std::printf("\nspeedup: %.2fx (%.2fs saved on a %.2fs job)\n",
                original / supmr, original - supmr, original);
    std::printf("Conclusion 4: with a link-bound ingest the map phase is a\n"
                "small fraction of the job, so overlap saves only seconds.\n");
  }
  return 0;
}
