// Quickstart: word count with the SupMR runtime in ~40 lines of user code.
//
//   1. wrap your input in a storage::Device,
//   2. pick a chunking strategy (SingleDeviceSource + chunk size),
//   3. run an application through MapReduceJob::run_ingestMR().
//
// Build & run:  ./examples/quickstart [input.txt] [chunk-size]
//                                     [--metrics-json=out.json]
//                                     [--trace-out=trace.json]
// Without arguments it generates a 8 MB synthetic corpus. The two optional
// flags dump the observability outputs: a metrics snapshot and a
// chrome://tracing / Perfetto-loadable event file.
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "apps/word_count.hpp"
#include "common/units.hpp"
#include "core/job.hpp"
#include "ingest/record_format.hpp"
#include "ingest/source.hpp"
#include "storage/file_device.hpp"
#include "storage/mem_device.hpp"
#include "wload/text_corpus.hpp"

using namespace supmr;

int main(int argc, char** argv) {
  // Split --flags from positional arguments.
  core::JobConfig config;  // defaults: hardware-concurrency threads, p-way merge
  std::vector<std::string> args;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--metrics-json=", 15) == 0) {
      config.metrics_json_path = arg + 15;
    } else if (std::strncmp(arg, "--trace-out=", 12) == 0) {
      config.trace_out_path = arg + 12;
    } else {
      args.emplace_back(arg);
    }
  }

  // 1. Input device: a real file if given, else a generated corpus.
  std::shared_ptr<const storage::Device> device;
  if (!args.empty()) {
    auto file = storage::FileDevice::open(args[0]);
    if (!file.ok()) {
      std::fprintf(stderr, "cannot open %s: %s\n", args[0].c_str(),
                   file.status().to_string().c_str());
      return 1;
    }
    device = std::move(*file);
  } else {
    wload::TextCorpusConfig cfg;
    cfg.total_bytes = 8 * kMB;
    device = std::make_shared<storage::MemDevice>(wload::generate_text(cfg),
                                                  "generated-corpus");
  }

  // 2. Chunking strategy: inter-file chunks at line boundaries.
  std::uint64_t chunk_bytes = 1 * kMB;
  if (args.size() > 1) {
    if (auto parsed = parse_size(args[1])) chunk_bytes = *parsed;
  }
  ingest::SingleDeviceSource source(
      device, std::make_shared<ingest::LineFormat>(), chunk_bytes);

  // 3. Run the job through the ingest chunk pipeline.
  apps::WordCountApp app;
  core::MapReduceJob job(app, source, config);
  auto result = job.run_ingestMR();
  if (!result.ok()) {
    std::fprintf(stderr, "job failed: %s\n",
                 result.status().to_string().c_str());
    return 1;
  }

  std::printf("input: %s (%s), %llu ingest chunks, %llu map rounds\n",
              std::string(device->name()).c_str(),
              format_bytes(device->size()).c_str(),
              (unsigned long long)result->chunks,
              (unsigned long long)result->map_rounds);
  std::printf("phases: read+map %.3fs  reduce %.3fs  merge %.3fs  "
              "total %.3fs\n",
              result->phases.readmap_s, result->phases.reduce_s,
              result->phases.merge_s, result->phases.total_s);
  std::printf("%llu distinct words, %llu words total\n\n",
              (unsigned long long)app.results().size(),
              (unsigned long long)app.words_mapped());

  // Top 10 words by count.
  auto top = app.results();
  std::partial_sort(top.begin(), top.begin() + std::min<std::size_t>(10, top.size()),
                    top.end(), [](const auto& a, const auto& b) {
                      return a.second > b.second;
                    });
  std::printf("top words:\n");
  for (std::size_t i = 0; i < std::min<std::size_t>(10, top.size()); ++i)
    std::printf("  %8llu  %s\n", (unsigned long long)top[i].second,
                top[i].first.c_str());
  if (!config.metrics_json_path.empty())
    std::printf("metrics -> %s\n", config.metrics_json_path.c_str());
  if (!config.trace_out_path.empty())
    std::printf("trace -> %s\n", config.trace_out_path.c_str());
  return 0;
}
