// Quickstart: word count with the SupMR runtime in ~40 lines of user code.
//
//   1. wrap your input in a storage::Device,
//   2. pick a chunking strategy (SingleDeviceSource + chunk size),
//   3. submit the job to a runtime::JobManager and wait on the JobHandle.
//
// The JobManager (docs/runtime.md) is the multi-tenant front door: it owns
// the worker thread pool and chunk buffers, so many jobs submitted to the
// same manager share them under leases. A single job, as here, works the
// same way — submit() returns a handle, handle.wait() returns the result.
//
// Build & run:  ./examples/quickstart [input.txt] [chunk-size]
//                                     [--io=read|mmap]
//                                     [--container=default|combining]
//                                     [--metrics-json=out.json]
//                                     [--trace-out=trace.json]
//                                     [--partitions=N]
//                                     [--fault-plan=SPEC] [--retry-attempts=N]
//                                     [--retry-deadline=DUR] [--degrade]
// --io=mmap maps the input file and lends the pipeline zero-copy chunk views
// (docs/cli.md); combined with a fault plan the sources transparently fall
// back to copying reads, because a page fault cannot be retried.
// --partitions=N switches the final merge to the key-range partitioned path
// (docs/merge.md): N independent per-partition merges instead of one global
// round (0 = auto: one per hardware context).
// --container=combining folds counts at map-emit time in the in-mapper
// combining hash-aggregate (docs/containers.md) and prints how much the
// fold shrank the data entering the merge.
// Without arguments it generates a 8 MB synthetic corpus. The fault flags
// demonstrate the fault-tolerance layer (docs/fault-tolerance.md): the input
// device is wrapped in a FaultDevice injecting the plan, and the retry
// policy re-reads transiently failing chunks. On job failure a JSON error
// object goes to stdout and the exit code is 1.
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "apps/word_count.hpp"
#include "common/units.hpp"
#include "core/job.hpp"
#include "core/report.hpp"
#include "fault/fault_plan.hpp"
#include "fault/retrying_device.hpp"
#include "ingest/record_format.hpp"
#include "ingest/source.hpp"
#include "runtime/job_manager.hpp"
#include "storage/fault_device.hpp"
#include "storage/file_device.hpp"
#include "storage/mem_device.hpp"
#include "storage/mmap_device.hpp"
#include "wload/text_corpus.hpp"

using namespace supmr;

int main(int argc, char** argv) {
  // Split --flags from positional arguments.
  core::JobConfig config;  // defaults: hardware-concurrency threads, p-way merge
  std::string fault_plan_spec;
  std::vector<std::string> args;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--metrics-json=", 15) == 0) {
      config.metrics_json_path = arg + 15;
    } else if (std::strncmp(arg, "--trace-out=", 12) == 0) {
      config.trace_out_path = arg + 12;
    } else if (std::strncmp(arg, "--partitions=", 13) == 0) {
      config.merge_mode = core::MergeMode::kPartitioned;
      config.num_merge_partitions =
          static_cast<std::size_t>(std::strtoul(arg + 13, nullptr, 10));
    } else if (std::strncmp(arg, "--fault-plan=", 13) == 0) {
      fault_plan_spec = arg + 13;
    } else if (std::strncmp(arg, "--retry-attempts=", 17) == 0) {
      config.recovery.policy.max_attempts =
          static_cast<std::uint32_t>(std::strtoul(arg + 17, nullptr, 10));
    } else if (std::strncmp(arg, "--retry-deadline=", 17) == 0) {
      auto parsed = fault::parse_duration(arg + 17);
      if (!parsed.ok()) {
        std::fprintf(stderr, "bad --retry-deadline: %s\n",
                     parsed.status().to_string().c_str());
        return 2;
      }
      config.recovery.policy.read_deadline_s = *parsed;
    } else if (std::strcmp(arg, "--io=mmap") == 0) {
      config.io = core::IoMode::kMmap;
    } else if (std::strcmp(arg, "--io=read") == 0) {
      config.io = core::IoMode::kRead;
    } else if (std::strcmp(arg, "--container=combining") == 0) {
      config.container = core::ContainerMode::kCombining;
    } else if (std::strcmp(arg, "--container=default") == 0) {
      config.container = core::ContainerMode::kDefault;
    } else if (std::strcmp(arg, "--degrade") == 0) {
      config.recovery.degrade = true;
    } else {
      args.emplace_back(arg);
    }
  }

  // 1. Input device: a real file if given, else a generated corpus.
  std::shared_ptr<const storage::Device> device;
  if (!args.empty()) {
    // --io=mmap gets a view-lending base device; a plain FileDevice would
    // silently pin every chunk to the copying path.
    Status open_status = Status::Ok();
    if (config.io == core::IoMode::kMmap) {
      auto mapped = storage::MmapDevice::open(args[0]);
      if (mapped.ok()) device = std::move(*mapped);
      else open_status = mapped.status();
    } else {
      auto file = storage::FileDevice::open(args[0]);
      if (file.ok()) device = std::move(*file);
      else open_status = file.status();
    }
    if (!open_status.ok()) {
      std::fprintf(stderr, "cannot open %s: %s\n", args[0].c_str(),
                   open_status.to_string().c_str());
      return 1;
    }
  } else {
    wload::TextCorpusConfig cfg;
    cfg.total_bytes = 8 * kMB;
    device = std::make_shared<storage::MemDevice>(wload::generate_text(cfg),
                                                  "generated-corpus");
  }

  // Optional fault layer: FaultDevice injects the plan underneath,
  // RetryingDevice absorbs transient faults at the read seam.
  if (!fault_plan_spec.empty()) {
    auto plan = fault::FaultPlan::parse(fault_plan_spec);
    if (!plan.ok()) {
      std::fprintf(stderr, "bad --fault-plan: %s\n",
                   plan.status().to_string().c_str());
      return 2;
    }
    device = std::make_shared<storage::FaultDevice>(device, *plan);
  }
  if (config.recovery.policy.enabled()) {
    device = std::make_shared<fault::RetryingDevice>(device,
                                                     config.recovery.policy);
  }

  // 2. Chunking strategy: inter-file chunks at line boundaries.
  std::uint64_t chunk_bytes = 1 * kMB;
  if (args.size() > 1) {
    if (auto parsed = parse_size(args[1])) chunk_bytes = *parsed;
  }
  ingest::SingleDeviceSource source(
      device, std::make_shared<ingest::LineFormat>(), chunk_bytes, config.io);

  // 3. Submit through the job manager and wait for the handle.
  apps::WordCountApp app;
  if (Status s = app.use_container(config.container); !s.ok()) {
    std::fprintf(stderr, "bad --container: %s\n", s.to_string().c_str());
    return 2;
  }
  runtime::JobManager manager;
  runtime::JobRequest request;
  request.app = &app;
  request.source = &source;
  request.config = config;
  request.name = "quickstart-wordcount";
  auto handle = manager.submit(std::move(request));
  if (!handle.ok()) {
    std::fprintf(stderr, "submit failed: %s\n",
                 handle.status().to_string().c_str());
    return 1;
  }
  auto result = handle->wait();
  if (!result.ok()) {
    // stderr gets the human-readable line, stdout a machine-readable report.
    std::fprintf(stderr, "job failed: %s\n",
                 result.status().to_string().c_str());
    std::printf("%s\n", core::status_to_json(result.status()).c_str());
    return 1;
  }

  std::printf("input: %s (%s), %llu ingest chunks, %llu map rounds\n",
              std::string(device->name()).c_str(),
              format_bytes(device->size()).c_str(),
              (unsigned long long)result->chunks,
              (unsigned long long)result->map_rounds);
  std::printf("phases: read+map %.3fs  reduce %.3fs  merge %.3fs  "
              "total %.3fs\n",
              result->phases.readmap_s, result->phases.reduce_s,
              result->phases.merge_s, result->phases.total_s);
  if (result->degraded()) {
    std::printf("DEGRADED: %llu chunks skipped (%llu bytes lost)\n",
                (unsigned long long)result->chunks_skipped,
                (unsigned long long)result->bytes_skipped);
  }
  std::printf("%llu distinct words, %llu words total\n",
              (unsigned long long)app.results().size(),
              (unsigned long long)app.words_mapped());
  if (result->combine.emits != 0) {
    std::printf("combining: %llu emits folded to %llu entries "
                "(%s emitted -> %s into merge, table %s)\n",
                (unsigned long long)result->combine.emits,
                (unsigned long long)(result->combine.emits -
                                     result->combine.keys_folded),
                format_bytes(result->combine.bytes_emitted).c_str(),
                format_bytes(result->combine.bytes_into_merge).c_str(),
                format_bytes(result->combine.table_bytes).c_str());
  }
  std::printf("\n");

  // Top 10 words by count.
  auto top = app.results();
  std::partial_sort(top.begin(), top.begin() + std::min<std::size_t>(10, top.size()),
                    top.end(), [](const auto& a, const auto& b) {
                      return a.second > b.second;
                    });
  std::printf("top words:\n");
  for (std::size_t i = 0; i < std::min<std::size_t>(10, top.size()); ++i)
    std::printf("  %8llu  %s\n", (unsigned long long)top[i].second,
                top[i].first.c_str());
  if (!config.metrics_json_path.empty())
    std::printf("metrics -> %s\n", config.metrics_json_path.c_str());
  if (!config.trace_out_path.empty())
    std::printf("trace -> %s\n", config.trace_out_path.c_str());
  return 0;
}
