// External sort: sorting a dataset larger than the memory budget.
//
// Demonstrates merge::ExternalSorter — the spill-and-k-way-merge extension
// of SupMR's merge machinery for inputs that do not fit in RAM. Generates a
// TeraSort file on disk, sorts it under an artificially small budget, and
// verifies the output.
//
// Usage: ./examples/external_sort [size] [budget]   (e.g. 64MB 8MB)
#include <cstdio>
#include <cstring>
#include <filesystem>

#include "common/units.hpp"
#include "merge/external_sorter.hpp"
#include "storage/file_device.hpp"
#include "wload/teragen.hpp"

using namespace supmr;

int main(int argc, char** argv) {
  std::uint64_t total = 64 * kMB;
  if (argc > 1) {
    if (auto parsed = parse_size(argv[1])) total = *parsed;
  }
  std::uint64_t budget = 8 * kMB;
  if (argc > 2) {
    if (auto parsed = parse_size(argv[2])) budget = *parsed;
  }

  const auto dir = std::filesystem::temp_directory_path() / "supmr_extsort";
  std::filesystem::create_directories(dir);
  const std::string input_path = (dir / "input.dat").string();
  const std::string output_path = (dir / "sorted.dat").string();

  wload::TeraGenConfig gen;
  gen.num_records = total / gen.record_bytes;
  if (Status st = wload::teragen_to_file(gen, input_path); !st.ok()) {
    std::fprintf(stderr, "generation failed: %s\n", st.to_string().c_str());
    return 1;
  }
  std::printf("input: %llu records (%s), memory budget %s\n",
              (unsigned long long)gen.num_records,
              format_bytes(gen.num_records * gen.record_bytes).c_str(),
              format_bytes(budget).c_str());

  auto device = storage::FileDevice::open(input_path);
  if (!device.ok()) {
    std::fprintf(stderr, "open failed: %s\n",
                 device.status().to_string().c_str());
    return 1;
  }

  ThreadPool pool(4);
  merge::ExternalSorterOptions opt;
  opt.memory_budget_bytes = budget;
  opt.spill_dir = dir.string();
  merge::ExternalSorter sorter(pool, opt);

  // Stream the input through add() in 4 MB slabs.
  std::vector<char> slab(4 * kMB / 100 * 100);
  std::uint64_t offset = 0;
  while (offset < (*device)->size()) {
    auto n = (*device)->read_at(offset,
                                std::span<char>(slab.data(), slab.size()));
    if (!n.ok() || *n == 0) break;
    const std::uint64_t whole = *n / 100 * 100;
    if (Status st =
            sorter.add(std::span<const char>(slab.data(), whole));
        !st.ok()) {
      std::fprintf(stderr, "add failed: %s\n", st.to_string().c_str());
      return 1;
    }
    offset += whole;
  }
  std::printf("spilled %zu sorted runs during ingest\n",
              sorter.runs_spilled());

  std::FILE* out = std::fopen(output_path.c_str(), "wb");
  auto stats = sorter.finish([&](std::span<const char> records) {
    return std::fwrite(records.data(), 1, records.size(), out) ==
                   records.size()
               ? Status::Ok()
               : Status::IoError("short write");
  });
  std::fclose(out);
  if (!stats.ok()) {
    std::fprintf(stderr, "merge failed: %s\n",
                 stats.status().to_string().c_str());
    return 1;
  }
  std::printf("k-way merge: %llu records in %.2fs (%s)\n",
              (unsigned long long)stats->total_items_moved(),
              stats->rounds[0].wall_s,
              format_rate(double(total) / stats->rounds[0].wall_s).c_str());

  // Verify sortedness of the output file.
  auto sorted_dev = storage::FileDevice::open(output_path);
  if (!sorted_dev.ok()) return 1;
  std::vector<char> check(1 * kMB / 100 * 100);
  char prev_key[10];
  bool have_prev = false;
  std::uint64_t pos = 0, violations = 0;
  while (pos < (*sorted_dev)->size()) {
    auto n = (*sorted_dev)
                 ->read_at(pos, std::span<char>(check.data(), check.size()));
    if (!n.ok() || *n == 0) break;
    for (std::uint64_t r = 0; r + 100 <= *n; r += 100) {
      if (have_prev && std::memcmp(prev_key, check.data() + r, 10) > 0)
        ++violations;
      std::memcpy(prev_key, check.data() + r, 10);
      have_prev = true;
    }
    pos += *n / 100 * 100;
  }
  std::printf("verification: %llu ordering violations (%s)\n",
              (unsigned long long)violations,
              violations == 0 ? "PASS" : "FAIL");
  std::filesystem::remove_all(dir);
  return violations == 0 ? 0 : 1;
}
