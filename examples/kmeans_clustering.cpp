// Iterative MapReduce on SupMR: k-means clustering.
//
// Each iteration is a full MapReduce job (map: assign points, reduce:
// recompute centroids) driven through the ingest chunk pipeline — the
// iterative pattern of Twister/HaLoop (paper §VII) on a scale-up runtime.
//
// Usage: ./examples/kmeans_clustering [points] [clusters]
#include <cstdio>

#include "apps/kmeans.hpp"
#include "common/units.hpp"
#include "core/job.hpp"
#include "ingest/record_format.hpp"
#include "ingest/source.hpp"
#include "storage/mem_device.hpp"
#include "wload/numeric.hpp"

using namespace supmr;

int main(int argc, char** argv) {
  wload::PointsConfig cfg;
  cfg.num_points = 50000;
  cfg.clusters = 5;
  cfg.spread = 2.5;
  if (argc > 1) cfg.num_points = std::strtoull(argv[1], nullptr, 10);
  if (argc > 2) cfg.clusters = std::strtoull(argv[2], nullptr, 10);

  std::vector<std::vector<double>> truth;
  const std::string data = wload::generate_points(cfg, &truth);
  std::printf("dataset: %llu 2-d points in %zu blobs (%s)\n",
              (unsigned long long)cfg.num_points, cfg.clusters,
              format_bytes(data.size()).c_str());

  auto dev = std::make_shared<storage::MemDevice>(data, "points");
  ingest::SingleDeviceSource source(
      dev, std::make_shared<ingest::LineFormat>(), 256 * kKiB);
  core::JobConfig jc;
  jc.num_map_threads = 4;
  jc.num_reduce_threads = 2;

  // Initialize centroids from perturbed truth (a real user would sample).
  std::vector<std::vector<double>> init = truth;
  for (auto& c : init)
    for (auto& x : c) x += 5.0;

  auto result = apps::run_kmeans(
      source, jc, {.clusters = cfg.clusters, .dim = cfg.dim}, init, 40, 1e-5);
  if (!result.ok()) {
    std::fprintf(stderr, "k-means failed: %s\n",
                 result.status().to_string().c_str());
    return 1;
  }
  std::printf("converged in %zu iterations (%.3fs total, final shift %.2g)\n\n",
              result->iterations, result->total_s, result->final_shift);
  std::printf("%-12s %-24s %s\n", "cluster", "recovered centroid",
              "true center");
  for (std::size_t c = 0; c < cfg.clusters; ++c) {
    std::printf("%-12zu (%8.3f, %8.3f)       (%8.3f, %8.3f)\n", c,
                result->centroids[c][0], result->centroids[c][1], truth[c][0],
                truth[c][1]);
  }
  return 0;
}
