// TeraSort through the full SupMR stack, as the paper's sort experiment:
//   * generates a TeraSort-style dataset ON DISK,
//   * stripes it across a 3-member RAID-0 with a 384 MB/s-scaled throttle
//     (the paper's storage, shrunk to laptop scale),
//   * runs the ORIGINAL runtime (one-shot ingest, pairwise merge) and the
//     SupMR runtime (ingest chunk pipeline + p-way merge),
//   * prints the Table-II-style phase rows and a collectl-like CPU trace
//     sampled from /proc/stat during the SupMR run.
//
// Usage: ./examples/terasort_pipeline [records] [chunk-size]
#include <cstdio>
#include <filesystem>

#include "apps/tera_sort.hpp"
#include "common/units.hpp"
#include "core/job.hpp"
#include "core/proc_sampler.hpp"
#include "ingest/record_format.hpp"
#include "ingest/source.hpp"
#include "storage/file_device.hpp"
#include "storage/raid0_device.hpp"
#include "storage/rate_limiter.hpp"
#include "storage/throttled_device.hpp"
#include "wload/teragen.hpp"

using namespace supmr;

namespace {

// Stripe geometry chosen so the dataset fills whole stripe rows exactly
// (Raid0Device, like md-raid, exposes only complete rows): 250 KB stripes
// x 3 members = 750 KB rows = 7500 records per row.
constexpr std::uint64_t kStripe = 250 * kKB;
constexpr int kMembers = 3;

// Generates the dataset on disk, carved into RAID-0 stripe members.
Status write_members(const std::string& dir, std::uint64_t records) {
  wload::TeraGenConfig cfg;
  cfg.num_records = records;
  const std::string flat = wload::teragen_to_string(cfg);
  std::vector<std::FILE*> files;
  for (int m = 0; m < kMembers; ++m) {
    const std::string path = dir + "/member" + std::to_string(m) + ".dat";
    std::FILE* f = std::fopen(path.c_str(), "wb");
    if (f == nullptr) return Status::IoError("cannot create member file");
    files.push_back(f);
  }
  for (std::uint64_t off = 0; off < flat.size(); off += kStripe) {
    const std::uint64_t n = std::min<std::uint64_t>(kStripe, flat.size() - off);
    const int member = int((off / kStripe) % kMembers);
    std::fwrite(flat.data() + off, 1, n, files[member]);
  }
  for (auto* f : files) std::fclose(f);
  return Status::Ok();
}

// Opens the stripe members with FRESH per-disk throttles (each run must pay
// its own full transfer cost) and aggregates them as a RAID-0.
StatusOr<std::shared_ptr<const storage::Device>> open_raid(
    const std::string& dir) {
  std::vector<std::shared_ptr<const storage::Device>> members;
  for (int m = 0; m < kMembers; ++m) {
    SUPMR_ASSIGN_OR_RETURN(
        auto file,
        storage::FileDevice::open(dir + "/member" + std::to_string(m) +
                                  ".dat"));
    // Per-member throttle: 3 x 43 MB/s ~ 128 MB/s aggregate (the paper's
    // 3 x 128 = 384 MB/s scaled to a 1-core machine).
    auto limiter = std::make_shared<storage::RateLimiter>(
        43.0e6, /*burst_bytes=*/64 * kKiB);
    members.push_back(std::make_shared<storage::ThrottledDevice>(
        std::shared_ptr<const storage::Device>(std::move(file)), limiter));
  }
  return std::shared_ptr<const storage::Device>(
      std::make_shared<storage::Raid0Device>(members, kStripe));
}

void print_result(const char* label, const core::JobResult& r) {
  std::printf("%s\n", r.phases.to_table_row(label).c_str());
  std::printf("    merge rounds=%llu  map rounds=%llu  records=%llu\n",
              (unsigned long long)r.phases.merge_rounds,
              (unsigned long long)r.map_rounds,
              (unsigned long long)r.result_count);
}

}  // namespace

int main(int argc, char** argv) {
  std::uint64_t records = 300000;  // 30 MB
  if (argc > 1) records = std::strtoull(argv[1], nullptr, 10);
  records = (records + 7499) / 7500 * 7500;  // whole RAID stripe rows
  std::uint64_t chunk = 4 * kMB;
  if (argc > 2) {
    if (auto parsed = parse_size(argv[2])) chunk = *parsed;
  }

  const std::string dir =
      (std::filesystem::temp_directory_path() / "supmr_terasort").string();
  std::filesystem::create_directories(dir);

  if (Status st = write_members(dir, records); !st.ok()) {
    std::fprintf(stderr, "setup failed: %s\n", st.to_string().c_str());
    return 1;
  }
  std::printf("dataset: %llu records (%s) on throttled 3-member RAID-0\n\n",
              (unsigned long long)records,
              format_bytes(records * 100).c_str());
  std::printf("%s\n", PhaseBreakdown::table_header().c_str());

  // Original runtime: read everything, then compute; pairwise merge.
  {
    auto raid = open_raid(dir);
    if (!raid.ok()) {
      std::fprintf(stderr, "open failed: %s\n",
                   raid.status().to_string().c_str());
      return 1;
    }
    apps::TeraSortApp app;
    ingest::SingleDeviceSource src(*raid,
                                   std::make_shared<ingest::CrlfFormat>(), 0);
    core::JobConfig jc;
    jc.merge_mode = core::MergeMode::kPairwise;
    core::MapReduceJob job(app, src, jc);
    auto r = job.run(core::ExecMode::kOriginal);
    if (!r.ok()) {
      std::fprintf(stderr, "original run failed: %s\n",
                   r.status().to_string().c_str());
      return 1;
    }
    print_result("original", *r);
  }

  // SupMR: ingest chunk pipeline + p-way merge, traced via /proc/stat.
  {
    auto raid = open_raid(dir);
    if (!raid.ok()) {
      std::fprintf(stderr, "open failed: %s\n",
                   raid.status().to_string().c_str());
      return 1;
    }
    apps::TeraSortApp app;
    ingest::SingleDeviceSource src(
        *raid, std::make_shared<ingest::CrlfFormat>(), chunk);
    core::JobConfig jc;
    jc.merge_mode = core::MergeMode::kPWay;
    core::MapReduceJob job(app, src, jc);
    core::ProcStatSampler sampler(0.1);
    const bool trace = core::ProcStatSampler::available();
    if (trace) sampler.start();
    auto r = job.run(core::ExecMode::kIngestMR);
    if (!r.ok()) {
      std::fprintf(stderr, "SupMR run failed: %s\n",
                   r.status().to_string().c_str());
      return 1;
    }
    print_result("SupMR", *r);
    if (trace) {
      TimeSeries ts = sampler.stop();
      std::printf("\nCPU utilization during the SupMR run (collectl-style):\n%s",
                  ts.to_ascii_chart(90, 12).c_str());
    }
  }

  std::filesystem::remove_all(dir);
  return 0;
}
