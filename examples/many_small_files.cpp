// Intra-file chunking on a many-small-files dataset: builds an inverted
// index (word -> files containing it) with SupMR's MultiFileSource, which
// coalesces k files per ingest chunk (paper §III.A.1 — the "word count"
// style Hadoop layout, here driving a file-aware application).
//
// Usage: ./examples/many_small_files [num-files] [files-per-chunk]
#include <cstdio>

#include "apps/inverted_index.hpp"
#include "common/units.hpp"
#include "core/job.hpp"
#include "ingest/source.hpp"
#include "wload/text_corpus.hpp"

using namespace supmr;

int main(int argc, char** argv) {
  std::size_t num_files = 30;
  if (argc > 1) num_files = std::strtoull(argv[1], nullptr, 10);
  std::size_t per_chunk = 4;
  if (argc > 2) per_chunk = std::strtoull(argv[2], nullptr, 10);

  wload::TextCorpusConfig cfg;
  cfg.vocabulary = 2000;
  auto files = wload::generate_text_files(cfg, num_files, 64 * kKiB);

  ingest::MultiFileSource source(files, per_chunk);
  auto plan = source.plan();
  if (!plan.ok()) {
    std::fprintf(stderr, "planning failed: %s\n",
                 plan.status().to_string().c_str());
    return 1;
  }
  std::printf("%zu files, %zu per chunk -> %zu ingest chunks ", num_files,
              per_chunk, plan->size());
  std::printf("(last chunk holds %zu files)\n\n",
              plan->back().files.size());

  apps::InvertedIndexApp app;
  core::JobConfig jc;
  jc.num_map_threads = 4;
  jc.num_reduce_threads = 2;
  core::MapReduceJob job(app, source, jc);
  auto result = job.run(core::ExecMode::kIngestMR);
  if (!result.ok()) {
    std::fprintf(stderr, "job failed: %s\n",
                 result.status().to_string().c_str());
    return 1;
  }

  std::printf("indexed %llu distinct words across %zu files in %.3fs "
              "(%llu map rounds)\n\n",
              (unsigned long long)app.index().size(), num_files,
              result->phases.total_s,
              (unsigned long long)result->map_rounds);

  // Show a few postings: the most widespread and the rarest words.
  const auto& index = app.index();
  const auto* widest = &index[0];
  const auto* narrowest = &index[0];
  for (const auto& posting : index) {
    if (posting.files.size() > widest->files.size()) widest = &posting;
    if (posting.files.size() < narrowest->files.size()) narrowest = &posting;
  }
  auto show = [&](const char* tag, const apps::InvertedIndexApp::Posting& p) {
    std::printf("%s '%s' appears in %zu files: [", tag, p.word.c_str(),
                p.files.size());
    for (std::size_t i = 0; i < std::min<std::size_t>(8, p.files.size()); ++i)
      std::printf("%s%u", i ? ", " : "", p.files[i]);
    std::printf("%s]\n", p.files.size() > 8 ? ", ..." : "");
  };
  show("most widespread:", *widest);
  show("rarest:         ", *narrowest);
  return 0;
}
