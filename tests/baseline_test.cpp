// Tests for the OpenMP-style sort baseline (the Fig. 3 comparator).
#include <gtest/gtest.h>

#include <cstring>

#include "baseline/omp_sort.hpp"
#include "storage/mem_device.hpp"
#include "storage/rate_limiter.hpp"
#include "storage/throttled_device.hpp"
#include "wload/teragen.hpp"

namespace supmr::baseline {
namespace {

TEST(OmpSort, SortsRecordsByKey) {
  wload::TeraGenConfig cfg;
  cfg.num_records = 3000;
  const std::string input = wload::teragen_to_string(cfg);
  storage::MemDevice dev(input);
  auto result = run_omp_style_sort(dev, OmpSortOptions{.num_threads = 4});
  ASSERT_TRUE(result.ok()) << result.status().to_string();
  EXPECT_EQ(result->records, cfg.num_records);
  ASSERT_EQ(result->sorted.size(), input.size());
  for (std::uint64_t r = 1; r < cfg.num_records; ++r) {
    EXPECT_LE(std::memcmp(result->sorted.data() + (r - 1) * 100,
                          result->sorted.data() + r * 100, 10),
              0);
  }
}

TEST(OmpSort, PhasesAreSeparated) {
  wload::TeraGenConfig cfg;
  cfg.num_records = 1000;
  storage::MemDevice dev(wload::teragen_to_string(cfg));
  auto result = run_omp_style_sort(dev, OmpSortOptions{.num_threads = 2});
  ASSERT_TRUE(result.ok());
  EXPECT_GE(result->phases.read_s, 0.0);
  EXPECT_GE(result->phases.map_s, 0.0);
  EXPECT_GT(result->phases.merge_s, 0.0);
  EXPECT_GE(result->phases.total_s,
            result->phases.read_s + result->phases.merge_s);
}

TEST(OmpSort, SequentialIngestDominatesOnSlowDevice) {
  // The Fig. 3 geometry: with a slow device, total time is read-dominated
  // even though the sort itself is parallel.
  wload::TeraGenConfig cfg;
  cfg.num_records = 2000;  // 200 KB
  auto base = std::make_shared<storage::MemDevice>(
      wload::teragen_to_string(cfg), "slow");
  auto limiter = std::make_shared<storage::RateLimiter>(2.0e6);
  storage::ThrottledDevice dev(base, limiter);
  auto result = run_omp_style_sort(dev, OmpSortOptions{.num_threads = 4});
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result->phases.read_s, result->phases.merge_s);
  EXPECT_GT(result->phases.read_s, 0.5 * result->phases.total_s);
}

TEST(OmpSort, RejectsTornInput) {
  storage::MemDevice dev(std::string(150, 'x'));
  auto result = run_omp_style_sort(dev, OmpSortOptions{.num_threads = 2});
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST(OmpSort, EmptyInput) {
  storage::MemDevice dev("");
  auto result = run_omp_style_sort(dev, OmpSortOptions{.num_threads = 2});
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->records, 0u);
}

}  // namespace
}  // namespace supmr::baseline
