// Tests for the spilling hash container and external word count.
#include <gtest/gtest.h>

#include <map>

#include "apps/external_word_count.hpp"
#include "common/rng.hpp"
#include "apps/word_count.hpp"
#include "containers/spilling_hash.hpp"
#include "core/job.hpp"
#include "ingest/record_format.hpp"
#include "ingest/source.hpp"
#include "storage/mem_device.hpp"
#include "wload/text_corpus.hpp"

namespace supmr {
namespace {

using containers::SpillingHashContainer;

SpillingHashContainer::Options opts(std::uint64_t budget) {
  SpillingHashContainer::Options o;
  o.memory_budget_bytes = budget;
  o.spill_dir = ::testing::TempDir();
  o.merge_read_bytes = 4096;
  return o;
}

std::map<std::string, std::uint64_t> collect(SpillingHashContainer& c) {
  std::map<std::string, std::uint64_t> out;
  EXPECT_TRUE(c.merge_reduce([&](std::string_view k, std::uint64_t v) {
                 out[std::string(k)] += v;
               }).ok());
  return out;
}

TEST(SpillingHash, InMemoryPath) {
  SpillingHashContainer c;
  c.init(2, opts(1 << 20));
  c.emit(0, "a", 1);
  c.emit(1, "a", 2);
  c.emit(0, "b", 5);
  EXPECT_TRUE(c.maybe_spill().ok());
  EXPECT_EQ(c.runs_spilled(), 0u);  // tiny: under budget
  auto out = collect(c);
  EXPECT_EQ(out.at("a"), 3u);
  EXPECT_EQ(out.at("b"), 5u);
  EXPECT_EQ(out.size(), 2u);
}

TEST(SpillingHash, SpillAndCombineAcrossRuns) {
  SpillingHashContainer c;
  c.init(2, opts(1));  // everything over budget
  c.emit(0, "x", 1);
  c.emit(1, "y", 2);
  ASSERT_TRUE(c.spill().ok());
  EXPECT_EQ(c.runs_spilled(), 1u);
  c.emit(0, "x", 10);  // same key again, post-spill
  c.emit(1, "z", 3);
  ASSERT_TRUE(c.spill().ok());
  EXPECT_EQ(c.runs_spilled(), 2u);
  c.emit(0, "x", 100);  // and in the live stripes
  auto out = collect(c);
  EXPECT_EQ(out.at("x"), 111u);
  EXPECT_EQ(out.at("y"), 2u);
  EXPECT_EQ(out.at("z"), 3u);
}

TEST(SpillingHash, EmitsInKeyOrder) {
  SpillingHashContainer c;
  c.init(1, opts(1));
  c.emit(0, "pear", 1);
  c.emit(0, "apple", 1);
  ASSERT_TRUE(c.spill().ok());
  c.emit(0, "banana", 1);
  std::vector<std::string> order;
  ASSERT_TRUE(c.merge_reduce([&](std::string_view k, std::uint64_t) {
                 order.emplace_back(k);
               }).ok());
  EXPECT_EQ(order,
            (std::vector<std::string>{"apple", "banana", "pear"}));
}

TEST(SpillingHash, MatchesReferenceUnderRandomLoad) {
  Xoshiro256 rng(41);
  SpillingHashContainer c;
  c.init(3, opts(8 * 1024));
  std::map<std::string, std::uint64_t> ref;
  for (int op = 0; op < 30000; ++op) {
    const std::string key = "key" + std::to_string(rng.uniform(2000));
    const std::uint64_t v = 1 + rng.uniform(5);
    c.emit(rng.uniform(3), key, v);
    ref[key] += v;
    if (op % 5000 == 4999) ASSERT_TRUE(c.maybe_spill().ok());
  }
  EXPECT_GT(c.runs_spilled(), 0u);
  auto out = collect(c);
  EXPECT_EQ(out.size(), ref.size());
  EXPECT_EQ(out, ref);
}

TEST(SpillingHash, EmptyContainer) {
  SpillingHashContainer c;
  c.init(2, opts(1024));
  int calls = 0;
  ASSERT_TRUE(c.merge_reduce([&](std::string_view, std::uint64_t) {
                 ++calls;
               }).ok());
  EXPECT_EQ(calls, 0);
}

TEST(SpillingHash, LongKeysSurviveSpill) {
  SpillingHashContainer c;
  c.init(1, opts(1));
  const std::string long_key(255, 'q');
  c.emit(0, long_key, 7);
  ASSERT_TRUE(c.spill().ok());
  auto out = collect(c);
  EXPECT_EQ(out.at(long_key), 7u);
}

// ------------------------------------------------- external word count

TEST(ExternalWordCount, MatchesInMemoryAppAtAnyBudget) {
  wload::TextCorpusConfig cfg;
  cfg.total_bytes = 96 * 1024;
  cfg.vocabulary = 3000;
  const std::string text = wload::generate_text(cfg);
  core::JobConfig jc;
  jc.num_map_threads = 4;
  jc.num_reduce_threads = 2;

  apps::WordCountApp reference;
  ingest::SingleDeviceSource ref_src(
      std::make_shared<storage::MemDevice>(text, "m"),
      std::make_shared<ingest::LineFormat>(), 8192);
  core::MapReduceJob ref_job(reference, ref_src, jc);
  ASSERT_TRUE(ref_job.run(core::ExecMode::kIngestMR).ok());

  for (std::uint64_t budget : {std::uint64_t(16 * 1024), std::uint64_t(1 << 24)}) {
    apps::ExternalWordCountApp app(opts(budget));
    ingest::SingleDeviceSource src(
        std::make_shared<storage::MemDevice>(text, "m"),
        std::make_shared<ingest::LineFormat>(), 8192);
    core::MapReduceJob job(app, src, jc);
    auto result = job.run(core::ExecMode::kIngestMR);
    ASSERT_TRUE(result.ok()) << result.status().to_string();
    EXPECT_EQ(app.results(), reference.results()) << "budget=" << budget;
    if (budget == 16 * 1024) {
      EXPECT_GT(app.runs_spilled(), 0u);  // tight budget actually spilled
    }
  }
}

TEST(ExternalWordCount, OriginalRuntimeModeWorksToo) {
  const std::string text = "a b a\nc a b\n";
  apps::ExternalWordCountApp app(opts(1 << 20));
  ingest::SingleDeviceSource src(
      std::make_shared<storage::MemDevice>(text, "m"),
      std::make_shared<ingest::LineFormat>(), 0);
  core::JobConfig jc;
  jc.num_map_threads = 2;
  jc.num_reduce_threads = 1;
  core::MapReduceJob job(app, src, jc);
  ASSERT_TRUE(job.run(core::ExecMode::kOriginal).ok());
  ASSERT_EQ(app.results().size(), 3u);
  EXPECT_EQ(app.results()[0],
            (apps::ExternalWordCountApp::Result{"a", 3}));
}

}  // namespace
}  // namespace supmr
