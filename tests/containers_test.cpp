// Unit + property tests for the intermediate containers: arena hash map,
// combiners, hash container striping/partitioning/persistence, array
// container.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <map>
#include <set>
#include <thread>

#include "common/rng.hpp"
#include <stdexcept>

#include "containers/array_container.hpp"
#include "containers/combiners.hpp"
#include "containers/fixed_kv_array.hpp"
#include "containers/hash_container.hpp"

namespace supmr::containers {
namespace {

// ---------------------------------------------------------- ArenaHashMap

TEST(ArenaHashMap, InsertAndFind) {
  ArenaHashMap<int> m;
  m.find_or_insert("alpha", 0) = 1;
  m.find_or_insert("beta", 0) = 2;
  EXPECT_EQ(*m.find("alpha"), 1);
  EXPECT_EQ(*m.find("beta"), 2);
  EXPECT_EQ(m.find("gamma"), nullptr);
  EXPECT_EQ(m.size(), 2u);
}

TEST(ArenaHashMap, FindOrInsertReturnsExisting) {
  ArenaHashMap<int> m;
  m.find_or_insert("k", 10);
  int& v = m.find_or_insert("k", 99);
  EXPECT_EQ(v, 10);
  EXPECT_EQ(m.size(), 1u);
}

TEST(ArenaHashMap, KeysOwnedByArena) {
  ArenaHashMap<int> m;
  {
    // Key built in a transient buffer that is promptly destroyed.
    std::string transient = "ephemeral-key";
    m.find_or_insert(transient, 7);
    transient.assign(transient.size(), '#');
  }
  EXPECT_EQ(*m.find("ephemeral-key"), 7);
}

TEST(ArenaHashMap, GrowthPreservesEntries) {
  ArenaHashMap<std::uint64_t> m(4);
  for (int i = 0; i < 5000; ++i)
    m.find_or_insert("key-" + std::to_string(i), i);
  EXPECT_EQ(m.size(), 5000u);
  for (int i = 0; i < 5000; i += 37)
    EXPECT_EQ(*m.find("key-" + std::to_string(i)),
              static_cast<std::uint64_t>(i));
}

TEST(ArenaHashMap, ForEachVisitsAllOnce) {
  ArenaHashMap<int> m;
  for (int i = 0; i < 100; ++i)
    m.find_or_insert("k" + std::to_string(i), i);
  std::set<std::string> seen;
  m.for_each([&](std::string_view k, const int&) {
    EXPECT_TRUE(seen.insert(std::string(k)).second);
  });
  EXPECT_EQ(seen.size(), 100u);
}

TEST(ArenaHashMap, PartitionsAreDisjointAndComplete) {
  ArenaHashMap<int> m;
  for (int i = 0; i < 1000; ++i)
    m.find_or_insert("key" + std::to_string(i), i);
  constexpr std::size_t kParts = 7;
  std::set<std::string> seen;
  for (std::size_t p = 0; p < kParts; ++p) {
    m.for_each_in_partition(p, kParts, [&](std::string_view k, const int&) {
      EXPECT_TRUE(seen.insert(std::string(k)).second)
          << "key in two partitions: " << k;
    });
  }
  EXPECT_EQ(seen.size(), 1000u);
}

TEST(ArenaHashMap, PartitionAssignmentStableAcrossGrowth) {
  // The same key must land in the same partition before and after rehash.
  ArenaHashMap<int> small(4);
  small.find_or_insert("stable-key", 1);
  std::size_t part_before = ~0ull;
  for (std::size_t p = 0; p < 5; ++p) {
    small.for_each_in_partition(p, 5, [&](std::string_view, const int&) {
      part_before = p;
    });
  }
  for (int i = 0; i < 10000; ++i)
    small.find_or_insert("filler" + std::to_string(i), i);
  bool found = false;
  small.for_each_in_partition(part_before, 5,
                              [&](std::string_view k, const int&) {
                                if (k == "stable-key") found = true;
                              });
  EXPECT_TRUE(found);
}

TEST(ArenaHashMap, EmptyKeySupported) {
  ArenaHashMap<int> m;
  m.find_or_insert("", 5);
  EXPECT_EQ(*m.find(""), 5);
}

TEST(ArenaHashMap, ClearResets) {
  ArenaHashMap<int> m;
  m.find_or_insert("x", 1);
  m.clear();
  EXPECT_EQ(m.size(), 0u);
  EXPECT_EQ(m.find("x"), nullptr);
}

// Property: the map agrees with std::map over random operation sequences.
class ArenaMapProperty : public ::testing::TestWithParam<int> {};

TEST_P(ArenaMapProperty, MatchesReferenceMap) {
  Xoshiro256 rng(GetParam());
  ArenaHashMap<std::uint64_t> m;
  std::map<std::string, std::uint64_t> ref;
  for (int op = 0; op < 20000; ++op) {
    std::string key = "k" + std::to_string(rng.uniform(500));
    const std::uint64_t add = rng.uniform(100);
    m.find_or_insert(key, 0) += add;
    ref[key] += add;
  }
  EXPECT_EQ(m.size(), ref.size());
  m.for_each([&](std::string_view k, const std::uint64_t& v) {
    auto it = ref.find(std::string(k));
    ASSERT_NE(it, ref.end());
    EXPECT_EQ(v, it->second);
  });
}

INSTANTIATE_TEST_SUITE_P(Seeds, ArenaMapProperty,
                         ::testing::Values(11, 22, 33, 44));

// ------------------------------------------------------------- combiners

TEST(Combiners, Sum) {
  std::uint64_t acc = SumCombiner<std::uint64_t>::identity();
  SumCombiner<std::uint64_t>::combine(acc, 3);
  SumCombiner<std::uint64_t>::combine(acc, 4);
  std::uint64_t other = 10;
  SumCombiner<std::uint64_t>::merge(acc, other);
  EXPECT_EQ(acc, 17u);
}

TEST(Combiners, MinMax) {
  int lo = MinCombiner<int>::identity();
  MinCombiner<int>::combine(lo, 5);
  MinCombiner<int>::combine(lo, -2);
  EXPECT_EQ(lo, -2);
  int hi = MaxCombiner<int>::identity();
  MaxCombiner<int>::combine(hi, 5);
  MaxCombiner<int>::combine(hi, -2);
  EXPECT_EQ(hi, 5);
}

TEST(Combiners, AppendKeepsEverything) {
  auto acc = AppendCombiner<int>::identity();
  AppendCombiner<int>::combine(acc, 1);
  AppendCombiner<int>::combine(acc, 2);
  std::vector<int> other{3, 4};
  AppendCombiner<int>::merge(acc, std::move(other));
  EXPECT_EQ(acc, (std::vector<int>{1, 2, 3, 4}));
}

// --------------------------------------------------------- HashContainer

using WordCounts = HashContainer<SumCombiner<std::uint64_t>>;

TEST(HashContainer, EmitAndReducePartition) {
  WordCounts c;
  c.init(2);
  c.emit(0, "apple", 1);
  c.emit(0, "apple", 1);
  c.emit(1, "apple", 1);  // same key, different stripe
  c.emit(1, "pear", 1);
  std::map<std::string, std::uint64_t> merged;
  for (std::size_t p = 0; p < 4; ++p) {
    for (auto& [k, v] : c.reduce_partition(p, 4)) merged[k] += v;
  }
  EXPECT_EQ(merged["apple"], 3u);
  EXPECT_EQ(merged["pear"], 1u);
  EXPECT_EQ(merged.size(), 2u);
}

TEST(HashContainer, InitIsIdempotent) {
  // The persistent container: re-initializing across rounds keeps pairs
  // (paper §III.C).
  WordCounts c;
  c.init(2);
  c.emit(0, "w", 1);
  c.init(2);  // second round's run_mappers
  c.emit(1, "w", 1);
  auto pairs = c.reduce_partition(0, 1);
  ASSERT_EQ(pairs.size(), 1u);
  EXPECT_EQ(pairs[0].second, 2u);
}

TEST(HashContainer, ThreadCountChangeAcrossRoundsThrows) {
  // Regression: a thread-count mismatch on re-init used to be a bare
  // assert — compiled out under NDEBUG, so emit() would silently index past
  // the stripe vector. It is a hard runtime error now, whatever the build.
  WordCounts c;
  c.init(2);
  c.emit(0, "w", 1);
  EXPECT_THROW(c.init(3), std::logic_error);
  c.reset();
  c.init(3);  // after reset a new geometry is legal
  c.emit(2, "w", 1);
  auto pairs = c.reduce_partition(0, 1);
  ASSERT_EQ(pairs.size(), 1u);
  EXPECT_EQ(pairs[0].second, 1u);
}

TEST(ArrayContainer, GeometryChangeAcrossRoundsThrows) {
  ArrayContainer c;
  c.init(4);
  c.claim(1);
  EXPECT_THROW(c.init(8), std::logic_error);
  c.reset();
  c.init(8);  // reset unlocks a new record size
}

TEST(FixedKvArray, GeometryChangeAcrossRoundsThrows) {
  FixedKvArray<SumCombiner<std::uint64_t>> c;
  c.init(2, 16);
  EXPECT_THROW(c.init(3, 16), std::logic_error);  // thread count changed
  EXPECT_THROW(c.init(2, 32), std::logic_error);  // key count changed
  c.reset();
  c.init(3, 32);
}

TEST(HashContainer, ResetLosesPriorRounds) {
  // What the ORIGINAL runtime's per-round container init would do — this is
  // the failure mode persistence prevents.
  WordCounts c;
  c.init(1);
  c.emit(0, "w", 1);
  c.reset();
  c.init(1);
  c.emit(0, "w", 1);
  auto pairs = c.reduce_partition(0, 1);
  ASSERT_EQ(pairs.size(), 1u);
  EXPECT_EQ(pairs[0].second, 1u);  // the first round's pair was lost
}

TEST(HashContainer, ConcurrentStripeEmission) {
  constexpr std::size_t kThreads = 4;
  constexpr int kPerThread = 50000;
  WordCounts c;
  c.init(kThreads);
  std::vector<std::thread> workers;
  for (std::size_t t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i)
        c.emit(t, "key" + std::to_string(i % 100), 1);
    });
  }
  for (auto& w : workers) w.join();
  std::uint64_t total = 0;
  for (std::size_t p = 0; p < 8; ++p) {
    for (auto& [k, v] : c.reduce_partition(p, 8)) total += v;
  }
  EXPECT_EQ(total, kThreads * kPerThread);
}

TEST(HashContainer, PartitionsDisjointAcrossStripes) {
  WordCounts c;
  c.init(3);
  for (int i = 0; i < 300; ++i) c.emit(i % 3, "k" + std::to_string(i), 1);
  std::set<std::string> seen;
  for (std::size_t p = 0; p < 5; ++p) {
    for (auto& [k, v] : c.reduce_partition(p, 5)) {
      EXPECT_TRUE(seen.insert(k).second) << k;
    }
  }
  EXPECT_EQ(seen.size(), 300u);
}

TEST(HashContainer, AppendCombinerVariant) {
  HashContainer<AppendCombiner<std::uint32_t>> c;
  c.init(2);
  c.emit(0, "doc", 1u);
  c.emit(1, "doc", 2u);
  auto pairs = c.reduce_partition(0, 1);
  ASSERT_EQ(pairs.size(), 1u);
  std::vector<std::uint32_t> files = pairs[0].second;
  std::sort(files.begin(), files.end());
  EXPECT_EQ(files, (std::vector<std::uint32_t>{1, 2}));
}

// -------------------------------------------------------- ArrayContainer

TEST(ArrayContainer, ClaimAndWrite) {
  ArrayContainer c;
  c.init(4);
  const std::uint64_t base = c.claim(3);
  EXPECT_EQ(base, 0u);
  c.write_record(0, std::span<const char>("aaaa", 4));
  c.write_record(1, std::span<const char>("bbbb", 4));
  c.write_record(2, std::span<const char>("cccc", 4));
  EXPECT_EQ(c.size(), 3u);
  EXPECT_EQ(std::string(c.record(1).data(), 4), "bbbb");
}

TEST(ArrayContainer, ClaimsAreContiguousAcrossRounds) {
  ArrayContainer c;
  c.init(2);
  EXPECT_EQ(c.claim(5), 0u);
  EXPECT_EQ(c.claim(3), 5u);
  EXPECT_EQ(c.size(), 8u);
}

TEST(ArrayContainer, InitIdempotentPersistence) {
  ArrayContainer c;
  c.init(4);
  c.claim(2);
  c.write_record(0, std::span<const char>("r0r0", 4));
  c.init(4);  // next round
  c.claim(1);
  EXPECT_EQ(c.size(), 3u);
  EXPECT_EQ(std::string(c.record(0).data(), 4), "r0r0");  // survived
}

TEST(ArrayContainer, ConcurrentDisjointWrites) {
  constexpr std::uint64_t kRecords = 10000;
  ArrayContainer c;
  c.init(8);
  c.claim(kRecords);
  std::vector<std::thread> workers;
  for (int t = 0; t < 4; ++t) {
    workers.emplace_back([&, t] {
      char rec[8];
      for (std::uint64_t r = t; r < kRecords; r += 4) {
        std::snprintf(rec, sizeof(rec), "%07llu",
                      static_cast<unsigned long long>(r));
        c.write_record(r, std::span<const char>(rec, 8));
      }
    });
  }
  for (auto& w : workers) w.join();
  char expect[8];
  for (std::uint64_t r = 0; r < kRecords; r += 997) {
    std::snprintf(expect, sizeof(expect), "%07llu",
                  static_cast<unsigned long long>(r));
    EXPECT_EQ(std::memcmp(c.record(r).data(), expect, 8), 0);
  }
}

TEST(ArrayContainer, ResetClears) {
  ArrayContainer c;
  c.init(4);
  c.claim(10);
  c.reset();
  EXPECT_FALSE(c.initialized());
  c.init(8);  // may re-init with a different width after reset
  EXPECT_EQ(c.record_bytes(), 8u);
  EXPECT_EQ(c.size(), 0u);
}

}  // namespace
}  // namespace supmr::containers
