// Strict recursive-descent JSON validator for tests.
//
// The repo deliberately ships a JSON *writer* only, so tests have no parser
// to round-trip emitter output through. This validator closes that hole:
// validate_json() accepts exactly the RFC 8259 grammar (no trailing commas,
// no comments, no bare NaN/Infinity, \uXXXX escapes fully checked) and
// returns an error string pinpointing the first offending byte, or empty for
// a valid document. Validation-only — it builds no DOM, so it is safe to run
// over multi-megabyte trace files in a unit test.
#pragma once

#include <cctype>
#include <string>
#include <string_view>

namespace supmr::test {

namespace json_detail {

class Validator {
 public:
  explicit Validator(std::string_view text) : text_(text) {}

  // Empty string on success, "offset N: message" on the first error.
  std::string run() {
    skip_ws();
    if (!value()) return error_;
    skip_ws();
    if (pos_ != text_.size()) return fail("trailing data after document");
    return {};
  }

 private:
  bool fail_bool(const std::string& msg) {
    if (error_.empty()) {
      error_ = "offset " + std::to_string(pos_) + ": " + msg;
    }
    return false;
  }
  std::string fail(const std::string& msg) {
    fail_bool(msg);
    return error_;
  }

  bool eof() const { return pos_ >= text_.size(); }
  char peek() const { return text_[pos_]; }

  void skip_ws() {
    while (!eof() && (peek() == ' ' || peek() == '\t' || peek() == '\n' ||
                      peek() == '\r')) {
      ++pos_;
    }
  }

  bool literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) {
      return fail_bool("expected '" + std::string(lit) + "'");
    }
    pos_ += lit.size();
    return true;
  }

  bool value() {
    if (eof()) return fail_bool("unexpected end of input");
    switch (peek()) {
      case '{': return object();
      case '[': return array();
      case '"': return string();
      case 't': return literal("true");
      case 'f': return literal("false");
      case 'n': return literal("null");
      default: return number();
    }
  }

  bool object() {
    ++pos_;  // '{'
    skip_ws();
    if (!eof() && peek() == '}') {
      ++pos_;
      return true;
    }
    while (true) {
      skip_ws();
      if (eof() || peek() != '"') return fail_bool("expected object key");
      if (!string()) return false;
      skip_ws();
      if (eof() || peek() != ':') return fail_bool("expected ':'");
      ++pos_;
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (eof()) return fail_bool("unterminated object");
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      if (peek() == '}') {
        ++pos_;
        return true;
      }
      return fail_bool("expected ',' or '}'");
    }
  }

  bool array() {
    ++pos_;  // '['
    skip_ws();
    if (!eof() && peek() == ']') {
      ++pos_;
      return true;
    }
    while (true) {
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (eof()) return fail_bool("unterminated array");
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      if (peek() == ']') {
        ++pos_;
        return true;
      }
      return fail_bool("expected ',' or ']'");
    }
  }

  bool string() {
    ++pos_;  // opening '"'
    while (true) {
      if (eof()) return fail_bool("unterminated string");
      const unsigned char c = static_cast<unsigned char>(text_[pos_]);
      if (c == '"') {
        ++pos_;
        return true;
      }
      if (c < 0x20) return fail_bool("raw control character in string");
      if (c == '\\') {
        ++pos_;
        if (eof()) return fail_bool("dangling escape");
        const char e = text_[pos_];
        if (e == 'u') {
          for (int i = 0; i < 4; ++i) {
            ++pos_;
            if (eof() || !std::isxdigit(static_cast<unsigned char>(peek()))) {
              return fail_bool("bad \\u escape");
            }
          }
        } else if (e != '"' && e != '\\' && e != '/' && e != 'b' &&
                   e != 'f' && e != 'n' && e != 'r' && e != 't') {
          return fail_bool("bad escape character");
        }
      }
      ++pos_;
    }
  }

  bool digits() {
    if (eof() || !std::isdigit(static_cast<unsigned char>(peek()))) {
      return fail_bool("expected digit");
    }
    while (!eof() && std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    return true;
  }

  bool number() {
    if (peek() == '-') ++pos_;
    if (eof()) return fail_bool("truncated number");
    if (peek() == '0') {
      ++pos_;  // leading zero must stand alone
    } else if (std::isdigit(static_cast<unsigned char>(peek()))) {
      if (!digits()) return false;
    } else {
      return fail_bool("invalid value");
    }
    if (!eof() && peek() == '.') {
      ++pos_;
      if (!digits()) return false;
    }
    if (!eof() && (peek() == 'e' || peek() == 'E')) {
      ++pos_;
      if (!eof() && (peek() == '+' || peek() == '-')) ++pos_;
      if (!digits()) return false;
    }
    return true;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  std::string error_;
};

}  // namespace json_detail

// Returns "" if `text` is one valid JSON document, else a diagnostic.
inline std::string validate_json(std::string_view text) {
  return json_detail::Validator(text).run();
}

}  // namespace supmr::test
