// Differential and property tests for the in-mapper combining container
// (src/containers/combining.hpp, docs/containers.md).
//
// The core claim under test: folding duplicate keys at emit time is
// semantically invisible. For any emit sequence, CombiningContainer's
// reduce_partition output must equal HashContainer's (the Phoenix++ default)
// and a sort-fold reference built with plain std::map — across combiners
// (Sum/Min/Max/Append), key shapes (inline and arena-spilled, lengths
// straddling the comparator's 8-byte word boundary), partition counts, and
// SchedFuzz-perturbed concurrent fills. Plus the non-vacuity check the
// differential alone cannot give: the fold must actually fold.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "containers/combining.hpp"
#include "containers/combiners.hpp"
#include "containers/hash_container.hpp"
#include "tests/stress/sched_fuzz.hpp"
#include "tests/testdata.hpp"

namespace supmr::containers {
namespace {

// One recorded emit: (stripe, key index into a pool, value).
struct Emit {
  std::size_t thread_id;
  std::size_t key;
  std::uint64_t value;
};

// Zipf-weighted emit stream over `pool`, spread round-robin across stripes.
std::vector<Emit> zipf_emits(std::size_t n, std::size_t distinct,
                             std::size_t num_threads, std::uint64_t seed) {
  const auto stream = testdata::zipf_stream(n, distinct, seed);
  Xoshiro256 rng(seed ^ 0x5eedULL);
  std::vector<Emit> emits;
  emits.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    emits.push_back({i % num_threads, stream[i], rng.uniform(1000)});
  }
  return emits;
}

// Sorted (key, value) pairs via partitioned reduce — the shape merge sees.
template <typename Container>
std::vector<std::pair<std::string, std::uint64_t>> drain(
    const Container& c, std::size_t num_parts) {
  std::vector<std::pair<std::string, std::uint64_t>> out;
  for (std::size_t p = 0; p < num_parts; ++p) {
    auto part = c.reduce_partition(p, num_parts);
    out.insert(out.end(), part.begin(), part.end());
  }
  std::sort(out.begin(), out.end());
  return out;
}

template <typename Combiner>
std::vector<std::pair<std::string, std::uint64_t>> reference_fold(
    const std::vector<std::string>& pool, const std::vector<Emit>& emits) {
  std::map<std::string, std::uint64_t> folded;
  for (const Emit& e : emits) {
    auto [it, inserted] =
        folded.emplace(pool[e.key], Combiner::identity());
    Combiner::combine(it->second, e.value);
  }
  return {folded.begin(), folded.end()};
}

template <typename Combiner>
void expect_differential(const std::vector<std::string>& pool,
                         const std::vector<Emit>& emits,
                         std::size_t num_threads) {
  CombiningContainer<Combiner> combining;
  HashContainer<Combiner> hash;
  combining.init(num_threads);
  hash.init(num_threads);
  for (const Emit& e : emits) {
    combining.emit(e.thread_id, pool[e.key], e.value);
    hash.emit(e.thread_id, pool[e.key], e.value);
  }
  const auto expected = reference_fold<Combiner>(pool, emits);
  for (std::size_t parts : {std::size_t(1), std::size_t(3), std::size_t(8)}) {
    EXPECT_EQ(drain(combining, parts), expected)
        << "combining vs sort-fold reference, parts=" << parts;
    EXPECT_EQ(drain(combining, parts), drain(hash, parts))
        << "combining vs HashContainer, parts=" << parts;
  }
}

TEST(CombiningDifferential, ZipfCorporaMatchHashAndReference) {
  for (std::size_t distinct : {std::size_t(1), std::size_t(7),
                               std::size_t(200), std::size_t(3000)}) {
    const auto pool = testdata::key_pool(distinct);
    const auto emits = zipf_emits(20000, distinct, 3, 42 + distinct);
    expect_differential<SumCombiner<std::uint64_t>>(pool, emits, 3);
  }
}

TEST(CombiningDifferential, FoldingActuallyOccurs) {
  // Non-vacuity: on a duplicate-heavy stream the differential above would
  // pass even if emit never folded (HashContainer folds too). Assert the
  // combining table really absorbed duplicates.
  const auto pool = testdata::key_pool(16);
  const auto emits = zipf_emits(10000, 16, 2, 7);
  CombiningContainer<SumCombiner<std::uint64_t>> c;
  c.init(2);
  for (const Emit& e : emits) c.emit(e.thread_id, pool[e.key], e.value);
  EXPECT_EQ(c.emits(), 10000u);
  EXPECT_LE(c.raw_entries(), 2 * 16u);  // at most one entry per key per stripe
  EXPECT_GT(c.keys_folded(), 9000u);
  EXPECT_LT(c.bytes_into_merge(), c.bytes_emitted() / 100);
}

TEST(CombiningDifferential, KeysStraddlingComparatorWordBoundary) {
  // Key lengths around the merge comparator's 8-byte word (7/8/9), the
  // inline-storage edge (15/16/17), and well past it. Shared prefixes force
  // the comparator and the probe's key_of() compare past the first word.
  std::vector<std::string> pool;
  for (std::size_t len : {std::size_t(1), std::size_t(7), std::size_t(8),
                          std::size_t(9), std::size_t(15), std::size_t(16),
                          std::size_t(17), std::size_t(24), std::size_t(40)}) {
    for (char c : {'a', 'b'}) {
      std::string key(len, 'k');
      key.back() = c;
      pool.push_back(key);
    }
  }
  Xoshiro256 rng(99);
  std::vector<Emit> emits;
  for (std::size_t i = 0; i < 8000; ++i) {
    emits.push_back({i % 3, rng.uniform(pool.size()), rng.uniform(100)});
  }
  expect_differential<SumCombiner<std::uint64_t>>(pool, emits, 3);
  expect_differential<MinCombiner<std::uint64_t>>(pool, emits, 3);
  expect_differential<MaxCombiner<std::uint64_t>>(pool, emits, 3);
}

TEST(CombiningDifferential, AppendCombinerPreservesOrder) {
  // Append folds to per-key vectors: concatenation order (emit order within
  // a stripe, stripes in index order) must match HashContainer exactly.
  const auto pool = testdata::key_pool(12);
  CombiningContainer<AppendCombiner<std::uint32_t>> combining;
  HashContainer<AppendCombiner<std::uint32_t>> hash;
  combining.init(3);
  hash.init(3);
  Xoshiro256 rng(5);
  for (std::uint32_t i = 0; i < 6000; ++i) {
    const std::size_t tid = i % 3;
    const std::string& key = pool[rng.uniform(pool.size())];
    combining.emit(tid, key, i);
    hash.emit(tid, key, i);
  }
  for (std::size_t parts : {std::size_t(1), std::size_t(4)}) {
    std::vector<std::pair<std::string, std::vector<std::uint32_t>>> a, b;
    for (std::size_t p = 0; p < parts; ++p) {
      auto pa = combining.reduce_partition(p, parts);
      auto pb = hash.reduce_partition(p, parts);
      a.insert(a.end(), pa.begin(), pa.end());
      b.insert(b.end(), pb.begin(), pb.end());
    }
    std::sort(a.begin(), a.end());
    std::sort(b.begin(), b.end());
    EXPECT_EQ(a, b) << "append posting lists diverged, parts=" << parts;
  }
  EXPECT_EQ(combining.keys_folded(), 6000u - combining.raw_entries());
}

TEST(CombiningDifferential, PartitionsAreDisjointAndComplete) {
  const auto pool = testdata::key_pool(500);
  const auto emits = zipf_emits(15000, 500, 4, 17);
  CombiningContainer<SumCombiner<std::uint64_t>> c;
  c.init(4);
  for (const Emit& e : emits) c.emit(e.thread_id, pool[e.key], e.value);
  const auto global = drain(c, 1);
  for (std::size_t parts : {std::size_t(2), std::size_t(5), std::size_t(9)}) {
    EXPECT_EQ(drain(c, parts), global)
        << "partition union changed under parts=" << parts;
  }
}

// ------------------------------------------------------------- lifecycle

TEST(CombiningLifecycle, InitIsIdempotentAndGeometryChangeThrows) {
  CombiningContainer<SumCombiner<std::uint64_t>> c;
  c.init(3);
  c.emit(0, "abc", 1);
  c.init(3);  // idempotent: same geometry, keeps contents
  EXPECT_EQ(c.raw_entries(), 1u);
  EXPECT_THROW(c.init(4), std::logic_error);
  c.reset();
  EXPECT_FALSE(c.initialized());
  c.init(4);
  EXPECT_EQ(c.num_stripes(), 4u);
  EXPECT_EQ(c.raw_entries(), 0u);
}

TEST(CombiningLifecycle, EmptyAndSparseStripes) {
  CombiningContainer<SumCombiner<std::uint64_t>> c;
  c.init(4);
  EXPECT_EQ(drain(c, 3).size(), 0u);
  c.emit(2, "only", 5);  // three stripes stay empty
  const auto out = drain(c, 3);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0], (std::pair<std::string, std::uint64_t>("only", 5)));
  EXPECT_EQ(c.keys_folded(), 0u);
}

TEST(CombiningLifecycle, StatsAccountExactBytes) {
  CombiningContainer<SumCombiner<std::uint64_t>> c;
  c.init(1);
  for (int i = 0; i < 3; ++i) c.emit(0, "abc", std::uint64_t{1});
  for (int i = 0; i < 2; ++i) c.emit(0, "defghij", std::uint64_t{1});
  const core::CombineStats s = c.stats();
  EXPECT_EQ(s.emits, 5u);
  EXPECT_EQ(s.keys_folded, 3u);
  // Every emit: key bytes + 8-byte value; survivors: one record per key.
  EXPECT_EQ(s.bytes_emitted, 3 * (3 + 8) + 2 * (7 + 8));
  EXPECT_EQ(s.bytes_into_merge, (3 + 8) + (7 + 8));
  EXPECT_GT(s.table_bytes, 0u);
}

TEST(CombiningLifecycle, GrowthKeepsLongKeysAndPartitionsStable) {
  // Enough distinct >16-byte keys to force several doublings and a growing
  // long-key arena; totals must survive both.
  CombiningContainer<SumCombiner<std::uint64_t>> c;
  c.init(2, /*capacity_hint=*/4);
  std::map<std::string, std::uint64_t> expected;
  for (std::uint64_t i = 0; i < 5000; ++i) {
    std::string key =
        "quite-a-long-intermediate-key-" + std::to_string(i % 1700);
    c.emit(i % 2, key, i);
    expected[key] += i;
  }
  const std::vector<std::pair<std::string, std::uint64_t>> want(
      expected.begin(), expected.end());
  EXPECT_EQ(drain(c, 1), want);
  EXPECT_EQ(drain(c, 7), want);
}

TEST(SwitchedContainerTest, SelectAfterInitThrows) {
  SwitchedContainer<SumCombiner<std::uint64_t>> sc;
  sc.select(core::ContainerMode::kCombining);
  sc.init(2);
  sc.emit(0, "k", 1);
  EXPECT_THROW(sc.select(core::ContainerMode::kDefault), std::logic_error);
  sc.reset();
  sc.select(core::ContainerMode::kDefault);  // legal again after reset
  sc.init(2);
  sc.emit(0, "k", 2);
  EXPECT_EQ(sc.stats().emits, 0u);  // default mode tracks no fold counters
}

TEST(SwitchedContainerTest, ModesProduceIdenticalReductions) {
  const auto pool = testdata::key_pool(64);
  const auto emits = zipf_emits(8000, 64, 2, 31);
  SwitchedContainer<SumCombiner<std::uint64_t>> combining, fallback;
  combining.select(core::ContainerMode::kCombining);
  combining.init(2);
  fallback.init(2);  // default mode
  for (const Emit& e : emits) {
    combining.emit(e.thread_id, pool[e.key], e.value);
    fallback.emit(e.thread_id, pool[e.key], e.value);
  }
  EXPECT_EQ(drain(combining, 4), drain(fallback, 4));
  EXPECT_GT(combining.stats().keys_folded, 0u);
}

// ------------------------------------------- concurrent fill (SchedFuzz)

// Each map thread owns its stripe, so concurrent fills with distinct
// thread_ids must be race-free and deterministic: the fuzzed concurrent
// result must equal a serial replay of the same per-thread streams. Replay a
// failing schedule with SUPMR_SCHED_SEED=<seed>.
TEST(CombiningConcurrency, SchedFuzzedFillMatchesSerialReplay) {
  const std::size_t kThreads = 4;
  const std::size_t kEmitsPerThread = 12000;
  const auto pool = testdata::key_pool(300);
  for (std::uint64_t seed : test::kStressSeeds) {
    test::SchedFuzz fuzz(seed);
    CombiningContainer<SumCombiner<std::uint64_t>> concurrent;
    concurrent.init(kThreads);
    std::vector<std::thread> threads;
    for (std::size_t tid = 0; tid < kThreads; ++tid) {
      threads.emplace_back([&, tid] {
        test::SchedFuzz::Stream stream(fuzz, tid);
        Xoshiro256 rng(fuzz.seed() * 31 + tid);
        for (std::size_t i = 0; i < kEmitsPerThread; ++i) {
          concurrent.emit(tid, pool[rng.uniform(pool.size())],
                          rng.uniform(50));
          if ((i & 255) == 0) stream.yield_point();
        }
      });
    }
    for (auto& t : threads) t.join();

    CombiningContainer<SumCombiner<std::uint64_t>> serial;
    serial.init(kThreads);
    for (std::size_t tid = 0; tid < kThreads; ++tid) {
      Xoshiro256 rng(fuzz.seed() * 31 + tid);
      for (std::size_t i = 0; i < kEmitsPerThread; ++i) {
        serial.emit(tid, pool[rng.uniform(pool.size())], rng.uniform(50));
      }
    }
    EXPECT_EQ(drain(concurrent, 5), drain(serial, 5))
        << "seed=" << fuzz.seed();
    EXPECT_GT(concurrent.keys_folded(), 0u) << "fold was vacuous";
  }
}

// Concurrent reduce over disjoint partitions while the table is quiescent —
// the contract merge_partitioned relies on.
TEST(CombiningConcurrency, ConcurrentDisjointPartitionReduces) {
  const auto pool = testdata::key_pool(1000);
  const auto emits = zipf_emits(30000, 1000, 3, 77);
  CombiningContainer<SumCombiner<std::uint64_t>> c;
  c.init(3);
  for (const Emit& e : emits) c.emit(e.thread_id, pool[e.key], e.value);
  const std::size_t kParts = 6;
  std::vector<std::vector<std::pair<std::string, std::uint64_t>>> parts(
      kParts);
  std::vector<std::thread> threads;
  for (std::size_t p = 0; p < kParts; ++p) {
    threads.emplace_back(
        [&, p] { parts[p] = c.reduce_partition(p, kParts); });
  }
  for (auto& t : threads) t.join();
  std::vector<std::pair<std::string, std::uint64_t>> merged;
  for (auto& part : parts) {
    merged.insert(merged.end(), part.begin(), part.end());
  }
  std::sort(merged.begin(), merged.end());
  EXPECT_EQ(merged, drain(c, 1));
}

}  // namespace
}  // namespace supmr::containers
