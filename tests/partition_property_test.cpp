// Property tests for the partitioned shuffle's splitter discipline
// (merge/partitioned.hpp + containers/partitioned.hpp).
//
// The partitioned merge is only correct if the partitioning layer upholds
// three invariants, checked here on seeded adversarial inputs:
//   1. completeness — partition sizes sum to N; nothing dropped, nothing
//      duplicated (whole multiset preserved);
//   2. boundary order — every key in partition p sorts strictly before every
//      key in partition p+1 (equal keys never straddle a boundary);
//   3. determinism — splitter selection has no RNG, so identical inputs
//      produce identical splitters and routing.
//
// The concurrent-append tests run under the SchedFuzz seeded schedule
// shuffler: each runs once per seed in kStressSeeds and a failing schedule
// replays with SUPMR_SCHED_SEED=<seed>.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "containers/partitioned.hpp"
#include "merge/partitioned.hpp"
#include "tests/stress/sched_fuzz.hpp"
#include "tests/testdata.hpp"

namespace supmr {
namespace {

// ------------------------------------------------- value-level splitters

class SplitterProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SplitterProperty, PartitionValuesUpholdInvariants) {
  const auto cmp = std::less<int>{};
  for (const auto& dataset : testdata::adversarial_int_datasets(GetParam())) {
    for (std::size_t want : {2u, 5u, 16u}) {
      const auto splitters = merge::select_splitters(
          std::span<const int>(dataset.data), want, cmp);
      // Splitters are sorted and strictly increasing.
      for (std::size_t i = 1; i < splitters.size(); ++i)
        EXPECT_LT(splitters[i - 1], splitters[i]) << dataset.name;
      EXPECT_LE(splitters.size(), want - 1) << dataset.name;

      const auto parts =
          merge::partition_values(std::span<const int>(dataset.data),
                                  splitters, cmp);
      ASSERT_EQ(parts.size(), splitters.size() + 1);

      // (1) sizes sum to N and the multiset is preserved.
      std::size_t total = 0;
      std::vector<int> regathered;
      for (const auto& p : parts) {
        total += p.size();
        regathered.insert(regathered.end(), p.begin(), p.end());
      }
      EXPECT_EQ(total, dataset.data.size()) << dataset.name;
      std::vector<int> expected = dataset.data;
      std::sort(expected.begin(), expected.end());
      std::sort(regathered.begin(), regathered.end());
      EXPECT_EQ(regathered, expected) << dataset.name;

      // (2) key order across boundaries: max of p < min of p+1, and equal
      // values never split — every occurrence of a value is in ONE part.
      int prev_max = 0;
      bool have_prev = false;
      std::map<int, std::size_t> home;
      for (std::size_t p = 0; p < parts.size(); ++p) {
        if (parts[p].empty()) continue;
        const auto [lo, hi] =
            std::minmax_element(parts[p].begin(), parts[p].end());
        if (have_prev) {
          EXPECT_LT(prev_max, *lo)
              << dataset.name << " boundary before partition " << p;
        }
        prev_max = *hi;
        have_prev = true;
        for (int v : parts[p]) {
          auto [it, inserted] = home.emplace(v, p);
          EXPECT_EQ(it->second, p)
              << dataset.name << ": value " << v << " split across partitions "
              << it->second << " and " << p;
          (void)inserted;
        }
      }

      // partition_of agrees with where partition_values put each value.
      for (const auto& [v, p] : home) {
        EXPECT_EQ(merge::partition_of(splitters, v, cmp), p)
            << dataset.name << " value " << v;
      }
    }
  }
}

TEST_P(SplitterProperty, SelectionIsDeterministic) {
  const auto cmp = std::less<int>{};
  const auto data = testdata::random_ints(50000, GetParam());
  const auto a =
      merge::select_splitters(std::span<const int>(data), 8, cmp);
  const auto b =
      merge::select_splitters(std::span<const int>(data), 8, cmp);
  EXPECT_EQ(a, b);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SplitterProperty,
                         ::testing::Values(7u, 0xA11CE5u, 0xB0BCA7u));

// --------------------------------------------- record-level container

// Key widths straddle the comparator's 8-byte word (memcmp word at a time).
constexpr std::uint64_t kKeyWidths[] = {7, 8, 9};

TEST(PartitionedContainer, SampledSplittersRouteWholeInput) {
  for (std::uint64_t kb : kKeyWidths) {
    constexpr std::uint64_t kRecordBytes = 24;
    constexpr std::size_t kRecords = 4000;
    const std::string data =
        testdata::random_records(kRecords, kRecordBytes, kb, /*seed=*/kb);

    containers::PartitionedContainer c;
    c.init(kRecordBytes, kb, /*partitions=*/6, /*threads=*/3);
    c.sample_splitters(
        std::span<const char>(data.data(), 512 * kRecordBytes));

    // Splitters sorted strictly increasing under memcmp.
    for (std::size_t i = 1; i < c.num_splitters(); ++i) {
      EXPECT_LT(std::memcmp(c.splitter(i - 1).data(), c.splitter(i).data(),
                            kb),
                0);
    }

    for (std::size_t r = 0; r < kRecords; ++r) {
      c.append(r % 3, std::span<const char>(data.data() + r * kRecordBytes,
                                            kRecordBytes));
    }

    // (1) completeness: per-partition record counts sum to N, and the
    // concatenated stripes hold exactly the input multiset.
    std::uint64_t total = 0;
    std::vector<std::string> seen;
    for (std::size_t p = 0; p < c.partitions(); ++p) {
      total += c.partition_records(p);
      for (std::size_t t = 0; t < c.threads(); ++t) {
        const auto s = c.stripe(p, t);
        ASSERT_EQ(s.size() % kRecordBytes, 0u);
        for (std::size_t off = 0; off < s.size(); off += kRecordBytes)
          seen.emplace_back(s.data() + off, kRecordBytes);
      }
    }
    EXPECT_EQ(total, kRecords);
    EXPECT_EQ(c.total_records(), kRecords);
    std::vector<std::string> expected;
    for (std::size_t r = 0; r < kRecords; ++r)
      expected.emplace_back(data.data() + r * kRecordBytes, kRecordBytes);
    std::sort(seen.begin(), seen.end());
    std::sort(expected.begin(), expected.end());
    EXPECT_EQ(seen, expected) << "key_bytes=" << kb;

    // (2) boundary order: every key in partition p is strictly below every
    // key in p+1 — checked via per-partition min/max key prefixes.
    std::string prev_max;
    for (std::size_t p = 0; p < c.partitions(); ++p) {
      std::string lo, hi;
      for (std::size_t t = 0; t < c.threads(); ++t) {
        const auto s = c.stripe(p, t);
        for (std::size_t off = 0; off < s.size(); off += kRecordBytes) {
          std::string key(s.data() + off, kb);
          if (lo.empty() || key < lo) lo = key;
          if (hi.empty() || key > hi) hi = key;
        }
      }
      if (lo.empty()) continue;
      if (!prev_max.empty()) {
        EXPECT_LT(prev_max, lo) << "partition " << p << " key_bytes=" << kb;
      }
      prev_max = hi;
    }

    // (3) equal keys share a partition.
    const std::string probe(data.data(), kb);
    EXPECT_EQ(c.partition_of(probe.data()), c.partition_of(data.data()));
  }
}

TEST(PartitionedContainer, InitIsIdempotentAcrossRounds) {
  // The Application contract: containers persist across map rounds and a
  // second init with the same geometry is a no-op (paper §III.C).
  containers::PartitionedContainer c;
  c.init(/*record_bytes=*/8, /*key_bytes=*/4, /*partitions=*/3,
         /*threads=*/2);
  const std::string rec(8, 'k');
  c.append(1, std::span<const char>(rec.data(), rec.size()));
  c.init(8, 4, 3, 2);  // round 2: must keep contents and geometry
  EXPECT_TRUE(c.initialized());
  EXPECT_EQ(c.total_records(), 1u);
  EXPECT_EQ(c.partitions(), 3u);
  c.reset();
  EXPECT_FALSE(c.initialized());
  c.init(8, 4, 5, 1);  // re-init after reset may change geometry
  EXPECT_EQ(c.partitions(), 5u);
  EXPECT_EQ(c.total_records(), 0u);
}

TEST(PartitionedContainer, DuplicateQuantilesCollapse) {
  // All-equal keys: every quantile cut is the same key, so at most one
  // splitter may survive — duplicate cuts must be dropped, never emitted
  // as equal "strictly increasing" splitters.
  containers::PartitionedContainer c;
  c.init(/*record_bytes=*/8, /*key_bytes=*/8, /*partitions=*/8,
         /*threads=*/1);
  const std::string sample(256 * 8, 'z');
  c.sample_splitters(std::span<const char>(sample.data(), sample.size()));
  EXPECT_LE(c.num_splitters(), 1u);
  const std::string rec(8, 'z');
  c.append(0, std::span<const char>(rec.data(), rec.size()));
  EXPECT_EQ(c.total_records(), 1u);
}

TEST(PartitionedContainer, NoSplittersDegradesToSinglePartition) {
  containers::PartitionedContainer c;
  c.init(/*record_bytes=*/8, /*key_bytes=*/8, /*partitions=*/4,
         /*threads=*/2);
  const std::string rec(8, 'a');
  EXPECT_EQ(c.num_splitters(), 0u);
  EXPECT_EQ(c.partition_of(rec.data()), 0u);
  c.append(0, std::span<const char>(rec.data(), rec.size()));
  EXPECT_EQ(c.partition_records(0), 1u);
  for (std::size_t p = 1; p < c.partitions(); ++p)
    EXPECT_EQ(c.partition_records(p), 0u);
}

// --------------------------------------- concurrent map-thread appends

// The container's lock-freedom claim: (partition, thread) stripes are owned
// by exactly one thread, so concurrent appends from distinct mapper threads
// never alias. Run under the schedule fuzzer; TSan builds of this test are
// the proof the claim holds.
class PartitionedContainerSched
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PartitionedContainerSched, ConcurrentAppendsLoseNothing) {
  test::SchedFuzz fuzz(GetParam());
  constexpr std::uint64_t kRecordBytes = 16;
  constexpr std::uint64_t kKeyBytes = 8;
  constexpr std::size_t kThreads = 4;
  constexpr std::size_t kPerThread = 2000;
  const std::string data = testdata::random_records(
      kThreads * kPerThread, kRecordBytes, kKeyBytes, fuzz.seed());

  containers::PartitionedContainer c;
  c.init(kRecordBytes, kKeyBytes, /*partitions=*/kThreads, kThreads);
  c.sample_splitters(
      std::span<const char>(data.data(), 256 * kRecordBytes));

  std::vector<std::thread> workers;
  for (std::size_t t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      test::SchedFuzz::Stream stream(fuzz, t);
      for (std::size_t i = 0; i < kPerThread; ++i) {
        const std::size_t r = t * kPerThread + i;
        c.append(t, std::span<const char>(data.data() + r * kRecordBytes,
                                          kRecordBytes));
        if ((i & 63) == 0) stream.yield_point();
      }
    });
  }
  for (auto& w : workers) w.join();

  EXPECT_EQ(c.total_records(), kThreads * kPerThread);
  std::vector<std::string> seen, expected;
  for (std::size_t p = 0; p < c.partitions(); ++p) {
    for (std::size_t t = 0; t < c.threads(); ++t) {
      const auto s = c.stripe(p, t);
      for (std::size_t off = 0; off < s.size(); off += kRecordBytes) {
        seen.emplace_back(s.data() + off, kRecordBytes);
        // Routing invariant holds under concurrency too.
        EXPECT_EQ(c.partition_of(s.data() + off), p);
      }
    }
  }
  for (std::size_t r = 0; r < kThreads * kPerThread; ++r)
    expected.emplace_back(data.data() + r * kRecordBytes, kRecordBytes);
  std::sort(seen.begin(), seen.end());
  std::sort(expected.begin(), expected.end());
  EXPECT_EQ(seen, expected);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PartitionedContainerSched,
                         ::testing::ValuesIn(test::kStressSeeds));

}  // namespace
}  // namespace supmr
