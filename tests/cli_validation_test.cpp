// CLI argument-validation contract: bad invocations must exit non-zero AND
// say what was wrong on stderr. Each case spawns the real supmr binary
// (SUPMR_CLI_PATH is injected by CMake) with stderr folded into the captured
// stream, so these assertions cover the exact text a user sees.
#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include <sys/wait.h>

namespace supmr {
namespace {

struct CliResult {
  int exit_code = -1;
  std::string output;  // stdout + stderr interleaved
};

CliResult run_cli(const std::string& args) {
  const std::string cmd = std::string(SUPMR_CLI_PATH) + " " + args + " 2>&1";
  CliResult result;
  FILE* pipe = popen(cmd.c_str(), "r");
  if (pipe == nullptr) return result;
  char buf[512];
  std::size_t n;
  while ((n = fread(buf, 1, sizeof(buf), pipe)) > 0) {
    result.output.append(buf, n);
  }
  const int status = pclose(pipe);
  if (WIFEXITED(status)) result.exit_code = WEXITSTATUS(status);
  return result;
}

void expect_rejected(const std::string& args, const std::string& expected_msg) {
  const CliResult r = run_cli(args);
  EXPECT_NE(r.exit_code, 0) << "supmr " << args << "\n" << r.output;
  EXPECT_NE(r.output.find(expected_msg), std::string::npos)
      << "supmr " << args << " should mention \"" << expected_msg
      << "\"; got:\n" << r.output;
}

TEST(CliValidation, PartitionsRequirePartitionedMerge) {
  // Validation runs before the input file is opened, so no corpus is needed.
  expect_rejected("sort nonexistent.dat --partitions=4",
                  "--partitions requires --merge=partitioned");
  expect_rejected("sort nonexistent.dat --merge=pway --partitions=4",
                  "--partitions requires --merge=partitioned");
}

TEST(CliValidation, DegradeRequiresFaultPlan) {
  expect_rejected("wordcount nonexistent.txt --degrade",
                  "--degrade requires --fault-plan");
}

TEST(CliValidation, DegradeWithFaultPlanPassesValidation) {
  // With a plan the flag combination is accepted; the failure (if any) must
  // come later, from the missing input file — not from flag validation.
  const CliResult r = run_cli(
      "wordcount nonexistent.txt --degrade --fault-plan=permanent=0-10");
  EXPECT_NE(r.exit_code, 0);
  EXPECT_EQ(r.output.find("--degrade requires"), std::string::npos)
      << r.output;
}

TEST(CliValidation, UnknownFlagNamesTheFlag) {
  expect_rejected("wordcount whatever --no-such-flag=1",
                  "unknown flag --no-such-flag");
}

TEST(CliValidation, BadEnumValuesAreNamed) {
  // The shared enum-name tables (common/enum_names.hpp) name the bad value
  // AND list what would have been accepted.
  expect_rejected("wordcount whatever --mode=warp",
                  "unknown exec mode: warp (want original|supmr|adaptive)");
  expect_rejected("wordcount whatever --merge=psychic",
                  "unknown merge mode: psychic (want pairwise|pway|partitioned)");
  expect_rejected("wordcount whatever --io=psychic",
                  "unknown io mode: psychic (want read|mmap)");
}

TEST(CliValidation, RetryAttemptsMustBePositive) {
  expect_rejected("wordcount whatever --retry-attempts=0",
                  "--retry-attempts must be >= 1");
}

TEST(CliValidation, MalformedSizesAndNumbers) {
  expect_rejected("wordcount whatever --chunk=banana", "bad size for --chunk");
  expect_rejected("wordcount whatever --threads=many",
                  "bad integer for --threads");
}

TEST(CliValidation, UnknownCommand) {
  expect_rejected("transmogrify foo", "unknown command: transmogrify");
}

TEST(CliValidation, ReplayNeedsAReadableSpec) {
  expect_rejected("replay", "replay needs a spec file");
  expect_rejected("--replay", "--replay needs a spec file");
  {
    const CliResult r = run_cli("replay /nonexistent/repro.json");
    EXPECT_NE(r.exit_code, 0) << r.output;
    EXPECT_NE(r.output.find("error:"), std::string::npos) << r.output;
  }
}

TEST(CliValidation, ReplayRejectsMalformedSpec) {
  const std::string path = ::testing::TempDir() + "/bad_replay_spec.json";
  FILE* f = std::fopen(path.c_str(), "w");
  ASSERT_NE(f, nullptr);
  std::fputs("{\"app\": \"wordcount\", \"mystery\": 1}", f);
  std::fclose(f);
  const CliResult r = run_cli("replay " + path);
  EXPECT_NE(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("error:"), std::string::npos) << r.output;
  std::remove(path.c_str());
}

}  // namespace
}  // namespace supmr
