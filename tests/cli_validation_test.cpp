// CLI argument-validation contract: bad invocations must exit non-zero AND
// say what was wrong on stderr. Each case spawns the real supmr binary
// (SUPMR_CLI_PATH is injected by CMake) with stderr folded into the captured
// stream, so these assertions cover the exact text a user sees.
#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include <sys/wait.h>

namespace supmr {
namespace {

struct CliResult {
  int exit_code = -1;
  std::string output;  // stdout + stderr interleaved
};

CliResult run_cli(const std::string& args) {
  const std::string cmd = std::string(SUPMR_CLI_PATH) + " " + args + " 2>&1";
  CliResult result;
  FILE* pipe = popen(cmd.c_str(), "r");
  if (pipe == nullptr) return result;
  char buf[512];
  std::size_t n;
  while ((n = fread(buf, 1, sizeof(buf), pipe)) > 0) {
    result.output.append(buf, n);
  }
  const int status = pclose(pipe);
  if (WIFEXITED(status)) result.exit_code = WEXITSTATUS(status);
  return result;
}

void expect_rejected(const std::string& args, const std::string& expected_msg) {
  const CliResult r = run_cli(args);
  EXPECT_NE(r.exit_code, 0) << "supmr " << args << "\n" << r.output;
  EXPECT_NE(r.output.find(expected_msg), std::string::npos)
      << "supmr " << args << " should mention \"" << expected_msg
      << "\"; got:\n" << r.output;
}

TEST(CliValidation, PartitionsRequirePartitionedMerge) {
  // Validation runs before the input file is opened, so no corpus is needed.
  expect_rejected("sort nonexistent.dat --partitions=4",
                  "--partitions requires --merge=partitioned");
  expect_rejected("sort nonexistent.dat --merge=pway --partitions=4",
                  "--partitions requires --merge=partitioned");
}

TEST(CliValidation, DegradeRequiresFaultPlan) {
  expect_rejected("wordcount nonexistent.txt --degrade",
                  "--degrade requires --fault-plan");
}

TEST(CliValidation, DegradeWithFaultPlanPassesValidation) {
  // With a plan the flag combination is accepted; the failure (if any) must
  // come later, from the missing input file — not from flag validation.
  const CliResult r = run_cli(
      "wordcount nonexistent.txt --degrade --fault-plan=permanent=0-10");
  EXPECT_NE(r.exit_code, 0);
  EXPECT_EQ(r.output.find("--degrade requires"), std::string::npos)
      << r.output;
}

TEST(CliValidation, UnknownFlagNamesTheFlag) {
  expect_rejected("wordcount whatever --no-such-flag=1",
                  "unknown flag --no-such-flag");
}

TEST(CliValidation, BadEnumValuesAreNamed) {
  // The shared enum-name tables (common/enum_names.hpp) name the bad value
  // AND list what would have been accepted.
  expect_rejected("wordcount whatever --mode=warp",
                  "unknown exec mode: warp (want original|supmr|adaptive)");
  expect_rejected("wordcount whatever --merge=psychic",
                  "unknown merge mode: psychic (want pairwise|pway|partitioned)");
  expect_rejected("wordcount whatever --io=psychic",
                  "unknown io mode: psychic (want read|mmap)");
}

TEST(CliValidation, BadContainerModeIsNamed) {
  expect_rejected("wordcount whatever --container=psychic",
                  "unknown container mode: psychic (want default|combining)");
}

// Writes a small real input file: the combiner-capability check runs after
// the input is opened (it sits at the app seam, not in flag parsing), so a
// nonexistent path would fail earlier with the wrong error.
std::string write_temp_corpus(const std::string& name) {
  const std::string path = ::testing::TempDir() + "/" + name;
  FILE* f = std::fopen(path.c_str(), "w");
  EXPECT_NE(f, nullptr);
  std::fputs("alpha beta alpha\n", f);
  std::fclose(f);
  return path;
}

TEST(CliValidation, CombiningRejectedForAppsWithoutCombiner) {
  // Silent-acceptance gap: an app with no declared combiner must refuse
  // --container=combining loudly instead of quietly running its default.
  const std::string corpus = write_temp_corpus("cli_container_corpus.txt");
  expect_rejected("sort " + corpus + " --container=combining",
                  "declares no combiner");
  expect_rejected("grep th " + corpus + " --container=combining",
                  "declares no combiner");
  // The spilling external wordcount has no emit-time fold either.
  expect_rejected(
      "wordcount " + corpus + " --budget=32KB --container=combining",
      "declares no combiner");
  std::remove(corpus.c_str());
}

TEST(CliValidation, CombiningRejectedForKmeans) {
  // kmeans builds its apps internally, so the rejection fires during flag
  // validation — before the input path is even opened.
  expect_rejected("kmeans nonexistent.txt --container=combining",
                  "declares no combiner");
}

TEST(CliValidation, CombiningAcceptedForWordCount) {
  const std::string corpus = write_temp_corpus("cli_combining_ok.txt");
  const CliResult r = run_cli("wordcount " + corpus + " --container=combining");
  EXPECT_EQ(r.exit_code, 0) << r.output;
  std::remove(corpus.c_str());
}

TEST(CliValidation, ReplaySpecRejectsCombiningForCombinerlessApp) {
  const std::string path = ::testing::TempDir() + "/combining_sort_spec.json";
  FILE* f = std::fopen(path.c_str(), "w");
  ASSERT_NE(f, nullptr);
  std::fputs(
      "{\"app\": \"sort\",\n"
      " \"corpus\": {\"kind\": \"terasort\", \"bytes\": 10000, \"seed\": 1,"
      " \"num_files\": 6},\n"
      " \"params\": {\"key_bytes\": 10, \"record_bytes\": 100,"
      " \"app_partitions\": 0, \"hist_lo\": 0, \"hist_hi\": 256,"
      " \"hist_bins\": 32, \"grep_patterns\": \"th\","
      " \"memory_budget\": 0},\n"
      " \"cell\": {\"mode\": \"supmr\", \"merge\": \"pway\","
      " \"container\": \"combining\", \"threads\": 2, \"merge_partitions\": 0,"
      " \"chunk_bytes\": 16384, \"files_per_chunk\": 3, \"degrade\": false,"
      " \"fault_plan\": \"\", \"retry_attempts\": 1}}",
      f);
  std::fclose(f);
  expect_rejected("replay " + path, "declares no combiner");
  std::remove(path.c_str());
}

TEST(CliValidation, ClusterNodesMustBePositive) {
  // --nodes=0 is a contradiction (a cluster of no nodes), not "disable":
  // disabling the cluster path is done by omitting the flag entirely.
  expect_rejected("wordcount whatever --nodes=0", "--nodes must be >= 1");
}

TEST(CliValidation, ClusterKnobsRequireNodes) {
  // Every fabric/budget knob is meaningless without a cluster to apply it
  // to; silently ignoring it would hide a typo'd benchmark invocation.
  expect_rejected("wordcount whatever --node-link-bps=1MB",
                  "--node-link-bps requires --nodes");
  expect_rejected("wordcount whatever --uplink-bps=1MB",
                  "--uplink-bps requires --nodes");
  expect_rejected("sort whatever --node-disk-bps=1MB",
                  "--node-disk-bps requires --nodes");
  expect_rejected("sort whatever --node-budget=1MB",
                  "--node-budget requires --nodes");
}

TEST(CliValidation, ClusterRejectsFaultAndThrottleCombos) {
  // Node slices are private in-memory devices: a fault plan or a global
  // throttle on the (nonexistent) shared source device cannot apply.
  expect_rejected(
      "wordcount whatever --nodes=2 --fault-plan=permanent=0-10",
      "--nodes does not combine with --fault-plan/--degrade");
  expect_rejected("wordcount whatever --nodes=2 --throttle=1MB",
                  "--nodes does not combine with --throttle");
}

TEST(CliValidation, ClusterCommandNeedsAClusterSpec) {
  const std::string path = ::testing::TempDir() + "/nodeless_cluster_spec.json";
  FILE* f = std::fopen(path.c_str(), "w");
  ASSERT_NE(f, nullptr);
  std::fputs(
      "{\"app\": \"wordcount\",\n"
      " \"corpus\": {\"kind\": \"text\", \"bytes\": 10000, \"seed\": 1,"
      " \"num_files\": 6},\n"
      " \"params\": {\"key_bytes\": 10, \"record_bytes\": 100,"
      " \"app_partitions\": 0, \"hist_lo\": 0, \"hist_hi\": 256,"
      " \"hist_bins\": 32, \"grep_patterns\": \"th\","
      " \"memory_budget\": 0},\n"
      " \"cell\": {\"mode\": \"supmr\", \"merge\": \"pway\", \"threads\": 2,"
      " \"merge_partitions\": 0, \"chunk_bytes\": 16384, \"files_per_chunk\":"
      " 3, \"degrade\": false, \"fault_plan\": \"\", \"retry_attempts\": 1}}",
      f);
  std::fclose(f);
  expect_rejected("cluster --spec=" + path,
                  "cluster needs a spec with cluster.nodes >= 1");
  std::remove(path.c_str());
}

TEST(CliValidation, ReplaySpecRejectsUnknownClusterKey) {
  // The cluster object is strict-keyed like every other spec section: a
  // typo'd knob ("nodez") must fail the parse, not silently default.
  const std::string path = ::testing::TempDir() + "/typo_cluster_spec.json";
  FILE* f = std::fopen(path.c_str(), "w");
  ASSERT_NE(f, nullptr);
  std::fputs(
      "{\"app\": \"wordcount\",\n"
      " \"corpus\": {\"kind\": \"text\", \"bytes\": 10000, \"seed\": 1,"
      " \"num_files\": 6},\n"
      " \"params\": {\"key_bytes\": 10, \"record_bytes\": 100,"
      " \"app_partitions\": 0, \"hist_lo\": 0, \"hist_hi\": 256,"
      " \"hist_bins\": 32, \"grep_patterns\": \"th\","
      " \"memory_budget\": 0},\n"
      " \"cell\": {\"mode\": \"supmr\", \"merge\": \"pway\", \"threads\": 2,"
      " \"merge_partitions\": 0, \"chunk_bytes\": 16384, \"files_per_chunk\":"
      " 3, \"degrade\": false, \"fault_plan\": \"\", \"retry_attempts\": 1},\n"
      " \"cluster\": {\"nodez\": 2}}",
      f);
  std::fclose(f);
  expect_rejected("replay " + path, "replay spec: unknown key");
  std::remove(path.c_str());
}

TEST(CliValidation, ReplaySpecClusterKnobsRequireNodes) {
  const std::string path = ::testing::TempDir() + "/knobs_no_nodes_spec.json";
  FILE* f = std::fopen(path.c_str(), "w");
  ASSERT_NE(f, nullptr);
  std::fputs(
      "{\"app\": \"wordcount\",\n"
      " \"corpus\": {\"kind\": \"text\", \"bytes\": 10000, \"seed\": 1,"
      " \"num_files\": 6},\n"
      " \"params\": {\"key_bytes\": 10, \"record_bytes\": 100,"
      " \"app_partitions\": 0, \"hist_lo\": 0, \"hist_hi\": 256,"
      " \"hist_bins\": 32, \"grep_patterns\": \"th\","
      " \"memory_budget\": 0},\n"
      " \"cell\": {\"mode\": \"supmr\", \"merge\": \"pway\", \"threads\": 2,"
      " \"merge_partitions\": 0, \"chunk_bytes\": 16384, \"files_per_chunk\":"
      " 3, \"degrade\": false, \"fault_plan\": \"\", \"retry_attempts\": 1},\n"
      " \"cluster\": {\"nodes\": 0, \"link_bps\": 1000000}}",
      f);
  std::fclose(f);
  expect_rejected(
      "replay " + path,
      "replay spec: cluster bandwidth/budget knobs require cluster.nodes");
  std::remove(path.c_str());
}

TEST(CliValidation, RetryAttemptsMustBePositive) {
  expect_rejected("wordcount whatever --retry-attempts=0",
                  "--retry-attempts must be >= 1");
}

TEST(CliValidation, MalformedSizesAndNumbers) {
  expect_rejected("wordcount whatever --chunk=banana", "bad size for --chunk");
  expect_rejected("wordcount whatever --threads=many",
                  "bad integer for --threads");
}

TEST(CliValidation, UnknownCommand) {
  expect_rejected("transmogrify foo", "unknown command: transmogrify");
}

TEST(CliValidation, ReplayNeedsAReadableSpec) {
  expect_rejected("replay", "replay needs a spec file");
  expect_rejected("--replay", "--replay needs a spec file");
  {
    const CliResult r = run_cli("replay /nonexistent/repro.json");
    EXPECT_NE(r.exit_code, 0) << r.output;
    EXPECT_NE(r.output.find("error:"), std::string::npos) << r.output;
  }
}

TEST(CliValidation, ReplayRejectsMalformedSpec) {
  const std::string path = ::testing::TempDir() + "/bad_replay_spec.json";
  FILE* f = std::fopen(path.c_str(), "w");
  ASSERT_NE(f, nullptr);
  std::fputs("{\"app\": \"wordcount\", \"mystery\": 1}", f);
  std::fclose(f);
  const CliResult r = run_cli("replay " + path);
  EXPECT_NE(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("error:"), std::string::npos) << r.output;
  std::remove(path.c_str());
}

}  // namespace
}  // namespace supmr
