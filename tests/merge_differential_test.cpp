// Differential merge-correctness suite: every merge backend in src/merge/
// is pinned against a std::stable_sort reference on seeded adversarial
// inputs (tests/testdata.hpp). This is the safety net under the partitioned
// shuffle work (docs/merge.md): any reordering, dropped record, duplicate,
// or comparator tie-break bug in ANY backend shows up as a diff against the
// reference, on the exact inputs the benches run.
//
// Backends: pairwise, f-way, parallel p-way, loser tree, sample sort,
// pairwise merge sort, f-way merge sort, partitioned_sort /
// partitioned_merge (the new per-partition path), and the external sorter
// (flat and per-partition spills) with key sizes 7/8/9 straddling the
// comparator's 8-byte word boundary.
//
// Labels: unit + sanitizer — the differential suite must stay clean under
// TSan and ASan+UBSan (tools/check.sh).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <functional>
#include <string>
#include <vector>

#include "merge/external_sorter.hpp"
#include "merge/fway.hpp"
#include "merge/loser_tree.hpp"
#include "merge/pairwise.hpp"
#include "merge/partitioned.hpp"
#include "merge/pway.hpp"
#include "merge/sample_sort.hpp"
#include "tests/testdata.hpp"
#include "threading/thread_pool.hpp"

namespace supmr::merge {
namespace {

std::vector<int> reference_sort(std::vector<int> v) {
  std::stable_sort(v.begin(), v.end());
  return v;
}

// Splits `data` into up to `k` contiguous runs and sorts each — the
// pre-sorted-runs shape the merge kernels consume.
std::vector<std::span<int>> make_runs(std::vector<int>& data, std::size_t k) {
  std::vector<std::span<int>> runs;
  if (data.empty()) return runs;
  k = std::max<std::size_t>(1, std::min(k, data.size()));
  const std::size_t per = (data.size() + k - 1) / k;
  for (std::size_t begin = 0; begin < data.size(); begin += per) {
    const std::size_t len = std::min(per, data.size() - begin);
    std::span<int> run(data.data() + begin, len);
    std::sort(run.begin(), run.end());
    runs.push_back(run);
  }
  return runs;
}

struct Backend {
  std::string name;
  // Takes the pool and the raw (unsorted) input; returns the fully sorted
  // output by whatever path the backend implements.
  std::function<std::vector<int>(ThreadPool&, const std::vector<int>&)> run;
};

std::vector<Backend> all_backends() {
  const auto cmp = std::less<int>{};
  std::vector<Backend> backends;

  backends.push_back({"pairwise", [cmp](ThreadPool& pool,
                                        const std::vector<int>& in) {
    auto data = in;
    auto runs = make_runs(data, 8);
    pairwise_merge(pool, std::move(runs),
                   std::span<int>(data.data(), data.size()), cmp);
    return data;
  }});

  backends.push_back({"fway", [cmp](ThreadPool& pool,
                                    const std::vector<int>& in) {
    auto data = in;
    auto runs = make_runs(data, 9);  // non-power-of-two run count
    fway_merge(pool, std::move(runs),
               std::span<int>(data.data(), data.size()), /*fanin=*/3, cmp);
    return data;
  }});

  backends.push_back({"pway", [cmp](ThreadPool& pool,
                                    const std::vector<int>& in) {
    auto data = in;
    auto sorted_runs = make_runs(data, 7);
    std::vector<std::span<const int>> runs(sorted_runs.begin(),
                                           sorted_runs.end());
    std::vector<int> out(data.size());
    parallel_pway_merge(pool, std::move(runs), out.data(), cmp);
    return out;
  }});

  backends.push_back({"loser_tree", [cmp](ThreadPool&,
                                          const std::vector<int>& in) {
    auto data = in;
    auto sorted_runs = make_runs(data, 6);
    std::vector<std::span<const int>> runs(sorted_runs.begin(),
                                           sorted_runs.end());
    std::vector<int> out(data.size());
    LoserTree<int, std::less<int>> tree(std::move(runs), cmp);
    tree.drain(out.data());
    return out;
  }});

  backends.push_back({"sample_sort", [cmp](ThreadPool& pool,
                                           const std::vector<int>& in) {
    auto data = in;
    parallel_sample_sort(pool, std::span<int>(data.data(), data.size()),
                         cmp);
    return data;
  }});

  backends.push_back({"pairwise_merge_sort",
                      [cmp](ThreadPool& pool, const std::vector<int>& in) {
    auto data = in;
    pairwise_merge_sort(pool, std::span<int>(data.data(), data.size()), cmp);
    return data;
  }});

  backends.push_back({"fway_merge_sort", [cmp](ThreadPool& pool,
                                               const std::vector<int>& in) {
    auto data = in;
    fway_merge_sort(pool, std::span<int>(data.data(), data.size()), cmp,
                    /*num_runs=*/8, /*fanin=*/4);
    return data;
  }});

  backends.push_back({"partitioned_sort", [cmp](ThreadPool& pool,
                                                const std::vector<int>& in) {
    auto data = in;
    partitioned_sort(pool, std::span<int>(data.data(), data.size()), cmp,
                     /*num_partitions=*/5);
    return data;
  }});

  backends.push_back({"partitioned_merge",
                      [cmp](ThreadPool& pool, const std::vector<int>& in) {
    // The map-time shuffle shape: bucket into (partition, thread) stripes
    // exactly as PartitionedContainer routes records, then one merge per
    // partition.
    const std::size_t threads = 3;
    const auto splitters = select_splitters(
        std::span<const int>(in.data(), in.size()), 4, cmp);
    std::vector<std::vector<std::vector<int>>> stripes(
        splitters.size() + 1, std::vector<std::vector<int>>(threads));
    for (std::size_t i = 0; i < in.size(); ++i) {
      stripes[partition_of(splitters, in[i], cmp)][i % threads].push_back(
          in[i]);
    }
    std::vector<std::vector<std::span<int>>> parts(stripes.size());
    for (std::size_t p = 0; p < stripes.size(); ++p)
      for (auto& s : stripes[p])
        if (!s.empty()) parts[p].push_back(std::span<int>(s));
    std::vector<int> out(in.size());
    partitioned_merge(pool, std::move(parts), out.data(), cmp);
    return out;
  }});

  return backends;
}

class DifferentialMerge : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DifferentialMerge, EveryBackendMatchesStableSortReference) {
  ThreadPool pool(4);
  const auto datasets = testdata::adversarial_int_datasets(GetParam());
  for (const auto& dataset : datasets) {
    const std::vector<int> expected = reference_sort(dataset.data);
    for (const auto& backend : all_backends()) {
      const std::vector<int> got = backend.run(pool, dataset.data);
      EXPECT_EQ(got, expected)
          << "backend=" << backend.name << " dataset=" << dataset.name
          << " seed=" << GetParam();
    }
  }
}

TEST_P(DifferentialMerge, SingleThreadPoolSameResult) {
  // Pool of one: every wave degenerates to sequential execution; results
  // must not depend on parallelism.
  ThreadPool pool(1);
  const auto datasets = testdata::adversarial_int_datasets(GetParam());
  for (const auto& dataset : datasets) {
    const std::vector<int> expected = reference_sort(dataset.data);
    for (const auto& backend : all_backends()) {
      EXPECT_EQ(backend.run(pool, dataset.data), expected)
          << "backend=" << backend.name << " dataset=" << dataset.name;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DifferentialMerge,
                         ::testing::Values(1u, 0xA11CE5u, 0xC0FFEEu));

// ---------------------------------------------------------- external sorter
//
// Record-based differential: key sizes 7/8/9 straddle the 8-byte word an
// optimized memcmp compares at a time, catching prefix/tail mistakes in the
// key comparisons. Inputs are duplicate-heavy (every 4th record repeated) to
// exercise ties; both the flat and the per-partition spill layouts must
// reproduce the reference exactly.

struct ExternalCase {
  std::uint32_t key_bytes;
  std::size_t partitions;
};

class ExternalDifferential
    : public ::testing::TestWithParam<ExternalCase> {};

TEST_P(ExternalDifferential, MatchesReferenceAcrossSpills) {
  const auto [kb, partitions] = GetParam();
  constexpr std::uint32_t kRecordBytes = 32;
  constexpr std::size_t kRecords = 3000;
  std::string data =
      testdata::random_records(kRecords, kRecordBytes, kb, /*seed=*/kb);
  // Duplicate-heavy: repeat every 4th record so equal keys cross runs.
  std::string dups;
  for (std::size_t r = 0; r < kRecords; r += 4)
    dups.append(data, r * kRecordBytes, kRecordBytes);
  data += dups;
  const std::size_t total = data.size() / kRecordBytes;

  // Reference: stable sort of record indices by key prefix.
  std::vector<std::uint64_t> ref(total);
  for (std::uint64_t i = 0; i < total; ++i) ref[i] = i;
  const char* base = data.data();
  std::stable_sort(ref.begin(), ref.end(),
                   [base, kb](std::uint64_t a, std::uint64_t b) {
                     return std::memcmp(base + a * kRecordBytes,
                                        base + b * kRecordBytes, kb) < 0;
                   });

  ThreadPool pool(4);
  ExternalSorterOptions opt;
  opt.record_bytes = kRecordBytes;
  opt.key_bytes = kb;
  opt.partitions = partitions;
  // Tiny budget: forces many spills (and per-partition run files).
  opt.memory_budget_bytes = 257 * kRecordBytes;
  opt.spill_dir = ::testing::TempDir();
  ExternalSorter sorter(pool, opt);
  ASSERT_TRUE(sorter.add(std::span<const char>(data.data(), data.size()))
                  .ok());
  EXPECT_GT(sorter.runs_spilled(), partitions > 1 ? partitions : 1u);

  std::string out;
  auto result = sorter.finish([&out](std::span<const char> slab) {
    out.append(slab.data(), slab.size());
    return Status::Ok();
  });
  ASSERT_TRUE(result.ok()) << result.status().to_string();
  ASSERT_EQ(out.size(), data.size());

  // Key sequence must match the stable reference exactly.
  for (std::uint64_t i = 0; i < total; ++i) {
    ASSERT_EQ(std::memcmp(out.data() + i * kRecordBytes,
                          base + ref[i] * kRecordBytes, kb),
              0)
        << "key mismatch at record " << i << " (key_bytes=" << kb
        << " partitions=" << partitions << ")";
  }
  // Whole-record multiset must be preserved (no payload mixups).
  auto record_multiset = [](const std::string& blob) {
    std::vector<std::string> recs;
    for (std::size_t off = 0; off + kRecordBytes <= blob.size();
         off += kRecordBytes)
      recs.push_back(blob.substr(off, kRecordBytes));
    std::sort(recs.begin(), recs.end());
    return recs;
  };
  EXPECT_EQ(record_multiset(out), record_multiset(data));

  // Partitioned spills report partition geometry through MergeStats.
  if (partitions > 1) {
    EXPECT_EQ(result->partitions, partitions);
    EXPECT_GE(result->partition_max_items, result->partition_min_items);
    // Skew is max/mean, so it is at least 1 whenever anything merged and
    // bounded by P (one partition holding everything).
    EXPECT_GE(result->partition_skew(), 1.0);
    EXPECT_LE(result->partition_skew(), double(partitions));
  } else {
    EXPECT_EQ(result->partition_skew(), 1.0);
  }
}

INSTANTIATE_TEST_SUITE_P(
    KeyWidthsAndPartitions, ExternalDifferential,
    ::testing::Values(ExternalCase{7, 1}, ExternalCase{8, 1},
                      ExternalCase{9, 1}, ExternalCase{7, 4},
                      ExternalCase{8, 4}, ExternalCase{9, 5}),
    [](const ::testing::TestParamInfo<ExternalCase>& info) {
      return "kb" + std::to_string(info.param.key_bytes) + "_p" +
             std::to_string(info.param.partitions);
    });

}  // namespace
}  // namespace supmr::merge
