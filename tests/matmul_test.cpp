// Tests for the matrix-multiply application.
#include <gtest/gtest.h>

#include <cmath>

#include "apps/matrix_multiply.hpp"
#include "common/rng.hpp"
#include "core/job.hpp"
#include "ingest/record_format.hpp"
#include "ingest/source.hpp"
#include "storage/mem_device.hpp"

namespace supmr::apps {
namespace {

std::vector<double> random_matrix(std::size_t n, std::uint64_t seed) {
  Xoshiro256 rng(seed);
  std::vector<double> m(n * n);
  for (auto& x : m) x = rng.uniform_double() * 2.0 - 1.0;
  return m;
}

std::vector<double> naive_matmul(const std::vector<double>& a,
                                 const std::vector<double>& b,
                                 std::size_t n) {
  std::vector<double> c(n * n, 0.0);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t k = 0; k < n; ++k)
      for (std::size_t j = 0; j < n; ++j)
        c[i * n + j] += a[i * n + k] * b[k * n + j];
  return c;
}

core::JobConfig small_config() {
  core::JobConfig cfg;
  cfg.num_map_threads = 4;
  cfg.num_reduce_threads = 2;
  return cfg;
}

void expect_matches_reference(const MatrixMultiplyApp& app,
                              const std::vector<double>& ref,
                              std::size_t n) {
  ASSERT_EQ(app.columns(), n);
  for (std::size_t j = 0; j < n; ++j) {
    const double* col = app.column(j);
    for (std::size_t i = 0; i < n; ++i) {
      ASSERT_NEAR(col[i], ref[i * n + j], 1e-9)
          << "C[" << i << "," << j << "]";
    }
  }
}

TEST(MatrixMultiply, MatchesNaiveReference) {
  constexpr std::size_t n = 24;
  const auto a = random_matrix(n, 1);
  const auto b = random_matrix(n, 2);
  const auto ref = naive_matmul(a, b, n);

  MatrixMultiplyApp app(a, n);
  auto dev = std::make_shared<storage::MemDevice>(
      MatrixMultiplyApp::columns_to_records(b, n), "B");
  ingest::SingleDeviceSource src(
      dev, std::make_shared<ingest::FixedFormat>(n * sizeof(double)), 0);
  core::MapReduceJob job(app, src, small_config());
  ASSERT_TRUE(job.run(core::ExecMode::kOriginal).ok());
  expect_matches_reference(app, ref, n);
}

TEST(MatrixMultiply, ChunkedEqualsUnchunked) {
  constexpr std::size_t n = 32;
  const auto a = random_matrix(n, 3);
  const auto b = random_matrix(n, 4);
  const auto ref = naive_matmul(a, b, n);
  const std::string records = MatrixMultiplyApp::columns_to_records(b, n);

  MatrixMultiplyApp app(a, n);
  // Chunk = 5 columns per round (record-aligned via FixedFormat).
  ingest::SingleDeviceSource src(
      std::make_shared<storage::MemDevice>(records, "B"),
      std::make_shared<ingest::FixedFormat>(n * sizeof(double)),
      5 * n * sizeof(double));
  core::MapReduceJob job(app, src, small_config());
  auto result = job.run(core::ExecMode::kIngestMR);
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result->chunks, 4u);
  expect_matches_reference(app, ref, n);
}

TEST(MatrixMultiply, IdentityPreservesB) {
  constexpr std::size_t n = 8;
  std::vector<double> identity(n * n, 0.0);
  for (std::size_t i = 0; i < n; ++i) identity[i * n + i] = 1.0;
  const auto b = random_matrix(n, 5);
  MatrixMultiplyApp app(identity, n);
  ingest::SingleDeviceSource src(
      std::make_shared<storage::MemDevice>(
          MatrixMultiplyApp::columns_to_records(b, n), "B"),
      std::make_shared<ingest::FixedFormat>(n * sizeof(double)), 0);
  core::MapReduceJob job(app, src, small_config());
  ASSERT_TRUE(job.run(core::ExecMode::kOriginal).ok());
  expect_matches_reference(app, b, n);
}

TEST(MatrixMultiply, FrobeniusNormComputed) {
  constexpr std::size_t n = 8;
  std::vector<double> two(n * n, 0.0);
  for (std::size_t i = 0; i < n; ++i) two[i * n + i] = 2.0;
  std::vector<double> ones(n * n, 1.0);
  MatrixMultiplyApp app(two, n);
  ingest::SingleDeviceSource src(
      std::make_shared<storage::MemDevice>(
          MatrixMultiplyApp::columns_to_records(ones, n), "B"),
      std::make_shared<ingest::FixedFormat>(n * sizeof(double)), 0);
  core::MapReduceJob job(app, src, small_config());
  ASSERT_TRUE(job.run(core::ExecMode::kOriginal).ok());
  // C = 2*ones: frobenius = sqrt(n*n*4).
  EXPECT_NEAR(app.frobenius_norm(), std::sqrt(double(n * n) * 4.0), 1e-9);
}

TEST(MatrixMultiply, RejectsTornColumns) {
  constexpr std::size_t n = 4;
  MatrixMultiplyApp app(random_matrix(n, 6), n);
  // 3.5 columns worth of bytes.
  ingest::SingleDeviceSource src(
      std::make_shared<storage::MemDevice>(std::string(n * 8 * 3 + 16, 'x'),
                                           "bad"),
      std::make_shared<ingest::FixedFormat>(1), 0);
  core::MapReduceJob job(app, src, small_config());
  EXPECT_FALSE(job.run(core::ExecMode::kOriginal).ok());
}

}  // namespace
}  // namespace supmr::apps
