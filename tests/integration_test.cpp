// Cross-substrate integration tests: full jobs through stacked storage
// (RAID-0 over throttled members, HDFS-sim), hybrid chunking into the
// runtime, fault injection through complete jobs, and conservation
// invariants across every execution mode.
#include <gtest/gtest.h>

#include <cstring>

#include "apps/grep.hpp"
#include "apps/tera_sort.hpp"
#include "apps/word_count.hpp"
#include "core/job.hpp"
#include "ingest/adaptive.hpp"
#include "ingest/hybrid_source.hpp"
#include "ingest/record_format.hpp"
#include "ingest/source.hpp"
#include "storage/fault_device.hpp"
#include "storage/hdfs_sim.hpp"
#include "storage/mem_device.hpp"
#include "storage/raid0_device.hpp"
#include "storage/rate_limiter.hpp"
#include "storage/throttled_device.hpp"
#include "wload/teragen.hpp"
#include "wload/text_corpus.hpp"

namespace supmr {
namespace {

using ingest::CrlfFormat;
using ingest::LineFormat;
using ingest::SingleDeviceSource;
using storage::MemDevice;

core::JobConfig small_config() {
  core::JobConfig cfg;
  cfg.num_map_threads = 4;
  cfg.num_reduce_threads = 2;
  return cfg;
}

// Builds a RAID-0 of `members` throttled in-memory stripes of `flat`.
std::shared_ptr<const storage::Device> make_raid(const std::string& flat,
                                                 std::size_t members,
                                                 std::uint64_t stripe,
                                                 double per_member_bps) {
  std::vector<std::string> member_data(members);
  for (std::size_t i = 0; i < flat.size(); ++i)
    member_data[(i / stripe) % members].push_back(flat[i]);
  std::vector<std::shared_ptr<const storage::Device>> devices;
  for (auto& md : member_data) {
    auto base = std::make_shared<MemDevice>(std::move(md), "member");
    auto limiter = std::make_shared<storage::RateLimiter>(per_member_bps);
    devices.push_back(
        std::make_shared<storage::ThrottledDevice>(base, limiter));
  }
  return std::make_shared<storage::Raid0Device>(devices, stripe);
}

TEST(Integration, TeraSortOverThrottledRaid0) {
  wload::TeraGenConfig cfg;
  cfg.num_records = 30000;  // 3 MB; stripe rows: 3 x 10 KB = 300 records
  const std::string flat = wload::teragen_to_string(cfg);
  auto raid = make_raid(flat, 3, 10000, 40.0e6);
  ASSERT_EQ(raid->size(), flat.size());

  apps::TeraSortApp app;
  SingleDeviceSource src(raid, std::make_shared<CrlfFormat>(), 500000);
  core::MapReduceJob job(app, src, small_config());
  auto result = job.run(core::ExecMode::kIngestMR);
  ASSERT_TRUE(result.ok()) << result.status().to_string();
  EXPECT_EQ(result->result_count, cfg.num_records);
  EXPECT_EQ(app.malformed_records(), 0u);
  // Sorted and complete.
  const auto& sorted = app.sorted_data();
  ASSERT_EQ(sorted.size(), flat.size());
  for (std::uint64_t r = 1; r < cfg.num_records; ++r) {
    ASSERT_LE(std::memcmp(sorted.data() + (r - 1) * 100,
                          sorted.data() + r * 100, 10),
              0);
  }
}

TEST(Integration, WordCountFromHdfsSimMatchesLocal) {
  wload::TextCorpusConfig tc;
  tc.total_bytes = 96 * 1024;
  const std::string corpus = wload::generate_text(tc);

  storage::HdfsConfig hc;
  hc.num_nodes = 4;
  hc.block_bytes = 8 * 1024;
  hc.link_bps = 500.0e6;
  hc.per_node_bps = 500.0e6;
  storage::HdfsSimStore store(hc);
  store.put("/corpus", corpus);
  auto remote = store.open("/corpus");
  ASSERT_TRUE(remote.ok());

  apps::WordCountApp remote_app, local_app;
  std::shared_ptr<const storage::Device> remote_dev = std::move(*remote);
  SingleDeviceSource remote_src(remote_dev, std::make_shared<LineFormat>(),
                                16 * 1024);
  core::MapReduceJob remote_job(remote_app, remote_src, small_config());
  ASSERT_TRUE(remote_job.run(core::ExecMode::kIngestMR).ok());

  SingleDeviceSource local_src(std::make_shared<MemDevice>(corpus, "l"),
                               std::make_shared<LineFormat>(), 16 * 1024);
  core::MapReduceJob local_job(local_app, local_src, small_config());
  ASSERT_TRUE(local_job.run(core::ExecMode::kIngestMR).ok());

  EXPECT_EQ(remote_app.results(), local_app.results());
}

TEST(Integration, HybridChunksFromHdfsFiles) {
  // Many small files on the remote store, hybrid-chunked into the runtime.
  storage::HdfsConfig hc;
  hc.num_nodes = 3;
  hc.block_bytes = 4096;
  hc.link_bps = 1e9;
  hc.per_node_bps = 1e9;
  storage::HdfsSimStore store(hc);
  wload::TextCorpusConfig tc;
  tc.total_bytes = 4 * 1024;
  std::vector<std::shared_ptr<const storage::Device>> files;
  for (int i = 0; i < 10; ++i) {
    tc.seed = 100 + i;
    const std::string name = "/d/part-" + std::to_string(i);
    store.put(name, wload::generate_text(tc));
    auto dev = store.open(name);
    ASSERT_TRUE(dev.ok());
    files.push_back(std::shared_ptr<const storage::Device>(std::move(*dev)));
  }
  ingest::HybridFileSource src(files, std::make_shared<LineFormat>(),
                               12 * 1024);
  apps::WordCountApp app;
  core::MapReduceJob job(app, src, small_config());
  auto result = job.run(core::ExecMode::kIngestMR);
  ASSERT_TRUE(result.ok()) << result.status().to_string();
  EXPECT_GT(result->chunks, 1u);
  EXPECT_GT(app.results().size(), 100u);
}

TEST(Integration, FaultMidJobSurfacesCleanly) {
  // Inject an I/O error into the middle of a chunked job: the job must
  // return the error (not hang, not crash) and the pipeline must shut down.
  wload::TextCorpusConfig tc;
  tc.total_bytes = 64 * 1024;
  MemDevice base(wload::generate_text(tc));
  auto plan = fault::FaultPlan::parse("permanent=40960-41984");
  ASSERT_TRUE(plan.ok());
  storage::FaultDevice fault(&base, *plan);
  auto dev = std::shared_ptr<const storage::Device>(
      &fault, [](const storage::Device*) {});

  apps::WordCountApp app;
  SingleDeviceSource src(dev, std::make_shared<LineFormat>(), 8 * 1024);
  core::MapReduceJob job(app, src, small_config());
  auto result = job.run(core::ExecMode::kIngestMR);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kIoError);
}

TEST(Integration, AllModesAgreeOnGrep) {
  // original vs chunked vs adaptive over the same throttle-free input.
  wload::TextCorpusConfig tc;
  tc.total_bytes = 48 * 1024;
  const std::string text = wload::generate_text(tc);
  const std::vector<std::string> patterns = {"ab", "the", "zz"};

  auto run_mode = [&](int mode) {
    apps::GrepApp app(patterns);
    auto dev = std::make_shared<MemDevice>(text, "g");
    SingleDeviceSource src(dev, std::make_shared<LineFormat>(),
                           mode == 0 ? 0 : 6000);
    core::MapReduceJob job(app, src, small_config());
    if (mode == 0) {
      EXPECT_TRUE(job.run(core::ExecMode::kOriginal).ok());
    } else if (mode == 1) {
      EXPECT_TRUE(job.run(core::ExecMode::kIngestMR).ok());
    } else {
      LineFormat format;
      ingest::RateMatchingController ctl;
      job.set_adaptive(*dev, format, ctl);
      EXPECT_TRUE(job.run(core::ExecMode::kAdaptive).ok());
    }
    return app.results();
  };
  const auto original = run_mode(0);
  EXPECT_EQ(run_mode(1), original);
  EXPECT_EQ(run_mode(2), original);
}

TEST(Integration, PipelineStatsConservation) {
  // Bytes through the pipeline == source size; per-chunk stats sum to the
  // aggregate; combined phase bounded by total.
  wload::TextCorpusConfig tc;
  tc.total_bytes = 100 * 1024;
  const std::string text = wload::generate_text(tc);
  apps::WordCountApp app;
  SingleDeviceSource src(std::make_shared<MemDevice>(text, "c"),
                         std::make_shared<LineFormat>(), 9000);
  core::MapReduceJob job(app, src, small_config());
  auto result = job.run(core::ExecMode::kIngestMR);
  ASSERT_TRUE(result.ok());
  const auto& p = result->pipeline;
  EXPECT_EQ(p.total_bytes, text.size());
  std::uint64_t chunk_bytes = 0;
  double ingest_sum = 0.0, process_sum = 0.0;
  for (const auto& c : p.chunks) {
    chunk_bytes += c.bytes;
    ingest_sum += c.ingest_s;
    process_sum += c.process_s;
  }
  EXPECT_EQ(chunk_bytes, text.size());
  EXPECT_NEAR(ingest_sum, p.ingest_busy_s, 1e-9);
  EXPECT_NEAR(process_sum, p.process_busy_s, 1e-9);
  EXPECT_LE(result->phases.readmap_s, result->phases.total_s + 1e-9);
  // Double-buffering bound: ingest+process overlap, so the pipeline wall
  // time never exceeds the sum of both sides (+ scheduling noise).
  EXPECT_LE(p.total_s, p.ingest_busy_s + p.process_busy_s +
                           p.consumer_wait_s + 0.5);
}

TEST(Integration, BackToBackJobsOnOneSource) {
  // A source must be reusable across jobs (planning is deterministic).
  wload::TeraGenConfig cfg;
  cfg.num_records = 2000;
  auto dev = std::make_shared<MemDevice>(wload::teragen_to_string(cfg), "t");
  SingleDeviceSource src(dev, std::make_shared<CrlfFormat>(), 37300);
  std::uint64_t checksum = 0;
  for (int run = 0; run < 2; ++run) {
    apps::TeraSortApp app;
    core::MapReduceJob job(app, src, small_config());
    auto result = job.run(core::ExecMode::kIngestMR);
    ASSERT_TRUE(result.ok());
    if (run == 0) {
      checksum = app.key_checksum();
    } else {
      EXPECT_EQ(app.key_checksum(), checksum);
    }
  }
}

}  // namespace
}  // namespace supmr
