// Empty-input / zero-chunk regression suite.
//
// A 0-byte source is the degenerate plan every mode must survive: no chunk
// is ever produced, so the read/map/reduce/merge phases all run over
// nothing. The contract pinned here, for every ExecMode, in normal AND
// degrade mode:
//   * run() succeeds (empty input is not an error);
//   * num_chunks == 0 and chunks_skipped == 0 (nothing read, nothing
//     "recovered" — degrade mode must not count phantom chunks);
//   * the report is one valid JSON document (tests/json_validator.hpp);
//   * the merge produces a sorted empty output (TeraSort's sorted_data()
//     is empty, word count's results() is empty) in every merge mode,
//     including the partitioned shuffle.
#include <gtest/gtest.h>

#include <cstdio>
#include <memory>
#include <string>

#include "apps/tera_sort.hpp"
#include "apps/word_count.hpp"
#include "cluster/cluster_job.hpp"
#include "core/job.hpp"
#include "core/report.hpp"
#include "ingest/record_format.hpp"
#include "ingest/source.hpp"
#include "json_validator.hpp"
#include "storage/mem_device.hpp"
#include "storage/mmap_device.hpp"

namespace supmr {
namespace {

using core::ExecMode;
using core::JobConfig;
using core::MapReduceJob;
using core::MergeMode;

constexpr ExecMode kModes[] = {ExecMode::kOriginal, ExecMode::kIngestMR,
                               ExecMode::kAdaptive};
constexpr MergeMode kMergeModes[] = {MergeMode::kPairwise, MergeMode::kPWay,
                                     MergeMode::kPartitioned};

JobConfig empty_config(MergeMode merge, bool degrade) {
  JobConfig jc;
  jc.num_map_threads = 2;
  jc.num_reduce_threads = 2;
  jc.merge_mode = merge;
  if (merge == MergeMode::kPartitioned) jc.num_merge_partitions = 3;
  jc.recovery.degrade = degrade;
  return jc;
}

void check_empty_result(const core::JobResult& result, const char* what) {
  SCOPED_TRACE(what);
  EXPECT_EQ(result.phases.num_chunks, 0u);
  EXPECT_EQ(result.chunks_skipped, 0u);
  EXPECT_FALSE(result.degraded());
  EXPECT_EQ(result.result_count, 0u);
  const std::string json = core::job_result_to_json(result);
  EXPECT_EQ(test::validate_json(json), "") << json;
}

TEST(EmptyInput, WordCountAllModesAllMergesNormalAndDegrade) {
  for (ExecMode mode : kModes) {
    for (MergeMode merge : kMergeModes) {
      for (bool degrade : {false, true}) {
        for (core::IoMode io : {core::IoMode::kRead, core::IoMode::kMmap}) {
          apps::WordCountApp app;
          ingest::SingleDeviceSource src(
              std::make_shared<storage::MemDevice>("", "empty"),
              std::make_shared<ingest::LineFormat>(), /*chunk_bytes=*/6, io);
          MapReduceJob job(app, src, empty_config(merge, degrade));
          auto result = job.run(mode);
          ASSERT_TRUE(result.ok())
              << core::exec_mode_name(mode) << " degrade=" << degrade << " io="
              << core::io_mode_name(io) << ": " << result.status().to_string();
          const std::string label = std::string(core::exec_mode_name(mode)) +
                                    (degrade ? "/degrade" : "/normal") + "/" +
                                    std::string(core::io_mode_name(io));
          check_empty_result(*result, label.c_str());
          EXPECT_TRUE(app.results().empty());
        }
      }
    }
  }
}

// mmap(len=0) is EINVAL, so MmapDevice must special-case the empty file: a
// null mapping with size 0, read_at returning 0 bytes, view_at lending the
// empty span — and a whole job over it must behave exactly like the other
// empty-source cells above.
TEST(EmptyInput, MmapDeviceEmptyFile) {
  const std::string path =
      ::testing::TempDir() + "/supmr_empty_mmap_input.txt";
  { std::FILE* f = std::fopen(path.c_str(), "wb"); ASSERT_NE(f, nullptr);
    std::fclose(f); }

  auto dev = storage::MmapDevice::open(path);
  ASSERT_TRUE(dev.ok()) << dev.status().to_string();
  EXPECT_EQ((*dev)->size(), 0u);
  EXPECT_TRUE((*dev)->supports_views());
  EXPECT_TRUE((*dev)->view_at(0, 0).empty());
  char buf[4];
  auto n = (*dev)->read_at(0, std::span<char>(buf, sizeof(buf)));
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(*n, 0u);

  apps::WordCountApp app;
  std::shared_ptr<const storage::Device> device = std::move(*dev);
  ingest::SingleDeviceSource src(device,
                                 std::make_shared<ingest::LineFormat>(),
                                 /*chunk_bytes=*/6, core::IoMode::kMmap);
  MapReduceJob job(app, src, empty_config(MergeMode::kPWay, false));
  auto result = job.run(ExecMode::kIngestMR);
  ASSERT_TRUE(result.ok()) << result.status().to_string();
  check_empty_result(*result, "mmap-empty-file");
  EXPECT_TRUE(app.results().empty());
  std::remove(path.c_str());
}

// Sorted-empty merge through the partitioned shuffle path specifically:
// the PartitionedContainer never sees a record, no splitters are ever
// sampled, and the per-partition merge must hand back an empty (trivially
// sorted) output without touching a stripe.
TEST(EmptyInput, TeraSortPartitionedShuffleSortedEmpty) {
  for (ExecMode mode : kModes) {
    for (bool degrade : {false, true}) {
      apps::TeraSortOptions opt;
      opt.key_bytes = 10;
      opt.record_bytes = 100;
      opt.partitions = 4;
      apps::TeraSortApp app(opt);
      ingest::SingleDeviceSource src(
          std::make_shared<storage::MemDevice>("", "empty"),
          std::make_shared<ingest::FixedFormat>(opt.record_bytes),
          /*chunk_bytes=*/10 * opt.record_bytes);
      MapReduceJob job(app, src,
                       empty_config(MergeMode::kPartitioned, degrade));
      auto result = job.run(mode);
      ASSERT_TRUE(result.ok())
          << core::exec_mode_name(mode) << " degrade=" << degrade << ": "
          << result.status().to_string();
      check_empty_result(*result, core::exec_mode_name(mode).data());
      EXPECT_TRUE(app.sorted_data().empty());
      EXPECT_EQ(app.key_checksum(), 0u);
    }
  }
}

// Sharded shuffle over nothing: every node's slice is empty, so no map
// output exists, nothing is routed (locally or on the wire), no owner merge
// runs, and the reassembled cluster output is the empty string — for every
// node count, including N larger than the (zero) record count.
TEST(EmptyInput, ClusterZeroByteInputEveryNodeCount) {
  for (std::size_t nodes : {std::size_t{1}, std::size_t{2}, std::size_t{4}}) {
    SCOPED_TRACE(nodes);
    cluster::ClusterJob job;
    job.input = "";
    job.format = std::make_shared<ingest::LineFormat>();
    job.make_app = [] {
      return std::unique_ptr<core::Application>(new apps::WordCountApp());
    };
    job.config = empty_config(MergeMode::kPWay, /*degrade=*/false);
    job.config.num_nodes = nodes;
    job.chunk_bytes = 6;
    auto result = cluster::run_cluster(job);
    ASSERT_TRUE(result.ok()) << result.status().to_string();
    EXPECT_TRUE(result->output.empty());
    EXPECT_EQ(result->map_output_bytes, 0u);
    EXPECT_EQ(result->shuffle_bytes, 0u);
    EXPECT_EQ(result->local_bytes, 0u);
    ASSERT_EQ(result->nodes.size(), nodes);
    for (const cluster::NodeStats& ns : result->nodes) {
      EXPECT_EQ(ns.input_bytes, 0u);
      EXPECT_EQ(ns.map_output_bytes, 0u);
      EXPECT_EQ(ns.sent_bytes, 0u);
      EXPECT_EQ(ns.recv_bytes, 0u);
      EXPECT_EQ(ns.local_bytes, 0u);
      EXPECT_EQ(ns.spill_runs, 0u);
      check_empty_result(ns.job, "cluster-node");
    }
  }
}

// Fixed-record sharding over an empty corpus: zero records slice to zero
// extents everywhere, and the owner-side fixed-record merge (TeraSort path)
// must hand back empty bytes without sampling a splitter or spilling a run.
TEST(EmptyInput, ClusterZeroByteFixedRecords) {
  cluster::ClusterJob job;
  job.input = "";
  job.format = std::make_shared<ingest::FixedFormat>(100);
  job.make_app = [] {
    apps::TeraSortOptions opt;
    opt.key_bytes = 10;
    opt.record_bytes = 100;
    return std::unique_ptr<core::Application>(new apps::TeraSortApp(opt));
  };
  job.config = empty_config(MergeMode::kPWay, /*degrade=*/false);
  job.config.num_nodes = 3;
  job.chunk_bytes = 1000;
  job.record_bytes = 100;
  auto result = cluster::run_cluster(job);
  ASSERT_TRUE(result.ok()) << result.status().to_string();
  EXPECT_TRUE(result->output.empty());
  EXPECT_EQ(result->shuffle_bytes + result->local_bytes, 0u);
  EXPECT_EQ(result->shard, core::ShardKind::kFixedRecords);
}

// The flat (non-partitioned) TeraSort container through the kPartitioned
// merge fallback (partitioned_sort over zero records) stays empty too.
TEST(EmptyInput, TeraSortFlatContainerPartitionedMergeFallback) {
  apps::TeraSortApp app;  // partitions = 0: flat ArrayContainer
  ingest::SingleDeviceSource src(
      std::make_shared<storage::MemDevice>("", "empty"),
      std::make_shared<ingest::FixedFormat>(100), /*chunk_bytes=*/0);
  MapReduceJob job(app, src, empty_config(MergeMode::kPartitioned, false));
  auto result = job.run(ExecMode::kOriginal);
  ASSERT_TRUE(result.ok()) << result.status().to_string();
  check_empty_result(*result, "flat/kPartitioned");
  EXPECT_TRUE(app.sorted_data().empty());
}

}  // namespace
}  // namespace supmr
