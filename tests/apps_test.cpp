// Application-level tests: word count, TeraSort, grep, inverted index —
// each validated against an independent reference computation.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <map>

#include "apps/grep.hpp"
#include "apps/inverted_index.hpp"
#include "apps/tera_sort.hpp"
#include "apps/tokenize.hpp"
#include "apps/word_count.hpp"
#include "core/job.hpp"
#include "storage/mem_device.hpp"
#include "wload/teragen.hpp"
#include "wload/text_corpus.hpp"

namespace supmr::apps {
namespace {

using core::JobConfig;
using core::MapReduceJob;
using core::MergeMode;
using ingest::LineFormat;
using ingest::MultiFileSource;
using ingest::SingleDeviceSource;
using storage::MemDevice;

std::shared_ptr<const storage::Device> mem(std::string s,
                                           std::string name = "mem") {
  return std::make_shared<MemDevice>(std::move(s), std::move(name));
}

JobConfig small_config() {
  JobConfig cfg;
  cfg.num_map_threads = 4;
  cfg.num_reduce_threads = 2;
  return cfg;
}

// Reference word counter using the same tokenizer.
std::map<std::string, std::uint64_t> reference_counts(
    const std::string& text) {
  std::map<std::string, std::uint64_t> counts;
  tokenize_words(std::span<const char>(text.data(), text.size()),
                 [&](std::string_view w) { ++counts[std::string(w)]; });
  return counts;
}

// ---------------------------------------------------------------- tokenize

TEST(Tokenize, LowercasesAndSplitsOnNonAlnum) {
  std::vector<std::string> words;
  const std::string text = "Hello, World! foo_bar x123\ntail";
  tokenize_words(std::span<const char>(text.data(), text.size()),
                 [&](std::string_view w) { words.emplace_back(w); });
  EXPECT_EQ(words, (std::vector<std::string>{"hello", "world", "foo", "bar",
                                             "x123", "tail"}));
}

TEST(Tokenize, EmptyAndAllDelims) {
  int count = 0;
  const std::string text = " .,;\n\t ";
  tokenize_words(std::span<const char>(text.data(), text.size()),
                 [&](std::string_view) { ++count; });
  EXPECT_EQ(count, 0);
}

TEST(Tokenize, TruncatesPathologicalWords) {
  std::string text(10 * kMaxWord, 'a');
  std::vector<std::string> words;
  tokenize_words(std::span<const char>(text.data(), text.size()),
                 [&](std::string_view w) { words.emplace_back(w); });
  ASSERT_EQ(words.size(), 1u);
  EXPECT_EQ(words[0].size(), kMaxWord);
}

TEST(SplitText, NeverSplitsMidWord) {
  const std::string text = "alpha beta gamma delta epsilon zeta";
  auto splits = split_text(std::span<const char>(text.data(), text.size()), 4);
  ASSERT_GE(splits.size(), 2u);
  std::size_t covered = 0;
  for (const auto& s : splits) {
    covered += s.size();
    if (s.data() + s.size() < text.data() + text.size()) {
      // Split boundary must fall on a non-word char.
      EXPECT_FALSE(is_word_char(s.data()[s.size()]))
          << "split mid-word";
    }
  }
  EXPECT_EQ(covered, text.size());
}

// -------------------------------------------------------------- word count

TEST(WordCount, MatchesReferenceOriginalRuntime) {
  wload::TextCorpusConfig cfg;
  cfg.total_bytes = 64 * 1024;
  const std::string text = wload::generate_text(cfg);
  const auto expected = reference_counts(text);

  WordCountApp app;
  SingleDeviceSource src(mem(text), std::make_shared<LineFormat>(), 0);
  MapReduceJob job(app, src, small_config());
  auto result = job.run(core::ExecMode::kOriginal);
  ASSERT_TRUE(result.ok()) << result.status().to_string();

  ASSERT_EQ(app.results().size(), expected.size());
  // Results are sorted by word; expected (std::map) iterates in the same
  // order, so the full sequence must match exactly.
  std::size_t i = 0;
  for (const auto& [word, count] : expected) {
    EXPECT_EQ(app.results()[i].first, word);
    EXPECT_EQ(app.results()[i].second, count);
    ++i;
  }
  EXPECT_EQ(result->result_count, expected.size());
}

TEST(WordCount, ChunkedEqualsUnchunked) {
  wload::TextCorpusConfig cfg;
  cfg.total_bytes = 128 * 1024;
  const std::string text = wload::generate_text(cfg);

  WordCountApp unchunked;
  SingleDeviceSource src0(mem(text), std::make_shared<LineFormat>(), 0);
  MapReduceJob job0(unchunked, src0, small_config());
  ASSERT_TRUE(job0.run(core::ExecMode::kOriginal).ok());

  WordCountApp chunked;
  SingleDeviceSource src1(mem(text), std::make_shared<LineFormat>(), 9973);
  MapReduceJob job1(chunked, src1, small_config());
  auto result = job1.run(core::ExecMode::kIngestMR);
  ASSERT_TRUE(result.ok()) << result.status().to_string();
  EXPECT_GT(result->chunks, 2u);
  EXPECT_EQ(result->map_rounds, result->chunks);

  EXPECT_EQ(chunked.results(), unchunked.results());
  EXPECT_EQ(chunked.words_mapped(), unchunked.words_mapped());
}

TEST(WordCount, PairwiseAndPwayMergeAgree) {
  wload::TextCorpusConfig cfg;
  cfg.total_bytes = 32 * 1024;
  const std::string text = wload::generate_text(cfg);

  JobConfig cfg_pway = small_config();
  cfg_pway.merge_mode = MergeMode::kPWay;
  JobConfig cfg_pair = small_config();
  cfg_pair.merge_mode = MergeMode::kPairwise;

  WordCountApp a, b;
  SingleDeviceSource src_a(mem(text), std::make_shared<LineFormat>(), 0);
  SingleDeviceSource src_b(mem(text), std::make_shared<LineFormat>(), 0);
  MapReduceJob ja(a, src_a, cfg_pway), jb(b, src_b, cfg_pair);
  ASSERT_TRUE(ja.run(core::ExecMode::kOriginal).ok());
  ASSERT_TRUE(jb.run(core::ExecMode::kOriginal).ok());
  EXPECT_EQ(a.results(), b.results());
}

TEST(WordCount, EmptyInput) {
  WordCountApp app;
  SingleDeviceSource src(mem(""), std::make_shared<LineFormat>(), 0);
  MapReduceJob job(app, src, small_config());
  auto result = job.run(core::ExecMode::kOriginal);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(app.results().empty());
}

TEST(WordCount, SingleThreadConfig) {
  JobConfig cfg;
  cfg.num_map_threads = 1;
  cfg.num_reduce_threads = 1;
  WordCountApp app;
  SingleDeviceSource src(mem("a b a\nc a b\n"),
                         std::make_shared<LineFormat>(), 4);
  MapReduceJob job(app, src, cfg);
  ASSERT_TRUE(job.run(core::ExecMode::kIngestMR).ok());
  ASSERT_EQ(app.results().size(), 3u);
  EXPECT_EQ(app.results()[0], (WordCountApp::Result{"a", 3}));
  EXPECT_EQ(app.results()[1], (WordCountApp::Result{"b", 2}));
  EXPECT_EQ(app.results()[2], (WordCountApp::Result{"c", 1}));
}

// ---------------------------------------------------------------- TeraSort

wload::TeraGenConfig tiny_teragen(std::uint64_t records, std::uint64_t seed) {
  wload::TeraGenConfig cfg;
  cfg.num_records = records;
  cfg.seed = seed;
  return cfg;
}

void expect_terasorted(const TeraSortApp& app, const std::string& input,
                       const wload::TeraGenConfig& cfg) {
  const auto& sorted = app.sorted_data();
  ASSERT_EQ(sorted.size(), input.size());
  // Sorted by key prefix.
  for (std::uint64_t r = 1; r < cfg.num_records; ++r) {
    EXPECT_LE(std::memcmp(sorted.data() + (r - 1) * cfg.record_bytes,
                          sorted.data() + r * cfg.record_bytes,
                          cfg.key_bytes),
              0);
  }
  // Same multiset of records: compare sorted lists of whole records.
  std::vector<std::string_view> in_recs, out_recs;
  for (std::uint64_t r = 0; r < cfg.num_records; ++r) {
    in_recs.emplace_back(input.data() + r * cfg.record_bytes,
                         cfg.record_bytes);
    out_recs.emplace_back(sorted.data() + r * cfg.record_bytes,
                          cfg.record_bytes);
  }
  std::sort(in_recs.begin(), in_recs.end());
  std::sort(out_recs.begin(), out_recs.end());
  EXPECT_EQ(in_recs, out_recs);
}

TEST(TeraSort, SortsOriginalRuntime) {
  const auto cfg = tiny_teragen(3000, 1);
  const std::string input = wload::teragen_to_string(cfg);
  TeraSortApp app;
  SingleDeviceSource src(mem(input),
                         std::make_shared<ingest::CrlfFormat>(), 0);
  MapReduceJob job(app, src, small_config());
  auto result = job.run(core::ExecMode::kOriginal);
  ASSERT_TRUE(result.ok()) << result.status().to_string();
  EXPECT_EQ(result->result_count, cfg.num_records);
  EXPECT_EQ(app.malformed_records(), 0u);
  expect_terasorted(app, input, cfg);
}

TEST(TeraSort, ChunkedEqualsUnchunked) {
  const auto cfg = tiny_teragen(5000, 2);
  const std::string input = wload::teragen_to_string(cfg);

  TeraSortApp a, b;
  SingleDeviceSource src_a(mem(input),
                           std::make_shared<ingest::CrlfFormat>(), 0);
  SingleDeviceSource src_b(mem(input),
                           std::make_shared<ingest::CrlfFormat>(), 37700);
  MapReduceJob ja(a, src_a, small_config()), jb(b, src_b, small_config());
  ASSERT_TRUE(ja.run(core::ExecMode::kOriginal).ok());
  auto rb = jb.run(core::ExecMode::kIngestMR);
  ASSERT_TRUE(rb.ok());
  EXPECT_GT(rb->chunks, 5u);
  EXPECT_EQ(a.sorted_data(), b.sorted_data());
  EXPECT_EQ(a.key_checksum(), b.key_checksum());
}

TEST(TeraSort, PairwiseMergeModeSortsToo) {
  const auto cfg = tiny_teragen(2000, 3);
  const std::string input = wload::teragen_to_string(cfg);
  JobConfig jc = small_config();
  jc.merge_mode = MergeMode::kPairwise;
  TeraSortApp app;
  SingleDeviceSource src(mem(input),
                         std::make_shared<ingest::CrlfFormat>(), 0);
  MapReduceJob job(app, src, jc);
  auto result = job.run(core::ExecMode::kOriginal);
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result->merge_stats.num_rounds(), 1u);  // iterative rounds
  expect_terasorted(app, input, cfg);
}

TEST(TeraSort, PwayMergeSingleRound) {
  const auto cfg = tiny_teragen(2000, 4);
  const std::string input = wload::teragen_to_string(cfg);
  TeraSortApp app;
  SingleDeviceSource src(mem(input),
                         std::make_shared<ingest::CrlfFormat>(), 0);
  MapReduceJob job(app, src, small_config());  // default kPWay
  auto result = job.run(core::ExecMode::kOriginal);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->merge_stats.num_rounds(), 1u);
}

TEST(TeraSort, RejectsTornChunk) {
  TeraSortApp app;
  // 150 bytes is not a whole number of 100-byte records.
  SingleDeviceSource src(mem(std::string(150, 'x')),
                         std::make_shared<ingest::FixedFormat>(1), 0);
  MapReduceJob job(app, src, small_config());
  auto result = job.run(core::ExecMode::kOriginal);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST(TeraSort, CountsMalformedRecords) {
  const auto cfg = tiny_teragen(100, 5);
  std::string input = wload::teragen_to_string(cfg);
  // Corrupt the terminator of record 3.
  input[3 * cfg.record_bytes + cfg.record_bytes - 1] = 'X';
  TeraSortApp app;
  SingleDeviceSource src(mem(input),
                         std::make_shared<ingest::FixedFormat>(100), 0);
  MapReduceJob job(app, src, small_config());
  ASSERT_TRUE(job.run(core::ExecMode::kOriginal).ok());
  EXPECT_EQ(app.malformed_records(), 1u);
}

// -------------------------------------------------------------------- grep

TEST(CountOccurrences, NonOverlapping) {
  EXPECT_EQ(count_occurrences("aaaa", "aa"), 2u);
  EXPECT_EQ(count_occurrences("abcabc", "abc"), 2u);
  EXPECT_EQ(count_occurrences("abc", ""), 0u);
  EXPECT_EQ(count_occurrences("ab", "abc"), 0u);
}

TEST(Grep, CountsPatternsAcrossLines) {
  const std::string text =
      "the cat sat\n"
      "on the mat\n"
      "cat and dog\n";
  GrepApp app({"cat", "the", "zebra"});
  SingleDeviceSource src(mem(text), std::make_shared<LineFormat>(), 0);
  MapReduceJob job(app, src, small_config());
  ASSERT_TRUE(job.run(core::ExecMode::kOriginal).ok());
  ASSERT_EQ(app.results().size(), 2u);  // zebra absent
  EXPECT_EQ(app.results()[0], (GrepApp::Result{"cat", 2}));
  EXPECT_EQ(app.results()[1], (GrepApp::Result{"the", 2}));
  EXPECT_EQ(app.lines_scanned(), 3u);
}

TEST(Grep, ChunkedEqualsUnchunked) {
  wload::TextCorpusConfig cfg;
  cfg.total_bytes = 64 * 1024;
  const std::string text = wload::generate_text(cfg);
  GrepApp a({"aa", "the", "qq"});
  GrepApp b({"aa", "the", "qq"});
  SingleDeviceSource src_a(mem(text), std::make_shared<LineFormat>(), 0);
  SingleDeviceSource src_b(mem(text), std::make_shared<LineFormat>(), 4096);
  MapReduceJob ja(a, src_a, small_config()), jb(b, src_b, small_config());
  ASSERT_TRUE(ja.run(core::ExecMode::kOriginal).ok());
  ASSERT_TRUE(jb.run(core::ExecMode::kIngestMR).ok());
  EXPECT_EQ(a.results(), b.results());
  EXPECT_EQ(a.lines_scanned(), b.lines_scanned());
}

// ---------------------------------------------------------- inverted index

TEST(InvertedIndex, BuildsPostings) {
  std::vector<std::shared_ptr<const storage::Device>> files = {
      mem("apple banana\n", "f0"), mem("banana cherry\n", "f1"),
      mem("apple\n", "f2")};
  InvertedIndexApp app;
  MultiFileSource src(files, 2);
  MapReduceJob job(app, src, small_config());
  auto result = job.run(core::ExecMode::kIngestMR);
  ASSERT_TRUE(result.ok()) << result.status().to_string();
  ASSERT_EQ(app.index().size(), 3u);
  EXPECT_EQ(app.index()[0].word, "apple");
  EXPECT_EQ(app.index()[0].files, (std::vector<std::uint32_t>{0, 2}));
  EXPECT_EQ(app.index()[1].word, "banana");
  EXPECT_EQ(app.index()[1].files, (std::vector<std::uint32_t>{0, 1}));
  EXPECT_EQ(app.index()[2].word, "cherry");
  EXPECT_EQ(app.index()[2].files, (std::vector<std::uint32_t>{1}));
}

TEST(InvertedIndex, RequiresFileSpans) {
  InvertedIndexApp app;
  SingleDeviceSource src(mem("words here\n"),
                         std::make_shared<LineFormat>(), 0);
  MapReduceJob job(app, src, small_config());
  auto result = job.run(core::ExecMode::kOriginal);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST(InvertedIndex, ChunkingInvariantToFilesPerChunk) {
  wload::TextCorpusConfig cfg;
  cfg.total_bytes = 2048;
  auto files = wload::generate_text_files(cfg, 12, 2048);
  std::vector<std::vector<InvertedIndexApp::Posting>> outputs;
  for (std::size_t per_chunk : {1u, 3u, 12u}) {
    InvertedIndexApp app;
    MultiFileSource src(files, per_chunk);
    MapReduceJob job(app, src, small_config());
    ASSERT_TRUE(job.run(core::ExecMode::kIngestMR).ok());
    outputs.push_back(app.index());
  }
  for (std::size_t i = 1; i < outputs.size(); ++i) {
    ASSERT_EQ(outputs[i].size(), outputs[0].size());
    for (std::size_t j = 0; j < outputs[0].size(); ++j) {
      EXPECT_EQ(outputs[i][j].word, outputs[0][j].word);
      EXPECT_EQ(outputs[i][j].files, outputs[0][j].files);
    }
  }
}

TEST(InvertedIndex, DuplicateWordsInOneFileDeduplicated) {
  std::vector<std::shared_ptr<const storage::Device>> files = {
      mem("dup dup dup\n", "f0")};
  InvertedIndexApp app;
  MultiFileSource src(files, 1);
  MapReduceJob job(app, src, small_config());
  ASSERT_TRUE(job.run(core::ExecMode::kIngestMR).ok());
  ASSERT_EQ(app.index().size(), 1u);
  EXPECT_EQ(app.index()[0].files, (std::vector<std::uint32_t>{0}));
}

}  // namespace
}  // namespace supmr::apps
