// Perfmodel tests: the paper-scale simulation must reproduce the SHAPE of
// every table and figure — who wins, by roughly what factor, where the
// crossovers fall. Tolerances are deliberately loose on absolute seconds
// (the substrate is a model, not the authors' testbed) and tight on
// orderings and ratios.
#include <gtest/gtest.h>

#include "perfmodel/experiments.hpp"

namespace supmr::perfmodel {
namespace {

// Tables are addressed by row label ("none", "1GB", "50GB", "1GB+part"), not
// position: experiments grow rows over time and positional indexing made
// these tests break for unrelated additions.
const Table2Row* find_row(const std::vector<Table2Row>& rows,
                          const std::string& label) {
  for (const auto& r : rows) {
    if (r.label == label) return &r;
  }
  return nullptr;
}

#define ASSERT_ROW(var, rows, label)                       \
  const Table2Row* var = find_row(rows, label);            \
  ASSERT_NE(var, nullptr) << "missing table row " << label

// ------------------------------------------------------------- Table II

TEST(Table2WordCount, BaselineMatchesPaperClosely) {
  // The "none" row is where the model is calibrated; it must land near the
  // paper's numbers (471.75 / 403.90 / 67.41 / 0.03 / 0.01).
  auto rows = table2_wordcount();
  ASSERT_ROW(none_row, rows, "none");
  const auto& none = none_row->result.phases;
  EXPECT_NEAR(none.total_s, 471.75, 5.0);
  EXPECT_NEAR(none.read_s, 403.90, 4.0);
  EXPECT_NEAR(none.map_s, 67.41, 2.0);
  EXPECT_LT(none.reduce_s, 1.0);
  EXPECT_LT(none.merge_s, 1.0);
}

TEST(Table2WordCount, ChunkingSpeedsUpInPaperBand) {
  auto rows = table2_wordcount();
  ASSERT_ROW(none_row, rows, "none");
  ASSERT_ROW(gb1_row, rows, "1GB");
  ASSERT_ROW(gb50_row, rows, "50GB");
  const double none = none_row->result.phases.total_s;
  const double gb1 = gb1_row->result.phases.total_s;
  const double gb50 = gb50_row->result.phases.total_s;
  // Ordering: 1GB fastest, then 50GB, then none (paper: 407 < 429 < 471).
  EXPECT_LT(gb1, gb50);
  EXPECT_LT(gb50, none);
  // Speedups: paper reports 1.16x (1GB) and 1.10x (50GB).
  EXPECT_NEAR(none / gb1, 1.16, 0.06);
  EXPECT_NEAR(none / gb50, 1.10, 0.06);
}

TEST(Table2WordCount, CombinedReadMapNearIngestTime) {
  // Word count is ingest-bound: the pipelined read+map phase collapses to
  // roughly the raw ingest time (406.14s in the paper vs 403.90s read).
  auto rows = table2_wordcount();
  ASSERT_ROW(gb1_row, rows, "1GB");
  const auto& gb1 = gb1_row->result.phases;
  ASSERT_TRUE(gb1.has_combined_readmap);
  EXPECT_NEAR(gb1.readmap_s, 406.0, 8.0);
}

TEST(Table2WordCount, RoundCountsMatchChunkPlan) {
  auto rows = table2_wordcount();
  ASSERT_ROW(none, rows, "none");
  ASSERT_ROW(gb1, rows, "1GB");
  ASSERT_ROW(gb50, rows, "50GB");
  EXPECT_EQ(none->result.map_rounds, 1u);
  EXPECT_EQ(gb1->result.map_rounds, 155u);   // 155 GB / 1 GB
  EXPECT_EQ(gb50->result.map_rounds, 4u);    // 155 GB / 50 GB (short tail)
}

TEST(Table2Sort, BaselineMatchesPaperClosely) {
  // Paper: 397.31 / 182.78 / 6.33 / 7.72 / 191.23. Rows: none (pairwise),
  // 1GB (p-way), 1GB+part (partitioned shuffle).
  auto rows = table2_sort();
  ASSERT_ROW(none_row, rows, "none");
  const auto& none = none_row->result.phases;
  EXPECT_NEAR(none.total_s, 397.31, 4.0);
  EXPECT_NEAR(none.read_s, 182.78, 2.0);
  EXPECT_NEAR(none.map_s, 6.33, 1.0);
  EXPECT_NEAR(none.reduce_s, 7.72, 1.0);
  EXPECT_NEAR(none.merge_s, 191.23, 2.0);
}

TEST(Table2Sort, SupMRSpeedupInPaperBand) {
  auto rows = table2_sort();
  ASSERT_ROW(none_row, rows, "none");
  ASSERT_ROW(gb1_row, rows, "1GB");
  const auto& none = none_row->result.phases;
  const auto& gb1 = gb1_row->result.phases;
  // Time-to-result speedup: paper 1.46x.
  EXPECT_NEAR(none.total_s / gb1.total_s, 1.46, 0.12);
  // Merge speedup: paper 3.12x-3.13x.
  EXPECT_NEAR(none.merge_s / gb1.merge_s, 3.1, 0.35);
  // The p-way merge is a single round vs 6 pairwise rounds.
  EXPECT_EQ(none_row->result.merge_rounds, 6u);
  EXPECT_EQ(gb1_row->result.merge_rounds, 1u);
}

TEST(Table2Sort, PartitionedMergeSingleRoundNoStreamPenalty) {
  auto rows = table2_sort();
  ASSERT_ROW(pway_row, rows, "1GB");
  ASSERT_ROW(part_row, rows, "1GB+part");
  const auto& pway = pway_row->result;
  const auto& part = part_row->result;
  // Partitioned shuffle is also a single round over all contexts, but each
  // worker streams ONE partition instead of interleaving reads across every
  // run, so its modeled merge time drops below the global p-way merge's.
  EXPECT_EQ(part.merge_rounds, 1u);
  EXPECT_LT(part.phases.merge_s, pway.phases.merge_s);
  EXPECT_LE(part.phases.total_s, pway.phases.total_s);
}

TEST(Table2Sort, IngestOverlapGainSmallForSort) {
  // Sort's map phase is tiny, so the ingest pipeline gains little in the
  // combined read+map phase (paper: 189.11s unchunked -> 196.86s; i.e. the
  // gain comes from the merge, not the ingest overlap).
  auto rows = table2_sort();
  ASSERT_ROW(none_row, rows, "none");
  ASSERT_ROW(gb1_row, rows, "1GB");
  const auto& none = none_row->result.phases;
  const auto& gb1 = gb1_row->result.phases;
  const double unchunked_readmap = none.read_s + none.map_s;
  EXPECT_NEAR(gb1.readmap_s, unchunked_readmap, 10.0);
}

// ----------------------------------------------------------------- Fig. 1

TEST(Fig1, ComputeIsSmallFractionOfJob) {
  // "the actual compute phase takes less than 25% of the total execution
  // time" — map+reduce vs total.
  auto r = fig1_sort_baseline();
  const double compute = r.phases.map_s + r.phases.reduce_s;
  EXPECT_LT(compute / r.phases.total_s, 0.25);
}

TEST(Fig1, MergeStepCurveDecays) {
  // Utilization within the merge window decays as rounds halve their
  // workers: compare utilization early vs late in the merge phase.
  auto r = fig1_sort_baseline();
  const double merge_begin = r.phases.read_s + r.phases.map_s +
                             r.phases.reduce_s;
  const double merge_end = merge_begin + r.phases.merge_s;
  const auto& trace = r.trace;
  double early = 0, late = 0;
  int early_n = 0, late_n = 0;
  const double mid = merge_begin + (merge_end - merge_begin) / 2;
  for (std::size_t i = 0; i < trace.samples(); ++i) {
    const double t = trace.time(i);
    if (t < merge_begin || t >= merge_end) continue;
    if (t < mid) {
      early += trace.value(i, 0);
      ++early_n;
    } else {
      late += trace.value(i, 0);
      ++late_n;
    }
  }
  ASSERT_GT(early_n, 0);
  ASSERT_GT(late_n, 0);
  EXPECT_GT(early / early_n, 2.0 * (late / late_n));
}

TEST(Fig1, IngestPhaseShowsIoWait) {
  auto r = fig1_sort_baseline();
  const auto& trace = r.trace;
  // During the first half of the read phase, iowait is present and user CPU
  // is low.
  double user = 0, iowait = 0;
  int n = 0;
  for (std::size_t i = 0; i < trace.samples(); ++i) {
    if (trace.time(i) > r.phases.read_s * 0.5) break;
    user += trace.value(i, 0);
    iowait += trace.value(i, 2);
    ++n;
  }
  ASSERT_GT(n, 0);
  EXPECT_LT(user / n, 20.0);
  EXPECT_GT(iowait / n, 0.5);
}

// ----------------------------------------------------------------- Fig. 3

TEST(Fig3, OpenMpComputesFasterButFinishesSlower) {
  auto fig = fig3_openmp_vs_mapreduce();
  // Compute phase: OpenMP's parallel sort beats the MR compute phases...
  EXPECT_LT(fig.openmp_compute_s, fig.mapreduce_compute_s);
  // ...but sequential ingest+parse makes its time-to-result worse.
  EXPECT_GT(fig.openmp.total_s, fig.mapreduce.phases.total_s);
  // The parse phase is the culprit: single-threaded map work.
  EXPECT_GT(fig.openmp.map_s, 10.0 * fig.mapreduce.phases.map_s);
}

// ----------------------------------------------------------------- Fig. 5

// fig5_wordcount_traces() rows are (label, result) pairs; same
// label-addressing rule as the tables.
template <typename Traces>
const typename Traces::value_type::second_type* find_trace(
    const Traces& traces, const std::string& label) {
  for (const auto& t : traces) {
    if (t.first == label) return &t.second;
  }
  return nullptr;
}

TEST(Fig5, SmallChunksGiveDenserUtilization) {
  auto traces = fig5_wordcount_traces();
  const auto* none = find_trace(traces, "none");
  const auto* gb1 = find_trace(traces, "1GB");
  const auto* gb50 = find_trace(traces, "50GB");
  ASSERT_NE(none, nullptr);
  ASSERT_NE(gb1, nullptr);
  ASSERT_NE(gb50, nullptr);
  const double util_none = none->mean_utilization;
  const double util_1gb = gb1->mean_utilization;
  const double util_50gb = gb50->mean_utilization;
  // Chunking raises overall utilization; smaller chunks raise it more
  // (paper §VI.C.1: "small chunks have higher utilization and better
  // performance").
  EXPECT_GT(util_1gb, util_none);
  EXPECT_GE(util_1gb, util_50gb);
  EXPECT_GT(util_50gb, util_none * 0.99);
}

TEST(Fig5, ChunkedTraceHasManySpikes) {
  auto traces = fig5_wordcount_traces();
  // Count user-channel spikes (rising edges above a threshold).
  auto spikes = [](const TimeSeries& t) {
    int count = 0;
    bool above = false;
    for (std::size_t i = 0; i < t.samples(); ++i) {
      const bool now_above = t.value(i, 0) > 30.0;
      if (now_above && !above) ++count;
      above = now_above;
    }
    return count;
  };
  const auto* none = find_trace(traces, "none");
  const auto* gb50 = find_trace(traces, "50GB");
  ASSERT_NE(none, nullptr);
  ASSERT_NE(gb50, nullptr);
  const int none_spikes = spikes(none->trace);
  const int gb50_spikes = spikes(gb50->trace);
  EXPECT_LE(none_spikes, 2);       // one big compute spike at the end
  EXPECT_GE(gb50_spikes, 3);       // one spike per 50 GB chunk
}

// ----------------------------------------------------------------- Fig. 6

TEST(Fig6, PwayMergeIsOneHighUtilizationRound) {
  auto supmr = fig6_sort_pway();
  EXPECT_EQ(supmr.merge_rounds, 1u);
  // Utilization during the merge window stays high throughout.
  const double merge_begin = supmr.phases.readmap_s + supmr.phases.reduce_s;
  const double merge_end = merge_begin + supmr.phases.merge_s;
  const auto& trace = supmr.trace;
  double user = 0;
  int n = 0;
  for (std::size_t i = 0; i < trace.samples(); ++i) {
    const double t = trace.time(i);
    if (t < merge_begin + 1 || t >= merge_end - 1) continue;
    user += trace.value(i, 0);
    ++n;
  }
  ASSERT_GT(n, 0);
  EXPECT_GT(user / n, 90.0);
}

TEST(Fig6, FasterThanFig1Baseline) {
  auto baseline = fig1_sort_baseline();
  auto supmr = fig6_sort_pway();
  EXPECT_LT(supmr.phases.total_s, baseline.phases.total_s);
  EXPECT_NEAR(baseline.phases.merge_s / supmr.phases.merge_s, 3.1, 0.35);
}

// ----------------------------------------------------------------- Fig. 7

TEST(Fig7, HighUtilizationButSmallSpeedup) {
  auto fig = fig7_hdfs_casestudy();
  // SupMR wins, but only by seconds (paper: 7s on a ~250s job), because the
  // map phase is a tiny fraction of the link-bound ingest.
  EXPECT_GT(fig.speedup_s, 1.0);
  EXPECT_LT(fig.speedup_s, 30.0);
  EXPECT_LT(fig.speedup_s / fig.original.phases.total_s, 0.10);
  // The pipeline achieves higher utilization during ingest nonetheless.
  EXPECT_GT(fig.supmr.mean_utilization, fig.original.mean_utilization);
}

TEST(Fig7, LinkBoundIngestDominates) {
  auto fig = fig7_hdfs_casestudy();
  // 30 GB over 125 MB/s ~ 240 s of ingest on a ~250 s job.
  EXPECT_GT(fig.original.phases.read_s / fig.original.phases.total_s, 0.85);
}

// -------------------------------------------------------------- ablations

TEST(ChunkSweep, UtilizationRisesAsChunksShrink) {
  auto d = wload::paper_wordcount_dataset();
  auto points = chunk_size_sweep(wordcount_model(d), d,
                                 core::MergeMode::kPWay,
                                 {50 * kGB, 10 * kGB, 1 * kGB, 250 * kMB});
  ASSERT_EQ(points.size(), 4u);
  for (std::size_t i = 1; i < points.size(); ++i) {
    EXPECT_GE(points[i].mean_utilization,
              points[i - 1].mean_utilization - 0.5)
        << "utilization should not drop as chunks shrink (i=" << i << ")";
    EXPECT_GT(points[i].threads_spawned, points[i - 1].threads_spawned);
  }
}

TEST(ChunkSweep, TinyChunksPayThreadOverhead) {
  // Conclusion 2: benefit depends on chunk size — far below the sweet spot,
  // per-round thread costs erode the gain.
  auto d = wload::paper_sort_dataset();
  auto points = chunk_size_sweep(sort_model(d), d, core::MergeMode::kPWay,
                                 {1 * kGB, 10 * kMB});
  ASSERT_EQ(points.size(), 2u);
  // 6000 rounds of thread spawn/join cost real time vs 60 rounds.
  EXPECT_GT(points[1].total_s, points[0].total_s);
}

TEST(FaninSweep, PairwiseGrowsLogarithmicallyPwayFlat) {
  auto d = wload::paper_sort_dataset();
  auto points = merge_fanin_sweep(sort_model(d), d, {4, 16, 64});
  ASSERT_EQ(points.size(), 3u);
  // Pairwise merge time scales with log2(runs): 2, 4, 6 rounds.
  EXPECT_NEAR(points[1].pairwise_merge_s / points[0].pairwise_merge_s, 2.0,
              0.1);
  EXPECT_NEAR(points[2].pairwise_merge_s / points[0].pairwise_merge_s, 3.0,
              0.1);
  // P-way merge is a single pass regardless of fan-in.
  EXPECT_NEAR(points[2].pway_merge_s, points[0].pway_merge_s,
              0.05 * points[0].pway_merge_s);
  // Crossover: pairwise only competitive at trivial fan-in.
  EXPECT_GT(points[2].pairwise_merge_s, points[2].pway_merge_s);
}

// ------------------------------------------------------------ conservation

TEST(SimJob, TraceUtilizationBounded) {
  auto rows = table2_sort();
  for (const auto& row : rows) {
    const auto& trace = row.result.trace;
    for (std::size_t i = 0; i < trace.samples(); ++i) {
      EXPECT_GE(trace.row_sum(i), -1e-6);
      EXPECT_LE(trace.row_sum(i), 100.0 + 1e-6);
    }
  }
}

TEST(SimJob, PhasesSumBelowTotal) {
  for (const auto& row : table2_wordcount()) {
    const auto& p = row.result.phases;
    const double compute = p.has_combined_readmap
                               ? p.readmap_s
                               : p.read_s + p.map_s;
    EXPECT_LE(compute + p.reduce_s + p.merge_s, p.total_s + 1e-6);
  }
}


// --------------------------------------------------- scaling ablations

TEST(ContextScaling, OriginalFlattensAtIngestFloor) {
  // Amdahl on the serial ingest: with the 384 MB/s channel fixed, adding
  // contexts cannot push word count below the ~404 s transfer time.
  auto d = wload::paper_wordcount_dataset();
  const double floor_s = double(d.total_bytes) / paper_machine().disk_bw_bps;
  for (int contexts : {8, 32, 128}) {
    SimJobSpec spec;
    spec.machine = paper_machine();
    spec.machine.contexts = contexts;
    spec.num_mappers = std::size_t(contexts);
    spec.dataset = d;
    spec.app = wordcount_model(d);
    spec.chunk_bytes = 0;
    spec.merge_mode = core::MergeMode::kPairwise;
    EXPECT_GT(simulate_job(spec).phases.total_s, floor_s);
  }
}

TEST(ContextScaling, SupMRApproachesIngestFloor) {
  auto d = wload::paper_wordcount_dataset();
  const double floor_s = double(d.total_bytes) / paper_machine().disk_bw_bps;
  SimJobSpec spec;
  spec.machine = paper_machine();
  spec.machine.contexts = 128;
  spec.num_mappers = 128;
  spec.dataset = d;
  spec.app = wordcount_model(d);
  spec.chunk_bytes = 1 * kGB;
  spec.merge_mode = core::MergeMode::kPWay;
  const double total = simulate_job(spec).phases.total_s;
  EXPECT_LT(total, floor_s * 1.01);  // fully hidden compute
}

TEST(DiskBandwidth, WordCountSpeedupPeaksAtBalance) {
  // The overlap gain is min(ingest, map)/total-ish: it peaks where the two
  // phases are balanced and decays on both sides.
  auto d = wload::paper_wordcount_dataset();
  auto run_speedup = [&](double bw) {
    SimJobSpec spec;
    spec.machine = paper_machine();
    spec.machine.disk_bw_bps = bw;
    spec.dataset = d;
    spec.app = wordcount_model(d);
    spec.chunk_bytes = 0;
    spec.merge_mode = core::MergeMode::kPairwise;
    const double original = simulate_job(spec).phases.total_s;
    spec.chunk_bytes = 1 * kGB;
    spec.merge_mode = core::MergeMode::kPWay;
    return original / simulate_job(spec).phases.total_s;
  };
  const double slow = run_speedup(128e6);   // ingest-dominated
  const double mid = run_speedup(2.3e9);    // ingest ~ map
  const double fast = run_speedup(12e9);    // compute-dominated
  EXPECT_GT(mid, slow);
  EXPECT_GT(mid, fast);
}

TEST(DiskBandwidth, SortMergeGainSurvivesFastDevices) {
  auto d = wload::paper_sort_dataset();
  SimJobSpec spec;
  spec.machine = paper_machine();
  spec.machine.disk_bw_bps = 12e9;  // NVMe RAID
  spec.dataset = d;
  spec.app = sort_model(d);
  spec.chunk_bytes = 0;
  spec.merge_mode = core::MergeMode::kPairwise;
  const double original = simulate_job(spec).phases.total_s;
  spec.chunk_bytes = 1 * kGB;
  spec.merge_mode = core::MergeMode::kPWay;
  const double supmr = simulate_job(spec).phases.total_s;
  EXPECT_GT(original / supmr, 1.8);  // the merge win is device-independent
}

}  // namespace
}  // namespace supmr::perfmodel
