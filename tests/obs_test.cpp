// Tests for the observability layer: metrics registry (bucketing, per-thread
// sharding, aggregation, JSON) and the Chrome-trace recorder (golden schema,
// disabled no-op, event cap). Every emitted document also goes through the
// strict JSON validator so schema drift fails loudly.
#include <gtest/gtest.h>

#include <cstdint>
#include <thread>
#include <vector>

#include "json_validator.hpp"
#include "obs/macros.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace supmr::obs {
namespace {

// --- JSON validator self-tests (it guards every emitter below) -----------

TEST(JsonValidator, AcceptsValidDocuments) {
  EXPECT_EQ(test::validate_json("{}"), "");
  EXPECT_EQ(test::validate_json("[]"), "");
  EXPECT_EQ(test::validate_json("  {\"a\":[1,2.5,-3e2,\"x\\n\",true,false,"
                                "null,{\"b\":[]}]}  "),
            "");
  EXPECT_EQ(test::validate_json("\"\\u00e9\""), "");
  EXPECT_EQ(test::validate_json("0.125"), "");
}

TEST(JsonValidator, RejectsInvalidDocuments) {
  EXPECT_NE(test::validate_json(""), "");
  EXPECT_NE(test::validate_json("{"), "");
  EXPECT_NE(test::validate_json("{\"a\":1,}"), "");  // trailing comma
  EXPECT_NE(test::validate_json("{'a':1}"), "");     // single quotes
  EXPECT_NE(test::validate_json("[1 2]"), "");
  EXPECT_NE(test::validate_json("{\"a\":01}"), "");  // leading zero
  EXPECT_NE(test::validate_json("\"\t\""), "");      // raw control char
  EXPECT_NE(test::validate_json("\"\\u12g4\""), "");
  EXPECT_NE(test::validate_json("NaN"), "");
  EXPECT_NE(test::validate_json("{} []"), "");       // trailing data
}

// --- histogram bucketing --------------------------------------------------

TEST(Histogram, BucketBoundaries) {
  EXPECT_EQ(histogram_bucket(0), 0u);
  EXPECT_EQ(histogram_bucket(1), 1u);
  EXPECT_EQ(histogram_bucket(2), 2u);
  EXPECT_EQ(histogram_bucket(3), 2u);
  EXPECT_EQ(histogram_bucket(4), 3u);
  EXPECT_EQ(histogram_bucket(7), 3u);
  EXPECT_EQ(histogram_bucket(8), 4u);
  EXPECT_EQ(histogram_bucket((1u << 30) - 1), 30u);
  EXPECT_EQ(histogram_bucket(1u << 30), 31u);  // overflow bucket
  EXPECT_EQ(histogram_bucket(UINT64_MAX), 31u);
}

TEST(Histogram, BucketBoundInvariant) {
  // Every non-overflow value lies in [bound(i)/2, bound(i)).
  for (std::uint64_t v : {1ull, 2ull, 3ull, 100ull, 4095ull, 4096ull,
                          999999ull, (1ull << 29)}) {
    const std::size_t b = histogram_bucket(v);
    ASSERT_LT(b, kHistogramBuckets - 1) << v;
    EXPECT_LT(v, histogram_bucket_bound(b)) << v;
    EXPECT_GE(v, histogram_bucket_bound(b) / 2) << v;
  }
  EXPECT_EQ(histogram_bucket_bound(kHistogramBuckets - 1), UINT64_MAX);
}

TEST(Histogram, CellStats) {
  HistogramCell cell;
  for (std::uint64_t v : {5ull, 9ull, 0ull, 1000ull}) cell.observe(v);
  EXPECT_EQ(cell.count.load(), 4u);
  EXPECT_EQ(cell.sum.load(), 1014u);
  EXPECT_EQ(cell.min.load(), 0u);
  EXPECT_EQ(cell.max.load(), 1000u);
  EXPECT_EQ(cell.buckets[histogram_bucket(5)].load(), 1u);
  EXPECT_EQ(cell.buckets[histogram_bucket(9)].load(), 1u);
  EXPECT_EQ(cell.buckets[0].load(), 1u);  // the zero
  EXPECT_EQ(cell.buckets[histogram_bucket(1000)].load(), 1u);
}

// --- registry sharding and aggregation ------------------------------------

TEST(MetricsRegistry, SingleThreadRoundTrip) {
  MetricsRegistry reg;
  reg.counter_cell("c")->add(3);
  reg.counter_cell("c")->add(4);
  reg.gauge_cell("g")->set(-5);
  reg.histogram_cell("h")->observe(10);

  const MetricsSnapshot snap = reg.snapshot();
  EXPECT_EQ(snap.counters.at("c"), 7u);
  EXPECT_EQ(snap.gauges.at("g"), -5);
  EXPECT_EQ(snap.histograms.at("h").count, 1u);
  EXPECT_EQ(snap.histograms.at("h").sum, 10u);
  EXPECT_EQ(snap.histograms.at("h").min, 10u);
  EXPECT_EQ(snap.histograms.at("h").max, 10u);
}

TEST(MetricsRegistry, AggregatesAcrossThreadShards) {
  MetricsRegistry reg;
  constexpr int kThreads = 8;
  constexpr std::uint64_t kPerThread = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&reg, t] {
      CounterCell* c = reg.counter_cell("shared.counter");
      HistogramCell* h = reg.histogram_cell("shared.hist");
      for (std::uint64_t i = 0; i < kPerThread; ++i) {
        c->add(1);
        h->observe(std::uint64_t(t) * kPerThread + i);
      }
    });
  }
  for (auto& t : threads) t.join();

  const MetricsSnapshot snap = reg.snapshot();
  EXPECT_EQ(snap.counters.at("shared.counter"), kThreads * kPerThread);
  const HistogramSnapshot& h = snap.histograms.at("shared.hist");
  EXPECT_EQ(h.count, kThreads * kPerThread);
  EXPECT_EQ(h.min, 0u);
  EXPECT_EQ(h.max, kThreads * kPerThread - 1);
  std::uint64_t bucket_total = 0;
  for (std::size_t b = 0; b < kHistogramBuckets; ++b)
    bucket_total += h.buckets[b];
  EXPECT_EQ(bucket_total, h.count);
}

TEST(MetricsRegistry, ResetZeroesInPlace) {
  MetricsRegistry reg;
  CounterCell* c = reg.counter_cell("c");
  c->add(9);
  reg.histogram_cell("h")->observe(4);
  reg.gauge_cell("g")->set(2);
  reg.reset();
  const MetricsSnapshot snap = reg.snapshot();
  EXPECT_EQ(snap.counters.at("c"), 0u);
  EXPECT_EQ(snap.histograms.at("h").count, 0u);
  EXPECT_EQ(snap.histograms.at("h").min, 0u);
  EXPECT_EQ(snap.gauges.at("g"), 0);
  // The old cell pointer must still be live (macro sites cache it).
  c->add(1);
  EXPECT_EQ(reg.snapshot().counters.at("c"), 1u);
}

TEST(MetricsRegistry, JsonGoldenAndValid) {
  MetricsRegistry reg;
  reg.counter_cell("a")->add(2);
  reg.gauge_cell("g")->set(-1);
  const std::string json = metrics_to_json(reg.snapshot());
  EXPECT_EQ(json,
            "{\"counters\":{\"a\":2},\"gauges\":{\"g\":-1},"
            "\"histograms\":{}}");
  EXPECT_EQ(test::validate_json(json), "");
}

TEST(MetricsRegistry, HistogramJsonShapeAndValid) {
  MetricsRegistry reg;
  reg.histogram_cell("h")->observe(3);
  const std::string json = metrics_to_json(reg.snapshot());
  EXPECT_EQ(test::validate_json(json), "");
  EXPECT_NE(json.find("\"h\":{\"count\":1,\"sum\":3,\"min\":3,\"max\":3,"
                      "\"buckets\":[0,0,1,0,"),
            std::string::npos);
  // Exactly 32 bucket entries.
  const std::size_t start = json.find("\"buckets\":[");
  ASSERT_NE(start, std::string::npos);
  const std::size_t end = json.find(']', start);
  std::size_t commas = 0;
  for (std::size_t i = start; i < end; ++i) commas += json[i] == ',';
  EXPECT_EQ(commas + 1, kHistogramBuckets);
}

TEST(MetricsRegistry, EmptySnapshotEmitsValidJson) {
  const std::string json = metrics_to_json(MetricsSnapshot{});
  EXPECT_EQ(json, "{\"counters\":{},\"gauges\":{},\"histograms\":{}}");
  EXPECT_EQ(test::validate_json(json), "");
}

// --- trace recorder -------------------------------------------------------

TEST(TraceRecorder, GoldenSchema) {
  TraceRecorder rec;
  rec.enable();
  rec.set_thread_name("golden");

  TraceEvent span;
  span.name = "span";
  span.cat = "test";
  span.ph = 'X';
  span.ts_ns = 1000;
  span.dur_ns = 500;
  span.arg1_name = "bytes";
  span.arg1 = 42;
  rec.record(span);

  TraceEvent mark;
  mark.name = "mark";
  mark.cat = "test";
  mark.ph = 'i';
  mark.ts_ns = 2500;
  mark.arg1_name = "k";
  mark.arg1 = 7;
  rec.record(mark);

  const std::string json = rec.to_json();
  EXPECT_EQ(
      json,
      "{\"traceEvents\":["
      "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":1,"
      "\"args\":{\"name\":\"golden\"}},"
      "{\"name\":\"span\",\"cat\":\"test\",\"ph\":\"X\",\"pid\":1,"
      "\"tid\":1,\"ts\":1,\"dur\":0.5,\"args\":{\"bytes\":42}},"
      "{\"name\":\"mark\",\"cat\":\"test\",\"ph\":\"i\",\"pid\":1,"
      "\"tid\":1,\"ts\":2.5,\"s\":\"t\",\"args\":{\"k\":7}}"
      "],\"displayTimeUnit\":\"ms\"}");
  EXPECT_EQ(test::validate_json(json), "");
}

TEST(TraceRecorder, EventsSortedByTimestamp) {
  TraceRecorder rec;
  rec.enable();
  for (std::uint64_t ts : {5000ull, 1000ull, 3000ull}) {
    TraceEvent e;
    e.name = "e";
    e.cat = "t";
    e.ts_ns = ts;
    rec.record(e);
  }
  const std::string json = rec.to_json();
  EXPECT_EQ(test::validate_json(json), "");
  EXPECT_LT(json.find("\"ts\":1,"), json.find("\"ts\":3,"));
  EXPECT_LT(json.find("\"ts\":3,"), json.find("\"ts\":5,"));
}

TEST(TraceRecorder, DisabledRecordsNothing) {
  TraceRecorder rec;
  TraceEvent e;
  e.name = "e";
  rec.record(e);
  rec.instant("t", "i");
  {
    TraceScope scope("t", "scope", rec);  // inert: disabled at construction
  }
  EXPECT_EQ(rec.to_json(),
            "{\"traceEvents\":[],\"displayTimeUnit\":\"ms\"}");
}

TEST(TraceRecorder, ScopeEmitsCompleteEvent) {
  TraceRecorder rec;
  rec.enable();
  {
    TraceScope scope("cat", "work", rec);
    scope.set_arg("n", 3);
  }
  const std::string json = rec.to_json();
  EXPECT_EQ(test::validate_json(json), "");
  EXPECT_NE(json.find("\"name\":\"work\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"args\":{\"n\":3}"), std::string::npos);
}

TEST(TraceRecorder, EventCapCountsDrops) {
  TraceRecorder rec(/*max_events_per_thread=*/4);
  rec.enable();
  for (int i = 0; i < 10; ++i) {
    TraceEvent e;
    e.name = "e";
    rec.record(e);
  }
  EXPECT_EQ(rec.dropped_events(), 6u);
  rec.clear();
  EXPECT_EQ(rec.dropped_events(), 0u);
  EXPECT_EQ(rec.to_json(),
            "{\"traceEvents\":[],\"displayTimeUnit\":\"ms\"}");
}

TEST(TraceRecorder, PerThreadTids) {
  TraceRecorder rec;
  rec.enable();
  std::thread other([&rec] {
    rec.set_thread_name("other");
    TraceEvent e;
    e.name = "from_other";
    e.cat = "t";
    e.ts_ns = 10;
    rec.record(e);
  });
  other.join();
  TraceEvent e;
  e.name = "from_main";
  e.cat = "t";
  e.ts_ns = 20;
  rec.record(e);

  const std::string json = rec.to_json();
  EXPECT_EQ(test::validate_json(json), "");
  // Two distinct tids must appear.
  EXPECT_NE(json.find("\"tid\":1"), std::string::npos);
  EXPECT_NE(json.find("\"tid\":2"), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"other\""), std::string::npos);
}

// --- macro layer ----------------------------------------------------------

TEST(ObsMacros, CounterAndHistogramFeedGlobalRegistry) {
  // The macros are hard-wired to the global registry; read deltas rather
  // than absolutes so the test is robust to other tests' activity.
  const auto before = MetricsRegistry::global().snapshot();
  const auto counter_before = [&](const char* n) {
    auto it = before.counters.find(n);
    return it == before.counters.end() ? 0u : it->second;
  };
  const std::uint64_t c0 = counter_before("obs_test.counter");

  SUPMR_COUNTER_ADD("obs_test.counter", 2);
  SUPMR_COUNTER_ADD("obs_test.counter", 3);
  SUPMR_HIST_OBSERVE("obs_test.hist", 17);
  SUPMR_GAUGE_SET("obs_test.gauge", 123);

  const auto after = MetricsRegistry::global().snapshot();
#if SUPMR_OBS_ENABLED
  EXPECT_EQ(after.counters.at("obs_test.counter"), c0 + 5);
  EXPECT_GE(after.histograms.at("obs_test.hist").count, 1u);
  EXPECT_EQ(after.gauges.at("obs_test.gauge"), 123);
#else
  EXPECT_EQ(counter_before("obs_test.counter"), c0);
  (void)after;
#endif
}

}  // namespace
}  // namespace supmr::obs
