// Tests for the paper's deferred features implemented here: hybrid
// inter/intra-file chunking, the adaptive chunk-size feedback loop, the
// dense fixed-key container, and the histogram application.
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <map>
#include <thread>

#include "apps/histogram.hpp"
#include "apps/word_count.hpp"
#include "containers/fixed_kv_array.hpp"
#include "core/job.hpp"
#include "ingest/adaptive.hpp"
#include "ingest/hybrid_source.hpp"
#include "storage/mem_device.hpp"
#include "storage/rate_limiter.hpp"
#include "storage/throttled_device.hpp"
#include "wload/numeric.hpp"
#include "wload/text_corpus.hpp"

namespace supmr {
namespace {

using ingest::AdaptivePipeline;
using ingest::ChunkFeedback;
using ingest::HybridFileSource;
using ingest::IngestChunk;
using ingest::LineFormat;
using ingest::RateMatchingController;
using storage::MemDevice;

std::shared_ptr<const storage::Device> mem(std::string s,
                                           std::string name = "m") {
  return std::make_shared<MemDevice>(std::move(s), std::move(name));
}

// ---------------------------------------------------------- hybrid source

TEST(HybridSource, CoalescesSmallFiles) {
  // 6 small files of 4 bytes, target 10 -> packs 2-3 per chunk.
  std::vector<std::shared_ptr<const storage::Device>> files;
  for (int i = 0; i < 6; ++i)
    files.push_back(mem(std::to_string(i) + "ab\n"));
  HybridFileSource src(files, std::make_shared<LineFormat>(), 10);
  auto plan = src.plan();
  ASSERT_TRUE(plan.ok());
  // Packing overshoots to whole records: 3 files (12 B) per chunk.
  EXPECT_EQ(plan->size(), 2u);
  for (const auto& e : *plan) {
    EXPECT_EQ(e.files.size(), 3u);
    EXPECT_EQ(e.length, 12u);
  }
}

TEST(HybridSource, SplitsLargeFilesAtRecordBoundaries) {
  // One 100-byte file of 10-byte lines, target 25 -> ~30-byte pieces.
  std::string big;
  for (int i = 0; i < 10; ++i) big += "123456789\n";
  HybridFileSource src({mem(big)}, std::make_shared<LineFormat>(), 25);
  auto plan = src.plan();
  ASSERT_TRUE(plan.ok());
  ASSERT_GE(plan->size(), 3u);
  for (const auto& e : *plan) {
    // Every piece ends on a line boundary.
    for (const auto& span : e.files) {
      EXPECT_EQ((span.file_offset + span.length) % 10, 0u);
    }
  }
}

TEST(HybridSource, MixedSizesReassembleExactly) {
  std::vector<std::shared_ptr<const storage::Device>> files;
  std::string expected;
  Xoshiro256 rng(31);
  for (int f = 0; f < 12; ++f) {
    std::string content;
    const int lines = 1 + int(rng.uniform(40));
    for (int l = 0; l < lines; ++l) {
      const std::size_t len = 1 + rng.uniform(20);
      for (std::size_t i = 0; i < len; ++i)
        content.push_back(static_cast<char>('a' + rng.uniform(26)));
      content.push_back('\n');
    }
    expected += content;
    files.push_back(mem(content));
  }
  HybridFileSource src(files, std::make_shared<LineFormat>(), 100);
  auto plan = src.plan();
  ASSERT_TRUE(plan.ok());
  std::string rebuilt;
  for (const auto& extent : *plan) {
    IngestChunk chunk;
    ASSERT_TRUE(src.read_chunk(extent, chunk).ok());
    EXPECT_EQ(chunk.data.size(), extent.length);
    rebuilt.append(chunk.data.data(), chunk.data.size());
  }
  EXPECT_EQ(rebuilt, expected);
}

TEST(HybridSource, ChunksNearTarget) {
  // Property: every chunk except the last is >= target (flush happens at or
  // above target) and below target + one max record.
  std::vector<std::shared_ptr<const storage::Device>> files;
  Xoshiro256 rng(32);
  for (int f = 0; f < 30; ++f) {
    std::string content;
    const int lines = 1 + int(rng.uniform(60));
    for (int l = 0; l < lines; ++l)
      content += std::string(1 + rng.uniform(30), 'x') + "\n";
    files.push_back(mem(content));
  }
  const std::uint64_t target = 400;
  HybridFileSource src(files, std::make_shared<LineFormat>(), target);
  auto plan = src.plan();
  ASSERT_TRUE(plan.ok());
  std::uint64_t covered = 0;
  for (std::size_t i = 0; i < plan->size(); ++i) {
    covered += (*plan)[i].length;
    if (i + 1 < plan->size()) {
      EXPECT_GE((*plan)[i].length, target - 32);
      EXPECT_LE((*plan)[i].length, target + 32);
    }
  }
  EXPECT_EQ(covered, src.total_bytes());
}

TEST(HybridSource, ZeroTargetIsOneChunk) {
  HybridFileSource src({mem("a\n"), mem("b\n")},
                       std::make_shared<LineFormat>(), 0);
  auto plan = src.plan();
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->size(), 1u);
  EXPECT_EQ((*plan)[0].files.size(), 2u);
}

TEST(HybridSource, WordCountOverHybridMatchesReference) {
  // End-to-end: hybrid chunks drive the real runtime and results match the
  // plain multi-file path.
  wload::TextCorpusConfig cfg;
  cfg.total_bytes = 8 * 1024;
  auto files = wload::generate_text_files(cfg, 9, 8 * 1024);

  apps::WordCountApp hybrid_app, plain_app;
  core::JobConfig jc;
  jc.num_map_threads = 3;
  jc.num_reduce_threads = 2;

  HybridFileSource hybrid_src(files, std::make_shared<LineFormat>(), 10000);
  core::MapReduceJob hybrid_job(hybrid_app, hybrid_src, jc);
  ASSERT_TRUE(hybrid_job.run(core::ExecMode::kIngestMR).ok());

  ingest::MultiFileSource plain_src(files, 3);
  core::MapReduceJob plain_job(plain_app, plain_src, jc);
  ASSERT_TRUE(plain_job.run(core::ExecMode::kIngestMR).ok());

  EXPECT_EQ(hybrid_app.results(), plain_app.results());
}

// ------------------------------------------------------ adaptive pipeline

TEST(RateMatchingController, LearnsBandwidths) {
  RateMatchingController ctl;
  ctl.observe(ChunkFeedback{0, 1000000, 0.01, 0.0});   // 100 MB/s ingest
  ctl.observe(ChunkFeedback{0, 1000000, 0.0, 0.002});  // 500 MB/s map
  EXPECT_NEAR(ctl.ingest_bw_estimate(), 1e8, 1e6);
  EXPECT_NEAR(ctl.process_bw_estimate(), 5e8, 5e6);
}

TEST(RateMatchingController, SizesChunkToPacingBandwidth) {
  RateMatchingController::Options opt;
  opt.round_floor_s = 0.1;
  opt.min_bytes = 1;
  opt.max_bytes = 1ULL << 40;
  RateMatchingController ctl(opt);
  // Ingest 100 MB/s, map 20 MB/s: map paces the round.
  ctl.observe(ChunkFeedback{0, 10000000, 0.1, 0.0});
  ctl.observe(ChunkFeedback{0, 10000000, 0.0, 0.5});
  EXPECT_NEAR(double(ctl.next_chunk_bytes()), 0.1 * 20e6, 0.1 * 20e6 * 0.05);
}

TEST(RateMatchingController, ClampsToBounds) {
  RateMatchingController::Options opt;
  opt.round_floor_s = 10.0;
  opt.min_bytes = 1000;
  opt.max_bytes = 2000;
  RateMatchingController ctl(opt);
  ctl.observe(ChunkFeedback{0, 1 << 20, 0.001, 0.0});  // ~1 GB/s
  EXPECT_EQ(ctl.next_chunk_bytes(), 2000u);  // clamped to max
}

TEST(RateMatchingController, IgnoresEmptyFeedback) {
  RateMatchingController ctl;
  ctl.observe(ChunkFeedback{0, 0, 0.5, 0.5});
  EXPECT_EQ(ctl.ingest_bw_estimate(), 0.0);
}

TEST(AdaptivePipeline, DeliversAllBytesInOrder) {
  wload::TextCorpusConfig cfg;
  cfg.total_bytes = 300 * 1024;
  const std::string text = wload::generate_text(cfg);
  MemDevice dev(text);
  LineFormat format;
  RateMatchingController::Options opt;
  opt.initial_bytes = 8 * 1024;
  opt.min_bytes = 1024;
  opt.max_bytes = 64 * 1024;
  opt.round_floor_s = 0.001;
  RateMatchingController ctl(opt);
  AdaptivePipeline pipeline(dev, format, ctl);
  std::string rebuilt;
  std::uint64_t last_index = 0;
  auto stats = pipeline.run([&](IngestChunk& c) {
    EXPECT_GE(c.index, last_index);
    last_index = c.index;
    rebuilt.append(c.data.data(), c.data.size());
    return Status::Ok();
  });
  ASSERT_TRUE(stats.ok()) << stats.status().to_string();
  EXPECT_EQ(rebuilt, text);
  EXPECT_EQ(stats->total_bytes, text.size());
  EXPECT_GE(stats->chunks.size(), 4u);
}

TEST(AdaptivePipeline, ShrinksChunksWhenIngestSlow) {
  // Throttled device (slow ingest) + instant processing: the controller
  // should converge to small chunks (ingest paces the pipeline).
  auto base = std::make_shared<MemDevice>(
      wload::generate_text({.total_bytes = 1024 * 1024}), "slow");
  auto limiter =
      std::make_shared<storage::RateLimiter>(8.0e6, /*burst=*/16 * 1024);
  storage::ThrottledDevice dev(base, limiter);
  LineFormat format;
  RateMatchingController::Options opt;
  opt.initial_bytes = 256 * 1024;  // start far too big
  opt.min_bytes = 4 * 1024;
  opt.max_bytes = 1 << 20;
  opt.round_floor_s = 0.002;  // 2 ms rounds at 8 MB/s -> ~16 KB chunks
  RateMatchingController ctl(opt);
  AdaptivePipeline pipeline(dev, format, ctl);
  auto stats = pipeline.run([](IngestChunk&) { return Status::Ok(); });
  ASSERT_TRUE(stats.ok());
  ASSERT_GE(stats->chunks.size(), 3u);
  // Later chunks must be much smaller than the oversized initial chunk.
  // Use the median: individual chunks can ride burst credit after a
  // scheduling hiccup, but the bulk must converge small.
  auto chunks = stats->chunks;
  std::sort(chunks.begin(), chunks.end(),
            [](const auto& a, const auto& b) { return a.bytes < b.bytes; });
  EXPECT_LT(chunks[chunks.size() / 2].bytes, 64u * 1024);
  EXPECT_LT(chunks[chunks.size() / 2].bytes, stats->chunks[0].bytes);
}

TEST(AdaptivePipeline, ConsumerErrorCancels) {
  MemDevice dev(wload::generate_text({.total_bytes = 200 * 1024}));
  LineFormat format;
  ingest::FixedChunkController ctl(8 * 1024);
  AdaptivePipeline pipeline(dev, format, ctl);
  int calls = 0;
  auto stats = pipeline.run([&](IngestChunk&) {
    return ++calls == 2 ? Status::Internal("stop") : Status::Ok();
  });
  EXPECT_FALSE(stats.ok());
  EXPECT_EQ(calls, 2);
}

TEST(AdaptivePipeline, EmptyDevice) {
  MemDevice dev("");
  LineFormat format;
  ingest::FixedChunkController ctl(1024);
  AdaptivePipeline pipeline(dev, format, ctl);
  int calls = 0;
  auto stats = pipeline.run([&](IngestChunk&) {
    ++calls;
    return Status::Ok();
  });
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(calls, 0);
}

TEST(MapReduceJob, AdaptiveRunMatchesFixedRun) {
  wload::TextCorpusConfig cfg;
  cfg.total_bytes = 128 * 1024;
  const std::string text = wload::generate_text(cfg);
  core::JobConfig jc;
  jc.num_map_threads = 4;
  jc.num_reduce_threads = 2;

  apps::WordCountApp fixed_app;
  ingest::SingleDeviceSource src(mem(text), std::make_shared<LineFormat>(),
                                 16 * 1024);
  core::MapReduceJob fixed_job(fixed_app, src, jc);
  ASSERT_TRUE(fixed_job.run(core::ExecMode::kIngestMR).ok());

  apps::WordCountApp adaptive_app;
  MemDevice dev(text);
  LineFormat format;
  RateMatchingController ctl;
  // The job still needs a source for construction; it is unused by the
  // adaptive entry point.
  core::MapReduceJob adaptive_job(adaptive_app, src, jc);
  adaptive_job.set_adaptive(dev, format, ctl);
  auto r = adaptive_job.run(core::ExecMode::kAdaptive);
  ASSERT_TRUE(r.ok()) << r.status().to_string();
  EXPECT_TRUE(r->phases.has_combined_readmap);
  EXPECT_GE(r->chunks, 1u);

  EXPECT_EQ(adaptive_app.results(), fixed_app.results());
}

// ---------------------------------------------------------- FixedKvArray

TEST(FixedKvArray, EmitAndReduce) {
  containers::FixedKvArray<containers::SumCombiner<std::uint64_t>> c;
  c.init(2, 4);
  c.emit(0, 1, 5u);
  c.emit(1, 1, 7u);
  c.emit(1, 3, 1u);
  auto all = c.reduce_all();
  EXPECT_EQ(all, (std::vector<std::uint64_t>{0, 12, 0, 1}));
}

TEST(FixedKvArray, RangeReductionDisjoint) {
  containers::FixedKvArray<containers::SumCombiner<std::uint64_t>> c;
  c.init(3, 10);
  for (std::size_t t = 0; t < 3; ++t)
    for (std::size_t k = 0; k < 10; ++k) c.emit(t, k, k);
  std::vector<std::uint64_t> lo(5), hi(5);
  c.reduce_range(0, 5, lo.data());
  c.reduce_range(5, 10, hi.data());
  for (std::size_t k = 0; k < 5; ++k) {
    EXPECT_EQ(lo[k], 3 * k);
    EXPECT_EQ(hi[k], 3 * (k + 5));
  }
}

TEST(FixedKvArray, PersistentAcrossInit) {
  containers::FixedKvArray<containers::SumCombiner<std::uint64_t>> c;
  c.init(1, 2);
  c.emit(0, 0, 1u);
  c.init(1, 2);  // next round: idempotent
  c.emit(0, 0, 1u);
  EXPECT_EQ(c.reduce_all()[0], 2u);
}

TEST(FixedKvArray, MinCombinerVariant) {
  containers::FixedKvArray<containers::MinCombiner<int>> c;
  c.init(2, 2);
  c.emit(0, 0, 5);
  c.emit(1, 0, 3);
  EXPECT_EQ(c.reduce_all()[0], 3);
}

// -------------------------------------------------------------- histogram

TEST(NumericGenerator, ParsesBackExactly) {
  wload::NumericConfig cfg;
  cfg.num_values = 1000;
  const std::string data = wload::generate_numeric(cfg);
  std::size_t lines = 0;
  for (char ch : data) lines += (ch == '\n');
  EXPECT_EQ(lines, 1000u);
}

TEST(Histogram, CountsMatchReference) {
  wload::NumericConfig cfg;
  cfg.num_values = 20000;
  cfg.lo = 0;
  cfg.hi = 99;
  const std::string data = wload::generate_numeric(cfg);

  // Reference histogram.
  std::map<long, std::uint64_t> ref;
  std::size_t pos = 0;
  while (pos < data.size()) {
    const std::size_t nl = data.find('\n', pos);
    ++ref[std::stol(data.substr(pos, nl - pos))];
    pos = nl + 1;
  }

  apps::HistogramApp app({.lo = 0, .hi = 100, .bins = 100});
  ingest::SingleDeviceSource src(mem(data), std::make_shared<LineFormat>(),
                                 4096);
  core::JobConfig jc;
  jc.num_map_threads = 4;
  jc.num_reduce_threads = 2;
  core::MapReduceJob job(app, src, jc);
  ASSERT_TRUE(job.run(core::ExecMode::kIngestMR).ok());

  EXPECT_EQ(app.values_parsed(), 20000u);
  std::uint64_t total = 0;
  for (std::size_t bin = 0; bin < 100; ++bin) {
    const auto it = ref.find(long(bin));
    EXPECT_EQ(app.counts()[bin], it == ref.end() ? 0u : it->second)
        << "bin " << bin;
    total += app.counts()[bin];
  }
  EXPECT_EQ(total, 20000u);
}

TEST(Histogram, TriangularShape) {
  wload::NumericConfig cfg;
  cfg.num_values = 50000;
  cfg.distribution = wload::NumericDistribution::kTriangular;
  const std::string data = wload::generate_numeric(cfg);
  apps::HistogramApp app({.lo = 0, .hi = 256, .bins = 8});
  ingest::SingleDeviceSource src(mem(data), std::make_shared<LineFormat>(),
                                 0);
  core::JobConfig jc;
  jc.num_map_threads = 2;
  jc.num_reduce_threads = 2;
  core::MapReduceJob job(app, src, jc);
  ASSERT_TRUE(job.run(core::ExecMode::kOriginal).ok());
  // Middle bins outnumber edge bins.
  EXPECT_GT(app.counts()[3], app.counts()[0] * 2);
  EXPECT_GT(app.counts()[4], app.counts()[7] * 2);
}

TEST(Histogram, OutOfRangeAndMalformedDropped) {
  const std::string data = "5\n500\n-3\nnotanumber\n7\n";
  apps::HistogramApp app({.lo = 0, .hi = 10, .bins = 10});
  ingest::SingleDeviceSource src(mem(data), std::make_shared<LineFormat>(),
                                 0);
  core::JobConfig jc;
  jc.num_map_threads = 1;
  jc.num_reduce_threads = 1;
  core::MapReduceJob job(app, src, jc);
  ASSERT_TRUE(job.run(core::ExecMode::kOriginal).ok());
  EXPECT_EQ(app.values_parsed(), 2u);
  EXPECT_EQ(app.values_out_of_range(), 3u);
  EXPECT_EQ(app.counts()[5], 1u);
  EXPECT_EQ(app.counts()[7], 1u);
}

TEST(Histogram, ChunkedEqualsUnchunked) {
  wload::NumericConfig cfg;
  cfg.num_values = 30000;
  const std::string data = wload::generate_numeric(cfg);
  apps::HistogramApp a({.lo = 0, .hi = 256, .bins = 64});
  apps::HistogramApp b({.lo = 0, .hi = 256, .bins = 64});
  core::JobConfig jc;
  jc.num_map_threads = 4;
  jc.num_reduce_threads = 2;
  ingest::SingleDeviceSource src_a(mem(data), std::make_shared<LineFormat>(),
                                   0);
  ingest::SingleDeviceSource src_b(mem(data), std::make_shared<LineFormat>(),
                                   7001);
  core::MapReduceJob ja(a, src_a, jc), jb(b, src_b, jc);
  ASSERT_TRUE(ja.run(core::ExecMode::kOriginal).ok());
  ASSERT_TRUE(jb.run(core::ExecMode::kIngestMR).ok());
  EXPECT_EQ(a.counts(), b.counts());
}

}  // namespace
}  // namespace supmr
