// Tests for the iterative/aggregation applications: k-means (iterative
// MapReduce over the persistent-container runtime) and linear regression,
// plus the clustered-points workload generator.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "apps/kmeans.hpp"
#include "apps/linear_regression.hpp"
#include "core/job.hpp"
#include "ingest/record_format.hpp"
#include "ingest/source.hpp"
#include "storage/mem_device.hpp"
#include "wload/numeric.hpp"

namespace supmr::apps {
namespace {

using ingest::LineFormat;
using ingest::SingleDeviceSource;

std::shared_ptr<const storage::Device> mem(std::string s) {
  return std::make_shared<storage::MemDevice>(std::move(s), "m");
}

core::JobConfig small_config() {
  core::JobConfig cfg;
  cfg.num_map_threads = 4;
  cfg.num_reduce_threads = 2;
  return cfg;
}

// ------------------------------------------------------ points generator

TEST(PointsGenerator, EmitsRequestedPoints) {
  wload::PointsConfig cfg;
  cfg.num_points = 500;
  cfg.dim = 3;
  std::vector<std::vector<double>> centers;
  const std::string data = wload::generate_points(cfg, &centers);
  EXPECT_EQ(centers.size(), cfg.clusters);
  std::size_t lines = 0;
  for (char c : data) lines += (c == '\n');
  EXPECT_EQ(lines, 500u);
  // Each line has dim-1 separators.
  const std::size_t first_nl = data.find('\n');
  const std::string first_line = data.substr(0, first_nl);
  EXPECT_EQ(std::count(first_line.begin(), first_line.end(), ' '), 2);
}

TEST(PointsGenerator, CentersAreSeparated) {
  wload::PointsConfig cfg;
  cfg.clusters = 4;
  cfg.spread = 1.0;
  std::vector<std::vector<double>> centers;
  wload::generate_points(cfg, &centers);
  for (std::size_t a = 0; a < centers.size(); ++a) {
    for (std::size_t b = a + 1; b < centers.size(); ++b) {
      double d2 = 0;
      for (std::size_t d = 0; d < cfg.dim; ++d) {
        const double delta = centers[a][d] - centers[b][d];
        d2 += delta * delta;
      }
      EXPECT_GT(std::sqrt(d2), 4.0 * cfg.spread);
    }
  }
}

// --------------------------------------------------------------- k-means

TEST(KMeans, SingleIterationAssignsAllPoints) {
  wload::PointsConfig cfg;
  cfg.num_points = 2000;
  cfg.clusters = 3;
  std::vector<std::vector<double>> centers;
  const std::string data = wload::generate_points(cfg, &centers);
  KMeansApp app({.clusters = 3, .dim = 2}, centers);
  SingleDeviceSource src(mem(data), std::make_shared<LineFormat>(), 16384);
  core::MapReduceJob job(app, src, small_config());
  ASSERT_TRUE(job.run(core::ExecMode::kIngestMR).ok());
  EXPECT_EQ(app.points_assigned(), 2000u);
  EXPECT_EQ(app.new_centroids().size(), 3u);
}

TEST(KMeans, RecoversPlantedCenters) {
  wload::PointsConfig cfg;
  cfg.num_points = 6000;
  cfg.clusters = 4;
  cfg.spread = 1.5;
  cfg.seed = 77;
  std::vector<std::vector<double>> truth;
  const std::string data = wload::generate_points(cfg, &truth);
  SingleDeviceSource src(mem(data), std::make_shared<LineFormat>(), 32768);

  // Start from the true centers perturbed, so label correspondence holds.
  std::vector<std::vector<double>> init = truth;
  for (auto& c : init)
    for (auto& x : c) x += 2.0;

  auto result = run_kmeans(src, small_config(), {.clusters = 4, .dim = 2},
                           init, 30, 1e-4);
  ASSERT_TRUE(result.ok()) << result.status().to_string();
  EXPECT_GT(result->iterations, 1u);
  EXPECT_LT(result->final_shift, 1e-4);
  for (std::size_t c = 0; c < 4; ++c) {
    double d2 = 0;
    for (std::size_t d = 0; d < 2; ++d) {
      const double delta = result->centroids[c][d] - truth[c][d];
      d2 += delta * delta;
    }
    // Sample mean of a blob is within a fraction of its spread.
    EXPECT_LT(std::sqrt(d2), cfg.spread) << "cluster " << c;
  }
}

TEST(KMeans, DeterministicAcrossChunkSizes) {
  wload::PointsConfig cfg;
  cfg.num_points = 3000;
  std::vector<std::vector<double>> centers;
  const std::string data = wload::generate_points(cfg, &centers);
  std::vector<std::vector<std::vector<double>>> outputs;
  for (std::uint64_t chunk : {0ull, 8192ull, 65536ull}) {
    SingleDeviceSource src(mem(data), std::make_shared<LineFormat>(), chunk);
    auto result = run_kmeans(src, small_config(),
                             {.clusters = cfg.clusters, .dim = cfg.dim},
                             centers, 10, 1e-6);
    ASSERT_TRUE(result.ok());
    outputs.push_back(result->centroids);
  }
  for (std::size_t i = 1; i < outputs.size(); ++i) {
    for (std::size_t c = 0; c < cfg.clusters; ++c) {
      for (std::size_t d = 0; d < cfg.dim; ++d) {
        // fp reassociation across chunkings; blobs are well separated so
        // assignments do not flip.
        EXPECT_NEAR(outputs[i][c][d], outputs[0][c][d], 1e-6);
      }
    }
  }
}

TEST(KMeans, EmptyClusterKeepsCentroid) {
  // Two points near origin, one centroid far away: it must not collapse to
  // NaN, it keeps its position.
  const std::string data = "0.0 0.0\n1.0 1.0\n";
  std::vector<std::vector<double>> init = {{0.5, 0.5}, {1000.0, 1000.0}};
  KMeansApp app({.clusters = 2, .dim = 2}, init);
  SingleDeviceSource src(mem(data), std::make_shared<LineFormat>(), 0);
  core::MapReduceJob job(app, src, small_config());
  ASSERT_TRUE(job.run(core::ExecMode::kIngestMR).ok());
  EXPECT_DOUBLE_EQ(app.new_centroids()[1][0], 1000.0);
  EXPECT_NEAR(app.new_centroids()[0][0], 0.5, 1e-12);
}

TEST(KMeans, RejectsWrongCentroidCount) {
  const std::string data = "0 0\n";
  SingleDeviceSource src(mem(data), std::make_shared<LineFormat>(), 0);
  auto result = run_kmeans(src, small_config(), {.clusters = 3, .dim = 2},
                           {{0.0, 0.0}}, 5, 1e-6);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

// ------------------------------------------------------ linear regression

TEST(LinearRegression, RecoversLine) {
  const std::string data = generate_xy(20000, 2.5, -7.0, 0.5, 3);
  LinearRegressionApp app;
  SingleDeviceSource src(mem(data), std::make_shared<LineFormat>(), 32768);
  core::MapReduceJob job(app, src, small_config());
  ASSERT_TRUE(job.run(core::ExecMode::kIngestMR).ok());
  EXPECT_EQ(app.totals().n, 20000u);
  EXPECT_NEAR(app.slope(), 2.5, 0.01);
  EXPECT_NEAR(app.intercept(), -7.0, 0.5);
}

TEST(LinearRegression, NoiseFreeIsExact) {
  const std::string data = generate_xy(100, -1.25, 4.0, 0.0, 4);
  LinearRegressionApp app;
  SingleDeviceSource src(mem(data), std::make_shared<LineFormat>(), 0);
  core::MapReduceJob job(app, src, small_config());
  ASSERT_TRUE(job.run(core::ExecMode::kOriginal).ok());
  EXPECT_NEAR(app.slope(), -1.25, 1e-6);
  EXPECT_NEAR(app.intercept(), 4.0, 1e-3);
}

TEST(LinearRegression, ChunkedEqualsUnchunked) {
  const std::string data = generate_xy(5000, 0.75, 10.0, 1.0, 5);
  LinearRegressionApp a, b;
  SingleDeviceSource src_a(mem(data), std::make_shared<LineFormat>(), 0);
  SingleDeviceSource src_b(mem(data), std::make_shared<LineFormat>(), 4096);
  core::MapReduceJob ja(a, src_a, small_config());
  core::MapReduceJob jb(b, src_b, small_config());
  ASSERT_TRUE(ja.run(core::ExecMode::kOriginal).ok());
  ASSERT_TRUE(jb.run(core::ExecMode::kIngestMR).ok());
  EXPECT_EQ(a.totals().n, b.totals().n);
  // Summation order differs across chunkings; equality is up to fp
  // reassociation error.
  EXPECT_NEAR(a.totals().sx, b.totals().sx, std::abs(a.totals().sx) * 1e-12);
  EXPECT_NEAR(a.totals().sxy, b.totals().sxy,
              std::abs(a.totals().sxy) * 1e-12);
  EXPECT_NEAR(a.slope(), b.slope(), 1e-9);
}

TEST(LinearRegression, MalformedLinesSkipped) {
  const std::string data = "1.0 2.0\ngarbage\n3.0\n2.0 4.0\n";
  LinearRegressionApp app;
  SingleDeviceSource src(mem(data), std::make_shared<LineFormat>(), 0);
  core::MapReduceJob job(app, src, small_config());
  ASSERT_TRUE(job.run(core::ExecMode::kOriginal).ok());
  EXPECT_EQ(app.totals().n, 2u);
  EXPECT_NEAR(app.slope(), 2.0, 1e-9);
}

}  // namespace
}  // namespace apps
