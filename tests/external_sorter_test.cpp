// Tests for the external (spilling) sorter.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>

#include "common/rng.hpp"
#include "merge/external_sorter.hpp"
#include "wload/teragen.hpp"

namespace supmr::merge {
namespace {

ExternalSorterOptions tiny_options(std::uint64_t budget) {
  ExternalSorterOptions opt;
  opt.record_bytes = 100;
  opt.key_bytes = 10;
  opt.memory_budget_bytes = budget;
  opt.spill_dir = ::testing::TempDir();
  opt.merge_read_bytes = 4096;
  return opt;
}

std::string collect_sorted(ExternalSorter& sorter, MergeStats* stats) {
  std::string out;
  auto result = sorter.finish([&](std::span<const char> slab) {
    out.append(slab.data(), slab.size());
    return Status::Ok();
  });
  EXPECT_TRUE(result.ok()) << result.status().to_string();
  if (stats != nullptr && result.ok()) *stats = *result;
  return out;
}

void expect_sorted_records(const std::string& data, std::uint32_t rb,
                           std::uint32_t kb) {
  for (std::size_t r = rb; r < data.size(); r += rb) {
    ASSERT_LE(std::memcmp(data.data() + r - rb, data.data() + r, kb), 0);
  }
}

TEST(ExternalSorter, InMemoryOnlyPath) {
  ThreadPool pool(2);
  ExternalSorter sorter(pool, tiny_options(1 << 20));
  wload::TeraGenConfig cfg;
  cfg.num_records = 500;  // 50 KB << 1 MB budget: no spills
  const std::string input = wload::teragen_to_string(cfg);
  ASSERT_TRUE(sorter.add(std::span<const char>(input.data(), input.size()))
                  .ok());
  EXPECT_EQ(sorter.runs_spilled(), 0u);
  const std::string sorted = collect_sorted(sorter, nullptr);
  ASSERT_EQ(sorted.size(), input.size());
  expect_sorted_records(sorted, 100, 10);
}

TEST(ExternalSorter, SpillsUnderBudgetAndMergesCorrectly) {
  ThreadPool pool(2);
  // 20 KB budget, 200 KB input: ~10 spilled runs.
  ExternalSorter sorter(pool, tiny_options(20000));
  wload::TeraGenConfig cfg;
  cfg.num_records = 2000;
  const std::string input = wload::teragen_to_string(cfg);
  ASSERT_TRUE(sorter.add(std::span<const char>(input.data(), input.size()))
                  .ok());
  EXPECT_GE(sorter.runs_spilled(), 8u);
  MergeStats stats;
  const std::string sorted = collect_sorted(sorter, &stats);
  ASSERT_EQ(sorted.size(), input.size());
  expect_sorted_records(sorted, 100, 10);
  EXPECT_EQ(stats.num_rounds(), 1u);  // single k-way pass
  EXPECT_EQ(stats.total_items_moved(), 2000u);

  // Same multiset of records as the input.
  std::vector<std::string_view> in_recs, out_recs;
  for (std::size_t r = 0; r < input.size(); r += 100) {
    in_recs.emplace_back(input.data() + r, 100);
    out_recs.emplace_back(sorted.data() + r, 100);
  }
  std::sort(in_recs.begin(), in_recs.end());
  std::sort(out_recs.begin(), out_recs.end());
  EXPECT_EQ(in_recs, out_recs);
}

TEST(ExternalSorter, ManySmallAdds) {
  ThreadPool pool(2);
  ExternalSorter sorter(pool, tiny_options(8000));
  wload::TeraGenConfig cfg;
  cfg.num_records = 700;
  const std::string input = wload::teragen_to_string(cfg);
  // One record at a time.
  for (std::size_t r = 0; r < input.size(); r += 100) {
    ASSERT_TRUE(
        sorter.add(std::span<const char>(input.data() + r, 100)).ok());
  }
  EXPECT_EQ(sorter.records_added(), 700u);
  const std::string sorted = collect_sorted(sorter, nullptr);
  ASSERT_EQ(sorted.size(), input.size());
  expect_sorted_records(sorted, 100, 10);
}

TEST(ExternalSorter, AddLargerThanBudget) {
  ThreadPool pool(2);
  ExternalSorter sorter(pool, tiny_options(5000));  // 50 records
  wload::TeraGenConfig cfg;
  cfg.num_records = 1000;  // one add() of 20x the budget
  const std::string input = wload::teragen_to_string(cfg);
  ASSERT_TRUE(sorter.add(std::span<const char>(input.data(), input.size()))
                  .ok());
  const std::string sorted = collect_sorted(sorter, nullptr);
  ASSERT_EQ(sorted.size(), input.size());
  expect_sorted_records(sorted, 100, 10);
}

TEST(ExternalSorter, EmptyInput) {
  ThreadPool pool(2);
  ExternalSorter sorter(pool, tiny_options(10000));
  int sink_calls = 0;
  auto result = sorter.finish([&](std::span<const char>) {
    ++sink_calls;
    return Status::Ok();
  });
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(sink_calls, 0);
}

TEST(ExternalSorter, RejectsTornRecords) {
  ThreadPool pool(2);
  ExternalSorter sorter(pool, tiny_options(10000));
  const std::string bad(150, 'x');
  EXPECT_FALSE(
      sorter.add(std::span<const char>(bad.data(), bad.size())).ok());
}

TEST(ExternalSorter, FinishTwiceRejected) {
  ThreadPool pool(2);
  ExternalSorter sorter(pool, tiny_options(10000));
  auto ok = sorter.finish([](std::span<const char>) { return Status::Ok(); });
  ASSERT_TRUE(ok.ok());
  auto again =
      sorter.finish([](std::span<const char>) { return Status::Ok(); });
  EXPECT_FALSE(again.ok());
  EXPECT_EQ(again.status().code(), StatusCode::kFailedPrecondition);
}

TEST(ExternalSorter, SinkErrorPropagates) {
  ThreadPool pool(2);
  ExternalSorter sorter(pool, tiny_options(4000));
  wload::TeraGenConfig cfg;
  cfg.num_records = 500;
  const std::string input = wload::teragen_to_string(cfg);
  ASSERT_TRUE(sorter.add(std::span<const char>(input.data(), input.size()))
                  .ok());
  auto result = sorter.finish(
      [](std::span<const char>) { return Status::Internal("sink full"); });
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInternal);
}

class ExternalSorterProperty
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(ExternalSorterProperty, SortsRandomSizesAndBudgets) {
  const auto [records, budget_records] = GetParam();
  ThreadPool pool(3);
  ExternalSorter sorter(pool, tiny_options(budget_records * 100));
  wload::TeraGenConfig cfg;
  cfg.num_records = records;
  cfg.seed = records * 31 + budget_records;
  const std::string input = wload::teragen_to_string(cfg);
  ASSERT_TRUE(sorter.add(std::span<const char>(input.data(), input.size()))
                  .ok());
  const std::string sorted = collect_sorted(sorter, nullptr);
  ASSERT_EQ(sorted.size(), input.size());
  expect_sorted_records(sorted, 100, 10);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, ExternalSorterProperty,
    ::testing::Combine(::testing::Values(1, 16, 100, 1777),
                       ::testing::Values(16, 50, 333)));

}  // namespace
}  // namespace supmr::merge
