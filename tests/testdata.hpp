// Shared synthetic dataset generators for tests and benches.
//
// Every generator is seeded and deterministic (Xoshiro256 from common/rng —
// no std::random device, no time): the differential merge suite
// (tests/merge_differential_test.cpp), the splitter property suite, and the
// micro benches (bench/micro_merge.cpp) all draw byte-identical inputs from
// here, so a bench regression can be replayed as a unit test with the same
// data and vice versa.
#pragma once

#include <cstdint>
#include <cstring>
#include <numeric>
#include <string>
#include <vector>

#include "common/rng.hpp"

namespace supmr::testdata {

inline std::vector<std::uint64_t> random_u64(std::size_t n,
                                             std::uint64_t seed) {
  Xoshiro256 rng(seed);
  std::vector<std::uint64_t> v(n);
  for (auto& x : v) x = rng();
  return v;
}

inline std::vector<int> random_ints(std::size_t n, std::uint64_t seed,
                                    std::uint64_t range = 1000000) {
  Xoshiro256 rng(seed);
  std::vector<int> v(n);
  for (auto& x : v) x = static_cast<int>(rng.uniform(range));
  return v;
}

inline std::vector<int> all_equal(std::size_t n, int value = 7) {
  return std::vector<int>(n, value);
}

inline std::vector<int> presorted(std::size_t n) {
  std::vector<int> v(n);
  std::iota(v.begin(), v.end(), 0);
  return v;
}

inline std::vector<int> reverse_sorted(std::size_t n) {
  std::vector<int> v(n);
  std::iota(v.rbegin(), v.rend(), 0);
  return v;
}

// Very few distinct values: stresses equal-key handling in splitters,
// partition boundaries, and comparator tie paths.
inline std::vector<int> duplicate_heavy(std::size_t n, std::uint64_t seed,
                                        std::uint64_t distinct = 4) {
  return random_ints(n, seed, distinct);
}

// Ascends then descends: adversarial for naive quicksort pivot choices.
inline std::vector<int> organ_pipe(std::size_t n) {
  std::vector<int> v;
  v.reserve(n);
  for (std::size_t i = 0; i < n / 2; ++i) v.push_back(static_cast<int>(i));
  for (std::size_t i = n - n / 2; i > 0; --i)
    v.push_back(static_cast<int>(i));
  return v;
}

// Fixed-width records with a random binary key prefix — the TeraSort shape.
// Payload bytes are deterministic filler; the final two bytes are "\r\n" so
// CrlfFormat-style validation passes when record_bytes >= key_bytes + 2.
inline std::string random_records(std::size_t num_records,
                                  std::size_t record_bytes,
                                  std::size_t key_bytes, std::uint64_t seed) {
  Xoshiro256 rng(seed);
  std::string data(num_records * record_bytes, 'x');
  for (std::size_t r = 0; r < num_records; ++r) {
    char* rec = data.data() + r * record_bytes;
    for (std::size_t k = 0; k < key_bytes; ++k)
      rec[k] = static_cast<char>(rng.uniform(256));
    if (record_bytes >= key_bytes + 2) {
      rec[record_bytes - 2] = '\r';
      rec[record_bytes - 1] = '\n';
    }
  }
  return data;
}

// Zipf-weighted key stream, the word-count-like container workload: a pool
// of `distinct` short string keys and `n` draws from a Zipf(s) sampler over
// it — mostly combines on hot keys, few inserts. Returned as indices into
// the key pool so callers keep pointer stability over their own key vector.
inline std::vector<std::string> key_pool(std::size_t distinct) {
  std::vector<std::string> keys;
  keys.reserve(distinct);
  for (std::size_t i = 0; i < distinct; ++i)
    keys.push_back("w" + std::to_string(i));
  return keys;
}

inline std::vector<std::size_t> zipf_stream(std::size_t n,
                                            std::size_t distinct,
                                            std::uint64_t seed,
                                            double s = 1.0) {
  Xoshiro256 rng(seed);
  ZipfSampler zipf(s, distinct);
  std::vector<std::size_t> stream(n);
  for (auto& i : stream) i = zipf(rng);
  return stream;
}

// The adversarial int corpus the differential suite runs every merge
// backend against. Sizes deliberately include 0/1/2-element inputs and
// non-powers of two; contents cover the comparator tie and ordering edge
// cases. Deterministic in `seed`.
struct NamedInts {
  std::string name;
  std::vector<int> data;
};

inline std::vector<NamedInts> adversarial_int_datasets(std::uint64_t seed) {
  std::vector<NamedInts> sets;
  sets.push_back({"empty", {}});
  sets.push_back({"single", {42}});
  sets.push_back({"two_sorted", {1, 2}});
  sets.push_back({"two_reversed", {2, 1}});
  sets.push_back({"all_equal", all_equal(5000)});
  sets.push_back({"presorted", presorted(4096)});
  sets.push_back({"reverse_sorted", reverse_sorted(4095)});
  sets.push_back({"duplicate_heavy", duplicate_heavy(20000, seed)});
  sets.push_back({"organ_pipe", organ_pipe(10000)});
  sets.push_back({"random_small", random_ints(23, seed + 1)});
  sets.push_back({"random_large", random_ints(100000, seed + 2)});
  return sets;
}

}  // namespace supmr::testdata
