// Differential lattice for the chained graph apps (docs/graphs.md): every
// chain (pmi, tfidf, msort) runs across the mode × merge × io cross — the
// stage geometry axes — and across the handoff axis (in-memory edges, file
// edges, and a 1-byte budget that forces every edge to spill), and each
// cell's sink output must be byte-equal to ref::run_graph. A diverging cell
// writes a self-contained repro spec replayable with `supmr graph --spec=`
// (or `supmr replay`).
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "tests/harness/harness_util.hpp"

namespace supmr::harness {
namespace {

struct Axis {
  core::ExecMode mode;
  core::MergeMode merge;
  core::IoMode io;
};

// No adaptive rung: graph stages run without an adaptive controller (the
// conformance router rejects such cells by design).
std::vector<Axis> stage_cross() {
  std::vector<Axis> axes;
  for (core::ExecMode mode :
       {core::ExecMode::kOriginal, core::ExecMode::kIngestMR}) {
    for (core::MergeMode merge : {core::MergeMode::kPairwise,
                                  core::MergeMode::kPWay,
                                  core::MergeMode::kPartitioned}) {
      for (core::IoMode io : {core::IoMode::kRead, core::IoMode::kMmap}) {
        axes.push_back({mode, merge, io});
      }
    }
  }
  return axes;
}

void run_graph_lattice(const core::ReplaySpec& base,
                       const std::string& app_label) {
  for (const Axis& axis : stage_cross()) {
    core::ReplaySpec spec = base;
    spec.mode = axis.mode;
    spec.merge_mode = axis.merge;
    spec.io = axis.io;
    spec.merge_partitions =
        axis.merge == core::MergeMode::kPartitioned ? 5 : 0;
    expect_cell(spec, app_label + "-" +
                          std::string(core::exec_mode_name(axis.mode)) + "-" +
                          std::string(core::merge_mode_name(axis.merge)) +
                          "-" + std::string(core::io_mode_name(axis.io)));
  }
}

// The handoff axis at the default stage geometry: memory edges, file edges,
// and a forced spill (1-byte budget, so every interior payload spills). The
// forced-spill cell additionally asserts the executor really took the spill
// path — a silently-in-memory "spill" cell would prove nothing.
void run_handoff_axis(const core::ReplaySpec& base,
                      const std::string& app_label) {
  {
    core::ReplaySpec spec = base;
    spec.graph_handoff = core::GraphHandoff::kFile;
    expect_cell(spec, app_label + "-handoff-file");
  }
  {
    core::ReplaySpec spec = base;
    spec.graph_budget = 1;
    auto outcome = ref::run_cell(spec);
    ASSERT_TRUE(outcome.ok())
        << app_label << "-forced-spill: " << outcome.status().to_string();
    EXPECT_GT(outcome->graph_spill_files, 0u)
        << app_label << "-forced-spill: budget=1 cell never spilled";
    if (!outcome->match) {
      auto path =
          ref::write_repro(spec, repro_dir(),
                           sanitize(app_label + "-forced-spill"));
      ADD_FAILURE() << app_label
                    << "-forced-spill diverged from the reference:\n"
                    << outcome->diff << "\nreproduce with: supmr replay "
                    << (path.ok() ? *path
                                  : "<repro write failed: " +
                                        path.status().to_string() + ">");
    }
  }
}

TEST(GraphConformanceLattice, Pmi) {
  run_graph_lattice(spec_pmi(31), "pmi");
  run_handoff_axis(spec_pmi(32), "pmi");
}

TEST(GraphConformanceLattice, TfIdf) {
  run_graph_lattice(spec_tfidf(33), "tfidf");
  run_handoff_axis(spec_tfidf(34), "tfidf");
}

TEST(GraphConformanceLattice, MultiRoundSort) {
  run_graph_lattice(spec_msort(35), "msort");
  run_handoff_axis(spec_msort(36), "msort");
}

TEST(GraphConformanceLattice, MsortMapTimePartitionedStages) {
  // Map-time partitioned TeraSort inside a chain: the SUT sort stage routes
  // records into per-partition buckets during map, while the oracle twin
  // rebuilds the chain with the flat container — same bytes required.
  core::ReplaySpec spec = spec_msort(37);
  spec.app_partitions = 4;
  spec.merge_mode = core::MergeMode::kPartitioned;
  spec.merge_partitions = 4;
  expect_cell(spec, "msort-mapdist-partitioned");
}

}  // namespace
}  // namespace supmr::harness
