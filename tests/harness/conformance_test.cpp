// Differential conformance lattice (docs/testing.md): every application runs
// across ExecMode × MergeMode × container/partitioning × thread/chunk axes on
// seeded corpora, and each cell's canonicalized output must be byte-equal to
// the sequential reference runtime (src/ref/). A diverging cell writes a
// self-contained repro spec replayable with `supmr replay <file>`.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "tests/harness/harness_util.hpp"

namespace supmr::harness {
namespace {

struct Axis {
  core::ExecMode mode;
  core::MergeMode merge;
  core::IoMode io;
};

// The mode × merge × io cross. Partitioned merge gets merge_partitions=5
// (odd, different from the thread count, so stripes and waves never line up
// by accident). The io axis runs every cell twice: once over copying reads
// and once over borrowed zero-copy views (MemDevice lends views like
// MmapDevice, so io=mmap cells carry borrowed spans into the map tasks).
// The adaptive pipeline reads through the device directly and has no view
// path, so its mmap cells still exercise the "configured but unavailable"
// fallback.
std::vector<Axis> mode_merge_cross() {
  std::vector<Axis> axes;
  for (core::ExecMode mode : {core::ExecMode::kOriginal,
                              core::ExecMode::kIngestMR,
                              core::ExecMode::kAdaptive}) {
    for (core::MergeMode merge : {core::MergeMode::kPairwise,
                                  core::MergeMode::kPWay,
                                  core::MergeMode::kPartitioned}) {
      for (core::IoMode io : {core::IoMode::kRead, core::IoMode::kMmap}) {
        axes.push_back({mode, merge, io});
      }
    }
  }
  return axes;
}

void run_lattice(core::ReplaySpec base, const std::string& app_label,
                 bool single_device) {
  for (const Axis& axis : mode_merge_cross()) {
    if (!single_device && axis.mode == core::ExecMode::kAdaptive) {
      continue;  // adaptive pipeline drives one device end-to-end
    }
    core::ReplaySpec spec = base;
    spec.mode = axis.mode;
    spec.merge_mode = axis.merge;
    spec.io = axis.io;
    spec.merge_partitions =
        axis.merge == core::MergeMode::kPartitioned ? 5 : 0;
    expect_cell(spec, app_label + "-" +
                          std::string(core::exec_mode_name(axis.mode)) + "-" +
                          std::string(core::merge_mode_name(axis.merge)) +
                          "-" + std::string(core::io_mode_name(axis.io)));
  }
}

TEST(ConformanceLattice, WordCount) {
  run_lattice(spec_wordcount(1), "wordcount", /*single_device=*/true);
}

TEST(ConformanceLattice, ExternalWordCount) {
  // Spilling container: with a 16KB budget over a 160KB corpus every stripe
  // spills and re-merges, yet the bytes must match the in-memory oracle.
  run_lattice(spec_xwordcount(2), "xwordcount", /*single_device=*/true);
}

TEST(ConformanceLattice, Grep) {
  run_lattice(spec_grep(3), "grep", /*single_device=*/true);
}

TEST(ConformanceLattice, Histogram) {
  run_lattice(spec_histogram(4), "histogram", /*single_device=*/true);
}

TEST(ConformanceLattice, SortFlat) {
  run_lattice(spec_sort(5), "sort-flat", /*single_device=*/true);
}

TEST(ConformanceLattice, SortMapTimePartitioned) {
  // Map-time partitioned container (TeraSortApp partitioned()): records are
  // routed into per-partition buckets during map, merged by
  // merge_partitioned. Only meaningful under the partitioned merge plan.
  core::ReplaySpec base = spec_sort(6);
  base.app_partitions = 4;
  base.merge_mode = core::MergeMode::kPartitioned;
  base.merge_partitions = 4;
  for (core::ExecMode mode : {core::ExecMode::kOriginal,
                              core::ExecMode::kIngestMR,
                              core::ExecMode::kAdaptive}) {
    core::ReplaySpec spec = base;
    spec.mode = mode;
    expect_cell(spec, "sort-mapdist-" +
                          std::string(core::exec_mode_name(mode)) +
                          "-partitioned");
  }
}

TEST(ConformanceLattice, InvertedIndex) {
  run_lattice(spec_index(7), "index", /*single_device=*/false);
}

TEST(ConformanceLattice, PairCount) {
  run_lattice(spec_paircount(15), "paircount", /*single_device=*/true);
}

TEST(ConformanceLattice, DocTermCount) {
  run_lattice(spec_doctermcount(16), "doctermcount", /*single_device=*/false);
}

// container=combining axis: every combiner-declaring app re-runs the full
// mode × merge × io cross with the in-mapper combining container on the SUT
// side only — the oracle twin always runs the app's default container, so a
// byte match proves the fold is semantically invisible. Fresh salts keep
// these corpora independent of the default-container lattices above.
void run_combining_lattice(core::ReplaySpec base, const std::string& app_label,
                           bool single_device) {
  base.container = core::ContainerMode::kCombining;
  run_lattice(std::move(base), app_label + "-combining", single_device);
}

TEST(ConformanceLattice, WordCountCombining) {
  run_combining_lattice(spec_wordcount(30), "wordcount",
                        /*single_device=*/true);
}

TEST(ConformanceLattice, HistogramCombining) {
  run_combining_lattice(spec_histogram(31), "histogram",
                        /*single_device=*/true);
}

TEST(ConformanceLattice, InvertedIndexCombining) {
  // AppendCombiner: posting lists concatenate per key instead of folding to
  // a scalar, so ordering within a stripe must survive the fold.
  run_combining_lattice(spec_index(32), "index", /*single_device=*/false);
}

TEST(ConformanceLattice, PairCountCombining) {
  run_combining_lattice(spec_paircount(33), "paircount",
                        /*single_device=*/true);
}

TEST(ConformanceLattice, DocTermCountCombining) {
  run_combining_lattice(spec_doctermcount(34), "doctermcount",
                        /*single_device=*/false);
}

TEST(ConformanceLattice, CombiningThreadAxis) {
  // Thread sweep with the fold on: stripe count changes, bytes must not.
  for (int threads : {1, 2, 5}) {
    core::ReplaySpec spec = spec_wordcount(35);
    spec.container = core::ContainerMode::kCombining;
    spec.mode = core::ExecMode::kIngestMR;
    spec.merge_mode = core::MergeMode::kPWay;
    spec.threads = threads;
    expect_cell(spec,
                "wordcount-combining-threads-" + std::to_string(threads));
  }
}

// Axis sweeps beyond the mode × merge cross: thread count, chunk size, and
// partition fan-out each get their own pass on the supmr mode.
TEST(ConformanceLattice, ThreadAxis) {
  for (int threads : {1, 2, 5}) {
    core::ReplaySpec spec = spec_wordcount(8);
    spec.mode = core::ExecMode::kIngestMR;
    spec.merge_mode = core::MergeMode::kPWay;
    spec.threads = threads;
    expect_cell(spec, "wordcount-threads-" + std::to_string(threads));

    core::ReplaySpec sort = spec_sort(9);
    sort.mode = core::ExecMode::kIngestMR;
    sort.merge_mode = core::MergeMode::kPartitioned;
    sort.merge_partitions = 5;
    sort.threads = threads;
    expect_cell(sort, "sort-threads-" + std::to_string(threads));
  }
}

TEST(ConformanceLattice, ChunkAxis) {
  // chunk_bytes=0 is the single-chunk path (whole input in one extent).
  for (std::size_t chunk : {std::size_t(0), std::size_t(8) * 1024,
                            std::size_t(48) * 1024}) {
    core::ReplaySpec spec = spec_histogram(10);
    spec.mode = core::ExecMode::kIngestMR;
    spec.merge_mode = core::MergeMode::kPWay;
    spec.chunk_bytes = chunk;
    expect_cell(spec, "histogram-chunk-" + std::to_string(chunk));
  }
}

TEST(ConformanceLattice, PartitionAxis) {
  for (std::size_t parts : {std::size_t(1), std::size_t(2), std::size_t(9)}) {
    core::ReplaySpec spec = spec_sort(11);
    spec.mode = core::ExecMode::kIngestMR;
    spec.merge_mode = core::MergeMode::kPartitioned;
    spec.merge_partitions = parts;
    expect_cell(spec, "sort-partitions-" + std::to_string(parts));
  }
}

TEST(ConformanceLattice, MmapFaultFallback) {
  // io=mmap with a fault plan: the FaultDevice/RetryingDevice wrappers do
  // not lend views, so every chunk silently falls back to retried copying
  // reads — the output must still match the clean oracle byte for byte.
  core::ReplaySpec spec = spec_wordcount(13);
  spec.mode = core::ExecMode::kIngestMR;
  spec.merge_mode = core::MergeMode::kPWay;
  spec.io = core::IoMode::kMmap;
  spec.chunk_bytes = 32 * 1024;
  spec.fault_plan = "seed=11;transient=0.05";
  spec.retry_attempts = 8;
  expect_cell(spec, "wordcount-mmap-fault-fallback");
}

TEST(ConformanceLattice, MmapChunkAxis) {
  // Borrowed views across the chunk-size sweep, including the whole-input
  // single-view cell (chunk_bytes=0).
  for (std::size_t chunk : {std::size_t(0), std::size_t(8) * 1024,
                            std::size_t(48) * 1024}) {
    core::ReplaySpec spec = spec_sort(14);
    spec.mode = core::ExecMode::kIngestMR;
    spec.merge_mode = core::MergeMode::kPWay;
    spec.io = core::IoMode::kMmap;
    spec.chunk_bytes = chunk;
    expect_cell(spec, "sort-mmap-chunk-" + std::to_string(chunk));
  }
}

TEST(ConformanceLattice, RetryAbsorbsTransientFaults) {
  // A low-rate transient fault plan under a generous retry budget must be
  // invisible in the output: same bytes as the clean reference.
  core::ReplaySpec spec = spec_wordcount(12);
  spec.mode = core::ExecMode::kIngestMR;
  spec.merge_mode = core::MergeMode::kPWay;
  spec.chunk_bytes = 32 * 1024;
  spec.fault_plan = "seed=7;transient=0.05";
  spec.retry_attempts = 8;
  expect_cell(spec, "wordcount-transient-retry");
}

}  // namespace
}  // namespace supmr::harness
