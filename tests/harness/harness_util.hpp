// Shared plumbing for the e2e conformance harness (docs/testing.md).
//
// Seed discipline: every corpus seed derives from SUPMR_HARNESS_SEED (CI
// rolls a fresh one per run; unset = a fixed default so local runs are
// stable). When a cell diverges, expect_cell() writes a self-contained
// ReplaySpec JSON — into SUPMR_HARNESS_REPRO_DIR when set — and the failure
// message prints the exact `supmr replay` invocation that reproduces it.
#pragma once

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <string>

#include "core/replay.hpp"
#include "ref/conformance.hpp"

namespace supmr::harness {

inline std::uint64_t harness_seed() {
  static const std::uint64_t seed = [] {
    const char* s = std::getenv("SUPMR_HARNESS_SEED");
    std::uint64_t v = 0x5eedc0deULL;
    if (s != nullptr && *s != '\0') v = std::strtoull(s, nullptr, 10);
    std::fprintf(stderr,
                 "harness: corpus seeds derive from SUPMR_HARNESS_SEED=%llu\n",
                 (unsigned long long)v);
    return v;
  }();
  return seed;
}

inline std::string repro_dir() {
  const char* d = std::getenv("SUPMR_HARNESS_REPRO_DIR");
  return d == nullptr ? "" : d;
}

inline std::string sanitize(const std::string& name) {
  std::string out;
  for (char c : name) {
    out += (std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '-' ||
            c == '_')
               ? c
               : '-';
  }
  return out;
}

// Runs one differential cell; on divergence writes the repro spec and fails
// the test with the replay command line.
inline void expect_cell(const core::ReplaySpec& spec,
                        const std::string& cell_name) {
  auto outcome = ref::run_cell(spec);
  ASSERT_TRUE(outcome.ok())
      << cell_name << ": " << outcome.status().to_string();
  if (outcome->match) return;
  auto path = ref::write_repro(spec, repro_dir(), sanitize(cell_name));
  ADD_FAILURE() << cell_name << " diverged from the reference runtime:\n"
                << outcome->diff << "\nreproduce with: supmr replay "
                << (path.ok() ? *path
                              : "<repro write failed: " +
                                    path.status().to_string() + ">");
}

// Base specs per app, all corpus seeds derived from the harness seed.
inline core::ReplaySpec spec_wordcount(std::uint64_t salt = 0) {
  core::ReplaySpec s;
  s.app = "wordcount";
  s.corpus.kind = "text";
  s.corpus.bytes = 160 * 1024;
  s.corpus.seed = harness_seed() + salt;
  s.threads = 3;
  s.chunk_bytes = 16 * 1024;
  return s;
}

inline core::ReplaySpec spec_xwordcount(std::uint64_t salt = 0) {
  core::ReplaySpec s = spec_wordcount(salt);
  s.app = "xwordcount";
  s.memory_budget = 16 * 1024;  // small enough that stripes really spill
  return s;
}

inline core::ReplaySpec spec_grep(std::uint64_t salt = 0) {
  core::ReplaySpec s = spec_wordcount(salt);
  s.app = "grep";
  s.grep_patterns = "th,he,in,ab,zzqq";
  return s;
}

inline core::ReplaySpec spec_histogram(std::uint64_t salt = 0) {
  core::ReplaySpec s;
  s.app = "histogram";
  s.corpus.kind = "numeric";
  s.corpus.bytes = 120 * 1024;
  s.corpus.seed = harness_seed() + salt;
  s.hist_lo = 0;
  s.hist_hi = 256;
  s.hist_bins = 32;
  s.threads = 3;
  s.chunk_bytes = 16 * 1024;
  return s;
}

inline core::ReplaySpec spec_paircount(std::uint64_t salt = 0) {
  core::ReplaySpec s = spec_wordcount(salt);
  s.app = "paircount";
  s.corpus.bytes = 96 * 1024;  // bigram keys fan out harder than words
  return s;
}

inline core::ReplaySpec spec_sort(std::uint64_t salt = 0) {
  core::ReplaySpec s;
  s.app = "sort";
  s.corpus.kind = "terasort";
  s.corpus.bytes = 120 * 1024;  // 1200 records of 100 bytes
  s.corpus.seed = harness_seed() + salt;
  s.threads = 3;
  s.chunk_bytes = 16 * 1024;
  return s;
}

inline core::ReplaySpec spec_index(std::uint64_t salt = 0) {
  core::ReplaySpec s;
  s.app = "index";
  s.corpus.kind = "multi-text";
  s.corpus.bytes = 96 * 1024;
  s.corpus.num_files = 8;
  s.corpus.seed = harness_seed() + salt;
  s.threads = 3;
  s.files_per_chunk = 3;
  return s;
}

inline core::ReplaySpec spec_doctermcount(std::uint64_t salt = 0) {
  core::ReplaySpec s = spec_index(salt);
  s.app = "doctermcount";
  return s;
}

// Chained graph apps (docs/graphs.md): the cell's mode/merge/io/thread axes
// apply to EVERY stage, and graph_handoff/graph_budget steer the edge
// handoff policy.
inline core::ReplaySpec spec_pmi(std::uint64_t salt = 0) {
  core::ReplaySpec s = spec_wordcount(salt);
  s.app = "pmi";
  s.corpus.bytes = 96 * 1024;
  return s;
}

inline core::ReplaySpec spec_tfidf(std::uint64_t salt = 0) {
  core::ReplaySpec s = spec_index(salt);
  s.app = "tfidf";
  return s;
}

inline core::ReplaySpec spec_msort(std::uint64_t salt = 0) {
  core::ReplaySpec s = spec_sort(salt);
  s.app = "msort";
  s.corpus.bytes = 80 * 1024;  // 800 records of 100 bytes
  s.chunk_bytes = 100 * 80;    // record-aligned chunks -> several rounds
  return s;
}

}  // namespace supmr::harness
