// Managed-job conformance (docs/testing.md, docs/runtime.md): a job
// submitted through the JobManager — shared thread pool, shared chunk
// buffers, lease-rewritten thread counts — must stay byte-identical to the
// sequential reference runtime, both alone and while at least three other
// jobs race it on the same manager. A diverging cell writes the standard
// replayable repro spec.
#include <gtest/gtest.h>

#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "runtime/job_manager.hpp"
#include "tests/harness/harness_util.hpp"

namespace supmr::harness {
namespace {

// Thread-safe expect_cell variant: gtest assertions are not safe off the
// main thread, so workers append failure text and the test asserts after
// joining. On divergence the repro spec is written exactly like
// expect_cell's.
void check_managed_cell(const core::ReplaySpec& spec,
                        runtime::JobManager& manager,
                        const std::string& cell_name, int priority,
                        std::mutex& mu, std::vector<std::string>& failures) {
  ref::ManagedCellOptions opts;
  opts.priority = priority;
  opts.name = cell_name;
  auto outcome = ref::run_cell_managed(spec, manager, opts);
  std::string failure;
  if (!outcome.ok()) {
    failure = cell_name + ": " + outcome.status().to_string();
  } else if (!outcome->match) {
    auto path = ref::write_repro(spec, repro_dir(), sanitize(cell_name));
    failure = cell_name + " diverged from the reference runtime:\n" +
              outcome->diff + "\nreproduce with: supmr replay " +
              (path.ok() ? *path
                         : "<repro write failed: " +
                               path.status().to_string() + ">");
  }
  if (!failure.empty()) {
    std::lock_guard<std::mutex> lock(mu);
    failures.push_back(std::move(failure));
  }
}

runtime::JobManager::Options manager_options() {
  runtime::JobManager::Options opts;
  opts.num_threads = 4;
  opts.memory_budget_bytes = 512ull << 20;
  return opts;
}

TEST(ManagedConformance, ManagedJobAloneMatchesReference) {
  runtime::JobManager manager(manager_options());
  std::mutex mu;
  std::vector<std::string> failures;
  std::size_t salt = 0;
  for (auto make : {spec_wordcount, spec_grep, spec_histogram, spec_sort}) {
    core::ReplaySpec spec = make(salt++);
    check_managed_cell(spec, manager,
                       "managed-alone-" + spec.app, /*priority=*/0, mu,
                       failures);
  }
  manager.drain();
  for (const std::string& f : failures) ADD_FAILURE() << f;
  EXPECT_EQ(manager.threads_leased(), 0u);
  EXPECT_EQ(manager.memory_leased_bytes(), 0u);
}

TEST(ManagedConformance, ManagedJobRacingBackgroundJobsMatchesReference) {
  runtime::JobManager manager(manager_options());
  std::mutex mu;
  std::vector<std::string> failures;

  // Three background tenants hammer the manager while the foreground cell
  // runs: different apps, different corpora, mixed priorities — maximum
  // opportunity for cross-job contamination through the shared pool and
  // chunk buffers.
  std::vector<std::thread> background;
  const std::vector<core::ReplaySpec> bg_specs = {
      spec_grep(101), spec_histogram(102), spec_wordcount(103)};
  for (std::size_t i = 0; i < bg_specs.size(); ++i) {
    background.emplace_back([&, i] {
      for (int round = 0; round < 2; ++round) {
        core::ReplaySpec spec = bg_specs[i];
        spec.corpus.seed += static_cast<std::uint64_t>(round) * 1000;
        check_managed_cell(spec, manager,
                           "managed-bg-" + spec.app + "-r" +
                               std::to_string(round),
                           static_cast<int>(i), mu, failures);
      }
    });
  }

  core::ReplaySpec foreground = spec_sort(200);
  foreground.merge_mode = core::MergeMode::kPartitioned;
  foreground.merge_partitions = 5;
  check_managed_cell(foreground, manager, "managed-fg-sort", /*priority=*/2,
                     mu, failures);

  for (std::thread& t : background) t.join();
  manager.drain();
  for (const std::string& f : failures) ADD_FAILURE() << f;
  EXPECT_EQ(manager.threads_leased(), 0u);
  EXPECT_EQ(manager.running_jobs(), 0u);
}

}  // namespace
}  // namespace supmr::harness
