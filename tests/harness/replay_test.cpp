// ReplaySpec round-trip and replay-path tests: the repro file a diverging
// harness cell writes must parse back into the identical cell, malformed or
// drifted files must fail loudly, and a written repro must deterministically
// re-run its cell (the contract `supmr replay` relies on).
#include <gtest/gtest.h>

#include <fstream>
#include <string>

#include "core/replay.hpp"
#include "ref/conformance.hpp"
#include "tests/harness/harness_util.hpp"

namespace supmr::harness {
namespace {

core::ReplaySpec non_default_spec() {
  core::ReplaySpec s;
  s.app = "sort";
  s.corpus.kind = "terasort";
  s.corpus.bytes = 12345;
  s.corpus.seed = 777;
  s.corpus.num_files = 9;
  s.key_bytes = 8;
  s.record_bytes = 64;
  s.app_partitions = 3;
  s.hist_lo = -5;
  s.hist_hi = 300;
  s.hist_bins = 17;
  s.grep_patterns = "ab,cd";
  s.memory_budget = 4096;
  s.mode = core::ExecMode::kAdaptive;
  s.merge_mode = core::MergeMode::kPartitioned;
  s.threads = 7;
  s.merge_partitions = 4;
  s.chunk_bytes = 8192;
  s.files_per_chunk = 2;
  s.degrade = true;
  s.fault_plan = "seed=3;transient=0.01";
  s.retry_attempts = 5;
  return s;
}

void expect_specs_equal(const core::ReplaySpec& a, const core::ReplaySpec& b) {
  EXPECT_EQ(a.app, b.app);
  EXPECT_EQ(a.corpus.kind, b.corpus.kind);
  EXPECT_EQ(a.corpus.bytes, b.corpus.bytes);
  EXPECT_EQ(a.corpus.seed, b.corpus.seed);
  EXPECT_EQ(a.corpus.num_files, b.corpus.num_files);
  EXPECT_EQ(a.key_bytes, b.key_bytes);
  EXPECT_EQ(a.record_bytes, b.record_bytes);
  EXPECT_EQ(a.app_partitions, b.app_partitions);
  EXPECT_EQ(a.hist_lo, b.hist_lo);
  EXPECT_EQ(a.hist_hi, b.hist_hi);
  EXPECT_EQ(a.hist_bins, b.hist_bins);
  EXPECT_EQ(a.grep_patterns, b.grep_patterns);
  EXPECT_EQ(a.memory_budget, b.memory_budget);
  EXPECT_EQ(a.mode, b.mode);
  EXPECT_EQ(a.merge_mode, b.merge_mode);
  EXPECT_EQ(a.threads, b.threads);
  EXPECT_EQ(a.merge_partitions, b.merge_partitions);
  EXPECT_EQ(a.chunk_bytes, b.chunk_bytes);
  EXPECT_EQ(a.files_per_chunk, b.files_per_chunk);
  EXPECT_EQ(a.degrade, b.degrade);
  EXPECT_EQ(a.fault_plan, b.fault_plan);
  EXPECT_EQ(a.retry_attempts, b.retry_attempts);
}

TEST(ReplaySpec, RoundTripNonDefault) {
  const core::ReplaySpec spec = non_default_spec();
  auto parsed = core::ReplaySpec::from_json(spec.to_json());
  ASSERT_TRUE(parsed.ok()) << parsed.status().to_string();
  expect_specs_equal(spec, *parsed);
}

TEST(ReplaySpec, RoundTripDefaults) {
  const core::ReplaySpec spec;
  auto parsed = core::ReplaySpec::from_json(spec.to_json());
  ASSERT_TRUE(parsed.ok()) << parsed.status().to_string();
  expect_specs_equal(spec, *parsed);
}

TEST(ReplaySpec, EnumNamesRoundTrip) {
  for (core::ExecMode m : {core::ExecMode::kOriginal,
                           core::ExecMode::kIngestMR,
                           core::ExecMode::kAdaptive}) {
    auto back = core::exec_mode_from_name(core::exec_mode_name(m));
    ASSERT_TRUE(back.ok());
    EXPECT_EQ(*back, m);
  }
  for (core::MergeMode m : {core::MergeMode::kPairwise,
                            core::MergeMode::kPWay,
                            core::MergeMode::kPartitioned}) {
    auto back = core::merge_mode_from_name(core::merge_mode_name(m));
    ASSERT_TRUE(back.ok());
    EXPECT_EQ(*back, m);
  }
  EXPECT_FALSE(core::exec_mode_from_name("bogus").ok());
  EXPECT_FALSE(core::merge_mode_from_name("bogus").ok());
}

TEST(ReplaySpec, RejectsMalformedInput) {
  // Truncated object.
  EXPECT_FALSE(core::ReplaySpec::from_json("{").ok());
  // Not an object at all.
  EXPECT_FALSE(core::ReplaySpec::from_json("42").ok());
  EXPECT_FALSE(core::ReplaySpec::from_json("").ok());
  // Trailing garbage after a valid object.
  const std::string valid = core::ReplaySpec().to_json();
  EXPECT_FALSE(core::ReplaySpec::from_json(valid + "x").ok());
}

TEST(ReplaySpec, RejectsSchemaDrift) {
  core::ReplaySpec spec;
  std::string json = spec.to_json();

  // Unknown key: a repro file from a newer/older schema must fail loudly,
  // not silently drop fields.
  std::string with_unknown = json;
  with_unknown.insert(with_unknown.find('{') + 1, "\"mystery\": 1, ");
  EXPECT_FALSE(core::ReplaySpec::from_json(with_unknown).ok());

  // Missing key: strip "app" entirely.
  std::string without_app = json;
  const std::size_t app_pos = without_app.find("\"app\"");
  ASSERT_NE(app_pos, std::string::npos);
  const std::size_t comma = without_app.find(',', app_pos);
  ASSERT_NE(comma, std::string::npos);
  without_app.erase(app_pos, comma - app_pos + 1);
  EXPECT_FALSE(core::ReplaySpec::from_json(without_app).ok());

  // Bad enum values and invalid app names.
  auto replaced = [&](const std::string& from, const std::string& to) {
    std::string s = json;
    const std::size_t pos = s.find(from);
    EXPECT_NE(pos, std::string::npos) << from;
    if (pos != std::string::npos) s.replace(pos, from.size(), to);
    return s;
  };
  EXPECT_FALSE(
      core::ReplaySpec::from_json(replaced("\"wordcount\"", "\"nope\"")).ok());
  EXPECT_FALSE(
      core::ReplaySpec::from_json(replaced("\"supmr\"", "\"warp\"")).ok());
  EXPECT_FALSE(
      core::ReplaySpec::from_json(replaced("\"pway\"", "\"psychic\"")).ok());
  EXPECT_FALSE(
      core::ReplaySpec::from_json(replaced("\"threads\":2", "\"threads\":0"))
          .ok());
}

TEST(ReplayPath, WrittenReproReRunsItsCell) {
  // The full loop a CI failure goes through: write the spec, read the file
  // back, parse it, run the cell — and it must run the *same* cell.
  core::ReplaySpec spec = spec_wordcount(40);
  spec.corpus.bytes = 48 * 1024;  // keep the replay cell quick
  spec.mode = core::ExecMode::kIngestMR;
  spec.merge_mode = core::MergeMode::kPWay;

  auto path = ref::write_repro(spec, ::testing::TempDir(), "replay-roundtrip");
  ASSERT_TRUE(path.ok()) << path.status().to_string();

  std::ifstream in(*path, std::ios::binary);
  ASSERT_TRUE(in.good()) << *path;
  std::string text((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  auto parsed = core::ReplaySpec::from_json(text);
  ASSERT_TRUE(parsed.ok()) << parsed.status().to_string();
  expect_specs_equal(spec, *parsed);

  auto outcome = ref::run_cell(*parsed);
  ASSERT_TRUE(outcome.ok()) << outcome.status().to_string();
  EXPECT_TRUE(outcome->match) << outcome->diff;
  EXPECT_GT(outcome->sut_canonical.size(), 0u);
}

TEST(ReplayPath, RunCellGuardsInvalidCells) {
  // index requires the multi-text corpus…
  core::ReplaySpec bad = spec_index(41);
  bad.corpus.kind = "text";
  EXPECT_FALSE(ref::run_cell(bad).ok());
  // …and multi-text is only for index.
  core::ReplaySpec bad2 = spec_wordcount(42);
  bad2.corpus.kind = "multi-text";
  EXPECT_FALSE(ref::run_cell(bad2).ok());
  // Degrade needs the supmr ingest pipeline.
  core::ReplaySpec bad3 = spec_wordcount(43);
  bad3.degrade = true;
  bad3.fault_plan = "permanent=1000-2000";
  bad3.mode = core::ExecMode::kOriginal;
  EXPECT_FALSE(ref::run_cell(bad3).ok());
  // Unknown corpus kind.
  core::ReplaySpec bad4 = spec_wordcount(44);
  bad4.corpus.kind = "noise";
  EXPECT_FALSE(ref::run_cell(bad4).ok());
}

TEST(ReplayPath, DiffSummary) {
  EXPECT_EQ(ref::diff_summary("abc", "abc"), "identical");
  const std::string diff = ref::diff_summary("aaab", "aaac");
  EXPECT_NE(diff.find("byte 3"), std::string::npos) << diff;
  // Length mismatch with equal prefix.
  const std::string tail = ref::diff_summary("aaa", "aaaZZ");
  EXPECT_NE(tail.find("3"), std::string::npos) << tail;
}

}  // namespace
}  // namespace supmr::harness
