// Differential lattice for the sharded-shuffle runtime (docs/cluster.md):
// every app that declares a shard protocol runs across the mode × merge
// axes — the per-node job geometry — and across the node-count axis
// {1, 2, 4}, and each cell's reassembled global output must be byte-equal
// to the sequential oracle over the FULL corpus. A diverging cell writes a
// self-contained repro spec replayable with `supmr cluster --spec=` (or
// `supmr replay`).
//
// Dedicated rows beyond the cross: an adaptive-mode subset, in-mapper
// combining nodes, a throttled fabric (slow NICs + shared uplink — the
// limiters must delay, never corrupt), and a budgeted sort cell that must
// really take the ExternalSorter spill path.
#include <gtest/gtest.h>

#include <functional>
#include <string>
#include <vector>

#include "tests/harness/harness_util.hpp"

namespace supmr::harness {
namespace {

struct Axis {
  core::ExecMode mode;
  core::MergeMode merge;
  std::uint64_t nodes;
};

std::vector<Axis> cluster_cross() {
  std::vector<Axis> axes;
  for (core::ExecMode mode :
       {core::ExecMode::kOriginal, core::ExecMode::kIngestMR}) {
    for (core::MergeMode merge : {core::MergeMode::kPairwise,
                                  core::MergeMode::kPWay,
                                  core::MergeMode::kPartitioned}) {
      for (std::uint64_t nodes : {1, 2, 4}) {
        axes.push_back({mode, merge, nodes});
      }
    }
  }
  return axes;
}

// Runs one cluster cell and returns the outcome (assert-failing the test on
// runner errors); on divergence writes the repro spec like expect_cell.
ref::ConformanceOutcome run_cluster_cell_checked(const core::ReplaySpec& spec,
                                                 const std::string& name) {
  auto outcome = ref::run_cell(spec);
  if (!outcome.ok()) {
    ADD_FAILURE() << name << ": " << outcome.status().to_string();
    return {};
  }
  if (!outcome->match) {
    auto path = ref::write_repro(spec, repro_dir(), sanitize(name));
    ADD_FAILURE() << name << " diverged from the reference runtime:\n"
                  << outcome->diff << "\nreproduce with: supmr replay "
                  << (path.ok() ? *path
                                : "<repro write failed: " +
                                      path.status().to_string() + ">");
  }
  return std::move(outcome).value();
}

// The conservation invariant, checked on every cell alongside the byte
// check: every map-output byte either crossed a node boundary or stayed
// local — nothing is dropped or double-counted by the shuffle.
void expect_conservation(const ref::ConformanceOutcome& outcome,
                         const std::string& name) {
  EXPECT_EQ(outcome.cluster_shuffle_bytes + outcome.cluster_local_bytes,
            outcome.cluster_map_output_bytes)
      << name << ": shuffle + local != map output";
}

void run_cluster_lattice(std::function<core::ReplaySpec(std::uint64_t)> base,
                         const std::string& app_label) {
  std::uint64_t salt = 40;
  for (const Axis& axis : cluster_cross()) {
    core::ReplaySpec spec = base(salt++);
    spec.mode = axis.mode;
    spec.merge_mode = axis.merge;
    spec.merge_partitions =
        axis.merge == core::MergeMode::kPartitioned ? 5 : 0;
    spec.cluster_nodes = axis.nodes;
    const std::string name =
        app_label + "-" + std::string(core::exec_mode_name(axis.mode)) +
        "-" + std::string(core::merge_mode_name(axis.merge)) + "-n" +
        std::to_string(axis.nodes);
    ref::ConformanceOutcome outcome = run_cluster_cell_checked(spec, name);
    expect_conservation(outcome, name);
    EXPECT_EQ(outcome.cluster_nodes, axis.nodes) << name;
    // One node has no one to shuffle to: everything must stay local.
    if (axis.nodes == 1) {
      EXPECT_EQ(outcome.cluster_shuffle_bytes, 0u) << name;
    }
  }
  // Adaptive subset: the controller resizes chunks inside each node's
  // ingest; routing and merge must be unaffected.
  for (std::uint64_t nodes : {2, 4}) {
    core::ReplaySpec spec = base(salt++);
    spec.mode = core::ExecMode::kAdaptive;
    spec.cluster_nodes = nodes;
    const std::string name = app_label + "-adaptive-n" + std::to_string(nodes);
    expect_conservation(run_cluster_cell_checked(spec, name), name);
  }
}

TEST(ClusterConformanceLattice, WordCount) {
  run_cluster_lattice([](std::uint64_t s) { return spec_wordcount(s); },
                      "cluster-wordcount");
}

TEST(ClusterConformanceLattice, ExternalWordCount) {
  run_cluster_lattice([](std::uint64_t s) { return spec_xwordcount(s); },
                      "cluster-xwordcount");
}

TEST(ClusterConformanceLattice, Sort) {
  run_cluster_lattice([](std::uint64_t s) { return spec_sort(s); },
                      "cluster-sort");
}

TEST(ClusterConformanceLattice, Grep) {
  run_cluster_lattice([](std::uint64_t s) { return spec_grep(s); },
                      "cluster-grep");
}

TEST(ClusterConformanceLattice, Histogram) {
  run_cluster_lattice([](std::uint64_t s) { return spec_histogram(s); },
                      "cluster-histogram");
}

TEST(ClusterConformanceLattice, PairCount) {
  run_cluster_lattice([](std::uint64_t s) { return spec_paircount(s); },
                      "cluster-paircount");
}

TEST(ClusterConformanceLattice, CombiningNodes) {
  // In-mapper combining inside each node's map phase — the node canonicals
  // are unchanged by construction, so the shuffle sees identical records.
  for (std::uint64_t nodes : {2, 4}) {
    core::ReplaySpec spec = spec_wordcount(70 + nodes);
    spec.container = core::ContainerMode::kCombining;
    spec.cluster_nodes = nodes;
    const std::string name = "cluster-wordcount-combining-n" +
                             std::to_string(nodes);
    expect_conservation(run_cluster_cell_checked(spec, name), name);
  }
}

TEST(ClusterConformanceLattice, ThrottledFabricIsByteIdentical) {
  // Slow NICs, a shared uplink, and throttled node disks must delay the
  // shuffle, never change it: same bytes as the unthrottled cell.
  core::ReplaySpec spec = spec_wordcount(80);
  spec.cluster_nodes = 4;
  spec.cluster_link_bps = 16u * 1024 * 1024;
  spec.cluster_uplink_bps = 32u * 1024 * 1024;
  spec.cluster_disk_bps = 64u * 1024 * 1024;
  const std::string name = "cluster-wordcount-throttled-n4";
  ref::ConformanceOutcome throttled = run_cluster_cell_checked(spec, name);
  expect_conservation(throttled, name);

  core::ReplaySpec fast = spec;
  fast.cluster_link_bps = 0;
  fast.cluster_uplink_bps = 0;
  fast.cluster_disk_bps = 0;
  ref::ConformanceOutcome unthrottled =
      run_cluster_cell_checked(fast, name + "-fast");
  EXPECT_EQ(throttled.sut_canonical, unthrottled.sut_canonical)
      << "throttling changed the output bytes";
  EXPECT_EQ(throttled.cluster_shuffle_bytes, unthrottled.cluster_shuffle_bytes)
      << "throttling changed the shuffle routing";
}

TEST(ClusterConformanceLattice, BudgetedSortSpills) {
  // A merge budget far below the partition payload forces the owner merges
  // through the ExternalSorter; the cell must both spill and stay
  // byte-identical.
  core::ReplaySpec spec = spec_sort(90);
  spec.cluster_nodes = 2;
  spec.cluster_budget = 4 * 1024;  // 120 KiB corpus across 2 owners
  const std::string name = "cluster-sort-budget-n2";
  ref::ConformanceOutcome outcome = run_cluster_cell_checked(spec, name);
  expect_conservation(outcome, name);
  EXPECT_GT(outcome.cluster_spill_runs, 0u)
      << name << ": budgeted cell never spilled";
}

}  // namespace
}  // namespace supmr::harness
