// Metamorphic layer of the conformance harness (docs/testing.md): instead of
// comparing against an oracle value, these tests assert invariances the
// runtime must satisfy — output independence from chunk size, thread count,
// and partition fan-out; input permutation invariance for commutative apps;
// and degrade-mode output equal to the oracle on the surviving byte ranges.
// Every cell still passes through run_cell(), so each equality here is ALSO
// checked against the sequential reference for free.
#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "tests/harness/harness_util.hpp"

namespace supmr::harness {
namespace {

// Runs a cell and returns its canonical output, asserting reference
// conformance along the way.
std::string cell_output(const core::ReplaySpec& spec,
                        const std::string& name,
                        const std::string* corpus_override = nullptr) {
  auto outcome = ref::run_cell(spec, corpus_override);
  EXPECT_TRUE(outcome.ok()) << name << ": " << outcome.status().to_string();
  if (!outcome.ok()) return {};
  EXPECT_TRUE(outcome->match)
      << name << " diverged from the reference:\n" << outcome->diff;
  return outcome->sut_canonical;
}

TEST(Metamorphic, ChunkSizeIndependence) {
  // Same corpus, same config, different ingest chunking — the output may not
  // depend on where chunk boundaries fall.
  core::ReplaySpec base = spec_wordcount(20);
  base.mode = core::ExecMode::kIngestMR;
  base.merge_mode = core::MergeMode::kPWay;
  std::vector<std::string> outs;
  for (std::size_t chunk : {std::size_t(4) * 1024, std::size_t(16) * 1024,
                            std::size_t(56) * 1024, std::size_t(0)}) {
    core::ReplaySpec spec = base;
    spec.chunk_bytes = chunk;
    outs.push_back(
        cell_output(spec, "wordcount-chunk-" + std::to_string(chunk)));
  }
  for (std::size_t i = 1; i < outs.size(); ++i) {
    EXPECT_EQ(outs[0], outs[i])
        << "wordcount output depends on chunk size (variant " << i << ")";
  }
}

TEST(Metamorphic, ThreadCountIndependence) {
  core::ReplaySpec base = spec_sort(21);
  base.mode = core::ExecMode::kIngestMR;
  base.merge_mode = core::MergeMode::kPWay;
  std::vector<std::string> outs;
  for (int threads : {1, 3, 6}) {
    core::ReplaySpec spec = base;
    spec.threads = threads;
    outs.push_back(cell_output(spec, "sort-threads-" + std::to_string(threads)));
  }
  for (std::size_t i = 1; i < outs.size(); ++i) {
    EXPECT_EQ(outs[0], outs[i])
        << "sort output depends on thread count (variant " << i << ")";
  }
}

TEST(Metamorphic, PartitionCountIndependence) {
  // Partition fan-out is an internal parallelism knob; the concatenated
  // partitions must form the same globally sorted byte string regardless of
  // the splitter count — including the flat non-partitioned plans.
  core::ReplaySpec base = spec_sort(22);
  base.mode = core::ExecMode::kIngestMR;
  std::vector<std::string> outs;
  for (std::size_t parts : {std::size_t(1), std::size_t(3), std::size_t(8)}) {
    core::ReplaySpec spec = base;
    spec.merge_mode = core::MergeMode::kPartitioned;
    spec.merge_partitions = parts;
    outs.push_back(
        cell_output(spec, "sort-partcount-" + std::to_string(parts)));
  }
  {
    core::ReplaySpec spec = base;
    spec.merge_mode = core::MergeMode::kPairwise;
    outs.push_back(cell_output(spec, "sort-partcount-pairwise"));
  }
  for (std::size_t i = 1; i < outs.size(); ++i) {
    EXPECT_EQ(outs[0], outs[i])
        << "sort output depends on partition count (variant " << i << ")";
  }
}

// Fisher-Yates over the corpus's record units with the repo's seeded rng.
std::string permute_units(const std::vector<std::string>& units,
                          std::uint64_t seed) {
  std::vector<std::string> shuffled = units;
  Xoshiro256 rng(seed);
  for (std::size_t i = shuffled.size(); i > 1; --i) {
    std::swap(shuffled[i - 1], shuffled[rng.uniform(i)]);
  }
  std::string out;
  for (const std::string& u : units) out.reserve(out.size() + u.size());
  for (const std::string& u : shuffled) out += u;
  return out;
}

std::vector<std::string> split_lines_keep_newline(const std::string& s) {
  std::vector<std::string> lines;
  std::size_t start = 0;
  while (start < s.size()) {
    std::size_t nl = s.find('\n', start);
    if (nl == std::string::npos) {
      lines.push_back(s.substr(start));
      break;
    }
    lines.push_back(s.substr(start, nl - start + 1));
    start = nl + 1;
  }
  return lines;
}

void check_line_permutation_invariance(core::ReplaySpec spec,
                                       const std::string& label) {
  spec.mode = core::ExecMode::kIngestMR;
  spec.merge_mode = core::MergeMode::kPWay;
  auto corpus = ref::make_corpus(spec);
  ASSERT_TRUE(corpus.ok()) << corpus.status().to_string();
  const std::string permuted =
      permute_units(split_lines_keep_newline(*corpus), harness_seed() ^ 0x9e37);
  ASSERT_EQ(corpus->size(), permuted.size());
  const std::string base_out = cell_output(spec, label + "-original");
  const std::string perm_out =
      cell_output(spec, label + "-permuted", &permuted);
  EXPECT_EQ(base_out, perm_out)
      << label << " output is not invariant under input line permutation";
}

TEST(Metamorphic, WordCountPermutationInvariance) {
  check_line_permutation_invariance(spec_wordcount(23), "wordcount-perm");
}

TEST(Metamorphic, HistogramPermutationInvariance) {
  check_line_permutation_invariance(spec_histogram(24), "histogram-perm");
}

TEST(Metamorphic, GrepPermutationInvariance) {
  // Patterns are matched within lines, so counts are line-permutation
  // invariant by construction.
  check_line_permutation_invariance(spec_grep(25), "grep-perm");
}

TEST(Metamorphic, SortRecordPermutationInvariance) {
  // Sorting is a permutation-erasing operation: shuffling the input records
  // must leave the (canonicalized) sorted output untouched.
  core::ReplaySpec spec = spec_sort(26);
  spec.mode = core::ExecMode::kIngestMR;
  spec.merge_mode = core::MergeMode::kPartitioned;
  spec.merge_partitions = 4;
  auto corpus = ref::make_corpus(spec);
  ASSERT_TRUE(corpus.ok()) << corpus.status().to_string();
  ASSERT_EQ(corpus->size() % spec.record_bytes, 0u);
  std::vector<std::string> records;
  for (std::size_t off = 0; off < corpus->size(); off += spec.record_bytes) {
    records.push_back(corpus->substr(off, spec.record_bytes));
  }
  const std::string permuted = permute_units(records, harness_seed() ^ 0x517);
  const std::string base_out = cell_output(spec, "sort-perm-original");
  const std::string perm_out =
      cell_output(spec, "sort-perm-permuted", &permuted);
  EXPECT_EQ(base_out, perm_out)
      << "sort output is not invariant under record permutation";
}

// Record-doubling metamorphic relation for Sum-combined apps: feeding every
// input line twice must exactly double every count while leaving the key set
// and its canonical ordering untouched. Runs once per container mode — the
// in-mapper combining fold and the default container must satisfy the same
// relation (and each cell is still oracle-checked by run_cell on the way).
void check_doubling_doubles_counts(core::ReplaySpec spec,
                                   const std::string& label) {
  spec.mode = core::ExecMode::kIngestMR;
  spec.merge_mode = core::MergeMode::kPWay;
  auto corpus = ref::make_corpus(spec);
  ASSERT_TRUE(corpus.ok()) << corpus.status().to_string();
  std::string doubled;
  doubled.reserve(corpus->size() * 2);
  for (const std::string& line : split_lines_keep_newline(*corpus)) {
    doubled += line;
    if (line.empty() || line.back() != '\n') doubled += '\n';
    doubled += line;
  }

  auto parse = [](const std::string& out) {
    std::vector<std::pair<std::string, std::uint64_t>> rows;
    for (const std::string& line : split_lines_keep_newline(out)) {
      const std::size_t tab = line.find('\t');
      if (tab == std::string::npos) continue;
      rows.emplace_back(line.substr(0, tab),
                        std::strtoull(line.c_str() + tab + 1, nullptr, 10));
    }
    return rows;
  };
  const auto base = parse(cell_output(spec, label + "-single"));
  const auto twice =
      parse(cell_output(spec, label + "-doubled", &doubled));
  ASSERT_EQ(base.size(), twice.size())
      << label << ": doubling the input changed the key set";
  for (std::size_t i = 0; i < base.size(); ++i) {
    EXPECT_EQ(base[i].first, twice[i].first)
        << label << ": key order changed at row " << i;
    EXPECT_EQ(base[i].second * 2, twice[i].second)
        << label << ": count for '" << base[i].first
        << "' did not exactly double";
  }
}

TEST(Metamorphic, DoublingDoublesCountsDefaultContainer) {
  check_doubling_doubles_counts(spec_wordcount(36), "wordcount-x2-default");
}

TEST(Metamorphic, DoublingDoublesCountsCombiningContainer) {
  core::ReplaySpec spec = spec_wordcount(36);  // same corpus as the default
  spec.container = core::ContainerMode::kCombining;
  check_doubling_doubles_counts(spec, "wordcount-x2-combining");
}

TEST(Metamorphic, DoublingDoublesCountsPairCountCombining) {
  // Bigram keys: the doubled corpus doubles every within-line pair without
  // creating cross-boundary pairs (pairs never span lines).
  core::ReplaySpec spec = spec_paircount(37);
  spec.container = core::ContainerMode::kCombining;
  check_doubling_doubles_counts(spec, "paircount-x2-combining");
}

// Degrade differential: a permanent fault inside chunk 0's data region (below
// the ~64KB boundary-probe window, so planning stays fail-fast clean) forces
// the pipeline to skip that chunk; the output must equal the oracle run on
// the surviving byte ranges, and at least one chunk must actually have been
// skipped or the cell is vacuous.
void check_degrade_cell(core::ReplaySpec spec, const std::string& label) {
  spec.mode = core::ExecMode::kIngestMR;
  spec.chunk_bytes = 64 * 1024;
  spec.degrade = true;
  spec.fault_plan = "permanent=1000-2000";
  spec.retry_attempts = 2;
  spec.corpus.bytes = 256 * 1024;  // 4 chunks; poison lands in chunk 0
  auto outcome = ref::run_cell(spec);
  ASSERT_TRUE(outcome.ok()) << label << ": " << outcome.status().to_string();
  EXPECT_TRUE(outcome->match)
      << label << " degrade output diverges from the surviving-range oracle:\n"
      << outcome->diff;
  EXPECT_GE(outcome->job.chunks_skipped, std::size_t(1))
      << label << ": fault plan did not cause any chunk skip — vacuous cell";
  EXPECT_GT(outcome->job.bytes_skipped, std::size_t(0)) << label;
}

TEST(Metamorphic, DegradeWordCount) {
  core::ReplaySpec spec = spec_wordcount(27);
  spec.merge_mode = core::MergeMode::kPWay;
  check_degrade_cell(spec, "degrade-wordcount");
}

TEST(Metamorphic, DegradeGrep) {
  core::ReplaySpec spec = spec_grep(28);
  spec.merge_mode = core::MergeMode::kPairwise;
  check_degrade_cell(spec, "degrade-grep");
}

TEST(Metamorphic, DegradeSortPartitioned) {
  core::ReplaySpec spec = spec_sort(29);
  spec.merge_mode = core::MergeMode::kPartitioned;
  spec.merge_partitions = 4;
  check_degrade_cell(spec, "degrade-sort");
}

}  // namespace
}  // namespace supmr::harness
