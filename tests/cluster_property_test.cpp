// Property tests for the sharded-shuffle runtime (src/cluster/,
// docs/cluster.md).
//
// The protocol layer (split / key / value / merge / fold) is pure functions
// over string views, so its grammar and every error path are pinned down
// directly. The runtime properties are the cluster's contract:
//   * node-count independence — 1, 2, 4, 7 nodes produce identical bytes;
//   * conservation — every map-output byte either crossed a node boundary
//     or stayed local, and senders' ledgers agree with receivers';
//   * deterministic routing — repeated runs (and different per-node thread
//     counts) reproduce the exact per-node shuffle ledger, not just the
//     output bytes;
//   * bounded skew — splitters cut from the merged sample keep the
//     heaviest owner within a small factor of the mean on Zipf text;
//   * budgeted merges spill through the ExternalSorter without changing
//     a byte.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "apps/histogram.hpp"
#include "apps/inverted_index.hpp"
#include "apps/tera_sort.hpp"
#include "apps/word_count.hpp"
#include "cluster/cluster_job.hpp"
#include "cluster/protocol.hpp"
#include "ingest/record_format.hpp"
#include "wload/numeric.hpp"
#include "wload/teragen.hpp"
#include "wload/text_corpus.hpp"

namespace supmr::cluster {
namespace {

using SV = std::vector<std::string_view>;

// ------------------------------------------------------------- protocol

TEST(ClusterProtocol, SplitLinesIncludesNewlines) {
  auto lines = split_lines("a\t1\nbc\t2\n");
  ASSERT_TRUE(lines.ok());
  ASSERT_EQ(lines->size(), 2u);
  EXPECT_EQ((*lines)[0], "a\t1\n");
  EXPECT_EQ((*lines)[1], "bc\t2\n");
  EXPECT_TRUE(split_lines("")->empty());
}

TEST(ClusterProtocol, SplitLinesRejectsUnterminated) {
  auto lines = split_lines("a\t1\nno-newline");
  ASSERT_FALSE(lines.ok());
  EXPECT_EQ(lines.status().code(), StatusCode::kInvalidArgument);
}

TEST(ClusterProtocol, SplitFixed) {
  auto recs = split_fixed("aabbcc", 2);
  ASSERT_TRUE(recs.ok());
  ASSERT_EQ(recs->size(), 3u);
  EXPECT_EQ((*recs)[1], "bb");
  EXPECT_FALSE(split_fixed("abc", 2).ok());  // partial record
  EXPECT_FALSE(split_fixed("abc", 0).ok());  // zero width
}

TEST(ClusterProtocol, LineKeyUsesLastTab) {
  EXPECT_EQ(line_key("word\t42\n"), "word");
  EXPECT_EQ(line_key("a\tb\t7\n"), "a\tb");  // keys may contain tabs
  EXPECT_EQ(line_key("noseparator\n"), "noseparator");
  EXPECT_EQ(line_key("notrailingnewline"), "notrailingnewline");
}

TEST(ClusterProtocol, LineValueParsesAndRejects) {
  auto v = line_value("word\t42\n");
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, 42u);
  EXPECT_FALSE(line_value("no-tab\n").ok());
  EXPECT_FALSE(line_value("empty\t\n").ok());
  EXPECT_FALSE(line_value("bad\t4x2\n").ok());
}

TEST(ClusterProtocol, MergeSortedKeysFoldsAcrossRuns) {
  SV a = {std::string_view("apple\t2\n"), std::string_view("cherry\t1\n")};
  SV b = {std::string_view("apple\t3\n"), std::string_view("banana\t5\n")};
  auto merged = merge_sorted_keys({a, b});
  ASSERT_TRUE(merged.ok());
  EXPECT_EQ(*merged, "apple\t5\nbanana\t5\ncherry\t1\n");
}

TEST(ClusterProtocol, MergeSortedKeysPropagatesBadValues) {
  SV a = {std::string_view("apple\tnope\n")};
  SV b = {std::string_view("apple\t3\n")};
  EXPECT_FALSE(merge_sorted_keys({a, b}).ok());
}

TEST(ClusterProtocol, MergeFixedRecordsInterleaves) {
  SV a = {std::string_view("aa"), std::string_view("cc")};
  SV b = {std::string_view("bb"), std::string_view("cc"),
          std::string_view("dd")};
  EXPECT_EQ(merge_fixed_records({a, b}), "aabbccccdd");
}

TEST(ClusterProtocol, FoldAlignedSumsMatchingLabels) {
  SV a = {std::string_view("bin0\t1\n"), std::string_view("bin1\t2\n")};
  SV b = {std::string_view("bin0\t10\n"), std::string_view("bin1\t20\n")};
  SV empty;
  auto folded = fold_aligned({a, empty, b});
  ASSERT_TRUE(folded.ok());
  EXPECT_EQ(*folded, "bin0\t11\nbin1\t22\n");
}

TEST(ClusterProtocol, FoldAlignedRejectsStructureMismatch) {
  SV a = {std::string_view("bin0\t1\n"), std::string_view("bin1\t2\n")};
  SV shorter = {std::string_view("bin0\t1\n")};
  EXPECT_FALSE(fold_aligned({a, shorter}).ok());
  SV relabeled = {std::string_view("bin0\t1\n"), std::string_view("binX\t2\n")};
  EXPECT_FALSE(fold_aligned({a, relabeled}).ok());
  SV badvalue = {std::string_view("bin0\t1\n"), std::string_view("bin1\tz\n")};
  EXPECT_FALSE(fold_aligned({a, badvalue}).ok());
}

// -------------------------------------------------------------- runtime

ClusterJob wordcount_job(std::string input, std::size_t nodes) {
  ClusterJob job;
  job.input = std::move(input);
  job.format = std::make_shared<ingest::LineFormat>();
  job.make_app = [] {
    return std::unique_ptr<core::Application>(new apps::WordCountApp());
  };
  job.config.num_nodes = nodes;
  job.config.num_map_threads = 2;
  job.config.num_reduce_threads = 2;
  job.chunk_bytes = 8 * 1024;
  return job;
}

std::string zipf_text(std::uint64_t bytes, std::uint64_t seed,
                      double skew = 1.0) {
  wload::TextCorpusConfig cfg;
  cfg.total_bytes = bytes;
  cfg.seed = seed;
  cfg.zipf_skew = skew;
  return wload::generate_text(cfg);
}

void expect_conservation(const ClusterResult& result) {
  EXPECT_EQ(result.shuffle_bytes + result.local_bytes,
            result.map_output_bytes);
  std::uint64_t sent = 0, recv = 0, local = 0, map_out = 0;
  for (const NodeStats& node : result.nodes) {
    sent += node.sent_bytes;
    recv += node.recv_bytes;
    local += node.local_bytes;
    map_out += node.map_output_bytes;
  }
  // Senders' and receivers' ledgers must agree: every cross-node byte was
  // sent exactly once and received exactly once.
  EXPECT_EQ(sent, result.shuffle_bytes);
  EXPECT_EQ(recv, result.shuffle_bytes);
  EXPECT_EQ(local, result.local_bytes);
  EXPECT_EQ(map_out, result.map_output_bytes);
}

TEST(ClusterRuntime, NodeCountIndependence) {
  const std::string corpus = zipf_text(96 * 1024, 101);
  std::string baseline;
  for (std::size_t nodes : {1u, 2u, 4u, 7u}) {
    auto result = run_cluster(wordcount_job(corpus, nodes));
    ASSERT_TRUE(result.ok()) << "nodes=" << nodes << ": "
                             << result.status().to_string();
    expect_conservation(*result);
    if (nodes == 1) {
      baseline = result->output;
      EXPECT_EQ(result->shuffle_bytes, 0u);  // no one to shuffle to
    } else {
      EXPECT_EQ(result->output, baseline)
          << "nodes=" << nodes << " changed the output bytes";
    }
  }
}

TEST(ClusterRuntime, DeterministicShuffleLedger) {
  const std::string corpus = zipf_text(64 * 1024, 102);
  auto first = run_cluster(wordcount_job(corpus, 4));
  ASSERT_TRUE(first.ok()) << first.status().to_string();
  // Same geometry re-run: the concurrent senders race on the wall clock but
  // routing is deterministic, so the per-node ledger must reproduce exactly.
  auto again = run_cluster(wordcount_job(corpus, 4));
  ASSERT_TRUE(again.ok()) << again.status().to_string();
  EXPECT_EQ(first->output, again->output);
  ASSERT_EQ(first->nodes.size(), again->nodes.size());
  for (std::size_t k = 0; k < first->nodes.size(); ++k) {
    EXPECT_EQ(first->nodes[k].sent_bytes, again->nodes[k].sent_bytes) << k;
    EXPECT_EQ(first->nodes[k].recv_bytes, again->nodes[k].recv_bytes) << k;
    EXPECT_EQ(first->nodes[k].local_bytes, again->nodes[k].local_bytes) << k;
  }
  // Different per-node thread counts change the schedule, not the bytes.
  ClusterJob wide = wordcount_job(corpus, 4);
  wide.config.num_map_threads = 5;
  wide.config.num_reduce_threads = 3;
  auto threaded = run_cluster(wide);
  ASSERT_TRUE(threaded.ok()) << threaded.status().to_string();
  EXPECT_EQ(threaded->output, first->output);
}

TEST(ClusterRuntime, SkewStaysBoundedOnZipfText) {
  // Zipf word frequencies are maximally skewed by VALUE, but splitters cut
  // the KEY space from the merged sample, so owner record counts stay
  // balanced. "owned" = what the node merges (received + kept local).
  const std::string corpus = zipf_text(128 * 1024, 103, /*skew=*/1.2);
  auto result = run_cluster(wordcount_job(corpus, 4));
  ASSERT_TRUE(result.ok()) << result.status().to_string();
  std::uint64_t owned_max = 0, owned_sum = 0;
  for (const NodeStats& node : result->nodes) {
    const std::uint64_t owned = node.recv_bytes + node.local_bytes;
    owned_max = std::max(owned_max, owned);
    owned_sum += owned;
  }
  const double mean = double(owned_sum) / double(result->nodes.size());
  EXPECT_LE(double(owned_max), 3.0 * mean)
      << "heaviest owner more than 3x the mean";
}

TEST(ClusterRuntime, ThrottledFabricSameBytes) {
  const std::string corpus = zipf_text(48 * 1024, 104);
  auto fast = run_cluster(wordcount_job(corpus, 3));
  ASSERT_TRUE(fast.ok());
  ClusterJob slow_job = wordcount_job(corpus, 3);
  slow_job.config.node_link_bps = 4.0e6;
  slow_job.config.uplink_bps = 8.0e6;
  slow_job.config.node_disk_bps = 32.0e6;
  auto slow = run_cluster(slow_job);
  ASSERT_TRUE(slow.ok()) << slow.status().to_string();
  EXPECT_EQ(slow->output, fast->output);
  EXPECT_EQ(slow->shuffle_bytes, fast->shuffle_bytes);
}

TEST(ClusterRuntime, BudgetedSortSpillsSameBytes) {
  wload::TeraGenConfig gen;
  gen.num_records = 800;
  gen.seed = 105;
  std::string data = wload::teragen_to_string(gen);
  auto sort_job = [&](std::size_t budget) {
    ClusterJob job;
    job.input = data;
    job.format = std::make_shared<ingest::CrlfFormat>();
    job.make_app = [] {
      return std::unique_ptr<core::Application>(
          new apps::TeraSortApp(apps::TeraSortOptions{}));
    };
    job.config.num_nodes = 2;
    job.config.node_memory_budget = budget;
    job.chunk_bytes = 8 * 1024;
    job.record_bytes = 100;
    job.spill_dir = "/tmp";
    return job;
  };
  auto in_memory = run_cluster(sort_job(0));
  ASSERT_TRUE(in_memory.ok()) << in_memory.status().to_string();
  auto budgeted = run_cluster(sort_job(4 * 1024));
  ASSERT_TRUE(budgeted.ok()) << budgeted.status().to_string();
  EXPECT_EQ(budgeted->output, in_memory->output);
  std::uint64_t spill_runs = 0;
  for (const NodeStats& node : budgeted->nodes) spill_runs += node.spill_runs;
  EXPECT_GT(spill_runs, 0u) << "budgeted merge never spilled";
  expect_conservation(*budgeted);
}

TEST(ClusterRuntime, HistogramAlignedFold) {
  wload::NumericConfig gen;
  gen.num_values = 20000;
  gen.lo = 0;
  gen.hi = 255;
  gen.seed = 106;
  const std::string corpus = wload::generate_numeric(gen);
  auto histogram_job = [&](std::size_t nodes) {
    ClusterJob job;
    job.input = corpus;
    job.format = std::make_shared<ingest::LineFormat>();
    job.make_app = [] {
      apps::HistogramOptions opt;
      opt.lo = 0;
      opt.hi = 256;
      opt.bins = 32;
      return std::unique_ptr<core::Application>(new apps::HistogramApp(opt));
    };
    job.config.num_nodes = nodes;
    job.chunk_bytes = 8 * 1024;
    return job;
  };
  auto one = run_cluster(histogram_job(1));
  ASSERT_TRUE(one.ok()) << one.status().to_string();
  auto four = run_cluster(histogram_job(4));
  ASSERT_TRUE(four.ok()) << four.status().to_string();
  EXPECT_EQ(four->output, one->output);
  EXPECT_EQ(four->shard, core::ShardKind::kAligned);
  expect_conservation(*four);
}

// ---------------------------------------------------------- error paths

TEST(ClusterRuntime, RejectsBadConfiguration) {
  auto base = [] { return wordcount_job("hello world\n", 2); };
  {
    ClusterJob job = base();
    job.config.num_nodes = 0;
    EXPECT_FALSE(run_cluster(job).ok());
  }
  {
    ClusterJob job = base();
    job.make_app = nullptr;
    EXPECT_FALSE(run_cluster(job).ok());
  }
  {
    ClusterJob job = base();
    job.format = nullptr;
    EXPECT_FALSE(run_cluster(job).ok());
  }
  {
    ClusterJob job = base();
    job.make_app = [] { return std::unique_ptr<core::Application>(); };
    EXPECT_FALSE(run_cluster(job).ok());
  }
  {
    // An app without a shard protocol (InvertedIndexApp keeps the kNone
    // default) cannot run on a cluster.
    ClusterJob job = base();
    job.make_app = [] {
      return std::unique_ptr<core::Application>(new apps::InvertedIndexApp());
    };
    auto result = run_cluster(job);
    ASSERT_FALSE(result.ok());
    EXPECT_NE(result.status().to_string().find("no shard protocol"),
              std::string::npos);
  }
  {
    // Fixed-record sharding with no record width.
    ClusterJob job = base();
    job.make_app = [] {
      return std::unique_ptr<core::Application>(
          new apps::TeraSortApp(apps::TeraSortOptions{}));
    };
    job.record_bytes = 0;
    EXPECT_FALSE(run_cluster(job).ok());
  }
  {
    // A merge budget with nowhere to spill.
    ClusterJob job = base();
    job.config.node_memory_budget = 1024;
    job.spill_dir.clear();
    EXPECT_FALSE(run_cluster(job).ok());
  }
}

TEST(ClusterRuntime, MoreNodesThanRecords) {
  // 7 nodes over a 2-line input: most slices are empty, most owners receive
  // nothing, and the output still matches the single-node run.
  const std::string tiny = "alpha beta\nbeta gamma\n";
  auto one = run_cluster(wordcount_job(tiny, 1));
  ASSERT_TRUE(one.ok()) << one.status().to_string();
  auto many = run_cluster(wordcount_job(tiny, 7));
  ASSERT_TRUE(many.ok()) << many.status().to_string();
  EXPECT_EQ(many->output, one->output);
  expect_conservation(*many);
}

// -------------------------------------------- node/owner failure paths
//
// A node that produces garbage (or dies) must fail the WHOLE cluster run
// with the underlying error, never a partial or silently-wrong output.
// Real apps can't misbehave like that, so a forwarding wrapper around
// WordCountApp overrides exactly the two seams the cluster runtime
// consumes — shard_kind() and canonical_output() — and leaves the
// MapReduce machinery real.
class MisbehavingApp : public core::Application {
 public:
  using Canon = std::string (*)(const apps::WordCountApp&);
  MisbehavingApp(core::ShardKind kind, Canon canon)
      : kind_(kind), canon_(canon) {}
  void init(std::size_t num_map_threads) override {
    inner_.init(num_map_threads);
  }
  Status prepare_round(const ingest::IngestChunk& chunk) override {
    return inner_.prepare_round(chunk);
  }
  std::size_t round_tasks() const override { return inner_.round_tasks(); }
  void map_task(std::size_t task, std::size_t thread_id) override {
    inner_.map_task(task, thread_id);
  }
  Status reduce(ThreadPool& pool, std::size_t num_partitions) override {
    return inner_.reduce(pool, num_partitions);
  }
  Status merge(ThreadPool& pool, const core::MergePlan& plan,
               merge::MergeStats* stats) override {
    return inner_.merge(pool, plan, stats);
  }
  std::uint64_t result_count() const override {
    return inner_.result_count();
  }
  core::ShardKind shard_kind() const override { return kind_; }
  std::string canonical_output() const override { return canon_(inner_); }

 private:
  apps::WordCountApp inner_;
  core::ShardKind kind_;
  Canon canon_;
};

ClusterJob misbehaving_job(std::string input, std::size_t nodes,
                           core::ShardKind kind, MisbehavingApp::Canon canon) {
  ClusterJob job = wordcount_job(std::move(input), nodes);
  job.make_app = [kind, canon] {
    return std::unique_ptr<core::Application>(new MisbehavingApp(kind, canon));
  };
  // One line per slice so each node's canonical reflects its own slice
  // (chunk boundaries round FORWARD to the next record boundary, so the
  // chunk size must land exactly on the first newline).
  job.chunk_bytes = 2;
  return job;
}

TEST(ClusterRuntime, FactoryGoingNullMidRunFails) {
  // The factory is probed once up front (for shard_kind), then called once
  // per node; a factory that dries up after the probe must fail the node,
  // not crash it.
  ClusterJob job = wordcount_job("alpha beta\ngamma delta\n", 2);
  auto calls = std::make_shared<int>(0);
  job.make_app = [calls]() -> std::unique_ptr<core::Application> {
    if (++*calls > 1) return nullptr;
    return std::unique_ptr<core::Application>(new apps::WordCountApp());
  };
  auto result = run_cluster(job);
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().to_string().find("factory returned null"),
            std::string::npos)
      << result.status().to_string();
}

TEST(ClusterRuntime, ThrowingNodeIsCaughtAsStatus) {
  auto result = run_cluster(misbehaving_job(
      "alpha beta\ngamma delta\n", 2, core::ShardKind::kSortedKeys,
      +[](const apps::WordCountApp&) -> std::string {
        throw std::runtime_error("canonical exploded");
      }));
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().to_string().find("cluster node threw"),
            std::string::npos)
      << result.status().to_string();
  EXPECT_NE(result.status().to_string().find("canonical exploded"),
            std::string::npos);
}

TEST(ClusterRuntime, MalformedSortedKeyValueFailsOwnerMerge) {
  // Splitting and routing accept any "key\tvalue\n" line; the owner merge
  // is where the value must parse, and its error must surface.
  auto result = run_cluster(misbehaving_job(
      "alpha beta\ngamma delta\n", 2, core::ShardKind::kSortedKeys,
      +[](const apps::WordCountApp&) -> std::string {
        return "alpha\tnot-a-number\n";
      }));
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST(ClusterRuntime, AlignedLineCountMismatchFails) {
  // kAligned demands an input-independent line structure; nodes whose
  // tables disagree on line COUNT are caught before any fold starts.
  auto result = run_cluster(misbehaving_job(
      "a\nb c\n", 2, core::ShardKind::kAligned,
      +[](const apps::WordCountApp& inner) {
        return inner.canonical_output();  // 1 line vs 2 lines
      }));
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().to_string().find("disagree on line count"),
            std::string::npos)
      << result.status().to_string();
}

TEST(ClusterRuntime, AlignedLabelMismatchFailsOwnerFold) {
  // Same line count, different labels: the structural check passes and the
  // element-wise fold must reject the row mismatch.
  auto result = run_cluster(misbehaving_job(
      "a\nb\n", 2, core::ShardKind::kAligned,
      +[](const apps::WordCountApp& inner) {
        return inner.canonical_output();  // "a\t1\n" vs "b\t1\n"
      }));
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST(ClusterRuntime, SpillToMissingDirFailsOwnerMerge) {
  // node_memory_budget forces the ExternalSorter path; a spill_dir that
  // does not exist must fail the owner merge with the sorter's I/O error.
  wload::TeraGenConfig tg;
  tg.num_records = 100;
  tg.seed = 9;
  ClusterJob job;
  job.input = wload::teragen_to_string(tg);
  job.format = std::make_shared<ingest::FixedFormat>(100);
  job.make_app = [] {
    apps::TeraSortOptions opt;
    opt.key_bytes = 10;
    opt.record_bytes = 100;
    return std::unique_ptr<core::Application>(new apps::TeraSortApp(opt));
  };
  job.config.num_nodes = 1;
  job.config.num_map_threads = 2;
  job.config.num_reduce_threads = 2;
  job.config.node_memory_budget = 1;  // clamps to 16 records, still spills
  job.chunk_bytes = 1000;
  job.record_bytes = 100;
  job.spill_dir = "/nonexistent/supmr_cluster_spill";
  auto result = run_cluster(job);
  ASSERT_FALSE(result.ok());
}

}  // namespace
}  // namespace supmr::cluster
