// Tests for the iterative f-way merge generalization.
#include <gtest/gtest.h>

#include <algorithm>

#include "common/rng.hpp"
#include "merge/fway.hpp"
#include "merge/sample_sort.hpp"

namespace supmr::merge {
namespace {

std::vector<int> random_ints(std::size_t n, std::uint64_t seed) {
  Xoshiro256 rng(seed);
  std::vector<int> v(n);
  for (auto& x : v) x = static_cast<int>(rng.uniform(1000000));
  return v;
}

TEST(FwayMerge, FaninTwoMatchesPairwiseRoundCount) {
  ThreadPool pool(4);
  auto data = random_ints(8000, 1);
  auto copy = data;
  MergeStats stats = fway_merge_sort(
      pool, std::span<int>(data.data(), data.size()), std::less<int>{},
      /*num_runs=*/8, /*fanin=*/2);
  EXPECT_EQ(stats.num_rounds(), 3u);  // log2(8)
  std::sort(copy.begin(), copy.end());
  EXPECT_EQ(data, copy);
}

TEST(FwayMerge, FullFaninIsOneRound) {
  ThreadPool pool(4);
  auto data = random_ints(8000, 2);
  auto copy = data;
  MergeStats stats = fway_merge_sort(
      pool, std::span<int>(data.data(), data.size()), std::less<int>{}, 16,
      /*fanin=*/16);
  EXPECT_EQ(stats.num_rounds(), 1u);
  std::sort(copy.begin(), copy.end());
  EXPECT_EQ(data, copy);
}

TEST(FwayMerge, RoundCountIsCeilLogF) {
  ThreadPool pool(2);
  auto data = random_ints(27000, 3);
  MergeStats stats = fway_merge_sort(
      pool, std::span<int>(data.data(), data.size()), std::less<int>{}, 27,
      /*fanin=*/3);
  EXPECT_EQ(stats.num_rounds(), 3u);  // log3(27)
  EXPECT_TRUE(std::is_sorted(data.begin(), data.end()));
}

TEST(FwayMerge, TotalMovesScaleWithRounds) {
  ThreadPool pool(2);
  auto data = random_ints(16000, 4);
  MergeStats stats = fway_merge_sort(
      pool, std::span<int>(data.data(), data.size()), std::less<int>{}, 16,
      /*fanin=*/4);
  EXPECT_EQ(stats.num_rounds(), 2u);  // log4(16)
  EXPECT_EQ(stats.total_items_moved(), 2u * 16000u);
}

class FwayProperty
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(FwayProperty, SortsForAllFaninsAndRunCounts) {
  const auto [num_runs, fanin, seed] = GetParam();
  ThreadPool pool(3);
  auto data = random_ints(5000 + 977 * seed, 100 + seed);
  auto copy = data;
  fway_merge_sort(pool, std::span<int>(data.data(), data.size()),
                  std::less<int>{}, num_runs, fanin);
  std::sort(copy.begin(), copy.end());
  EXPECT_EQ(data, copy);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, FwayProperty,
    ::testing::Combine(::testing::Values(1, 3, 7, 16, 33),
                       ::testing::Values(2, 3, 5, 64),
                       ::testing::Values(1, 2)));

TEST(FwayMerge, AgreesWithOtherSorters) {
  ThreadPool pool(3);
  auto a = random_ints(40000, 9);
  auto b = a;
  fway_merge_sort(pool, std::span<int>(a.data(), a.size()), std::less<int>{},
                  12, 3);
  parallel_sample_sort(pool, std::span<int>(b.data(), b.size()),
                       std::less<int>{});
  EXPECT_EQ(a, b);
}

TEST(FwayMerge, FaninBelowTwoClamped) {
  ThreadPool pool(2);
  auto data = random_ints(1000, 10);
  fway_merge_sort(pool, std::span<int>(data.data(), data.size()),
                  std::less<int>{}, 4, /*fanin=*/0);
  EXPECT_TRUE(std::is_sorted(data.begin(), data.end()));
}

}  // namespace
}  // namespace supmr::merge
