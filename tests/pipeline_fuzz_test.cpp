// Randomized end-to-end stress: random record layouts, chunk sizes, sources,
// and fault positions through the full runtime. Every configuration must
// either complete with reference-matching results or fail cleanly with a
// Status — never hang, crash, or silently drop data.
#include <gtest/gtest.h>

#include <map>

#include "apps/tokenize.hpp"
#include "apps/word_count.hpp"
#include "common/rng.hpp"
#include "core/job.hpp"
#include "ingest/hybrid_source.hpp"
#include "ingest/record_format.hpp"
#include "ingest/source.hpp"
#include "storage/fault_device.hpp"
#include "storage/mem_device.hpp"

namespace supmr {
namespace {

using storage::MemDevice;

// Random text with words/lines of random lengths, including empty lines and
// runs of delimiters.
std::string random_text(Xoshiro256& rng, std::size_t approx_bytes) {
  std::string out;
  while (out.size() < approx_bytes) {
    const int choice = int(rng.uniform(10));
    if (choice == 0) {
      out.push_back('\n');  // empty line
    } else if (choice == 1) {
      out.append(rng.uniform(4), ' ');
    } else {
      const std::size_t len = 1 + rng.uniform(12);
      for (std::size_t i = 0; i < len; ++i)
        out.push_back(static_cast<char>('a' + rng.uniform(26)));
      out.push_back(rng.uniform(5) ? ' ' : '\n');
    }
  }
  out.push_back('\n');
  return out;
}

std::map<std::string, std::uint64_t> reference_counts(
    const std::string& text) {
  std::map<std::string, std::uint64_t> counts;
  apps::tokenize_words(std::span<const char>(text.data(), text.size()),
                       [&](std::string_view w) { ++counts[std::string(w)]; });
  return counts;
}

void expect_matches(const apps::WordCountApp& app,
                    const std::map<std::string, std::uint64_t>& ref) {
  ASSERT_EQ(app.results().size(), ref.size());
  std::size_t i = 0;
  for (const auto& [word, count] : ref) {
    EXPECT_EQ(app.results()[i].first, word);
    EXPECT_EQ(app.results()[i].second, count);
    ++i;
  }
}

class PipelineFuzz : public ::testing::TestWithParam<int> {};

TEST_P(PipelineFuzz, RandomConfigurationsProduceCorrectCounts) {
  Xoshiro256 rng(GetParam() * 1000003ULL);
  const std::string text = random_text(rng, 4000 + rng.uniform(60000));
  const auto ref = reference_counts(text);

  core::JobConfig jc;
  jc.num_map_threads = 1 + rng.uniform(6);
  jc.num_reduce_threads = 1 + rng.uniform(3);
  jc.merge_mode = rng.uniform(2) ? core::MergeMode::kPWay
                                 : core::MergeMode::kPairwise;
  jc.unpooled_map_waves = rng.uniform(4) == 0;

  const std::uint64_t chunk = rng.uniform(3) == 0
                                  ? 0
                                  : 1 + rng.uniform(20000);
  apps::WordCountApp app;

  if (rng.uniform(3) == 0) {
    // Hybrid source over random slices of the corpus as "files".
    std::vector<std::shared_ptr<const storage::Device>> files;
    std::size_t pos = 0;
    while (pos < text.size()) {
      // Slice at line boundaries so words are not torn between files.
      std::size_t end = std::min(pos + 1 + rng.uniform(9000), text.size());
      while (end < text.size() && text[end - 1] != '\n') ++end;
      files.push_back(
          std::make_shared<MemDevice>(text.substr(pos, end - pos), "f"));
      pos = end;
    }
    ingest::HybridFileSource src(files,
                                 std::make_shared<ingest::LineFormat>(),
                                 chunk);
    core::MapReduceJob job(app, src, jc);
    auto result = job.run(core::ExecMode::kIngestMR);
    ASSERT_TRUE(result.ok()) << result.status().to_string();
  } else {
    ingest::SingleDeviceSource src(std::make_shared<MemDevice>(text, "m"),
                                   std::make_shared<ingest::LineFormat>(),
                                   chunk);
    core::MapReduceJob job(app, src, jc);
    auto result = rng.uniform(2) ? job.run(core::ExecMode::kIngestMR) : job.run(core::ExecMode::kOriginal);
    ASSERT_TRUE(result.ok()) << result.status().to_string();
  }
  expect_matches(app, ref);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PipelineFuzz, ::testing::Range(1, 25));

class FaultFuzz : public ::testing::TestWithParam<int> {};

TEST_P(FaultFuzz, RandomFaultsFailCleanlyOrSucceed) {
  Xoshiro256 rng(GetParam() * 7777ULL);
  const std::string text = random_text(rng, 30000);
  const auto ref = reference_counts(text);

  MemDevice base(text);
  // Fault a random call index; planning performs a data-dependent number of
  // probe reads, so this lands anywhere in plan or ingest.
  fault::FaultPlan fplan;
  fplan.fail_calls.push_back(rng.uniform(40));
  storage::FaultDevice fault(&base, fplan);
  auto dev = std::shared_ptr<const storage::Device>(
      &fault, [](const storage::Device*) {});

  apps::WordCountApp app;
  ingest::SingleDeviceSource src(dev, std::make_shared<ingest::LineFormat>(),
                                 500 + rng.uniform(5000));
  core::JobConfig jc;
  jc.num_map_threads = 2;
  jc.num_reduce_threads = 2;
  core::MapReduceJob job(app, src, jc);
  auto result = job.run(core::ExecMode::kIngestMR);
  if (result.ok()) {
    // The fault landed past the job's reads — results must still be right.
    expect_matches(app, ref);
  } else {
    EXPECT_EQ(result.status().code(), StatusCode::kIoError);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FaultFuzz, ::testing::Range(1, 17));

}  // namespace
}  // namespace supmr
