// Multi-producer/consumer hammer tests for MpmcQueue and SpscQueue under the
// seeded schedule shuffler. Each TEST_P runs once per seed in kStressSeeds,
// so a plain ctest pass covers three distinct injected schedules; set
// SUPMR_SCHED_SEED to replay one.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <map>
#include <thread>
#include <vector>

#include "sched_fuzz.hpp"
#include "threading/mpmc_queue.hpp"
#include "threading/spsc_queue.hpp"

namespace supmr {
namespace {

class QueueStress : public ::testing::TestWithParam<std::uint64_t> {};

// ----------------------------------------------------------- mpmc queue

TEST_P(QueueStress, MpmcBoundedHammerPreservesEveryItem) {
  constexpr int kProducers = 3, kConsumers = 3, kPerProducer = 1500;
  test::SchedFuzz fuzz(GetParam());
  MpmcQueue<std::uint64_t> q(8);  // small bound: producers block constantly

  std::vector<std::thread> threads;
  for (int p = 0; p < kProducers; ++p) {
    threads.emplace_back([&, p] {
      test::SchedFuzz::Stream sched(fuzz, std::uint64_t(p));
      for (int i = 1; i <= kPerProducer; ++i) {
        sched.yield_point();
        ASSERT_TRUE(q.push(std::uint64_t(p) * 1000000 + std::uint64_t(i)));
      }
    });
  }

  std::atomic<std::uint64_t> total_count{0};
  std::atomic<std::uint64_t> total_sum{0};
  std::vector<std::thread> consumers;
  for (int c = 0; c < kConsumers; ++c) {
    consumers.emplace_back([&, c] {
      test::SchedFuzz::Stream sched(fuzz, 100 + std::uint64_t(c));
      // The queue is globally FIFO, so each consumer must see strictly
      // increasing sequence numbers per producer.
      std::map<std::uint64_t, std::uint64_t> last_seen;
      while (auto v = q.pop()) {
        sched.yield_point();
        const std::uint64_t producer = *v / 1000000, seq = *v % 1000000;
        auto [it, fresh] = last_seen.emplace(producer, seq);
        if (!fresh) {
          EXPECT_LT(it->second, seq) << "per-producer FIFO violated";
          it->second = seq;
        }
        total_sum += *v;
        ++total_count;
      }
    });
  }

  for (int p = 0; p < kProducers; ++p) threads[p].join();
  q.close();
  for (auto& c : consumers) c.join();

  EXPECT_EQ(total_count.load(), std::uint64_t(kProducers) * kPerProducer);
  std::uint64_t want = 0;
  for (int p = 0; p < kProducers; ++p)
    for (int i = 1; i <= kPerProducer; ++i)
      want += std::uint64_t(p) * 1000000 + std::uint64_t(i);
  EXPECT_EQ(total_sum.load(), want);
}

TEST_P(QueueStress, MpmcCloseWhileBlockedPushKeepsQueuedItems) {
  test::SchedFuzz fuzz(GetParam());
  test::SchedFuzz::Stream sched(fuzz, 0);
  MpmcQueue<int> q(1);
  ASSERT_TRUE(q.push(1));  // fill the bound

  std::atomic<int> blocked_result{-1};
  std::thread producer([&] {
    test::SchedFuzz::Stream psched(fuzz, 1);
    psched.yield_point();
    blocked_result = q.push(2) ? 1 : 0;  // blocks on the full queue
  });

  // Let the producer reach (or pass through) the blocked wait, then close.
  for (int i = 0; i < 16; ++i) sched.yield_point();
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  q.close();
  producer.join();

  // The blocked (or about-to-block) push must report failure, not silently
  // drop into the queue...
  EXPECT_EQ(blocked_result.load(), 0);
  // ...and the item queued before the close must still drain via try_pop.
  auto v = q.try_pop();
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(*v, 1);
  EXPECT_FALSE(q.try_pop().has_value());
  EXPECT_FALSE(q.pop().has_value());
}

TEST_P(QueueStress, MpmcCloseReleasesBlockedConsumers) {
  test::SchedFuzz fuzz(GetParam());
  MpmcQueue<int> q;
  std::atomic<int> woke{0};
  std::vector<std::thread> consumers;
  for (int c = 0; c < 3; ++c) {
    consumers.emplace_back([&, c] {
      test::SchedFuzz::Stream sched(fuzz, std::uint64_t(c));
      sched.yield_point();
      EXPECT_FALSE(q.pop().has_value());  // blocks until close
      ++woke;
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  q.close();
  for (auto& c : consumers) c.join();
  EXPECT_EQ(woke.load(), 3);
}

TEST(MpmcQueue, TryPopDrainsEverythingAfterClose) {
  MpmcQueue<int> q(8);
  for (int i = 0; i < 5; ++i) ASSERT_TRUE(q.push(i));
  q.close();
  for (int i = 0; i < 5; ++i) {
    auto v = q.try_pop();
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, i);
  }
  EXPECT_FALSE(q.try_pop().has_value());
}

// ----------------------------------------------------------- spsc queue

// Regression for SpscQueue::size(): the original implementation loaded tail
// before head, so a pop between the two loads underflowed the unsigned
// subtraction and a third-party observer saw size() near SIZE_MAX. The fix
// loads head first and clamps; this test drives a dedicated observer thread
// against a hot producer/consumer pair.
TEST_P(QueueStress, SpscSizeObservedFromThirdThreadStaysInRange) {
  constexpr int kItems = 20000;
  test::SchedFuzz fuzz(GetParam());
  SpscQueue<int> q(4);  // tiny ring: head/tail chase each other closely
  std::atomic<bool> done{false};

  std::thread observer([&] {
    while (!done.load(std::memory_order_acquire)) {
      const std::size_t n = q.size();
      EXPECT_LE(n, q.capacity()) << "torn size() observation";
    }
  });

  std::thread producer([&] {
    test::SchedFuzz::Stream sched(fuzz, 1);
    for (int i = 0; i < kItems; ++i) {
      while (!q.try_push(i)) std::this_thread::yield();
      if ((i & 63) == 0) sched.yield_point();
    }
  });

  test::SchedFuzz::Stream sched(fuzz, 2);
  int received = 0;
  long long sum = 0;
  while (received < kItems) {
    if (auto v = q.try_pop()) {
      EXPECT_EQ(*v, received);
      sum += *v;
      ++received;
      if ((received & 63) == 0) sched.yield_point();
    } else {
      std::this_thread::yield();
    }
  }
  producer.join();
  done.store(true, std::memory_order_release);
  observer.join();
  EXPECT_EQ(sum, 1LL * kItems * (kItems - 1) / 2);
}

TEST(SpscQueue, SizeIsExactFromOwnerThreads) {
  SpscQueue<int> q(4);
  EXPECT_EQ(q.size(), 0u);
  EXPECT_TRUE(q.empty());
  for (int i = 0; i < 3; ++i) ASSERT_TRUE(q.try_push(i));
  EXPECT_EQ(q.size(), 3u);
  (void)q.try_pop();
  EXPECT_EQ(q.size(), 2u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, QueueStress,
                         ::testing::ValuesIn(test::kStressSeeds));

}  // namespace
}  // namespace supmr
