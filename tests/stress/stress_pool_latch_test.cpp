// ThreadPool pending-counter accounting, CountdownLatch/Barrier wakeup
// interleavings, and ProcStatSampler lifecycle, under the seeded schedule
// shuffler. The pool tests are the regression suite for the submit()/
// wait_all() race fixes in src/threading/thread_pool.cpp.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "core/proc_sampler.hpp"
#include "sched_fuzz.hpp"
#include "threading/latch.hpp"
#include "threading/thread_pool.hpp"

namespace supmr {
namespace {

class PoolStress : public ::testing::TestWithParam<std::uint64_t> {};

// submit() racing wait_all() from several threads: the counter must never
// underflow (debug assert in worker_loop) and every wait_all() must
// eventually return — a notify outside pending_mu_ would occasionally lose
// a wakeup here and trip the ctest TIMEOUT.
TEST_P(PoolStress, SubmitRacesWaitAllWithoutUnderflowOrLostWakeup) {
  constexpr int kSubmitters = 3, kPerSubmitter = 300;
  test::SchedFuzz fuzz(GetParam());
  ThreadPool pool(3);
  std::atomic<int> executed{0};
  std::atomic<bool> done{false};

  std::thread waiter([&] {
    test::SchedFuzz::Stream sched(fuzz, 99);
    while (!done.load(std::memory_order_acquire)) {
      pool.wait_all();  // must always return; transient counts are fine
      sched.yield_point();
    }
  });

  std::vector<std::thread> submitters;
  for (int s = 0; s < kSubmitters; ++s) {
    submitters.emplace_back([&, s] {
      test::SchedFuzz::Stream sched(fuzz, std::uint64_t(s));
      for (int i = 0; i < kPerSubmitter; ++i) {
        sched.yield_point();
        ASSERT_TRUE(pool.submit([&executed] { ++executed; }));
      }
    });
  }
  for (auto& t : submitters) t.join();
  pool.wait_all();
  EXPECT_EQ(executed.load(), kSubmitters * kPerSubmitter);
  done.store(true, std::memory_order_release);
  waiter.join();
}

// Regression for the submit-vs-shutdown pending leak: a submit() rejected by
// a closed queue must roll back the pending counter, or this wait_all()
// blocks forever on a task that will never run.
TEST(ThreadPoolLifecycle, RejectedSubmitDoesNotWedgeWaitAll) {
  ThreadPool pool(2);
  std::atomic<int> executed{0};
  for (int i = 0; i < 8; ++i) ASSERT_TRUE(pool.submit([&] { ++executed; }));
  pool.shutdown();  // drains queued tasks, joins workers
  EXPECT_EQ(executed.load(), 8);
  EXPECT_FALSE(pool.submit([&] { ++executed; }));  // dropped, counter rolled back
  pool.wait_all();  // pre-fix: hangs on the leaked pending count
  EXPECT_EQ(executed.load(), 8);
  pool.shutdown();  // idempotent
}

TEST_P(PoolStress, ShutdownRacingSubmittersLosesNoAcceptedTask) {
  test::SchedFuzz fuzz(GetParam());
  std::atomic<int> accepted{0}, executed{0};
  {
    ThreadPool pool(2);
    std::vector<std::thread> submitters;
    for (int s = 0; s < 2; ++s) {
      submitters.emplace_back([&, s] {
        test::SchedFuzz::Stream sched(fuzz, std::uint64_t(s));
        for (int i = 0; i < 200; ++i) {
          sched.yield_point();
          if (pool.submit([&executed] { ++executed; }))
            ++accepted;
          else
            break;  // pool shut down underneath us — allowed
        }
      });
    }
    test::SchedFuzz::Stream sched(fuzz, 7);
    for (int i = 0; i < 8; ++i) sched.yield_point();
    pool.shutdown();  // races the submitters
    for (auto& t : submitters) t.join();
  }
  // Every accepted task ran (shutdown drains the queue before joining).
  EXPECT_EQ(executed.load(), accepted.load());
}

TEST_P(PoolStress, WaveStormKeepsCountsExact) {
  test::SchedFuzz fuzz(GetParam());
  test::SchedFuzz::Stream sched(fuzz, 0);
  ThreadPool pool(4);
  std::atomic<int> hits{0};
  for (int wave = 0; wave < 50; ++wave) {
    std::vector<std::function<void(std::size_t)>> tasks;
    for (int i = 0; i < 8; ++i)
      tasks.push_back([&hits](std::size_t) { ++hits; });
    ASSERT_TRUE(pool.run_wave(tasks));
    ASSERT_EQ(hits.load(), (wave + 1) * 8);  // per-wave latch is exact
    sched.yield_point();
  }
}

// ------------------------------------------------------------- latch

// The lost-wakeup audit for CountdownLatch: decrement and notify are under
// the mutex, so a wait() can never sleep through the final count_down. Run
// many short-lived latches so the release interleaving lands everywhere.
TEST_P(PoolStress, LatchCountDownRacesWait) {
  test::SchedFuzz fuzz(GetParam());
  for (int round = 0; round < 200; ++round) {
    CountdownLatch latch(3);
    std::vector<std::thread> counters;
    for (int c = 0; c < 3; ++c) {
      counters.emplace_back([&, c] {
        test::SchedFuzz::Stream sched(fuzz, std::uint64_t(round * 8 + c));
        sched.yield_point();
        latch.count_down();
      });
    }
    std::thread waiter([&] {
      latch.wait();
      EXPECT_TRUE(latch.try_wait());
    });
    latch.wait();  // main waits too: two concurrent waiters
    for (auto& t : counters) t.join();
    waiter.join();
  }
}

TEST_P(PoolStress, BarrierGenerationsStayInLockstep) {
  constexpr int kParties = 4, kGenerations = 100;
  test::SchedFuzz fuzz(GetParam());
  Barrier barrier(kParties);
  std::atomic<int> serial{0};
  std::vector<std::atomic<int>> arrivals(kGenerations);
  std::vector<std::thread> workers;
  for (int p = 0; p < kParties; ++p) {
    workers.emplace_back([&, p] {
      test::SchedFuzz::Stream sched(fuzz, std::uint64_t(p));
      for (int g = 0; g < kGenerations; ++g) {
        sched.yield_point();
        ++arrivals[g];
        // Everyone must have arrived at generation g before anyone passes it.
        if (barrier.arrive_and_wait()) ++serial;
        EXPECT_EQ(arrivals[g].load(), kParties);
      }
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(serial.load(), kGenerations);
}

// ------------------------------------------------------- proc sampler

// Lifecycle hardening: double start() used to assign over a joinable
// std::thread (std::terminate); stop() without start(), double stop(), and
// stop-then-restart must all be safe.
TEST(ProcSamplerLifecycle, StartStopEdgeCasesDoNotCrash) {
  {
    core::ProcStatSampler sampler(0.001);
    (void)sampler.stop();  // stop before start: no-op, empty trace
  }
  {
    core::ProcStatSampler sampler(0.001);
    sampler.start();
    sampler.start();  // idempotent while running (pre-fix: terminate)
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    (void)sampler.stop();
    (void)sampler.stop();  // double stop: no-op
    sampler.start();       // restart after stop
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    (void)sampler.stop();
  }
  {
    core::ProcStatSampler sampler(0.001);
    sampler.start();
    // Destruction while running must stop and join, not leak or terminate.
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PoolStress,
                         ::testing::ValuesIn(test::kStressSeeds));

}  // namespace
}  // namespace supmr
