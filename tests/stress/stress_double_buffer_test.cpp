// DoubleBuffer interleaving stress: close-while-full, close-while-empty,
// cancel-mid-stream, and ordered handoff under the seeded schedule shuffler.
// These are the interleavings the ingest pipeline's cancel/error paths
// depend on (docs/concurrency.md has the ownership contract).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "sched_fuzz.hpp"
#include "threading/double_buffer.hpp"

namespace supmr {
namespace {

class DoubleBufferStress : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DoubleBufferStress, OrderedHandoffUnderFuzz) {
  constexpr int kItems = 2000;
  test::SchedFuzz fuzz(GetParam());
  DoubleBuffer<int> buf;

  std::thread producer([&] {
    test::SchedFuzz::Stream sched(fuzz, 1);
    for (int i = 0; i < kItems; ++i) {
      sched.yield_point();
      ASSERT_TRUE(buf.produce(i));
    }
    buf.close();
  });

  test::SchedFuzz::Stream sched(fuzz, 2);
  int expected = 0, v = 0;
  while (buf.consume(v)) {
    EXPECT_EQ(v, expected++);
    EXPECT_LE(buf.occupied(), 2u);  // the paper's two-buffer residency bound
    sched.yield_point();
  }
  EXPECT_EQ(expected, kItems);
  producer.join();
}

// Consumer-side cancel with the producer blocked on a full buffer: close()
// must release the producer with produce() == false, and the already-
// produced slots must still drain in order.
TEST_P(DoubleBufferStress, CloseWhileFullReleasesProducerAndDrains) {
  test::SchedFuzz fuzz(GetParam());
  test::SchedFuzz::Stream sched(fuzz, 0);
  DoubleBuffer<int> buf;
  ASSERT_TRUE(buf.produce(1));
  ASSERT_TRUE(buf.produce(2));  // both slots now occupied

  std::atomic<int> third_result{-1};
  std::thread producer([&] {
    test::SchedFuzz::Stream psched(fuzz, 1);
    psched.yield_point();
    third_result = buf.produce(3) ? 1 : 0;  // blocks: no free slot
  });

  for (int i = 0; i < 16; ++i) sched.yield_point();
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  buf.close();  // the consumer aborting mid-stream
  producer.join();
  EXPECT_EQ(third_result.load(), 0);

  int v = 0;
  ASSERT_TRUE(buf.consume(v));
  EXPECT_EQ(v, 1);
  ASSERT_TRUE(buf.consume(v));
  EXPECT_EQ(v, 2);
  EXPECT_FALSE(buf.consume(v));  // closed and drained
}

// Producer-side close with the consumer blocked on an empty buffer: the
// consumer must wake and see end-of-stream, not sleep forever (the lost-
// wakeup shape: close's notify must be under the same mutex as the wait).
TEST_P(DoubleBufferStress, CloseWhileEmptyReleasesBlockedConsumer) {
  test::SchedFuzz fuzz(GetParam());
  DoubleBuffer<int> buf;
  std::atomic<int> consume_result{-1};
  std::thread consumer([&] {
    test::SchedFuzz::Stream sched(fuzz, 1);
    sched.yield_point();
    int v = 0;
    consume_result = buf.consume(v) ? 1 : 0;  // blocks: nothing produced
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  buf.close();
  consumer.join();
  EXPECT_EQ(consume_result.load(), 0);
}

TEST_P(DoubleBufferStress, CancelMidStreamStopsProducerPromptly) {
  constexpr int kMax = 10000;
  test::SchedFuzz fuzz(GetParam());
  DoubleBuffer<int> buf;
  std::atomic<int> produced{0};

  std::thread producer([&] {
    test::SchedFuzz::Stream sched(fuzz, 1);
    for (int i = 0; i < kMax; ++i) {
      sched.yield_point();
      if (!buf.produce(i)) return;  // cancelled by the consumer
      ++produced;
    }
    buf.close();
  });

  test::SchedFuzz::Stream sched(fuzz, 2);
  const int quit_after = 1 + int(sched.rand() % 50);
  int v = 0, consumed = 0;
  while (consumed < quit_after && buf.consume(v)) {
    EXPECT_EQ(v, consumed++);
    sched.yield_point();
  }
  buf.close();  // cancel: must release a producer blocked in produce()
  producer.join();
  // The producer can be at most 2 slots (the residency bound) past what the
  // consumer took, plus the one produce() that returned false is not counted.
  EXPECT_LE(produced.load(), consumed + 2);
  EXPECT_TRUE(buf.closed());
}

// ASan/heavy-value target: moved-out slots must not double-free or leak when
// the stream is cancelled with values still resident.
TEST_P(DoubleBufferStress, HeavyValuesSurviveCancel) {
  test::SchedFuzz fuzz(GetParam());
  for (int round = 0; round < 50; ++round) {
    DoubleBuffer<std::vector<char>> buf;
    std::thread producer([&] {
      test::SchedFuzz::Stream sched(fuzz, 1);
      for (int i = 0; i < 100; ++i) {
        sched.yield_point();
        if (!buf.produce(std::vector<char>(4096, char('a' + i % 26)))) return;
      }
      buf.close();
    });
    test::SchedFuzz::Stream sched(fuzz, 2);
    std::vector<char> out;
    int taken = 0;
    const int quit_after = 1 + int(sched.rand() % 100);
    while (taken < quit_after && buf.consume(out)) {
      ASSERT_EQ(out.size(), 4096u);
      ++taken;
    }
    buf.close();
    producer.join();
    // Remaining resident vectors are destroyed with `buf` here; ASan flags
    // any double-free / use-after-move mistakes.
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DoubleBufferStress,
                         ::testing::ValuesIn(test::kStressSeeds));

}  // namespace
}  // namespace supmr
