// Ingest pipeline error-path and cancellation stress, for both the planned
// IngestPipeline and the AdaptivePipeline. The key interleaving: when the
// consumer fails (or throws) on an early chunk, the producer is usually
// blocked inside DoubleBuffer::produce() on a full buffer — the run must
// close the buffer before joining or it deadlocks (the ctest TIMEOUT turns
// that hang into a failure). Each TEST_P runs per seed in kStressSeeds.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <thread>

#include "ingest/adaptive.hpp"
#include "ingest/pipeline.hpp"
#include "ingest/record_format.hpp"
#include "ingest/source.hpp"
#include "sched_fuzz.hpp"
#include "storage/fault_device.hpp"
#include "storage/mem_device.hpp"

namespace supmr {
namespace {

using ingest::IngestChunk;
using storage::MemDevice;

std::string make_text(int lines) {
  std::string text;
  for (int i = 0; i < lines; ++i)
    text += "line" + std::to_string(i) + " payload payload\n";
  return text;
}

ingest::SingleDeviceSource make_source(
    const std::shared_ptr<const storage::Device>& dev) {
  return ingest::SingleDeviceSource(
      dev, std::make_shared<ingest::LineFormat>(), 256);
}

class PipelineStress : public ::testing::TestWithParam<std::uint64_t> {};

// The satellite scenario: processing fails on chunk 0 while the producer
// races ahead and blocks on the full double buffer. Pre-fix pipelines that
// joined without closing the buffer hang here forever.
TEST_P(PipelineStress, ConsumerErrorOnChunk0DoesNotDeadlock) {
  test::SchedFuzz fuzz(GetParam());
  auto dev = std::make_shared<MemDevice>(make_text(400), "m");
  auto src = make_source(dev);
  ingest::IngestPipeline pipeline(src);

  test::SchedFuzz::Stream sched(fuzz, 0);
  auto result = pipeline.run([&](IngestChunk& chunk) -> Status {
    // Give the producer time to fill both slots and block in produce().
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    sched.yield_point();
    EXPECT_EQ(chunk.index, 0u);
    return Status::Internal("chunk 0 processing failed");
  });
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInternal);
}

TEST_P(PipelineStress, ConsumerErrorOnRandomChunkDoesNotDeadlock) {
  test::SchedFuzz fuzz(GetParam());
  test::SchedFuzz::Stream sched(fuzz, 0);
  auto dev = std::make_shared<MemDevice>(make_text(400), "m");
  auto src = make_source(dev);
  auto plan = src.plan();
  ASSERT_TRUE(plan.ok());
  ASSERT_GT(plan->size(), 4u);
  const std::uint64_t fail_at = sched.rand() % plan->size();

  ingest::IngestPipeline pipeline(src);
  std::uint64_t processed = 0;
  auto result = pipeline.run_planned(*plan, [&](IngestChunk& chunk) -> Status {
    sched.yield_point();
    if (chunk.index == fail_at) return Status::Internal("injected");
    ++processed;
    return Status::Ok();
  });
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInternal);
  EXPECT_EQ(processed, fail_at);  // chunks arrive in stream order
}

// Regression for the ProducerJoinGuard: an exception escaping process() used
// to destroy the (joinable, possibly produce()-blocked) producer thread,
// i.e. std::terminate. Now it propagates after a clean cancel + join.
TEST_P(PipelineStress, ProcessThrowingPropagatesWithoutTerminate) {
  test::SchedFuzz fuzz(GetParam());
  auto dev = std::make_shared<MemDevice>(make_text(400), "m");
  auto src = make_source(dev);
  ingest::IngestPipeline pipeline(src);
  EXPECT_THROW(
      pipeline.run([&](IngestChunk&) -> Status {
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
        throw std::runtime_error("mapper exploded");
      }),
      std::runtime_error);
}

TEST_P(PipelineStress, ProducerIoErrorSurfacesAfterDrain) {
  test::SchedFuzz fuzz(GetParam());
  test::SchedFuzz::Stream sched(fuzz, 0);
  MemDevice base(make_text(400));
  fault::FaultPlan fplan;
  fplan.fail_calls.push_back(sched.rand() % 12);
  storage::FaultDevice fault(&base, fplan);
  auto dev = std::shared_ptr<const storage::Device>(
      &fault, [](const storage::Device*) {});
  auto src = make_source(dev);
  ingest::IngestPipeline pipeline(src);

  auto result = pipeline.run([&](IngestChunk&) -> Status {
    sched.yield_point();
    return Status::Ok();
  });
  // The fault can land in planning or in ingest; either way the run must
  // finish (join) and surface an IO error — never hang or drop it.
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kIoError);
}

TEST_P(PipelineStress, HappyPathDeliversAllBytesInOrderUnderFuzz) {
  test::SchedFuzz fuzz(GetParam());
  test::SchedFuzz::Stream sched(fuzz, 0);
  const std::string text = make_text(400);
  auto dev = std::make_shared<MemDevice>(text, "m");
  auto src = make_source(dev);
  ingest::IngestPipeline pipeline(src);

  std::string reassembled;
  std::uint64_t next_index = 0;
  auto result = pipeline.run([&](IngestChunk& chunk) -> Status {
    EXPECT_EQ(chunk.index, next_index++);
    reassembled.append(chunk.data.data(), chunk.data.size());
    sched.yield_point();
    return Status::Ok();
  });
  ASSERT_TRUE(result.ok()) << result.status().to_string();
  EXPECT_EQ(reassembled, text);
  EXPECT_EQ(result->total_bytes, text.size());
}

// ------------------------------------------------------ adaptive pipeline

ingest::RateMatchingController::Options small_chunks() {
  ingest::RateMatchingController::Options opt;
  opt.initial_bytes = 512;
  opt.min_bytes = 128;
  opt.max_bytes = 2048;
  opt.round_floor_s = 0.0001;
  return opt;
}

TEST_P(PipelineStress, AdaptiveConsumerErrorOnChunk0DoesNotDeadlock) {
  test::SchedFuzz fuzz(GetParam());
  MemDevice dev(make_text(400));
  ingest::LineFormat format;
  ingest::RateMatchingController controller(small_chunks());
  ingest::AdaptivePipeline pipeline(dev, format, controller);

  auto result = pipeline.run([&](IngestChunk& chunk) -> Status {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    EXPECT_EQ(chunk.index, 0u);
    return Status::Internal("chunk 0 processing failed");
  });
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInternal);
}

TEST_P(PipelineStress, AdaptiveProcessThrowingPropagatesWithoutTerminate) {
  test::SchedFuzz fuzz(GetParam());
  MemDevice dev(make_text(400));
  ingest::LineFormat format;
  ingest::RateMatchingController controller(small_chunks());
  ingest::AdaptivePipeline pipeline(dev, format, controller);
  EXPECT_THROW(
      pipeline.run([&](IngestChunk&) -> Status {
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
        throw std::runtime_error("mapper exploded");
      }),
      std::runtime_error);
}

TEST_P(PipelineStress, AdaptiveHappyPathReassemblesInput) {
  test::SchedFuzz fuzz(GetParam());
  test::SchedFuzz::Stream sched(fuzz, 0);
  const std::string text = make_text(400);
  MemDevice dev(text);
  ingest::LineFormat format;
  ingest::RateMatchingController controller(small_chunks());
  ingest::AdaptivePipeline pipeline(dev, format, controller);

  std::string reassembled;
  auto result = pipeline.run([&](IngestChunk& chunk) -> Status {
    reassembled.append(chunk.data.data(), chunk.data.size());
    sched.yield_point();
    return Status::Ok();
  });
  ASSERT_TRUE(result.ok()) << result.status().to_string();
  EXPECT_EQ(reassembled, text);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PipelineStress,
                         ::testing::ValuesIn(test::kStressSeeds));

}  // namespace
}  // namespace supmr
