// JobManager concurrency hammer: K client threads submit seeded conformance
// cells (mixed apps, thread leases, priorities) at a 4-thread manager under
// schedule fuzzing, every cell oracle-checked against the sequential
// reference. Divergence writes the standard replayable repro spec (into
// SUPMR_HARNESS_REPRO_DIR when set). Also pins the drain/submit race: a
// drain concurrent with submissions must reject or run each job, never
// hang or leak a lease.
#include <gtest/gtest.h>

#include <cstdio>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "runtime/job_manager.hpp"
#include "sched_fuzz.hpp"
#include "tests/harness/harness_util.hpp"

namespace supmr::test {
namespace {

core::ReplaySpec seeded_spec(std::uint64_t& rng_state, std::uint64_t salt) {
  core::ReplaySpec spec;
  switch (splitmix64(rng_state) % 4) {
    case 0: spec = harness::spec_wordcount(salt); break;
    case 1: spec = harness::spec_grep(salt); break;
    case 2: spec = harness::spec_histogram(salt); break;
    default: spec = harness::spec_sort(salt); break;
  }
  // Smaller corpora than the lattice suite: throughput of schedules, not
  // bytes, is what this test buys.
  spec.corpus.bytes = 48 * 1024 + (splitmix64(rng_state) % 4) * 16 * 1024;
  spec.threads = 1 + splitmix64(rng_state) % 3;
  spec.chunk_bytes = 8 * 1024 << (splitmix64(rng_state) % 2);
  if (splitmix64(rng_state) % 3 == 0) {
    spec.merge_mode = core::MergeMode::kPartitioned;
    spec.merge_partitions = 3;
  }
  return spec;
}

class JobManagerStress : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(JobManagerStress, ConcurrentManagedCellsMatchTheReference) {
  SchedFuzz fuzz(GetParam());
  runtime::JobManager::Options opts;
  opts.num_threads = 4;
  opts.memory_budget_bytes = 512ull << 20;
  runtime::JobManager manager(opts);

  constexpr std::size_t kClients = 4;
  constexpr std::size_t kCellsPerClient = 3;
  std::mutex mu;
  std::vector<std::string> failures;

  std::vector<std::thread> clients;
  for (std::size_t c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      SchedFuzz::Stream stream(fuzz, c);
      std::uint64_t rng_state = fuzz.seed() ^ (0x9e3779b9ULL * (c + 1));
      for (std::size_t i = 0; i < kCellsPerClient; ++i) {
        const std::uint64_t salt = 1000 * (c + 1) + i;
        core::ReplaySpec spec = seeded_spec(rng_state, salt);
        stream.yield_point();
        ref::ManagedCellOptions cell;
        cell.priority = static_cast<int>(splitmix64(rng_state) % 3);
        cell.name = "stress-c" + std::to_string(c) + "-" + std::to_string(i);
        auto outcome = ref::run_cell_managed(spec, manager, cell);
        std::string failure;
        if (!outcome.ok()) {
          failure = cell.name + ": " + outcome.status().to_string();
        } else if (!outcome->match) {
          auto path = ref::write_repro(spec, harness::repro_dir(),
                                       harness::sanitize(cell.name));
          failure = cell.name + " diverged:\n" + outcome->diff +
                    "\nreproduce with: supmr replay " +
                    (path.ok() ? *path : path.status().to_string());
        }
        if (!failure.empty()) {
          std::lock_guard<std::mutex> lock(mu);
          failures.push_back(std::move(failure));
        }
        stream.yield_point();
      }
    });
  }
  for (std::thread& t : clients) t.join();
  manager.drain();
  for (const std::string& f : failures) ADD_FAILURE() << f;
  EXPECT_EQ(manager.threads_leased(), 0u);
  EXPECT_EQ(manager.memory_leased_bytes(), 0u);
  EXPECT_EQ(manager.running_jobs(), 0u);
  EXPECT_EQ(manager.queue_depth(), 0u);
}

TEST_P(JobManagerStress, DrainRacingSubmissionsNeverHangsOrLeaks) {
  SchedFuzz fuzz(GetParam());
  runtime::JobManager::Options opts;
  opts.num_threads = 2;
  runtime::JobManager manager(opts);

  // Submitters race a drain: every submit must either be rejected
  // (FailedPrecondition once draining) or produce a job that runs to a
  // terminal state. Either way the books must balance afterwards.
  constexpr std::size_t kSubmitters = 3;
  std::mutex mu;
  std::vector<std::string> failures;
  std::vector<std::thread> submitters;
  for (std::size_t s = 0; s < kSubmitters; ++s) {
    submitters.emplace_back([&, s] {
      SchedFuzz::Stream stream(fuzz, 100 + s);
      for (std::size_t i = 0; i < 4; ++i) {
        core::ReplaySpec spec = harness::spec_grep(5000 + 10 * s + i);
        spec.corpus.bytes = 16 * 1024;
        spec.threads = 1;
        stream.yield_point();
        auto outcome = ref::run_cell_managed(spec, manager);
        if (!outcome.ok()) {
          // The only acceptable failure is the drain closing admissions.
          if (outcome.status().code() != StatusCode::kFailedPrecondition) {
            std::lock_guard<std::mutex> lock(mu);
            failures.push_back("submit " + std::to_string(s) + "/" +
                               std::to_string(i) + ": " +
                               outcome.status().to_string());
          }
        } else if (!outcome->match) {
          std::lock_guard<std::mutex> lock(mu);
          failures.push_back("cell " + std::to_string(s) + "/" +
                             std::to_string(i) + " diverged:\n" +
                             outcome->diff);
        }
        stream.yield_point();
      }
    });
  }
  {
    SchedFuzz::Stream stream(fuzz, 999);
    stream.yield_point();
    manager.drain();
  }
  for (std::thread& t : submitters) t.join();
  for (const std::string& f : failures) ADD_FAILURE() << f;
  EXPECT_TRUE(manager.draining());
  EXPECT_EQ(manager.threads_leased(), 0u);
  EXPECT_EQ(manager.memory_leased_bytes(), 0u);
  EXPECT_EQ(manager.running_jobs(), 0u);
  EXPECT_EQ(manager.queue_depth(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, JobManagerStress,
                         ::testing::ValuesIn(kStressSeeds));

}  // namespace
}  // namespace supmr::test
