// Fault-injection stress: the chunk-recovery paths of both pipelines under
// seeded probabilistic faults. The hang risks hunted here: a permanent fault
// must surface as a clean Status with the producer joined (not a wedged
// double buffer), backoff sleeps must honor pipeline cancellation, and
// degrade-mode skips must keep the stream advancing. Each TEST_P runs per
// seed in kStressSeeds; sanitizer builds run this suite under TSan/ASan.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <memory>
#include <string>

#include "fault/fault_plan.hpp"
#include "fault/retry_policy.hpp"
#include "fault/retrying_device.hpp"
#include "ingest/adaptive.hpp"
#include "ingest/pipeline.hpp"
#include "ingest/record_format.hpp"
#include "ingest/source.hpp"
#include "sched_fuzz.hpp"
#include "storage/fault_device.hpp"
#include "storage/mem_device.hpp"

namespace supmr {
namespace {

using ingest::IngestChunk;
using storage::MemDevice;

std::string make_text(int lines) {
  std::string text;
  for (int i = 0; i < lines; ++i)
    text += "line" + std::to_string(i) + " payload payload\n";
  return text;
}

fault::Recovery fast_recovery(std::uint32_t attempts, bool degrade = false) {
  fault::Recovery r;
  r.policy.max_attempts = attempts;
  r.policy.backoff_base_s = 1e-5;
  r.policy.backoff_max_s = 1e-4;
  r.policy.jitter = 0.5;
  r.degrade = degrade;
  return r;
}

std::shared_ptr<const storage::Device> borrow(const storage::Device* dev) {
  return std::shared_ptr<const storage::Device>(dev,
                                                [](const storage::Device*) {});
}

class FaultStress : public ::testing::TestWithParam<std::uint64_t> {};

// Transient faults at a rate the retry budget beats: the pipeline must
// deliver every byte despite the injections.
TEST_P(FaultStress, TransientFaultsRecoverLosslessly) {
  test::SchedFuzz fuzz(GetParam());
  test::SchedFuzz::Stream sched(fuzz, 0);
  const std::string text = make_text(400);
  MemDevice base(text);
  // Plan over the clean device — planning probes are fail-fast by design,
  // so faults target only the data path.
  ingest::SingleDeviceSource clean(
      borrow(&base), std::make_shared<ingest::LineFormat>(), 256);
  auto extents = clean.plan();
  ASSERT_TRUE(extents.ok());

  fault::FaultPlan plan;
  plan.seed = GetParam();
  plan.transient_p = 0.25;
  storage::FaultDevice fault(&base, plan);
  ingest::SingleDeviceSource src(
      borrow(&fault), std::make_shared<ingest::LineFormat>(), 256);

  // 8 attempts: P(8 consecutive transients) = 0.25^8 ~ 1.5e-5 per chunk.
  ingest::IngestPipeline pipeline(src, fast_recovery(8));
  std::uint64_t bytes = 0;
  auto stats = pipeline.run_planned(*extents, [&](IngestChunk& chunk) {
    sched.yield_point();
    bytes += chunk.data.size();
    return Status::Ok();
  });
  ASSERT_TRUE(stats.ok()) << stats.status().to_string();
  EXPECT_EQ(bytes, text.size());
  EXPECT_EQ(stats->chunks_skipped, 0u);
}

// A permanent fault mid-stream: the job fails with a clean, annotated
// IoError; the producer thread is joined (the test returning at all proves
// it — a wedged double buffer trips the ctest TIMEOUT).
TEST_P(FaultStress, PermanentFaultSurfacesCleanStatus) {
  test::SchedFuzz fuzz(GetParam());
  test::SchedFuzz::Stream sched(fuzz, 0);
  const std::string text = make_text(400);
  MemDevice base(text);
  // Plan on the clean device (planning probes would trip a poisoned range),
  // then run the planned extents through a device poisoning a random chunk.
  ingest::SingleDeviceSource planner(
      borrow(&base), std::make_shared<ingest::LineFormat>(), 256);
  auto extents = planner.plan();
  ASSERT_TRUE(extents.ok());
  ASSERT_GT(extents->size(), 4u);
  const auto& victim = (*extents)[sched.rand() % extents->size()];
  fault::FaultPlan fplan;
  fplan.permanent.emplace_back(victim.offset, victim.offset + victim.length);
  storage::FaultDevice fault(&base, fplan);
  ingest::SingleDeviceSource src(
      borrow(&fault), std::make_shared<ingest::LineFormat>(), 256);

  ingest::IngestPipeline pipeline(src, fast_recovery(3));
  auto stats = pipeline.run_planned(*extents, [&](IngestChunk&) {
    sched.yield_point();
    return Status::Ok();
  });
  ASSERT_FALSE(stats.ok());
  EXPECT_EQ(stats.status().code(), StatusCode::kIoError);
  EXPECT_NE(stats.status().message().find("[fault:"), std::string::npos);
}

// Degrade mode under probabilistic + permanent faults: the run completes,
// and skipped + delivered always covers the whole plan.
TEST_P(FaultStress, DegradeModeAccountsForEveryChunk) {
  test::SchedFuzz fuzz(GetParam());
  test::SchedFuzz::Stream sched(fuzz, 0);
  const std::string text = make_text(400);
  MemDevice base(text);
  // Plan clean, then poison 1-3 random extents (possibly duplicates —
  // overlap is fine) in the plan of the device the pipeline reads from.
  ingest::SingleDeviceSource planner(
      borrow(&base), std::make_shared<ingest::LineFormat>(), 256);
  auto extents = planner.plan();
  ASSERT_TRUE(extents.ok());
  fault::FaultPlan fplan;
  const int poisoned = 1 + int(sched.rand() % 3);
  for (int i = 0; i < poisoned; ++i) {
    const auto& victim = (*extents)[sched.rand() % extents->size()];
    fplan.permanent.emplace_back(victim.offset,
                                 victim.offset + victim.length);
  }
  storage::FaultDevice fault(&base, fplan);
  ingest::SingleDeviceSource src(
      borrow(&fault), std::make_shared<ingest::LineFormat>(), 256);

  ingest::IngestPipeline pipeline(src, fast_recovery(2, /*degrade=*/true));
  std::uint64_t bytes = 0;
  std::uint64_t delivered = 0;
  auto stats = pipeline.run_planned(*extents, [&](IngestChunk& chunk) {
    sched.yield_point();
    bytes += chunk.data.size();
    ++delivered;
    return Status::Ok();
  });
  ASSERT_TRUE(stats.ok()) << stats.status().to_string();
  EXPECT_GE(stats->chunks_skipped, 1u);
  EXPECT_EQ(delivered + stats->chunks_skipped, extents->size());
  EXPECT_EQ(bytes + stats->bytes_skipped, text.size());
}

// Adaptive pipeline: same degrade discipline with controller-driven chunk
// sizing — skips must advance the stream, not stall or re-read forever.
TEST_P(FaultStress, AdaptiveDegradeAdvancesPastPoison) {
  test::SchedFuzz fuzz(GetParam());
  test::SchedFuzz::Stream sched(fuzz, 0);
  // FixedFormat: boundary adjustment is pure arithmetic, so the poisoned
  // range hits only the data reads (adaptive planning probes are fail-fast).
  const std::string text(40000, 'x');
  MemDevice base(text);
  fault::FaultPlan plan;
  const std::uint64_t lo = 2000 + sched.rand() % 4000;
  plan.permanent.emplace_back(lo, lo + 500);
  storage::FaultDevice fault(&base, plan);
  ingest::FixedFormat format(100);
  ingest::RateMatchingController::Options copt;
  copt.initial_bytes = 1024;
  copt.min_bytes = 256;
  copt.max_bytes = 4096;
  ingest::RateMatchingController controller(copt);
  ingest::AdaptivePipeline pipeline(fault, format, controller,
                                    fast_recovery(2, /*degrade=*/true));
  std::uint64_t bytes = 0;
  auto stats = pipeline.run([&](IngestChunk& chunk) {
    sched.yield_point();
    bytes += chunk.data.size();
    return Status::Ok();
  });
  ASSERT_TRUE(stats.ok()) << stats.status().to_string();
  EXPECT_GE(stats->chunks_skipped, 1u);
  EXPECT_EQ(bytes + stats->bytes_skipped, text.size());
}

// Consumer failure during a producer backoff wait: cancellation must cut the
// sleep short and the pipeline must still join promptly.
TEST_P(FaultStress, ConsumerErrorCancelsBackoffWait) {
  test::SchedFuzz fuzz(GetParam());
  test::SchedFuzz::Stream sched(fuzz, 0);
  const std::string text = make_text(400);
  MemDevice base(text);
  ingest::SingleDeviceSource clean(
      borrow(&base), std::make_shared<ingest::LineFormat>(), 256);
  auto extents = clean.plan();
  ASSERT_TRUE(extents.ok());

  fault::FaultPlan plan;
  plan.seed = GetParam();
  plan.transient_p = 0.9;  // producer spends most of its time backing off
  storage::FaultDevice fault(&base, plan);
  ingest::SingleDeviceSource src(
      borrow(&fault), std::make_shared<ingest::LineFormat>(), 256);

  fault::Recovery recovery = fast_recovery(1000);
  recovery.policy.backoff_base_s = 0.050;  // long sleeps worth cancelling
  recovery.policy.backoff_max_s = 0.100;
  ingest::IngestPipeline pipeline(src, recovery);
  const auto t0 = std::chrono::steady_clock::now();
  auto stats = pipeline.run_planned(*extents, [&](IngestChunk&) -> Status {
    sched.yield_point();
    return Status::Internal("consumer bailed");
  });
  const double took =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  ASSERT_FALSE(stats.ok());
  // Either the consumer's error or — if the producer lost the race and the
  // consumer never got a chunk — nothing at all; in both cases the teardown
  // must be prompt, not 1000 x 50ms of backoff.
  EXPECT_LT(took, 30.0);
}

// Deadline expiry under a permanently failing read: bounded give-up time.
TEST_P(FaultStress, DeadlineBoundsRetryLoop) {
  test::SchedFuzz fuzz(GetParam());
  const std::string text = make_text(100);
  MemDevice base(text);
  fault::FaultPlan plan;
  plan.permanent.emplace_back(0, text.size());  // everything is poisoned
  storage::FaultDevice fault(&base, plan);

  fault::RetryPolicy policy;
  policy.max_attempts = 1u << 30;  // attempts alone would never stop it
  policy.backoff_base_s = 0.002;
  policy.backoff_mult = 1.0;
  policy.backoff_max_s = 0.002;
  policy.read_deadline_s = 0.100;
  policy.seed = GetParam();
  fault::RetryingDevice dev(&fault, policy);
  char buf[64];
  const auto t0 = std::chrono::steady_clock::now();
  auto n = dev.read_at(0, std::span<char>(buf, sizeof(buf)));
  const double took =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  ASSERT_FALSE(n.ok());
  EXPECT_EQ(dev.deadline_expired(), 1u);
  EXPECT_LT(took, 5.0);  // gave up around the 100ms budget
}

INSTANTIATE_TEST_SUITE_P(Seeds, FaultStress,
                         ::testing::ValuesIn(test::kStressSeeds));

}  // namespace
}  // namespace supmr
