// Stress: the observability layer under concurrent writers and readers.
//
// Hammers a private MetricsRegistry and TraceRecorder from many threads
// under seeded schedule perturbation while a reader thread concurrently
// snapshots / serializes. Mid-run snapshots are approximate by contract, but
// after every writer joins the final totals must be exact — sharding loses
// nothing — and every concurrently taken JSON document must stay
// well-formed. Primary payload of the TSan build (`ctest -L sanitizer`).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "sched_fuzz.hpp"

namespace supmr::obs {
namespace {

class ObsStress : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ObsStress, CountersAndHistogramsAggregateExactly) {
  test::SchedFuzz fuzz(GetParam());
  MetricsRegistry reg;
  constexpr int kWriters = 6;
  constexpr std::uint64_t kOps = 4000;

  std::atomic<bool> stop{false};
  std::thread reader([&] {
    test::SchedFuzz::Stream stream(fuzz, 1000);
    while (!stop.load(std::memory_order_acquire)) {
      const MetricsSnapshot snap = reg.snapshot();
      // Mid-run cut: totals are monotone, never above the final count.
      auto it = snap.counters.find("ops");
      if (it != snap.counters.end()) {
        EXPECT_LE(it->second, kWriters * kOps);
      }
      stream.yield_point();
    }
  });

  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&, w] {
      test::SchedFuzz::Stream stream(fuzz, w);
      CounterCell* ops = reg.counter_cell("ops");
      HistogramCell* lat = reg.histogram_cell("lat");
      for (std::uint64_t i = 0; i < kOps; ++i) {
        ops->add(1);
        lat->observe(stream.rand() % 100000);
        if ((i & 255) == 0) stream.yield_point();
      }
    });
  }
  for (auto& t : writers) t.join();
  stop.store(true, std::memory_order_release);
  reader.join();

  const MetricsSnapshot snap = reg.snapshot();
  EXPECT_EQ(snap.counters.at("ops"), kWriters * kOps);
  const HistogramSnapshot& h = snap.histograms.at("lat");
  EXPECT_EQ(h.count, kWriters * kOps);
  EXPECT_LT(h.max, 100000u);
  std::uint64_t bucket_total = 0;
  for (std::size_t b = 0; b < kHistogramBuckets; ++b)
    bucket_total += h.buckets[b];
  EXPECT_EQ(bucket_total, h.count);
}

TEST_P(ObsStress, TraceRecordWhileSerializing) {
  test::SchedFuzz fuzz(GetParam());
  TraceRecorder rec(/*max_events_per_thread=*/1 << 14);
  rec.enable();
  constexpr int kWriters = 4;
  constexpr int kEvents = 2000;

  std::atomic<bool> stop{false};
  std::thread reader([&] {
    test::SchedFuzz::Stream stream(fuzz, 2000);
    while (!stop.load(std::memory_order_acquire)) {
      const std::string json = rec.to_json();
      // Cheap well-formedness probe on every concurrent snapshot (the unit
      // suite runs the strict validator; here shape beats thoroughness).
      EXPECT_EQ(json.front(), '{');
      EXPECT_EQ(json.back(), '}');
      stream.yield_point();
    }
  });

  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&, w] {
      test::SchedFuzz::Stream stream(fuzz, 100 + w);
      rec.set_thread_name("writer");
      for (int i = 0; i < kEvents; ++i) {
        {
          TraceScope scope("stress", "op", rec);
          scope.set_arg("i", std::uint64_t(i));
        }
        if ((stream.rand() & 7) == 0) rec.instant("stress", "tick");
        if ((i & 127) == 0) stream.yield_point();
      }
    });
  }
  for (auto& t : writers) t.join();
  stop.store(true, std::memory_order_release);
  reader.join();

  // Nothing dropped (cap is far above the event count), so the final
  // document must contain every span from every writer.
  EXPECT_EQ(rec.dropped_events(), 0u);
  const std::string json = rec.to_json();
  std::size_t spans = 0, pos = 0;
  while ((pos = json.find("\"name\":\"op\"", pos)) != std::string::npos) {
    ++spans;
    pos += 1;
  }
  EXPECT_EQ(spans, std::size_t{kWriters} * kEvents);
}

TEST_P(ObsStress, ResetRacesWithWriters) {
  test::SchedFuzz fuzz(GetParam());
  MetricsRegistry reg;
  constexpr int kWriters = 4;
  std::atomic<bool> stop{false};

  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&, w] {
      test::SchedFuzz::Stream stream(fuzz, w);
      CounterCell* c = reg.counter_cell("racing");
      while (!stop.load(std::memory_order_acquire)) {
        c->add(1);
        if ((stream.rand() & 63) == 0) stream.yield_point();
      }
    });
  }
  test::SchedFuzz::Stream stream(fuzz, 3000);
  for (int i = 0; i < 50; ++i) {
    reg.reset();
    (void)reg.snapshot();
    stream.yield_point();
  }
  stop.store(true, std::memory_order_release);
  for (auto& t : writers) t.join();

  // After the dust settles: one more reset gives an exactly-zero snapshot.
  reg.reset();
  EXPECT_EQ(reg.snapshot().counters.at("racing"), 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ObsStress,
                         ::testing::ValuesIn(test::kStressSeeds));

}  // namespace
}  // namespace supmr::obs
