// Seeded schedule shuffler for concurrency stress tests.
//
// Thread interleavings are the input space of a concurrency test, but the OS
// scheduler explores only a thin, repetitive slice of it — especially on few
// cores, where threads run long quanta back-to-back. SchedFuzz widens the
// slice: each participating thread owns a deterministic PRNG stream derived
// from a master seed plus the thread's id, and at every yield_point() it
// either runs through, spins briefly, yields, or sleeps a few microseconds.
// The injected perturbations are therefore a pure function of the seed; the
// seed is printed on construction so a failing schedule can be re-run with
//
//     SUPMR_SCHED_SEED=<seed> ./stress_foo_test --gtest_filter=...
//
// Reproduction is best-effort — the kernel still makes the final scheduling
// decision — but pinning the perturbation sequence reproduces the large
// majority of schedule-dependent failures in practice.
//
// Tests instantiate over kStressSeeds so every ctest run exercises three
// distinct schedules per test (the suite's acceptance bar); the env var
// overrides all of them for a targeted replay.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <thread>

namespace supmr::test {

// splitmix64: tiny, seedable, and statistically fine for schedule jitter.
inline std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

class SchedFuzz {
 public:
  explicit SchedFuzz(std::uint64_t seed) : seed_(effective_seed(seed)) {
    std::fprintf(stderr,
                 "[sched_fuzz] seed=%llu (replay: SUPMR_SCHED_SEED=%llu)\n",
                 static_cast<unsigned long long>(seed_),
                 static_cast<unsigned long long>(seed_));
  }

  std::uint64_t seed() const { return seed_; }

  // One perturbation stream per test thread; `tid` must be distinct per
  // thread so streams decorrelate. Streams are cheap value types — create
  // them inside the thread body.
  class Stream {
   public:
    Stream(const SchedFuzz& fuzz, std::uint64_t tid)
        : state_(fuzz.seed_ ^ (0x632be59bd9b4e019ULL * (tid + 1))) {}

    // Call between operations on the structure under test.
    void yield_point() {
      switch (splitmix64(state_) & 7) {
        case 0:
          std::this_thread::yield();
          break;
        case 1: {  // short spin: perturbs timing without a syscall
          std::atomic<int> spin{0};
          while (spin.fetch_add(1, std::memory_order_relaxed) < 64) {
          }
          break;
        }
        case 2:
          std::this_thread::sleep_for(
              std::chrono::microseconds(splitmix64(state_) % 128));
          break;
        default:  // run through at full speed
          break;
      }
    }

    std::uint64_t rand() { return splitmix64(state_); }

   private:
    std::uint64_t state_;
  };

  static std::uint64_t effective_seed(std::uint64_t fallback) {
    if (const char* env = std::getenv("SUPMR_SCHED_SEED"))
      return std::strtoull(env, nullptr, 0);
    return fallback;
  }

 private:
  std::uint64_t seed_;
};

// Default seed set: every stress test runs once per seed, so one ctest pass
// covers three distinct injected schedules.
inline constexpr std::uint64_t kStressSeeds[] = {0xA11CE5ULL, 0xB0BCA7ULL,
                                                 0xC0FFEEULL};

}  // namespace supmr::test
