// JobManager unit tests: admission edges (zero-thread lease, over-budget,
// oversized lease, full queue, submit-during-drain), lease accounting across
// success/failure/exception, priority dispatch with the no-backfill rule,
// and the serve-spec parser. Blocking probe apps pin the pool so queue
// ordering is observable deterministically.
#include <gtest/gtest.h>

#include <condition_variable>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "apps/word_count.hpp"
#include "core/application.hpp"
#include "core/job.hpp"
#include "fault/fault_plan.hpp"
#include "ingest/record_format.hpp"
#include "ingest/source.hpp"
#include "runtime/job_manager.hpp"
#include "runtime/serve_spec.hpp"
#include "storage/fault_device.hpp"
#include "storage/mem_device.hpp"
#include "wload/text_corpus.hpp"

namespace supmr::runtime {
namespace {

using ingest::LineFormat;
using ingest::SingleDeviceSource;
using storage::MemDevice;

std::shared_ptr<const storage::Device> mem_corpus(std::uint64_t bytes,
                                                  std::uint64_t seed) {
  wload::TextCorpusConfig cfg;
  cfg.total_bytes = bytes;
  cfg.seed = seed;
  return std::make_shared<MemDevice>(wload::generate_text(cfg), "mem");
}

// One app + source pair per submission (Applications hold per-job state).
struct Tenant {
  explicit Tenant(std::uint64_t seed = 1, std::uint64_t bytes = 64 * 1024)
      : device(mem_corpus(bytes, seed)),
        source(device, std::make_shared<LineFormat>(), 8 * 1024) {}

  JobRequest request(std::size_t threads = 1) {
    JobRequest r;
    r.app = &app;
    r.source = &source;
    r.config.mode = core::ExecMode::kIngestMR;
    r.config.num_map_threads = threads;
    r.config.num_reduce_threads = threads;
    r.threads = threads;
    return r;
  }

  std::shared_ptr<const storage::Device> device;
  apps::WordCountApp app;
  SingleDeviceSource source;
};

// Minimal app that records dispatch order and optionally parks its map task
// until the test releases it — pinning the pool so queued submissions stack
// up behind a running job.
class ProbeApp final : public core::Application {
 public:
  struct Sequencer {
    std::mutex mu;
    std::condition_variable cv;
    std::vector<int> order;
    bool released = false;

    void record(int tag) {
      std::lock_guard<std::mutex> lock(mu);
      order.push_back(tag);
    }
    void release() {
      {
        std::lock_guard<std::mutex> lock(mu);
        released = true;
      }
      cv.notify_all();
    }
    void await_release() {
      std::unique_lock<std::mutex> lock(mu);
      cv.wait(lock, [&] { return released; });
    }
  };

  ProbeApp(Sequencer& seq, int tag, bool block = false)
      : seq_(seq), tag_(tag), block_(block) {}

  void init(std::size_t) override {}
  Status prepare_round(const ingest::IngestChunk&) override {
    if (!recorded_) {
      seq_.record(tag_);
      recorded_ = true;
    }
    return Status::Ok();
  }
  std::size_t round_tasks() const override { return 1; }
  void map_task(std::size_t, std::size_t) override {
    if (block_) seq_.await_release();
  }
  Status reduce(ThreadPool&, std::size_t) override { return Status::Ok(); }
  Status merge(ThreadPool&, const core::MergePlan&,
               merge::MergeStats*) override {
    return Status::Ok();
  }
  std::uint64_t result_count() const override { return 0; }

 private:
  Sequencer& seq_;
  int tag_;
  bool block_;
  bool recorded_ = false;
};

class ThrowingApp final : public core::Application {
 public:
  void init(std::size_t) override {}
  Status prepare_round(const ingest::IngestChunk&) override {
    return Status::Ok();
  }
  std::size_t round_tasks() const override { return 0; }
  void map_task(std::size_t, std::size_t) override {}
  Status reduce(ThreadPool&, std::size_t) override {
    throw std::logic_error("container lifecycle misuse");
  }
  Status merge(ThreadPool&, const core::MergePlan&,
               merge::MergeStats*) override {
    return Status::Ok();
  }
  std::uint64_t result_count() const override { return 0; }
};

JobManager::Options small_manager(std::size_t threads) {
  JobManager::Options opts;
  opts.num_threads = threads;
  opts.memory_budget_bytes = 256ull << 20;
  return opts;
}

TEST(JobManager, SingleJobSucceedsAndReturnsLease) {
  JobManager manager(small_manager(2));
  Tenant tenant;
  auto handle = manager.submit(tenant.request(2));
  ASSERT_TRUE(handle.ok()) << handle.status().to_string();
  auto result = handle->wait();
  ASSERT_TRUE(result.ok()) << result.status().to_string();
  EXPECT_GT(result->result_count, 0u);
  EXPECT_EQ(handle->state(), JobState::kSucceeded);

  manager.drain();
  EXPECT_EQ(manager.threads_leased(), 0u);
  EXPECT_EQ(manager.memory_leased_bytes(), 0u);
  EXPECT_EQ(manager.running_jobs(), 0u);
  EXPECT_EQ(manager.queue_depth(), 0u);
}

TEST(JobManager, CombiningJobAccountsTableAgainstLease) {
  // A managed job on the combining container must surface its fold
  // accounting through JobResult so the manager can charge the table
  // footprint against the memory lease (docs/containers.md).
  JobManager manager(small_manager(2));
  Tenant tenant;
  ASSERT_TRUE(tenant.app.use_container(core::ContainerMode::kCombining).ok());
  JobRequest request = tenant.request(2);
  request.memory_bytes = 8ull << 20;
  auto handle = manager.submit(std::move(request));
  ASSERT_TRUE(handle.ok()) << handle.status().to_string();
  auto result = handle->wait();
  ASSERT_TRUE(result.ok()) << result.status().to_string();
  EXPECT_GT(result->result_count, 0u);
  // The fold really ran: emits were folded and the table footprint the
  // lease is charged for is real and nonzero.
  EXPECT_GT(result->combine.emits, 0u);
  EXPECT_GT(result->combine.keys_folded, 0u);
  EXPECT_GT(result->combine.table_bytes, 0u);
  EXPECT_LT(result->combine.bytes_into_merge, result->combine.bytes_emitted);
  manager.drain();
  EXPECT_EQ(manager.memory_leased_bytes(), 0u);
}

TEST(JobManager, DefaultContainerJobReportsNoCombineStats) {
  JobManager manager(small_manager(2));
  Tenant tenant;  // default container: no fold accounting to charge
  auto handle = manager.submit(tenant.request(2));
  ASSERT_TRUE(handle.ok()) << handle.status().to_string();
  auto result = handle->wait();
  ASSERT_TRUE(result.ok()) << result.status().to_string();
  EXPECT_EQ(result->combine.emits, 0u);
  EXPECT_EQ(result->combine.table_bytes, 0u);
  manager.drain();
}

TEST(JobManager, FailedJobStillReturnsLease) {
  JobManager manager(small_manager(2));
  Tenant tenant;
  // Poison every read: the job must fail, the lease must still come back.
  auto plan = fault::FaultPlan::parse("permanent=0-1000000");
  ASSERT_TRUE(plan.ok());
  auto faulty = std::make_shared<storage::FaultDevice>(tenant.device, *plan);
  SingleDeviceSource source(faulty, std::make_shared<LineFormat>(),
                            8 * 1024);
  JobRequest request = tenant.request(1);
  request.source = &source;
  auto handle = manager.submit(std::move(request));
  ASSERT_TRUE(handle.ok());
  auto result = handle->wait();
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(handle->state(), JobState::kFailed);
  manager.drain();
  EXPECT_EQ(manager.threads_leased(), 0u);
  EXPECT_EQ(manager.memory_leased_bytes(), 0u);
}

TEST(JobManager, ThrowingJobFailsWithoutKillingTheManager) {
  JobManager manager(small_manager(2));
  ThrowingApp app;
  Tenant tenant;
  JobRequest request = tenant.request(1);
  request.app = &app;
  auto handle = manager.submit(std::move(request));
  ASSERT_TRUE(handle.ok());
  auto result = handle->wait();
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().to_string().find("job raised"),
            std::string::npos);

  // The manager survives: a healthy job on the same manager still runs.
  Tenant healthy(2);
  auto next = manager.submit(healthy.request(1));
  ASSERT_TRUE(next.ok());
  EXPECT_TRUE(next->wait().ok());
}

TEST(JobManager, ZeroThreadLeaseIsRejected) {
  JobManager manager(small_manager(2));
  Tenant tenant;
  JobRequest request = tenant.request(1);
  request.threads = 0;
  request.config.num_map_threads = 0;
  request.config.num_reduce_threads = 0;
  auto handle = manager.submit(std::move(request));
  ASSERT_FALSE(handle.ok());
  EXPECT_EQ(handle.status().code(), StatusCode::kInvalidArgument);
}

TEST(JobManager, OversizedLeasesAreRejectedUpFront) {
  JobManager manager(small_manager(2));
  Tenant tenant;

  JobRequest wide = tenant.request(3);  // > pool size: can never dispatch
  auto h1 = manager.submit(std::move(wide));
  ASSERT_FALSE(h1.ok());
  EXPECT_EQ(h1.status().code(), StatusCode::kInvalidArgument);

  JobRequest hungry = tenant.request(1);
  hungry.memory_bytes = manager.options().memory_budget_bytes + 1;
  auto h2 = manager.submit(std::move(hungry));
  ASSERT_FALSE(h2.ok());
  EXPECT_EQ(h2.status().code(), StatusCode::kResourceExhausted);

  JobRequest null_app = tenant.request(1);
  null_app.app = nullptr;
  auto h3 = manager.submit(std::move(null_app));
  ASSERT_FALSE(h3.ok());
  EXPECT_EQ(h3.status().code(), StatusCode::kInvalidArgument);
}

TEST(JobManager, SubmitDuringDrainFails) {
  JobManager manager(small_manager(2));
  manager.drain();
  EXPECT_TRUE(manager.draining());
  Tenant tenant;
  auto handle = manager.submit(tenant.request(1));
  ASSERT_FALSE(handle.ok());
  EXPECT_EQ(handle.status().code(), StatusCode::kFailedPrecondition);
  manager.drain();  // idempotent
}

TEST(JobManager, AdmissionQueueIsBounded) {
  JobManager::Options opts = small_manager(1);
  opts.max_queued = 2;
  JobManager manager(opts);

  ProbeApp::Sequencer seq;
  ProbeApp blocker(seq, 0, /*block=*/true);
  Tenant pinned;
  JobRequest pin = pinned.request(1);
  pin.app = &blocker;
  auto running = manager.submit(std::move(pin));
  ASSERT_TRUE(running.ok());

  std::vector<std::unique_ptr<Tenant>> tenants;
  std::vector<JobHandle> queued;
  for (int i = 0; i < 2; ++i) {
    tenants.push_back(std::make_unique<Tenant>(10 + i, 16 * 1024));
    auto h = manager.submit(tenants.back()->request(1));
    ASSERT_TRUE(h.ok()) << h.status().to_string();
    queued.push_back(*h);
  }
  tenants.push_back(std::make_unique<Tenant>(99, 16 * 1024));
  auto overflow = manager.submit(tenants.back()->request(1));
  ASSERT_FALSE(overflow.ok());
  EXPECT_EQ(overflow.status().code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(manager.queue_depth(), 2u);

  seq.release();
  for (const JobHandle& h : queued) EXPECT_TRUE(h.wait().ok());
  manager.drain();
}

TEST(JobManager, DispatchesByPriorityFifoWithinTies) {
  JobManager manager(small_manager(1));
  ProbeApp::Sequencer seq;

  Tenant pinned;
  ProbeApp blocker(seq, 0, /*block=*/true);
  JobRequest pin = pinned.request(1);
  pin.app = &blocker;
  auto running = manager.submit(std::move(pin));
  ASSERT_TRUE(running.ok());

  // Queue while the pool is pinned: priorities 1, 5, 5, 3 must dispatch as
  // 5, 5 (submission order), 3, 1 once the blocker releases.
  struct Queued {
    int priority;
    int tag;
  };
  const std::vector<Queued> plan = {{1, 1}, {5, 2}, {5, 3}, {3, 4}};
  std::vector<std::unique_ptr<Tenant>> tenants;
  std::vector<std::unique_ptr<ProbeApp>> apps;
  std::vector<JobHandle> handles;
  for (const Queued& q : plan) {
    tenants.push_back(std::make_unique<Tenant>(20 + q.tag, 16 * 1024));
    apps.push_back(std::make_unique<ProbeApp>(seq, q.tag));
    JobRequest request = tenants.back()->request(1);
    request.app = apps.back().get();
    request.priority = q.priority;
    auto h = manager.submit(std::move(request));
    ASSERT_TRUE(h.ok());
    handles.push_back(*h);
  }
  EXPECT_EQ(manager.queue_depth(), 4u);

  seq.release();
  for (const JobHandle& h : handles) ASSERT_TRUE(h.wait().ok());
  manager.drain();
  EXPECT_EQ(seq.order, (std::vector<int>{0, 2, 3, 4, 1}));
}

TEST(JobManager, NoBackfillPastAJobThatDoesNotFit) {
  JobManager manager(small_manager(2));
  ProbeApp::Sequencer seq;

  Tenant pinned;
  ProbeApp blocker(seq, 0, /*block=*/true);
  JobRequest pin = pinned.request(1);
  pin.app = &blocker;
  auto running = manager.submit(std::move(pin));
  ASSERT_TRUE(running.ok());

  // Head of queue wants both threads and cannot fit while the blocker holds
  // one; the narrow job behind it must NOT slip past.
  Tenant wide_tenant(30, 16 * 1024), narrow_tenant(31, 16 * 1024);
  ProbeApp wide_app(seq, 1), narrow_app(seq, 2);
  JobRequest wide = wide_tenant.request(2);
  wide.app = &wide_app;
  JobRequest narrow = narrow_tenant.request(1);
  narrow.app = &narrow_app;
  auto wide_h = manager.submit(std::move(wide));
  auto narrow_h = manager.submit(std::move(narrow));
  ASSERT_TRUE(wide_h.ok());
  ASSERT_TRUE(narrow_h.ok());
  EXPECT_EQ(manager.queue_depth(), 2u);

  seq.release();
  ASSERT_TRUE(wide_h->wait().ok());
  ASSERT_TRUE(narrow_h->wait().ok());
  manager.drain();
  EXPECT_EQ(seq.order, (std::vector<int>{0, 1, 2}));
}

TEST(JobManager, LeaseAccountingWhileRunning) {
  JobManager manager(small_manager(4));
  ProbeApp::Sequencer seq;
  Tenant tenant;
  ProbeApp blocker(seq, 0, /*block=*/true);
  JobRequest request = tenant.request(3);
  request.app = &blocker;
  request.memory_bytes = 32ull << 20;
  auto handle = manager.submit(std::move(request));
  ASSERT_TRUE(handle.ok());

  // Wait until the job is actually running, then check the gauges.
  while (handle->state() == JobState::kQueued) std::this_thread::yield();
  EXPECT_EQ(manager.running_jobs(), 1u);
  EXPECT_EQ(manager.threads_leased(), 3u);
  EXPECT_EQ(manager.memory_leased_bytes(), 32ull << 20);

  seq.release();
  ASSERT_TRUE(handle->wait().ok());
  manager.drain();
  EXPECT_EQ(manager.threads_leased(), 0u);
  EXPECT_EQ(manager.memory_leased_bytes(), 0u);
}

TEST(ResourceLease, DefaultIsInactiveAndMoveSafe) {
  ResourceLease a;
  EXPECT_FALSE(a.active());
  EXPECT_EQ(a.threads(), 0u);
  ResourceLease b = std::move(a);
  EXPECT_FALSE(b.active());
  b.release();  // idempotent no-op on an inactive lease
  EXPECT_FALSE(b.active());
}

TEST(JobHandle, EmptyHandleFailsWait) {
  JobHandle handle;
  EXPECT_FALSE(handle.valid());
  auto result = handle.wait();
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kFailedPrecondition);
}

// ------------------------------------------------------------- serve spec

constexpr char kSpecJson[] = R"({
  "app": "wordcount",
  "corpus": {"kind": "text", "bytes": 131072, "seed": 11, "num_files": 6},
  "params": {
    "key_bytes": 10, "record_bytes": 100, "app_partitions": 0,
    "hist_lo": 0, "hist_hi": 256, "hist_bins": 32,
    "grep_patterns": "th,he,zz", "memory_budget": 0
  },
  "cell": {
    "mode": "supmr", "merge": "pway", "threads": 3,
    "merge_partitions": 0, "chunk_bytes": 16384, "files_per_chunk": 3,
    "degrade": false, "fault_plan": "", "retry_attempts": 1
  }
})";

std::string serve_json(const std::string& jobs) {
  return "{\"pool_threads\": 4, \"memory_budget_bytes\": 1048576,\n"
         "\"max_queued\": 8, \"jobs\": [" +
         jobs + "]}";
}

TEST(ServeSpec, ParsesJobsWithLeaseOverrides) {
  const std::string text = serve_json(
      std::string("{\"name\": \"wc\", \"priority\": 5, \"threads\": 2,"
                  "\"memory_bytes\": 4096, \"repeat\": 3, \"spec\": ") +
      kSpecJson + "}");
  auto spec = parse_serve_spec(text);
  ASSERT_TRUE(spec.ok()) << spec.status().to_string();
  EXPECT_EQ(spec->pool_threads, 4u);
  EXPECT_EQ(spec->memory_budget_bytes, 1048576u);
  EXPECT_EQ(spec->max_queued, 8u);
  ASSERT_EQ(spec->jobs.size(), 1u);
  const ServeJobSpec& job = spec->jobs[0];
  EXPECT_EQ(job.name, "wc");
  EXPECT_EQ(job.priority, 5);
  EXPECT_EQ(job.threads, 2u);
  EXPECT_EQ(job.memory_bytes, 4096u);
  EXPECT_EQ(job.repeat, 3u);
  EXPECT_EQ(job.spec.app, "wordcount");
  EXPECT_EQ(job.spec.threads, 3u);
}

TEST(ServeSpec, RejectsMalformedSpecs) {
  // Unknown top-level key.
  EXPECT_FALSE(parse_serve_spec("{\"bogus\": 1}").ok());
  // Unknown job key.
  EXPECT_FALSE(
      parse_serve_spec(serve_json(std::string("{\"nope\": 1, \"spec\": ") +
                                  kSpecJson + "}"))
          .ok());
  // Job without a spec.
  EXPECT_FALSE(parse_serve_spec(serve_json("{\"name\": \"wc\"}")).ok());
  // Zero repeat.
  EXPECT_FALSE(
      parse_serve_spec(serve_json(std::string("{\"repeat\": 0, \"spec\": ") +
                                  kSpecJson + "}"))
          .ok());
  // No jobs at all.
  EXPECT_FALSE(parse_serve_spec("{\"pool_threads\": 2, \"jobs\": []}").ok());
  // Trailing content.
  EXPECT_FALSE(
      parse_serve_spec(serve_json(std::string("{\"spec\": ") + kSpecJson +
                                  "}") +
                       " garbage")
          .ok());
  // The nested spec itself must satisfy the strict replay parser.
  EXPECT_FALSE(
      parse_serve_spec(serve_json("{\"spec\": {\"app\": \"wordcount\"}}"))
          .ok());
}

}  // namespace
}  // namespace supmr::runtime
