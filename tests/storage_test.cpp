// Unit tests for the storage substrate: devices, throttling, RAID-0
// striping, HDFS-sim store, fault injection.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <thread>

#include "common/rng.hpp"
#include "storage/fault_device.hpp"
#include "storage/file_device.hpp"
#include "storage/hdfs_sim.hpp"
#include "storage/mem_device.hpp"
#include "storage/raid0_device.hpp"
#include "storage/throttled_device.hpp"

namespace supmr::storage {
namespace {

std::string read_all(const Device& d) {
  std::string out(d.size(), '\0');
  auto n = d.read_at(0, std::span<char>(out.data(), out.size()));
  EXPECT_TRUE(n.ok()) << n.status().to_string();
  EXPECT_EQ(*n, out.size());
  return out;
}

// ------------------------------------------------------------ MemDevice

TEST(MemDevice, ReadsExactBytes) {
  MemDevice d("hello world");
  char buf[5];
  auto n = d.read_at(6, std::span<char>(buf, 5));
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(*n, 5u);
  EXPECT_EQ(std::string(buf, 5), "world");
}

TEST(MemDevice, ShortReadAtEof) {
  MemDevice d("abc");
  char buf[10];
  auto n = d.read_at(1, std::span<char>(buf, 10));
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(*n, 2u);
}

TEST(MemDevice, ReadPastEndIsError) {
  MemDevice d("abc");
  char buf[1];
  auto n = d.read_at(4, std::span<char>(buf, 1));
  EXPECT_FALSE(n.ok());
  EXPECT_EQ(n.status().code(), StatusCode::kOutOfRange);
}

TEST(MemDevice, ReadAtExactEndReturnsZero) {
  MemDevice d("abc");
  char buf[1];
  auto n = d.read_at(3, std::span<char>(buf, 1));
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(*n, 0u);
}

// ----------------------------------------------------------- FileDevice

TEST(FileDevice, RoundTripsFileContents) {
  const std::string path = ::testing::TempDir() + "/supmr_file_test.bin";
  const std::string payload = "The quick brown fox\njumps over\n";
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  std::fwrite(payload.data(), 1, payload.size(), f);
  std::fclose(f);

  auto dev = FileDevice::open(path);
  ASSERT_TRUE(dev.ok()) << dev.status().to_string();
  EXPECT_EQ((*dev)->size(), payload.size());
  EXPECT_EQ(read_all(**dev), payload);
  std::remove(path.c_str());
}

TEST(FileDevice, MissingFileIsIoError) {
  auto dev = FileDevice::open("/nonexistent/supmr/file");
  EXPECT_FALSE(dev.ok());
  EXPECT_EQ(dev.status().code(), StatusCode::kIoError);
}

TEST(FileDevice, ConcurrentPositionalReads) {
  const std::string path = ::testing::TempDir() + "/supmr_concurrent.bin";
  std::string payload;
  for (int i = 0; i < 1000; ++i) payload += "0123456789";
  std::FILE* f = std::fopen(path.c_str(), "wb");
  std::fwrite(payload.data(), 1, payload.size(), f);
  std::fclose(f);

  auto dev = FileDevice::open(path);
  ASSERT_TRUE(dev.ok());
  std::vector<std::thread> readers;
  std::atomic<int> mismatches{0};
  for (int t = 0; t < 4; ++t) {
    readers.emplace_back([&, t] {
      char buf[10];
      for (int i = 0; i < 200; ++i) {
        const std::uint64_t off = ((t * 200 + i) % 1000) * 10;
        auto n = (*dev)->read_at(off, std::span<char>(buf, 10));
        if (!n.ok() || *n != 10 ||
            std::string(buf, 10) != "0123456789") {
          ++mismatches;
        }
      }
    });
  }
  for (auto& r : readers) r.join();
  EXPECT_EQ(mismatches.load(), 0);
  std::remove(path.c_str());
}

// ---------------------------------------------------------- RateLimiter

TEST(RateLimiter, EnforcesRate) {
  RateLimiter limiter(1.0e6);  // 1 MB/s
  limiter.acquire(1);          // drain initial burst gradually
  const auto t0 = std::chrono::steady_clock::now();
  limiter.acquire(200000);     // 200 KB -> >= ~0.15s at 1 MB/s minus burst
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  EXPECT_GE(elapsed, 0.10);
}

TEST(RateLimiter, BurstAllowsSmallReadsImmediately) {
  RateLimiter limiter(100.0e6, /*burst=*/1 << 20);
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  const auto t0 = std::chrono::steady_clock::now();
  limiter.acquire(4096);
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  EXPECT_LT(elapsed, 0.05);
}

// ------------------------------------------------------ ThrottledDevice

TEST(ThrottledDevice, PreservesContents) {
  auto base = std::make_shared<MemDevice>(std::string(10000, 'z'));
  auto limiter = std::make_shared<RateLimiter>(50.0e6);
  ThrottledDevice dev(base, limiter);
  EXPECT_EQ(read_all(dev), std::string(10000, 'z'));
}

TEST(ThrottledDevice, ThrottlesThroughput) {
  auto base = std::make_shared<MemDevice>(std::string(1 << 20, 'q'));
  auto limiter = std::make_shared<RateLimiter>(4.0e6);  // 4 MB/s
  ThrottledDevice dev(base, limiter);
  const auto t0 = std::chrono::steady_clock::now();
  read_all(dev);  // 1 MiB at 4 MB/s ~ 0.26s
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  EXPECT_GE(elapsed, 0.15);
}

TEST(ThrottledDevice, ModelReportsLimiterBandwidth) {
  auto base = std::make_shared<MemDevice>(std::string(16, 'x'));
  auto limiter = std::make_shared<RateLimiter>(384.0e6);
  ThrottledDevice dev(base, limiter);
  EXPECT_DOUBLE_EQ(dev.model().bandwidth_bps, 384.0e6);
}

// ----------------------------------------------------------- Raid0Device

TEST(Raid0, StripesAcrossMembers) {
  // 3 members, stripe 4: logical "aaaabbbbccccaaaabbbbcccc..."
  auto m0 = std::make_shared<MemDevice>(std::string(8, 'a'), "d0");
  auto m1 = std::make_shared<MemDevice>(std::string(8, 'b'), "d1");
  auto m2 = std::make_shared<MemDevice>(std::string(8, 'c'), "d2");
  Raid0Device raid({m0, m1, m2}, 4);
  EXPECT_EQ(raid.size(), 24u);
  EXPECT_EQ(read_all(raid), "aaaabbbbccccaaaabbbbcccc");
}

TEST(Raid0, UnalignedReadsSpanStripes) {
  auto m0 = std::make_shared<MemDevice>("01234567", "d0");
  auto m1 = std::make_shared<MemDevice>("abcdefgh", "d1");
  Raid0Device raid({m0, m1}, 4);
  // Logical: 0123 abcd 4567 efgh
  char buf[6];
  auto n = raid.read_at(2, std::span<char>(buf, 6));
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(std::string(buf, *n), "23abcd");
}

TEST(Raid0, SizeTruncatesToWholeRows) {
  auto m0 = std::make_shared<MemDevice>(std::string(10, 'a'), "d0");
  auto m1 = std::make_shared<MemDevice>(std::string(7, 'b'), "d1");
  Raid0Device raid({m0, m1}, 4);
  // min member 7 -> 1 whole stripe per member -> 2 members * 4 = 8.
  EXPECT_EQ(raid.size(), 8u);
}

TEST(Raid0, AggregateModelSumsBandwidth) {
  auto m0 = std::make_shared<MemDevice>(std::string(8, 'a'), "d0");
  auto m1 = std::make_shared<MemDevice>(std::string(8, 'b'), "d1");
  Raid0Device raid({m0, m1}, 4);
  EXPECT_DOUBLE_EQ(raid.model().bandwidth_bps,
                   m0->model().bandwidth_bps + m1->model().bandwidth_bps);
}

TEST(Raid0, RandomizedEquivalenceWithFlatBuffer) {
  // Property: a RAID-0 of chunked copies of a flat buffer reads identically
  // to the flat buffer, for random offsets/lengths.
  const std::size_t stripe = 16;
  const std::size_t members = 3, rows = 10;
  std::string flat;
  Xoshiro256 rng(99);
  for (std::size_t i = 0; i < members * rows * stripe; ++i)
    flat.push_back(static_cast<char>('A' + rng.uniform(26)));
  // Build member contents from the flat image.
  std::vector<std::string> member_data(members);
  for (std::size_t i = 0; i < flat.size(); ++i) {
    const std::size_t s = i / stripe;
    member_data[s % members].push_back(flat[i]);
  }
  std::vector<std::shared_ptr<const Device>> devices;
  for (auto& md : member_data)
    devices.push_back(std::make_shared<MemDevice>(md, "m"));
  Raid0Device raid(devices, stripe);
  ASSERT_EQ(raid.size(), flat.size());

  for (int trial = 0; trial < 200; ++trial) {
    const std::uint64_t off = rng.uniform(flat.size());
    const std::size_t len = 1 + rng.uniform(100);
    std::string buf(len, '\0');
    auto n = raid.read_at(off, std::span<char>(buf.data(), len));
    ASSERT_TRUE(n.ok());
    EXPECT_EQ(std::string_view(buf.data(), *n), flat.substr(off, *n));
  }
}

// -------------------------------------------------------------- HdfsSim

TEST(HdfsSim, PutOpenRead) {
  HdfsConfig cfg;
  cfg.num_nodes = 4;
  cfg.block_bytes = 8;
  cfg.link_bps = 1e9;
  cfg.per_node_bps = 1e9;
  HdfsSimStore store(cfg);
  store.put("/data/a.txt", "hello hdfs world!");
  ASSERT_TRUE(store.exists("/data/a.txt"));
  auto dev = store.open("/data/a.txt");
  ASSERT_TRUE(dev.ok());
  EXPECT_EQ(read_all(**dev), "hello hdfs world!");
}

TEST(HdfsSim, MissingFileNotFound) {
  HdfsSimStore store(HdfsConfig{});
  auto dev = store.open("/nope");
  EXPECT_FALSE(dev.ok());
  EXPECT_EQ(dev.status().code(), StatusCode::kNotFound);
}

TEST(HdfsSim, BlocksPlacedRoundRobin) {
  HdfsConfig cfg;
  cfg.num_nodes = 3;
  cfg.block_bytes = 4;
  cfg.link_bps = 1e9;
  cfg.per_node_bps = 1e9;
  HdfsSimStore store(cfg);
  store.put("/f", std::string(20, 'x'));  // 5 blocks
  const std::size_t n0 = store.block_node("/f", 0);
  EXPECT_EQ(store.block_node("/f", 1), (n0 + 1) % 3);
  EXPECT_EQ(store.block_node("/f", 3), n0);
}

TEST(HdfsSim, FilesStartOnDifferentNodes) {
  HdfsConfig cfg;
  cfg.num_nodes = 8;
  HdfsSimStore store(cfg);
  store.put("/a", "x");
  store.put("/b", "x");
  EXPECT_NE(store.block_node("/a", 0), store.block_node("/b", 0));
}

TEST(HdfsSim, SharedLinkThrottles) {
  HdfsConfig cfg;
  cfg.num_nodes = 4;
  cfg.block_bytes = 64 * 1024;
  cfg.link_bps = 4.0e6;      // slow shared link
  cfg.per_node_bps = 1.0e9;  // fast node disks
  HdfsSimStore store(cfg);
  store.put("/big", std::string(1 << 20, 'h'));
  auto dev = store.open("/big");
  ASSERT_TRUE(dev.ok());
  const auto t0 = std::chrono::steady_clock::now();
  read_all(**dev);
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  EXPECT_GE(elapsed, 0.15);  // 1 MiB over 4 MB/s
}

TEST(HdfsSim, ListsFiles) {
  HdfsSimStore store(HdfsConfig{});
  store.put("/b", "2");
  store.put("/a", "1");
  EXPECT_EQ(store.list(), (std::vector<std::string>{"/a", "/b"}));
}

// Property: block placement is a pure function of the stored file SET —
// two stores holding the same paths agree on every (file, block) -> node
// assignment no matter the put order, and re-putting a file does not move
// its blocks.
TEST(HdfsSim, PlacementStableAcrossPutOrder) {
  HdfsConfig cfg;
  cfg.num_nodes = 5;
  cfg.block_bytes = 4;
  const std::vector<std::string> paths = {"/c", "/a", "/d", "/b"};
  HdfsSimStore fwd(cfg);
  HdfsSimStore rev(cfg);
  for (const auto& p : paths) fwd.put(p, std::string(12, 'x'));  // 3 blocks
  for (auto it = paths.rbegin(); it != paths.rend(); ++it)
    rev.put(*it, std::string(12, 'x'));
  for (const auto& p : paths) {
    for (std::uint64_t b = 0; b < 3; ++b) {
      EXPECT_EQ(fwd.block_node(p, b), rev.block_node(p, b))
          << p << " block " << b;
    }
  }
  const std::size_t before = fwd.block_node("/b", 1);
  fwd.put("/b", std::string(12, 'y'));  // overwrite, same file set
  EXPECT_EQ(fwd.block_node("/b", 1), before);
}

// Property: concurrent readers through the shared link cannot exceed the
// link's aggregate rate — N parallel streams each see ~link_bps/N, not
// link_bps each. This is the Fig. 7 funnel: node disks are fast, the one
// link is the binding constraint.
TEST(HdfsSim, SharedLinkBoundsAggregateRate) {
  HdfsConfig cfg;
  cfg.num_nodes = 4;
  cfg.block_bytes = 64 * 1024;
  cfg.link_bps = 8.0e6;      // slow shared link
  cfg.per_node_bps = 1.0e9;  // fast node disks: the link must bind
  HdfsSimStore store(cfg);
  const std::size_t kFileBytes = 512 * 1024;
  const std::size_t kReaders = 4;
  for (std::size_t i = 0; i < kReaders; ++i)
    store.put("/f" + std::to_string(i), std::string(kFileBytes, 'h'));

  const auto t0 = std::chrono::steady_clock::now();
  std::vector<std::thread> readers;
  for (std::size_t i = 0; i < kReaders; ++i) {
    readers.emplace_back([&store, i] {
      auto dev = store.open("/f" + std::to_string(i));
      ASSERT_TRUE(dev.ok());
      read_all(**dev);
    });
  }
  for (auto& t : readers) t.join();
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  const double total = static_cast<double>(kFileBytes * kReaders);
  // All streams share 8 MB/s, so 2 MiB total needs >= ~0.26 s. A generous
  // lower bound (80% of ideal) keeps the assertion robust on loaded CI
  // machines while still catching a per-reader (non-shared) limiter, which
  // would finish in a quarter of the time.
  EXPECT_GE(elapsed, 0.8 * total / cfg.link_bps);
  // And the aggregate observed rate never exceeds the link plus burst slack.
  EXPECT_LE(total / elapsed, 1.25 * cfg.link_bps);
}

// ---------------------------------------------------------- FaultDevice

TEST(FaultDevice, FailsOnNthCall) {
  MemDevice base("abcdef");
  auto plan = fault::FaultPlan::parse("fail_call=1");
  ASSERT_TRUE(plan.ok());
  FaultDevice dev(&base, *plan);
  char buf[2];
  EXPECT_TRUE(dev.read_at(0, std::span<char>(buf, 2)).ok());
  EXPECT_FALSE(dev.read_at(2, std::span<char>(buf, 2)).ok());
  EXPECT_TRUE(dev.read_at(4, std::span<char>(buf, 2)).ok());
  EXPECT_EQ(dev.calls(), 3u);
}

TEST(FaultDevice, FailsOnPoisonedRange) {
  MemDevice base(std::string(100, 'p'));
  auto plan = fault::FaultPlan::parse("permanent=50-60");
  ASSERT_TRUE(plan.ok());
  FaultDevice dev(&base, *plan);
  char buf[10];
  EXPECT_TRUE(dev.read_at(0, std::span<char>(buf, 10)).ok());
  EXPECT_FALSE(dev.read_at(55, std::span<char>(buf, 10)).ok());
  EXPECT_FALSE(dev.read_at(45, std::span<char>(buf, 10)).ok());  // overlap
  EXPECT_TRUE(dev.read_at(60, std::span<char>(buf, 10)).ok());
}

}  // namespace
}  // namespace supmr::storage
