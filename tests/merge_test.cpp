// Unit + property tests for the sorting/merging kernels: introsort, loser
// tree, pairwise merge, parallel p-way merge, composed sorters, and the
// round-geometry statistics the paper's figures rely on.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <numeric>

#include "common/rng.hpp"
#include "merge/introsort.hpp"
#include "merge/loser_tree.hpp"
#include "merge/pairwise.hpp"
#include "merge/pway.hpp"
#include "merge/sample_sort.hpp"
#include "tests/testdata.hpp"

namespace supmr::merge {
namespace {

using testdata::random_ints;  // shared seeded generator (tests/testdata.hpp)

// Checks sortedness and that `sorted` is a permutation of `original`.
void expect_sorted_permutation(std::vector<int> original,
                               std::vector<int> sorted) {
  EXPECT_TRUE(std::is_sorted(sorted.begin(), sorted.end()));
  std::sort(original.begin(), original.end());
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(original, sorted);
}

// -------------------------------------------------------------- introsort

TEST(Introsort, EmptyAndSingle) {
  std::vector<int> v;
  introsort(v.begin(), v.end());
  v = {42};
  introsort(v.begin(), v.end());
  EXPECT_EQ(v, std::vector<int>{42});
}

TEST(Introsort, AlreadySorted) {
  std::vector<int> v(1000);
  std::iota(v.begin(), v.end(), 0);
  auto copy = v;
  introsort(v.begin(), v.end());
  EXPECT_EQ(v, copy);
}

TEST(Introsort, ReverseSorted) {
  std::vector<int> v(1000);
  std::iota(v.rbegin(), v.rend(), 0);
  introsort(v.begin(), v.end());
  EXPECT_TRUE(std::is_sorted(v.begin(), v.end()));
}

TEST(Introsort, AllEqual) {
  std::vector<int> v(5000, 7);
  introsort(v.begin(), v.end());
  EXPECT_TRUE(std::is_sorted(v.begin(), v.end()));
  EXPECT_EQ(v[0], 7);
  EXPECT_EQ(v[4999], 7);
}

TEST(Introsort, FewDistinctValues) {
  auto v = random_ints(20000, 3, /*range=*/4);
  auto orig = v;
  introsort(v.begin(), v.end());
  expect_sorted_permutation(orig, v);
}

TEST(Introsort, OrganPipe) {
  // Adversarial for naive quicksort pivots.
  auto v = testdata::organ_pipe(10000);
  auto orig = v;
  introsort(v.begin(), v.end());
  expect_sorted_permutation(orig, v);
}

TEST(Introsort, CustomComparator) {
  auto v = random_ints(1000, 4);
  introsort(v.begin(), v.end(), std::greater<int>{});
  EXPECT_TRUE(std::is_sorted(v.begin(), v.end(), std::greater<int>{}));
}

class IntrosortProperty
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(IntrosortProperty, SortsRandomInputs) {
  const auto [n, seed] = GetParam();
  auto v = random_ints(n, seed);
  auto orig = v;
  introsort(v.begin(), v.end());
  expect_sorted_permutation(orig, v);
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, IntrosortProperty,
    ::testing::Combine(::testing::Values(2, 23, 24, 25, 1000, 65536),
                       ::testing::Values(1, 2, 3)));

// -------------------------------------------------------------- loser tree

TEST(LoserTree, MergesTwoRuns) {
  std::vector<int> a{1, 3, 5}, b{2, 4, 6};
  LoserTree<int, std::less<int>> tree(
      {std::span<const int>(a), std::span<const int>(b)}, std::less<int>{});
  std::vector<int> out(6);
  tree.drain(out.data());
  EXPECT_EQ(out, (std::vector<int>{1, 2, 3, 4, 5, 6}));
}

TEST(LoserTree, HandlesEmptyRuns) {
  std::vector<int> a{5}, empty;
  LoserTree<int, std::less<int>> tree(
      {std::span<const int>(empty), std::span<const int>(a),
       std::span<const int>(empty)},
      std::less<int>{});
  EXPECT_EQ(tree.remaining(), 1u);
  EXPECT_EQ(tree.pop(), 5);
  EXPECT_TRUE(tree.empty());
}

TEST(LoserTree, NonPowerOfTwoRunCount) {
  std::vector<std::vector<int>> runs = {{1, 10}, {2, 20}, {3, 30},
                                        {4, 40}, {5, 50}};
  std::vector<std::span<const int>> spans;
  for (auto& r : runs) spans.emplace_back(r);
  LoserTree<int, std::less<int>> tree(spans, std::less<int>{});
  std::vector<int> out(10);
  tree.drain(out.data());
  EXPECT_TRUE(std::is_sorted(out.begin(), out.end()));
  EXPECT_EQ(out.front(), 1);
  EXPECT_EQ(out.back(), 50);
}

TEST(LoserTree, DuplicatesAcrossRuns) {
  std::vector<int> a{1, 1, 2}, b{1, 2, 2};
  LoserTree<int, std::less<int>> tree(
      {std::span<const int>(a), std::span<const int>(b)}, std::less<int>{});
  std::vector<int> out(6);
  tree.drain(out.data());
  EXPECT_EQ(out, (std::vector<int>{1, 1, 1, 2, 2, 2}));
}

class LoserTreeProperty : public ::testing::TestWithParam<int> {};

TEST_P(LoserTreeProperty, EquivalentToSortOfConcatenation) {
  Xoshiro256 rng(GetParam());
  const std::size_t num_runs = 1 + rng.uniform(17);
  std::vector<std::vector<int>> runs(num_runs);
  std::vector<int> all;
  for (auto& run : runs) {
    const std::size_t len = rng.uniform(200);
    run = random_ints(len, rng(), 1000);
    std::sort(run.begin(), run.end());
    all.insert(all.end(), run.begin(), run.end());
  }
  std::vector<std::span<const int>> spans;
  for (auto& r : runs) spans.emplace_back(r);
  LoserTree<int, std::less<int>> tree(spans, std::less<int>{});
  std::vector<int> out(all.size());
  tree.drain(out.data());
  std::sort(all.begin(), all.end());
  EXPECT_EQ(out, all);
}

INSTANTIATE_TEST_SUITE_P(Seeds, LoserTreeProperty,
                         ::testing::Range(100, 112));

// ---------------------------------------------------------- pairwise merge

TEST(PairwiseMerge, SortsAndReportsHalvingRounds) {
  ThreadPool pool(4);
  std::vector<int> data = random_ints(8000, 5);
  auto orig = data;
  // 8 runs of 1000, each pre-sorted.
  std::vector<std::span<int>> runs;
  for (int r = 0; r < 8; ++r) {
    std::span<int> run(data.data() + r * 1000, 1000);
    std::sort(run.begin(), run.end());
    runs.push_back(run);
  }
  MergeStats stats = pairwise_merge(pool, runs,
                                    std::span<int>(data.data(), data.size()),
                                    std::less<int>{});
  expect_sorted_permutation(orig, data);
  // log2(8) = 3 rounds with 4, 2, 1 workers — the Fig. 1 step curve.
  ASSERT_EQ(stats.num_rounds(), 3u);
  EXPECT_EQ(stats.rounds[0].active_workers, 4u);
  EXPECT_EQ(stats.rounds[1].active_workers, 2u);
  EXPECT_EQ(stats.rounds[2].active_workers, 1u);
  // Every round re-scans all N items: total moves = N * rounds.
  EXPECT_EQ(stats.total_items_moved(), 8000u * 3u);
}

TEST(PairwiseMerge, OddRunCount) {
  ThreadPool pool(2);
  std::vector<int> data = random_ints(300, 6);
  auto orig = data;
  std::vector<std::span<int>> runs;
  for (int r = 0; r < 3; ++r) {
    std::span<int> run(data.data() + r * 100, 100);
    std::sort(run.begin(), run.end());
    runs.push_back(run);
  }
  pairwise_merge(pool, runs, std::span<int>(data.data(), data.size()),
                 std::less<int>{});
  expect_sorted_permutation(orig, data);
}

TEST(PairwiseMerge, SingleRunNoRounds) {
  ThreadPool pool(2);
  std::vector<int> data = {3, 1, 2};
  std::sort(data.begin(), data.end());
  std::vector<std::span<int>> runs{std::span<int>(data)};
  MergeStats stats = pairwise_merge(pool, runs, std::span<int>(data),
                                    std::less<int>{});
  EXPECT_EQ(stats.num_rounds(), 0u);
}

// -------------------------------------------------------------- p-way merge

TEST(PwayMerge, SingleRoundFullWidth) {
  ThreadPool pool(4);
  std::vector<std::vector<int>> runs(16);
  std::vector<int> all;
  Xoshiro256 rng(7);
  for (auto& run : runs) {
    run = random_ints(500, rng(), 10000);
    std::sort(run.begin(), run.end());
    all.insert(all.end(), run.begin(), run.end());
  }
  std::vector<std::span<const int>> spans;
  for (auto& r : runs) spans.emplace_back(r);
  std::vector<int> out(all.size());
  MergeStats stats =
      parallel_pway_merge(pool, spans, out.data(), std::less<int>{});
  // ONE round (the whole point vs pairwise), all workers active.
  ASSERT_EQ(stats.num_rounds(), 1u);
  EXPECT_EQ(stats.total_items_moved(), all.size());
  std::sort(all.begin(), all.end());
  EXPECT_EQ(out, all);
}

TEST(PwayMerge, SkewedRunSizes) {
  ThreadPool pool(4);
  std::vector<int> big = random_ints(10000, 8, 100);  // heavy duplicates
  std::vector<int> small = {50};
  std::sort(big.begin(), big.end());
  std::vector<int> all = big;
  all.push_back(50);
  std::vector<int> out(all.size());
  parallel_pway_merge(
      pool,
      {std::span<const int>(big), std::span<const int>(small)},
      out.data(), std::less<int>{});
  std::sort(all.begin(), all.end());
  EXPECT_EQ(out, all);
}

TEST(PwayMerge, EmptyInput) {
  ThreadPool pool(2);
  std::vector<int> out;
  MergeStats stats = parallel_pway_merge(pool, {}, out.data(),
                                         std::less<int>{});
  EXPECT_EQ(stats.num_rounds(), 0u);
}

class PwayProperty : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(PwayProperty, MatchesReferenceSort) {
  const auto [num_runs, seed] = GetParam();
  ThreadPool pool(3);
  Xoshiro256 rng(seed);
  std::vector<std::vector<int>> runs(num_runs);
  std::vector<int> all;
  for (auto& run : runs) {
    run = random_ints(rng.uniform(3000), rng(), 500);
    std::sort(run.begin(), run.end());
    all.insert(all.end(), run.begin(), run.end());
  }
  std::vector<std::span<const int>> spans;
  for (auto& r : runs) spans.emplace_back(r);
  std::vector<int> out(all.size());
  parallel_pway_merge(pool, spans, out.data(), std::less<int>{});
  std::sort(all.begin(), all.end());
  EXPECT_EQ(out, all);
}

INSTANTIATE_TEST_SUITE_P(
    RunsAndSeeds, PwayProperty,
    ::testing::Combine(::testing::Values(1, 2, 3, 9, 32),
                       ::testing::Values(1, 2)));

// --------------------------------------------------------- composed sorts

TEST(SampleSort, SortsLargeArray) {
  ThreadPool pool(4);
  auto data = random_ints(100000, 9);
  auto orig = data;
  MergeStats stats = parallel_sample_sort(
      pool, std::span<int>(data.data(), data.size()), std::less<int>{});
  expect_sorted_permutation(orig, data);
  EXPECT_EQ(stats.num_rounds(), 1u);
}

TEST(PairwiseMergeSort, SortsLargeArray) {
  ThreadPool pool(4);
  auto data = random_ints(100000, 10);
  auto orig = data;
  MergeStats stats = pairwise_merge_sort(
      pool, std::span<int>(data.data(), data.size()), std::less<int>{});
  expect_sorted_permutation(orig, data);
  EXPECT_GT(stats.num_rounds(), 1u);  // iterative rounds
}

TEST(SortersAgree, SameResultBothAlgorithms) {
  ThreadPool pool(3);
  auto a = random_ints(30000, 11);
  auto b = a;
  parallel_sample_sort(pool, std::span<int>(a.data(), a.size()),
                       std::less<int>{});
  pairwise_merge_sort(pool, std::span<int>(b.data(), b.size()),
                      std::less<int>{});
  EXPECT_EQ(a, b);
}

TEST(FormRuns, EachRunSortedAndCoversData) {
  ThreadPool pool(4);
  auto data = random_ints(10000, 12);
  auto runs = form_runs_parallel(pool, std::span<int>(data.data(), data.size()),
                                 8, std::less<int>{});
  EXPECT_EQ(runs.size(), 8u);
  std::size_t covered = 0;
  for (auto& run : runs) {
    EXPECT_TRUE(std::is_sorted(run.begin(), run.end()));
    covered += run.size();
  }
  EXPECT_EQ(covered, data.size());
}

TEST(FormRuns, MoreRunsThanElements) {
  ThreadPool pool(2);
  std::vector<int> data{3, 1};
  auto runs = form_runs_parallel(pool, std::span<int>(data), 10,
                                 std::less<int>{});
  EXPECT_LE(runs.size(), 2u);
}

// Variable-width record sort through an index array — the TeraSort pattern.
TEST(IndexSort, RecordsByKeyPrefix) {
  constexpr std::size_t kRecords = 2000, kWidth = 20, kKey = 5;
  Xoshiro256 rng(13);
  std::string data(kRecords * kWidth, 'x');
  for (std::size_t r = 0; r < kRecords; ++r) {
    for (std::size_t k = 0; k < kKey; ++k)
      data[r * kWidth + k] = static_cast<char>('A' + rng.uniform(26));
  }
  std::vector<std::uint64_t> index(kRecords);
  std::iota(index.begin(), index.end(), 0);
  const char* base = data.data();
  auto cmp = [base](std::uint64_t a, std::uint64_t b) {
    return std::memcmp(base + a * kWidth, base + b * kWidth, kKey) < 0;
  };
  ThreadPool pool(4);
  parallel_sample_sort(pool, std::span<std::uint64_t>(index), cmp);
  for (std::size_t i = 1; i < kRecords; ++i) {
    EXPECT_LE(std::memcmp(base + index[i - 1] * kWidth,
                          base + index[i] * kWidth, kKey),
              0);
  }
}

}  // namespace
}  // namespace supmr::merge
