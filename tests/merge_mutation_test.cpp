// The conformance harness's mutation smoke (docs/testing.md) only proves
// the e2e differential catches a corrupted merge if the named mutation
// hooks really corrupt the decision they claim to. SUPMR_TEST_MUTATION is
// sampled once per process and cached in function-local statics at each
// call site, so every hook gets its own forked child (gtest fast death
// tests): the child sets the variable before the first call reaches the
// hook, runs the kernel, and exits 0 only if the output is wrong in
// exactly the advertised way.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <functional>
#include <span>
#include <vector>

#include "merge/partitioned.hpp"
#include "merge/pway.hpp"
#include "threading/thread_pool.hpp"

namespace supmr::merge {
namespace {

// Child bodies exit 0 when the mutation took effect; any other code means
// the hook silently did nothing (the exact failure the smoke would miss).
[[noreturn]] void run_pway_with_inverted_comparator() {
  ::setenv("SUPMR_TEST_MUTATION", "pway-comparator", 1);
  ThreadPool pool(1);  // one worker => one loser tree over the whole input
  std::vector<int> a = {1, 3, 5, 7};
  std::vector<int> b = {2, 4, 6, 8};
  std::vector<std::span<const int>> runs = {a, b};
  std::vector<int> out(a.size() + b.size());
  parallel_pway_merge(pool, std::move(runs), out.data(), std::less<int>());
  // The hook inverts the comparator inside the merge stage only, so the
  // output must be a non-ascending arrangement of the same elements.
  std::vector<int> sorted = out;
  std::sort(sorted.begin(), sorted.end());
  const bool permutation = sorted == std::vector<int>{1, 2, 3, 4, 5, 6, 7, 8};
  const bool mutated = !std::is_sorted(out.begin(), out.end());
  std::exit(permutation && mutated ? 0 : 1);
}

TEST(MergeMutationHooks, PwayComparatorHookInvertsMergeOrder) {
  EXPECT_EXIT(run_pway_with_inverted_comparator(),
              ::testing::ExitedWithCode(0), "");
}

[[noreturn]] void run_routing_with_rotation() {
  ::setenv("SUPMR_TEST_MUTATION", "partition-routing", 1);
  const std::vector<int> splitters = {10, 20};
  const std::vector<int> data = {5, 15, 25};
  auto parts = partition_values(std::span<const int>(data), splitters,
                                std::less<int>());
  // Unmutated routing sends 5 -> 0, 15 -> 1, 25 -> 2; the hook rotates
  // every element one partition up and wraps the top range into 0.
  const bool mutated = parts.size() == 3 &&
                       parts[0] == std::vector<int>{25} &&
                       parts[1] == std::vector<int>{5} &&
                       parts[2] == std::vector<int>{15};
  std::exit(mutated ? 0 : 1);
}

TEST(MergeMutationHooks, PartitionRoutingHookRotatesWithWrap) {
  EXPECT_EXIT(run_routing_with_rotation(), ::testing::ExitedWithCode(0), "");
}

// Control: with the variable naming a different hook, both kernels behave
// normally — activation is exact-match, not prefix-match.
[[noreturn]] void run_with_unrelated_mutation_name() {
  ::setenv("SUPMR_TEST_MUTATION", "pway-comparator-extra", 1);
  const std::vector<int> splitters = {10};
  const std::vector<int> data = {5, 15};
  auto parts = partition_values(std::span<const int>(data), splitters,
                                std::less<int>());
  ThreadPool pool(1);
  std::vector<int> a = {1, 3};
  std::vector<int> b = {2, 4};
  std::vector<std::span<const int>> runs = {a, b};
  std::vector<int> out(4);
  parallel_pway_merge(pool, std::move(runs), out.data(), std::less<int>());
  const bool clean = parts[0] == std::vector<int>{5} &&
                     parts[1] == std::vector<int>{15} &&
                     std::is_sorted(out.begin(), out.end());
  std::exit(clean ? 0 : 1);
}

TEST(MergeMutationHooks, UnrelatedNameLeavesKernelsUntouched) {
  EXPECT_EXIT(run_with_unrelated_mutation_name(),
              ::testing::ExitedWithCode(0), "");
}

}  // namespace
}  // namespace supmr::merge
