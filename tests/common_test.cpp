// Unit tests for src/common: units, status, rng, stats, timeseries,
// phase timer.
#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <thread>

#include "common/phase_timer.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/status.hpp"
#include "common/timeseries.hpp"
#include "common/units.hpp"

namespace supmr {
namespace {

// ---------------------------------------------------------------- units

TEST(Units, FormatBytes) {
  EXPECT_EQ(format_bytes(0), "0B");
  EXPECT_EQ(format_bytes(999), "999B");
  EXPECT_EQ(format_bytes(1500), "1.50KB");
  EXPECT_EQ(format_bytes(155 * kGB), "155.00GB");
  EXPECT_EQ(format_bytes(2 * kTB), "2.00TB");
}

TEST(Units, FormatRate) {
  EXPECT_EQ(format_rate(384.0e6), "384.0 MB/s");
  EXPECT_EQ(format_rate(1.25e9), "1.2 GB/s");
}

TEST(Units, FormatDuration) {
  EXPECT_EQ(format_duration(403.9), "403.90s");
  EXPECT_EQ(format_duration(0.002), "2.00ms");
  EXPECT_EQ(format_duration(3e-6), "3.00us");
}

TEST(Units, ParseSizePlainBytes) {
  EXPECT_EQ(parse_size("0"), 0u);
  EXPECT_EQ(parse_size("1234"), 1234u);
  EXPECT_EQ(parse_size("64B"), 64u);
}

TEST(Units, ParseSizeDecimalSuffixes) {
  EXPECT_EQ(parse_size("1KB"), kKB);
  EXPECT_EQ(parse_size("1GB"), kGB);
  EXPECT_EQ(parse_size("50GB"), 50 * kGB);
  EXPECT_EQ(parse_size("1.5GB"), kGB + 500 * kMB);
  EXPECT_EQ(parse_size("2T"), 2 * kTB);
}

TEST(Units, ParseSizeBinarySuffixes) {
  EXPECT_EQ(parse_size("1KiB"), kKiB);
  EXPECT_EQ(parse_size("4MiB"), 4 * kMiB);
  EXPECT_EQ(parse_size("1GiB"), kGiB);
}

TEST(Units, ParseSizeIsCaseInsensitiveAndTrims) {
  EXPECT_EQ(parse_size("  1gb "), kGB);
  EXPECT_EQ(parse_size("512mib"), 512 * kMiB);
  EXPECT_EQ(parse_size("1 GB"), kGB);
}

TEST(Units, ParseSizeRejectsGarbage) {
  EXPECT_FALSE(parse_size("").has_value());
  EXPECT_FALSE(parse_size("GB").has_value());
  EXPECT_FALSE(parse_size("12XB").has_value());
  EXPECT_FALSE(parse_size("-5GB").has_value());
  EXPECT_FALSE(parse_size("1e30GB").has_value());
}

// --------------------------------------------------------------- status

TEST(Status, OkByDefault) {
  Status st;
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(st.to_string(), "OK");
}

TEST(Status, CarriesCodeAndMessage) {
  Status st = Status::IoError("pread failed");
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kIoError);
  EXPECT_EQ(st.to_string(), "IO_ERROR: pread failed");
}

TEST(Status, AllCodesHaveNames) {
  for (int c = 0; c <= static_cast<int>(StatusCode::kUnimplemented); ++c) {
    EXPECT_NE(status_code_name(static_cast<StatusCode>(c)), "UNKNOWN");
  }
}

TEST(StatusOr, HoldsValue) {
  StatusOr<int> v = 42;
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, 42);
}

TEST(StatusOr, HoldsError) {
  StatusOr<int> v = Status::NotFound("nope");
  ASSERT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::kNotFound);
}

TEST(StatusOr, MoveOutValue) {
  StatusOr<std::string> v = std::string(1000, 'x');
  std::string s = std::move(v).value();
  EXPECT_EQ(s.size(), 1000u);
}

Status helper_returns_early(bool fail) {
  SUPMR_RETURN_IF_ERROR(fail ? Status::Internal("boom") : Status::Ok());
  return Status::Ok();
}

TEST(StatusMacros, ReturnIfError) {
  EXPECT_TRUE(helper_returns_early(false).ok());
  EXPECT_EQ(helper_returns_early(true).code(), StatusCode::kInternal);
}

StatusOr<int> maybe_int(bool fail) {
  if (fail) return Status::OutOfRange("no");
  return 7;
}

Status helper_assign(bool fail, int* out) {
  SUPMR_ASSIGN_OR_RETURN(int v, maybe_int(fail));
  *out = v;
  return Status::Ok();
}

TEST(StatusMacros, AssignOrReturn) {
  int out = 0;
  EXPECT_TRUE(helper_assign(false, &out).ok());
  EXPECT_EQ(out, 7);
  EXPECT_EQ(helper_assign(true, &out).code(), StatusCode::kOutOfRange);
}

// ------------------------------------------------------------------ rng

TEST(Rng, Deterministic) {
  Xoshiro256 a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiffer) {
  Xoshiro256 a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (a() == b());
  EXPECT_LT(same, 3);
}

TEST(Rng, UniformBound) {
  Xoshiro256 rng(7);
  for (int i = 0; i < 10000; ++i) EXPECT_LT(rng.uniform(17), 17u);
}

TEST(Rng, UniformRangeInclusive) {
  Xoshiro256 rng(7);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.uniform_range(3, 5));
  EXPECT_EQ(seen, (std::set<std::uint64_t>{3, 4, 5}));
}

TEST(Rng, UniformDoubleInUnitInterval) {
  Xoshiro256 rng(9);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform_double();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Zipf, RankZeroMostFrequent) {
  Xoshiro256 rng(11);
  ZipfSampler zipf(1.0, 1000);
  std::vector<int> counts(1000, 0);
  for (int i = 0; i < 100000; ++i) ++counts[zipf(rng)];
  EXPECT_GT(counts[0], counts[10]);
  EXPECT_GT(counts[10], counts[500]);
}

TEST(Zipf, CoversSupport) {
  Xoshiro256 rng(13);
  ZipfSampler zipf(0.5, 4);
  std::set<std::size_t> seen;
  for (int i = 0; i < 10000; ++i) seen.insert(zipf(rng));
  EXPECT_EQ(seen.size(), 4u);
}

// ---------------------------------------------------------------- stats

TEST(RunningStats, MeanAndStddev) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.stddev(), 2.138, 1e-3);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(RunningStats, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.stddev(), 0.0);
}

TEST(Histogram, BinningAndTotals) {
  Histogram h(0.0, 10.0, 10);
  for (int i = 0; i < 100; ++i) h.add(double(i % 10) + 0.5);
  EXPECT_EQ(h.total(), 100u);
  for (std::size_t b = 0; b < 10; ++b) EXPECT_EQ(h.bin_count(b), 10u);
}

TEST(Histogram, ClampsOutOfRange) {
  Histogram h(0.0, 1.0, 4);
  h.add(-5.0);
  h.add(99.0);
  EXPECT_EQ(h.bin_count(0), 1u);
  EXPECT_EQ(h.bin_count(3), 1u);
  EXPECT_EQ(h.total(), 2u);
}

TEST(Histogram, PercentileMonotone) {
  Histogram h(0.0, 100.0, 100);
  Xoshiro256 rng(5);
  for (int i = 0; i < 10000; ++i) h.add(double(rng.uniform(100)));
  EXPECT_LE(h.percentile(10), h.percentile(50));
  EXPECT_LE(h.percentile(50), h.percentile(99));
  EXPECT_NEAR(h.percentile(50), 50.0, 5.0);
}

// ------------------------------------------------------------ timeseries

TEST(TimeSeries, AppendAndAccess) {
  TimeSeries ts({"user", "sys"});
  ts.append(0.0, {10.0, 5.0});
  ts.append(1.0, {20.0, 2.0});
  EXPECT_EQ(ts.samples(), 2u);
  EXPECT_EQ(ts.channels(), 2u);
  EXPECT_DOUBLE_EQ(ts.value(1, 0), 20.0);
  EXPECT_DOUBLE_EQ(ts.row_sum(0), 15.0);
}

TEST(TimeSeries, CsvRoundTripShape) {
  TimeSeries ts({"a"});
  ts.append(0.5, {1.5});
  const std::string csv = ts.to_csv();
  EXPECT_NE(csv.find("t,a\n"), std::string::npos);
  EXPECT_NE(csv.find("0.5,1.5"), std::string::npos);
}

TEST(TimeSeries, AsciiChartContainsLegendAndAxis) {
  TimeSeries ts({"user", "sys", "iowait"});
  for (int i = 0; i < 50; ++i)
    ts.append(double(i), {50.0, 10.0, 5.0});
  const std::string chart = ts.to_ascii_chart(60, 10);
  EXPECT_NE(chart.find("legend:"), std::string::npos);
  EXPECT_NE(chart.find("#=user"), std::string::npos);
  EXPECT_NE(chart.find('#'), std::string::npos);
}

TEST(TimeSeries, EmptyChartDoesNotCrash) {
  TimeSeries ts({"x"});
  EXPECT_EQ(ts.to_ascii_chart(), "(empty trace)\n");
}

// ----------------------------------------------------------- phase timer

TEST(PhaseClock, AccumulatesAcrossStartStop) {
  PhaseClock clock;
  clock.start_total();
  clock.start(Phase::kRead);
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  clock.stop(Phase::kRead);
  clock.start(Phase::kRead);
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  clock.stop(Phase::kRead);
  clock.stop_total();
  EXPECT_GE(clock.elapsed(Phase::kRead), 0.035);
  EXPECT_GE(clock.total(), clock.elapsed(Phase::kRead));
}

TEST(PhaseClock, MisuseIsALoggedNoOp) {
  // Regression: misuse used to be an assert, so release builds silently
  // corrupted accumulated timings. Now the first start wins, an unmatched
  // stop adds nothing, and timings stay exact.
  PhaseClock clock;
  clock.stop(Phase::kMap);  // stop without start: no interval added
  EXPECT_EQ(clock.elapsed(Phase::kMap), 0.0);

  clock.start(Phase::kRead);
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  clock.start(Phase::kRead);  // double start: ignored, first stamp kept
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  clock.stop(Phase::kRead);
  EXPECT_GE(clock.elapsed(Phase::kRead), 0.015);  // spans BOTH sleeps
  clock.stop(Phase::kRead);  // second stop unmatched: accumulates nothing
  const double once = clock.elapsed(Phase::kRead);
  EXPECT_EQ(clock.elapsed(Phase::kRead), once);

  clock.stop_total();  // never started: total stays zero
  EXPECT_EQ(clock.total(), 0.0);
  EXPECT_EQ(clock.now_since_start(), 0.0);  // stopped: clamped to 0

  clock.start_total();
  clock.start_total();  // ignored
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  EXPECT_GT(clock.now_since_start(), 0.0);
  clock.stop_total();
  EXPECT_GT(clock.total(), 0.0);
}

TEST(PhaseBreakdown, TableRowFormats) {
  PhaseBreakdown b;
  b.total_s = 471.75;
  b.read_s = 403.90;
  b.map_s = 67.41;
  const std::string row = b.to_table_row("none");
  EXPECT_NE(row.find("none"), std::string::npos);
  EXPECT_NE(row.find("471.75"), std::string::npos);
  EXPECT_NE(row.find("403.90"), std::string::npos);
}

TEST(PhaseBreakdown, CombinedReadMapRow) {
  PhaseBreakdown b;
  b.has_combined_readmap = true;
  b.readmap_s = 196.86;
  b.total_s = 272.58;
  const std::string row = b.to_table_row("1GB");
  EXPECT_NE(row.find("r+m"), std::string::npos);
  EXPECT_NE(row.find("196.86"), std::string::npos);
}

TEST(PhaseNames, AllDistinct) {
  std::set<std::string_view> names;
  for (int p = 0; p < kNumPhases; ++p)
    names.insert(phase_name(static_cast<Phase>(p)));
  EXPECT_EQ(names.size(), static_cast<std::size_t>(kNumPhases));
}

}  // namespace
}  // namespace supmr
