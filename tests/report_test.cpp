// Tests for the JSON writer and job-result reporting.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "apps/word_count.hpp"
#include "common/json.hpp"
#include "core/job.hpp"
#include "core/report.hpp"
#include "ingest/record_format.hpp"
#include "ingest/source.hpp"
#include "json_validator.hpp"
#include "storage/mem_device.hpp"

namespace supmr {
namespace {

TEST(JsonWriter, ObjectWithMixedValues) {
  JsonWriter w;
  w.begin_object();
  w.kv("name", "supmr");
  w.kv("count", std::uint64_t{42});
  w.kv("ratio", 1.5);
  w.kv("flag", true);
  w.kv("neg", std::int64_t{-7});
  w.end_object();
  EXPECT_EQ(w.str(),
            "{\"name\":\"supmr\",\"count\":42,\"ratio\":1.5,"
            "\"flag\":true,\"neg\":-7}");
}

TEST(JsonWriter, NestedStructures) {
  JsonWriter w;
  w.begin_object();
  w.key("list");
  w.begin_array();
  w.value(std::uint64_t{1});
  w.begin_object();
  w.kv("x", std::uint64_t{2});
  w.end_object();
  w.end_array();
  w.kv("after", std::uint64_t{3});
  w.end_object();
  EXPECT_EQ(w.str(), "{\"list\":[1,{\"x\":2}],\"after\":3}");
}

TEST(JsonWriter, EscapesStrings) {
  JsonWriter w;
  w.begin_object();
  w.kv("s", "a\"b\\c\nd\te");
  w.end_object();
  EXPECT_EQ(w.str(), "{\"s\":\"a\\\"b\\\\c\\nd\\te\"}");
}

TEST(JsonWriter, ControlCharsEscaped) {
  JsonWriter w;
  w.value(std::string_view("\x01", 1));
  EXPECT_EQ(w.str(), "\"\\u0001\"");
}

TEST(JsonWriter, NonFiniteBecomesNull) {
  JsonWriter w;
  w.begin_array();
  w.value(std::numeric_limits<double>::infinity());
  w.value(std::nan(""));
  w.end_array();
  EXPECT_EQ(w.str(), "[null,null]");
}

TEST(JsonWriter, EmptyContainers) {
  JsonWriter w;
  w.begin_object();
  w.key("a");
  w.begin_array();
  w.end_array();
  w.key("o");
  w.begin_object();
  w.end_object();
  w.end_object();
  EXPECT_EQ(w.str(), "{\"a\":[],\"o\":{}}");
}

TEST(Report, JobResultJsonShape) {
  apps::WordCountApp app;
  ingest::SingleDeviceSource src(
      std::make_shared<storage::MemDevice>("a b c\na b\n", "m"),
      std::make_shared<ingest::LineFormat>(), 6);
  core::JobConfig jc;
  jc.num_map_threads = 2;
  jc.num_reduce_threads = 1;
  core::MapReduceJob job(app, src, jc);
  auto result = job.run(core::ExecMode::kIngestMR);
  ASSERT_TRUE(result.ok());
  const std::string json = core::job_result_to_json(*result);
  EXPECT_EQ(test::validate_json(json), "");
  // Spot-check structure (no DOM parser in the repo by design).
  EXPECT_NE(json.find("\"phases\":{"), std::string::npos);
  EXPECT_NE(json.find("\"readmap_s\":"), std::string::npos);
  EXPECT_NE(json.find("\"pipeline\":{"), std::string::npos);
  EXPECT_NE(json.find("\"chunks\":["), std::string::npos);
  EXPECT_NE(json.find("\"result_count\":3"), std::string::npos);
  EXPECT_NE(json.find("\"merge_rounds\":["), std::string::npos);
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
  // Balanced braces/brackets.
  int depth = 0;
  bool in_string = false;
  for (std::size_t i = 0; i < json.size(); ++i) {
    const char c = json[i];
    if (in_string) {
      if (c == '\\') ++i;
      else if (c == '"') in_string = false;
      continue;
    }
    if (c == '"') in_string = true;
    if (c == '{' || c == '[') ++depth;
    if (c == '}' || c == ']') --depth;
    EXPECT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0);
}

TEST(Report, PhasesJsonDistinguishesModes) {
  PhaseBreakdown plain;
  plain.read_s = 1.0;
  plain.map_s = 2.0;
  const std::string a = core::phases_to_json(plain);
  EXPECT_EQ(test::validate_json(a), "");
  EXPECT_NE(a.find("\"read_s\":1"), std::string::npos);
  EXPECT_EQ(a.find("readmap_s"), std::string::npos);

  PhaseBreakdown combined;
  combined.has_combined_readmap = true;
  combined.readmap_s = 3.0;
  const std::string b = core::phases_to_json(combined);
  EXPECT_EQ(test::validate_json(b), "");
  EXPECT_NE(b.find("\"readmap_s\":3"), std::string::npos);
}

// Regression: run() used to emit phases.num_chunks = 0 while the top-level
// "chunks" field carried the real plan size. num_chunks is now the real
// count in every mode and "chunked" carries the presentation.
TEST(Report, UnchunkedRunPhasesAreSelfConsistent) {
  apps::WordCountApp app;
  ingest::SingleDeviceSource src(
      std::make_shared<storage::MemDevice>("a b c\na b\nc d\n", "m"),
      std::make_shared<ingest::LineFormat>(), 6);
  core::JobConfig jc;
  jc.num_map_threads = 2;
  jc.num_reduce_threads = 1;
  core::MapReduceJob job(app, src, jc);
  auto result = job.run(core::ExecMode::kOriginal);
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result->chunks, 1u);
  EXPECT_EQ(result->phases.num_chunks, result->chunks);
  EXPECT_FALSE(result->phases.chunked);
  const std::string json = core::job_result_to_json(*result);
  EXPECT_EQ(test::validate_json(json), "");
  EXPECT_NE(json.find("\"chunked\":false"), std::string::npos);
  EXPECT_NE(json.find("\"num_chunks\":" +
                      std::to_string(result->chunks)),
            std::string::npos);
}

TEST(Report, ChunkedRunPhasesFlagChunked) {
  apps::WordCountApp app;
  ingest::SingleDeviceSource src(
      std::make_shared<storage::MemDevice>("a b c\na b\nc d\n", "m"),
      std::make_shared<ingest::LineFormat>(), 6);
  core::JobConfig jc;
  jc.num_map_threads = 2;
  jc.num_reduce_threads = 1;
  core::MapReduceJob job(app, src, jc);
  auto result = job.run(core::ExecMode::kIngestMR);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->phases.num_chunks, result->chunks);
  EXPECT_TRUE(result->phases.chunked);
  const std::string json = core::job_result_to_json(*result);
  EXPECT_EQ(test::validate_json(json), "");
  EXPECT_NE(json.find("\"chunked\":true"), std::string::npos);
}

TEST(Report, JobResultJsonCarriesMetricsObject) {
  apps::WordCountApp app;
  ingest::SingleDeviceSource src(
      std::make_shared<storage::MemDevice>("a b\n", "m"),
      std::make_shared<ingest::LineFormat>(), 0);
  core::JobConfig jc;
  jc.num_map_threads = 1;
  jc.num_reduce_threads = 1;
  core::MapReduceJob job(app, src, jc);
  auto result = job.run(core::ExecMode::kOriginal);
  ASSERT_TRUE(result.ok());
  const std::string json = core::job_result_to_json(*result);
  EXPECT_EQ(test::validate_json(json), "");
  EXPECT_NE(json.find("\"metrics\":{\"counters\":{"), std::string::npos);
}

TEST(Report, TimeSeriesJson) {
  TimeSeries ts({"user", "sys"});
  ts.append(0.0, {10.0, 1.0});
  ts.append(1.0, {20.0, 2.0});
  const std::string json = core::timeseries_to_json(ts);
  EXPECT_EQ(json,
            "{\"t\":[0,1],\"user\":[10,20],\"sys\":[1,2]}");
}

TEST(Report, MergePartitionedBlockCarriesGeometry) {
  // Partitioned-shuffle geometry rides in its own "merge_partitioned" block
  // (docs/merge.md). Synthesized stats keep the expectations exact.
  core::JobResult result;
  result.merge_stats.partitions = 4;
  result.merge_stats.partition_max_items = 30;
  result.merge_stats.partition_min_items = 10;
  result.merge_stats.rounds.push_back({4, 80, 0.5});  // mean 20/partition
  const std::string json = core::job_result_to_json(result);
  EXPECT_EQ(test::validate_json(json), "");
  EXPECT_NE(json.find("\"merge_partitioned\":{"), std::string::npos);
  EXPECT_NE(json.find("\"partitions\":4"), std::string::npos);
  EXPECT_NE(json.find("\"partition_max_items\":30"), std::string::npos);
  EXPECT_NE(json.find("\"partition_min_items\":10"), std::string::npos);
  EXPECT_NE(json.find("\"partition_skew\":1.5"), std::string::npos);
}

TEST(Report, MergePartitionedBlockForGlobalMerge) {
  // partitions = 0 means the merge ran as a single global round; the block
  // is still present (fixed schema) with neutral values.
  core::JobResult result;
  const std::string json = core::job_result_to_json(result);
  EXPECT_EQ(test::validate_json(json), "");
  EXPECT_NE(json.find("\"merge_partitioned\":{\"partitions\":0"),
            std::string::npos);
  EXPECT_NE(json.find("\"partition_skew\":1"), std::string::npos);
}

TEST(Report, DegradeAccountingInJson) {
  core::JobResult result;
  result.chunks = 4;
  result.chunks_skipped = 1;
  result.bytes_skipped = 65536;
  result.pipeline.chunks_skipped = 1;
  result.pipeline.bytes_skipped = 65536;
  ingest::ChunkTiming skipped;
  skipped.index = 0;
  skipped.bytes = 65536;
  skipped.attempts = 2;
  skipped.skipped = true;
  result.pipeline.chunks.push_back(skipped);
  const std::string json = core::job_result_to_json(result);
  EXPECT_EQ(test::validate_json(json), "");
  EXPECT_TRUE(result.degraded());
  EXPECT_NE(json.find("\"chunks_skipped\":1"), std::string::npos);
  EXPECT_NE(json.find("\"bytes_skipped\":65536"), std::string::npos);
  EXPECT_NE(json.find("\"degraded\":true"), std::string::npos);
  // The per-chunk record carries the skip flag and attempt count too.
  EXPECT_NE(json.find("\"attempts\":2"), std::string::npos);
  EXPECT_NE(json.find("\"skipped\":true"), std::string::npos);
}

TEST(Report, CleanRunIsNotDegraded) {
  core::JobResult result;
  result.chunks = 4;
  const std::string json = core::job_result_to_json(result);
  EXPECT_EQ(test::validate_json(json), "");
  EXPECT_FALSE(result.degraded());
  EXPECT_NE(json.find("\"chunks_skipped\":0"), std::string::npos);
  EXPECT_NE(json.find("\"degraded\":false"), std::string::npos);
}

TEST(Report, StatusToJson) {
  const std::string ok = core::status_to_json(Status::Ok());
  EXPECT_EQ(test::validate_json(ok), "");
  EXPECT_NE(ok.find("\"ok\":true"), std::string::npos);
  EXPECT_NE(ok.find("\"code\":\"OK\""), std::string::npos);

  const std::string err = core::status_to_json(
      Status::InvalidArgument("bad \"flag\" value"));
  EXPECT_EQ(test::validate_json(err), "");
  EXPECT_NE(err.find("\"ok\":false"), std::string::npos);
  EXPECT_NE(err.find("\"code\":\"INVALID_ARGUMENT\""), std::string::npos);
  // The message survives with its quotes escaped.
  EXPECT_NE(err.find("bad \\\"flag\\\" value"), std::string::npos);
}

}  // namespace
}  // namespace supmr
