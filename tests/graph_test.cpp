// JobGraph tests: DAG validation errors, memory-vs-file handoff
// byte-equality, forced spill under a tiny budget, the chained apps
// (pmi / tfidf / msort) against the sequential graph oracle, graph
// scheduling through JobManager::submit_graph, and the graph routing in
// ref::run_cell (including spill accounting surfaced in the outcome).
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "apps/chains.hpp"
#include "apps/pair_count.hpp"
#include "apps/word_count.hpp"
#include "core/replay.hpp"
#include "graph/job_graph.hpp"
#include "ingest/record_format.hpp"
#include "ingest/source.hpp"
#include "ref/conformance.hpp"
#include "ref/ref_graph.hpp"
#include "runtime/job_manager.hpp"
#include "storage/mem_device.hpp"
#include "wload/teragen.hpp"
#include "wload/text_corpus.hpp"

namespace supmr::graph {
namespace {

using apps::ChainInputs;
using apps::make_chain;
using ingest::LineFormat;
using ingest::SingleDeviceSource;
using storage::MemDevice;

std::string text_corpus(std::uint64_t bytes, std::uint64_t seed) {
  wload::TextCorpusConfig cfg;
  cfg.total_bytes = bytes;
  cfg.seed = seed;
  return wload::generate_text(cfg);
}

AppFactory wordcount_factory() {
  return [] { return std::make_unique<apps::WordCountApp>(); };
}

StageOptions line_stage(std::string name) {
  StageOptions opts;
  opts.name = std::move(name);
  opts.format = std::make_shared<LineFormat>();
  opts.chunk_bytes = 16 * 1024;
  return opts;
}

std::shared_ptr<SingleDeviceSource> text_source(
    const std::shared_ptr<const storage::Device>& dev) {
  return std::make_shared<SingleDeviceSource>(
      dev, std::make_shared<LineFormat>(), 16 * 1024);
}

core::ReplaySpec pmi_spec() {
  core::ReplaySpec spec;
  spec.app = "pmi";
  spec.corpus.kind = "text";
  spec.corpus.bytes = 96 * 1024;
  spec.corpus.seed = 11;
  spec.chunk_bytes = 16 * 1024;
  spec.threads = 3;
  return spec;
}

// ------------------------------------------------------------- validation

TEST(JobGraphValidation, EmptyGraphIsRejected) {
  JobGraph g;
  EXPECT_FALSE(g.topo_order().ok());
}

TEST(JobGraphValidation, RootWithoutSourceIsRejected) {
  JobGraph g;
  g.add_stage(wordcount_factory(), line_stage("root"));
  EXPECT_FALSE(g.topo_order().ok());
}

TEST(JobGraphValidation, SourcePlusInEdgeIsRejected) {
  auto dev = std::make_shared<MemDevice>(std::string("a b\n"), "mem");
  JobGraph g;
  const std::size_t a = g.add_stage(wordcount_factory(), line_stage("a"));
  const std::size_t b = g.add_stage(wordcount_factory(), line_stage("b"));
  ASSERT_TRUE(g.set_source(a, text_source(dev)).ok());
  ASSERT_TRUE(g.set_source(b, text_source(dev)).ok());
  ASSERT_TRUE(g.add_edge(a, b).ok());
  EXPECT_FALSE(g.topo_order().ok());
}

TEST(JobGraphValidation, ExactlyOneSinkRequired) {
  auto dev = std::make_shared<MemDevice>(std::string("a b\n"), "mem");
  JobGraph g;
  const std::size_t a = g.add_stage(wordcount_factory(), line_stage("a"));
  const std::size_t b = g.add_stage(wordcount_factory(), line_stage("b"));
  ASSERT_TRUE(g.set_source(a, text_source(dev)).ok());
  ASSERT_TRUE(g.set_source(b, text_source(dev)).ok());
  EXPECT_FALSE(g.topo_order().ok());  // two sinks
}

TEST(JobGraphValidation, CycleIsRejected) {
  JobGraph g;
  const std::size_t a = g.add_stage(wordcount_factory(), line_stage("a"));
  const std::size_t b = g.add_stage(wordcount_factory(), line_stage("b"));
  const std::size_t c = g.add_stage(wordcount_factory(), line_stage("c"));
  ASSERT_TRUE(g.add_edge(a, b).ok());
  ASSERT_TRUE(g.add_edge(b, c).ok());
  ASSERT_TRUE(g.add_edge(c, a).ok());
  EXPECT_FALSE(g.topo_order().ok());
}

TEST(JobGraphValidation, SelfEdgeAndUnknownStagesAreRejected) {
  JobGraph g;
  const std::size_t a = g.add_stage(wordcount_factory(), line_stage("a"));
  EXPECT_FALSE(g.add_edge(a, a).ok());
  EXPECT_FALSE(g.add_edge(a, 99).ok());
  EXPECT_FALSE(g.add_edge(99, a).ok());
  EXPECT_FALSE(g.set_source(99, nullptr).ok());
  EXPECT_FALSE(g.set_source(a, nullptr).ok());
}

// ----------------------------------------------------- pair-count helpers

TEST(PairCountHelpers, SplitLinesCutsOnlyAfterNewlines) {
  const std::string text = "one two\nthree four\nfive six\n";
  auto splits = apps::split_lines(
      std::span<const char>(text.data(), text.size()), 2);
  ASSERT_LE(splits.size(), 2u);
  std::string joined;
  for (const auto& s : splits) {
    if (!s.empty()) EXPECT_EQ(s.back(), '\n');
    joined.append(s.data(), s.size());
  }
  EXPECT_EQ(joined, text);
}

TEST(PairCountHelpers, PairsNeverCrossLines) {
  const std::string text = "a b c\nd e\n";
  std::vector<std::string> pairs;
  apps::for_each_pair(std::span<const char>(text.data(), text.size()),
                      [&](std::string_view p) { pairs.emplace_back(p); });
  EXPECT_EQ(pairs, (std::vector<std::string>{"a b", "b c", "d e"}));
}

// ------------------------------------------------------- chain execution

TEST(JobGraphRun, PmiMemoryHandoffMatchesOracle) {
  const std::string data = text_corpus(96 * 1024, 11);
  ChainInputs inputs;
  inputs.device = std::make_shared<MemDevice>(data, "corpus");
  auto graph_or = make_chain(pmi_spec(), inputs);
  ASSERT_TRUE(graph_or.ok()) << graph_or.status().to_string();

  auto sut = run_graph(*graph_or);
  ASSERT_TRUE(sut.ok()) << sut.status().to_string();
  EXPECT_EQ(sut->stages.size(), 3u);
  EXPECT_GT(sut->handoff_bytes, 0u);
  EXPECT_EQ(sut->spill_files, 0u);

  auto oracle = ref::run_graph(*graph_or);
  ASSERT_TRUE(oracle.ok()) << oracle.status().to_string();
  EXPECT_FALSE(sut->final_output.empty());
  EXPECT_EQ(sut->final_output, oracle->canonical);
}

TEST(JobGraphRun, FileHandoffIsByteIdenticalToMemory) {
  const std::string data = text_corpus(64 * 1024, 5);
  ChainInputs inputs;
  inputs.device = std::make_shared<MemDevice>(data, "corpus");
  auto graph_or = make_chain(pmi_spec(), inputs);
  ASSERT_TRUE(graph_or.ok()) << graph_or.status().to_string();

  auto mem = run_graph(*graph_or);
  ASSERT_TRUE(mem.ok()) << mem.status().to_string();

  GraphOptions file_opts;
  file_opts.handoff = core::GraphHandoff::kFile;
  auto file = run_graph(*graph_or, file_opts);
  ASSERT_TRUE(file.ok()) << file.status().to_string();

  EXPECT_EQ(mem->final_output, file->final_output);
  EXPECT_EQ(mem->spill_files, 0u);
  // Spills are per consuming stage (upstream payloads are concatenated
  // before the handoff decision): the pmi join is the only interior stage.
  EXPECT_EQ(file->spill_files, 1u);
  EXPECT_GT(file->spill_bytes, 0u);
}

TEST(JobGraphRun, TinyBudgetForcesSpillWithoutChangingBytes) {
  const std::string data = text_corpus(64 * 1024, 7);
  ChainInputs inputs;
  inputs.device = std::make_shared<MemDevice>(data, "corpus");
  auto graph_or = make_chain(pmi_spec(), inputs);
  ASSERT_TRUE(graph_or.ok()) << graph_or.status().to_string();

  auto mem = run_graph(*graph_or);
  ASSERT_TRUE(mem.ok()) << mem.status().to_string();

  GraphOptions tiny;
  tiny.memory_budget = 1;  // every handoff exceeds this
  auto spilled = run_graph(*graph_or, tiny);
  ASSERT_TRUE(spilled.ok()) << spilled.status().to_string();
  EXPECT_GT(spilled->spill_files, 0u);
  EXPECT_EQ(mem->final_output, spilled->final_output);
}

TEST(JobGraphRun, ThrottledSpillIsByteIdenticalToMemory) {
  // spill_bps emulates a disk-class spill device (write + re-ingest charged
  // against one RateLimiter). It changes only wall clock, never bytes; the
  // rate here is high enough that the test's ~100KB edge adds no real delay.
  const std::string data = text_corpus(64 * 1024, 7);
  ChainInputs inputs;
  inputs.device = std::make_shared<MemDevice>(data, "corpus");
  auto graph_or = make_chain(pmi_spec(), inputs);
  ASSERT_TRUE(graph_or.ok()) << graph_or.status().to_string();

  auto mem = run_graph(*graph_or);
  ASSERT_TRUE(mem.ok()) << mem.status().to_string();

  GraphOptions throttled;
  throttled.handoff = core::GraphHandoff::kFile;
  throttled.spill_bps = 1e9;
  auto spilled = run_graph(*graph_or, throttled);
  ASSERT_TRUE(spilled.ok()) << spilled.status().to_string();
  EXPECT_GT(spilled->spill_files, 0u);
  EXPECT_GT(spilled->spill_bytes, 0u);
  EXPECT_EQ(mem->final_output, spilled->final_output);
}

TEST(JobGraphRun, TfIdfChainMatchesOracle) {
  wload::TextCorpusConfig tcfg;
  tcfg.seed = 3;
  auto files = wload::generate_text_files(tcfg, 5, 8 * 1024);
  ChainInputs inputs;
  inputs.files.assign(files.begin(), files.end());

  core::ReplaySpec spec;
  spec.app = "tfidf";
  spec.corpus.kind = "multi-text";
  spec.threads = 3;
  spec.files_per_chunk = 2;
  auto graph_or = make_chain(spec, inputs);
  ASSERT_TRUE(graph_or.ok()) << graph_or.status().to_string();

  auto sut = run_graph(*graph_or);
  ASSERT_TRUE(sut.ok()) << sut.status().to_string();
  auto oracle = ref::run_graph(*graph_or);
  ASSERT_TRUE(oracle.ok()) << oracle.status().to_string();
  EXPECT_FALSE(sut->final_output.empty());
  EXPECT_EQ(sut->final_output, oracle->canonical);
}

TEST(JobGraphRun, MultiRoundSortChainMatchesOracle) {
  wload::TeraGenConfig tcfg;
  tcfg.num_records = 600;
  tcfg.seed = 9;
  const std::string data = wload::teragen_to_string(tcfg);
  ChainInputs inputs;
  inputs.device = std::make_shared<MemDevice>(data, "tera");

  core::ReplaySpec spec;
  spec.app = "msort";
  spec.corpus.kind = "terasort";
  spec.threads = 3;
  spec.chunk_bytes = 100 * 64;  // record-aligned chunks -> several rounds
  auto graph_or = make_chain(spec, inputs);
  ASSERT_TRUE(graph_or.ok()) << graph_or.status().to_string();

  auto sut = run_graph(*graph_or);
  ASSERT_TRUE(sut.ok()) << sut.status().to_string();
  auto oracle = ref::run_graph(*graph_or);
  ASSERT_TRUE(oracle.ok()) << oracle.status().to_string();
  EXPECT_EQ(sut->final_output.size(), data.size());
  EXPECT_EQ(sut->final_output, oracle->canonical);
}

// --------------------------------------------------- managed graph runs

TEST(JobGraphManaged, SubmitGraphMatchesInlineRun) {
  const std::string data = text_corpus(64 * 1024, 21);
  ChainInputs inputs;
  inputs.device = std::make_shared<MemDevice>(data, "corpus");
  auto graph_or = make_chain(pmi_spec(), inputs);
  ASSERT_TRUE(graph_or.ok()) << graph_or.status().to_string();

  auto inline_result = run_graph(*graph_or);
  ASSERT_TRUE(inline_result.ok()) << inline_result.status().to_string();

  runtime::JobManager::Options opts;
  opts.num_threads = 4;
  runtime::JobManager manager(opts);
  runtime::GraphRequest request;
  request.graph = &*graph_or;
  request.name = "pmi-managed";
  auto handle_or = manager.submit_graph(request);
  ASSERT_TRUE(handle_or.ok()) << handle_or.status().to_string();
  auto managed = handle_or->wait();
  ASSERT_TRUE(managed.ok()) << managed.status().to_string();
  EXPECT_EQ(managed->final_output, inline_result->final_output);
  EXPECT_EQ(managed->stages.size(), 3u);
  manager.drain();
  EXPECT_EQ(manager.running_graphs(), 0u);
}

TEST(JobGraphManaged, RejectsMalformedGraphAndDrainedManager) {
  runtime::JobManager manager;
  runtime::GraphRequest request;  // null graph
  EXPECT_FALSE(manager.submit_graph(request).ok());

  JobGraph cyclic;
  const std::size_t a = cyclic.add_stage(wordcount_factory(), line_stage("a"));
  const std::size_t b = cyclic.add_stage(wordcount_factory(), line_stage("b"));
  ASSERT_TRUE(cyclic.add_edge(a, b).ok());
  ASSERT_TRUE(cyclic.add_edge(b, a).ok());
  request.graph = &cyclic;
  EXPECT_FALSE(manager.submit_graph(request).ok());

  const std::string data = text_corpus(16 * 1024, 2);
  ChainInputs inputs;
  inputs.device = std::make_shared<MemDevice>(data, "corpus");
  auto graph_or = make_chain(pmi_spec(), inputs);
  ASSERT_TRUE(graph_or.ok());
  manager.drain();
  request.graph = &*graph_or;
  EXPECT_FALSE(manager.submit_graph(request).ok());
}

// ------------------------------------------------- conformance routing

TEST(GraphConformance, PmiCellPasses) {
  auto outcome = ref::run_cell(pmi_spec());
  ASSERT_TRUE(outcome.ok()) << outcome.status().to_string();
  EXPECT_TRUE(outcome->match) << outcome->diff;
  EXPECT_EQ(outcome->graph_stages, 3u);
  EXPECT_GT(outcome->graph_handoff_bytes, 0u);
  EXPECT_EQ(outcome->graph_spill_files, 0u);
}

TEST(GraphConformance, ForcedSpillCellPassesAndReportsSpill) {
  core::ReplaySpec spec = pmi_spec();
  spec.graph_budget = 1;
  auto outcome = ref::run_cell(spec);
  ASSERT_TRUE(outcome.ok()) << outcome.status().to_string();
  EXPECT_TRUE(outcome->match) << outcome->diff;
  EXPECT_GT(outcome->graph_spill_files, 0u);
  EXPECT_GT(outcome->graph_spill_bytes, 0u);
}

TEST(GraphConformance, GraphCellsRejectFaultsAndAdaptive) {
  core::ReplaySpec spec = pmi_spec();
  spec.fault_plan = "seed=7;transient=0.05";
  EXPECT_FALSE(ref::run_cell(spec).ok());
  spec = pmi_spec();
  spec.mode = core::ExecMode::kAdaptive;
  EXPECT_FALSE(ref::run_cell(spec).ok());
  spec = pmi_spec();
  spec.app = "tfidf";  // but corpus kind still "text"
  EXPECT_FALSE(ref::run_cell(spec).ok());
}

TEST(GraphConformance, GraphSpecJsonRoundTrips) {
  core::ReplaySpec spec = pmi_spec();
  spec.graph_handoff = core::GraphHandoff::kFile;
  spec.graph_budget = 12345;
  auto parsed = core::ReplaySpec::from_json(spec.to_json());
  ASSERT_TRUE(parsed.ok()) << parsed.status().to_string();
  EXPECT_EQ(parsed->app, "pmi");
  EXPECT_EQ(parsed->graph_handoff, core::GraphHandoff::kFile);
  EXPECT_EQ(parsed->graph_budget, 12345u);
}

}  // namespace
}  // namespace supmr::graph
