// Unit tests for the threading substrate: latch, barrier, queues, pool,
// double buffer, parallel_for.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <thread>

#include "threading/double_buffer.hpp"
#include "threading/latch.hpp"
#include "threading/mpmc_queue.hpp"
#include "threading/spsc_queue.hpp"
#include "threading/thread_pool.hpp"

namespace supmr {
namespace {

// ---------------------------------------------------------------- latch

TEST(CountdownLatch, ReleasesAtZero) {
  CountdownLatch latch(3);
  EXPECT_FALSE(latch.try_wait());
  latch.count_down();
  latch.count_down(2);
  EXPECT_TRUE(latch.try_wait());
  latch.wait();  // does not block
}

TEST(CountdownLatch, OverCountClampsToZero) {
  CountdownLatch latch(1);
  latch.count_down(10);
  EXPECT_TRUE(latch.try_wait());
}

TEST(CountdownLatch, CrossThreadRelease) {
  CountdownLatch latch(4);
  std::atomic<int> before{0};
  std::vector<std::thread> workers;
  for (int i = 0; i < 4; ++i) {
    workers.emplace_back([&] {
      ++before;
      latch.count_down();
    });
  }
  latch.wait();
  EXPECT_EQ(before.load(), 4);
  for (auto& w : workers) w.join();
}

TEST(Barrier, ExactlyOneSerialThreadPerGeneration) {
  constexpr int kParties = 4, kGenerations = 8;
  Barrier barrier(kParties);
  std::atomic<int> serial_count{0};
  std::vector<std::thread> workers;
  for (int p = 0; p < kParties; ++p) {
    workers.emplace_back([&] {
      for (int g = 0; g < kGenerations; ++g) {
        if (barrier.arrive_and_wait()) ++serial_count;
      }
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(serial_count.load(), kGenerations);
}

// ----------------------------------------------------------- spsc queue

TEST(SpscQueue, FifoOrder) {
  SpscQueue<int> q(8);
  for (int i = 0; i < 8; ++i) EXPECT_TRUE(q.try_push(i));
  EXPECT_FALSE(q.try_push(99));  // full
  for (int i = 0; i < 8; ++i) {
    auto v = q.try_pop();
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, i);
  }
  EXPECT_FALSE(q.try_pop().has_value());
}

TEST(SpscQueue, CapacityRoundsUpToPowerOfTwo) {
  SpscQueue<int> q(5);
  EXPECT_EQ(q.capacity(), 8u);
}

TEST(SpscQueue, StressProducerConsumer) {
  constexpr int kItems = 200000;
  SpscQueue<int> q(64);
  std::thread producer([&] {
    for (int i = 0; i < kItems; ++i) {
      while (!q.try_push(i)) std::this_thread::yield();
    }
  });
  long long sum = 0;
  int received = 0;
  while (received < kItems) {
    if (auto v = q.try_pop()) {
      EXPECT_EQ(*v, received);  // order preserved
      sum += *v;
      ++received;
    } else {
      std::this_thread::yield();  // single-core: let the producer refill
    }
  }
  producer.join();
  EXPECT_EQ(sum, 1LL * kItems * (kItems - 1) / 2);
}

// ----------------------------------------------------------- mpmc queue

TEST(MpmcQueue, PushPopBasic) {
  MpmcQueue<int> q;
  q.push(1);
  q.push(2);
  EXPECT_EQ(q.pop(), 1);
  EXPECT_EQ(q.pop(), 2);
}

TEST(MpmcQueue, CloseDrainsThenEnds) {
  MpmcQueue<int> q;
  q.push(7);
  q.close();
  EXPECT_FALSE(q.push(8));
  EXPECT_EQ(q.pop(), 7);
  EXPECT_FALSE(q.pop().has_value());
}

TEST(MpmcQueue, TryPopNonBlocking) {
  MpmcQueue<int> q;
  EXPECT_FALSE(q.try_pop().has_value());
  q.push(3);
  EXPECT_EQ(q.try_pop(), 3);
}

TEST(MpmcQueue, ManyProducersManyConsumers) {
  constexpr int kPerProducer = 5000, kProducers = 4, kConsumers = 4;
  MpmcQueue<int> q(128);
  std::atomic<long long> sum{0};
  std::vector<std::thread> threads;
  for (int p = 0; p < kProducers; ++p) {
    threads.emplace_back([&] {
      for (int i = 1; i <= kPerProducer; ++i) q.push(i);
    });
  }
  for (int c = 0; c < kConsumers; ++c) {
    threads.emplace_back([&] {
      while (auto v = q.pop()) sum += *v;
    });
  }
  for (int p = 0; p < kProducers; ++p) threads[p].join();
  q.close();
  for (int c = 0; c < kConsumers; ++c) threads[kProducers + c].join();
  EXPECT_EQ(sum.load(),
            1LL * kProducers * kPerProducer * (kPerProducer + 1) / 2);
}

// ---------------------------------------------------------- thread pool

TEST(ThreadPool, RunsSubmittedTasks) {
  ThreadPool pool(3);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) EXPECT_TRUE(pool.submit([&] { ++count; }));
  pool.wait_all();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, ShutdownDrainsThenRejectsSubmit) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  for (int i = 0; i < 10; ++i) EXPECT_TRUE(pool.submit([&] { ++count; }));
  pool.shutdown();
  EXPECT_EQ(count.load(), 10);  // queued tasks ran before the join
  EXPECT_FALSE(pool.submit([&] { ++count; }));
  pool.wait_all();  // rejected submit must not leave a pending count behind
  EXPECT_EQ(count.load(), 10);
}

TEST(ThreadPool, WaveAfterShutdownReportsFailureWithoutHanging) {
  // Regression: run_wave used to discard submit()'s return, so a wave
  // against a shut-down pool ran nothing and the caller never knew. Now the
  // failed submits count the latch down (no hang) and the wave returns
  // false; the _or_throw variants surface it for Status-less call sites.
  ThreadPool pool(2);
  pool.shutdown();
  std::atomic<int> count{0};
  std::vector<std::function<void(std::size_t)>> tasks;
  for (int i = 0; i < 4; ++i)
    tasks.push_back([&count](std::size_t) { ++count; });
  EXPECT_FALSE(pool.run_wave(tasks));
  EXPECT_EQ(count.load(), 0);
  EXPECT_THROW(pool.run_wave_or_throw(tasks), std::runtime_error);
  EXPECT_FALSE(parallel_for(
      pool, 10, [](std::size_t, std::size_t, std::size_t) {}));
  EXPECT_THROW(parallel_for_or_throw(
                   pool, 10, [](std::size_t, std::size_t, std::size_t) {}),
               std::runtime_error);
}

TEST(ThreadPool, WaveProvidesDistinctIndices) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(8);
  std::vector<std::function<void(std::size_t)>> tasks;
  for (int i = 0; i < 8; ++i)
    tasks.push_back([&hits](std::size_t idx) { ++hits[idx]; });
  EXPECT_TRUE(pool.run_wave(tasks));
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, UnpooledWaveRunsAll) {
  std::atomic<int> count{0};
  std::vector<std::function<void(std::size_t)>> tasks;
  for (int i = 0; i < 5; ++i)
    tasks.push_back([&count](std::size_t) { ++count; });
  ThreadPool::run_wave_unpooled(tasks);
  EXPECT_EQ(count.load(), 5);
}

TEST(ThreadPool, WaitAllIsReusable) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  pool.submit([&] { ++count; });
  pool.wait_all();
  EXPECT_EQ(count.load(), 1);
  pool.submit([&] { ++count; });
  pool.submit([&] { ++count; });
  pool.wait_all();
  EXPECT_EQ(count.load(), 3);
}

TEST(ParallelFor, CoversRangeExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  EXPECT_TRUE(parallel_for(pool, hits.size(),
                           [&](std::size_t b, std::size_t e, std::size_t) {
                             for (std::size_t i = b; i < e; ++i) ++hits[i];
                           }));
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelFor, EmptyRange) {
  ThreadPool pool(2);
  bool called = false;
  EXPECT_TRUE(parallel_for(pool, 0,
                           [&](std::size_t, std::size_t, std::size_t) {
                             called = true;
                           }));
  EXPECT_FALSE(called);
}

// --------------------------------------------------------- double buffer

TEST(DoubleBuffer, PassesValuesInOrder) {
  DoubleBuffer<int> buf;
  std::thread producer([&] {
    for (int i = 0; i < 100; ++i) EXPECT_TRUE(buf.produce(i));
    buf.close();
  });
  int expected = 0, v = 0;
  while (buf.consume(v)) EXPECT_EQ(v, expected++);
  EXPECT_EQ(expected, 100);
  producer.join();
}

TEST(DoubleBuffer, AtMostTwoResident) {
  // The double-buffering bound: the producer can never get more than two
  // items ahead of the consumer (paper Fig. 4's memory guarantee).
  DoubleBuffer<int> buf;
  std::atomic<std::size_t> max_seen{0};
  std::thread producer([&] {
    for (int i = 0; i < 500; ++i) {
      buf.produce(i);
      std::size_t occ = buf.occupied();
      std::size_t prev = max_seen.load();
      while (occ > prev && !max_seen.compare_exchange_weak(prev, occ)) {
      }
    }
    buf.close();
  });
  int v;
  while (buf.consume(v)) {
    EXPECT_LE(buf.occupied(), 2u);
  }
  producer.join();
  EXPECT_LE(max_seen.load(), 2u);
  EXPECT_GE(max_seen.load(), 1u);
}

TEST(DoubleBuffer, CloseReleasesBlockedProducer) {
  DoubleBuffer<int> buf;
  ASSERT_TRUE(buf.produce(1));
  ASSERT_TRUE(buf.produce(2));
  std::atomic<bool> third_result{true};
  std::thread producer([&] { third_result = buf.produce(3); });
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  buf.close();  // consumer aborting
  producer.join();
  EXPECT_FALSE(third_result.load());
}

TEST(DoubleBuffer, ConsumeAfterCloseDrains) {
  DoubleBuffer<int> buf;
  buf.produce(42);
  buf.close();
  int v = 0;
  EXPECT_TRUE(buf.consume(v));
  EXPECT_EQ(v, 42);
  EXPECT_FALSE(buf.consume(v));
}

TEST(DoubleBuffer, MovesOwnershipOfHeavyValues) {
  DoubleBuffer<std::vector<char>> buf;
  std::vector<char> big(1 << 20, 'x');
  const char* data = big.data();
  buf.produce(std::move(big));
  std::vector<char> out;
  buf.close();
  ASSERT_TRUE(buf.consume(out));
  EXPECT_EQ(out.data(), data);  // moved, not copied
}

}  // namespace
}  // namespace supmr
