// Unit + property tests for the ingest layer: record formats, boundary
// adjustment, chunk planning, sources, and the double-buffered pipeline
// (including failure injection).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <numeric>
#include <thread>

#include "common/rng.hpp"
#include "ingest/pipeline.hpp"
#include "ingest/record_format.hpp"
#include "ingest/source.hpp"
#include "storage/fault_device.hpp"
#include "storage/mem_device.hpp"
#include "wload/teragen.hpp"
#include "wload/text_corpus.hpp"

namespace supmr::ingest {
namespace {

using storage::MemDevice;

std::shared_ptr<const storage::Device> mem(std::string s,
                                           std::string name = "mem") {
  return std::make_shared<MemDevice>(std::move(s), std::move(name));
}

// --------------------------------------------------------- record formats

TEST(LineFormat, FindsNewline) {
  LineFormat f;
  const std::string s = "abc\ndef\n";
  EXPECT_EQ(f.find_record_end(std::span<const char>(s.data(), s.size()), 0),
            4u);
  EXPECT_EQ(f.find_record_end(std::span<const char>(s.data(), s.size()), 4),
            8u);
  EXPECT_FALSE(
      f.find_record_end(std::span<const char>(s.data(), 3), 0).has_value());
}

TEST(CrlfFormat, FindsCrlfOnly) {
  CrlfFormat f;
  const std::string s = "ab\rcd\r\nef";
  // The lone \r at 2 is not a terminator.
  EXPECT_EQ(f.find_record_end(std::span<const char>(s.data(), s.size()), 0),
            7u);
}

TEST(CrlfFormat, NoTerminator) {
  CrlfFormat f;
  const std::string s = "abcdef\r";  // dangling \r at end
  EXPECT_FALSE(
      f.find_record_end(std::span<const char>(s.data(), s.size()), 0)
          .has_value());
}

TEST(FixedFormat, ArithmeticBoundaries) {
  FixedFormat f(10);
  const std::string s(25, 'x');
  EXPECT_EQ(f.find_record_end(std::span<const char>(s.data(), s.size()), 0),
            10u);
  EXPECT_EQ(f.find_record_end(std::span<const char>(s.data(), s.size()), 10),
            20u);
  EXPECT_FALSE(
      f.find_record_end(std::span<const char>(s.data(), s.size()), 20)
          .has_value());
}

TEST(AdjustSplit, AdvancesToRecordEnd) {
  auto dev = mem("aaaa\nbbbb\ncccc\n");
  LineFormat f;
  auto split = f.adjust_split(*dev, 2);
  ASSERT_TRUE(split.ok());
  EXPECT_EQ(*split, 5u);  // end of "aaaa\n"
  split = f.adjust_split(*dev, 5);  // already on a boundary: stays put
  ASSERT_TRUE(split.ok());
  EXPECT_EQ(*split, 5u);
}

TEST(AdjustSplit, CrlfBoundaryStaysPut) {
  auto dev = mem("aa\r\nbb\r\n");
  CrlfFormat f;
  auto split = f.adjust_split(*dev, 4);
  ASSERT_TRUE(split.ok());
  EXPECT_EQ(*split, 4u);
  split = f.adjust_split(*dev, 3);  // between \r and \n: mid-record
  ASSERT_TRUE(split.ok());
  EXPECT_EQ(*split, 4u);
}

TEST(AdjustSplit, ClampsToDeviceSize) {
  auto dev = mem("abc\n");
  LineFormat f;
  auto split = f.adjust_split(*dev, 100);
  ASSERT_TRUE(split.ok());
  EXPECT_EQ(*split, 4u);
}

TEST(AdjustSplit, RecordRunningToEofEndsAtEof) {
  auto dev = mem("abc\ndef-without-newline");
  LineFormat f;
  auto split = f.adjust_split(*dev, 6);
  ASSERT_TRUE(split.ok());
  EXPECT_EQ(*split, dev->size());
}

TEST(AdjustSplit, CrlfStraddlingScanWindows) {
  // Place the \r exactly at a 64 KiB window edge; the scanner must still
  // find the \r\n pair.
  std::string s(64 * 1024 - 1, 'x');
  s += "\r\n";
  s += std::string(100, 'y');
  s += "\r\n";
  auto dev = mem(s);
  CrlfFormat f;
  auto split = f.adjust_split(*dev, 10);
  ASSERT_TRUE(split.ok());
  EXPECT_EQ(*split, 64u * 1024 + 1);
}

TEST(AdjustSplit, FixedFormatNeverReadsDevice) {
  MemDevice base(std::string(100, 'x'));
  auto plan = fault::FaultPlan::parse("permanent=0-100");  // any read fails
  ASSERT_TRUE(plan.ok());
  storage::FaultDevice dev(&base, *plan);
  FixedFormat f(10);
  auto split = f.adjust_split(dev, 25);
  ASSERT_TRUE(split.ok());
  EXPECT_EQ(*split, 30u);
}

// ------------------------------------------------------ inter-file plans

TEST(SingleDeviceSource, WholeInputWhenChunkZero) {
  SingleDeviceSource src(mem("aa\nbb\ncc\n"),
                         std::make_shared<LineFormat>(), 0);
  auto plan = src.plan();
  ASSERT_TRUE(plan.ok());
  ASSERT_EQ(plan->size(), 1u);
  EXPECT_EQ((*plan)[0].offset, 0u);
  EXPECT_EQ((*plan)[0].length, 9u);
}

TEST(SingleDeviceSource, PlansAtRecordBoundaries) {
  // 4 records of 5 bytes each; chunk target 7 -> boundaries at 10, 20.
  SingleDeviceSource src(mem("aaaa\nbbbb\ncccc\ndddd\n"),
                         std::make_shared<LineFormat>(), 7);
  auto plan = src.plan();
  ASSERT_TRUE(plan.ok());
  ASSERT_EQ(plan->size(), 2u);
  EXPECT_EQ((*plan)[0].length, 10u);
  EXPECT_EQ((*plan)[1].offset, 10u);
  EXPECT_EQ((*plan)[1].length, 10u);
}

TEST(SingleDeviceSource, EmptyDeviceEmptyPlan) {
  SingleDeviceSource src(mem(""), std::make_shared<LineFormat>(), 4);
  auto plan = src.plan();
  ASSERT_TRUE(plan.ok());
  EXPECT_TRUE(plan->empty());
}

TEST(SingleDeviceSource, ReadChunkMatchesExtent) {
  SingleDeviceSource src(mem("aaaa\nbbbb\ncccc\n"),
                         std::make_shared<LineFormat>(), 5);
  auto plan = src.plan();
  ASSERT_TRUE(plan.ok());
  IngestChunk chunk;
  ASSERT_TRUE(src.read_chunk((*plan)[1], chunk).ok());
  EXPECT_EQ(chunk.index, 1u);
  EXPECT_EQ(std::string(chunk.data.begin(), chunk.data.end()), "bbbb\n");
}

// Property: for random record layouts and chunk sizes, the plan covers every
// byte exactly once, in order, and never splits a record.
class InterFilePlanProperty
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(InterFilePlanProperty, CoversInputAtBoundaries) {
  const auto [seed, chunk_target] = GetParam();
  Xoshiro256 rng(seed);
  std::string data;
  std::vector<std::uint64_t> record_ends;
  const int records = 50 + int(rng.uniform(100));
  for (int r = 0; r < records; ++r) {
    const std::size_t len = 1 + rng.uniform(30);
    for (std::size_t i = 0; i < len; ++i)
      data.push_back(static_cast<char>('a' + rng.uniform(26)));
    data.push_back('\n');
    record_ends.push_back(data.size());
  }
  SingleDeviceSource src(mem(data), std::make_shared<LineFormat>(),
                         chunk_target);
  auto plan = src.plan();
  ASSERT_TRUE(plan.ok());
  std::uint64_t expected_offset = 0;
  for (std::size_t i = 0; i < plan->size(); ++i) {
    const ChunkExtent& e = (*plan)[i];
    EXPECT_EQ(e.index, i);
    EXPECT_EQ(e.offset, expected_offset);  // contiguous, in order
    EXPECT_GT(e.length, 0u);
    expected_offset += e.length;
    // Every chunk must end exactly at a record end.
    EXPECT_TRUE(std::binary_search(record_ends.begin(), record_ends.end(),
                                   e.offset + e.length))
        << "chunk " << i << " ends mid-record at " << e.offset + e.length;
  }
  EXPECT_EQ(expected_offset, data.size());  // full coverage
}

INSTANTIATE_TEST_SUITE_P(
    RandomLayouts, InterFilePlanProperty,
    ::testing::Combine(::testing::Values(1, 2, 3, 4, 5),
                       ::testing::Values(8, 64, 256, 1 << 20)));

TEST(SingleDeviceSource, TeraSortStylePlanIsRecordAligned) {
  wload::TeraGenConfig cfg;
  cfg.num_records = 1000;
  auto dev = mem(wload::teragen_to_string(cfg));
  SingleDeviceSource src(dev, std::make_shared<CrlfFormat>(), 977);
  auto plan = src.plan();
  ASSERT_TRUE(plan.ok());
  for (const auto& e : *plan) {
    EXPECT_EQ((e.offset + e.length) % cfg.record_bytes, 0u);
  }
}

// ------------------------------------------------------ intra-file plans

TEST(MultiFileSource, PaperExample30FilesBy4) {
  // Paper §III.A.1: 30 files, 4 per chunk -> 7 chunks of 4 + 1 chunk of 2.
  std::vector<std::shared_ptr<const storage::Device>> files;
  for (int i = 0; i < 30; ++i) files.push_back(mem("data" + std::to_string(i)));
  MultiFileSource src(files, 4);
  auto plan = src.plan();
  ASSERT_TRUE(plan.ok());
  ASSERT_EQ(plan->size(), 8u);
  for (int i = 0; i < 7; ++i) EXPECT_EQ((*plan)[i].files.size(), 4u);
  EXPECT_EQ((*plan)[7].files.size(), 2u);
}

TEST(MultiFileSource, ChunkCollocatesWholeFiles) {
  std::vector<std::shared_ptr<const storage::Device>> files = {
      mem("AAAA", "f0"), mem("BB", "f1"), mem("CCCCCC", "f2")};
  MultiFileSource src(files, 3);
  auto plan = src.plan();
  ASSERT_TRUE(plan.ok());
  ASSERT_EQ(plan->size(), 1u);
  IngestChunk chunk;
  ASSERT_TRUE(src.read_chunk((*plan)[0], chunk).ok());
  EXPECT_EQ(std::string(chunk.data.begin(), chunk.data.end()),
            "AAAABBCCCCCC");
  ASSERT_EQ(chunk.files.size(), 3u);
  EXPECT_EQ(chunk.files[1].file_index, 1u);
  EXPECT_EQ(chunk.files[1].offset_in_chunk, 4u);
  EXPECT_EQ(chunk.files[1].length, 2u);
}

TEST(MultiFileSource, ZeroMeansAllFilesOneChunk) {
  std::vector<std::shared_ptr<const storage::Device>> files = {
      mem("a"), mem("b"), mem("c")};
  MultiFileSource src(files, 0);
  auto plan = src.plan();
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->size(), 1u);
}

TEST(MultiFileSource, TotalBytesSumsFiles) {
  std::vector<std::shared_ptr<const storage::Device>> files = {
      mem("12345"), mem("123")};
  MultiFileSource src(files, 1);
  EXPECT_EQ(src.total_bytes(), 8u);
}

// --------------------------------------------------------------- pipeline

TEST(IngestPipeline, DeliversChunksInOrder) {
  SingleDeviceSource src(mem("aa\nbb\ncc\ndd\n"),
                         std::make_shared<LineFormat>(), 3);
  IngestPipeline pipeline(src);
  std::vector<std::string> seen;
  auto stats = pipeline.run([&](IngestChunk& c) {
    seen.emplace_back(c.data.begin(), c.data.end());
    return Status::Ok();
  });
  ASSERT_TRUE(stats.ok()) << stats.status().to_string();
  EXPECT_EQ(seen, (std::vector<std::string>{"aa\n", "bb\n", "cc\n", "dd\n"}));
  EXPECT_EQ(stats->total_bytes, 12u);
  EXPECT_EQ(stats->chunks.size(), 4u);
}

TEST(IngestPipeline, ReassemblesExactInput) {
  wload::TextCorpusConfig cfg;
  cfg.total_bytes = 200 * 1024;
  const std::string text = wload::generate_text(cfg);
  SingleDeviceSource src(mem(text), std::make_shared<LineFormat>(), 7777);
  IngestPipeline pipeline(src);
  std::string rebuilt;
  auto stats = pipeline.run([&](IngestChunk& c) {
    rebuilt.append(c.data.data(), c.data.size());
    return Status::Ok();
  });
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(rebuilt, text);
}

TEST(IngestPipeline, EmptyInputRunsZeroChunks) {
  SingleDeviceSource src(mem(""), std::make_shared<LineFormat>(), 4);
  IngestPipeline pipeline(src);
  int calls = 0;
  auto stats = pipeline.run([&](IngestChunk&) {
    ++calls;
    return Status::Ok();
  });
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(calls, 0);
  EXPECT_EQ(stats->total_s, 0.0);
}

TEST(IngestPipeline, IngestOverlapsProcessing) {
  // With a slow consumer, ingest of chunk i+1 happens during processing of
  // chunk i, so consumer wait is concentrated in the first chunk.
  std::string data;
  for (int i = 0; i < 8; ++i) data += std::string(1000, 'a') + "\n";
  SingleDeviceSource src(mem(data), std::make_shared<LineFormat>(), 1001);
  IngestPipeline pipeline(src);
  auto stats = pipeline.run([&](IngestChunk&) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    return Status::Ok();
  });
  ASSERT_TRUE(stats.ok());
  ASSERT_EQ(stats->chunks.size(), 8u);
  // All chunks after the first should be ready with (almost) no wait.
  double later_wait = 0;
  for (std::size_t i = 1; i < stats->chunks.size(); ++i)
    later_wait += stats->chunks[i].wait_s;
  EXPECT_LT(later_wait, 0.02);
  EXPECT_GE(stats->process_busy_s, 0.08);
}

TEST(IngestPipeline, ProducerErrorSurfacesAfterDrain) {
  // Plan on the clean device (planning probes are fail-fast and would trip
  // the poisoned range), then run the planned extents over a faulted stack
  // whose second chunk's data read hits the range.
  auto clean = std::make_shared<MemDevice>(
      std::string(100, 'x') + "\n" + std::string(100, 'y') + "\n");
  SingleDeviceSource planner(clean, std::make_shared<LineFormat>(), 100);
  auto plan = planner.plan();
  ASSERT_TRUE(plan.ok());
  auto fault_plan = fault::FaultPlan::parse("permanent=150-160");
  ASSERT_TRUE(fault_plan.ok());
  auto faulted =
      std::make_shared<storage::FaultDevice>(clean, *fault_plan);
  SingleDeviceSource src(faulted, std::make_shared<LineFormat>(), 100);
  IngestPipeline pipeline(src);
  int processed = 0;
  auto stats = pipeline.run_planned(*plan, [&](IngestChunk&) {
    ++processed;
    return Status::Ok();
  });
  EXPECT_FALSE(stats.ok());
  EXPECT_EQ(stats.status().code(), StatusCode::kIoError);
  EXPECT_EQ(processed, 1);  // first chunk was fine and got processed
}

TEST(IngestPipeline, ConsumerErrorCancelsProducer) {
  std::string data;
  for (int i = 0; i < 100; ++i) data += std::string(100, 'z') + "\n";
  SingleDeviceSource src(mem(data), std::make_shared<LineFormat>(), 101);
  IngestPipeline pipeline(src);
  int calls = 0;
  auto stats = pipeline.run([&](IngestChunk&) {
    if (++calls == 3) return Status::Internal("app exploded");
    return Status::Ok();
  });
  EXPECT_FALSE(stats.ok());
  EXPECT_EQ(stats.status().code(), StatusCode::kInternal);
  EXPECT_EQ(calls, 3);
}

TEST(IngestPipeline, ChunkLargerThanInputYieldsOneChunk) {
  SingleDeviceSource src(mem("tiny\n"), std::make_shared<LineFormat>(),
                         1 << 30);
  IngestPipeline pipeline(src);
  int calls = 0;
  auto stats = pipeline.run([&](IngestChunk& c) {
    ++calls;
    EXPECT_EQ(c.data.size(), 5u);
    return Status::Ok();
  });
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(calls, 1);
}

TEST(IngestPipeline, RecordLargerThanChunkStillWorks) {
  // One 10 KB record with a 16-byte chunk target: boundary adjustment grows
  // the chunk to the record end.
  std::string data = std::string(10000, 'r') + "\n" + "tail\n";
  SingleDeviceSource src(mem(data), std::make_shared<LineFormat>(), 16);
  IngestPipeline pipeline(src);
  std::vector<std::size_t> sizes;
  auto stats = pipeline.run([&](IngestChunk& c) {
    sizes.push_back(c.data.size());
    return Status::Ok();
  });
  ASSERT_TRUE(stats.ok());
  ASSERT_EQ(sizes.size(), 2u);
  EXPECT_EQ(sizes[0], 10001u);
  EXPECT_EQ(sizes[1], 5u);
}

TEST(IngestPipeline, MultiFileChunksCarryFileSpans) {
  std::vector<std::shared_ptr<const storage::Device>> files;
  for (int i = 0; i < 6; ++i)
    files.push_back(mem("file" + std::to_string(i) + "\n"));
  MultiFileSource src(files, 2);
  IngestPipeline pipeline(src);
  std::size_t chunks = 0, spans = 0;
  auto stats = pipeline.run([&](IngestChunk& c) {
    ++chunks;
    spans += c.files.size();
    return Status::Ok();
  });
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(chunks, 3u);
  EXPECT_EQ(spans, 6u);
}


// Property: CRLF-terminated random layouts plan at record boundaries too
// (the TeraSort format, with \r bytes also allowed INSIDE records).
class CrlfPlanProperty : public ::testing::TestWithParam<int> {};

TEST_P(CrlfPlanProperty, CoversInputAtCrlfBoundaries) {
  Xoshiro256 rng(GetParam() * 37);
  std::string data;
  std::vector<std::uint64_t> record_ends;
  const int records = 30 + int(rng.uniform(80));
  for (int r = 0; r < records; ++r) {
    const std::size_t len = 1 + rng.uniform(40);
    for (std::size_t i = 0; i < len; ++i) {
      // Payload may contain lone \r and \n bytes; only "\r\n" terminates.
      const int c = int(rng.uniform(30));
      if (c == 0) data.push_back('\r');
      else if (c == 1) data.push_back('\n');
      else data.push_back(static_cast<char>('a' + c % 26));
    }
    // Avoid an accidental \r directly before the terminator creating an
    // earlier boundary than intended — that is still a VALID boundary for
    // the format, so only the coverage property is asserted, not exact ends.
    data += "\r\n";
    record_ends.push_back(data.size());
  }
  const std::uint64_t chunk_target = 16 + rng.uniform(200);
  SingleDeviceSource src(mem(data), std::make_shared<CrlfFormat>(),
                         chunk_target);
  auto plan = src.plan();
  ASSERT_TRUE(plan.ok());
  std::uint64_t expected_offset = 0;
  for (const auto& e : *plan) {
    EXPECT_EQ(e.offset, expected_offset);
    EXPECT_GT(e.length, 0u);
    expected_offset += e.length;
    // Every chunk ends right after some "\r\n" pair.
    const std::uint64_t end = e.offset + e.length;
    ASSERT_GE(end, 2u);
    EXPECT_EQ(data[end - 2], '\r');
    EXPECT_EQ(data[end - 1], '\n');
  }
  EXPECT_EQ(expected_offset, data.size());
}

INSTANTIATE_TEST_SUITE_P(Seeds, CrlfPlanProperty, ::testing::Range(1, 9));

// Fixed-width plans are pure arithmetic: equal chunks of whole records.
TEST(FixedFormatPlan, WholeRecordChunks) {
  const std::uint64_t rb = 64;
  auto dev = mem(std::string(rb * 100, 'x'));
  SingleDeviceSource src(dev, std::make_shared<FixedFormat>(rb), 1000);
  auto plan = src.plan();
  ASSERT_TRUE(plan.ok());
  for (const auto& e : *plan) {
    EXPECT_EQ(e.offset % rb, 0u);
    EXPECT_EQ(e.length % rb, 0u);
  }
}

}  // namespace
}  // namespace supmr::ingest
