// Property/stress tests for the discrete-event substrate: conservation laws
// and scheduling invariants under randomized workloads.
#include <gtest/gtest.h>

#include <numeric>

#include "common/rng.hpp"
#include "sim/engine.hpp"
#include "sim/machine.hpp"
#include "sim/resource.hpp"
#include "sim/tracer.hpp"

namespace supmr::sim {
namespace {

// Conservation: total service delivered equals total demand submitted, for
// random arrival patterns on a processor-sharing resource.
class PsConservation : public ::testing::TestWithParam<int> {};

TEST_P(PsConservation, DeliveredEqualsDemand) {
  Xoshiro256 rng(GetParam());
  Engine engine;
  const double capacity = 1.0 + double(rng.uniform(32));
  const double cap = rng.uniform(2) ? 1.0 : capacity;
  PsResource res(engine, "r", capacity, cap);

  double total_demand = 0.0;
  int completions = 0;
  const int jobs = 50 + int(rng.uniform(200));
  for (int j = 0; j < jobs; ++j) {
    const double at = rng.uniform_double() * 100.0;
    const double demand = rng.uniform_double() * 20.0 + 1e-6;
    const Category cat = rng.uniform(2) ? Category::kUser : Category::kSys;
    total_demand += demand;
    engine.schedule_at(at, [&res, demand, cat, &completions] {
      res.submit(demand, cat, [&completions] { ++completions; });
    });
  }
  engine.run();
  EXPECT_EQ(completions, jobs);
  EXPECT_NEAR(res.delivered_total(), total_demand,
              total_demand * 1e-9 + 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PsConservation, ::testing::Range(1, 13));

// The aggregate service rate never exceeds capacity, and per-job rate never
// exceeds the per-job cap (verified through the recorded timeline).
TEST(PsInvariants, RateNeverExceedsCapacity) {
  Xoshiro256 rng(99);
  Engine engine;
  PsResource res(engine, "cpu", 8.0, 1.0);
  for (int j = 0; j < 300; ++j) {
    const double at = rng.uniform_double() * 50.0;
    const double demand = rng.uniform_double() * 5.0 + 0.01;
    engine.schedule_at(at, [&res, demand] {
      res.submit(demand, Category::kUser, nullptr);
    });
  }
  engine.run();
  const auto& tl = res.timeline();
  for (std::size_t i = 0; i < tl.times.size(); ++i) {
    double total = 0.0;
    for (int c = 0; c < kNumCategories; ++c)
      total += tl.rates[i * kNumCategories + c];
    EXPECT_LE(total, 8.0 + 1e-9);
  }
}

// Completion ordering: on a FIFO-free PS resource, a strictly smaller job
// submitted at the same instant finishes no later than a bigger one.
TEST(PsInvariants, SmallerJobFinishesFirst) {
  Engine engine;
  PsResource res(engine, "r", 2.0, 1.0);
  double t_small = -1, t_big = -1;
  res.submit(1.0, Category::kUser, [&] { t_small = engine.now(); });
  res.submit(5.0, Category::kUser, [&] { t_big = engine.now(); });
  engine.run();
  EXPECT_LE(t_small, t_big);
  EXPECT_NEAR(t_small, 1.0, 1e-9);  // both run at rate 1 on 2 contexts
  EXPECT_NEAR(t_big, 5.0, 1e-9);
}

// Machine-level conservation: across random multi-stage threads, every
// thread exits exactly once and CPU/IO deliveries match demands.
class MachineStress : public ::testing::TestWithParam<int> {};

TEST_P(MachineStress, AllThreadsExitOnce) {
  Xoshiro256 rng(GetParam() * 7919);
  Engine engine;
  Machine machine(engine, MachineConfig{int(1 + rng.uniform(16)), 0.0001,
                                        0.0001});
  PsResource disk(engine, "disk", 100.0, 100.0);
  machine.attach_device(&disk);

  int exits = 0;
  double cpu_demand = 0.0, io_demand = 0.0;
  const int threads = 100 + int(rng.uniform(100));
  for (int t = 0; t < threads; ++t) {
    std::vector<Stage> stages;
    const int n_stages = 1 + int(rng.uniform(4));
    for (int s = 0; s < n_stages; ++s) {
      if (rng.uniform(2)) {
        const double d = rng.uniform_double() * 2.0 + 1e-3;
        cpu_demand += d;
        stages.push_back(Stage::compute(
            d, rng.uniform(2) ? Category::kUser : Category::kSys));
      } else {
        const double b = rng.uniform_double() * 50.0 + 1.0;
        io_demand += b;
        stages.push_back(Stage::io(&disk, b));
      }
    }
    const double at = rng.uniform_double() * 10.0;
    engine.schedule_at(at, [&machine, stages, &exits] {
      machine.spawn_thread(stages, [&exits] { ++exits; });
    });
  }
  engine.run();
  EXPECT_EQ(exits, threads);
  EXPECT_NEAR(disk.delivered_total(), io_demand, io_demand * 1e-9 + 1e-6);
  // CPU also served the spawn/join overheads.
  const double overhead = threads * (0.0001 + 0.0001);
  EXPECT_NEAR(machine.cpu().delivered_total(), cpu_demand + overhead,
              (cpu_demand + overhead) * 1e-9 + 1e-6);
  // Blocked counter returned to zero.
  EXPECT_NEAR(machine.blocked_timeline().counts.back(), 0, 0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, MachineStress, ::testing::Range(1, 9));

// The tracer's user+sys utilization integrated over the run matches the
// CPU's delivered work (percent * contexts * seconds == cpu-seconds).
TEST(TracerConservation, IntegralMatchesDelivered) {
  Engine engine;
  Machine machine(engine, MachineConfig{4, 0.0, 0.0});
  Xoshiro256 rng(5);
  for (int t = 0; t < 50; ++t) {
    const double at = rng.uniform_double() * 5.0;
    const double d = rng.uniform_double() + 0.1;
    engine.schedule_at(at, [&machine, d] {
      machine.spawn_thread({Stage::compute(d)}, nullptr);
    });
  }
  const double end = engine.run();
  const TimeSeries trace =
      trace_utilization(machine, 0.0, end, TracerOptions{0.05});
  double integral = 0.0;  // cpu-seconds from the trace
  for (std::size_t i = 0; i < trace.samples(); ++i) {
    const double dt = std::min(0.05, end - trace.time(i));
    integral += (trace.value(i, 0) + trace.value(i, 1)) / 100.0 * 4.0 * dt;
  }
  EXPECT_NEAR(integral, machine.cpu().delivered_total(),
              machine.cpu().delivered_total() * 0.02);
}

}  // namespace
}  // namespace supmr::sim
