// Tests for the CLI flag parser.
#include <gtest/gtest.h>

#include "tools/flags.hpp"

namespace supmr::tools {
namespace {

Flags parse_ok(std::vector<std::string> args,
               const std::set<std::string>& known) {
  std::vector<char*> argv;
  for (auto& a : args) argv.push_back(a.data());
  auto flags = Flags::parse(int(argv.size()), argv.data(), known);
  EXPECT_TRUE(flags.ok()) << flags.status().to_string();
  return std::move(flags).value();
}

TEST(Flags, PositionalAndNamed) {
  Flags f = parse_ok({"input.txt", "--chunk=64MB", "--verbose", "more.txt"},
                     {"chunk", "verbose"});
  EXPECT_EQ(f.positional(),
            (std::vector<std::string>{"input.txt", "more.txt"}));
  EXPECT_EQ(f.get_or("chunk", ""), "64MB");
  EXPECT_TRUE(f.get_bool("verbose"));
  EXPECT_FALSE(f.get_bool("missing"));
}

TEST(Flags, UnknownFlagRejected) {
  std::vector<std::string> args = {"--tpyo=1"};
  std::vector<char*> argv{args[0].data()};
  auto flags = Flags::parse(1, argv.data(), {"typo"});
  EXPECT_FALSE(flags.ok());
  EXPECT_EQ(flags.status().code(), StatusCode::kInvalidArgument);
}

TEST(Flags, SizeParsing) {
  Flags f = parse_ok({"--chunk=1GB"}, {"chunk"});
  auto size = f.get_size("chunk", 0);
  ASSERT_TRUE(size.ok());
  EXPECT_EQ(*size, kGB);
  EXPECT_EQ(*f.get_size("absent", 42), 42u);
}

TEST(Flags, SizeParsingRejectsGarbage) {
  Flags f = parse_ok({"--chunk=banana"}, {"chunk"});
  EXPECT_FALSE(f.get_size("chunk", 0).ok());
}

TEST(Flags, IntAndDouble) {
  Flags f = parse_ok({"--threads=8", "--rate=1.5"}, {"threads", "rate"});
  EXPECT_EQ(*f.get_int("threads", 0), 8u);
  EXPECT_DOUBLE_EQ(*f.get_double("rate", 0.0), 1.5);
  EXPECT_FALSE(f.get_int("rate", 0).ok());  // "1.5" is not an integer
}

TEST(Flags, BooleanForms) {
  Flags f = parse_ok({"--a", "--b=false", "--c=0", "--d=yes"},
                     {"a", "b", "c", "d"});
  EXPECT_TRUE(f.get_bool("a"));
  EXPECT_FALSE(f.get_bool("b"));
  EXPECT_FALSE(f.get_bool("c"));
  EXPECT_TRUE(f.get_bool("d"));
}

TEST(Flags, EmptyArgs) {
  auto flags = Flags::parse(0, nullptr, {});
  ASSERT_TRUE(flags.ok());
  EXPECT_TRUE(flags->positional().empty());
}

}  // namespace
}  // namespace supmr::tools
