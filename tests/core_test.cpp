// Core runtime tests: job lifecycle, phase accounting, pipeline integration,
// configuration validation, persistence requirement, /proc sampler.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <mutex>

#include "apps/word_count.hpp"
#include "core/job.hpp"
#include "core/proc_sampler.hpp"
#include "ingest/record_format.hpp"
#include "ingest/source.hpp"
#include "storage/fault_device.hpp"
#include "storage/mem_device.hpp"
#include "storage/rate_limiter.hpp"
#include "storage/throttled_device.hpp"
#include "wload/text_corpus.hpp"

namespace supmr::core {
namespace {

using apps::WordCountApp;
using ingest::LineFormat;
using ingest::SingleDeviceSource;
using storage::MemDevice;

std::shared_ptr<const storage::Device> mem(std::string s) {
  return std::make_shared<MemDevice>(std::move(s), "mem");
}

JobConfig cfg(std::size_t mappers = 4) {
  JobConfig c;
  c.num_map_threads = mappers;
  c.num_reduce_threads = 2;
  return c;
}

// A minimal application that records its lifecycle for protocol tests.
class ProbeApp : public Application {
 public:
  void init(std::size_t mappers) override {
    ++inits_;
    mappers_ = mappers;
  }
  Status prepare_round(const ingest::IngestChunk& chunk) override {
    ++rounds_;
    chunk_sizes_.push_back(chunk.data.size());
    tasks_this_round_ = std::min<std::size_t>(mappers_, 2);
    return Status::Ok();
  }
  std::size_t round_tasks() const override { return tasks_this_round_; }
  void map_task(std::size_t, std::size_t) override { ++map_tasks_; }
  Status reduce(ThreadPool&, std::size_t) override {
    ++reduces_;
    return Status::Ok();
  }
  Status merge(ThreadPool&, const MergePlan&, merge::MergeStats*) override {
    ++merges_;
    return Status::Ok();
  }
  std::uint64_t result_count() const override { return 0; }

  int inits_ = 0, reduces_ = 0, merges_ = 0;
  std::atomic<int> map_tasks_{0};
  int rounds_ = 0;
  std::size_t mappers_ = 0, tasks_this_round_ = 0;
  std::vector<std::size_t> chunk_sizes_;
};

TEST(MapReduceJob, LifecycleOriginalRuntime) {
  ProbeApp app;
  SingleDeviceSource src(mem("aa\nbb\ncc\n"),
                         std::make_shared<LineFormat>(), 0);
  MapReduceJob job(app, src, cfg());
  auto result = job.run(ExecMode::kOriginal);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(app.inits_, 1);
  EXPECT_EQ(app.rounds_, 1);  // whole input = one round
  EXPECT_EQ(app.map_tasks_.load(), 2);
  EXPECT_EQ(app.reduces_, 1);
  EXPECT_EQ(app.merges_, 1);
  EXPECT_EQ(result->map_rounds, 1u);
  // num_chunks is the plan's real extent count in every mode (here one
  // whole-input chunk); `chunked` carries the presentation.
  EXPECT_EQ(result->phases.num_chunks, 1u);
  EXPECT_EQ(result->chunks, 1u);
  EXPECT_FALSE(result->phases.chunked);
  EXPECT_FALSE(result->phases.has_combined_readmap);
}

TEST(MapReduceJob, LifecycleIngestMR) {
  ProbeApp app;
  SingleDeviceSource src(mem("aa\nbb\ncc\ndd\n"),
                         std::make_shared<LineFormat>(), 3);
  MapReduceJob job(app, src, cfg());
  auto result = job.run(ExecMode::kIngestMR);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(app.inits_, 1);  // persistent container: init once
  EXPECT_EQ(app.rounds_, 4);
  EXPECT_EQ(app.reduces_, 1);
  EXPECT_EQ(app.merges_, 1);
  EXPECT_EQ(result->map_rounds, 4u);
  EXPECT_EQ(result->phases.num_chunks, 4u);
  EXPECT_TRUE(result->phases.has_combined_readmap);
  EXPECT_EQ(result->pipeline.chunks.size(), 4u);
  EXPECT_EQ(result->pipeline.total_bytes, 12u);
}

TEST(MapReduceJob, PhaseTimesArePopulated) {
  wload::TextCorpusConfig tc;
  tc.total_bytes = 256 * 1024;
  WordCountApp app;
  SingleDeviceSource src(mem(wload::generate_text(tc)),
                         std::make_shared<LineFormat>(), 32 * 1024);
  MapReduceJob job(app, src, cfg());
  auto result = job.run(ExecMode::kIngestMR);
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result->phases.total_s, 0.0);
  EXPECT_GT(result->phases.readmap_s, 0.0);
  EXPECT_GE(result->phases.reduce_s, 0.0);
  EXPECT_GE(result->phases.merge_s, 0.0);
  // The combined phase can't exceed the total.
  EXPECT_LE(result->phases.readmap_s, result->phases.total_s + 1e-9);
}

// Regression: rounds with more tasks than mapper threads used to hard-fail
// with FailedPrecondition. They now run as successive waves of
// `num_map_threads`; every task runs exactly once and every thread_id stays
// inside the init() mapper count (the per-thread-stripe safety contract).
TEST(MapReduceJob, OversubscribedRoundRunsInWaves) {
  class OverSubscribingApp final : public ProbeApp {
   public:
    Status prepare_round(const ingest::IngestChunk& chunk) override {
      ProbeApp::prepare_round(chunk);
      tasks_this_round_ = 7;  // 2 mappers -> 4 waves
      return Status::Ok();
    }
    void map_task(std::size_t task, std::size_t thread_id) override {
      ProbeApp::map_task(task, thread_id);
      std::lock_guard<std::mutex> lock(mu_);
      tasks_seen_.push_back(task);
      max_thread_id_ = std::max(max_thread_id_, thread_id);
    }
    std::mutex mu_;
    std::vector<std::size_t> tasks_seen_;
    std::size_t max_thread_id_ = 0;
  };
  OverSubscribingApp app;
  SingleDeviceSource src(mem("x\n"), std::make_shared<LineFormat>(), 0);
  MapReduceJob job(app, src, cfg(/*mappers=*/2));
  auto result = job.run(ExecMode::kOriginal);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(app.map_tasks_.load(), 7);
  EXPECT_LT(app.max_thread_id_, 2u);  // never outside the mapper count
  std::sort(app.tasks_seen_.begin(), app.tasks_seen_.end());
  for (std::size_t i = 0; i < app.tasks_seen_.size(); ++i) {
    EXPECT_EQ(app.tasks_seen_[i], i);  // each task index exactly once
  }
}

TEST(MapReduceJob, PrepareRoundErrorAborts) {
  class FailingApp final : public ProbeApp {
   public:
    Status prepare_round(const ingest::IngestChunk& chunk) override {
      ProbeApp::prepare_round(chunk);
      if (rounds_ == 2) return Status::Internal("round 2 failed");
      return Status::Ok();
    }
  };
  FailingApp app;
  SingleDeviceSource src(mem("aa\nbb\ncc\n"),
                         std::make_shared<LineFormat>(), 3);
  MapReduceJob job(app, src, cfg());
  auto result = job.run(ExecMode::kIngestMR);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInternal);
  EXPECT_EQ(app.merges_, 0);  // never reached merge
}

TEST(MapReduceJob, IngestIoErrorPropagates) {
  MemDevice base("aaaa\nbbbb\ncccc\n");
  // Count planning reads on a clean probe stack; plans are deterministic in
  // the bytes, so the faulted run below replans with the same read count and
  // its first data read lands on call index `planning_calls`.
  storage::FaultDevice probe(&base);
  auto probe_dev = std::shared_ptr<const storage::Device>(
      &probe, [](const storage::Device*) {});
  SingleDeviceSource probe_src(probe_dev, std::make_shared<LineFormat>(), 5);
  ASSERT_TRUE(probe_src.plan().ok());
  const std::uint64_t planning_calls = probe.calls();

  fault::FaultPlan fplan;
  fplan.fail_calls.push_back(planning_calls);
  storage::FaultDevice fault(&base, fplan);
  auto dev = std::shared_ptr<const storage::Device>(
      &fault, [](const storage::Device*) {});
  SingleDeviceSource src(dev, std::make_shared<LineFormat>(), 5);
  WordCountApp app;
  MapReduceJob job(app, src, cfg());
  auto result = job.run(ExecMode::kIngestMR);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kIoError);
}

TEST(MapReduceJob, UnpooledWavesProduceSameResult) {
  wload::TextCorpusConfig tc;
  tc.total_bytes = 32 * 1024;
  const std::string text = wload::generate_text(tc);
  WordCountApp pooled, unpooled;
  JobConfig unpooled_cfg = cfg();
  unpooled_cfg.unpooled_map_waves = true;
  SingleDeviceSource src_a(mem(text), std::make_shared<LineFormat>(), 4096);
  SingleDeviceSource src_b(mem(text), std::make_shared<LineFormat>(), 4096);
  MapReduceJob ja(pooled, src_a, cfg());
  MapReduceJob jb(unpooled, src_b, unpooled_cfg);
  ASSERT_TRUE(ja.run(ExecMode::kIngestMR).ok());
  ASSERT_TRUE(jb.run(ExecMode::kIngestMR).ok());
  EXPECT_EQ(pooled.results(), unpooled.results());
}

TEST(MapReduceJob, ThrottledDeviceShowsIngestBoundPipeline) {
  // With ingest massively slower than map, the combined read+map phase is
  // dominated by consumer starvation (read_s), not map compute — the paper's
  // word-count regime.
  const std::string text(200 * 1024, 'a');  // trivially tokenized
  auto base = std::make_shared<MemDevice>(text + "\n", "slow");
  auto limiter = std::make_shared<storage::RateLimiter>(2.0e6);  // 2 MB/s
  auto dev = std::make_shared<storage::ThrottledDevice>(base, limiter);
  WordCountApp app;
  SingleDeviceSource src(dev, std::make_shared<LineFormat>(), 32 * 1024);
  MapReduceJob job(app, src, cfg(2));
  auto result = job.run(ExecMode::kIngestMR);
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result->phases.readmap_s, 0.05);
  EXPECT_GT(result->phases.read_s, result->phases.map_s);
}

TEST(JobConfig, ReducePartitionsDefault) {
  JobConfig c;
  c.num_reduce_threads = 3;
  EXPECT_EQ(c.reduce_partitions(), 12u);
  c.num_reduce_partitions = 5;
  EXPECT_EQ(c.reduce_partitions(), 5u);
}

TEST(ProcStatSampler, CollectsSamplesWhenAvailable) {
  if (!ProcStatSampler::available()) {
    GTEST_SKIP() << "/proc/stat not readable";
  }
  ProcStatSampler sampler(0.02);
  sampler.start();
  // Generate some load so user% is nonzero.
  volatile double sink = 0;
  const auto t0 = std::chrono::steady_clock::now();
  while (std::chrono::steady_clock::now() - t0 <
         std::chrono::milliseconds(150)) {
    sink += 1.0;
  }
  TimeSeries trace = sampler.stop();
  EXPECT_GE(trace.samples(), 3u);
  for (std::size_t i = 0; i < trace.samples(); ++i) {
    EXPECT_LE(trace.row_sum(i), 100.0 + 1e-6);
    for (std::size_t c = 0; c < trace.channels(); ++c)
      EXPECT_GE(trace.value(i, c), 0.0);
  }
}

}  // namespace
}  // namespace supmr::core
