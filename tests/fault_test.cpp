// Fault layer tests: RetryPolicy/RetrySession arithmetic, the FaultPlan
// grammar, plan-driven FaultDevice injection (and the call/range accounting
// contract), the RetryingDevice read seam, chunk-level pipeline recovery,
// degrade-mode accounting, the unified MapReduceJob::run(ExecMode) entry
// point, and the new report fields.
#include <gtest/gtest.h>

#include <chrono>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "apps/word_count.hpp"
#include "core/job.hpp"
#include "core/report.hpp"
#include "fault/fault_plan.hpp"
#include "fault/retry_policy.hpp"
#include "fault/retrying_device.hpp"
#include "ingest/pipeline.hpp"
#include "ingest/record_format.hpp"
#include "ingest/source.hpp"
#include "json_validator.hpp"
#include "merge/external_sorter.hpp"
#include "obs/metrics.hpp"
#include "storage/fault_device.hpp"
#include "storage/file_device.hpp"
#include "storage/mem_device.hpp"
#include "threading/thread_pool.hpp"

namespace supmr {
namespace {

using fault::FaultPlan;
using fault::RetryPolicy;
using fault::RetrySession;
using fault::RetryingDevice;
using storage::FaultDevice;
using storage::MemDevice;

// A policy with near-zero waits so retry tests stay fast.
RetryPolicy fast_policy(std::uint32_t attempts) {
  RetryPolicy p;
  p.max_attempts = attempts;
  p.backoff_base_s = 1e-5;
  p.backoff_max_s = 1e-4;
  p.jitter = 0.0;
  return p;
}

// ------------------------------------------------------- RetryPolicy

TEST(RetryPolicy, DefaultIsFailFast) {
  RetryPolicy p;
  EXPECT_FALSE(p.enabled());
  RetrySession session(p, 0);
  EXPECT_FALSE(session.next_backoff(Status::IoError("x")).has_value());
  EXPECT_EQ(session.failed_attempts(), 1u);
}

TEST(RetrySession, BackoffGrowsExponentiallyAndCaps) {
  RetryPolicy p;
  p.max_attempts = 5;  // 5 total attempts -> 4 backoff waits
  p.backoff_base_s = 0.001;
  p.backoff_mult = 2.0;
  p.backoff_max_s = 0.004;
  p.jitter = 0.0;
  RetrySession session(p, 0);
  const Status failure = Status::IoError("x");
  EXPECT_DOUBLE_EQ(*session.next_backoff(failure), 0.001);
  EXPECT_DOUBLE_EQ(*session.next_backoff(failure), 0.002);
  EXPECT_DOUBLE_EQ(*session.next_backoff(failure), 0.004);
  EXPECT_DOUBLE_EQ(*session.next_backoff(failure), 0.004);  // capped
  EXPECT_FALSE(session.next_backoff(failure).has_value());  // exhausted
}

TEST(RetrySession, JitterStaysInBoundsAndReplaysFromSeed) {
  RetryPolicy p;
  p.max_attempts = 50;
  p.backoff_base_s = 0.010;
  p.backoff_mult = 1.0;
  p.jitter = 0.5;
  p.seed = 1234;
  RetrySession a(p, 7);
  RetrySession b(p, 7);  // same policy + stream -> identical waits
  RetrySession c(p, 8);  // different stream -> decorrelated
  const Status failure = Status::IoError("x");
  bool any_differs_from_c = false;
  for (int i = 0; i < 20; ++i) {
    const double wa = *a.next_backoff(failure);
    const double wb = *b.next_backoff(failure);
    const double wc = *c.next_backoff(failure);
    EXPECT_DOUBLE_EQ(wa, wb);
    EXPECT_GE(wa, 0.005 - 1e-12);
    EXPECT_LE(wa, 0.010 + 1e-12);
    if (wa != wc) any_differs_from_c = true;
  }
  EXPECT_TRUE(any_differs_from_c);
}

TEST(RetrySession, NonRetryableFailsImmediately) {
  RetrySession session(fast_policy(10), 0);
  EXPECT_FALSE(
      session.next_backoff(Status::InvalidArgument("bad")).has_value());
  EXPECT_EQ(session.failed_attempts(), 1u);
}

TEST(RetrySession, DeadlineBlocksLongWait) {
  RetryPolicy p;
  p.max_attempts = 100;
  p.backoff_base_s = 0.200;  // first wait alone exceeds the deadline
  p.jitter = 0.0;
  p.read_deadline_s = 0.050;
  RetrySession session(p, 0);
  EXPECT_FALSE(session.next_backoff(Status::IoError("x")).has_value());
  EXPECT_TRUE(session.deadline_expired());
  const Status annotated = session.annotate(Status::IoError("x"));
  EXPECT_NE(annotated.message().find("deadline"), std::string::npos);
}

TEST(RetrySession, AnnotateReportsAttemptCount) {
  RetrySession session(fast_policy(3), 0);
  const Status failure = Status::IoError("disk went away");
  EXPECT_TRUE(session.next_backoff(failure).has_value());
  EXPECT_TRUE(session.next_backoff(failure).has_value());
  EXPECT_FALSE(session.next_backoff(failure).has_value());
  const Status annotated = session.annotate(failure);
  EXPECT_EQ(annotated.code(), StatusCode::kIoError);
  EXPECT_NE(annotated.message().find("disk went away"), std::string::npos);
  EXPECT_NE(annotated.message().find("3 attempt(s)"), std::string::npos);
}

// ---------------------------------------------------- duration grammar

TEST(ParseDuration, AcceptsUnitsAndBareSeconds) {
  EXPECT_DOUBLE_EQ(*fault::parse_duration("5ms"), 0.005);
  EXPECT_DOUBLE_EQ(*fault::parse_duration("250us"), 0.000250);
  EXPECT_DOUBLE_EQ(*fault::parse_duration("1.5s"), 1.5);
  EXPECT_DOUBLE_EQ(*fault::parse_duration("2"), 2.0);
}

TEST(ParseDuration, RejectsGarbageAndNegatives) {
  EXPECT_FALSE(fault::parse_duration("fast").ok());
  EXPECT_FALSE(fault::parse_duration("-1s").ok());
  EXPECT_FALSE(fault::parse_duration("").ok());
}

// ------------------------------------------------------ FaultPlan

TEST(FaultPlan, ParsesFullSpec) {
  auto plan = FaultPlan::parse(
      "seed=7;transient=0.05@12;permanent=10-20,30-40;slow=0.01:5ms");
  ASSERT_TRUE(plan.ok()) << plan.status().to_string();
  EXPECT_EQ(plan->seed, 7u);
  EXPECT_DOUBLE_EQ(plan->transient_p, 0.05);
  EXPECT_EQ(plan->transient_after, 12u);
  ASSERT_EQ(plan->permanent.size(), 2u);
  EXPECT_EQ(plan->permanent[0], (std::pair<std::uint64_t, std::uint64_t>{
                                    10, 20}));
  EXPECT_DOUBLE_EQ(plan->slow_p, 0.01);
  EXPECT_DOUBLE_EQ(plan->slow_delay_s, 0.005);
  EXPECT_FALSE(plan->empty());
}

TEST(FaultPlan, RoundTripsThroughToString) {
  auto plan = FaultPlan::parse(
      "seed=99;transient=0.5;permanent=0-4096;slow=0.25:10ms");
  ASSERT_TRUE(plan.ok());
  auto again = FaultPlan::parse(plan->to_string());
  ASSERT_TRUE(again.ok()) << again.status().to_string()
                          << " spec=" << plan->to_string();
  EXPECT_EQ(again->seed, plan->seed);
  EXPECT_DOUBLE_EQ(again->transient_p, plan->transient_p);
  EXPECT_EQ(again->permanent, plan->permanent);
  EXPECT_DOUBLE_EQ(again->slow_delay_s, plan->slow_delay_s);
}

TEST(FaultPlan, RejectsBadSpecs) {
  EXPECT_FALSE(FaultPlan::parse("transientt=0.1").ok());   // typo'd clause
  EXPECT_FALSE(FaultPlan::parse("transient=1.5").ok());    // p > 1
  EXPECT_FALSE(FaultPlan::parse("permanent=20-10").ok());  // inverted range
  EXPECT_FALSE(FaultPlan::parse("slow=0.1").ok());         // missing delay
  EXPECT_FALSE(FaultPlan::parse("fail_call=x").ok());      // not an index
}

TEST(FaultPlan, FailCallListParsesAndRoundTrips) {
  auto plan = FaultPlan::parse("seed=3;fail_call=0,7,19");
  ASSERT_TRUE(plan.ok()) << plan.status().to_string();
  EXPECT_EQ(plan->fail_calls, (std::vector<std::uint64_t>{0, 7, 19}));
  EXPECT_FALSE(plan->empty());
  EXPECT_TRUE(plan->fails_call(7));
  EXPECT_FALSE(plan->fails_call(8));
  auto again = FaultPlan::parse(plan->to_string());
  ASSERT_TRUE(again.ok()) << plan->to_string();
  EXPECT_EQ(again->fail_calls, plan->fail_calls);
}

TEST(FaultPlan, PoisonsUsesHalfOpenOverlap) {
  FaultPlan plan;
  plan.permanent.emplace_back(50, 60);
  EXPECT_TRUE(plan.poisons(55, 10));
  EXPECT_TRUE(plan.poisons(45, 10));   // overlaps from below
  EXPECT_FALSE(plan.poisons(60, 10));  // hi is exclusive
  EXPECT_FALSE(plan.poisons(40, 10));  // lo is inclusive on the range
}

// ------------------------------------------------------ FaultDevice

TEST(FaultDevice, RangeHitsDoNotConsumeCallIndices) {
  MemDevice base(std::string(100, 'p'));
  FaultPlan plan;
  plan.permanent.emplace_back(0, 10);
  FaultDevice dev(&base, plan);
  char buf[10];
  EXPECT_FALSE(dev.read_at(0, std::span<char>(buf, 10)).ok());
  EXPECT_FALSE(dev.read_at(5, std::span<char>(buf, 10)).ok());
  EXPECT_EQ(dev.calls(), 0u);  // poisoned reads are accounted separately
  EXPECT_EQ(dev.range_hits(), 2u);
  EXPECT_TRUE(dev.read_at(10, std::span<char>(buf, 10)).ok());
  EXPECT_EQ(dev.calls(), 1u);
}

TEST(FaultDevice, CallFaultLandsOnSameCallWithRangesPresent) {
  // The accounting fix: adding a poisoned range must not shift which call a
  // call-indexed fault lands on.
  MemDevice base(std::string(100, 'p'));
  FaultPlan plan;
  plan.permanent.emplace_back(90, 100);
  plan.fail_calls.push_back(1);
  FaultDevice dev(&base, plan);
  char buf[10];
  EXPECT_FALSE(dev.read_at(95, std::span<char>(buf, 5)).ok());  // range hit
  EXPECT_TRUE(dev.read_at(0, std::span<char>(buf, 10)).ok());   // call 0
  EXPECT_FALSE(dev.read_at(10, std::span<char>(buf, 10)).ok()); // call 1
  EXPECT_TRUE(dev.read_at(20, std::span<char>(buf, 10)).ok());  // call 2
  EXPECT_EQ(dev.calls(), 3u);
  EXPECT_EQ(dev.range_hits(), 1u);
}

TEST(FaultDevice, SeededTransientsReplay) {
  const std::string data(4096, 'd');
  FaultPlan plan;
  plan.seed = 42;
  plan.transient_p = 0.5;
  std::vector<bool> first_run;
  for (int run = 0; run < 2; ++run) {
    MemDevice base(data);
    FaultDevice dev(&base, plan);
    std::vector<bool> outcomes;
    char buf[64];
    for (int i = 0; i < 64; ++i) {
      outcomes.push_back(dev.read_at(i * 64, std::span<char>(buf, 64)).ok());
    }
    if (run == 0) {
      first_run = outcomes;
      EXPECT_GT(dev.transients_injected(), 0u);
      EXPECT_LT(dev.transients_injected(), 64u);
    } else {
      EXPECT_EQ(outcomes, first_run);  // same seed, same order -> same faults
    }
  }
}

TEST(FaultDevice, TransientAfterGateSparesEarlyReads) {
  MemDevice base(std::string(4096, 'd'));
  FaultPlan plan;
  plan.transient_p = 1.0;
  plan.transient_after = 3;
  FaultDevice dev(&base, plan);
  char buf[16];
  for (int i = 0; i < 3; ++i) {
    EXPECT_TRUE(dev.read_at(i * 16, std::span<char>(buf, 16)).ok());
  }
  EXPECT_FALSE(dev.read_at(100, std::span<char>(buf, 16)).ok());
}

TEST(FaultDevice, SlowReadsCompleteWithData) {
  MemDevice base("hello world");
  FaultPlan plan;
  plan.slow_p = 1.0;
  plan.slow_delay_s = 0.001;
  FaultDevice dev(&base, plan);
  char buf[5];
  auto n = dev.read_at(0, std::span<char>(buf, 5));
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(std::string(buf, 5), "hello");
  EXPECT_EQ(dev.slow_injected(), 1u);
}

// ---------------------------------------------------- RetryingDevice

TEST(RetryingDevice, AbsorbsTransientFault) {
  MemDevice base("abcdefgh");
  FaultPlan plan;
  plan.fail_calls.push_back(0);  // first read fails once, the retry succeeds
  FaultDevice fault(&base, plan);
  RetryingDevice dev(&fault, fast_policy(3));
  char buf[8];
  auto n = dev.read_at(0, std::span<char>(buf, 8));
  ASSERT_TRUE(n.ok()) << n.status().to_string();
  EXPECT_EQ(std::string(buf, *n), "abcdefgh");
  EXPECT_EQ(dev.retries(), 1u);
  EXPECT_EQ(dev.exhausted(), 0u);
}

TEST(RetryingDevice, ExhaustsOnPermanentFaultAndAnnotates) {
  MemDevice base(std::string(64, 'x'));
  FaultPlan plan;
  plan.permanent.emplace_back(0, 64);
  FaultDevice fault(&base, plan);
  RetryingDevice dev(&fault, fast_policy(4));
  char buf[16];
  auto n = dev.read_at(0, std::span<char>(buf, 16));
  ASSERT_FALSE(n.ok());
  EXPECT_EQ(n.status().code(), StatusCode::kIoError);
  EXPECT_NE(n.status().message().find("[fault:"), std::string::npos);
  EXPECT_EQ(dev.retries(), 3u);  // 4 attempts = 3 retries
  EXPECT_EQ(dev.exhausted(), 1u);
}

TEST(RetryingDevice, FailFastPolicyLeavesStatusUntouched) {
  MemDevice base(std::string(64, 'x'));
  FaultPlan plan;
  plan.permanent.emplace_back(0, 64);
  FaultDevice fault(&base, plan);
  RetryingDevice dev(&fault, RetryPolicy{});  // default: fail fast
  char buf[16];
  auto n = dev.read_at(0, std::span<char>(buf, 16));
  ASSERT_FALSE(n.ok());
  EXPECT_EQ(n.status().message().find("[fault:"), std::string::npos);
  EXPECT_EQ(dev.retries(), 0u);
}

TEST(RetryingDevice, DeadlineBoundsPermanentFault) {
  MemDevice base(std::string(64, 'x'));
  FaultPlan plan;
  plan.permanent.emplace_back(0, 64);
  FaultDevice fault(&base, plan);
  RetryPolicy p;
  p.max_attempts = 1000;
  p.backoff_base_s = 0.200;
  p.jitter = 0.0;
  p.read_deadline_s = 0.050;
  RetryingDevice dev(&fault, p);
  char buf[16];
  const auto t0 = std::chrono::steady_clock::now();
  auto n = dev.read_at(0, std::span<char>(buf, 16));
  const double took =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  ASSERT_FALSE(n.ok());
  EXPECT_EQ(dev.deadline_expired(), 1u);
  EXPECT_LT(took, 1.0);  // gave up near the 50ms budget, not 1000 backoffs
  EXPECT_NE(n.status().message().find("deadline"), std::string::npos);
}

// ------------------------------------------- pipeline chunk recovery

std::shared_ptr<const storage::Device> borrow(const storage::Device* dev) {
  return std::shared_ptr<const storage::Device>(dev,
                                                [](const storage::Device*) {});
}

TEST(PipelineRecovery, TransientChunkReadRetriesAndSucceeds) {
  const std::string text(8 * 100, 'a');  // 8 fixed chunks of 100 bytes
  MemDevice base(text);
  // Count planning reads on a clean probe stack (plans are deterministic in
  // the bytes), then build the real device with a fail_call plan targeting a
  // mid-stream data read.
  FaultDevice probe(&base);
  ingest::SingleDeviceSource probe_src(
      borrow(&probe), std::make_shared<ingest::FixedFormat>(100), 100);
  auto plan = probe_src.plan();
  ASSERT_TRUE(plan.ok());
  const std::uint64_t planning_calls = probe.calls();
  FaultPlan fplan;
  fplan.fail_calls.push_back(planning_calls + 2);
  FaultDevice fault(&base, fplan);
  ingest::SingleDeviceSource src(
      borrow(&fault), std::make_shared<ingest::FixedFormat>(100), 100);

  fault::Recovery recovery;
  recovery.policy = fast_policy(3);
  ingest::IngestPipeline pipeline(src, recovery);
  std::uint64_t bytes = 0;
  auto stats = pipeline.run_planned(*plan, [&](ingest::IngestChunk& chunk) {
    bytes += chunk.data.size();
    return Status::Ok();
  });
  ASSERT_TRUE(stats.ok()) << stats.status().to_string();
  EXPECT_EQ(bytes, text.size());  // nothing lost
  EXPECT_EQ(stats->chunk_retries, 1u);
  EXPECT_EQ(stats->chunks_skipped, 0u);
  bool saw_retried_chunk = false;
  for (const auto& c : stats->chunks) {
    if (c.attempts > 1) saw_retried_chunk = true;
  }
  EXPECT_TRUE(saw_retried_chunk);
}

TEST(PipelineRecovery, PermanentFaultFailsJobCleanly) {
  const std::string text(8 * 100, 'a');
  MemDevice base(text);
  FaultPlan plan_spec;
  plan_spec.permanent.emplace_back(300, 400);  // chunk 3 is poisoned
  FaultDevice fault(&base, plan_spec);
  ingest::SingleDeviceSource src(
      borrow(&fault), std::make_shared<ingest::FixedFormat>(100), 100);
  auto plan = src.plan();
  ASSERT_TRUE(plan.ok());

  fault::Recovery recovery;
  recovery.policy = fast_policy(3);
  ingest::IngestPipeline pipeline(src, recovery);
  auto stats = pipeline.run_planned(
      *plan, [](ingest::IngestChunk&) { return Status::Ok(); });
  ASSERT_FALSE(stats.ok());
  EXPECT_EQ(stats.status().code(), StatusCode::kIoError);
  EXPECT_NE(stats.status().message().find("[fault:"), std::string::npos);
}

TEST(PipelineRecovery, DegradeModeSkipsPoisonedChunkWithAccounting) {
  const std::string text(8 * 100, 'a');
  MemDevice base(text);
  FaultPlan plan_spec;
  plan_spec.permanent.emplace_back(300, 400);
  FaultDevice fault(&base, plan_spec);
  ingest::SingleDeviceSource src(
      borrow(&fault), std::make_shared<ingest::FixedFormat>(100), 100);
  auto plan = src.plan();
  ASSERT_TRUE(plan.ok());
  ASSERT_EQ(plan->size(), 8u);

  fault::Recovery recovery;
  recovery.policy = fast_policy(2);
  recovery.degrade = true;
  ingest::IngestPipeline pipeline(src, recovery);
  std::uint64_t bytes = 0;
  auto stats = pipeline.run_planned(*plan, [&](ingest::IngestChunk& chunk) {
    bytes += chunk.data.size();
    return Status::Ok();
  });
  ASSERT_TRUE(stats.ok()) << stats.status().to_string();
  EXPECT_EQ(stats->chunks_skipped, 1u);
  EXPECT_EQ(stats->bytes_skipped, 100u);
  EXPECT_EQ(bytes, text.size() - 100);  // the other 7 chunks all arrived
  EXPECT_TRUE(stats->degraded());
  EXPECT_TRUE(stats->chunks[3].skipped);
  EXPECT_FALSE(stats->chunks[2].skipped);
}

// --------------------------------------- unified run(ExecMode) + report

TEST(ExecMode, NamesAreStable) {
  EXPECT_EQ(core::exec_mode_name(core::ExecMode::kOriginal), "original");
  EXPECT_EQ(core::exec_mode_name(core::ExecMode::kIngestMR), "supmr");
  EXPECT_EQ(core::exec_mode_name(core::ExecMode::kAdaptive), "adaptive");
}

std::string corpus_text() {
  std::string text;
  for (int i = 0; i < 200; ++i)
    text += "alpha beta gamma delta line" + std::to_string(i) + "\n";
  return text;
}

TEST(UnifiedRun, AllModesAgreeOnWordCounts) {
  const std::string text = corpus_text();
  std::map<core::ExecMode, std::uint64_t> distinct;
  for (core::ExecMode mode :
       {core::ExecMode::kOriginal, core::ExecMode::kIngestMR,
        core::ExecMode::kAdaptive}) {
    auto dev = std::make_shared<MemDevice>(text, "corpus");
    ingest::SingleDeviceSource src(
        dev, std::make_shared<ingest::LineFormat>(), 512);
    apps::WordCountApp app;
    core::JobConfig config;
    config.mode = mode;
    config.num_map_threads = 2;
    config.num_reduce_threads = 2;
    core::MapReduceJob job(app, src, config);
    // kAdaptive with no set_adaptive(): derived from the
    // SingleDeviceSource with an internal controller.
    auto result = job.run(config.mode);
    ASSERT_TRUE(result.ok())
        << core::exec_mode_name(mode) << ": " << result.status().to_string();
    EXPECT_EQ(result->chunks_skipped, 0u);
    distinct[mode] = result->result_count;
    EXPECT_EQ(result->phases.chunked, mode != core::ExecMode::kOriginal);
  }
  EXPECT_EQ(distinct[core::ExecMode::kOriginal],
            distinct[core::ExecMode::kIngestMR]);
  EXPECT_EQ(distinct[core::ExecMode::kOriginal],
            distinct[core::ExecMode::kAdaptive]);
}

TEST(UnifiedRun, LegacyWrappersStillRun) {
  const std::string text = corpus_text();
  auto dev = std::make_shared<MemDevice>(text, "corpus");
  ingest::SingleDeviceSource src(dev, std::make_shared<ingest::LineFormat>(),
                                 512);
  apps::WordCountApp app;
  core::JobConfig config;
  config.num_map_threads = 2;
  config.num_reduce_threads = 2;
  core::MapReduceJob job(app, src, config);
  auto result = job.run(core::ExecMode::kIngestMR);  // deprecated wrapper
  ASSERT_TRUE(result.ok()) << result.status().to_string();
  EXPECT_GT(result->result_count, 0u);
}

TEST(UnifiedRun, DegradedJobReportsSkippedChunksInJson) {
  const std::string text = corpus_text();
  MemDevice base(text);
  FaultPlan plan_spec;
  plan_spec.permanent.emplace_back(1024, 1536);
  FaultDevice fault(&base, plan_spec);
  // FixedFormat: split adjustment is pure arithmetic, so the poison hits a
  // chunk data read (where degrade applies), never a planning probe.
  ingest::SingleDeviceSource src(
      borrow(&fault), std::make_shared<ingest::FixedFormat>(64), 512);
  apps::WordCountApp app;
  core::JobConfig config;
  config.recovery.policy = fast_policy(2);
  config.recovery.degrade = true;
  config.num_map_threads = 2;
  config.num_reduce_threads = 2;
  core::MapReduceJob job(app, src, config);
  auto result = job.run(core::ExecMode::kIngestMR);
  ASSERT_TRUE(result.ok()) << result.status().to_string();
  EXPECT_TRUE(result->degraded());
  EXPECT_GE(result->chunks_skipped, 1u);
  EXPECT_GT(result->bytes_skipped, 0u);

  const std::string json = core::job_result_to_json(*result);
  EXPECT_EQ(test::validate_json(json), "");
  EXPECT_NE(json.find("\"chunks_skipped\""), std::string::npos);
  EXPECT_NE(json.find("\"bytes_skipped\""), std::string::npos);
  EXPECT_NE(json.find("\"degraded\":true"), std::string::npos);
  EXPECT_NE(json.find("\"chunk_retries\""), std::string::npos);
  EXPECT_NE(json.find("\"attempts\""), std::string::npos);
  EXPECT_NE(json.find("\"skipped\""), std::string::npos);
}

TEST(StatusToJson, EmitsValidErrorReport) {
  const std::string json =
      core::status_to_json(Status::IoError("disk \"died\" mid-read"));
  EXPECT_EQ(test::validate_json(json), "");
  EXPECT_NE(json.find("\"ok\":false"), std::string::npos);
  EXPECT_NE(json.find("\"code\""), std::string::npos);
}

// ----------------------------------------- external sorter spill seam

TEST(ExternalSorterRetry, SpillReadsRetryThroughFaultyDevice) {
  // Spill two runs, then reopen them through a fault-injecting stack whose
  // first reads fail transiently: with a retry policy the merge succeeds.
  ThreadPool pool(2);
  merge::ExternalSorterOptions opt;
  opt.record_bytes = 10;
  opt.key_bytes = 4;
  opt.memory_budget_bytes = 400;  // forces spills
  opt.retry = fast_policy(3);
  std::vector<std::unique_ptr<storage::FaultDevice>> fault_stack;
  opt.open_spill =
      [&](const std::string& path)
      -> StatusOr<std::shared_ptr<const storage::Device>> {
    SUPMR_ASSIGN_OR_RETURN(auto file, storage::FileDevice::open(path));
    std::shared_ptr<const storage::Device> base = std::move(file);
    FaultPlan fp;
    fp.fail_calls.push_back(0);  // first read of every run fails once
    auto fault = std::make_unique<storage::FaultDevice>(base, fp);
    auto* raw = fault.get();
    fault_stack.push_back(std::move(fault));
    return std::shared_ptr<const storage::Device>(
        raw, [base](const storage::Device*) {});
  };
  merge::ExternalSorter sorter(pool, opt);
  std::string records;
  for (int i = 199; i >= 0; --i) {
    char rec[11];
    std::snprintf(rec, sizeof(rec), "%04d______", i);
    records.append(rec, 10);
  }
  ASSERT_TRUE(sorter.add(records).ok());
  std::string out;
  auto stats = sorter.finish([&](std::span<const char> slab) {
    out.append(slab.data(), slab.size());
    return Status::Ok();
  });
  ASSERT_TRUE(stats.ok()) << stats.status().to_string();
  ASSERT_EQ(out.size(), records.size());
  for (int i = 0; i < 200; ++i) {
    char want[5];
    std::snprintf(want, sizeof(want), "%04d", i);
    EXPECT_EQ(out.substr(std::size_t(i) * 10, 4), want) << "record " << i;
  }
  EXPECT_FALSE(fault_stack.empty());  // the faulty seam was actually used
}

}  // namespace
}  // namespace supmr
