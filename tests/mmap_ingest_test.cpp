// Zero-copy mmap ingest path + ingest boundary-correctness regressions.
//
// Covers, in one place:
//   * common/scan.hpp — SWAR delimiter scanning and byte classification,
//     differentially against the obvious per-byte reference;
//   * ChunkBufferPool / IngestChunk — owned-buffer recycling and the
//     borrowed-view variant, including 0-byte chunks;
//   * MmapDevice — read_at/view_at agreement over a real file;
//   * SingleDeviceSource / MultiFileSource io=mmap — chunks are borrowed
//     when the device lends views, byte-identical to the copying path, and
//     fall back to copying under wrapper stacks (throttle/fault/retry —
//     you cannot retry a page fault);
//   * RecordFormat::adjust_split — the short-read regression (a device
//     capping its per-call transfer used to make the scan give up mid-file
//     and report "record runs to EOF") and terminators straddling the
//     kScanWindow edge, including "\r\n" at exact window multiples.
#include <gtest/gtest.h>

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "apps/word_count.hpp"
#include "common/scan.hpp"
#include "core/job.hpp"
#include "fault/retrying_device.hpp"
#include "ingest/chunk.hpp"
#include "ingest/pipeline.hpp"
#include "ingest/record_format.hpp"
#include "ingest/source.hpp"
#include "storage/file_device.hpp"
#include "storage/mem_device.hpp"
#include "storage/mmap_device.hpp"
#include "storage/rate_limiter.hpp"
#include "storage/throttled_device.hpp"
#include "wload/text_corpus.hpp"

namespace supmr {
namespace {

// Seeded line-structured corpus of roughly `bytes` (generate_text ends at a
// line boundary, so the exact size varies slightly).
std::string corpus(std::uint64_t bytes, std::uint64_t seed) {
  wload::TextCorpusConfig cfg;
  cfg.total_bytes = bytes;
  cfg.seed = seed;
  return wload::generate_text(cfg);
}

// ------------------------------------------------------------- scan.hpp

TEST(Scan, FindByteMatchesReference) {
  // Deterministic byte soup with matches at varied 8-byte alignments.
  std::string s;
  std::uint64_t x = 88172645463325252ull;
  for (int i = 0; i < 4096; ++i) {
    x ^= x << 13; x ^= x >> 7; x ^= x << 17;
    s += static_cast<char>(x & 0xff);
  }
  const std::span<const char> hay(s.data(), s.size());
  for (std::size_t from = 0; from < 70; ++from) {
    for (char needle : {'\n', '\r', '\0', 'a', static_cast<char>(0xff)}) {
      const void* p =
          std::memchr(s.data() + from, needle, s.size() - from);
      auto got = scan::find_byte(hay, from, needle);
      if (p == nullptr) {
        EXPECT_FALSE(got.has_value()) << "from=" << from;
      } else {
        ASSERT_TRUE(got.has_value()) << "from=" << from;
        EXPECT_EQ(*got, static_cast<std::size_t>(
                            static_cast<const char*>(p) - s.data()));
      }
    }
  }
  EXPECT_FALSE(scan::find_byte({}, 0, 'x').has_value());
  EXPECT_FALSE(scan::find_byte(hay, s.size(), 'a').has_value());
  EXPECT_FALSE(scan::find_byte(hay, s.size() + 5, 'a').has_value());
}

TEST(Scan, FindCrlfEdgeCases) {
  const std::string s = "ab\rcd\r\nef\r\r\ngh\r";
  const std::span<const char> hay(s.data(), s.size());
  auto first = scan::find_crlf(hay, 0);
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(*first, 5u);  // the '\r' of the first "\r\n"; lone '\r' skipped
  auto second = scan::find_crlf(hay, *first + 2);
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(*second, 10u);  // "\r\r\n": the match is the second '\r'
  // The trailing lone '\r' must NOT match — its '\n' may be in the next
  // window, and callers rescan it via the one-byte overlap.
  EXPECT_FALSE(scan::find_crlf(hay, *second + 2).has_value());
  EXPECT_FALSE(scan::find_crlf({}, 0).has_value());
}

TEST(Scan, WordClassificationMatchesCLocale) {
  for (int c = 0; c < 256; ++c) {
    const unsigned char u = static_cast<unsigned char>(c);
    EXPECT_EQ(scan::is_word_byte(static_cast<char>(c)),
              std::isalnum(u) != 0 && u < 128)
        << "byte " << c;
    if (u < 128) {
      EXPECT_EQ(scan::to_lower_ascii(static_cast<char>(c)),
                static_cast<char>(std::tolower(u)))
          << "byte " << c;
    }
  }
}

TEST(Scan, WordScanMatchesPerByteReference) {
  // Text with words placed to hit every alignment of the 8-byte prefilter,
  // plus punctuation in [0x30,0x7b) gaps (':', '@', '[') that are prefilter
  // candidates but not word bytes.
  const std::string s =
      "  one:two @three    [brackets]\t\nfour5  ------- x ZZZ\x80\xff{|}~  q";
  const std::span<const char> hay(s.data(), s.size());
  for (std::size_t from = 0; from <= s.size(); ++from) {
    std::size_t want_start = from;
    while (want_start < s.size() && !scan::is_word_byte(s[want_start])) {
      ++want_start;
    }
    EXPECT_EQ(scan::find_word_start(hay, from), want_start) << "from=" << from;
    std::size_t want_end = from;
    while (want_end < s.size() && scan::is_word_byte(s[want_end])) {
      ++want_end;
    }
    EXPECT_EQ(scan::find_word_end(hay, from), want_end) << "from=" << from;
  }
}

// ------------------------------------- IngestChunk and ChunkBufferPool

TEST(IngestChunk, OwnedAndBorrowedBytes) {
  ingest::IngestChunk chunk;
  EXPECT_FALSE(chunk.borrowed());
  EXPECT_TRUE(chunk.empty());
  EXPECT_EQ(chunk.size(), 0u);  // 0-byte owned chunk is well-defined

  chunk.data = {'a', 'b', 'c'};
  EXPECT_EQ(chunk.size(), 3u);
  EXPECT_EQ(chunk.bytes()[1], 'b');

  const std::string backing = "0123456789";
  chunk.set_view(std::span<const char>(backing.data() + 2, 5));
  EXPECT_TRUE(chunk.borrowed());
  EXPECT_EQ(chunk.size(), 5u);
  EXPECT_EQ(chunk.bytes().data(), backing.data() + 2);  // genuinely borrowed
  EXPECT_EQ(chunk.data.size(), 3u);  // owned storage untouched for recycling

  chunk.set_view({});  // 0-byte borrowed chunk is well-defined too
  EXPECT_TRUE(chunk.borrowed());
  EXPECT_TRUE(chunk.empty());

  chunk.set_owned();
  EXPECT_FALSE(chunk.borrowed());
  EXPECT_EQ(chunk.size(), 3u);
}

TEST(ChunkBufferPool, RecyclesCapacity) {
  ingest::ChunkBufferPool pool(2);
  EXPECT_EQ(pool.pooled(), 0u);
  std::vector<char> a = pool.acquire();  // empty pool: fresh vector
  EXPECT_EQ(a.capacity(), 0u);
  EXPECT_EQ(pool.reuses(), 0u);

  a.resize(4096);
  const std::size_t cap = a.capacity();
  pool.release(std::move(a));
  EXPECT_EQ(pool.pooled(), 1u);

  std::vector<char> b = pool.acquire();
  EXPECT_EQ(pool.reuses(), 1u);
  EXPECT_TRUE(b.empty());          // cleared...
  EXPECT_EQ(b.capacity(), cap);    // ...but capacity survives
  EXPECT_EQ(pool.pooled(), 0u);

  pool.release(std::vector<char>{});  // 0-capacity release is a no-op
  EXPECT_EQ(pool.pooled(), 0u);

  for (int i = 0; i < 4; ++i) {
    std::vector<char> v(128);
    pool.release(std::move(v));
  }
  EXPECT_EQ(pool.pooled(), 2u);  // bounded at max_buffers
}

TEST(ChunkBufferPool, CapIsConfigurableAndMissesAreCounted) {
  ingest::ChunkBufferPool pool(3);
  EXPECT_EQ(pool.max_buffers(), 3u);
  EXPECT_EQ(pool.misses(), 0u);

  std::vector<char> a = pool.acquire();  // cold freelist: a miss
  EXPECT_EQ(pool.misses(), 1u);
  a.resize(64);
  pool.release(std::move(a));
  std::vector<char> b = pool.acquire();  // warm: reuse, no new miss
  EXPECT_EQ(pool.misses(), 1u);
  EXPECT_EQ(pool.reuses(), 1u);

  // Steady state: the miss delta across further acquire/release cycles must
  // be 0 — a non-zero delta means the cap is undersized for the workload.
  pool.release(std::move(b));
  const std::uint64_t steady = pool.misses();
  for (int i = 0; i < 8; ++i) {
    std::vector<char> v = pool.acquire();
    v.resize(64);
    pool.release(std::move(v));
  }
  EXPECT_EQ(pool.misses(), steady);
}

TEST(IngestPipeline, SharedBufferPoolIsUsedAndRecycles) {
  // A pipeline handed a shared pool must route every acquire/release
  // through it (this is how the JobManager shares warm buffers across
  // jobs) — the pool's counters, not a private pool's, must move.
  const std::string data = corpus(64 * 1024, 13);
  auto dev = std::make_shared<storage::MemDevice>(data, "mem");
  auto format = std::make_shared<ingest::LineFormat>();
  ingest::ChunkBufferPool shared(8);

  for (int run = 0; run < 2; ++run) {
    ingest::SingleDeviceSource src(dev, format, 8 * 1024);
    ingest::IngestPipeline pipeline(src, {}, &shared);
    ASSERT_EQ(&pipeline.buffer_pool(), &shared);
    auto stats = pipeline.run([](ingest::IngestChunk&) {
      return Status::Ok();
    });
    ASSERT_TRUE(stats.ok()) << stats.status().to_string();
  }
  // The second pipeline inherited the first one's warm buffers.
  EXPECT_GT(shared.reuses(), 0u);
  EXPECT_GT(shared.pooled(), 0u);
}

// ------------------------------------------------------------ MmapDevice

std::string write_temp(const std::string& name, const std::string& bytes) {
  const std::string path = ::testing::TempDir() + "/" + name;
  std::FILE* f = std::fopen(path.c_str(), "wb");
  EXPECT_NE(f, nullptr);
  EXPECT_EQ(std::fwrite(bytes.data(), 1, bytes.size(), f), bytes.size());
  std::fclose(f);
  return path;
}

TEST(MmapDevice, ViewsAgreeWithReads) {
  const std::string data = corpus(32 * 1024, 42);
  const std::string path = write_temp("supmr_mmap_dev.txt", data);
  auto dev = storage::MmapDevice::open(path);
  ASSERT_TRUE(dev.ok()) << dev.status().to_string();
  EXPECT_EQ((*dev)->size(), data.size());
  EXPECT_TRUE((*dev)->supports_views());

  auto view = (*dev)->view_at(1000, 5000);
  ASSERT_EQ(view.size(), 5000u);
  EXPECT_EQ(std::string(view.data(), view.size()), data.substr(1000, 5000));

  std::vector<char> buf(5000);
  auto n = (*dev)->read_at(1000, std::span<char>(buf.data(), buf.size()));
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(*n, 5000u);
  EXPECT_EQ(std::string(buf.data(), *n), data.substr(1000, 5000));

  // Out-of-bounds views are refused, not clamped (a partial view would
  // silently truncate a chunk).
  EXPECT_TRUE((*dev)->view_at(data.size() - 10, 11).empty());
  EXPECT_TRUE((*dev)->view_at(data.size() + 1, 1).empty());

  // Reads clamp at EOF like every other device; past-EOF offsets error.
  auto tail = (*dev)->read_at(data.size() - 3,
                              std::span<char>(buf.data(), buf.size()));
  ASSERT_TRUE(tail.ok());
  EXPECT_EQ(*tail, 3u);
  EXPECT_FALSE((*dev)->read_at(data.size() + 1,
                               std::span<char>(buf.data(), 1))
                   .ok());
  std::remove(path.c_str());
}

TEST(MmapDevice, MissingFileFails) {
  EXPECT_FALSE(
      storage::MmapDevice::open("/nonexistent/supmr-no-such-file").ok());
}

// ----------------------------------------- io=mmap through the sources

TEST(SingleDeviceSource, MmapLendsBorrowedChunks) {
  const std::string data = corpus(64 * 1024, 7);
  auto dev = std::make_shared<storage::MemDevice>(data, "mem");
  auto format = std::make_shared<ingest::LineFormat>();

  ingest::SingleDeviceSource copy_src(dev, format, 8 * 1024,
                                      core::IoMode::kRead);
  ingest::SingleDeviceSource mmap_src(dev, format, 8 * 1024,
                                      core::IoMode::kMmap);
  auto plan = copy_src.plan();
  ASSERT_TRUE(plan.ok());
  ASSERT_GT(plan->size(), 2u);

  for (const auto& extent : *plan) {
    ingest::IngestChunk copied, borrowed;
    ASSERT_TRUE(copy_src.read_chunk(extent, copied).ok());
    ASSERT_TRUE(mmap_src.read_chunk(extent, borrowed).ok());
    EXPECT_FALSE(copied.borrowed());
    EXPECT_TRUE(borrowed.borrowed());
    // The borrowed span aliases the device's buffer — zero copies.
    EXPECT_EQ(borrowed.bytes().data(), dev->contents().data() + extent.offset);
    ASSERT_EQ(copied.size(), borrowed.size());
    EXPECT_TRUE(std::equal(copied.bytes().begin(), copied.bytes().end(),
                           borrowed.bytes().begin()));
  }
}

TEST(SingleDeviceSource, WrapperStacksForceCopyFallback) {
  const std::string data = corpus(32 * 1024, 8);
  std::shared_ptr<const storage::Device> dev =
      std::make_shared<storage::MemDevice>(data, "mem");
  // Throttle + retry: neither lends views, so io=mmap must silently use
  // copying reads (a page fault cannot be throttled or retried).
  auto limiter = std::make_shared<storage::RateLimiter>(1e12);
  dev = std::make_shared<storage::ThrottledDevice>(dev, limiter);
  fault::RetryPolicy policy;
  policy.max_attempts = 3;
  dev = std::make_shared<fault::RetryingDevice>(dev, policy);
  EXPECT_FALSE(dev->supports_views());

  auto format = std::make_shared<ingest::LineFormat>();
  ingest::SingleDeviceSource src(dev, format, 8 * 1024, core::IoMode::kMmap);
  auto plan = src.plan();
  ASSERT_TRUE(plan.ok());
  for (const auto& extent : *plan) {
    ingest::IngestChunk chunk;
    ASSERT_TRUE(src.read_chunk(extent, chunk).ok());
    EXPECT_FALSE(chunk.borrowed());
    EXPECT_EQ(std::string(chunk.bytes().data(), chunk.size()),
              data.substr(extent.offset, extent.length));
  }
}

TEST(MultiFileSource, MmapBorrowsOnlySingleFileChunks) {
  std::vector<std::shared_ptr<const storage::Device>> files;
  for (int i = 0; i < 4; ++i) {
    files.push_back(std::make_shared<storage::MemDevice>(
        std::string(4096, static_cast<char>('a' + i)),
        "f" + std::to_string(i)));
  }
  // files_per_chunk=1: every chunk is one whole file — borrowable.
  ingest::MultiFileSource one(files, 1, core::IoMode::kMmap);
  auto plan1 = one.plan();
  ASSERT_TRUE(plan1.ok());
  ASSERT_EQ(plan1->size(), 4u);
  for (const auto& extent : *plan1) {
    ingest::IngestChunk chunk;
    ASSERT_TRUE(one.read_chunk(extent, chunk).ok());
    EXPECT_TRUE(chunk.borrowed());
    EXPECT_EQ(chunk.size(), 4096u);
  }
  // files_per_chunk=2: coalesced chunks must be contiguous in RAM — copied.
  ingest::MultiFileSource two(files, 2, core::IoMode::kMmap);
  auto plan2 = two.plan();
  ASSERT_TRUE(plan2.ok());
  ASSERT_EQ(plan2->size(), 2u);
  for (const auto& extent : *plan2) {
    ingest::IngestChunk chunk;
    ASSERT_TRUE(two.read_chunk(extent, chunk).ok());
    EXPECT_FALSE(chunk.borrowed());
    ASSERT_EQ(chunk.size(), 2 * 4096u);
    // Coalesced bytes land in file order at their chunk offsets.
    EXPECT_EQ(chunk.bytes()[4095], chunk.bytes()[0]);
    EXPECT_EQ(chunk.bytes()[4096], chunk.bytes()[0] + 1);
  }
}

// Pipeline-level: the copying path recycles buffers (steady-state
// allocation drops to zero), the mmap path streams borrowed chunks.
TEST(IngestPipeline, PoolRecyclesOnCopyPathBorrowsOnMmapPath) {
  const std::string data = corpus(128 * 1024, 9);
  auto dev = std::make_shared<storage::MemDevice>(data, "mem");
  auto format = std::make_shared<ingest::LineFormat>();

  for (core::IoMode io : {core::IoMode::kRead, core::IoMode::kMmap}) {
    ingest::SingleDeviceSource src(dev, format, 8 * 1024, io);
    ingest::IngestPipeline pipeline(src);
    std::size_t chunks = 0, borrowed = 0;
    std::uint64_t bytes = 0;
    auto stats = pipeline.run([&](ingest::IngestChunk& chunk) {
      ++chunks;
      if (chunk.borrowed()) ++borrowed;
      bytes += chunk.size();
      return Status::Ok();
    });
    ASSERT_TRUE(stats.ok()) << stats.status().to_string();
    EXPECT_EQ(bytes, data.size());
    EXPECT_GT(chunks, 4u);
    if (io == core::IoMode::kRead) {
      EXPECT_EQ(borrowed, 0u);
      // The producer runs at most one chunk ahead of the consumer, so only
      // the first few acquires can miss the freelist.
      EXPECT_GE(pipeline.buffer_pool().reuses(), chunks - 3);
    } else {
      EXPECT_EQ(borrowed, chunks);
    }
  }
}

// End-to-end over a real mapped file: word count via MmapDevice must be
// byte-identical to the same job via FileDevice.
TEST(MmapIngest, RealFileDifferentialWordCount) {
  const std::string data = corpus(96 * 1024, 11);
  const std::string path = write_temp("supmr_mmap_diff.txt", data);

  auto run = [&](std::shared_ptr<const storage::Device> dev,
                 core::IoMode io) {
    apps::WordCountApp app;
    ingest::SingleDeviceSource src(std::move(dev),
                                   std::make_shared<ingest::LineFormat>(),
                                   16 * 1024, io);
    core::JobConfig cfg;
    cfg.num_map_threads = 3;
    cfg.num_reduce_threads = 3;
    cfg.io = io;
    core::MapReduceJob job(app, src, cfg);
    auto result = job.run(core::ExecMode::kIngestMR);
    EXPECT_TRUE(result.ok()) << result.status().to_string();
    return app.results();
  };

  auto file = storage::FileDevice::open(path);
  ASSERT_TRUE(file.ok()) << file.status().to_string();
  auto mapped = storage::MmapDevice::open(path);
  ASSERT_TRUE(mapped.ok()) << mapped.status().to_string();
  const auto via_read = run(std::move(*file), core::IoMode::kRead);
  const auto via_mmap = run(std::move(*mapped), core::IoMode::kMmap);
  EXPECT_EQ(via_read, via_mmap);
  EXPECT_FALSE(via_read.empty());
  std::remove(path.c_str());
}

// ------------------------------------ adjust_split boundary regressions

// A device that serves at most `cap` bytes per read_at call — legal under
// the Device contract, and exactly the shape that broke the old
// window-rescan loop.
class ShortReadDevice final : public storage::Device {
 public:
  ShortReadDevice(std::string data, std::size_t cap)
      : base_(std::move(data), "short-read"), cap_(cap) {}

  StatusOr<std::size_t> read_at(std::uint64_t offset,
                                std::span<char> out) const override {
    return base_.read_at(offset, out.subspan(0, std::min(out.size(), cap_)));
  }
  std::uint64_t size() const override { return base_.size(); }
  std::string_view name() const override { return base_.name(); }

 private:
  storage::MemDevice base_;
  std::size_t cap_;
};

TEST(AdjustSplit, ShortReadsDoNotFakeEof) {
  // '\n' at 600; desired split at 100. The old loop advanced by whatever
  // one read_at call returned and treated a tiny transfer as EOF, so a
  // capped device made it report "record runs to EOF" (= size) mid-file.
  std::string data(1000, 'a');
  data[600] = '\n';
  const ingest::LineFormat format;
  for (std::size_t cap : {std::size_t(1), std::size_t(2), std::size_t(3),
                          std::size_t(7), std::size_t(64)}) {
    ShortReadDevice dev(data, cap);
    auto end = format.adjust_split(dev, 100);
    ASSERT_TRUE(end.ok()) << "cap=" << cap;
    EXPECT_EQ(*end, 601u) << "cap=" << cap;
  }
}

TEST(AdjustSplit, ShortReadsMatchFullReadsEverywhere) {
  // Differential sweep: a capped device must produce the same split as the
  // plain device for every desired offset, both delimiter formats.
  const std::string text = corpus(4096, 12);
  std::string crlf;
  for (char c : text) {  // rewrite "\n" into "\r\n" for the CRLF variant
    if (c == '\n') crlf += '\r';
    crlf += c;
  }
  const ingest::LineFormat line;
  const ingest::CrlfFormat crlf_format;
  struct Case {
    const ingest::RecordFormat* format;
    const std::string* data;
  };
  for (const Case& c : {Case{&line, &text}, Case{&crlf_format, &crlf}}) {
    storage::MemDevice full(*c.data, "full");
    ShortReadDevice capped(*c.data, 5);
    for (std::uint64_t desired = 0; desired <= c.data->size();
         desired += 61) {
      auto want = c.format->adjust_split(full, desired);
      auto got = c.format->adjust_split(capped, desired);
      ASSERT_TRUE(want.ok() && got.ok());
      EXPECT_EQ(*got, *want) << "desired=" << desired;
    }
  }
}

TEST(AdjustSplit, CrlfStraddlesScanWindowBoundary) {
  // kScanWindow is 64 KiB. Place "\r\n" so the '\r' is the LAST byte of the
  // first scan window and the '\n' opens the second — the lone trailing '\r'
  // must not match (find_crlf), and the one-byte inter-window overlap must
  // then see the pair whole.
  constexpr std::size_t kWindow = 64 * 1024;
  std::string data(kWindow + 512, 'x');
  data[kWindow - 1] = '\r';
  data[kWindow] = '\n';
  const ingest::CrlfFormat format;
  {
    storage::MemDevice dev(data, "straddle");
    // desired=1: too small for the boundary probe, scan starts at 0; the
    // first window ends exactly between '\r' and '\n'.
    auto end = format.adjust_split(dev, 1);
    ASSERT_TRUE(end.ok());
    EXPECT_EQ(*end, kWindow + 1);
  }
  {
    // Same layout through a short-read device: window filling must absorb
    // the capped reads before scanning.
    ShortReadDevice dev(data, 4096 - 1);  // odd cap, misaligned fills
    auto end = format.adjust_split(dev, 1);
    ASSERT_TRUE(end.ok());
    EXPECT_EQ(*end, kWindow + 1);
  }
}

TEST(AdjustSplit, CrlfAtExactScanWindowMultiples) {
  // "\r\n" ending exactly at 1x and 2x kScanWindow, with desired offsets on
  // and inside the terminator.
  constexpr std::size_t kWindow = 64 * 1024;
  std::string data(2 * kWindow + 256, 'y');
  data[kWindow - 2] = '\r';
  data[kWindow - 1] = '\n';  // record ends exactly at window 1's edge
  data[2 * kWindow - 2] = '\r';
  data[2 * kWindow - 1] = '\n';  // ...and at window 2's edge
  storage::MemDevice dev(data, "exact");
  const ingest::CrlfFormat format;

  auto a = format.adjust_split(dev, 10);
  ASSERT_TRUE(a.ok());
  EXPECT_EQ(*a, kWindow);
  // A desired offset already on the boundary stays put (probe hit).
  auto b = format.adjust_split(dev, kWindow);
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(*b, kWindow);
  // A desired offset BETWEEN '\r' and '\n': the one-byte lookback re-reads
  // the pair and the split snaps to the end of that same terminator.
  auto c = format.adjust_split(dev, kWindow - 1);
  ASSERT_TRUE(c.ok());
  EXPECT_EQ(*c, kWindow);
  // No terminator after the last record: runs to EOF.
  auto d = format.adjust_split(dev, 2 * kWindow + 1);
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(*d, data.size());
}

TEST(AdjustSplit, LineFormatWindowEdges) {
  constexpr std::size_t kWindow = 64 * 1024;
  std::string data(kWindow + 64, 'z');
  data[kWindow - 1] = '\n';  // terminator as the window's last byte
  storage::MemDevice dev(data, "line-edge");
  const ingest::LineFormat format;
  auto end = format.adjust_split(dev, 3);
  ASSERT_TRUE(end.ok());
  EXPECT_EQ(*end, kWindow);
  // Trailing record without '\n' runs to EOF.
  auto tail = format.adjust_split(dev, kWindow + 1);
  ASSERT_TRUE(tail.ok());
  EXPECT_EQ(*tail, data.size());
}

}  // namespace
}  // namespace supmr
