// Unit tests for the discrete-event simulation substrate: engine ordering,
// processor-sharing math, machine/thread lifecycle, tracer invariants.
#include <gtest/gtest.h>

#include <vector>

#include "sim/engine.hpp"
#include "sim/machine.hpp"
#include "sim/resource.hpp"
#include "sim/tracer.hpp"

namespace supmr::sim {
namespace {

// --------------------------------------------------------------- engine

TEST(Engine, FiresInTimeOrder) {
  Engine e;
  std::vector<int> order;
  e.schedule_at(2.0, [&] { order.push_back(2); });
  e.schedule_at(1.0, [&] { order.push_back(1); });
  e.schedule_at(3.0, [&] { order.push_back(3); });
  e.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(e.now(), 3.0);
}

TEST(Engine, SimultaneousEventsFifoBySequence) {
  Engine e;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i)
    e.schedule_at(1.0, [&, i] { order.push_back(i); });
  e.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Engine, EventsMayScheduleMoreEvents) {
  Engine e;
  int fired = 0;
  e.schedule_at(1.0, [&] {
    ++fired;
    e.schedule_after(1.0, [&] { ++fired; });
  });
  e.run();
  EXPECT_EQ(fired, 2);
  EXPECT_DOUBLE_EQ(e.now(), 2.0);
}

TEST(Engine, RunUntilLeavesLaterEvents) {
  Engine e;
  int fired = 0;
  e.schedule_at(1.0, [&] { ++fired; });
  e.schedule_at(5.0, [&] { ++fired; });
  e.run_until(2.0);
  EXPECT_EQ(fired, 1);
  EXPECT_DOUBLE_EQ(e.now(), 2.0);
  e.run();
  EXPECT_EQ(fired, 2);
}

// ------------------------------------------------------------- resource

TEST(PsResource, SingleJobFullRate) {
  Engine e;
  PsResource disk(e, "disk", 100.0, 100.0);
  double done_at = -1;
  disk.submit(250.0, Category::kSys, [&] { done_at = e.now(); });
  e.run();
  EXPECT_NEAR(done_at, 2.5, 1e-9);
  EXPECT_NEAR(disk.delivered_total(), 250.0, 1e-6);
}

TEST(PsResource, PerJobCapLimitsSingleJob) {
  // CPU semantics: one thread on a 32-context machine runs at rate 1.
  Engine e;
  PsResource cpu(e, "cpu", 32.0, 1.0);
  double done_at = -1;
  cpu.submit(4.0, Category::kUser, [&] { done_at = e.now(); });
  e.run();
  EXPECT_NEAR(done_at, 4.0, 1e-9);
}

TEST(PsResource, FairSharingBetweenTwoJobs) {
  // Two equal jobs on a shared-bandwidth resource each get half rate.
  Engine e;
  PsResource disk(e, "disk", 100.0, 100.0);
  double t1 = -1, t2 = -1;
  disk.submit(100.0, Category::kSys, [&] { t1 = e.now(); });
  disk.submit(100.0, Category::kSys, [&] { t2 = e.now(); });
  e.run();
  // Both share 100/s: each runs at 50/s, both finish at t=2.
  EXPECT_NEAR(t1, 2.0, 1e-9);
  EXPECT_NEAR(t2, 2.0, 1e-9);
}

TEST(PsResource, LateArrivalRecomputesCompletion) {
  Engine e;
  PsResource disk(e, "disk", 100.0, 100.0);
  double t1 = -1, t2 = -1;
  disk.submit(100.0, Category::kSys, [&] { t1 = e.now(); });  // alone: 1s
  e.schedule_at(0.5, [&] {
    disk.submit(100.0, Category::kSys, [&] { t2 = e.now(); });
  });
  e.run();
  // Job1: 50 served by 0.5, then shares -> 50 more at 50/s -> done at 1.5.
  EXPECT_NEAR(t1, 1.5, 1e-9);
  // Job2: 50 served by 1.5 (shared at 50/s), then alone: 50 at 100/s -> 2.0.
  EXPECT_NEAR(t2, 2.0, 1e-9);
}

TEST(PsResource, ContextPoolRunsUpToCapacityAtFullSpeed) {
  Engine e;
  PsResource cpu(e, "cpu", 4.0, 1.0);
  int done = 0;
  for (int i = 0; i < 4; ++i)
    cpu.submit(1.0, Category::kUser, [&] { ++done; });
  e.run();
  EXPECT_EQ(done, 4);
  EXPECT_NEAR(e.now(), 1.0, 1e-9);  // 4 jobs, 4 contexts: no slowdown
}

TEST(PsResource, OversubscriptionTimeShares) {
  Engine e;
  PsResource cpu(e, "cpu", 4.0, 1.0);
  int done = 0;
  for (int i = 0; i < 8; ++i)
    cpu.submit(1.0, Category::kUser, [&] { ++done; });
  e.run();
  EXPECT_EQ(done, 8);
  EXPECT_NEAR(e.now(), 2.0, 1e-9);  // 8 cpu-seconds over 4 contexts
}

TEST(PsResource, ZeroDemandCompletesViaEvent) {
  Engine e;
  PsResource cpu(e, "cpu", 1.0, 1.0);
  bool fired = false;
  cpu.submit(0.0, Category::kUser, [&] { fired = true; });
  EXPECT_FALSE(fired);  // not synchronous
  e.run();
  EXPECT_TRUE(fired);
}

TEST(PsResource, TinyResidualsDoNotSpinForever) {
  // Regression: a disk job with micro-byte residual demand at large virtual
  // time used to reschedule its completion at the same timestamp forever.
  Engine e;
  PsResource disk(e, "disk", 384.0e6, 384.0e6);
  int done = 0;
  // Land completions at large t with residuals straddling float precision.
  e.schedule_at(178.0, [&] {
    disk.submit(1e10, Category::kSys, [&] { ++done; });
    disk.submit(1e10 + 1e-5, Category::kSys, [&] { ++done; });
  });
  e.run();
  EXPECT_EQ(done, 2);
  EXPECT_LT(e.events_executed(), 1000u);
}

TEST(PsResource, DeliveredSplitsByCategory) {
  Engine e;
  PsResource cpu(e, "cpu", 2.0, 1.0);
  cpu.submit(1.0, Category::kUser, nullptr);
  cpu.submit(3.0, Category::kSys, nullptr);
  e.run();
  EXPECT_NEAR(cpu.delivered(Category::kUser), 1.0, 1e-6);
  EXPECT_NEAR(cpu.delivered(Category::kSys), 3.0, 1e-6);
}

TEST(PsResourceTimeline, MeanRateIntegrates) {
  Engine e;
  PsResource cpu(e, "cpu", 4.0, 1.0);
  for (int i = 0; i < 2; ++i) cpu.submit(1.0, Category::kUser, nullptr);
  e.run();
  // Two jobs at rate 1 each for 1s: mean user rate over [0,1) is 2.
  EXPECT_NEAR(cpu.timeline().mean_rate(0.0, 1.0, Category::kUser), 2.0, 1e-6);
  EXPECT_NEAR(cpu.timeline().mean_rate(0.0, 2.0, Category::kUser), 1.0, 1e-6);
}

TEST(MakeJoin, FiresOnceAfterN) {
  int fired = 0;
  auto join = make_join(3, [&] { ++fired; });
  join();
  join();
  EXPECT_EQ(fired, 0);
  join();
  EXPECT_EQ(fired, 1);
}

TEST(MakeJoin, ZeroArityFiresImmediately) {
  int fired = 0;
  make_join(0, [&] { ++fired; });
  EXPECT_EQ(fired, 1);
}

// -------------------------------------------------------------- machine

TEST(Machine, ThreadRunsStagesInOrder) {
  Engine e;
  Machine m(e, MachineConfig{4, 0.0, 0.0});
  PsResource disk(e, "disk", 10.0, 10.0);
  m.attach_device(&disk);
  double done_at = -1;
  m.spawn_thread({Stage::io(&disk, 20.0), Stage::compute(1.0)},
                 [&] { done_at = e.now(); });
  e.run();
  EXPECT_NEAR(done_at, 3.0, 1e-9);  // 2s IO + 1s compute
}

TEST(Machine, SpawnOverheadCharged) {
  Engine e;
  Machine m(e, MachineConfig{1, 0.5, 0.25});
  double done_at = -1;
  m.spawn_thread({Stage::compute(1.0)}, [&] { done_at = e.now(); });
  e.run();
  EXPECT_NEAR(done_at, 1.75, 1e-9);  // 0.5 spawn + 1.0 work + 0.25 join
  EXPECT_EQ(m.threads_spawned(), 1u);
}

TEST(Machine, OverheadSkippedForCoordinators) {
  Engine e;
  Machine m(e, MachineConfig{1, 0.5, 0.25});
  double done_at = -1;
  m.spawn_thread({Stage::compute(1.0)}, [&] { done_at = e.now(); },
                 /*charge_overhead=*/false);
  e.run();
  EXPECT_NEAR(done_at, 1.0, 1e-9);
}

TEST(Machine, BlockedTimelineTracksIoWaiters) {
  Engine e;
  Machine m(e, MachineConfig{4, 0.0, 0.0});
  PsResource disk(e, "disk", 10.0, 10.0);
  m.attach_device(&disk);
  m.spawn_thread({Stage::io(&disk, 20.0)}, nullptr);
  e.run();
  EXPECT_NEAR(m.blocked_timeline().mean(0.0, 2.0), 1.0, 1e-6);
  EXPECT_NEAR(m.blocked_timeline().mean(2.0, 4.0), 0.0, 1e-6);
}

// --------------------------------------------------------------- tracer

TEST(Tracer, UtilizationBounded) {
  Engine e;
  Machine m(e, MachineConfig{2, 0.0001, 0.0001});
  PsResource disk(e, "disk", 100.0, 100.0);
  m.attach_device(&disk);
  for (int i = 0; i < 6; ++i)
    m.spawn_thread({Stage::compute(0.7), Stage::io(&disk, 30.0)}, nullptr);
  e.run();
  TimeSeries trace = trace_utilization(m, 0.0, e.now(),
                                       TracerOptions{0.25});
  ASSERT_GT(trace.samples(), 0u);
  for (std::size_t i = 0; i < trace.samples(); ++i) {
    for (std::size_t c = 0; c < trace.channels(); ++c) {
      EXPECT_GE(trace.value(i, c), -1e-9);
      EXPECT_LE(trace.value(i, c), 100.0 + 1e-9);
    }
    EXPECT_LE(trace.row_sum(i), 100.0 + 1e-6);
  }
}

TEST(Tracer, FullLoadShowsFullUtilization) {
  Engine e;
  Machine m(e, MachineConfig{2, 0.0, 0.0});
  for (int i = 0; i < 2; ++i) m.spawn_thread({Stage::compute(2.0)}, nullptr);
  e.run();
  EXPECT_NEAR(mean_utilization(m, 0.0, 2.0), 100.0, 1e-6);
}

TEST(Tracer, IoOnlyPhaseShowsIoWaitNotUser) {
  Engine e;
  Machine m(e, MachineConfig{4, 0.0, 0.0});
  PsResource disk(e, "disk", 10.0, 10.0);
  m.attach_device(&disk);
  m.spawn_thread({Stage::io(&disk, 40.0)}, nullptr);  // 4s pure IO
  e.run();
  TimeSeries trace = trace_utilization(m, 0.0, 4.0, TracerOptions{1.0});
  ASSERT_EQ(trace.samples(), 4u);
  EXPECT_NEAR(trace.value(0, 0), 0.0, 1e-6);            // user
  EXPECT_NEAR(trace.value(0, 2), 100.0 / 4.0, 1e-6);    // iowait: 1 of 4
}

}  // namespace
}  // namespace supmr::sim
