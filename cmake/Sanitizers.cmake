# Sanitizer wiring for the whole build.
#
# Usage:  cmake -B build-tsan -S . -DSUPMR_SANITIZE=thread
#         cmake -B build-asan -S . -DSUPMR_SANITIZE=address,undefined
#
# The flags are applied at directory scope from the top-level CMakeLists
# *before* any add_subdirectory(), so every target under src/, tests/,
# tools/, bench/ and examples/ is compiled and linked instrumented —
# mixing instrumented and uninstrumented TUs produces false negatives
# (TSan misses races in uninstrumented code entirely).
#
# Valid values: thread | address | undefined, comma-separated to combine.
# thread+address is rejected (the runtimes are mutually exclusive).
# Suppression files live in tools/sanitizers/; see docs/concurrency.md for
# how to run the labeled test subsets under each sanitizer.

set(SUPMR_SANITIZE "" CACHE STRING
    "Sanitizers to build with: thread | address | undefined (comma-separated)")

if(SUPMR_SANITIZE)
  string(REPLACE "," ";" _supmr_san_list "${SUPMR_SANITIZE}")

  if("thread" IN_LIST _supmr_san_list AND "address" IN_LIST _supmr_san_list)
    message(FATAL_ERROR
        "SUPMR_SANITIZE: 'thread' and 'address' cannot be combined "
        "(incompatible runtimes); build them separately")
  endif()

  set(_supmr_san_flags "")
  foreach(_san IN LISTS _supmr_san_list)
    if(_san STREQUAL "thread")
      list(APPEND _supmr_san_flags -fsanitize=thread)
    elseif(_san STREQUAL "address")
      list(APPEND _supmr_san_flags -fsanitize=address)
    elseif(_san STREQUAL "undefined")
      # Abort on UB instead of printing and continuing, so ctest fails.
      list(APPEND _supmr_san_flags -fsanitize=undefined
           -fno-sanitize-recover=undefined)
    else()
      message(FATAL_ERROR
          "SUPMR_SANITIZE: unknown sanitizer '${_san}' "
          "(expected thread, address, or undefined)")
    endif()
  endforeach()

  # Frame pointers keep sanitizer stack traces usable at -O1/-O2; a little
  # optimization keeps the instrumented stress tests fast enough to matter.
  add_compile_options(${_supmr_san_flags} -fno-omit-frame-pointer -g)
  add_link_options(${_supmr_san_flags})
  if(NOT CMAKE_BUILD_TYPE STREQUAL "Debug")
    # Non-Debug builds define NDEBUG, which would compile out the debug
    # assertions the concurrency primitives use to state their invariants
    # (e.g. SpscQueue::size() torn-observation checks). Sanitizer runs are
    # exactly when we want those asserts live.
    add_compile_options(-UNDEBUG)
  endif()
  message(STATUS "SupMR: sanitizers enabled: ${_supmr_san_flags}")
endif()
