#include "common/phase_timer.hpp"

#include <cstdio>

#include "common/logging.hpp"

namespace supmr {

std::string_view phase_name(Phase p) {
  switch (p) {
    case Phase::kRead: return "read";
    case Phase::kMap: return "map";
    case Phase::kReduce: return "reduce";
    case Phase::kMerge: return "merge";
    case Phase::kSetup: return "setup";
    case Phase::kCleanup: return "cleanup";
  }
  return "?";
}

double& PhaseBreakdown::phase_ref(Phase p) {
  switch (p) {
    case Phase::kRead: return read_s;
    case Phase::kMap: return map_s;
    case Phase::kReduce: return reduce_s;
    case Phase::kMerge: return merge_s;
    case Phase::kSetup: return setup_s;
    case Phase::kCleanup: return cleanup_s;
  }
  return total_s;
}

std::string PhaseBreakdown::table_header() {
  char buf[160];
  std::snprintf(buf, sizeof(buf), "%-10s %10s %10s %10s %10s %10s", "config",
                "total", "read", "map", "reduce", "merge");
  return buf;
}

std::string PhaseBreakdown::to_table_row(const std::string& label) const {
  char buf[200];
  if (has_combined_readmap) {
    char rm[40];
    std::snprintf(rm, sizeof(rm), "[r+m %.2fs]", readmap_s);
    std::snprintf(buf, sizeof(buf), "%-10s %9.2fs %21s %9.2fs %9.2fs",
                  label.c_str(), total_s, rm, reduce_s, merge_s);
  } else {
    std::snprintf(buf, sizeof(buf), "%-10s %9.2fs %9.2fs %9.2fs %9.2fs %9.2fs",
                  label.c_str(), total_s, read_s, map_s, reduce_s, merge_s);
  }
  return buf;
}

PhaseClock::PhaseClock() = default;

// Misuse (double start, stop without start) used to be an assert, which
// release builds compile out — the mismatched bookkeeping then silently
// corrupted accumulated timings (a stale started_[] stamp, or a stop adding
// an interval that never started). Misuse is now a logged no-op in every
// build: the first start wins, an unmatched stop adds nothing.

void PhaseClock::start(Phase p) {
  const int i = static_cast<int>(p);
  if (running_[i]) {
    SUPMR_LOG_WARN("PhaseClock: start(%.*s) while already running; ignored",
                   static_cast<int>(phase_name(p).size()),
                   phase_name(p).data());
    return;
  }
  running_[i] = true;
  started_[i] = clock::now();
}

void PhaseClock::stop(Phase p) {
  const int i = static_cast<int>(p);
  if (!running_[i]) {
    SUPMR_LOG_WARN("PhaseClock: stop(%.*s) without matching start; ignored",
                   static_cast<int>(phase_name(p).size()),
                   phase_name(p).data());
    return;
  }
  running_[i] = false;
  acc_[i] += std::chrono::duration<double>(clock::now() - started_[i]).count();
}

void PhaseClock::start_total() {
  if (total_running_) {
    SUPMR_LOG_WARN("PhaseClock: start_total() while already running; ignored");
    return;
  }
  total_running_ = true;
  total_start_ = clock::now();
}

void PhaseClock::stop_total() {
  if (!total_running_) {
    SUPMR_LOG_WARN("PhaseClock: stop_total() without matching start; ignored");
    return;
  }
  total_running_ = false;
  total_ += std::chrono::duration<double>(clock::now() - total_start_).count();
}

double PhaseClock::now_since_start() const {
  if (!total_running_) {
    SUPMR_LOG_WARN("PhaseClock: now_since_start() while stopped; returning 0");
    return 0.0;
  }
  return std::chrono::duration<double>(clock::now() - total_start_).count();
}

PhaseBreakdown PhaseClock::snapshot() const {
  PhaseBreakdown b;
  b.read_s = elapsed(Phase::kRead);
  b.map_s = elapsed(Phase::kMap);
  b.reduce_s = elapsed(Phase::kReduce);
  b.merge_s = elapsed(Phase::kMerge);
  b.setup_s = elapsed(Phase::kSetup);
  b.cleanup_s = elapsed(Phase::kCleanup);
  b.total_s = total_;
  return b;
}

}  // namespace supmr
