// SWAR delimiter scanning and byte classification shared by the ingest
// record formats (record_format.cpp) and the app-side tokenizers
// (apps/tokenize.hpp).
//
// The ingest hot path touches every input byte at least once; doing that a
// byte at a time through locale-aware <cctype> calls is the "memory
// bandwidth bottleneck" the paper tells us to kill. find_byte() scans eight
// bytes per iteration with the classic SWAR zero-in-word trick; the
// classification tables replace isalnum()/tolower() calls with one L1 load.
// Word-sized loads go through std::memcpy, so they are alignment- and
// strict-aliasing-safe (the compiler lowers them to single mov instructions).
#pragma once

#include <bit>
#include <cstdint>
#include <cstring>
#include <optional>
#include <span>

namespace supmr::scan {

namespace detail {

inline constexpr std::uint64_t kLowBits = 0x0101010101010101ull;
inline constexpr std::uint64_t kHighBits = 0x8080808080808080ull;

inline std::uint64_t load_u64(const char* p) {
  std::uint64_t w;
  std::memcpy(&w, p, sizeof(w));
  return w;
}

// Non-zero iff `w` has a zero byte; the high bit of each zero byte is set.
inline constexpr std::uint64_t zero_byte_mask(std::uint64_t w) {
  return (w - kLowBits) & ~w & kHighBits;
}

}  // namespace detail

// Index of the first occurrence of `needle` in `hay` at or after `from`,
// eight bytes per step. nullopt when absent. Behaves like memchr but
// returns an index, which is what the record formats want.
inline std::optional<std::size_t> find_byte(std::span<const char> hay,
                                            std::size_t from, char needle) {
  if (from >= hay.size()) return std::nullopt;
  const char* data = hay.data();
  const std::size_t n = hay.size();
  const std::uint64_t pattern =
      detail::kLowBits * static_cast<std::uint8_t>(needle);
  std::size_t i = from;
  // SWAR bulk scan: XOR makes matching bytes zero, zero_byte_mask finds them.
  for (; i + 8 <= n; i += 8) {
    const std::uint64_t m =
        detail::zero_byte_mask(detail::load_u64(data + i) ^ pattern);
    if (m != 0) {
      // Little-endian: the lowest set high-bit belongs to the first match.
      return i + static_cast<std::size_t>(std::countr_zero(m)) / 8;
    }
  }
  for (; i < n; ++i) {
    if (data[i] == needle) return i;
  }
  return std::nullopt;
}

// Index of the '\r' of the first "\r\n" pair at or after `from` whose '\n'
// is also inside `hay`. A lone trailing '\r' at hay.back() does NOT match
// (its '\n' may be in the next window — callers keep a one-byte overlap).
inline std::optional<std::size_t> find_crlf(std::span<const char> hay,
                                            std::size_t from) {
  std::size_t pos = from;
  while (true) {
    const auto cr = find_byte(hay, pos, '\r');
    if (!cr.has_value() || *cr + 1 >= hay.size()) return std::nullopt;
    if (hay[*cr + 1] == '\n') return *cr;
    pos = *cr + 1;
  }
}

// Branch-free ASCII word-character classification ([0-9A-Za-z]) and
// lowercasing, one table load each — replaces the locale-dispatching
// isalnum()/tolower() pair in the tokenizer hot loop.
namespace detail {

struct ByteTables {
  bool word[256] = {};
  char lower[256] = {};
  constexpr ByteTables() {
    for (int c = 0; c < 256; ++c) {
      const bool digit = c >= '0' && c <= '9';
      const bool upper = c >= 'A' && c <= 'Z';
      const bool lower_c = c >= 'a' && c <= 'z';
      word[c] = digit || upper || lower_c;
      lower[c] = static_cast<char>(upper ? c - 'A' + 'a' : c);
    }
  }
};

inline constexpr ByteTables kTables{};

}  // namespace detail

inline bool is_word_byte(char c) {
  return detail::kTables.word[static_cast<std::uint8_t>(c)];
}

inline char to_lower_ascii(char c) {
  return detail::kTables.lower[static_cast<std::uint8_t>(c)];
}

// Index of the first word byte at or after `from` (hay.size() when none):
// skips delimiter runs eight bytes per step by checking the table on a
// loaded word only when any of its bytes might classify as a word byte.
// Word bytes all sit in 0x30..0x7a, so a cheap SWAR pre-filter — "does this
// word contain any byte in [0x30, 0x7b)?" — rejects whole blocks of spaces,
// punctuation and control bytes without per-byte table loads.
inline std::size_t find_word_start(std::span<const char> hay,
                                   std::size_t from) {
  const char* data = hay.data();
  const std::size_t n = hay.size();
  std::size_t i = from;
  for (; i + 8 <= n; i += 8) {
    const std::uint64_t w = detail::load_u64(data + i);
    // Byte-wise x in [0x30, 0x7b) test, high bit folded in: bytes >= 0x80
    // never classify as word bytes, and the range arithmetic below is only
    // valid for 7-bit values, so mask them out of the candidate set first.
    const std::uint64_t ascii = ~w & detail::kHighBits;
    const std::uint64_t ge_30 =
        ((w | detail::kHighBits) - detail::kLowBits * 0x30) & ascii;
    const std::uint64_t lt_7b =
        ((detail::kLowBits * 0x7b) | detail::kHighBits) - (w & ~detail::kHighBits);
    if ((ge_30 & lt_7b & detail::kHighBits) == 0) continue;  // no candidates
    for (std::size_t k = 0; k < 8; ++k) {
      if (is_word_byte(data[i + k])) return i + k;
    }
    // Candidates were false positives (e.g. ':', '@'): keep scanning.
  }
  for (; i < n; ++i) {
    if (is_word_byte(data[i])) return i;
  }
  return n;
}

// Index of the first non-word byte at or after `from` (hay.size() when the
// word runs to the end).
inline std::size_t find_word_end(std::span<const char> hay, std::size_t from) {
  std::size_t i = from;
  const std::size_t n = hay.size();
  for (; i < n; ++i) {
    if (!is_word_byte(hay[i])) return i;
  }
  return n;
}

}  // namespace supmr::scan
