#include "common/status.hpp"

namespace supmr {

std::string_view status_code_name(StatusCode code) {
  switch (code) {
    case StatusCode::kOk: return "OK";
    case StatusCode::kInvalidArgument: return "INVALID_ARGUMENT";
    case StatusCode::kNotFound: return "NOT_FOUND";
    case StatusCode::kOutOfRange: return "OUT_OF_RANGE";
    case StatusCode::kIoError: return "IO_ERROR";
    case StatusCode::kResourceExhausted: return "RESOURCE_EXHAUSTED";
    case StatusCode::kFailedPrecondition: return "FAILED_PRECONDITION";
    case StatusCode::kInternal: return "INTERNAL";
    case StatusCode::kUnimplemented: return "UNIMPLEMENTED";
  }
  return "UNKNOWN";
}

std::string Status::to_string() const {
  if (ok()) return "OK";
  std::string out(status_code_name(code_));
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace supmr
