// Minimal leveled logger.
//
// The runtime logs phase transitions and pipeline events at kInfo; inner-loop
// code must use kDebug (compiled in, filtered at runtime) so production runs
// pay one branch per suppressed message. Thread-safe: each message is
// formatted into a local buffer and written with a single fwrite.
#pragma once

#include <atomic>
#include <cstdarg>
#include <cstdio>
#include <string_view>

namespace supmr {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

class Logger {
 public:
  // Global minimum level; messages below it are dropped.
  static void set_level(LogLevel level) {
    level_.store(static_cast<int>(level), std::memory_order_relaxed);
  }
  static LogLevel level() {
    return static_cast<LogLevel>(level_.load(std::memory_order_relaxed));
  }
  static bool enabled(LogLevel level) {
    return static_cast<int>(level) >= level_.load(std::memory_order_relaxed);
  }

  // printf-style logging with a level tag and elapsed-time prefix.
  static void logf(LogLevel level, const char* fmt, ...)
      __attribute__((format(printf, 2, 3)));

 private:
  static std::atomic<int> level_;
};

#define SUPMR_LOG_DEBUG(...) \
  ::supmr::Logger::logf(::supmr::LogLevel::kDebug, __VA_ARGS__)
#define SUPMR_LOG_INFO(...) \
  ::supmr::Logger::logf(::supmr::LogLevel::kInfo, __VA_ARGS__)
#define SUPMR_LOG_WARN(...) \
  ::supmr::Logger::logf(::supmr::LogLevel::kWarn, __VA_ARGS__)
#define SUPMR_LOG_ERROR(...) \
  ::supmr::Logger::logf(::supmr::LogLevel::kError, __VA_ARGS__)

}  // namespace supmr
