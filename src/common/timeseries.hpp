// Multi-channel time series with CSV export and ASCII chart rendering.
//
// This is the data model behind every figure in the paper: a CPU-utilization
// trace is a time series with channels {user, sys, iowait} sampled on a fixed
// interval (the paper used collectl). Benches dump traces as CSV for plotting
// and render a stacked ASCII chart to stdout so the figure shape is visible
// in the terminal.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace supmr {

class TimeSeries {
 public:
  explicit TimeSeries(std::vector<std::string> channel_names);

  // Appends one sample row. `values` must have one entry per channel.
  void append(double t, const std::vector<double>& values);

  std::size_t channels() const { return names_.size(); }
  std::size_t samples() const { return times_.size(); }
  const std::string& channel_name(std::size_t c) const { return names_[c]; }
  double time(std::size_t i) const { return times_[i]; }
  double value(std::size_t i, std::size_t c) const {
    return values_[i * names_.size() + c];
  }

  // Sum of all channels at sample i (e.g. total CPU utilization).
  double row_sum(std::size_t i) const;

  // "t,user,sys,iowait\n0.0,12.5,3.1,80.0\n..."
  std::string to_csv() const;
  void write_csv(const std::string& path) const;

  // Renders a stacked area chart: rows = utilization 100%..0%, cols = time.
  // Each channel fills with its own glyph, bottom-up, in channel order.
  // `height` excludes axes. Suitable for terminal display of the paper's
  // utilization figures.
  std::string to_ascii_chart(std::size_t width = 100, std::size_t height = 20,
                             double y_max = 100.0) const;

 private:
  std::vector<std::string> names_;
  std::vector<double> times_;
  std::vector<double> values_;  // row-major samples x channels
};

}  // namespace supmr
