#include "common/units.hpp"

#include <array>
#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>

namespace supmr {

namespace {

struct Suffix {
  const char* name;
  std::uint64_t mult;
};

// Longest-match first so "MiB" is not parsed as "M" + trailing junk.
constexpr std::array<Suffix, 18> kSuffixes = {{
    {"KIB", kKiB}, {"MIB", kMiB}, {"GIB", kGiB}, {"TIB", 1024ULL * kGiB},
    {"KB", kKB},   {"MB", kMB},   {"GB", kGB},   {"TB", kTB},
    {"K", kKB},    {"M", kMB},    {"G", kGB},    {"T", kTB},
    {"B", 1},      {"", 1},
    // Lowercase single letters commonly seen in CLI flags.
    {"KI", kKiB},  {"MI", kMiB},  {"GI", kGiB},  {"TI", 1024ULL * kGiB},
}};

}  // namespace

std::string format_bytes(std::uint64_t bytes) {
  char buf[64];
  if (bytes >= kTB) {
    std::snprintf(buf, sizeof(buf), "%.2fTB", double(bytes) / double(kTB));
  } else if (bytes >= kGB) {
    std::snprintf(buf, sizeof(buf), "%.2fGB", double(bytes) / double(kGB));
  } else if (bytes >= kMB) {
    std::snprintf(buf, sizeof(buf), "%.2fMB", double(bytes) / double(kMB));
  } else if (bytes >= kKB) {
    std::snprintf(buf, sizeof(buf), "%.2fKB", double(bytes) / double(kKB));
  } else {
    std::snprintf(buf, sizeof(buf), "%lluB",
                  static_cast<unsigned long long>(bytes));
  }
  return buf;
}

std::string format_rate(double bytes_per_sec) {
  char buf[64];
  if (bytes_per_sec >= double(kGB)) {
    std::snprintf(buf, sizeof(buf), "%.1f GB/s", bytes_per_sec / double(kGB));
  } else if (bytes_per_sec >= double(kMB)) {
    std::snprintf(buf, sizeof(buf), "%.1f MB/s", bytes_per_sec / double(kMB));
  } else if (bytes_per_sec >= double(kKB)) {
    std::snprintf(buf, sizeof(buf), "%.1f KB/s", bytes_per_sec / double(kKB));
  } else {
    std::snprintf(buf, sizeof(buf), "%.1f B/s", bytes_per_sec);
  }
  return buf;
}

std::string format_duration(double seconds) {
  char buf[64];
  if (seconds >= 1.0 || seconds == 0.0) {
    std::snprintf(buf, sizeof(buf), "%.2fs", seconds);
  } else if (seconds >= 1e-3) {
    std::snprintf(buf, sizeof(buf), "%.2fms", seconds * 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%.2fus", seconds * 1e6);
  }
  return buf;
}

std::optional<std::uint64_t> parse_size(std::string_view text) {
  // Trim whitespace.
  while (!text.empty() && std::isspace(static_cast<unsigned char>(text.front())))
    text.remove_prefix(1);
  while (!text.empty() && std::isspace(static_cast<unsigned char>(text.back())))
    text.remove_suffix(1);
  if (text.empty()) return std::nullopt;

  double value = 0.0;
  const char* begin = text.data();
  const char* end = begin + text.size();
  auto [ptr, ec] = std::from_chars(begin, end, value);
  if (ec != std::errc{} || ptr == begin) return std::nullopt;
  if (value < 0) return std::nullopt;

  std::string suffix;
  for (const char* p = ptr; p != end; ++p) {
    if (std::isspace(static_cast<unsigned char>(*p))) continue;
    suffix.push_back(static_cast<char>(std::toupper(static_cast<unsigned char>(*p))));
  }

  for (const auto& s : kSuffixes) {
    if (suffix == s.name) {
      double result = value * double(s.mult);
      if (result > 1.8e19) return std::nullopt;  // would overflow uint64
      return static_cast<std::uint64_t>(std::llround(result));
    }
  }
  return std::nullopt;
}

}  // namespace supmr
