#include "common/timeseries.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>

namespace supmr {

namespace {
// Glyphs per channel, bottom of the stack first.
constexpr char kGlyphs[] = {'#', '+', '.', '%', '*', 'o'};
}  // namespace

TimeSeries::TimeSeries(std::vector<std::string> channel_names)
    : names_(std::move(channel_names)) {
  assert(!names_.empty());
}

void TimeSeries::append(double t, const std::vector<double>& values) {
  assert(values.size() == names_.size());
  assert(times_.empty() || t >= times_.back());
  times_.push_back(t);
  values_.insert(values_.end(), values.begin(), values.end());
}

double TimeSeries::row_sum(std::size_t i) const {
  double s = 0.0;
  for (std::size_t c = 0; c < names_.size(); ++c) s += value(i, c);
  return s;
}

std::string TimeSeries::to_csv() const {
  std::string out = "t";
  for (const auto& n : names_) {
    out += ',';
    out += n;
  }
  out += '\n';
  char buf[64];
  for (std::size_t i = 0; i < samples(); ++i) {
    std::snprintf(buf, sizeof(buf), "%.6g", times_[i]);
    out += buf;
    for (std::size_t c = 0; c < names_.size(); ++c) {
      std::snprintf(buf, sizeof(buf), ",%.6g", value(i, c));
      out += buf;
    }
    out += '\n';
  }
  return out;
}

void TimeSeries::write_csv(const std::string& path) const {
  std::ofstream f(path);
  f << to_csv();
}

std::string TimeSeries::to_ascii_chart(std::size_t width, std::size_t height,
                                       double y_max) const {
  if (samples() == 0) return "(empty trace)\n";
  const double t0 = times_.front();
  const double t1 = std::max(times_.back(), t0 + 1e-9);

  // For each column, average each channel over the samples that fall in it.
  std::vector<double> col_vals(width * channels(), 0.0);
  std::vector<std::size_t> col_n(width, 0);
  for (std::size_t i = 0; i < samples(); ++i) {
    double x = (times_[i] - t0) / (t1 - t0);
    auto col = std::min(static_cast<std::size_t>(x * double(width)), width - 1);
    for (std::size_t c = 0; c < channels(); ++c)
      col_vals[col * channels() + c] += value(i, c);
    ++col_n[col];
  }
  // Forward-fill empty columns from the previous column for a continuous look.
  for (std::size_t col = 0; col < width; ++col) {
    if (col_n[col] > 0) {
      for (std::size_t c = 0; c < channels(); ++c)
        col_vals[col * channels() + c] /= double(col_n[col]);
    } else if (col > 0) {
      for (std::size_t c = 0; c < channels(); ++c)
        col_vals[col * channels() + c] = col_vals[(col - 1) * channels() + c];
    }
  }

  std::vector<std::string> grid(height, std::string(width, ' '));
  for (std::size_t col = 0; col < width; ++col) {
    double cum = 0.0;
    for (std::size_t c = 0; c < channels(); ++c) {
      const double v = col_vals[col * channels() + c];
      const std::size_t from = static_cast<std::size_t>(
          std::round(cum / y_max * double(height)));
      cum += v;
      const std::size_t to = std::min(
          static_cast<std::size_t>(std::round(cum / y_max * double(height))),
          height);
      const char g = kGlyphs[c % sizeof(kGlyphs)];
      for (std::size_t r = from; r < to; ++r)
        grid[height - 1 - r][col] = g;  // row 0 is the top of the chart
    }
  }

  std::string out;
  char label[64];
  for (std::size_t r = 0; r < height; ++r) {
    const double y = y_max * double(height - r) / double(height);
    std::snprintf(label, sizeof(label), "%5.0f |", y);
    out += label;
    out += grid[r];
    out += '\n';
  }
  out += "      +";
  out.append(width, '-');
  out += '\n';
  std::snprintf(label, sizeof(label), "%.1fs", t0);
  std::string axis = "      ";
  axis += label;
  std::snprintf(label, sizeof(label), "%.1fs", t1);
  const std::size_t axis_target = 7 + width;
  if (axis.size() + std::strlen(label) < axis_target) {
    axis.append(axis_target - axis.size() - std::strlen(label), ' ');
  }
  axis += label;
  out += axis;
  out += '\n';
  out += "      legend:";
  for (std::size_t c = 0; c < channels(); ++c) {
    out += ' ';
    out += kGlyphs[c % sizeof(kGlyphs)];
    out += '=' ;
    out += names_[c];
  }
  out += '\n';
  return out;
}

}  // namespace supmr
