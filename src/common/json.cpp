#include "common/json.hpp"

#include <cmath>
#include <cstdio>

namespace supmr {

void JsonWriter::value(double v) {
  comma();
  char buf[40];
  if (std::isfinite(v)) {
    std::snprintf(buf, sizeof(buf), "%.9g", v);
  } else {
    // JSON has no inf/nan; emit null like most serializers.
    std::snprintf(buf, sizeof(buf), "null");
  }
  out_ += buf;
}

void JsonWriter::value(std::uint64_t v) {
  comma();
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%llu", static_cast<unsigned long long>(v));
  out_ += buf;
}

void JsonWriter::value(std::int64_t v) {
  comma();
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
  out_ += buf;
}

void JsonWriter::append_string(std::string_view s) {
  out_ += '"';
  for (unsigned char c : s) {
    switch (c) {
      case '"': out_ += "\\\""; break;
      case '\\': out_ += "\\\\"; break;
      case '\n': out_ += "\\n"; break;
      case '\r': out_ += "\\r"; break;
      case '\t': out_ += "\\t"; break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out_ += buf;
        } else {
          out_ += static_cast<char>(c);
        }
    }
  }
  out_ += '"';
}

}  // namespace supmr
