// Lightweight Status / StatusOr error-handling types.
//
// SupMR substrates (storage devices, chunk readers, workload generators)
// report recoverable failures through Status rather than exceptions so the
// hot ingest path stays allocation- and throw-free on success.
#pragma once

#include <cassert>
#include <string>
#include <string_view>
#include <utility>
#include <variant>

namespace supmr {

enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kOutOfRange,
  kIoError,
  kResourceExhausted,
  kFailedPrecondition,
  kInternal,
  kUnimplemented,
};

std::string_view status_code_name(StatusCode code);

// A success/error result with an optional message. Cheap to copy on success
// (no allocation: message is empty).
class [[nodiscard]] Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string m) {
    return Status(StatusCode::kInvalidArgument, std::move(m));
  }
  static Status NotFound(std::string m) {
    return Status(StatusCode::kNotFound, std::move(m));
  }
  static Status OutOfRange(std::string m) {
    return Status(StatusCode::kOutOfRange, std::move(m));
  }
  static Status IoError(std::string m) {
    return Status(StatusCode::kIoError, std::move(m));
  }
  static Status ResourceExhausted(std::string m) {
    return Status(StatusCode::kResourceExhausted, std::move(m));
  }
  static Status FailedPrecondition(std::string m) {
    return Status(StatusCode::kFailedPrecondition, std::move(m));
  }
  static Status Internal(std::string m) {
    return Status(StatusCode::kInternal, std::move(m));
  }
  static Status Unimplemented(std::string m) {
    return Status(StatusCode::kUnimplemented, std::move(m));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  // "OK" or "IO_ERROR: short read at offset 42".
  std::string to_string() const;

 private:
  StatusCode code_;
  std::string message_;
};

// Either a value of T or an error Status. Use `ok()` before dereferencing.
template <typename T>
class [[nodiscard]] StatusOr {
 public:
  StatusOr(T value) : rep_(std::move(value)) {}          // NOLINT(runtime/explicit)
  StatusOr(Status status) : rep_(std::move(status)) {    // NOLINT(runtime/explicit)
    assert(!std::get<Status>(rep_).ok() &&
           "StatusOr constructed from OK status without a value");
  }

  bool ok() const { return std::holds_alternative<T>(rep_); }

  const Status& status() const {
    static const Status ok_status;
    if (ok()) return ok_status;
    return std::get<Status>(rep_);
  }

  T& value() & {
    assert(ok());
    return std::get<T>(rep_);
  }
  const T& value() const& {
    assert(ok());
    return std::get<T>(rep_);
  }
  T&& value() && {
    assert(ok());
    return std::get<T>(std::move(rep_));
  }

  T& operator*() & { return value(); }
  const T& operator*() const& { return value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

 private:
  std::variant<T, Status> rep_;
};

// Propagates a non-OK status to the caller.
#define SUPMR_RETURN_IF_ERROR(expr)            \
  do {                                         \
    ::supmr::Status _st = (expr);              \
    if (!_st.ok()) return _st;                 \
  } while (0)

// Evaluates a StatusOr expression; on error returns its status, otherwise
// assigns the value to `lhs`. `lhs` may be a declaration.
#define SUPMR_ASSIGN_OR_RETURN(lhs, expr)                   \
  SUPMR_ASSIGN_OR_RETURN_IMPL_(                             \
      SUPMR_STATUS_CONCAT_(_status_or, __LINE__), lhs, expr)
#define SUPMR_STATUS_CONCAT_INNER_(a, b) a##b
#define SUPMR_STATUS_CONCAT_(a, b) SUPMR_STATUS_CONCAT_INNER_(a, b)
#define SUPMR_ASSIGN_OR_RETURN_IMPL_(var, lhs, expr) \
  auto var = (expr);                                 \
  if (!var.ok()) return var.status();                \
  lhs = std::move(var).value()

}  // namespace supmr
