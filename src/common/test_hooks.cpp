#include "common/test_hooks.hpp"

#include <cstdlib>
#include <string>

namespace supmr {

bool test_mutation_enabled(std::string_view name) {
  static const std::string active = [] {
    const char* v = std::getenv("SUPMR_TEST_MUTATION");
    return std::string(v == nullptr ? "" : v);
  }();
  return !active.empty() && active == name;
}

}  // namespace supmr
