// Deterministic random number generation for workload synthesis.
//
// Workload generators must be reproducible across runs and machines, so we
// ship our own xoshiro256** implementation instead of relying on
// implementation-defined std::default_random_engine behaviour. The Zipf
// sampler backs the text-corpus generator (natural-language word frequencies
// follow a Zipf distribution, which is what makes word count's hash container
// effective in the paper).
#pragma once

#include <cassert>
#include <cstdint>
#include <vector>

namespace supmr {

// SplitMix64: used to seed xoshiro from a single 64-bit seed.
inline std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

// xoshiro256** — fast, high-quality, 2^256-1 period.
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  explicit Xoshiro256(std::uint64_t seed = 0x5eed5eed5eed5eedULL) {
    std::uint64_t sm = seed;
    for (auto& s : s_) s = splitmix64(sm);
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }

  result_type operator()() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  // Uniform in [0, bound). Debiased via rejection (Lemire-style threshold
  // skipped for simplicity; modulo bias is negligible for bound << 2^64 but
  // we reject the tail to stay exact).
  std::uint64_t uniform(std::uint64_t bound) {
    assert(bound > 0);
    const std::uint64_t limit = max() - max() % bound;
    std::uint64_t v;
    do {
      v = (*this)();
    } while (v >= limit);
    return v % bound;
  }

  // Uniform in [lo, hi] inclusive.
  std::uint64_t uniform_range(std::uint64_t lo, std::uint64_t hi) {
    assert(lo <= hi);
    return lo + uniform(hi - lo + 1);
  }

  // Uniform double in [0, 1).
  double uniform_double() {
    return double((*this)() >> 11) * 0x1.0p-53;
  }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t s_[4];
};

// Zipf(s, n) sampler over ranks {0, ..., n-1} using a precomputed inverse
// CDF table with binary search. O(n) setup, O(log n) per sample.
class ZipfSampler {
 public:
  // s: skew exponent (s=1.0 approximates natural text). n: support size.
  ZipfSampler(double skew, std::size_t n);

  // Returns a rank in [0, n); rank 0 is the most frequent.
  std::size_t operator()(Xoshiro256& rng) const;

  std::size_t support() const { return cdf_.size(); }

 private:
  std::vector<double> cdf_;
};

}  // namespace supmr
