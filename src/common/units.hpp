// Byte-size and rate units, parsing and human-readable formatting.
//
// SupMR deals in large byte counts (chunk sizes, dataset sizes) and
// bandwidths (disk/link models). This header centralizes the conventions:
// decimal units (GB = 1e9) match the paper's usage ("155GB", "384 MB/s");
// binary units (GiB) are also accepted by the parser.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace supmr {

inline constexpr std::uint64_t kKB = 1000ULL;
inline constexpr std::uint64_t kMB = 1000ULL * kKB;
inline constexpr std::uint64_t kGB = 1000ULL * kMB;
inline constexpr std::uint64_t kTB = 1000ULL * kGB;

inline constexpr std::uint64_t kKiB = 1024ULL;
inline constexpr std::uint64_t kMiB = 1024ULL * kKiB;
inline constexpr std::uint64_t kGiB = 1024ULL * kMiB;

// Formats a byte count as e.g. "1.50GB", "64B", "512.00MB".
std::string format_bytes(std::uint64_t bytes);

// Formats a rate as e.g. "384.0 MB/s".
std::string format_rate(double bytes_per_sec);

// Formats seconds as e.g. "403.90s" or "1.2ms" for small values.
std::string format_duration(double seconds);

// Parses "1GB", "512MiB", "64k", "100" (bytes), case-insensitive.
// Returns nullopt on malformed input or overflow.
std::optional<std::uint64_t> parse_size(std::string_view text);

}  // namespace supmr
