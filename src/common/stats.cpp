#include "common/stats.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdio>

namespace supmr {

double RunningStats::stddev() const { return std::sqrt(variance()); }

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), counts_(bins, 0) {
  assert(hi > lo && bins > 0);
}

void Histogram::add(double x, std::uint64_t weight) {
  const double t = (x - lo_) / (hi_ - lo_);
  std::size_t idx;
  if (t < 0.0) {
    idx = 0;
  } else if (t >= 1.0) {
    idx = counts_.size() - 1;
  } else {
    idx = static_cast<std::size_t>(t * double(counts_.size()));
    idx = std::min(idx, counts_.size() - 1);
  }
  counts_[idx] += weight;
  total_ += weight;
}

double Histogram::bin_lo(std::size_t i) const {
  return lo_ + (hi_ - lo_) * double(i) / double(counts_.size());
}

double Histogram::bin_hi(std::size_t i) const {
  return lo_ + (hi_ - lo_) * double(i + 1) / double(counts_.size());
}

double Histogram::percentile(double p) const {
  if (total_ == 0) return lo_;
  p = std::clamp(p, 0.0, 100.0);
  const double target = p / 100.0 * double(total_);
  double cum = 0.0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const double next = cum + double(counts_[i]);
    if (next >= target) {
      const double frac =
          counts_[i] ? (target - cum) / double(counts_[i]) : 0.0;
      return bin_lo(i) + frac * (bin_hi(i) - bin_lo(i));
    }
    cum = next;
  }
  return hi_;
}

std::string Histogram::to_ascii(std::size_t width) const {
  std::uint64_t peak = 1;
  for (auto c : counts_) peak = std::max(peak, c);
  std::string out;
  char line[256];
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const std::size_t bar =
        static_cast<std::size_t>(double(counts_[i]) / double(peak) * double(width));
    std::snprintf(line, sizeof(line), "[%10.3f, %10.3f) %8llu |", bin_lo(i),
                  bin_hi(i), static_cast<unsigned long long>(counts_[i]));
    out += line;
    out.append(bar, '#');
    out += '\n';
  }
  return out;
}

}  // namespace supmr
