// Streaming statistics and histograms.
//
// Used by the benchmark harness (multi-run averaging, as the paper averages
// 3 runs) and by the utilization tracer (aggregate utilization per phase).
#pragma once

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

namespace supmr {

// Welford's online mean/variance. Numerically stable for long streams.
class RunningStats {
 public:
  void add(double x) {
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / double(n_);
    m2_ += delta * (x - mean_);
    if (x < min_) min_ = x;
    if (x > max_) max_ = x;
  }

  std::uint64_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  double variance() const { return n_ > 1 ? m2_ / double(n_ - 1) : 0.0; }
  double stddev() const;
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }
  double sum() const { return mean_ * double(n_); }

 private:
  std::uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

// Fixed-bin histogram over [lo, hi); out-of-range samples clamp to the edge
// bins so totals are conserved.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x, std::uint64_t weight = 1);

  std::uint64_t total() const { return total_; }
  std::size_t bins() const { return counts_.size(); }
  std::uint64_t bin_count(std::size_t i) const { return counts_[i]; }
  double bin_lo(std::size_t i) const;
  double bin_hi(std::size_t i) const;

  // Linear-interpolated percentile estimate, p in [0, 100].
  double percentile(double p) const;

  // Multi-line ASCII rendering (one row per bin with a bar).
  std::string to_ascii(std::size_t width = 50) const;

 private:
  double lo_, hi_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
};

}  // namespace supmr
