#include "common/logging.hpp"

#include <chrono>
#include <cstring>

namespace supmr {

std::atomic<int> Logger::level_{static_cast<int>(LogLevel::kWarn)};

namespace {

const char* level_tag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO ";
    case LogLevel::kWarn: return "WARN ";
    case LogLevel::kError: return "ERROR";
    default: return "?????";
  }
}

double elapsed_seconds() {
  using clock = std::chrono::steady_clock;
  static const clock::time_point start = clock::now();
  return std::chrono::duration<double>(clock::now() - start).count();
}

}  // namespace

void Logger::logf(LogLevel level, const char* fmt, ...) {
  if (!enabled(level)) return;
  char buf[2048];
  int off = std::snprintf(buf, sizeof(buf), "[%9.3f] %s ", elapsed_seconds(),
                          level_tag(level));
  if (off < 0) return;
  va_list args;
  va_start(args, fmt);
  int n = std::vsnprintf(buf + off, sizeof(buf) - static_cast<size_t>(off) - 2,
                         fmt, args);
  va_end(args);
  if (n < 0) return;
  size_t len = static_cast<size_t>(off) +
               std::min(static_cast<size_t>(n), sizeof(buf) - static_cast<size_t>(off) - 2);
  buf[len++] = '\n';
  std::fwrite(buf, 1, len, stderr);
}

}  // namespace supmr
