// Minimal JSON writer.
//
// Benches and the CLI export structured results (phase breakdowns, traces)
// for downstream tooling. Writer-only — the repo never parses JSON — with
// proper string escaping and locale-independent number formatting.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace supmr {

class JsonWriter {
 public:
  // Nested objects/arrays are driven by begin/end calls; the writer tracks
  // comma placement. Keys are only valid inside objects.
  void begin_object() { open('{'); }
  void end_object() { close('}'); }
  void begin_array() { open('['); }
  void end_array() { close(']'); }

  void key(std::string_view name) {
    comma();
    append_string(name);
    out_ += ':';
    just_keyed_ = true;
  }

  void value(std::string_view s) {
    comma();
    append_string(s);
  }
  void value(const char* s) { value(std::string_view(s)); }
  void value(double v);
  void value(std::uint64_t v);
  void value(std::int64_t v);
  void value(int v) { value(std::int64_t{v}); }
  void value(bool b) {
    comma();
    out_ += b ? "true" : "false";
  }

  // key+value conveniences.
  template <typename T>
  void kv(std::string_view name, const T& v) {
    key(name);
    value(v);
  }

  const std::string& str() const { return out_; }

 private:
  void comma() {
    if (just_keyed_) {
      just_keyed_ = false;
      return;
    }
    if (need_comma_) out_ += ',';
    need_comma_ = true;
  }
  void open(char c) {
    comma();
    out_ += c;
    need_comma_ = false;
  }
  void close(char c) {
    out_ += c;
    need_comma_ = true;
    just_keyed_ = false;
  }
  void append_string(std::string_view s);

  std::string out_;
  bool need_comma_ = false;
  bool just_keyed_ = false;
};

}  // namespace supmr
