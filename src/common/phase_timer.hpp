// Job-phase accounting: the Table II data model.
//
// The paper breaks a job into read / map / reduce / merge phases plus a
// total (which also covers setup/cleanup, so the columns need not sum to the
// total — we keep that property). SupMR-mode runs overlap read and map, so
// they report a combined read+map time; `has_combined_readmap` records which
// reporting mode a breakdown is in.
//
// PhaseClock measures real (wall-clock) runs with microsecond granularity,
// mirroring the Phoenix++ internal timing functions the paper used. The
// simulated executor fills a PhaseBreakdown directly from virtual time.
#pragma once

#include <chrono>
#include <cstdint>
#include <string>
#include <string_view>

namespace supmr {

enum class Phase : int {
  kRead = 0,
  kMap = 1,
  kReduce = 2,
  kMerge = 3,
  kSetup = 4,
  kCleanup = 5,
};
inline constexpr int kNumPhases = 6;

std::string_view phase_name(Phase p);

struct PhaseBreakdown {
  double read_s = 0.0;
  double map_s = 0.0;
  // In SupMR (chunked) mode read and map overlap; their combined wall time is
  // reported here and read_s/map_s hold the non-overlapped components.
  double readmap_s = 0.0;
  bool has_combined_readmap = false;
  double reduce_s = 0.0;
  double merge_s = 0.0;
  double setup_s = 0.0;
  double cleanup_s = 0.0;
  double total_s = 0.0;

  std::uint64_t input_bytes = 0;
  // How many ingest chunks the plan had. Always the real count, even in the
  // original (unchunked) runtime where all chunks are read up front —
  // `chunked` records which presentation the run used, so reports no longer
  // zero this out to mean "unchunked".
  std::uint64_t num_chunks = 0;
  bool chunked = false;  // true when the ingest chunk pipeline ran
  std::uint64_t map_rounds = 0;
  std::uint64_t merge_rounds = 0;

  double& phase_ref(Phase p);

  // One Table-II-style row, e.g.
  // "  1GB     | 272.58s | [read+map 196.86s] | 9.04s | 61.14s".
  std::string to_table_row(const std::string& label) const;

  // Header matching to_table_row's columns.
  static std::string table_header();
};

// Accumulating stopwatch over named phases (wall clock). Misuse — double
// start, stop without a matching start — is a logged no-op in every build
// (never an assert), so release binaries cannot silently corrupt timings.
class PhaseClock {
 public:
  PhaseClock();

  void start(Phase p);
  // Stops the phase started by the matching start(); adds the elapsed time.
  void stop(Phase p);

  // Marks the whole-job interval.
  void start_total();
  void stop_total();

  double elapsed(Phase p) const { return acc_[static_cast<int>(p)]; }
  double total() const { return total_; }

  // Seconds since start_total(), while running.
  double now_since_start() const;

  // Snapshot into a PhaseBreakdown (read/map reported separately).
  PhaseBreakdown snapshot() const;

 private:
  using clock = std::chrono::steady_clock;
  double acc_[kNumPhases] = {};
  clock::time_point started_[kNumPhases] = {};
  bool running_[kNumPhases] = {};
  clock::time_point total_start_{};
  double total_ = 0.0;
  bool total_running_ = false;
};

}  // namespace supmr
