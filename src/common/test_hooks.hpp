// Seeded fault-injection points for the conformance harness's mutation
// smoke (docs/testing.md).
//
// A mutation hook is a named branch that, when SUPMR_TEST_MUTATION names it,
// deliberately corrupts one semantic decision (a comparator direction, a
// partition routing) so the e2e differential harness can prove it actually
// detects such bugs. Production behaviour is untouched: the environment
// variable is read once, and call sites cache the answer in a function-local
// static, so the cost on the hot path is one predictable branch.
#pragma once

#include <string_view>

namespace supmr {

// True when the SUPMR_TEST_MUTATION environment variable exactly names this
// mutation point. The variable is sampled once per process (mutations are a
// whole-run property — flipping mid-run would make failures unreproducible).
bool test_mutation_enabled(std::string_view name);

}  // namespace supmr
