// Table-driven enum <-> string mapping.
//
// Every user-facing enum (ExecMode, MergeMode, IoMode, corpus kind, graph
// handoff mode) used to carry its own hand-rolled switch for the name
// direction and an if-chain per parser (CLI flags, ReplaySpec, serve spec).
// The chains drifted independently — adding an enumerator meant finding
// every copy. Now each enum declares ONE constexpr table next to its
// definition and every direction goes through these two helpers; the graph
// spec parser, the CLI, and both JSON spec readers share the same tables.
//
//   inline constexpr EnumName<ExecMode> kExecModeNames[] = {
//       {ExecMode::kOriginal, "original"}, ...};
//   enum_to_name(kExecModeNames, mode)           -> "original"
//   enum_from_name(kExecModeNames, s, "exec mode") -> StatusOr<ExecMode>
//
// enum_from_name's error lists the accepted names, so a typo in a spec or
// flag tells the user what would have worked.
#pragma once

#include <cstddef>
#include <string>
#include <string_view>

#include "common/status.hpp"

namespace supmr {

template <typename E>
struct EnumName {
  E value;
  std::string_view name;
};

template <typename E, std::size_t N>
constexpr std::string_view enum_to_name(const EnumName<E> (&table)[N],
                                        E value) {
  for (const EnumName<E>& entry : table) {
    if (entry.value == value) return entry.name;
  }
  return "unknown";
}

template <typename E, std::size_t N>
StatusOr<E> enum_from_name(const EnumName<E> (&table)[N],
                           std::string_view name, std::string_view what) {
  for (const EnumName<E>& entry : table) {
    if (entry.name == name) return entry.value;
  }
  std::string accepted;
  for (const EnumName<E>& entry : table) {
    if (!accepted.empty()) accepted += "|";
    accepted += std::string(entry.name);
  }
  return Status::InvalidArgument("unknown " + std::string(what) + ": " +
                                 std::string(name) + " (want " + accepted +
                                 ")");
}

}  // namespace supmr
