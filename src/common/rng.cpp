#include "common/rng.hpp"

#include <algorithm>
#include <cmath>

namespace supmr {

ZipfSampler::ZipfSampler(double skew, std::size_t n) {
  assert(n > 0);
  cdf_.resize(n);
  double sum = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    sum += 1.0 / std::pow(double(i + 1), skew);
    cdf_[i] = sum;
  }
  for (auto& c : cdf_) c /= sum;
  cdf_.back() = 1.0;  // guard against rounding
}

std::size_t ZipfSampler::operator()(Xoshiro256& rng) const {
  const double u = rng.uniform_double();
  auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  if (it == cdf_.end()) --it;
  return static_cast<std::size_t>(it - cdf_.begin());
}

}  // namespace supmr
