#include "fault/retry_policy.hpp"

#include <algorithm>
#include <thread>

namespace supmr::fault {

void backoff_sleep(double seconds, const std::atomic<bool>* cancel) {
  using clock = std::chrono::steady_clock;
  const auto until =
      clock::now() + std::chrono::duration_cast<clock::duration>(
                         std::chrono::duration<double>(seconds));
  constexpr auto kSlice = std::chrono::milliseconds(5);
  while (true) {
    if (cancel != nullptr && cancel->load(std::memory_order_acquire)) return;
    const auto now = clock::now();
    if (now >= until) return;
    const auto remaining = until - now;
    std::this_thread::sleep_for(
        remaining < clock::duration(kSlice) ? remaining
                                            : clock::duration(kSlice));
  }
}

}  // namespace supmr::fault
