// Retry policy: how a transient I/O failure is retried before it becomes
// permanent.
//
// The paper's pipeline assumes a flawless 384 MB/s RAID-0; a production
// scale-up deployment sees transient device hiccups (command timeouts,
// remote-block re-replication, loaded NFS servers) that are cheaper to
// absorb with a bounded re-read than with a whole-job restart — the same
// node-local-recovery argument the in-node combining literature makes
// (PAPERS.md: Lee et al., arXiv:1511.04861), applied at chunk granularity
// like OS4M's sub-task rescheduling (Fan et al., arXiv:1406.3901).
//
// RetryPolicy is pure data (copyable, defaults mean "no retries" so every
// existing call path keeps its fail-fast behaviour). RetrySession is the
// per-logical-operation state machine: it decides, after each failed
// attempt, whether to retry and how long to back off. Backoff grows
// exponentially and is jittered by a seeded xoshiro stream, so two readers
// that fail together do not re-hammer the device in lockstep and every run
// is replayable from the seed.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <optional>

#include "common/rng.hpp"
#include "common/status.hpp"

namespace supmr::fault {

struct RetryPolicy {
  // Total attempts for one logical read, including the first. 1 = fail
  // fast (the pre-fault-layer behaviour, and the default everywhere).
  std::uint32_t max_attempts = 1;
  // Wait before the first retry; each further retry multiplies by
  // backoff_mult, capped at backoff_max_s.
  double backoff_base_s = 0.001;
  double backoff_mult = 2.0;
  double backoff_max_s = 0.250;
  // Fraction of each backoff randomized away: the wait is uniform in
  // [b * (1 - jitter), b]. 0 = deterministic, 1 = full jitter.
  double jitter = 0.5;
  // Wall-clock budget for one logical read including all retries and
  // backoff waits. 0 = unlimited. When the budget would be exceeded the
  // session gives up even if attempts remain — this is what bounds how
  // long a permanently poisoned read can wedge a job.
  double read_deadline_s = 0.0;
  // Seed for the jitter stream; sessions derive per-operation streams so
  // concurrent readers stay decorrelated but replayable.
  std::uint64_t seed = 0x5eedfa17ULL;

  // True when the policy can change behaviour over fail-fast.
  bool enabled() const { return max_attempts > 1 || read_deadline_s > 0.0; }
};

// Which failures are worth retrying: device-level I/O errors and transient
// resource exhaustion. Everything else (bad arguments, corrupt internal
// state, unimplemented paths) fails immediately regardless of policy.
inline bool retryable(const Status& status) {
  return status.code() == StatusCode::kIoError ||
         status.code() == StatusCode::kResourceExhausted;
}

// Per-operation retry state: attempt counter, deadline clock, jitter RNG.
// Not thread-safe; create one per logical operation (its construction is two
// clock reads and a splitmix seeding — cheap enough for the error path).
class RetrySession {
 public:
  // `stream` decorrelates concurrent sessions under one policy (callers
  // pass a chunk index or a monotonic operation id).
  RetrySession(const RetryPolicy& policy, std::uint64_t stream)
      : policy_(policy),
        rng_(policy.seed ^ (stream * 0x9e3779b97f4a7c15ULL)),
        start_(std::chrono::steady_clock::now()) {}

  // Records one failed attempt. Returns the backoff wait (seconds) before
  // the next attempt, or nullopt when the operation must give up: the
  // failure is not retryable, attempts are exhausted, or waiting would
  // blow the read deadline.
  std::optional<double> next_backoff(const Status& failure) {
    ++failed_attempts_;
    if (!retryable(failure)) return std::nullopt;
    if (failed_attempts_ >= policy_.max_attempts) return std::nullopt;
    double wait = policy_.backoff_base_s;
    for (std::uint32_t i = 1; i < failed_attempts_; ++i) {
      wait *= policy_.backoff_mult;
      if (wait >= policy_.backoff_max_s) break;
    }
    wait = std::min(wait, policy_.backoff_max_s);
    if (policy_.jitter > 0.0) {
      const double floor = wait * (1.0 - std::min(policy_.jitter, 1.0));
      wait = floor + (wait - floor) * rng_.uniform_double();
    }
    if (policy_.read_deadline_s > 0.0 &&
        elapsed_s() + wait >= policy_.read_deadline_s) {
      deadline_expired_ = true;
      return std::nullopt;
    }
    return wait;
  }

  std::uint32_t failed_attempts() const { return failed_attempts_; }
  bool deadline_expired() const { return deadline_expired_; }

  double elapsed_s() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start_)
        .count();
  }

  // Final status annotation: what the retry layer adds to an error that
  // survived it ("... [fault: gave up after 4 attempts]").
  Status annotate(const Status& failure) const {
    std::string why = deadline_expired_
                          ? "read deadline exceeded"
                          : (failed_attempts_ > 1 ? "gave up after retries"
                                                  : "not retried");
    return Status(failure.code(),
                  failure.message() + " [fault: " + why + ", " +
                      std::to_string(failed_attempts_) + " attempt(s)]");
  }

 private:
  RetryPolicy policy_;  // by value: a session must outlive any temporary
  Xoshiro256 rng_;
  std::chrono::steady_clock::time_point start_;
  std::uint32_t failed_attempts_ = 0;
  bool deadline_expired_ = false;
};

// Sleeps for `seconds`, waking early when `cancel` flips true. Sleeps in
// small slices so a cancelled pipeline never waits out a long backoff.
void backoff_sleep(double seconds, const std::atomic<bool>* cancel);

// Chunk-level recovery configuration carried through JobConfig into the
// ingest pipelines.
struct Recovery {
  RetryPolicy policy;
  // When a chunk read fails permanently (retries/deadline exhausted), skip
  // the chunk and account for it instead of failing the job. Only
  // retryable failures are skippable; planning errors still fail the job.
  bool degrade = false;

  bool enabled() const { return policy.enabled() || degrade; }
};

}  // namespace supmr::fault
