#include "fault/retrying_device.hpp"

#include "obs/macros.hpp"

namespace supmr::fault {

StatusOr<std::size_t> RetryingDevice::read_at(std::uint64_t offset,
                                              std::span<char> out) const {
  RetrySession session(policy_,
                       ops_.fetch_add(1, std::memory_order_relaxed));
  while (true) {
    StatusOr<std::size_t> result = base_->read_at(offset, out);
    if (result.ok()) return result;

    const std::optional<double> wait = session.next_backoff(result.status());
    if (!wait.has_value()) {
      if (session.deadline_expired()) {
        deadline_expired_.fetch_add(1, std::memory_order_relaxed);
        SUPMR_COUNTER_ADD("storage.read_deadline_expired", 1);
      }
      if (session.failed_attempts() > 1 || session.deadline_expired()) {
        exhausted_.fetch_add(1, std::memory_order_relaxed);
        SUPMR_COUNTER_ADD("storage.retry_exhausted", 1);
        return session.annotate(result.status());
      }
      return result;  // fail-fast policy or non-retryable error: untouched
    }

    retries_.fetch_add(1, std::memory_order_relaxed);
    SUPMR_COUNTER_ADD("storage.retries", 1);
    SUPMR_HIST_OBSERVE("storage.backoff_wait_us", *wait * 1e6);
    SUPMR_TRACE_INSTANT_ARG("fault", "storage.retry", "attempt",
                            session.failed_attempts());
    backoff_sleep(*wait, nullptr);
  }
}

}  // namespace supmr::fault
