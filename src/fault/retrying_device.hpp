// RetryingDevice: the storage-level retry seam.
//
// Wraps any storage::Device and re-issues failed positional reads under a
// RetryPolicy: exponential seeded-jitter backoff between attempts, a
// per-read wall-clock deadline, and fail-fast for non-retryable errors.
// Because every byte source in the runtime — ingest chunk reads, record
// boundary probes, external-sort spill re-reads — goes through the Device
// seam, stacking this wrapper gives the whole job transient-fault survival
// without touching any reader (ARCHITECTURE §2).
//
// Thread-safe like every Device: concurrent read_at calls each run their
// own RetrySession (per-call jitter stream from an atomic op counter), so
// readers back off decorrelated.
//
// Observability (obs layer, PR 2): storage.retries / storage.retry_exhausted
// counters, storage.backoff_wait_us histogram, and a "fault" trace instant
// per retry.
#pragma once

#include <atomic>
#include <memory>

#include "fault/retry_policy.hpp"
#include "storage/device.hpp"

namespace supmr::fault {

class RetryingDevice final : public storage::Device {
 public:
  RetryingDevice(std::shared_ptr<const storage::Device> base,
                 RetryPolicy policy)
      : base_(std::move(base)), policy_(policy) {}

  // Non-owning wrap (stack-allocated bases in tests); `base` must outlive
  // this device.
  RetryingDevice(const storage::Device* base, RetryPolicy policy)
      : RetryingDevice(std::shared_ptr<const storage::Device>(
                           base, [](const storage::Device*) {}),
                       policy) {}

  StatusOr<std::size_t> read_at(std::uint64_t offset,
                                std::span<char> out) const override;

  std::uint64_t size() const override { return base_->size(); }
  std::string_view name() const override { return base_->name(); }
  storage::DeviceModel model() const override { return base_->model(); }

  const RetryPolicy& policy() const { return policy_; }

  // Retries issued (attempts beyond each read's first).
  std::uint64_t retries() const {
    return retries_.load(std::memory_order_relaxed);
  }
  // Reads that failed even after the policy was exhausted.
  std::uint64_t exhausted() const {
    return exhausted_.load(std::memory_order_relaxed);
  }
  // Reads that gave up because the per-read deadline expired.
  std::uint64_t deadline_expired() const {
    return deadline_expired_.load(std::memory_order_relaxed);
  }

 private:
  std::shared_ptr<const storage::Device> base_;
  RetryPolicy policy_;
  mutable std::atomic<std::uint64_t> ops_{0};  // jitter stream ids
  mutable std::atomic<std::uint64_t> retries_{0};
  mutable std::atomic<std::uint64_t> exhausted_{0};
  mutable std::atomic<std::uint64_t> deadline_expired_{0};
};

}  // namespace supmr::fault
