// FaultPlan: declarative, seeded, probabilistic fault specification.
//
// One composable value that a CLI flag, a test, or a stress harness can
// construct and hand to any fault-injecting wrapper (it replaced
// storage::FaultDevice's pre-PR-3 ad-hoc mutating setters, now removed).
// Three fault classes, matching what a real degraded device does:
//
//   * transient — a read fails once with an I/O error; the identical retry
//     succeeds (command timeout, remote hiccup). Probabilistic per read,
//     optionally gated to start only after N reads.
//   * permanent — byte ranges that fail every read overlapping them
//     (a dead stripe / lost block). Deterministic.
//   * slow      — a read completes but only after an injected delay
//     (a degraded disk or an overloaded remote). Probabilistic.
//
// All randomness flows from one seed through common/rng's xoshiro256**, so
// a failing run replays exactly from its seed (single-threaded read order;
// concurrent readers share the stream under a mutex, which keeps the
// aggregate fault rate exact even when interleaving varies).
//
// Text grammar (the CLI's --fault-plan=SPEC; see docs/fault-tolerance.md):
//
//   spec    := clause (';' clause)*
//   clause  := 'seed=' UINT
//            | 'transient=' PROB ['@' UINT]     e.g. transient=0.05@12
//            | 'fail_call=' UINT (',' UINT)*    e.g. fail_call=3,9
//            | 'permanent=' RANGE (',' RANGE)*  e.g. permanent=4096-8192
//            | 'slow=' PROB ':' DURATION        e.g. slow=0.01:5ms
//   RANGE   := LO '-' HI        (bytes, half-open [LO, HI))
//   DURATION:= FLOAT ('s'|'ms'|'us')
//
// fail_call is the deterministic sibling of transient: the listed accounted
// read indices (0-based) fail once with an I/O error, independent of the
// seed — "fail exactly the Nth read" tests stay declarative and replayable.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/status.hpp"

namespace supmr::fault {

struct FaultPlan {
  std::uint64_t seed = 0x5eedfa17ULL;

  // Transient faults: each accounted read fails with probability
  // transient_p, but only once — the retry re-samples.
  double transient_p = 0.0;
  // Inject transients only from the Nth accounted read on (lets a plan
  // spare the planning reads and hit the data path).
  std::uint64_t transient_after = 0;

  // Deterministic transients: these accounted read indices (0-based) fail
  // once each — the retry lands on the next index and passes through.
  std::vector<std::uint64_t> fail_calls;

  bool fails_call(std::uint64_t call) const {
    for (std::uint64_t c : fail_calls) {
      if (c == call) return true;
    }
    return false;
  }

  // Permanent faults: every read overlapping a poisoned [lo, hi) fails.
  std::vector<std::pair<std::uint64_t, std::uint64_t>> permanent;

  // Slow reads: with probability slow_p a read sleeps slow_delay_s first.
  double slow_p = 0.0;
  double slow_delay_s = 0.0;

  bool empty() const {
    return transient_p <= 0.0 && fail_calls.empty() && permanent.empty() &&
           slow_p <= 0.0;
  }

  bool poisons(std::uint64_t offset, std::uint64_t length) const {
    for (const auto& [lo, hi] : permanent) {
      if (offset < hi && offset + length > lo) return true;
    }
    return false;
  }

  // Parses the grammar above. Rejects probabilities outside [0, 1],
  // inverted ranges, and unknown clauses (typos fail loudly).
  static StatusOr<FaultPlan> parse(std::string_view spec);

  // Canonical spec string; parse(to_string()) round-trips.
  std::string to_string() const;
};

// "0.5s" / "5ms" / "250us" / bare seconds -> seconds. Shared by the plan
// grammar and the CLI's --retry-backoff/--retry-deadline flags.
StatusOr<double> parse_duration(std::string_view text);

}  // namespace supmr::fault
