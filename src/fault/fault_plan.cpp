#include "fault/fault_plan.hpp"

#include <cstdlib>

namespace supmr::fault {

namespace {

std::vector<std::string_view> split(std::string_view text, char sep) {
  std::vector<std::string_view> parts;
  std::size_t pos = 0;
  while (pos <= text.size()) {
    const std::size_t next = text.find(sep, pos);
    parts.push_back(text.substr(
        pos, next == std::string_view::npos ? std::string_view::npos
                                            : next - pos));
    if (next == std::string_view::npos) break;
    pos = next + 1;
  }
  return parts;
}

StatusOr<std::uint64_t> parse_uint(std::string_view text,
                                   std::string_view what) {
  const std::string s(text);
  char* end = nullptr;
  const std::uint64_t v = std::strtoull(s.c_str(), &end, 10);
  if (end == s.c_str() || *end != '\0') {
    return Status::InvalidArgument("fault plan: bad " + std::string(what) +
                                   " '" + s + "'");
  }
  return v;
}

StatusOr<double> parse_prob(std::string_view text) {
  const std::string s(text);
  char* end = nullptr;
  const double v = std::strtod(s.c_str(), &end);
  if (end == s.c_str() || *end != '\0' || v < 0.0 || v > 1.0) {
    return Status::InvalidArgument("fault plan: bad probability '" + s +
                                   "' (want [0, 1])");
  }
  return v;
}

std::string format_double(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%g", v);
  return buf;
}

}  // namespace

StatusOr<double> parse_duration(std::string_view text) {
  double scale = 1.0;
  std::string_view num = text;
  if (text.size() >= 2 && text.substr(text.size() - 2) == "ms") {
    scale = 1e-3;
    num = text.substr(0, text.size() - 2);
  } else if (text.size() >= 2 && text.substr(text.size() - 2) == "us") {
    scale = 1e-6;
    num = text.substr(0, text.size() - 2);
  } else if (!text.empty() && text.back() == 's') {
    num = text.substr(0, text.size() - 1);
  }
  const std::string s(num);
  char* end = nullptr;
  const double v = std::strtod(s.c_str(), &end);
  if (s.empty() || end == s.c_str() || *end != '\0' || v < 0.0) {
    return Status::InvalidArgument("bad duration '" + std::string(text) +
                                   "' (want e.g. 0.5s, 5ms, 250us)");
  }
  return v * scale;
}

StatusOr<FaultPlan> FaultPlan::parse(std::string_view spec) {
  FaultPlan plan;
  for (std::string_view clause : split(spec, ';')) {
    if (clause.empty()) continue;
    const std::size_t eq = clause.find('=');
    if (eq == std::string_view::npos) {
      return Status::InvalidArgument("fault plan: clause '" +
                                     std::string(clause) +
                                     "' is not key=value");
    }
    const std::string_view key = clause.substr(0, eq);
    const std::string_view value = clause.substr(eq + 1);
    if (key == "seed") {
      SUPMR_ASSIGN_OR_RETURN(plan.seed, parse_uint(value, "seed"));
    } else if (key == "transient") {
      const std::size_t at = value.find('@');
      SUPMR_ASSIGN_OR_RETURN(
          plan.transient_p,
          parse_prob(value.substr(0, at)));
      if (at != std::string_view::npos) {
        SUPMR_ASSIGN_OR_RETURN(
            plan.transient_after,
            parse_uint(value.substr(at + 1), "transient '@' call index"));
      }
    } else if (key == "fail_call") {
      for (std::string_view idx : split(value, ',')) {
        SUPMR_ASSIGN_OR_RETURN(std::uint64_t call,
                               parse_uint(idx, "fail_call index"));
        plan.fail_calls.push_back(call);
      }
    } else if (key == "permanent") {
      for (std::string_view range : split(value, ',')) {
        const std::size_t dash = range.find('-');
        if (dash == std::string_view::npos) {
          return Status::InvalidArgument("fault plan: bad range '" +
                                         std::string(range) +
                                         "' (want LO-HI)");
        }
        SUPMR_ASSIGN_OR_RETURN(std::uint64_t lo,
                               parse_uint(range.substr(0, dash), "range lo"));
        SUPMR_ASSIGN_OR_RETURN(std::uint64_t hi,
                               parse_uint(range.substr(dash + 1), "range hi"));
        if (hi <= lo) {
          return Status::InvalidArgument("fault plan: empty range '" +
                                         std::string(range) + "'");
        }
        plan.permanent.emplace_back(lo, hi);
      }
    } else if (key == "slow") {
      const std::size_t colon = value.find(':');
      if (colon == std::string_view::npos) {
        return Status::InvalidArgument(
            "fault plan: slow wants PROB:DURATION, got '" +
            std::string(value) + "'");
      }
      SUPMR_ASSIGN_OR_RETURN(plan.slow_p, parse_prob(value.substr(0, colon)));
      SUPMR_ASSIGN_OR_RETURN(plan.slow_delay_s,
                             parse_duration(value.substr(colon + 1)));
    } else {
      return Status::InvalidArgument("fault plan: unknown clause '" +
                                     std::string(key) + "'");
    }
  }
  return plan;
}

std::string FaultPlan::to_string() const {
  std::string out = "seed=" + std::to_string(seed);
  if (transient_p > 0.0) {
    out += ";transient=" + format_double(transient_p);
    if (transient_after > 0) out += "@" + std::to_string(transient_after);
  }
  if (!fail_calls.empty()) {
    out += ";fail_call=";
    for (std::size_t i = 0; i < fail_calls.size(); ++i) {
      if (i != 0) out += ",";
      out += std::to_string(fail_calls[i]);
    }
  }
  if (!permanent.empty()) {
    out += ";permanent=";
    for (std::size_t i = 0; i < permanent.size(); ++i) {
      if (i != 0) out += ",";
      out += std::to_string(permanent[i].first) + "-" +
             std::to_string(permanent[i].second);
    }
  }
  if (slow_p > 0.0) {
    out += ";slow=" + format_double(slow_p) + ":" +
           format_double(slow_delay_s) + "s";
  }
  return out;
}

}  // namespace supmr::fault
