// Text corpus generator for word count.
//
// The paper's word count input is 155 GB of text served as many files
// (Hadoop-style). We synthesize natural-language-like text: a vocabulary of
// pseudo-words whose frequencies follow a Zipf distribution, newline-
// terminated lines of bounded length. The Zipf skew is what gives word count
// its "large input set -> much smaller intermediate set" property that makes
// the hash container effective (paper §V.B).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "common/status.hpp"
#include "storage/mem_device.hpp"

namespace supmr::wload {

struct TextCorpusConfig {
  std::uint64_t total_bytes = 1 << 20;
  std::size_t vocabulary = 10000;
  double zipf_skew = 1.0;
  std::uint32_t min_word_len = 3;
  std::uint32_t max_word_len = 10;
  std::uint32_t max_line_len = 80;
  std::uint64_t seed = 7;
};

// Deterministic pseudo-word for a vocabulary rank.
std::string make_word(std::size_t rank, std::uint32_t min_len,
                      std::uint32_t max_len);

// Generates ~total_bytes of text (ends at a line boundary, so the actual
// size may be slightly below the target).
std::string generate_text(const TextCorpusConfig& config);

// Generates `num_files` files of ~per_file_bytes each, as in-memory devices
// named like part-00000 — the many-small-files layout the paper's intra-file
// chunking targets.
std::vector<std::shared_ptr<const storage::Device>> generate_text_files(
    const TextCorpusConfig& config, std::size_t num_files,
    std::uint64_t per_file_bytes);

// Writes one generated file to disk (for file-backed examples).
Status generate_text_file(const TextCorpusConfig& config,
                          const std::string& path);

}  // namespace supmr::wload
