#include "wload/teragen.hpp"

#include <cassert>
#include <cstdio>
#include <cstring>
#include <vector>

namespace supmr::wload {

namespace {
// Printable key alphabet: uniform over 64 symbols so memcmp order is
// well-distributed (matters for sample-sort splitter quality).
constexpr char kAlphabet[] =
    "0123456789ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz+/";
}  // namespace

void teragen_record(const TeraGenConfig& config, std::uint64_t rowid,
                    Xoshiro256& rng, char* out) {
  assert(config.record_bytes >=
         config.key_bytes + kTeraTerminatorBytes + 1);
  char* p = out;
  for (std::uint32_t i = 0; i < config.key_bytes; ++i)
    *p++ = kAlphabet[rng.uniform(64)];
  // Payload: rowid in fixed-width decimal, then 'X' filler.
  const std::uint32_t payload =
      config.record_bytes - config.key_bytes - kTeraTerminatorBytes;
  char rowbuf[24];
  const int rowlen =
      std::snprintf(rowbuf, sizeof(rowbuf), "%020llu",
                    static_cast<unsigned long long>(rowid));
  for (std::uint32_t i = 0; i < payload; ++i)
    *p++ = (i < static_cast<std::uint32_t>(rowlen)) ? rowbuf[i] : 'X';
  *p++ = '\r';
  *p++ = '\n';
}

std::string teragen_to_string(const TeraGenConfig& config) {
  Xoshiro256 rng(config.seed);
  std::string out;
  out.resize(config.num_records * config.record_bytes);
  for (std::uint64_t r = 0; r < config.num_records; ++r)
    teragen_record(config, r, rng, out.data() + r * config.record_bytes);
  return out;
}

Status teragen_to_file(const TeraGenConfig& config, const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return Status::IoError("fopen(" + path + ") failed");
  Xoshiro256 rng(config.seed);
  // Buffer ~4 MB of records between writes.
  const std::uint64_t per_batch =
      std::max<std::uint64_t>(1, (4u << 20) / config.record_bytes);
  std::vector<char> buf(per_batch * config.record_bytes);
  std::uint64_t written = 0;
  while (written < config.num_records) {
    const std::uint64_t n =
        std::min(per_batch, config.num_records - written);
    for (std::uint64_t i = 0; i < n; ++i)
      teragen_record(config, written + i, rng,
                     buf.data() + i * config.record_bytes);
    if (std::fwrite(buf.data(), config.record_bytes, n, f) != n) {
      std::fclose(f);
      return Status::IoError("fwrite to " + path + " failed");
    }
    written += n;
  }
  if (std::fclose(f) != 0) return Status::IoError("fclose failed");
  return Status::Ok();
}

}  // namespace supmr::wload
