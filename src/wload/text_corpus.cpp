#include "wload/text_corpus.hpp"

#include <cassert>
#include <cstdio>

namespace supmr::wload {

std::string make_word(std::size_t rank, std::uint32_t min_len,
                      std::uint32_t max_len) {
  assert(min_len >= 1 && max_len >= min_len);
  // Deterministic: hash the rank, draw length and letters from the hash
  // stream. Distinct ranks can collide to the same spelling only with
  // negligible probability given 26^len spellings per length.
  std::uint64_t h = 0x9e3779b97f4a7c15ULL ^ (rank * 0xff51afd7ed558ccdULL);
  auto next = [&h] {
    h ^= h >> 33;
    h *= 0xc4ceb9fe1a85ec53ULL;
    h ^= h >> 29;
    return h;
  };
  const std::uint32_t len = min_len + next() % (max_len - min_len + 1);
  std::string word(len, 'a');
  for (auto& ch : word) ch = static_cast<char>('a' + next() % 26);
  // Prefix a base-26 encoding of the rank to guarantee uniqueness.
  std::string prefix;
  std::size_t r = rank;
  do {
    prefix.push_back(static_cast<char>('a' + r % 26));
    r /= 26;
  } while (r != 0);
  return prefix + word;
}

namespace {

class TextEmitter {
 public:
  explicit TextEmitter(const TextCorpusConfig& config)
      : config_(config),
        rng_(config.seed),
        zipf_(config.zipf_skew, config.vocabulary) {
    words_.reserve(config.vocabulary);
    for (std::size_t i = 0; i < config.vocabulary; ++i)
      words_.push_back(
          make_word(i, config.min_word_len, config.max_word_len));
  }

  // Appends words/newlines to `out` until it reaches ~target size, ending
  // with a newline.
  void fill(std::string& out, std::uint64_t target) {
    std::uint32_t line_len = 0;
    while (out.size() + config_.max_word_len + 2 < target) {
      const std::string& w = words_[zipf_(rng_)];
      if (line_len + w.size() + 1 > config_.max_line_len) {
        out.push_back('\n');
        line_len = 0;
      } else if (line_len > 0) {
        out.push_back(' ');
        ++line_len;
      }
      out.append(w);
      line_len += static_cast<std::uint32_t>(w.size());
    }
    if (out.empty() || out.back() != '\n') out.push_back('\n');
  }

 private:
  const TextCorpusConfig& config_;
  Xoshiro256 rng_;
  ZipfSampler zipf_;
  std::vector<std::string> words_;
};

}  // namespace

std::string generate_text(const TextCorpusConfig& config) {
  TextEmitter emitter(config);
  std::string out;
  out.reserve(config.total_bytes);
  emitter.fill(out, config.total_bytes);
  return out;
}

std::vector<std::shared_ptr<const storage::Device>> generate_text_files(
    const TextCorpusConfig& config, std::size_t num_files,
    std::uint64_t per_file_bytes) {
  std::vector<std::shared_ptr<const storage::Device>> files;
  files.reserve(num_files);
  TextCorpusConfig per = config;
  for (std::size_t i = 0; i < num_files; ++i) {
    per.seed = config.seed + i * 1000003ULL;
    per.total_bytes = per_file_bytes;
    char name[32];
    std::snprintf(name, sizeof(name), "part-%05zu", i);
    files.push_back(
        std::make_shared<storage::MemDevice>(generate_text(per), name));
  }
  return files;
}

Status generate_text_file(const TextCorpusConfig& config,
                          const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return Status::IoError("fopen(" + path + ") failed");
  TextEmitter emitter(config);
  std::string buf;
  std::uint64_t remaining = config.total_bytes;
  while (remaining > 0) {
    buf.clear();
    const std::uint64_t target = std::min<std::uint64_t>(remaining, 4u << 20);
    if (target < config.max_word_len + 2u) break;
    emitter.fill(buf, target);
    if (std::fwrite(buf.data(), 1, buf.size(), f) != buf.size()) {
      std::fclose(f);
      return Status::IoError("fwrite to " + path + " failed");
    }
    remaining -= std::min<std::uint64_t>(remaining, buf.size());
  }
  if (std::fclose(f) != 0) return Status::IoError("fclose failed");
  return Status::Ok();
}

}  // namespace supmr::wload
