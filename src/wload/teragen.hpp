// TeraSort-style input generator.
//
// The paper's sort benchmark operates on TeraSort data: fixed-size records,
// each terminated by "\r\n" (§III.A.1). We use the classic layout scaled to
// a configurable record size: a fixed-width random key, a separator, a
// rowid, filler, and the CRLF terminator. Keys are printable so text tools
// can inspect datasets; ordering is plain memcmp over the key bytes.
#pragma once

#include <cstdint>
#include <string>

#include "common/rng.hpp"
#include "common/status.hpp"

namespace supmr::wload {

struct TeraGenConfig {
  std::uint64_t num_records = 1000;
  std::uint32_t key_bytes = 10;      // classic TeraSort key width
  std::uint32_t record_bytes = 100;  // total, including "\r\n"
  std::uint64_t seed = 42;
};

// Generates records into a string (for MemDevice-backed tests/benches).
std::string teragen_to_string(const TeraGenConfig& config);

// Streams records to a file without materializing the dataset in memory.
Status teragen_to_file(const TeraGenConfig& config, const std::string& path);

// Layout helpers shared with the sort application.
inline constexpr std::uint32_t kTeraTerminatorBytes = 2;  // "\r\n"

// Writes one record into `out` (exactly config.record_bytes long).
void teragen_record(const TeraGenConfig& config, std::uint64_t rowid,
                    Xoshiro256& rng, char* out);

}  // namespace supmr::wload
