#include "wload/numeric.hpp"

#include <cassert>
#include <cmath>
#include <vector>
#include <cstdio>

namespace supmr::wload {

std::string generate_numeric(const NumericConfig& config) {
  assert(config.hi >= config.lo);
  Xoshiro256 rng(config.seed);
  const std::uint64_t range =
      static_cast<std::uint64_t>(config.hi - config.lo) + 1;
  std::string out;
  out.reserve(config.num_values * 8);
  char buf[32];
  for (std::uint64_t i = 0; i < config.num_values; ++i) {
    std::int64_t v;
    switch (config.distribution) {
      case NumericDistribution::kTriangular: {
        const std::uint64_t a = rng.uniform(range);
        const std::uint64_t b = rng.uniform(range);
        v = config.lo + static_cast<std::int64_t>((a + b) / 2);
        break;
      }
      case NumericDistribution::kUniform:
      default:
        v = config.lo + static_cast<std::int64_t>(rng.uniform(range));
        break;
    }
    const int n = std::snprintf(buf, sizeof(buf), "%lld\n",
                                static_cast<long long>(v));
    out.append(buf, static_cast<std::size_t>(n));
  }
  return out;
}

std::string generate_points(const PointsConfig& config,
                            std::vector<std::vector<double>>* centers_out) {
  assert(config.clusters > 0 && config.dim > 0);
  Xoshiro256 rng(config.seed);
  // Cluster centers: uniform in the box, re-drawn if too close to another
  // center (keeps blobs separable for recovery tests).
  std::vector<std::vector<double>> centers;
  const double min_gap = 6.0 * config.spread;
  for (std::size_t c = 0; c < config.clusters; ++c) {
    std::vector<double> center(config.dim);
    for (int attempt = 0; attempt < 100; ++attempt) {
      for (auto& x : center) x = rng.uniform_double() * config.box;
      bool ok = true;
      for (const auto& other : centers) {
        double d2 = 0;
        for (std::size_t d = 0; d < config.dim; ++d) {
          const double delta = center[d] - other[d];
          d2 += delta * delta;
        }
        if (d2 < min_gap * min_gap) {
          ok = false;
          break;
        }
      }
      if (ok) break;
    }
    centers.push_back(center);
  }

  // Box-Muller normal deviates around a uniformly chosen center.
  auto normal = [&rng] {
    const double u1 = std::max(rng.uniform_double(), 1e-12);
    const double u2 = rng.uniform_double();
    return std::sqrt(-2.0 * std::log(u1)) * std::cos(6.283185307179586 * u2);
  };

  std::string out;
  out.reserve(config.num_points * config.dim * 10);
  char buf[64];
  for (std::uint64_t i = 0; i < config.num_points; ++i) {
    const auto& center = centers[rng.uniform(config.clusters)];
    for (std::size_t d = 0; d < config.dim; ++d) {
      const double x = center[d] + normal() * config.spread;
      const int n = std::snprintf(buf, sizeof(buf), d == 0 ? "%.4f" : " %.4f",
                                  x);
      out.append(buf, static_cast<std::size_t>(n));
    }
    out.push_back('\n');
  }
  if (centers_out != nullptr) *centers_out = std::move(centers);
  return out;
}

}  // namespace supmr::wload
