// Virtual dataset descriptors for paper-scale simulation.
//
// The performance model does not materialize 155 GB of text; it only needs
// the statistics that drive runtime cost: total bytes, record count and
// width, file layout, and key cardinality. These descriptors pin the paper's
// three evaluation datasets.
#pragma once

#include <cstdint>

#include "common/units.hpp"

namespace supmr::wload {

struct VirtualDataset {
  std::uint64_t total_bytes = 0;
  std::uint64_t num_records = 0;    // lines (text) or records (TeraSort)
  double avg_record_bytes = 0.0;
  std::uint64_t num_files = 1;      // >1 => many-small-files layout
  std::uint64_t distinct_keys = 0;  // intermediate key cardinality
};

// 155 GB text corpus (word count, Table II / Fig. 5). English-like text:
// ~70-byte lines, ~5.5-byte words, vocabulary in the low millions.
inline VirtualDataset paper_wordcount_dataset() {
  VirtualDataset d;
  d.total_bytes = 155 * kGB;
  d.avg_record_bytes = 70.0;
  d.num_records = static_cast<std::uint64_t>(double(d.total_bytes) /
                                             d.avg_record_bytes);
  d.num_files = 1550;  // Hadoop-style many-files layout, ~100 MB each
  d.distinct_keys = 2'000'000;
  return d;
}

// 60 GB TeraSort input (sort, Table II / Figs. 1, 6): 100-byte records,
// unique 10-byte keys.
inline VirtualDataset paper_sort_dataset() {
  VirtualDataset d;
  d.total_bytes = 60 * kGB;
  d.avg_record_bytes = 100.0;
  d.num_records = d.total_bytes / 100;
  d.num_files = 1;
  d.distinct_keys = d.num_records;  // unique keys: sort's defining property
  return d;
}

// 30 GB corpus on the 32-node HDFS cluster (Fig. 7 case study).
inline VirtualDataset paper_hdfs_dataset() {
  VirtualDataset d = paper_wordcount_dataset();
  d.total_bytes = 30 * kGB;
  d.num_records = static_cast<std::uint64_t>(double(d.total_bytes) /
                                             d.avg_record_bytes);
  d.num_files = 300;
  d.distinct_keys = 1'200'000;
  return d;
}

}  // namespace supmr::wload
