// Numeric dataset generator: newline-separated ASCII values, for the
// histogram application. Values are drawn from a configurable distribution
// so histogram shapes are predictable in tests.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.hpp"

namespace supmr::wload {

enum class NumericDistribution {
  kUniform,    // uniform over [lo, hi]
  kTriangular, // sum of two uniforms: peak in the middle
};

struct NumericConfig {
  std::uint64_t num_values = 100000;
  std::int64_t lo = 0;
  std::int64_t hi = 255;
  NumericDistribution distribution = NumericDistribution::kUniform;
  std::uint64_t seed = 17;
};

// One ASCII integer per '\n'-terminated line.
std::string generate_numeric(const NumericConfig& config);

// Clustered point dataset for k-means: points drawn from `clusters`
// Gaussian blobs with the given spread, one point per line as
// space-separated ASCII doubles. The true centers are returned through
// `centers_out` (if non-null) so tests can verify recovery.
struct PointsConfig {
  std::uint64_t num_points = 10000;
  std::size_t dim = 2;
  std::size_t clusters = 4;
  double box = 100.0;     // centers drawn uniformly from [0, box)^dim
  double spread = 2.0;    // per-coordinate stddev around the center
  std::uint64_t seed = 23;
};

std::string generate_points(
    const PointsConfig& config,
    std::vector<std::vector<double>>* centers_out = nullptr);

}  // namespace supmr::wload
