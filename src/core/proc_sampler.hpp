// collectl-equivalent CPU utilization sampler for real (wall-clock) runs.
//
// Samples /proc/stat on a background thread at a fixed interval and derives
// user/sys/iowait percentages per interval — the same channels the paper's
// figures plot. Used by examples and real-mode benches; simulated runs get
// their traces from sim::trace_utilization instead.
#pragma once

#include <atomic>
#include <thread>

#include "common/timeseries.hpp"

namespace supmr::core {

class ProcStatSampler {
 public:
  explicit ProcStatSampler(double interval_s = 0.1);
  ~ProcStatSampler();

  ProcStatSampler(const ProcStatSampler&) = delete;
  ProcStatSampler& operator=(const ProcStatSampler&) = delete;

  // Lifecycle contract: start/stop/dtor must be driven from one controlling
  // thread. start() is idempotent while running; stop() without start() (or
  // called twice) is a no-op that returns the trace collected so far;
  // destruction while running stops and joins the sampler.
  void start();
  // Stops sampling and returns the trace (channels: user, sys, iowait; t in
  // seconds since start()).
  TimeSeries stop();

  static bool available();  // /proc/stat readable?

 private:
  struct CpuTimes {
    unsigned long long user = 0, nice = 0, sys = 0, idle = 0, iowait = 0,
                       irq = 0, softirq = 0, steal = 0;
    bool ok = false;
  };
  static CpuTimes read_proc_stat();
  void loop();

  double interval_s_;
  std::atomic<bool> running_{false};
  std::thread thread_;
  TimeSeries series_;
};

}  // namespace supmr::core
