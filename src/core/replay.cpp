#include "core/replay.hpp"

#include <cctype>
#include <cstdlib>
#include <map>

#include "common/json.hpp"

namespace supmr::core {

std::string_view merge_mode_name(MergeMode mode) {
  return enum_to_name(kMergeModeNames, mode);
}

std::string_view graph_handoff_name(GraphHandoff handoff) {
  return enum_to_name(kGraphHandoffNames, handoff);
}

StatusOr<ExecMode> exec_mode_from_name(std::string_view name) {
  return enum_from_name(kExecModeNames, name, "exec mode");
}

StatusOr<MergeMode> merge_mode_from_name(std::string_view name) {
  return enum_from_name(kMergeModeNames, name, "merge mode");
}

StatusOr<IoMode> io_mode_from_name(std::string_view name) {
  return enum_from_name(ingest::kIoModeNames, name, "io mode");
}

StatusOr<GraphHandoff> graph_handoff_from_name(std::string_view name) {
  return enum_from_name(kGraphHandoffNames, name, "graph handoff");
}

StatusOr<ContainerMode> container_mode_from_name(std::string_view name) {
  return enum_from_name(kContainerModeNames, name, "container mode");
}

bool app_has_combiner(std::string_view app) {
  return app == "wordcount" || app == "histogram" || app == "index" ||
         app == "paircount" || app == "doctermcount";
}

std::string ReplaySpec::to_json() const {
  JsonWriter w;
  w.begin_object();
  w.kv("app", app);
  w.key("corpus");
  w.begin_object();
  w.kv("kind", corpus.kind);
  w.kv("bytes", corpus.bytes);
  w.kv("seed", corpus.seed);
  w.kv("num_files", corpus.num_files);
  w.end_object();
  w.key("params");
  w.begin_object();
  w.kv("key_bytes", key_bytes);
  w.kv("record_bytes", record_bytes);
  w.kv("app_partitions", app_partitions);
  w.kv("hist_lo", hist_lo);
  w.kv("hist_hi", hist_hi);
  w.kv("hist_bins", hist_bins);
  w.kv("grep_patterns", grep_patterns);
  w.kv("memory_budget", memory_budget);
  w.end_object();
  w.key("cell");
  w.begin_object();
  w.kv("mode", exec_mode_name(mode));
  w.kv("merge", merge_mode_name(merge_mode));
  w.kv("io", io_mode_name(io));
  w.kv("container", container_mode_name(container));
  w.kv("threads", threads);
  w.kv("merge_partitions", merge_partitions);
  w.kv("chunk_bytes", chunk_bytes);
  w.kv("files_per_chunk", files_per_chunk);
  w.kv("degrade", degrade);
  w.kv("fault_plan", fault_plan);
  w.kv("retry_attempts", retry_attempts);
  w.end_object();
  // Graph cells only; written for every spec, optional on parse (specs
  // checked in before graphs existed omit the whole object).
  w.key("graph");
  w.begin_object();
  w.kv("handoff", graph_handoff_name(graph_handoff));
  w.kv("budget", graph_budget);
  w.end_object();
  // Cluster cells only; written for every spec, optional on parse (specs
  // checked in before the cluster runtime existed omit the whole object).
  w.key("cluster");
  w.begin_object();
  w.kv("nodes", cluster_nodes);
  w.kv("link_bps", cluster_link_bps);
  w.kv("uplink_bps", cluster_uplink_bps);
  w.kv("disk_bps", cluster_disk_bps);
  w.kv("budget", cluster_budget);
  w.end_object();
  w.end_object();
  return w.str();
}

namespace {

// Minimal strict JSON reader for the spec shape: objects of string /
// number / bool values, nested objects flattened to dotted keys
// ("cell.mode"). No arrays, no null — the spec never emits them.
class SpecParser {
 public:
  explicit SpecParser(std::string_view text) : text_(text) {}

  Status parse(std::map<std::string, std::string>& out) {
    SUPMR_RETURN_IF_ERROR(parse_object("", out));
    skip_ws();
    if (pos_ != text_.size()) {
      return error("trailing characters after the top-level object");
    }
    return Status::Ok();
  }

 private:
  Status parse_object(const std::string& prefix,
                      std::map<std::string, std::string>& out) {
    SUPMR_RETURN_IF_ERROR(expect('{'));
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return Status::Ok();
    }
    while (true) {
      skip_ws();
      std::string key;
      SUPMR_RETURN_IF_ERROR(parse_string(key));
      skip_ws();
      SUPMR_RETURN_IF_ERROR(expect(':'));
      skip_ws();
      const std::string full = prefix.empty() ? key : prefix + "." + key;
      if (peek() == '{') {
        SUPMR_RETURN_IF_ERROR(parse_object(full, out));
      } else if (peek() == '"') {
        std::string value;
        SUPMR_RETURN_IF_ERROR(parse_string(value));
        out[full] = value;
      } else {
        SUPMR_RETURN_IF_ERROR(parse_scalar(full, out));
      }
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      return expect('}');
    }
  }

  Status parse_string(std::string& out) {
    SUPMR_RETURN_IF_ERROR(expect('"'));
    out.clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return Status::Ok();
      if (c == '\\') {
        if (pos_ >= text_.size()) break;
        const char esc = text_[pos_++];
        switch (esc) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'n': out += '\n'; break;
          case 't': out += '\t'; break;
          case 'r': out += '\r'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          default:
            return error(std::string("unsupported escape \\") + esc);
        }
      } else {
        out += c;
      }
    }
    return error("unterminated string");
  }

  // Numbers and booleans, stored as their literal text.
  Status parse_scalar(const std::string& key,
                      std::map<std::string, std::string>& out) {
    const std::size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isalnum(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '-' || text_[pos_] == '+' || text_[pos_] == '.')) {
      ++pos_;
    }
    if (pos_ == start) return error("expected a value");
    out[key] = std::string(text_.substr(start, pos_ - start));
    return Status::Ok();
  }

  Status expect(char c) {
    skip_ws();
    if (pos_ >= text_.size() || text_[pos_] != c) {
      return error(std::string("expected '") + c + "'");
    }
    ++pos_;
    return Status::Ok();
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  char peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }

  Status error(const std::string& what) const {
    return Status::InvalidArgument("replay spec: " + what + " at byte " +
                                   std::to_string(pos_));
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

// Typed field extraction. Every key the spec writes must be consumed, and
// every consumed key must exist — schema drift fails loudly in both
// directions.
class Fields {
 public:
  explicit Fields(std::map<std::string, std::string> values)
      : values_(std::move(values)) {}

  Status take_string(const std::string& key, std::string& out) {
    SUPMR_ASSIGN_OR_RETURN(std::string raw, take(key));
    out = std::move(raw);
    return Status::Ok();
  }

  Status take_u64(const std::string& key, std::uint64_t& out) {
    SUPMR_ASSIGN_OR_RETURN(std::string raw, take(key));
    char* end = nullptr;
    out = std::strtoull(raw.c_str(), &end, 10);
    if (end == raw.c_str() || *end != '\0') {
      return Status::InvalidArgument("replay spec: bad integer for " + key +
                                     ": " + raw);
    }
    return Status::Ok();
  }

  Status take_i64(const std::string& key, std::int64_t& out) {
    SUPMR_ASSIGN_OR_RETURN(std::string raw, take(key));
    char* end = nullptr;
    out = std::strtoll(raw.c_str(), &end, 10);
    if (end == raw.c_str() || *end != '\0') {
      return Status::InvalidArgument("replay spec: bad integer for " + key +
                                     ": " + raw);
    }
    return Status::Ok();
  }

  Status take_bool(const std::string& key, bool& out) {
    SUPMR_ASSIGN_OR_RETURN(std::string raw, take(key));
    if (raw == "true") {
      out = true;
    } else if (raw == "false") {
      out = false;
    } else {
      return Status::InvalidArgument("replay spec: bad bool for " + key +
                                     ": " + raw);
    }
    return Status::Ok();
  }

  // Like take_string, but a missing key yields `def` instead of an error —
  // for fields added after specs were already checked in (schema growth
  // stays backward-compatible; unknown keys still fail via check_empty).
  Status take_string_or(const std::string& key, std::string& out,
                        std::string_view def) {
    if (values_.find(key) == values_.end()) {
      out = std::string(def);
      return Status::Ok();
    }
    return take_string(key, out);
  }

  // take_u64, but a missing key yields `def` (same backward-compat contract
  // as take_string_or).
  Status take_u64_or(const std::string& key, std::uint64_t& out,
                     std::uint64_t def) {
    if (values_.find(key) == values_.end()) {
      out = def;
      return Status::Ok();
    }
    return take_u64(key, out);
  }

  Status check_empty() const {
    if (values_.empty()) return Status::Ok();
    return Status::InvalidArgument("replay spec: unknown key " +
                                   values_.begin()->first);
  }

 private:
  StatusOr<std::string> take(const std::string& key) {
    auto it = values_.find(key);
    if (it == values_.end()) {
      return Status::InvalidArgument("replay spec: missing key " + key);
    }
    std::string value = std::move(it->second);
    values_.erase(it);
    return value;
  }

  std::map<std::string, std::string> values_;
};

}  // namespace

StatusOr<ReplaySpec> ReplaySpec::from_json(std::string_view text) {
  std::map<std::string, std::string> raw;
  SpecParser parser(text);
  SUPMR_RETURN_IF_ERROR(parser.parse(raw));
  Fields fields(std::move(raw));

  ReplaySpec spec;
  SUPMR_RETURN_IF_ERROR(fields.take_string("app", spec.app));
  SUPMR_RETURN_IF_ERROR(fields.take_string("corpus.kind", spec.corpus.kind));
  SUPMR_RETURN_IF_ERROR(fields.take_u64("corpus.bytes", spec.corpus.bytes));
  SUPMR_RETURN_IF_ERROR(fields.take_u64("corpus.seed", spec.corpus.seed));
  SUPMR_RETURN_IF_ERROR(
      fields.take_u64("corpus.num_files", spec.corpus.num_files));
  SUPMR_RETURN_IF_ERROR(fields.take_u64("params.key_bytes", spec.key_bytes));
  SUPMR_RETURN_IF_ERROR(
      fields.take_u64("params.record_bytes", spec.record_bytes));
  SUPMR_RETURN_IF_ERROR(
      fields.take_u64("params.app_partitions", spec.app_partitions));
  SUPMR_RETURN_IF_ERROR(fields.take_i64("params.hist_lo", spec.hist_lo));
  SUPMR_RETURN_IF_ERROR(fields.take_i64("params.hist_hi", spec.hist_hi));
  SUPMR_RETURN_IF_ERROR(fields.take_u64("params.hist_bins", spec.hist_bins));
  SUPMR_RETURN_IF_ERROR(
      fields.take_string("params.grep_patterns", spec.grep_patterns));
  SUPMR_RETURN_IF_ERROR(
      fields.take_u64("params.memory_budget", spec.memory_budget));

  std::string mode, merge, io, container;
  SUPMR_RETURN_IF_ERROR(fields.take_string("cell.mode", mode));
  SUPMR_RETURN_IF_ERROR(fields.take_string("cell.merge", merge));
  SUPMR_RETURN_IF_ERROR(fields.take_string_or("cell.io", io, "read"));
  SUPMR_RETURN_IF_ERROR(
      fields.take_string_or("cell.container", container, "default"));
  SUPMR_ASSIGN_OR_RETURN(spec.mode, exec_mode_from_name(mode));
  SUPMR_ASSIGN_OR_RETURN(spec.merge_mode, merge_mode_from_name(merge));
  SUPMR_ASSIGN_OR_RETURN(spec.io, io_mode_from_name(io));
  SUPMR_ASSIGN_OR_RETURN(spec.container, container_mode_from_name(container));
  SUPMR_RETURN_IF_ERROR(fields.take_u64("cell.threads", spec.threads));
  SUPMR_RETURN_IF_ERROR(
      fields.take_u64("cell.merge_partitions", spec.merge_partitions));
  SUPMR_RETURN_IF_ERROR(fields.take_u64("cell.chunk_bytes", spec.chunk_bytes));
  SUPMR_RETURN_IF_ERROR(
      fields.take_u64("cell.files_per_chunk", spec.files_per_chunk));
  SUPMR_RETURN_IF_ERROR(fields.take_bool("cell.degrade", spec.degrade));
  SUPMR_RETURN_IF_ERROR(fields.take_string("cell.fault_plan", spec.fault_plan));
  SUPMR_RETURN_IF_ERROR(
      fields.take_u64("cell.retry_attempts", spec.retry_attempts));

  std::string handoff;
  SUPMR_RETURN_IF_ERROR(
      fields.take_string_or("graph.handoff", handoff, "memory"));
  SUPMR_ASSIGN_OR_RETURN(spec.graph_handoff, graph_handoff_from_name(handoff));
  SUPMR_RETURN_IF_ERROR(
      fields.take_u64_or("graph.budget", spec.graph_budget, 0));
  SUPMR_RETURN_IF_ERROR(
      fields.take_u64_or("cluster.nodes", spec.cluster_nodes, 0));
  SUPMR_RETURN_IF_ERROR(
      fields.take_u64_or("cluster.link_bps", spec.cluster_link_bps, 0));
  SUPMR_RETURN_IF_ERROR(
      fields.take_u64_or("cluster.uplink_bps", spec.cluster_uplink_bps, 0));
  SUPMR_RETURN_IF_ERROR(
      fields.take_u64_or("cluster.disk_bps", spec.cluster_disk_bps, 0));
  SUPMR_RETURN_IF_ERROR(
      fields.take_u64_or("cluster.budget", spec.cluster_budget, 0));
  SUPMR_RETURN_IF_ERROR(fields.check_empty());

  if (spec.app != "wordcount" && spec.app != "xwordcount" &&
      spec.app != "sort" && spec.app != "grep" && spec.app != "histogram" &&
      spec.app != "index" && spec.app != "paircount" &&
      spec.app != "doctermcount" && !spec.is_graph()) {
    return Status::InvalidArgument("replay spec: unknown app " + spec.app);
  }
  if (spec.container == ContainerMode::kCombining &&
      !app_has_combiner(spec.app)) {
    return Status::InvalidArgument(
        "replay spec: container=combining: app " + spec.app +
        " declares no combiner");
  }
  SUPMR_RETURN_IF_ERROR(spec.corpus.parsed_kind().status());
  if (spec.threads == 0) {
    return Status::InvalidArgument("replay spec: threads must be >= 1");
  }
  if (spec.is_cluster() && spec.is_graph()) {
    return Status::InvalidArgument(
        "replay spec: cluster cells run single-round apps, not graphs");
  }
  if (!spec.is_cluster() &&
      (spec.cluster_link_bps != 0 || spec.cluster_uplink_bps != 0 ||
       spec.cluster_disk_bps != 0 || spec.cluster_budget != 0)) {
    return Status::InvalidArgument(
        "replay spec: cluster bandwidth/budget knobs require cluster.nodes");
  }
  return spec;
}

}  // namespace supmr::core
