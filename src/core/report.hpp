// Structured export of job results (JSON) for downstream tooling.
#pragma once

#include <string>

#include "common/timeseries.hpp"
#include "core/job.hpp"

namespace supmr::core {

// Full job result: phases, pipeline per-chunk stats, merge round geometry.
std::string job_result_to_json(const JobResult& result);

// Phase breakdown only (one Table II cell row).
std::string phases_to_json(const PhaseBreakdown& phases);

// Machine-readable error report: {"ok": false, "code": "...", "message":
// "..."} — what the CLI/quickstart emit when a job fails under --json.
std::string status_to_json(const Status& status);

// Utilization trace as {"t":[...], "<channel>":[...], ...}.
std::string timeseries_to_json(const TimeSeries& trace);

}  // namespace supmr::core
