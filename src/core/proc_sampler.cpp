#include "core/proc_sampler.hpp"

#include <chrono>
#include <cstdio>

namespace supmr::core {

ProcStatSampler::ProcStatSampler(double interval_s)
    : interval_s_(interval_s), series_({"user", "sys", "iowait"}) {}

ProcStatSampler::~ProcStatSampler() {
  running_.store(false);
  // Join unconditionally on joinable: gating the join on running_ (as this
  // originally did) leaks the thread when stop() raced the flag, and a
  // joinable std::thread at destruction is std::terminate.
  if (thread_.joinable()) thread_.join();
}

bool ProcStatSampler::available() { return read_proc_stat().ok; }

ProcStatSampler::CpuTimes ProcStatSampler::read_proc_stat() {
  CpuTimes t;
  std::FILE* f = std::fopen("/proc/stat", "r");
  if (f == nullptr) return t;
  t.ok = std::fscanf(f, "cpu %llu %llu %llu %llu %llu %llu %llu %llu",
                     &t.user, &t.nice, &t.sys, &t.idle, &t.iowait, &t.irq,
                     &t.softirq, &t.steal) >= 5;
  std::fclose(f);
  return t;
}

void ProcStatSampler::start() {
  // Idempotent: a second start() while running would assign over a joinable
  // std::thread, which is std::terminate. (Restart after stop() is fine —
  // stop() leaves thread_ joined.)
  if (running_.exchange(true)) return;
  thread_ = std::thread([this] { loop(); });
}

TimeSeries ProcStatSampler::stop() {
  running_.store(false);
  if (thread_.joinable()) thread_.join();
  return series_;
}

void ProcStatSampler::loop() {
  using clock = std::chrono::steady_clock;
  const auto t0 = clock::now();
  CpuTimes prev = read_proc_stat();
  while (running_.load(std::memory_order_relaxed)) {
    std::this_thread::sleep_for(std::chrono::duration<double>(interval_s_));
    const CpuTimes cur = read_proc_stat();
    if (!cur.ok || !prev.ok) continue;
    const auto delta = [](unsigned long long a, unsigned long long b) {
      return a >= b ? double(a - b) : 0.0;
    };
    const double user = delta(cur.user, prev.user) + delta(cur.nice, prev.nice);
    const double sys = delta(cur.sys, prev.sys) + delta(cur.irq, prev.irq) +
                       delta(cur.softirq, prev.softirq);
    const double idle = delta(cur.idle, prev.idle);
    const double iowait = delta(cur.iowait, prev.iowait);
    const double total = user + sys + idle + iowait +
                         delta(cur.steal, prev.steal);
    if (total > 0.0) {
      const double t =
          std::chrono::duration<double>(clock::now() - t0).count();
      series_.append(t, {user / total * 100.0, sys / total * 100.0,
                         iowait / total * 100.0});
    }
    prev = cur;
  }
}

}  // namespace supmr::core
