#include "core/job.hpp"

#include <cassert>

#include "common/logging.hpp"
#include "common/units.hpp"
#include "obs/macros.hpp"
#include "obs/trace.hpp"

namespace supmr::core {

MapReduceJob::MapReduceJob(Application& app,
                           const ingest::IngestSource& source,
                           JobConfig config)
    : app_(app), source_(source), config_(config) {
  assert(config_.num_map_threads >= 1 && config_.num_reduce_threads >= 1);
}

MapReduceJob::~MapReduceJob() = default;

void MapReduceJob::attach_runtime(ThreadPool& pool,
                                  ingest::ChunkBufferPool* buffers) {
  pool_ = &pool;
  shared_buffers_ = buffers;
}

Status MapReduceJob::map_round(const ingest::IngestChunk& chunk) {
  SUPMR_RETURN_IF_ERROR(app_.prepare_round(chunk));
  const std::size_t tasks = app_.round_tasks();
  const std::size_t width = config_.num_map_threads;
  // Applications normally split a round into at most `num_map_threads`
  // tasks, but nothing forces them to (MultiFileSource packing, or a future
  // app with input-derived splits, can produce more). Instead of failing the
  // job, run the round as successive waves of `width` tasks; within a batch
  // each task still gets a distinct thread slot in [0, width).
  if (tasks > width) {
    SUPMR_COUNTER_ADD("map.oversubscribed_waves", 1);
    SUPMR_LOG_INFO("map_round: %zu tasks over %zu mapper threads; running in "
                   "%zu waves",
                   tasks, width, (tasks + width - 1) / width);
  }
  SUPMR_TRACE_SCOPE_VAR(span, "map", "map.round");
  SUPMR_TRACE_SET_ARG(span, "tasks", tasks);
  SUPMR_TRACE_SET_ARG2(span, "bytes", chunk.size());
  for (std::size_t base = 0; base < tasks; base += width) {
    const std::size_t batch = std::min(width, tasks - base);
    std::vector<std::function<void(std::size_t)>> wave;
    wave.reserve(batch);
    for (std::size_t t = 0; t < batch; ++t) {
      wave.push_back(
          [this, base, t](std::size_t) { app_.map_task(base + t, t); });
    }
    if (config_.unpooled_map_waves) {
      ThreadPool::run_wave_unpooled(wave);
    } else if (!pool_->run_wave(wave)) {
      return Status::Internal("map wave dropped: thread pool shut down");
    }
  }
  SUPMR_COUNTER_ADD("map.rounds", 1);
  SUPMR_COUNTER_ADD("map.tasks", tasks);
  ++rounds_;
  return Status::Ok();
}

Status MapReduceJob::finish(JobResult& result, PhaseClock& clock) {
  clock.start(Phase::kReduce);
  {
    SUPMR_TRACE_SCOPE("phase", "reduce");
    SUPMR_RETURN_IF_ERROR(app_.reduce(*pool_, config_.reduce_partitions()));
  }
  clock.stop(Phase::kReduce);

  clock.start(Phase::kMerge);
  {
    SUPMR_TRACE_SCOPE("phase", "merge");
    SUPMR_RETURN_IF_ERROR(
        app_.merge(*pool_, config_.merge_plan(), &merge_stats_));
  }
  clock.stop(Phase::kMerge);

  result.merge_stats = merge_stats_;
  result.result_count = app_.result_count();
  result.map_rounds = rounds_;

  // Fold effectiveness (containers/combining.hpp). The container is not
  // mutated after the map waves, so reading here — after reduce/merge —
  // sees the final fold counters.
  result.combine = app_.combine_stats();
  if (result.combine.emits != 0) {
    SUPMR_COUNTER_ADD("container.emits", result.combine.emits);
    SUPMR_COUNTER_ADD("container.keys_folded", result.combine.keys_folded);
    SUPMR_COUNTER_ADD("container.bytes_emitted", result.combine.bytes_emitted);
    SUPMR_COUNTER_ADD("container.bytes_into_merge",
                      result.combine.bytes_into_merge);
    SUPMR_GAUGE_SET("container.table_bytes", result.combine.table_bytes);
  }
  return Status::Ok();
}

void MapReduceJob::begin_obs() {
  if (!config_.trace_out_path.empty()) {
    obs::TraceRecorder::global().enable();
  }
  if (obs::TraceRecorder::global().enabled()) {
    obs::TraceRecorder::global().set_thread_name("job.coordinator");
  }
  SUPMR_COUNTER_ADD("job.runs", 1);
}

void MapReduceJob::finish_obs(JobResult& result) {
  result.metrics = obs::MetricsRegistry::global().snapshot();
  if (!config_.metrics_json_path.empty()) {
    const std::string json = obs::metrics_to_json(result.metrics);
    std::FILE* f = std::fopen(config_.metrics_json_path.c_str(), "wb");
    bool ok = f != nullptr;
    if (f != nullptr) {
      ok = std::fwrite(json.data(), 1, json.size(), f) == json.size();
      ok = (std::fclose(f) == 0) && ok;
    }
    if (!ok) {
      SUPMR_LOG_WARN("cannot write metrics json to %s",
                     config_.metrics_json_path.c_str());
    } else {
      SUPMR_LOG_INFO("metrics json -> %s", config_.metrics_json_path.c_str());
    }
  }
  if (!config_.trace_out_path.empty()) {
    Status st =
        obs::TraceRecorder::global().write_json(config_.trace_out_path);
    if (!st.ok()) {
      SUPMR_LOG_WARN("cannot write trace: %s", st.to_string().c_str());
    } else {
      SUPMR_LOG_INFO("chrome trace -> %s", config_.trace_out_path.c_str());
    }
  }
}

void MapReduceJob::set_adaptive(const storage::Device& device,
                                const ingest::RecordFormat& format,
                                ingest::ChunkSizeController& controller) {
  adaptive_device_ = &device;
  adaptive_format_ = &format;
  adaptive_controller_ = &controller;
}

StatusOr<JobResult> MapReduceJob::run(ExecMode mode) {
  if (pool_ == nullptr) {
    // Single-tenant path: no runtime attached, so the job owns its workers.
    owned_pool_ = std::make_unique<ThreadPool>(
        std::max(config_.num_map_threads, config_.num_reduce_threads));
    pool_ = owned_pool_.get();
  }
  switch (mode) {
    case ExecMode::kOriginal:
      return run_original();
    case ExecMode::kIngestMR:
    case ExecMode::kAdaptive:
      return run_pipelined(mode);
  }
  return Status::InvalidArgument("unknown exec mode");
}

StatusOr<JobResult> MapReduceJob::run_original() {
  JobResult result;
  PhaseClock clock;
  rounds_ = 0;
  begin_obs();
  clock.start_total();

  clock.start(Phase::kSetup);
  app_.init(config_.num_map_threads);
  SUPMR_ASSIGN_OR_RETURN(std::vector<ingest::ChunkExtent> plan,
                         source_.plan());
  clock.stop(Phase::kSetup);

  // Original runtime: the whole input is one "chunk" read up front. A plan
  // with multiple extents (a chunked source) is still honoured — all chunks
  // are read before any map work, preserving the read-then-compute shape.
  clock.start(Phase::kRead);
  std::vector<ingest::IngestChunk> chunks(plan.size());
  {
    SUPMR_TRACE_SCOPE("phase", "read");
    for (std::size_t i = 0; i < plan.size(); ++i) {
      SUPMR_RETURN_IF_ERROR(source_.read_chunk(plan[i], chunks[i]));
    }
  }
  clock.stop(Phase::kRead);

  clock.start(Phase::kMap);
  {
    SUPMR_TRACE_SCOPE("phase", "map");
    for (auto& chunk : chunks) {
      SUPMR_RETURN_IF_ERROR(map_round(chunk));
      chunk.set_owned();  // drop a borrowed view along with the storage
      chunk.data.clear();
      chunk.data.shrink_to_fit();
    }
  }
  clock.stop(Phase::kMap);

  SUPMR_RETURN_IF_ERROR(finish(result, clock));
  clock.stop_total();
  result.phases = clock.snapshot();
  result.phases.input_bytes = source_.total_bytes();
  result.phases.map_rounds = rounds_;
  result.phases.merge_rounds = merge_stats_.num_rounds();
  result.chunks = plan.size();
  // The plan's real extent count, with the presentation mode carried
  // separately — reporting num_chunks = 0 to mean "unchunked" made the JSON
  // contradict result.chunks.
  result.phases.num_chunks = plan.size();
  result.phases.chunked = false;
  finish_obs(result);
  SUPMR_LOG_INFO("run(): total=%.3fs read=%.3fs map=%.3fs", clock.total(),
                 clock.elapsed(Phase::kRead), clock.elapsed(Phase::kMap));
  return result;
}

StatusOr<JobResult> MapReduceJob::run_pipelined(ExecMode mode) {
  JobResult result;
  PhaseClock clock;
  rounds_ = 0;
  begin_obs();
  clock.start_total();

  // Adaptive mode needs a device + record format. Honor set_adaptive() if it
  // was called; otherwise derive both from a SingleDeviceSource and size
  // chunks with an internally-owned rate-matching controller.
  const storage::Device* adaptive_device = adaptive_device_;
  const ingest::RecordFormat* adaptive_format = adaptive_format_;
  ingest::ChunkSizeController* adaptive_controller = adaptive_controller_;
  ingest::RateMatchingController owned_controller;
  if (mode == ExecMode::kAdaptive && adaptive_device == nullptr) {
    const auto* single =
        dynamic_cast<const ingest::SingleDeviceSource*>(&source_);
    if (single == nullptr) {
      return Status::InvalidArgument(
          "adaptive mode needs set_adaptive() or a SingleDeviceSource");
    }
    adaptive_device = &single->device();
    adaptive_format = &single->format();
    adaptive_controller = &owned_controller;
  }

  clock.start(Phase::kSetup);
  app_.init(config_.num_map_threads);
  std::vector<ingest::ChunkExtent> plan;
  if (mode == ExecMode::kIngestMR) {
    SUPMR_ASSIGN_OR_RETURN(plan, source_.plan());
  }
  clock.stop(Phase::kSetup);

  // The combined read+map phase: the pipeline's producer ingests chunk
  // c_{i+1} while this (consumer) thread runs the map wave on c_i.
  clock.start(Phase::kRead);  // measures total pipeline wall time
  const auto process = [this](ingest::IngestChunk& chunk) {
    return map_round(chunk);
  };
  auto pipeline_result = [&]() -> StatusOr<ingest::PipelineStats> {
    SUPMR_TRACE_SCOPE("phase", "readmap");
    if (mode == ExecMode::kIngestMR) {
      SUPMR_LOG_INFO("run(supmr): %zu ingest chunks over %s", plan.size(),
                     format_bytes(source_.total_bytes()).c_str());
      ingest::IngestPipeline pipeline(source_, config_.recovery,
                                      shared_buffers_);
      return pipeline.run_planned(plan, process);
    }
    ingest::AdaptivePipeline pipeline(*adaptive_device, *adaptive_format,
                                      *adaptive_controller, config_.recovery);
    return pipeline.run(process);
  }();
  clock.stop(Phase::kRead);
  if (!pipeline_result.ok()) return pipeline_result.status();
  result.pipeline = std::move(pipeline_result).value();

  SUPMR_RETURN_IF_ERROR(finish(result, clock));
  clock.stop_total();
  result.phases = clock.snapshot();
  // Phase attribution in chunked mode (paper Table II reports one combined
  // figure): readmap = pipeline wall time; the residual read component is
  // the consumer's starvation time, the map component is compute time.
  result.phases.has_combined_readmap = true;
  result.phases.readmap_s = result.phases.read_s;
  result.phases.read_s = result.pipeline.consumer_wait_s;
  result.phases.map_s = result.pipeline.process_busy_s;
  result.phases.input_bytes = mode == ExecMode::kAdaptive
                                  ? adaptive_device->size()
                                  : source_.total_bytes();
  result.phases.num_chunks = result.pipeline.chunks.size();
  result.phases.chunked = true;
  result.phases.map_rounds = rounds_;
  result.phases.merge_rounds = merge_stats_.num_rounds();
  result.chunks = result.pipeline.chunks.size();
  result.chunks_skipped = result.pipeline.chunks_skipped;
  result.bytes_skipped = result.pipeline.bytes_skipped;
  if (result.degraded()) {
    SUPMR_LOG_WARN("run(%s): DEGRADED — %llu chunk(s) skipped, %s lost",
                   std::string(exec_mode_name(mode)).c_str(),
                   static_cast<unsigned long long>(result.chunks_skipped),
                   format_bytes(result.bytes_skipped).c_str());
  }
  finish_obs(result);
  return result;
}

}  // namespace supmr::core
