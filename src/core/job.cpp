#include "core/job.hpp"

#include <cassert>

#include "common/logging.hpp"
#include "common/units.hpp"

namespace supmr::core {

MapReduceJob::MapReduceJob(Application& app,
                           const ingest::IngestSource& source,
                           JobConfig config)
    : app_(app), source_(source), config_(config) {
  assert(config_.num_map_threads >= 1 && config_.num_reduce_threads >= 1);
  pool_ = std::make_unique<ThreadPool>(
      std::max(config_.num_map_threads, config_.num_reduce_threads));
}

MapReduceJob::~MapReduceJob() = default;

Status MapReduceJob::map_round(const ingest::IngestChunk& chunk) {
  SUPMR_RETURN_IF_ERROR(app_.prepare_round(chunk));
  const std::size_t tasks = app_.round_tasks();
  if (tasks > config_.num_map_threads) {
    return Status::FailedPrecondition(
        "application produced more splits than mapper threads");
  }
  std::vector<std::function<void(std::size_t)>> wave;
  wave.reserve(tasks);
  for (std::size_t t = 0; t < tasks; ++t)
    wave.push_back([this, t](std::size_t) { app_.map_task(t, t); });
  if (config_.unpooled_map_waves) {
    ThreadPool::run_wave_unpooled(wave);
  } else {
    pool_->run_wave(wave);
  }
  ++rounds_;
  return Status::Ok();
}

Status MapReduceJob::finish(JobResult& result, PhaseClock& clock) {
  clock.start(Phase::kReduce);
  SUPMR_RETURN_IF_ERROR(app_.reduce(*pool_, config_.reduce_partitions()));
  clock.stop(Phase::kReduce);

  clock.start(Phase::kMerge);
  SUPMR_RETURN_IF_ERROR(
      app_.merge(*pool_, config_.merge_mode, &merge_stats_));
  clock.stop(Phase::kMerge);

  result.merge_stats = merge_stats_;
  result.result_count = app_.result_count();
  result.map_rounds = rounds_;
  return Status::Ok();
}

StatusOr<JobResult> MapReduceJob::run() {
  JobResult result;
  PhaseClock clock;
  rounds_ = 0;
  clock.start_total();

  clock.start(Phase::kSetup);
  app_.init(config_.num_map_threads);
  SUPMR_ASSIGN_OR_RETURN(std::vector<ingest::ChunkExtent> plan,
                         source_.plan());
  clock.stop(Phase::kSetup);

  // Original runtime: the whole input is one "chunk" read up front. A plan
  // with multiple extents (a chunked source) is still honoured — all chunks
  // are read before any map work, preserving the read-then-compute shape.
  clock.start(Phase::kRead);
  std::vector<ingest::IngestChunk> chunks(plan.size());
  for (std::size_t i = 0; i < plan.size(); ++i) {
    SUPMR_RETURN_IF_ERROR(source_.read_chunk(plan[i], chunks[i]));
  }
  clock.stop(Phase::kRead);

  clock.start(Phase::kMap);
  for (auto& chunk : chunks) {
    SUPMR_RETURN_IF_ERROR(map_round(chunk));
    chunk.data.clear();
    chunk.data.shrink_to_fit();
  }
  clock.stop(Phase::kMap);

  SUPMR_RETURN_IF_ERROR(finish(result, clock));
  clock.stop_total();
  result.phases = clock.snapshot();
  result.phases.input_bytes = source_.total_bytes();
  result.phases.map_rounds = rounds_;
  result.phases.merge_rounds = merge_stats_.num_rounds();
  result.chunks = plan.size();
  result.phases.num_chunks = 0;  // reported as unchunked
  SUPMR_LOG_INFO("run(): total=%.3fs read=%.3fs map=%.3fs", clock.total(),
                 clock.elapsed(Phase::kRead), clock.elapsed(Phase::kMap));
  return result;
}

StatusOr<JobResult> MapReduceJob::run_ingestMR() {
  JobResult result;
  PhaseClock clock;
  rounds_ = 0;
  clock.start_total();

  clock.start(Phase::kSetup);
  app_.init(config_.num_map_threads);
  SUPMR_ASSIGN_OR_RETURN(std::vector<ingest::ChunkExtent> plan,
                         source_.plan());
  clock.stop(Phase::kSetup);

  SUPMR_LOG_INFO("run_ingestMR(): %zu ingest chunks over %s", plan.size(),
                 format_bytes(source_.total_bytes()).c_str());

  // The combined read+map phase: the pipeline's producer ingests chunk
  // c_{i+1} while this (consumer) thread runs the map wave on c_i.
  clock.start(Phase::kRead);  // measures total pipeline wall time
  ingest::IngestPipeline pipeline(source_);
  auto pipeline_result = pipeline.run_planned(
      plan, [this](ingest::IngestChunk& chunk) { return map_round(chunk); });
  clock.stop(Phase::kRead);
  if (!pipeline_result.ok()) return pipeline_result.status();
  result.pipeline = std::move(pipeline_result).value();

  SUPMR_RETURN_IF_ERROR(finish(result, clock));
  clock.stop_total();
  result.phases = clock.snapshot();
  // Phase attribution in chunked mode (paper Table II reports one combined
  // figure): readmap = pipeline wall time; the residual read component is
  // the consumer's starvation time, the map component is compute time.
  result.phases.has_combined_readmap = true;
  result.phases.readmap_s = result.phases.read_s;
  result.phases.read_s = result.pipeline.consumer_wait_s;
  result.phases.map_s = result.pipeline.process_busy_s;
  result.phases.input_bytes = source_.total_bytes();
  result.phases.num_chunks = plan.size();
  result.phases.map_rounds = rounds_;
  result.phases.merge_rounds = merge_stats_.num_rounds();
  result.chunks = plan.size();
  return result;
}

StatusOr<JobResult> MapReduceJob::run_ingestMR_adaptive(
    const storage::Device& device, const ingest::RecordFormat& format,
    ingest::ChunkSizeController& controller) {
  JobResult result;
  PhaseClock clock;
  rounds_ = 0;
  clock.start_total();

  clock.start(Phase::kSetup);
  app_.init(config_.num_map_threads);
  clock.stop(Phase::kSetup);

  clock.start(Phase::kRead);
  ingest::AdaptivePipeline pipeline(device, format, controller);
  auto pipeline_result = pipeline.run(
      [this](ingest::IngestChunk& chunk) { return map_round(chunk); });
  clock.stop(Phase::kRead);
  if (!pipeline_result.ok()) return pipeline_result.status();
  result.pipeline = std::move(pipeline_result).value();

  SUPMR_RETURN_IF_ERROR(finish(result, clock));
  clock.stop_total();
  result.phases = clock.snapshot();
  result.phases.has_combined_readmap = true;
  result.phases.readmap_s = result.phases.read_s;
  result.phases.read_s = result.pipeline.consumer_wait_s;
  result.phases.map_s = result.pipeline.process_busy_s;
  result.phases.input_bytes = device.size();
  result.phases.num_chunks = result.pipeline.chunks.size();
  result.phases.map_rounds = rounds_;
  result.phases.merge_rounds = merge_stats_.num_rounds();
  result.chunks = result.pipeline.chunks.size();
  return result;
}

}  // namespace supmr::core
