// Job configuration: the knobs the paper's evaluation sweeps.
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <thread>

#include "common/enum_names.hpp"
#include "fault/retry_policy.hpp"
#include "ingest/chunk.hpp"

namespace supmr::core {

// Final-merge algorithm (paper §IV).
enum class MergeMode {
  kPairwise,     // original runtime: iterative pairwise merging, halving threads
  kPWay,         // SupMR: single-round parallel p-way merge
  kPartitioned,  // key-range partitioned shuffle: one merge per partition
                 // (docs/merge.md) — partitioning done at map time
};

// What the runtime hands Application::merge: the algorithm plus the
// partition count for MergeMode::kPartitioned (already resolved — never 0).
// Applications that do not shard by key range treat `partitions` as the
// parallelism hint it degenerates to.
struct MergePlan {
  MergeMode mode = MergeMode::kPWay;
  std::size_t partitions = 1;
};

// Which runtime MapReduceJob::run(ExecMode) executes.
enum class ExecMode {
  kOriginal,  // read ALL chunks, then map rounds (the paper's baseline)
  kIngestMR,  // SupMR: the ingest chunk pipeline (combined read+map phase)
  kAdaptive,  // SupMR with controller-driven chunk sizing (§VIII)
};

// Which intermediate container the application uses (--container). kDefault
// keeps each app's own choice (hash, fixed array, ...); kCombining swaps in
// the in-mapper CombiningContainer (containers/combining.hpp), which folds
// duplicate keys at emit time with the app-declared combiner. Only apps that
// declare a combiner (Application::combiner_kind() != kNone) accept
// kCombining — the CLI and ReplaySpec reject it elsewhere.
enum class ContainerMode {
  kDefault,
  kCombining,
};

// Shared name tables (common/enum_names.hpp): the CLI flags, the
// replay/serve/graph spec parsers, and log labels all map through these —
// one row per enumerator, no per-parser if-chains.
inline constexpr EnumName<ExecMode> kExecModeNames[] = {
    {ExecMode::kOriginal, "original"},
    {ExecMode::kIngestMR, "supmr"},
    {ExecMode::kAdaptive, "adaptive"},
};

inline constexpr EnumName<MergeMode> kMergeModeNames[] = {
    {MergeMode::kPairwise, "pairwise"},
    {MergeMode::kPWay, "pway"},
    {MergeMode::kPartitioned, "partitioned"},
};

inline constexpr EnumName<ContainerMode> kContainerModeNames[] = {
    {ContainerMode::kDefault, "default"},
    {ContainerMode::kCombining, "combining"},
};

std::string_view exec_mode_name(ExecMode mode);
std::string_view container_mode_name(ContainerMode mode);

// How ingest moves bytes from the device into chunks (--io). Defined next
// to the chunk structures (ingest/chunk.hpp); aliased here because it is a
// JobConfig knob like ExecMode/MergeMode.
using IoMode = ingest::IoMode;
using ingest::io_mode_name;

struct JobConfig {
  // Runtime selection; callers typically pass this to run():
  //   MapReduceJob job(app, source, config);
  //   auto result = job.run(config.mode);
  ExecMode mode = ExecMode::kIngestMR;

  // Mapper threads per wave; also the maximum input splits per round.
  std::size_t num_map_threads = default_threads();
  // Reducer threads (each owns disjoint hash partitions).
  std::size_t num_reduce_threads = default_threads();
  // Reduce partitions; more partitions -> better balance. 0 = 4x reducers.
  std::size_t num_reduce_partitions = 0;

  MergeMode merge_mode = MergeMode::kPWay;

  // Ingest byte movement (--io): copying reads (default) or zero-copy mmap
  // views. Sources receive this at construction; see docs/ARCHITECTURE.md §2.
  IoMode io = IoMode::kRead;

  // Intermediate container (--container). Applied by construction sites via
  // Application::use_container(); carried here so replay/report see it.
  ContainerMode container = ContainerMode::kDefault;

  // Key-space partitions for MergeMode::kPartitioned (--partitions).
  // 0 = auto: one partition per hardware context, so the per-partition
  // merges exactly fill the machine (docs/merge.md).
  std::size_t num_merge_partitions = 0;

  // Sharded-shuffle cluster runtime (src/cluster/, docs/cluster.md). 0 nodes
  // = the normal single-process run; >= 1 splits the input across that many
  // in-process worker nodes, each running its own MapReduceJob with this
  // config's mode/merge/io/container/thread knobs, then shuffles map output
  // between them. The bandwidth knobs model the scale-out fabric: per-node
  // NIC rate, an optional shared uplink every cross-node byte also crosses,
  // and a per-node ingest-disk rate. node_memory_budget > 0 makes owner
  // partitions larger than the budget take the ExternalSorter spill path.
  std::size_t num_nodes = 0;
  double node_link_bps = 0.0;
  double uplink_bps = 0.0;
  double node_disk_bps = 0.0;
  std::size_t node_memory_budget = 0;

  // Spawn-and-join raw threads for every map wave instead of reusing pooled
  // workers — the paper's per-round thread lifecycle, measurable as overhead
  // with small chunks (§VI.C.1).
  bool unpooled_map_waves = false;

  // Fault tolerance (fault/retry_policy.hpp): chunk-level retry policy for
  // the ingest pipelines, plus degrade mode (skip poisoned chunks with
  // accounting instead of failing the job). Defaults are fail-fast — the
  // pre-fault-layer behaviour. See docs/fault-tolerance.md.
  fault::Recovery recovery;

  // Observability outputs (--metrics-json / --trace-out). When non-empty the
  // job writes an aggregated metrics snapshot / a Chrome-trace (Perfetto)
  // JSON to the path when the run finishes; a non-empty trace path also
  // enables the global trace recorder at run start. See docs/observability.md.
  std::string metrics_json_path;
  std::string trace_out_path;

  std::size_t reduce_partitions() const {
    return num_reduce_partitions ? num_reduce_partitions
                                 : num_reduce_threads * 4;
  }

  std::size_t merge_partitions() const {
    return num_merge_partitions ? num_merge_partitions : default_threads();
  }

  // The resolved plan run() hands to Application::merge.
  MergePlan merge_plan() const { return {merge_mode, merge_partitions()}; }

  static std::size_t default_threads() {
    const unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 4 : hw;
  }
};

inline std::string_view exec_mode_name(ExecMode mode) {
  return enum_to_name(kExecModeNames, mode);
}

inline std::string_view container_mode_name(ContainerMode mode) {
  return enum_to_name(kContainerModeNames, mode);
}

}  // namespace supmr::core
