// The SupMR application interface.
//
// Mirrors the paper's Phoenix++-derived structure (Table I): the runtime
// owns scheduling, ingest and memory movement; the application owns the
// map/reduce logic and its intermediate container. set_data() from the paper
// — "pass the chunk length and ingest chunk pointer back to the application"
// — is prepare_round(chunk) here: the runtime dictates which part of memory
// the callbacks operate on.
//
// Lifecycle, in run(kIngestMR) order:
//   init(mappers)                      once   (persistent container init)
//   for each ingest chunk:
//     prepare_round(chunk)             multiple  (split; claim container space)
//     map_task(t, thread) x tasks      multiple  (parallel wave, t < mappers)
//   reduce(pool, partitions)           once
//   merge(pool, plan, stats)           once
//
// map_task contract: the runtime runs a round's tasks in waves of at most
// `num_map_threads`; tasks within one wave run concurrently with distinct
// thread_ids < the init() mapper count, so a task may use thread_id to
// address a per-thread container stripe without locking. When a round has at
// most `num_map_threads` tasks (the common case), thread_id == task index;
// rounds with more tasks run as successive waves (task = wave_base +
// thread_id) instead of failing.
#pragma once

#include <cstdint>
#include <string>

#include "common/status.hpp"
#include "core/job_config.hpp"
#include "ingest/chunk.hpp"
#include "merge/stats.hpp"
#include "threading/thread_pool.hpp"

namespace supmr::core {

class Application {
 public:
  virtual ~Application() = default;

  // Called once before the first round. Containers must be initialized here
  // and persist across rounds (paper §III.C).
  virtual void init(std::size_t num_map_threads) = 0;

  // The runtime hands the application the current ingest chunk (set_data()).
  // The application partitions it into splits (normally at most
  // `num_map_threads`) and claims any container space the round needs. The
  // chunk reference is only valid until the round's map tasks finish.
  virtual Status prepare_round(const ingest::IngestChunk& chunk) = 0;

  // Number of map tasks for the prepared round. Rounds larger than the
  // mapper count are legal; the runtime batches them into successive waves.
  virtual std::size_t round_tasks() const = 0;

  // Maps split `task` on `thread_id`. Must be safe to run concurrently with
  // the other tasks of the same wave (distinct task indices, distinct
  // thread_ids).
  virtual void map_task(std::size_t task, std::size_t thread_id) = 0;

  // Coalesces intermediate pairs after all rounds (parallel over partitions).
  virtual Status reduce(ThreadPool& pool, std::size_t num_partitions) = 0;

  // Produces the final sorted output with the configured merge algorithm.
  // `plan.partitions` is the resolved partition count for
  // MergeMode::kPartitioned (a parallelism hint otherwise).
  virtual Status merge(ThreadPool& pool, const MergePlan& plan,
                       merge::MergeStats* stats) = 0;

  // Number of output records/pairs — used for result validation.
  virtual std::uint64_t result_count() const = 0;

  // Canonical byte encoding of the final output, for differential
  // comparison against the sequential reference runtime (src/ref/ and
  // tests/harness/). Valid after merge. The encoding must PRESERVE the
  // app's post-merge ordering — a merge/shuffle bug has to change these
  // bytes — and may normalize only what the output contract leaves
  // unspecified (ties between equal keys). Returning "" opts the app out
  // of conformance checking.
  virtual std::string canonical_output() const { return {}; }
};

}  // namespace supmr::core
