// The SupMR application interface.
//
// Mirrors the paper's Phoenix++-derived structure (Table I): the runtime
// owns scheduling, ingest and memory movement; the application owns the
// map/reduce logic and its intermediate container. set_data() from the paper
// — "pass the chunk length and ingest chunk pointer back to the application"
// — is prepare_round(chunk) here: the runtime dictates which part of memory
// the callbacks operate on.
//
// Lifecycle, in run(kIngestMR) order:
//   init(mappers)                      once   (persistent container init)
//   for each ingest chunk:
//     prepare_round(chunk)             multiple  (split; claim container space)
//     map_task(t, thread) x tasks      multiple  (parallel wave, t < mappers)
//   reduce(pool, partitions)           once
//   merge(pool, plan, stats)           once
//
// map_task contract: the runtime runs a round's tasks in waves of at most
// `num_map_threads`; tasks within one wave run concurrently with distinct
// thread_ids < the init() mapper count, so a task may use thread_id to
// address a per-thread container stripe without locking. When a round has at
// most `num_map_threads` tasks (the common case), thread_id == task index;
// rounds with more tasks run as successive waves (task = wave_base +
// thread_id) instead of failing.
#pragma once

#include <cstdint>
#include <string>

#include "common/status.hpp"
#include "core/job_config.hpp"
#include "ingest/chunk.hpp"
#include "merge/stats.hpp"
#include "threading/thread_pool.hpp"

namespace supmr::core {

// The associative fold an application declares for in-mapper combining
// (containers/combining.hpp). kNone means the app has no combiner and
// rejects ContainerMode::kCombining.
enum class CombinerKind {
  kNone,
  kSum,
  kMin,
  kMax,
  kAppend,
};

inline constexpr EnumName<CombinerKind> kCombinerKindNames[] = {
    {CombinerKind::kNone, "none"},   {CombinerKind::kSum, "sum"},
    {CombinerKind::kMin, "min"},     {CombinerKind::kMax, "max"},
    {CombinerKind::kAppend, "append"},
};

inline std::string_view combiner_kind_name(CombinerKind kind) {
  return enum_to_name(kCombinerKindNames, kind);
}

// How the cluster runtime (src/cluster/) may shard an app's canonical
// output across simulated worker nodes and reassemble it byte-identically.
// kNone means the app declares no shuffle protocol and rejects cluster runs.
enum class ShardKind {
  kNone,
  // canonical_output() is "key\tu64\n" lines, sorted lexicographically by
  // key (the prefix up to the LAST tab), keys unique within one run; equal
  // keys across runs fold by summing the decimal value.
  kSortedKeys,
  // canonical_output() is fixed-width records whose global order is
  // full-record memcmp (the key is a record prefix and ties are normalized
  // by full bytes, so equal records are byte-identical).
  kFixedRecords,
  // canonical_output() has an input-independent dense line structure
  // ("label\tu64\n" with identical labels across any input slice); the
  // global output is the element-wise sum of per-node values.
  kAligned,
};

inline constexpr EnumName<ShardKind> kShardKindNames[] = {
    {ShardKind::kNone, "none"},
    {ShardKind::kSortedKeys, "sorted-keys"},
    {ShardKind::kFixedRecords, "fixed-records"},
    {ShardKind::kAligned, "aligned"},
};

inline std::string_view shard_kind_name(ShardKind kind) {
  return enum_to_name(kShardKindNames, kind);
}

// Fold-effectiveness accounting for a combining run (all zero when the app
// ran its default container). bytes_emitted is the intermediate volume a
// non-combining container would have carried into reduce/merge (every emit's
// key+value payload); bytes_into_merge is what actually survived the
// emit-time fold.
struct CombineStats {
  std::uint64_t emits = 0;
  std::uint64_t keys_folded = 0;  // emits absorbed into an existing key
  std::uint64_t bytes_emitted = 0;
  std::uint64_t bytes_into_merge = 0;
  std::uint64_t table_bytes = 0;  // peak combining-table footprint
};

class Application {
 public:
  virtual ~Application() = default;

  // Called once before the first round. Containers must be initialized here
  // and persist across rounds (paper §III.C).
  virtual void init(std::size_t num_map_threads) = 0;

  // The runtime hands the application the current ingest chunk (set_data()).
  // The application partitions it into splits (normally at most
  // `num_map_threads`) and claims any container space the round needs. The
  // chunk reference is only valid until the round's map tasks finish.
  virtual Status prepare_round(const ingest::IngestChunk& chunk) = 0;

  // Number of map tasks for the prepared round. Rounds larger than the
  // mapper count are legal; the runtime batches them into successive waves.
  virtual std::size_t round_tasks() const = 0;

  // Maps split `task` on `thread_id`. Must be safe to run concurrently with
  // the other tasks of the same wave (distinct task indices, distinct
  // thread_ids).
  virtual void map_task(std::size_t task, std::size_t thread_id) = 0;

  // Coalesces intermediate pairs after all rounds (parallel over partitions).
  virtual Status reduce(ThreadPool& pool, std::size_t num_partitions) = 0;

  // Produces the final sorted output with the configured merge algorithm.
  // `plan.partitions` is the resolved partition count for
  // MergeMode::kPartitioned (a parallelism hint otherwise).
  virtual Status merge(ThreadPool& pool, const MergePlan& plan,
                       merge::MergeStats* stats) = 0;

  // Number of output records/pairs — used for result validation.
  virtual std::uint64_t result_count() const = 0;

  // The associative combiner this app can fold with at emit time. kNone
  // (the default) means the app only runs its own container.
  virtual CombinerKind combiner_kind() const { return CombinerKind::kNone; }

  // The shuffle protocol the sharded cluster runtime (src/cluster/) uses to
  // route and reassemble this app's output across worker nodes. kNone (the
  // default) opts the app out of cluster runs.
  virtual ShardKind shard_kind() const { return ShardKind::kNone; }

  // Selects the intermediate container before init(). Construction sites
  // (CLI, conformance harness, quickstart) call this with
  // JobConfig::container; apps that declare a combiner override it to switch
  // their emit seam. The default rejects everything but kDefault, so an app
  // without a combiner can never silently fall back.
  virtual Status use_container(ContainerMode mode) {
    if (mode == ContainerMode::kDefault) return Status::Ok();
    return Status::InvalidArgument(
        "container=" + std::string(container_mode_name(mode)) +
        ": this application declares no combiner");
  }

  // Fold-effectiveness accounting, valid after merge. All-zero unless the
  // app ran with ContainerMode::kCombining.
  virtual CombineStats combine_stats() const { return {}; }

  // Canonical byte encoding of the final output, for differential
  // comparison against the sequential reference runtime (src/ref/ and
  // tests/harness/). Valid after merge. The encoding must PRESERVE the
  // app's post-merge ordering — a merge/shuffle bug has to change these
  // bytes — and may normalize only what the output contract leaves
  // unspecified (ties between equal keys). Returning "" opts the app out
  // of conformance checking.
  virtual std::string canonical_output() const { return {}; }
};

}  // namespace supmr::core
