// The SupMR runtime: scale-up MapReduce with an ingest chunk pipeline.
//
// Two entry points, matching the paper:
//   * run()          — the ORIGINAL runtime: ingest the entire input (read
//                      phase), one map wave over input splits (map phase),
//                      reduce, merge. Fig. 1's structure.
//   * run_ingestMR() — SupMR (paper Table I): the ingest chunk pipeline
//                      overlaps reading chunk c_{i+1} with mapping c_i across
//                      n+1 rounds; read+map become one combined phase.
// Both share reduce/merge; the merge algorithm is selected by
// JobConfig::merge_mode.
#pragma once

#include <memory>

#include "common/phase_timer.hpp"
#include "common/status.hpp"
#include "core/application.hpp"
#include "core/job_config.hpp"
#include "ingest/adaptive.hpp"
#include "ingest/pipeline.hpp"
#include "ingest/source.hpp"
#include "obs/metrics.hpp"

namespace supmr::core {

struct JobResult {
  PhaseBreakdown phases;
  ingest::PipelineStats pipeline;   // populated by run_ingestMR()
  merge::MergeStats merge_stats;
  obs::MetricsSnapshot metrics;     // registry snapshot taken at run end
  std::uint64_t result_count = 0;
  std::uint64_t map_rounds = 0;
  std::uint64_t chunks = 0;

  // Speedup of another run's total time over this run's.
  double speedup_vs(const JobResult& other) const {
    return other.phases.total_s / phases.total_s;
  }
};

class MapReduceJob {
 public:
  // `app` and `source` must outlive the job.
  MapReduceJob(Application& app, const ingest::IngestSource& source,
               JobConfig config);
  ~MapReduceJob();

  MapReduceJob(const MapReduceJob&) = delete;
  MapReduceJob& operator=(const MapReduceJob&) = delete;

  // Original runtime: one-shot ingest, then compute.
  StatusOr<JobResult> run();

  // SupMR: ingest chunk pipeline (the chunking strategy and chunk size live
  // in the source, per the paper's API change).
  StatusOr<JobResult> run_ingestMR();

  // SupMR with the adaptive chunk-size feedback loop (the paper's future
  // work, §VIII): the controller observes per-chunk ingest/map rates and
  // sizes each next chunk. Reads `device` directly (incremental planning
  // has no fixed chunk plan), splitting at `format` record boundaries; the
  // job's IngestSource is not used by this entry point.
  StatusOr<JobResult> run_ingestMR_adaptive(
      const storage::Device& device, const ingest::RecordFormat& format,
      ingest::ChunkSizeController& controller);

  const JobConfig& config() const { return config_; }

 private:
  Status map_round(const ingest::IngestChunk& chunk);
  Status finish(JobResult& result, PhaseClock& clock);
  void begin_obs();
  void finish_obs(JobResult& result);

  Application& app_;
  const ingest::IngestSource& source_;
  JobConfig config_;
  std::unique_ptr<ThreadPool> pool_;
  std::uint64_t rounds_ = 0;
  merge::MergeStats merge_stats_;
};

}  // namespace supmr::core
