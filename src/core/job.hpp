// The SupMR runtime: scale-up MapReduce with an ingest chunk pipeline.
//
// One entry point, keyed by ExecMode (typically JobConfig::mode):
//
//   run(ExecMode::kOriginal)  — the ORIGINAL runtime: ingest the entire
//                               input (read phase), one map wave over input
//                               splits (map phase), reduce, merge. Fig. 1.
//   run(ExecMode::kIngestMR)  — SupMR (paper Table I): the ingest chunk
//                               pipeline overlaps reading chunk c_{i+1} with
//                               mapping c_i across n+1 rounds; read+map
//                               become one combined phase.
//   run(ExecMode::kAdaptive)  — SupMR with the adaptive chunk-size feedback
//                               loop (paper future work, §VIII). Needs a
//                               device + record format: either call
//                               set_adaptive() first, or run over a
//                               SingleDeviceSource and the job derives them
//                               (with an internal RateMatchingController).
//
// All modes share reduce/merge (JobConfig::merge_mode selects the merge
// algorithm) and the fault layer: JobConfig::recovery gives the ingest path
// chunk-level retry/backoff and an optional degrade mode (skip poisoned
// chunks with accounting). See docs/fault-tolerance.md.
#pragma once

#include <memory>

#include "common/phase_timer.hpp"
#include "common/status.hpp"
#include "core/application.hpp"
#include "core/job_config.hpp"
#include "ingest/adaptive.hpp"
#include "ingest/pipeline.hpp"
#include "ingest/source.hpp"
#include "obs/metrics.hpp"

namespace supmr::core {

struct JobResult {
  PhaseBreakdown phases;
  ingest::PipelineStats pipeline;   // populated by the pipelined modes
  merge::MergeStats merge_stats;
  // Fold-effectiveness accounting (Application::combine_stats): all-zero
  // unless the app ran with ContainerMode::kCombining.
  CombineStats combine;
  obs::MetricsSnapshot metrics;     // registry snapshot taken at run end
  std::uint64_t result_count = 0;
  std::uint64_t map_rounds = 0;
  std::uint64_t chunks = 0;
  // Degrade-mode accounting (JobConfig::recovery.degrade): poisoned chunks
  // the run skipped, and the input bytes lost with them. A run with
  // chunks_skipped > 0 completed but its output covers less than the full
  // input — callers that need exactness must check this.
  std::uint64_t chunks_skipped = 0;
  std::uint64_t bytes_skipped = 0;

  bool degraded() const { return chunks_skipped > 0; }

  // Speedup of another run's total time over this run's.
  double speedup_vs(const JobResult& other) const {
    return other.phases.total_s / phases.total_s;
  }
};

class MapReduceJob {
 public:
  // `app` and `source` must outlive the job.
  MapReduceJob(Application& app, const ingest::IngestSource& source,
               JobConfig config);
  ~MapReduceJob();

  MapReduceJob(const MapReduceJob&) = delete;
  MapReduceJob& operator=(const MapReduceJob&) = delete;

  // Unified entry point; callers normally pass config().mode.
  StatusOr<JobResult> run(ExecMode mode);

  // Runs this job on shared, leased runtime resources instead of private
  // ones: map/reduce/merge waves go to `pool` (which may serve other jobs
  // concurrently — wave completion is per-wave, see ThreadPool::run_wave),
  // and the ingest pipeline recycles chunk buffers through `buffers` when
  // non-null. Must be called before run(); both referents must outlive the
  // job. The JobManager is the intended caller.
  void attach_runtime(ThreadPool& pool,
                      ingest::ChunkBufferPool* buffers = nullptr);

  // Adaptive-mode inputs. Optional: when unset and the job's source is a
  // SingleDeviceSource, the device and record format derive from it and an
  // internally-owned RateMatchingController sizes the chunks. All three
  // referents must outlive the job.
  void set_adaptive(const storage::Device& device,
                    const ingest::RecordFormat& format,
                    ingest::ChunkSizeController& controller);

  const JobConfig& config() const { return config_; }

 private:
  Status map_round(const ingest::IngestChunk& chunk);
  Status finish(JobResult& result, PhaseClock& clock);
  void begin_obs();
  void finish_obs(JobResult& result);
  StatusOr<JobResult> run_original();
  StatusOr<JobResult> run_pipelined(ExecMode mode);

  Application& app_;
  const ingest::IngestSource& source_;
  JobConfig config_;
  // pool_ points at owned_pool_ (single-tenant: the job spins up its own
  // workers) or at an attached shared pool (multi-tenant: the JobManager
  // leases slices of one process-wide pool).
  std::unique_ptr<ThreadPool> owned_pool_;
  ThreadPool* pool_ = nullptr;
  ingest::ChunkBufferPool* shared_buffers_ = nullptr;
  std::uint64_t rounds_ = 0;
  merge::MergeStats merge_stats_;

  // Adaptive-mode wiring (set_adaptive or derived from the source).
  const storage::Device* adaptive_device_ = nullptr;
  const ingest::RecordFormat* adaptive_format_ = nullptr;
  ingest::ChunkSizeController* adaptive_controller_ = nullptr;
};

}  // namespace supmr::core
