// Self-contained repro specs for the conformance harness.
//
// A ReplaySpec captures everything one differential cell needs to run
// again: which application, how to regenerate the seeded corpus, the app's
// parameters, and the full JobConfig-shaped cell (ExecMode, MergeMode,
// threads, chunking, fault plan). The harness writes one of these as JSON
// when a cell diverges from the reference runtime; `supmr replay <file>`
// re-runs exactly that cell (src/ref/conformance.hpp). to_json/from_json
// round-trip, and from_json is the repo's only JSON *parser* — a minimal,
// strict reader for the flat spec shape, not a general-purpose one.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "common/status.hpp"
#include "core/job_config.hpp"

namespace supmr::core {

// The seeded corpus generators a spec can name (all deterministic —
// src/wload/): text (wload::generate_text) | terasort
// (wload::teragen_to_string) | numeric (wload::generate_numeric) |
// multi-text (wload::generate_text_files, for MultiFileSource apps).
enum class CorpusKind { kText, kTerasort, kNumeric, kMultiText };

inline constexpr EnumName<CorpusKind> kCorpusKindNames[] = {
    {CorpusKind::kText, "text"},
    {CorpusKind::kTerasort, "terasort"},
    {CorpusKind::kNumeric, "numeric"},
    {CorpusKind::kMultiText, "multi-text"},
};

// How a graph cell hands a stage's output across an edge to the next stage
// (src/graph/): in-memory view source (the SupMR path) or write-out to a
// spill file and re-ingest (the baseline the bench compares against). The
// executor additionally spills memory edges whose payload exceeds the
// graph's handoff budget.
enum class GraphHandoff { kMemory, kFile };

inline constexpr EnumName<GraphHandoff> kGraphHandoffNames[] = {
    {GraphHandoff::kMemory, "memory"},
    {GraphHandoff::kFile, "file"},
};

// How to regenerate the cell's input corpus.
struct CorpusSpec {
  // One of kCorpusKindNames; kept as the spelled name because specs are
  // checked-in JSON (parsed_kind() yields the enum).
  std::string kind = "text";
  std::uint64_t bytes = 1 << 17;
  std::uint64_t seed = 1;
  std::uint64_t num_files = 6;  // multi-text only

  StatusOr<CorpusKind> parsed_kind() const {
    return enum_from_name(kCorpusKindNames, kind, "corpus kind");
  }
};

struct ReplaySpec {
  // Single-round apps: wordcount | xwordcount (spilling container) | sort |
  // grep | histogram | index | paircount | doctermcount. Chained graph apps
  // (src/graph/): pmi | tfidf | msort — these run a multi-stage JobGraph and
  // compare against ref::run_graph instead of run_ref.
  std::string app = "wordcount";
  CorpusSpec corpus;

  // Application parameters (only the ones the named app reads apply).
  std::uint64_t key_bytes = 10;       // sort
  std::uint64_t record_bytes = 100;   // sort
  std::uint64_t app_partitions = 0;   // sort: map-time PartitionedContainer
  std::int64_t hist_lo = 0;           // histogram
  std::int64_t hist_hi = 256;         // histogram
  std::uint64_t hist_bins = 32;       // histogram
  std::string grep_patterns = "th,he,zz";  // grep (comma-separated)
  std::uint64_t memory_budget = 0;    // xwordcount spill budget (bytes)

  // The config-lattice cell.
  ExecMode mode = ExecMode::kIngestMR;
  MergeMode merge_mode = MergeMode::kPWay;
  IoMode io = IoMode::kRead;  // optional in the JSON (older specs omit it)
  // Intermediate container; optional in the JSON (older specs omit it).
  // container=combining is only legal for apps that declare a combiner
  // (wordcount, histogram, index, paircount, doctermcount) — from_json
  // rejects the rest so a spec can never silently fall back.
  ContainerMode container = ContainerMode::kDefault;
  std::uint64_t threads = 2;
  std::uint64_t merge_partitions = 0;  // 0 = auto
  std::uint64_t chunk_bytes = 64 * 1024;
  std::uint64_t files_per_chunk = 3;   // MultiFileSource apps
  bool degrade = false;
  std::string fault_plan;              // fault::FaultPlan grammar; "" = none
  std::uint64_t retry_attempts = 1;

  // Graph cells only (optional in the JSON — single-round specs omit it):
  // edge handoff policy and the in-memory handoff budget in bytes (0 =
  // unlimited; a tiny budget forces the spill-at-boundary path).
  GraphHandoff graph_handoff = GraphHandoff::kMemory;
  std::uint64_t graph_budget = 0;

  // Cluster cells only (optional in the JSON — non-cluster specs omit the
  // whole object): nodes > 0 routes the cell through the sharded-shuffle
  // runtime (src/cluster/) with that many simulated worker nodes; the
  // bandwidth knobs (bytes/second) model per-node NICs, the shared uplink,
  // and per-node ingest disks, and budget > 0 spills over-budget
  // fixed-record owner partitions through the ExternalSorter.
  std::uint64_t cluster_nodes = 0;
  std::uint64_t cluster_link_bps = 0;
  std::uint64_t cluster_uplink_bps = 0;
  std::uint64_t cluster_disk_bps = 0;
  std::uint64_t cluster_budget = 0;

  // True for the chained graph apps (pmi | tfidf | msort).
  bool is_graph() const {
    return app == "pmi" || app == "tfidf" || app == "msort";
  }

  // True when the cell runs through the cluster runtime.
  bool is_cluster() const { return cluster_nodes > 0; }

  std::string to_json() const;
  // Strict parse of a spec produced by to_json (or hand-written in the same
  // shape). Unknown keys, malformed JSON, and out-of-range enum names are
  // errors — a repro file that drifted from the schema fails loudly.
  static StatusOr<ReplaySpec> from_json(std::string_view text);
};

// Enum <-> name helpers shared by the spec parsers and the CLI — thin
// wrappers over the kExecModeNames / kMergeModeNames / kIoModeNames /
// kGraphHandoffNames tables (common/enum_names.hpp). exec_mode_name()
// lives in job_config.hpp; these complete the set.
std::string_view merge_mode_name(MergeMode mode);
std::string_view graph_handoff_name(GraphHandoff handoff);
StatusOr<ExecMode> exec_mode_from_name(std::string_view name);
StatusOr<MergeMode> merge_mode_from_name(std::string_view name);
StatusOr<IoMode> io_mode_from_name(std::string_view name);
StatusOr<GraphHandoff> graph_handoff_from_name(std::string_view name);
StatusOr<ContainerMode> container_mode_from_name(std::string_view name);

// Whether the named spec app declares a combiner, i.e. accepts
// container=combining. Shared by from_json and the CLI so both reject the
// same set.
bool app_has_combiner(std::string_view app);

}  // namespace supmr::core
