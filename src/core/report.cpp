#include "core/report.hpp"

#include "common/json.hpp"
#include "obs/metrics.hpp"

namespace supmr::core {

namespace {

void write_phases(JsonWriter& w, const PhaseBreakdown& p) {
  w.begin_object();
  w.kv("total_s", p.total_s);
  if (p.has_combined_readmap) {
    w.kv("readmap_s", p.readmap_s);
    w.kv("read_component_s", p.read_s);
    w.kv("map_component_s", p.map_s);
  } else {
    w.kv("read_s", p.read_s);
    w.kv("map_s", p.map_s);
  }
  w.kv("reduce_s", p.reduce_s);
  w.kv("merge_s", p.merge_s);
  w.kv("setup_s", p.setup_s);
  w.kv("cleanup_s", p.cleanup_s);
  w.kv("input_bytes", p.input_bytes);
  // num_chunks is the plan's real extent count in every mode; `chunked`
  // carries the presentation (the original runtime reads all chunks up
  // front). Keeping both makes the phases block self-consistent with the
  // top-level "chunks" field instead of zeroing one to imply the other.
  w.kv("num_chunks", p.num_chunks);
  w.kv("chunked", p.chunked);
  w.kv("map_rounds", p.map_rounds);
  w.kv("merge_rounds", p.merge_rounds);
  w.end_object();
}

}  // namespace

std::string phases_to_json(const PhaseBreakdown& phases) {
  JsonWriter w;
  write_phases(w, phases);
  return w.str();
}

std::string job_result_to_json(const JobResult& result) {
  JsonWriter w;
  w.begin_object();
  w.key("phases");
  write_phases(w, result.phases);
  w.kv("result_count", result.result_count);
  w.kv("map_rounds", result.map_rounds);
  w.kv("chunks", result.chunks);
  // Degrade-mode accounting (docs/fault-tolerance.md): a degraded run
  // completed but skipped poisoned chunks, so its output covers less than
  // the full input.
  w.kv("chunks_skipped", result.chunks_skipped);
  w.kv("bytes_skipped", result.bytes_skipped);
  w.kv("degraded", result.degraded());

  w.key("pipeline");
  w.begin_object();
  w.kv("total_s", result.pipeline.total_s);
  w.kv("ingest_busy_s", result.pipeline.ingest_busy_s);
  w.kv("process_busy_s", result.pipeline.process_busy_s);
  w.kv("consumer_wait_s", result.pipeline.consumer_wait_s);
  w.kv("total_bytes", result.pipeline.total_bytes);
  w.kv("chunk_retries", result.pipeline.chunk_retries);
  w.kv("chunks_skipped", result.pipeline.chunks_skipped);
  w.kv("bytes_skipped", result.pipeline.bytes_skipped);
  w.key("chunks");
  w.begin_array();
  for (const auto& c : result.pipeline.chunks) {
    w.begin_object();
    w.kv("index", c.index);
    w.kv("bytes", c.bytes);
    w.kv("ingest_s", c.ingest_s);
    w.kv("wait_s", c.wait_s);
    w.kv("process_s", c.process_s);
    w.kv("attempts", std::uint64_t{c.attempts});
    w.kv("skipped", c.skipped);
    w.end_object();
  }
  w.end_array();
  w.end_object();

  w.key("merge_rounds");
  w.begin_array();
  for (const auto& r : result.merge_stats.rounds) {
    w.begin_object();
    w.kv("active_workers", std::uint64_t{r.active_workers});
    w.kv("items_moved", r.items_moved);
    w.kv("wall_s", r.wall_s);
    w.end_object();
  }
  w.end_array();

  // In-mapper combining accounting (docs/containers.md); all-zero unless
  // the app ran with --container=combining.
  w.key("combine");
  w.begin_object();
  w.kv("emits", result.combine.emits);
  w.kv("keys_folded", result.combine.keys_folded);
  w.kv("bytes_emitted", result.combine.bytes_emitted);
  w.kv("bytes_into_merge", result.combine.bytes_into_merge);
  w.kv("table_bytes", result.combine.table_bytes);
  w.end_object();

  // Partitioned-shuffle geometry (docs/merge.md); partitions = 0 means the
  // merge ran as a single global round.
  w.key("merge_partitioned");
  w.begin_object();
  w.kv("partitions", std::uint64_t{result.merge_stats.partitions});
  w.kv("partition_max_items", result.merge_stats.partition_max_items);
  w.kv("partition_min_items", result.merge_stats.partition_min_items);
  w.kv("partition_skew", result.merge_stats.partition_skew());
  w.end_object();

  w.key("metrics");
  obs::write_metrics(w, result.metrics);
  w.end_object();
  return w.str();
}

std::string status_to_json(const Status& status) {
  JsonWriter w;
  w.begin_object();
  w.kv("ok", status.ok());
  w.kv("code", std::string(status_code_name(status.code())));
  w.kv("message", status.message());
  w.end_object();
  return w.str();
}

std::string timeseries_to_json(const TimeSeries& trace) {
  JsonWriter w;
  w.begin_object();
  w.key("t");
  w.begin_array();
  for (std::size_t i = 0; i < trace.samples(); ++i) w.value(trace.time(i));
  w.end_array();
  for (std::size_t c = 0; c < trace.channels(); ++c) {
    w.key(trace.channel_name(c));
    w.begin_array();
    for (std::size_t i = 0; i < trace.samples(); ++i)
      w.value(trace.value(i, c));
    w.end_array();
  }
  w.end_object();
  return w.str();
}

}  // namespace supmr::core
