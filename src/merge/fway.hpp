// Iterative f-way merge: the generalization bridging the paper's two merge
// algorithms.
//
// Round-based merging with fan-in f merges groups of f runs per round using
// a loser tree; f = 2 is exactly the original runtime's pairwise merge
// (log2(R) rounds) and f >= R is exactly one p-way round. Sweeping f
// quantifies how much of SupMR's 3.1x merge speedup comes from round count
// vs parallel width — the ablation the paper's Conclusion 3 gestures at.
//
// Each round merges ceil(R/f) groups in parallel (one worker per group),
// moving every element once per round: total moves = N * ceil(log_f(R)).
#pragma once

#include <chrono>
#include <span>
#include <vector>

#include "merge/loser_tree.hpp"
#include "merge/sample_sort.hpp"
#include "merge/stats.hpp"
#include "threading/thread_pool.hpp"

namespace supmr::merge {

// Merges `runs` (sorted under cmp, laid out back-to-back in `buffer`) with
// fan-in `fanin` per round. The sorted result ends in `buffer`.
template <typename T, typename Cmp>
MergeStats fway_merge(ThreadPool& pool, std::vector<std::span<T>> runs,
                      std::span<T> buffer, std::size_t fanin, Cmp cmp) {
  MergeStats stats;
  if (fanin < 2) fanin = 2;
  if (runs.size() <= 1) return stats;

  std::vector<T> scratch(buffer.size());
  std::span<T> dst(scratch.data(), scratch.size());
  bool result_in_scratch = false;

  while (runs.size() > 1) {
    const auto t0 = std::chrono::steady_clock::now();
    std::vector<std::span<T>> next;
    std::vector<std::function<void(std::size_t)>> tasks;
    std::size_t offset = 0;
    for (std::size_t g = 0; g < runs.size(); g += fanin) {
      const std::size_t last = std::min(g + fanin, runs.size());
      std::size_t group_size = 0;
      for (std::size_t r = g; r < last; ++r) group_size += runs[r].size();
      T* out = dst.data() + offset;
      next.push_back(std::span<T>(out, group_size));
      if (last - g == 1) {
        // Lone trailing run: copy through to keep the packed layout.
        std::span<T> lone = runs[g];
        tasks.push_back([lone, out](std::size_t) {
          std::copy(lone.begin(), lone.end(), out);
        });
      } else {
        std::vector<std::span<const T>> group;
        for (std::size_t r = g; r < last; ++r)
          group.push_back(std::span<const T>(runs[r].data(), runs[r].size()));
        tasks.push_back([group = std::move(group), out, &cmp](std::size_t) {
          LoserTree<T, Cmp> tree(group, cmp);
          tree.drain(out);
        });
      }
      offset += group_size;
    }
    pool.run_wave_or_throw(tasks);

    MergeStats::Round round;
    round.active_workers = tasks.size();
    round.items_moved = buffer.size();
    round.wall_s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    stats.rounds.push_back(round);

    runs = std::move(next);
    std::swap(buffer, dst);
    result_in_scratch = !result_in_scratch;
  }

  if (result_in_scratch) {
    std::copy(scratch.begin(), scratch.end(), dst.begin());
  }
  return stats;
}

// Full sort: parallel run formation + iterative f-way merging.
template <typename T, typename Cmp>
MergeStats fway_merge_sort(ThreadPool& pool, std::span<T> data, Cmp cmp,
                           std::size_t num_runs, std::size_t fanin) {
  auto runs = form_runs_parallel(pool, data, num_runs, cmp);
  return fway_merge(pool, std::move(runs), data, fanin, cmp);
}

}  // namespace supmr::merge
