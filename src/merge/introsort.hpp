// Introsort: quicksort with median-of-three pivots, falling back to heapsort
// past a depth limit and to insertion sort for small ranges. This is the
// in-core sorter behind run formation; written from scratch so the library
// carries no hidden dependence on std::sort's (unspecified) algorithm when
// we count comparisons in benchmarks.
#pragma once

#include <algorithm>
#include <cstddef>
#include <iterator>
#include <utility>

namespace supmr::merge {

namespace detail {

inline constexpr std::ptrdiff_t kInsertionThreshold = 24;

template <typename It, typename Cmp>
void insertion_sort(It first, It last, Cmp& cmp) {
  for (It i = first == last ? last : std::next(first); i != last; ++i) {
    auto value = std::move(*i);
    It j = i;
    while (j != first && cmp(value, *std::prev(j))) {
      *j = std::move(*std::prev(j));
      --j;
    }
    *j = std::move(value);
  }
}

template <typename It, typename Cmp>
void sift_down(It first, std::ptrdiff_t start, std::ptrdiff_t end, Cmp& cmp) {
  std::ptrdiff_t root = start;
  while (2 * root + 1 < end) {
    std::ptrdiff_t child = 2 * root + 1;
    if (child + 1 < end && cmp(first[child], first[child + 1])) ++child;
    if (cmp(first[root], first[child])) {
      std::swap(first[root], first[child]);
      root = child;
    } else {
      return;
    }
  }
}

template <typename It, typename Cmp>
void heap_sort(It first, It last, Cmp& cmp) {
  const std::ptrdiff_t n = last - first;
  for (std::ptrdiff_t start = n / 2 - 1; start >= 0; --start)
    sift_down(first, start, n, cmp);
  for (std::ptrdiff_t end = n - 1; end > 0; --end) {
    std::swap(first[0], first[end]);
    sift_down(first, 0, end, cmp);
  }
}

template <typename It, typename Cmp>
It median_of_three(It a, It b, It c, Cmp& cmp) {
  if (cmp(*a, *b)) {
    if (cmp(*b, *c)) return b;
    return cmp(*a, *c) ? c : a;
  }
  if (cmp(*a, *c)) return a;
  return cmp(*b, *c) ? c : b;
}

template <typename It, typename Cmp>
void introsort_impl(It first, It last, int depth_budget, Cmp& cmp) {
  while (last - first > kInsertionThreshold) {
    if (depth_budget == 0) {
      heap_sort(first, last, cmp);
      return;
    }
    --depth_budget;
    It mid = first + (last - first) / 2;
    It pivot_it = median_of_three(first, mid, std::prev(last), cmp);
    auto pivot = *pivot_it;
    // Hoare partition.
    It lo = first;
    It hi = std::prev(last);
    while (true) {
      while (cmp(*lo, pivot)) ++lo;
      while (cmp(pivot, *hi)) --hi;
      if (lo >= hi) break;
      std::swap(*lo, *hi);
      ++lo;
      --hi;
    }
    // Recurse into the smaller side, loop on the larger (bounded stack).
    It split = std::next(hi);
    if (split - first < last - split) {
      introsort_impl(first, split, depth_budget, cmp);
      first = split;
    } else {
      introsort_impl(split, last, depth_budget, cmp);
      last = split;
    }
  }
  insertion_sort(first, last, cmp);
}

}  // namespace detail

template <typename It, typename Cmp>
void introsort(It first, It last, Cmp cmp) {
  if (last - first <= 1) return;
  int depth = 0;
  for (auto n = last - first; n > 1; n >>= 1) depth += 2;
  detail::introsort_impl(first, last, depth, cmp);
}

template <typename It>
void introsort(It first, It last) {
  introsort(first, last, std::less<>{});
}

}  // namespace supmr::merge
