// Merge-phase instrumentation.
//
// The paper's Fig. 1 vs Fig. 6 contrast is about *rounds*: pairwise merge
// re-scans all keys log2(R) times with halving parallelism (the "step"
// curve), while p-way merge scans once at full parallelism. MergeStats
// records exactly that geometry so real-mode benches can print it.
#pragma once

#include <cstdint>
#include <vector>

namespace supmr::merge {

struct MergeStats {
  struct Round {
    std::size_t active_workers = 0;
    std::uint64_t items_moved = 0;  // elements written this round
    double wall_s = 0.0;
  };
  std::vector<Round> rounds;

  // Partitioned-merge geometry (merge/partitioned.hpp, docs/merge.md): when
  // the merge ran as independent per-partition merges, `partitions` is the
  // partition count and the item figures capture the key-space skew the
  // splitters produced. 0 means the merge was a single global round.
  std::size_t partitions = 0;
  std::uint64_t partition_max_items = 0;
  std::uint64_t partition_min_items = 0;

  std::size_t num_rounds() const { return rounds.size(); }
  std::uint64_t total_items_moved() const {
    std::uint64_t n = 0;
    for (const auto& r : rounds) n += r.items_moved;
    return n;
  }

  // max / mean partition size; 1.0 = perfectly balanced. A skew of k means
  // the critical-path partition merge ran k times longer than the average.
  double partition_skew() const {
    if (partitions == 0 || rounds.empty()) return 1.0;
    const double mean =
        double(rounds.front().items_moved) / double(partitions);
    return mean > 0.0 ? double(partition_max_items) / mean : 1.0;
  }
};

}  // namespace supmr::merge
