// Merge-phase instrumentation.
//
// The paper's Fig. 1 vs Fig. 6 contrast is about *rounds*: pairwise merge
// re-scans all keys log2(R) times with halving parallelism (the "step"
// curve), while p-way merge scans once at full parallelism. MergeStats
// records exactly that geometry so real-mode benches can print it.
#pragma once

#include <cstdint>
#include <vector>

namespace supmr::merge {

struct MergeStats {
  struct Round {
    std::size_t active_workers = 0;
    std::uint64_t items_moved = 0;  // elements written this round
    double wall_s = 0.0;
  };
  std::vector<Round> rounds;

  std::size_t num_rounds() const { return rounds.size(); }
  std::uint64_t total_items_moved() const {
    std::uint64_t n = 0;
    for (const auto& r : rounds) n += r.items_moved;
    return n;
  }
};

}  // namespace supmr::merge
