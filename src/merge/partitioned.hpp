// Partitioned merge: per-partition loser-tree merges over a key-range
// sharded intermediate set.
//
// The p-way merge (pway.hpp) removed the paper's round barrier but kept one
// global round over the persistent container: sample, binary-search every
// splitter in every run, then merge — the sampling/splitting prologue is
// serial and every worker's loser tree still spans ALL runs. This header
// moves the partitioning off the merge critical path entirely: when the
// intermediate data is already sharded into P key-range partitions (at map
// time via containers::PartitionedContainer, or by partition_values()), the
// merge phase degenerates into P fully independent merges that scale with
// hardware contexts, and the concatenation of partition outputs is globally
// sorted by construction. This is Phoenix++'s container sharding fused with
// sample sort's splitter discipline (paper §IV, SupMR Fig. 6).
//
// Invariant shared by everything here: splitters s_0 < s_1 < ... < s_{P-2}
// assign an element x to partition upper_bound(splitters, x) — equal keys
// always land in the same partition, so partition p's keys all sort strictly
// before partition p+1's.
#pragma once

#include <algorithm>
#include <chrono>
#include <span>
#include <vector>

#include "common/test_hooks.hpp"
#include "merge/introsort.hpp"
#include "merge/loser_tree.hpp"
#include "merge/stats.hpp"
#include "obs/macros.hpp"
#include "threading/thread_pool.hpp"

namespace supmr::merge {

// Picks up to `partitions - 1` splitters by sampling `data` evenly (~32
// probes per partition), sorting the sample, and taking evenly spaced
// quantiles. Deterministic: evenly spaced probes, no RNG. Duplicate
// splitters are collapsed, so the result may be shorter than partitions - 1
// (duplicate-heavy inputs genuinely need fewer cuts).
template <typename T, typename Cmp>
std::vector<T> select_splitters(std::span<const T> data,
                                std::size_t partitions, Cmp cmp) {
  std::vector<T> splitters;
  if (partitions < 2 || data.size() < 2) return splitters;

  std::vector<T> sample;
  const std::size_t want = std::min<std::size_t>(data.size(), 32 * partitions);
  const std::size_t step = std::max<std::size_t>(1, data.size() / want);
  for (std::size_t i = step / 2; i < data.size(); i += step)
    sample.push_back(data[i]);
  std::sort(sample.begin(), sample.end(), cmp);

  for (std::size_t p = 1; p < partitions; ++p) {
    const T& cut = sample[p * sample.size() / partitions];
    if (splitters.empty() || cmp(splitters.back(), cut))
      splitters.push_back(cut);
  }
  return splitters;
}

// Partition index of `x` under `splitters` (sorted, strictly increasing):
// the number of splitters <= x. Equal keys map to the same partition.
template <typename T, typename Cmp>
std::size_t partition_of(const std::vector<T>& splitters, const T& x,
                         Cmp cmp) {
  std::size_t p = static_cast<std::size_t>(
      std::upper_bound(splitters.begin(), splitters.end(), x, cmp) -
      splitters.begin());
  // "partition-routing" mutation hook (conformance harness smoke): rotate
  // every element one partition up, wrapping the top key range into
  // partition 0. The wrap is what makes it detectable — a uniform or
  // monotone shift would be erased by the per-stripe sorts downstream.
  static const bool mutate_routing = test_mutation_enabled("partition-routing");
  if (mutate_routing && !splitters.empty()) {
    p = (p + 1) % (splitters.size() + 1);
  }
  return p;
}

// Buckets `data` into splitters.size() + 1 partitions, preserving arrival
// order within each partition. The map-time path for values that are not in
// a PartitionedContainer yet (tests, benches, word-count style runs).
template <typename T, typename Cmp>
std::vector<std::vector<T>> partition_values(std::span<const T> data,
                                             const std::vector<T>& splitters,
                                             Cmp cmp) {
  std::vector<std::vector<T>> parts(splitters.size() + 1);
  for (const T& x : data) parts[partition_of(splitters, x, cmp)].push_back(x);
  return parts;
}

namespace detail {

inline void record_partition_stats(MergeStats& stats,
                                   const std::vector<std::uint64_t>& sizes) {
  stats.partitions = sizes.size();
  stats.partition_max_items = 0;
  stats.partition_min_items = sizes.empty() ? 0 : ~std::uint64_t{0};
  std::uint64_t total = 0;
  for (std::uint64_t s : sizes) {
    stats.partition_max_items = std::max(stats.partition_max_items, s);
    stats.partition_min_items = std::min(stats.partition_min_items, s);
    total += s;
  }
  if (sizes.empty()) stats.partition_min_items = 0;
  SUPMR_GAUGE_SET("merge.partitions", sizes.size());
  SUPMR_GAUGE_SET("merge.partition_max_items", stats.partition_max_items);
  SUPMR_GAUGE_SET("merge.partition_mean_items",
                  sizes.empty() ? 0 : total / sizes.size());
}

}  // namespace detail

// Merges key-range partitioned stripes into `out` in ONE parallel pass.
//
// `partitions[p]` holds partition p's stripes (one per producer thread; any
// count, any sizes, possibly empty). Stripes need NOT be sorted: a first
// wave introsorts every stripe in parallel (P*T-way parallelism), a second
// wave runs one loser-tree merge per partition into that partition's
// disjoint output window (offsets are prefix sums — no synchronization).
// Because partitions are key-ordered, `out` ends globally sorted.
template <typename T, typename Cmp>
MergeStats partitioned_merge(ThreadPool& pool,
                             std::vector<std::vector<std::span<T>>> partitions,
                             T* out, Cmp cmp) {
  MergeStats stats;
  const auto t0 = std::chrono::steady_clock::now();
  const std::size_t P = partitions.size();
  if (P == 0) return stats;

  std::vector<std::uint64_t> sizes(P, 0);
  std::uint64_t total = 0;
  for (std::size_t p = 0; p < P; ++p) {
    for (const auto& s : partitions[p]) sizes[p] += s.size();
    total += sizes[p];
  }
  detail::record_partition_stats(stats, sizes);
  if (total == 0) return stats;

  SUPMR_TRACE_SCOPE_VAR(span, "merge", "merge.partitioned");
  SUPMR_TRACE_SET_ARG(span, "partitions", P);
  SUPMR_TRACE_SET_ARG2(span, "items", total);
  SUPMR_COUNTER_ADD("merge.rounds", 1);
  SUPMR_COUNTER_ADD("merge.items_moved", total);

  // Wave 1: sort every stripe independently.
  std::vector<std::function<void(std::size_t)>> sort_tasks;
  for (auto& part : partitions) {
    for (auto& stripe : part) {
      if (stripe.size() < 2) continue;
      sort_tasks.push_back([stripe, &cmp](std::size_t) {
        introsort(stripe.begin(), stripe.end(), cmp);
      });
    }
  }
  pool.run_wave_or_throw(sort_tasks);

  // Wave 2: one loser-tree merge per partition into its output window.
  std::vector<std::uint64_t> offsets(P + 1, 0);
  for (std::size_t p = 0; p < P; ++p) offsets[p + 1] = offsets[p] + sizes[p];

  std::vector<std::function<void(std::size_t)>> merge_tasks;
  for (std::size_t p = 0; p < P; ++p) {
    if (sizes[p] == 0) continue;
    merge_tasks.push_back([&partitions, &offsets, out, &cmp, p](std::size_t) {
      SUPMR_TRACE_SCOPE_VAR(pspan, "merge", "merge.partition");
      SUPMR_TRACE_SET_ARG(pspan, "partition", p);
      SUPMR_TRACE_SET_ARG2(pspan, "items", offsets[p + 1] - offsets[p]);
      std::vector<std::span<const T>> runs;
      runs.reserve(partitions[p].size());
      for (const auto& stripe : partitions[p])
        runs.push_back(std::span<const T>(stripe.data(), stripe.size()));
      LoserTree<T, Cmp> tree(std::move(runs), cmp);
      tree.drain(out + offsets[p]);
    });
  }
  pool.run_wave_or_throw(merge_tasks);

  MergeStats::Round round;
  round.active_workers = std::min(merge_tasks.size(), pool.size());
  round.items_moved = total;
  round.wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  stats.rounds.push_back(round);
  return stats;
}

// Full sort via map-time-style partitioning: split `data` into one shard per
// pool thread, bucket each shard by sampled splitters (parallel, lock-free —
// each shard owns its (shard, partition) bucket), then partitioned_merge the
// buckets back into `data`. The kernel-level twin of the
// PartitionedContainer + per-partition merge path inside the runtime.
template <typename T, typename Cmp>
MergeStats partitioned_sort(ThreadPool& pool, std::span<T> data, Cmp cmp,
                            std::size_t num_partitions = 0) {
  MergeStats stats;
  if (data.size() < 2) {
    detail::record_partition_stats(
        stats, std::vector<std::uint64_t>(
                   std::max<std::size_t>(1, num_partitions), data.size()));
    return stats;
  }
  if (num_partitions == 0) num_partitions = pool.size();
  const std::vector<T> splitters = select_splitters(
      std::span<const T>(data.data(), data.size()), num_partitions, cmp);
  const std::size_t P = splitters.size() + 1;

  // Shard-parallel bucketing (the "map-time fill" stage).
  const std::size_t shards =
      std::max<std::size_t>(1, std::min(pool.size(), data.size()));
  const std::size_t per = (data.size() + shards - 1) / shards;
  // buckets[shard][partition]
  std::vector<std::vector<std::vector<T>>> buckets(
      shards, std::vector<std::vector<T>>(P));
  std::vector<std::function<void(std::size_t)>> bucket_tasks;
  for (std::size_t s = 0; s < shards; ++s) {
    const std::size_t begin = s * per;
    if (begin >= data.size()) break;
    const std::size_t end = std::min(begin + per, data.size());
    bucket_tasks.push_back([&, s, begin, end](std::size_t) {
      for (std::size_t i = begin; i < end; ++i) {
        buckets[s][partition_of(splitters, data[i], cmp)].push_back(
            std::move(data[i]));
      }
    });
  }
  pool.run_wave_or_throw(bucket_tasks);

  // Regroup bucket spans by partition and merge back into `data`.
  std::vector<std::vector<std::span<T>>> partitions(P);
  for (std::size_t p = 0; p < P; ++p) {
    for (std::size_t s = 0; s < shards; ++s) {
      if (!buckets[s][p].empty())
        partitions[p].push_back(std::span<T>(buckets[s][p]));
    }
  }
  return partitioned_merge(pool, std::move(partitions), data.data(), cmp);
}

}  // namespace supmr::merge
