// Iterative pairwise parallel merge — the *baseline* merge the original
// runtime uses (paper §IV, Fig. 1's step curve).
//
// Round r merges pairs of sorted runs in parallel, one worker per pair:
// R/2 workers, then R/4, ... then 1. Every round re-scans all N elements,
// so total work is N*log2(R) moves and utilization decays geometrically —
// precisely the inefficiency SupMR's single-round p-way merge removes.
#pragma once

#include <chrono>
#include <span>
#include <vector>

#include "merge/stats.hpp"
#include "obs/macros.hpp"
#include "threading/thread_pool.hpp"

namespace supmr::merge {

namespace detail {

template <typename T, typename Cmp>
void merge_two(std::span<const T> a, std::span<const T> b, T* out, Cmp& cmp) {
  std::size_t i = 0, j = 0, o = 0;
  while (i < a.size() && j < b.size())
    out[o++] = cmp(b[j], a[i]) ? b[j++] : a[i++];
  while (i < a.size()) out[o++] = a[i++];
  while (j < b.size()) out[o++] = b[j++];
}

}  // namespace detail

// Merges `runs` (each sorted under cmp, laid out back-to-back in `buffer` of
// total size n) into sorted order. Ping-pongs between `buffer` and a scratch
// allocation; the sorted result always ends in `buffer`. Returns stats with
// one entry per round.
template <typename T, typename Cmp>
MergeStats pairwise_merge(ThreadPool& pool, std::vector<std::span<T>> runs,
                          std::span<T> buffer, Cmp cmp) {
  MergeStats stats;
  if (runs.size() <= 1) return stats;

  std::vector<T> scratch(buffer.size());
  std::span<T> src = buffer;
  std::span<T> dst(scratch.data(), scratch.size());
  bool result_in_scratch = false;

  while (runs.size() > 1) {
    SUPMR_TRACE_SCOPE_VAR(span, "merge", "merge.pairwise_round");
    SUPMR_TRACE_SET_ARG(span, "runs", runs.size());
    SUPMR_TRACE_SET_ARG2(span, "items", buffer.size());
    SUPMR_COUNTER_ADD("merge.rounds", 1);
    SUPMR_COUNTER_ADD("merge.items_moved", buffer.size());
    const auto t0 = std::chrono::steady_clock::now();
    std::vector<std::span<T>> next;
    next.reserve((runs.size() + 1) / 2);

    // Compute each pair's destination offset within dst (same layout).
    std::vector<std::function<void(std::size_t)>> tasks;
    std::size_t offset = 0;
    for (std::size_t p = 0; p + 1 < runs.size(); p += 2) {
      std::span<T> a = runs[p];
      std::span<T> b = runs[p + 1];
      T* out = dst.data() + offset;
      next.push_back(std::span<T>(out, a.size() + b.size()));
      tasks.push_back([a, b, out, &cmp](std::size_t) {
        detail::merge_two<T, Cmp>(std::span<const T>(a.data(), a.size()),
                                  std::span<const T>(b.data(), b.size()), out,
                                  cmp);
      });
      offset += a.size() + b.size();
    }
    if (runs.size() % 2 == 1) {
      // Odd run out: copy through so the next round's layout stays packed.
      std::span<T> last = runs.back();
      T* out = dst.data() + offset;
      next.push_back(std::span<T>(out, last.size()));
      tasks.push_back([last, out](std::size_t) {
        std::copy(last.begin(), last.end(), out);
      });
    }

    pool.run_wave_or_throw(tasks);

    MergeStats::Round round;
    round.active_workers = tasks.size();
    round.items_moved = buffer.size();
    round.wall_s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    stats.rounds.push_back(round);

    runs = std::move(next);
    std::swap(src, dst);
    result_in_scratch = !result_in_scratch;
  }

  if (result_in_scratch)
    std::copy(scratch.begin(), scratch.end(), buffer.begin());
  return stats;
}

}  // namespace supmr::merge
