// Parallel sorters built from the kernels.
//
// form_runs_parallel + one merge = a full parallel sort. Two compositions:
//   * pairwise_merge_sort  — run formation + iterative pairwise merging:
//     the ORIGINAL runtime's merge-sort (Fig. 1 behaviour);
//   * parallel_sample_sort — run formation + single parallel p-way merge:
//     the "OpenMP / __gnu_parallel::sort" style sorter SupMR adopts (Fig. 6).
// Both sort in place over a contiguous buffer and report MergeStats.
#pragma once

#include <span>
#include <vector>

#include "merge/introsort.hpp"
#include "merge/pairwise.hpp"
#include "merge/pway.hpp"
#include "merge/stats.hpp"

namespace supmr::merge {

// Splits `data` into `num_runs` nearly equal pieces and introsorts each on
// the pool. Returns the run extents (back-to-back in `data`).
template <typename T, typename Cmp>
std::vector<std::span<T>> form_runs_parallel(ThreadPool& pool,
                                             std::span<T> data,
                                             std::size_t num_runs, Cmp cmp) {
  num_runs = std::max<std::size_t>(1, std::min(num_runs, data.size()));
  const std::size_t per = (data.size() + num_runs - 1) / num_runs;
  std::vector<std::span<T>> runs;
  std::vector<std::function<void(std::size_t)>> tasks;
  for (std::size_t r = 0; r < num_runs; ++r) {
    const std::size_t begin = r * per;
    if (begin >= data.size()) break;
    const std::size_t end = std::min(begin + per, data.size());
    std::span<T> run = data.subspan(begin, end - begin);
    runs.push_back(run);
    tasks.push_back([run, &cmp](std::size_t) {
      introsort(run.begin(), run.end(), cmp);
    });
  }
  pool.run_wave_or_throw(tasks);
  return runs;
}

// Original-runtime sort: parallel run formation then iterative pairwise
// merging with halving parallelism.
template <typename T, typename Cmp>
MergeStats pairwise_merge_sort(ThreadPool& pool, std::span<T> data, Cmp cmp,
                               std::size_t num_runs = 0) {
  if (num_runs == 0) num_runs = pool.size() * 2;
  auto runs = form_runs_parallel(pool, data, num_runs, cmp);
  return pairwise_merge(pool, std::move(runs), data, cmp);
}

// SupMR sort: parallel run formation then a single parallel p-way merge.
// Needs one scratch buffer of data.size() for the merge output.
template <typename T, typename Cmp>
MergeStats parallel_sample_sort(ThreadPool& pool, std::span<T> data, Cmp cmp,
                                std::size_t num_runs = 0) {
  if (num_runs == 0) num_runs = pool.size() * 2;
  auto runs = form_runs_parallel(pool, data, num_runs, cmp);
  std::vector<std::span<const T>> const_runs;
  const_runs.reserve(runs.size());
  for (auto& r : runs)
    const_runs.push_back(std::span<const T>(r.data(), r.size()));
  std::vector<T> out(data.size());
  MergeStats stats =
      parallel_pway_merge(pool, std::move(const_runs), out.data(), cmp);
  std::copy(out.begin(), out.end(), data.begin());
  return stats;
}

}  // namespace supmr::merge
