#include "merge/external_sorter.hpp"

#include <cassert>
#include <chrono>
#include <cstring>

#include "fault/retrying_device.hpp"
#include "merge/partitioned.hpp"
#include "merge/sample_sort.hpp"
#include "obs/macros.hpp"
#include "storage/file_device.hpp"

namespace supmr::merge {

namespace {

// A sequential cursor over one sorted run: either a spill device (positional
// reads in slabs through the retrying seam) or the in-memory residue.
class RunCursor {
 public:
  Status open_device(std::shared_ptr<const storage::Device> device,
                     std::uint32_t record_bytes, std::uint64_t slab_bytes,
                     const fault::RetryPolicy& retry) {
    rb_ = record_bytes;
    device_ = std::move(device);
    if (retry.enabled()) {
      device_ = std::make_shared<fault::RetryingDevice>(device_, retry);
    }
    // Slab holds whole records.
    const std::uint64_t records =
        std::max<std::uint64_t>(1, slab_bytes / record_bytes);
    slab_.resize(records * record_bytes);
    return refill();
  }

  void open_memory(std::vector<char> data, std::uint32_t record_bytes) {
    rb_ = record_bytes;
    slab_ = std::move(data);
    slab_len_ = slab_.size();
    pos_ = 0;
    eof_ = true;
  }

  bool exhausted() const { return pos_ >= slab_len_ && eof_; }
  const char* head() const { return slab_.data() + pos_; }

  Status advance() {
    pos_ += rb_;
    if (pos_ >= slab_len_ && !eof_) return refill();
    return Status::Ok();
  }

 private:
  Status refill() {
    if (device_ == nullptr) {
      eof_ = true;
      return Status::Ok();
    }
    const std::uint64_t remaining = device_->size() - offset_;
    const std::uint64_t want =
        std::min<std::uint64_t>(slab_.size(), remaining);
    if (want == 0) {
      slab_len_ = 0;
      pos_ = 0;
      eof_ = true;
      return Status::Ok();
    }
    auto n = device_->read_at(offset_,
                              std::span<char>(slab_.data(), want));
    if (!n.ok()) return n.status();
    if (*n == 0 || *n % rb_ != 0) {
      return Status::IoError("spill file truncated mid-record");
    }
    offset_ += *n;
    slab_len_ = *n;
    pos_ = 0;
    if (offset_ >= device_->size()) eof_ = true;
    return Status::Ok();
  }

  std::shared_ptr<const storage::Device> device_;
  std::uint64_t offset_ = 0;
  std::vector<char> slab_;
  std::size_t slab_len_ = 0;
  std::size_t pos_ = 0;
  std::uint32_t rb_ = 0;
  bool eof_ = false;
};

// Loser tree over run cursors (streaming variant of merge::LoserTree).
class CursorLoserTree {
 public:
  CursorLoserTree(std::vector<RunCursor>& runs, std::uint32_t key_bytes)
      : runs_(runs), kb_(key_bytes) {
    k_ = 1;
    while (k_ < runs_.size()) k_ <<= 1;
    tree_.assign(k_, kInvalid);
    build();
  }

  bool empty() const {
    return winner_ == kInvalid || runs_[winner_].exhausted();
  }
  std::size_t winner() const { return winner_; }

  Status pop_advance() {
    SUPMR_RETURN_IF_ERROR(runs_[winner_].advance());
    replay(winner_);
    return Status::Ok();
  }

 private:
  static constexpr std::size_t kInvalid = ~std::size_t{0};

  bool alive(std::size_t r) const {
    return r < runs_.size() && !runs_[r].exhausted();
  }
  bool beats(std::size_t a, std::size_t b) const {
    if (!alive(a)) return false;
    if (!alive(b)) return true;
    return std::memcmp(runs_[a].head(), runs_[b].head(), kb_) <= 0;
  }

  void build() {
    std::vector<std::size_t> up(k_);
    for (std::size_t i = 0; i < k_; ++i) up[i] = i;
    std::size_t level = k_;
    while (level > 1) {
      for (std::size_t i = 0; i < level; i += 2) {
        const std::size_t a = up[i], b = up[i + 1];
        const bool a_wins = beats(a, b);
        tree_[(level + i) / 2] = a_wins ? b : a;
        up[i / 2] = a_wins ? a : b;
      }
      level /= 2;
    }
    winner_ = up[0];
    if (!alive(winner_)) winner_ = kInvalid;
  }

  void replay(std::size_t run) {
    if (k_ == 1) {  // single run: no internal nodes to replay
      winner_ = alive(0) ? 0 : kInvalid;
      return;
    }
    std::size_t node = (k_ + run) / 2;
    std::size_t candidate = run;
    while (true) {
      const std::size_t other = tree_[node];
      if (other != kInvalid && beats(other, candidate)) {
        tree_[node] = candidate;
        candidate = other;
      }
      if (node == 1) break;
      node /= 2;
    }
    winner_ = alive(candidate) ? candidate : kInvalid;
    if (winner_ == kInvalid) {
      // The candidate died; rebuild to find any remaining run (rare: only
      // at run exhaustion boundaries).
      build();
    }
  }

  std::vector<RunCursor>& runs_;
  std::uint32_t kb_;
  std::size_t k_ = 0;
  std::vector<std::size_t> tree_;
  std::size_t winner_ = kInvalid;
};

}  // namespace

ExternalSorter::ExternalSorter(ThreadPool& pool,
                               ExternalSorterOptions options)
    : pool_(pool), options_(options) {
  assert(options_.record_bytes > 0 &&
         options_.key_bytes <= options_.record_bytes);
  // Budget must hold at least a handful of records.
  options_.memory_budget_bytes = std::max<std::uint64_t>(
      options_.memory_budget_bytes, 16ULL * options_.record_bytes);
  buffer_.reserve(options_.memory_budget_bytes);
  spills_.assign(std::max<std::size_t>(1, options_.partitions), {});
}

ExternalSorter::~ExternalSorter() {
  for (const auto& part : spills_)
    for (const auto& path : part) std::remove(path.c_str());
}

Status ExternalSorter::add(std::span<const char> records) {
  if (finished_) return Status::FailedPrecondition("finish() already called");
  if (records.size() % options_.record_bytes != 0) {
    return Status::InvalidArgument("add() requires whole records");
  }
  std::size_t offset = 0;
  while (offset < records.size()) {
    const std::uint64_t room = options_.memory_budget_bytes - buffer_.size();
    const std::uint64_t take_records =
        std::min<std::uint64_t>(room / options_.record_bytes,
                                (records.size() - offset) /
                                    options_.record_bytes);
    const std::uint64_t take = take_records * options_.record_bytes;
    buffer_.insert(buffer_.end(), records.begin() + offset,
                   records.begin() + offset + take);
    buffered_records_ += take_records;
    records_added_ += take_records;
    offset += take;
    if (buffer_.size() + options_.record_bytes >
        options_.memory_budget_bytes) {
      SUPMR_RETURN_IF_ERROR(spill_buffer());
    }
  }
  return Status::Ok();
}

void ExternalSorter::sort_buffer(std::vector<std::uint64_t>& index) {
  index.resize(buffered_records_);
  for (std::uint64_t i = 0; i < buffered_records_; ++i) index[i] = i;
  const char* data = buffer_.data();
  const std::uint32_t rb = options_.record_bytes;
  const std::uint32_t kb = options_.key_bytes;
  auto cmp = [data, rb, kb](std::uint64_t a, std::uint64_t b) {
    return std::memcmp(data + a * rb, data + b * rb, kb) < 0;
  };
  parallel_sample_sort(pool_,
                       std::span<std::uint64_t>(index.data(), index.size()),
                       cmp);
}

// Cuts partitions() - 1 splitter keys from the current (sorted) buffer at
// evenly spaced quantiles, dropping duplicate cuts — the external twin of
// PartitionedContainer::sample_splitters. Runs once, on the first spill, so
// every later spill splits at identical keys.
void ExternalSorter::select_splitters(
    const std::vector<std::uint64_t>& index) {
  const std::uint32_t rb = options_.record_bytes;
  const std::uint32_t kb = options_.key_bytes;
  const std::size_t P = spills_.size();
  splitters_.clear();
  if (P < 2 || buffered_records_ < 2) return;
  for (std::size_t p = 1; p < P; ++p) {
    const char* cut =
        buffer_.data() + index[p * buffered_records_ / P] * rb;
    if (!splitters_.empty() &&
        std::memcmp(splitters_.data() + splitters_.size() - kb, cut, kb) >=
            0) {
      continue;  // duplicate quantile — this key range needs fewer cuts
    }
    splitters_.insert(splitters_.end(), cut, cut + kb);
  }
}

// Number of splitters <= key: equal keys share a partition, so partition
// p's keys all sort strictly before partition p+1's.
std::size_t ExternalSorter::partition_of(const char* key) const {
  const std::uint32_t kb = options_.key_bytes;
  std::size_t lo = 0, hi = splitters_.size() / kb;
  while (lo < hi) {
    const std::size_t mid = lo + (hi - lo) / 2;
    if (std::memcmp(splitters_.data() + mid * kb, key, kb) <= 0) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

Status ExternalSorter::spill_buffer() {
  if (buffered_records_ == 0) return Status::Ok();
  SUPMR_TRACE_SCOPE_VAR(span, "merge", "merge.spill");
  SUPMR_TRACE_SET_ARG(span, "records", buffered_records_);
  SUPMR_TRACE_SET_ARG2(span, "bytes", buffer_.size());
  SUPMR_COUNTER_ADD("merge.spills", 1);
  SUPMR_COUNTER_ADD("merge.spill_bytes", buffer_.size());
  std::vector<std::uint64_t> index;
  sort_buffer(index);

  const std::uint32_t rb = options_.record_bytes;
  const std::size_t P = spills_.size();
  if (P > 1 && splitters_.empty() && runs_spilled() == 0) {
    select_splitters(index);
  }

  // The sorted permutation splits into contiguous per-partition ranges;
  // each non-empty range becomes one spill run for its partition.
  std::vector<std::uint64_t> bounds(P + 1, buffered_records_);
  bounds[0] = 0;
  std::size_t cur = 0;
  for (std::uint64_t i = 0; i < buffered_records_; ++i) {
    const std::size_t p = partition_of(buffer_.data() + index[i] * rb);
    while (cur < p) bounds[++cur] = i;
  }
  while (cur + 1 < P) bounds[++cur] = buffered_records_;

  std::vector<char> slab(std::max<std::uint64_t>(rb, 1 << 20) / rb * rb);
  for (std::size_t p = 0; p < P; ++p) {
    const std::uint64_t first = bounds[p], last = bounds[p + 1];
    if (first == last) continue;
    char name[80];
    std::snprintf(name, sizeof(name), "/supmr_spill_%p_%zu_p%zu.run",
                  static_cast<void*>(this), runs_spilled(), p);
    const std::string path = options_.spill_dir + name;
    std::FILE* f = std::fopen(path.c_str(), "wb");
    if (f == nullptr) return Status::IoError("cannot create spill " + path);

    // Write permuted records through a staging slab.
    std::size_t fill = 0;
    for (std::uint64_t i = first; i < last; ++i) {
      std::memcpy(slab.data() + fill, buffer_.data() + index[i] * rb, rb);
      fill += rb;
      if (fill == slab.size() || i + 1 == last) {
        if (std::fwrite(slab.data(), 1, fill, f) != fill) {
          std::fclose(f);
          return Status::IoError("short write to spill " + path);
        }
        fill = 0;
      }
    }
    if (std::fclose(f) != 0) return Status::IoError("spill close failed");
    spills_[p].push_back(path);
  }
  buffer_.clear();
  buffered_records_ = 0;
  return Status::Ok();
}

StatusOr<MergeStats> ExternalSorter::finish(const Sink& sink) {
  if (finished_) return Status::FailedPrecondition("finish() already called");
  finished_ = true;
  MergeStats stats;
  const auto t0 = std::chrono::steady_clock::now();
  const std::uint32_t rb = options_.record_bytes;

  // In-memory residue becomes one pre-sorted run.
  std::vector<char> residue;
  if (buffered_records_ > 0) {
    std::vector<std::uint64_t> index;
    sort_buffer(index);
    residue.resize(buffered_records_ * rb);
    for (std::uint64_t i = 0; i < buffered_records_; ++i) {
      std::memcpy(residue.data() + i * rb, buffer_.data() + index[i] * rb,
                  rb);
    }
    buffer_.clear();
    buffered_records_ = 0;
  }

  // Residue slices per partition: the residue is sorted, so each
  // partition's records are one contiguous range.
  const std::size_t P = spills_.size();
  const std::uint64_t res_records = residue.size() / rb;
  std::vector<std::uint64_t> res_bounds(P + 1, res_records);
  res_bounds[0] = 0;
  {
    std::size_t cur = 0;
    for (std::uint64_t i = 0; i < res_records; ++i) {
      const std::size_t p = partition_of(residue.data() + i * rb);
      while (cur < p) res_bounds[++cur] = i;
    }
    while (cur + 1 < P) res_bounds[++cur] = res_records;
  }

  if (runs_spilled() == 0 && res_records == 0) return stats;

  SUPMR_TRACE_SCOPE_VAR(span, "merge", "merge.external_merge");
  SUPMR_TRACE_SET_ARG(span, "runs", runs_spilled() + (res_records ? 1 : 0));
  SUPMR_TRACE_SET_ARG2(span, "records", records_added_);

  // One loser-tree merge per partition, in partition (= key) order, so the
  // concatenated sink stream is globally sorted. Sequential across
  // partitions: the sink contract is ordered delivery, and per-partition
  // trees keep peak memory at merge_read_bytes * runs-in-one-partition.
  std::vector<char> out(std::max<std::uint64_t>(rb, 1 << 20) / rb * rb);
  std::uint64_t emitted = 0;
  std::vector<std::uint64_t> per_part(P, 0);
  for (std::size_t p = 0; p < P; ++p) {
    const std::uint64_t res_n = res_bounds[p + 1] - res_bounds[p];
    std::vector<RunCursor> runs(spills_[p].size() + (res_n ? 1 : 0));
    for (std::size_t r = 0; r < spills_[p].size(); ++r) {
      std::shared_ptr<const storage::Device> dev;
      if (options_.open_spill) {
        SUPMR_ASSIGN_OR_RETURN(dev, options_.open_spill(spills_[p][r]));
      } else {
        SUPMR_ASSIGN_OR_RETURN(auto file,
                               storage::FileDevice::open(spills_[p][r]));
        dev = std::move(file);
      }
      SUPMR_RETURN_IF_ERROR(runs[r].open_device(
          std::move(dev), rb, options_.merge_read_bytes, options_.retry));
    }
    if (res_n > 0) {
      runs.back().open_memory(
          std::vector<char>(residue.begin() + res_bounds[p] * rb,
                            residue.begin() + res_bounds[p + 1] * rb),
          rb);
    }
    if (runs.empty()) continue;

    SUPMR_TRACE_SCOPE_VAR(pspan, "merge", "merge.partition");
    SUPMR_TRACE_SET_ARG(pspan, "partition", p);
    SUPMR_TRACE_SET_ARG2(pspan, "runs", runs.size());
    CursorLoserTree tree(runs, options_.key_bytes);
    std::size_t fill = 0;
    while (!tree.empty()) {
      std::memcpy(out.data() + fill, runs[tree.winner()].head(), rb);
      fill += rb;
      ++emitted;
      ++per_part[p];
      SUPMR_RETURN_IF_ERROR(tree.pop_advance());
      if (fill == out.size() || tree.empty()) {
        SUPMR_RETURN_IF_ERROR(
            sink(std::span<const char>(out.data(), fill)));
        fill = 0;
      }
    }
  }
  if (emitted != records_added_) {
    return Status::Internal("external merge lost records: emitted " +
                            std::to_string(emitted) + " of " +
                            std::to_string(records_added_));
  }

  for (const auto& part : spills_)
    for (const auto& path : part) std::remove(path.c_str());
  for (auto& part : spills_) part.clear();

  MergeStats::Round round;
  round.active_workers = 1;
  round.items_moved = emitted;
  round.wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  stats.rounds.push_back(round);
  if (P > 1) detail::record_partition_stats(stats, per_part);
  return stats;
}

}  // namespace supmr::merge
