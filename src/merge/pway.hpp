// Parallel p-way merge: SupMR's replacement merge phase (paper §IV).
//
// Merges N sorted runs into the output in ONE round using p workers:
//   1. sample keys across runs, sort the sample, pick p-1 splitters;
//   2. binary-search each splitter in each run, giving each worker a
//      disjoint slice of every run plus a disjoint output window (offsets
//      are prefix sums of slice sizes — no worker synchronization);
//   3. each worker loser-tree-merges its slices into its window.
// Every element moves exactly once and all p workers stay busy — the
// single tall utilization spike of Fig. 6, versus the pairwise step curve.
#pragma once

#include <algorithm>
#include <chrono>
#include <span>
#include <vector>

#include "common/rng.hpp"
#include "common/test_hooks.hpp"
#include "merge/loser_tree.hpp"
#include "merge/stats.hpp"
#include "obs/macros.hpp"
#include "threading/thread_pool.hpp"

namespace supmr::merge {

// Merges `runs` (each sorted under cmp) into `out` (size >= total elements).
// `p` defaults to the pool size. Returns single-round stats.
template <typename T, typename Cmp>
MergeStats parallel_pway_merge(ThreadPool& pool,
                               std::vector<std::span<const T>> runs, T* out,
                               Cmp cmp, std::size_t p = 0) {
  MergeStats stats;
  const auto t0 = std::chrono::steady_clock::now();
  if (p == 0) p = pool.size();

  std::uint64_t total = 0;
  for (const auto& r : runs) total += r.size();
  if (total == 0) return stats;
  SUPMR_TRACE_SCOPE_VAR(span, "merge", "merge.pway_round");
  SUPMR_TRACE_SET_ARG(span, "runs", runs.size());
  SUPMR_TRACE_SET_ARG2(span, "items", total);
  SUPMR_COUNTER_ADD("merge.rounds", 1);
  SUPMR_COUNTER_ADD("merge.items_moved", total);
  p = std::min<std::size_t>(p, std::max<std::uint64_t>(1, total));

  // 1. Sample: ~32 probes per worker, spread evenly over each run.
  std::vector<T> sample;
  const std::size_t per_run =
      std::max<std::size_t>(1, 32 * p / std::max<std::size_t>(1, runs.size()));
  for (const auto& r : runs) {
    if (r.empty()) continue;
    const std::size_t step = std::max<std::size_t>(1, r.size() / per_run);
    for (std::size_t i = step / 2; i < r.size(); i += step)
      sample.push_back(r[i]);
  }
  std::sort(sample.begin(), sample.end(), cmp);

  // 2. Splitters -> per-worker slice boundaries in every run.
  // boundaries[w][r] = first index of run r belonging to worker >= w.
  std::vector<std::vector<std::size_t>> boundaries(p + 1);
  boundaries[0].assign(runs.size(), 0);
  for (std::size_t w = 1; w < p; ++w) {
    const T& splitter = sample[w * sample.size() / p];
    boundaries[w].resize(runs.size());
    for (std::size_t r = 0; r < runs.size(); ++r) {
      boundaries[w][r] = static_cast<std::size_t>(
          std::lower_bound(runs[r].begin(), runs[r].end(), splitter, cmp) -
          runs[r].begin());
    }
  }
  boundaries[p].resize(runs.size());
  for (std::size_t r = 0; r < runs.size(); ++r)
    boundaries[p][r] = runs[r].size();

  // Output offsets: prefix sums of each worker's total slice size.
  std::vector<std::uint64_t> out_offset(p + 1, 0);
  for (std::size_t w = 0; w < p; ++w) {
    std::uint64_t slice = 0;
    for (std::size_t r = 0; r < runs.size(); ++r)
      slice += boundaries[w + 1][r] - boundaries[w][r];
    out_offset[w + 1] = out_offset[w] + slice;
  }

  // 3. Independent loser-tree merges. The "pway-comparator" mutation hook
  // (conformance harness smoke) inverts the comparator in this stage ONLY —
  // the splitting above keeps using the real cmp, because handing an
  // inconsistent comparator to std::lower_bound would be unspecified
  // behaviour rather than a clean wrong answer.
  static const bool mutate_cmp = test_mutation_enabled("pway-comparator");
  std::vector<std::function<void(std::size_t)>> tasks;
  tasks.reserve(p);
  for (std::size_t w = 0; w < p; ++w) {
    if (out_offset[w + 1] == out_offset[w]) continue;
    tasks.push_back([&, w](std::size_t) {
      std::vector<std::span<const T>> slices;
      slices.reserve(runs.size());
      for (std::size_t r = 0; r < runs.size(); ++r) {
        slices.push_back(
            runs[r].subspan(boundaries[w][r],
                            boundaries[w + 1][r] - boundaries[w][r]));
      }
      if (mutate_cmp) {
        auto inverted = [&cmp](const T& a, const T& b) { return cmp(b, a); };
        LoserTree<T, decltype(inverted)> tree(std::move(slices), inverted);
        tree.drain(out + out_offset[w]);
      } else {
        LoserTree<T, Cmp> tree(std::move(slices), cmp);
        tree.drain(out + out_offset[w]);
      }
    });
  }
  pool.run_wave_or_throw(tasks);

  MergeStats::Round round;
  round.active_workers = tasks.size();
  round.items_moved = total;
  round.wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  stats.rounds.push_back(round);
  return stats;
}

}  // namespace supmr::merge
