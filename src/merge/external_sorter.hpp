// External sorter: fixed-width record sort under a memory budget.
//
// The paper's testbed holds the whole 60 GB input in 384 GB of RAM; a
// production scale-up deployment eventually meets a dataset that does not
// fit. This module extends SupMR's merge machinery to that regime with the
// classic external merge sort, built from the same kernels:
//   * ingest side: add() buffers records; when the budget fills, the buffer
//     is sorted (parallel sample sort over an index array) and written out
//     as one sorted RUN to the spill directory;
//   * merge side: finish() streams all runs (plus the in-memory residue)
//     through a single loser-tree k-way merge — one round, exactly the
//     paper's p-way merge argument applied to disk-resident runs — and
//     emits the globally sorted output through a callback.
// Spill files are deleted as their runs drain.
//
// Not thread-safe: one producer calls add()/finish(); the internal sorting
// parallelizes on the caller's pool.
#pragma once

#include <cstdint>
#include <cstdio>
#include <functional>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "common/status.hpp"
#include "fault/retry_policy.hpp"
#include "merge/stats.hpp"
#include "storage/device.hpp"
#include "threading/thread_pool.hpp"

namespace supmr::merge {

struct ExternalSorterOptions {
  std::uint32_t record_bytes = 100;
  std::uint32_t key_bytes = 10;
  // In-memory buffer; one run is spilled each time it fills.
  std::uint64_t memory_budget_bytes = 64 << 20;
  // Directory for spill files (must exist).
  std::string spill_dir = "/tmp";
  // Read-ahead per run during the final merge.
  std::uint64_t merge_read_bytes = 1 << 20;
  // > 1 spills each sorted buffer as per-partition runs instead of one
  // global run: splitters are cut from the first spill (sample-sort style,
  // docs/merge.md), every later spill splits at the same keys, and finish()
  // merges partition by partition — each loser tree spans only one
  // partition's runs, and partition outputs concatenate in key order.
  std::size_t partitions = 1;
  // Spill reads go through the same retrying seam as ingest: each run is
  // reopened as a storage::Device and, when `retry` is enabled, wrapped in a
  // fault::RetryingDevice so transient read faults are absorbed here too.
  fault::RetryPolicy retry;
  // Device factory for reopening spill files during the final merge
  // (tests substitute fault-injecting stacks). Null = FileDevice::open.
  std::function<StatusOr<std::shared_ptr<const storage::Device>>(
      const std::string&)>
      open_spill;
};

class ExternalSorter {
 public:
  ExternalSorter(ThreadPool& pool, ExternalSorterOptions options);
  ~ExternalSorter();

  ExternalSorter(const ExternalSorter&) = delete;
  ExternalSorter& operator=(const ExternalSorter&) = delete;

  // Appends whole records (size must be a multiple of record_bytes).
  Status add(std::span<const char> records);

  // Sink receives the sorted output in record-aligned slabs, in order.
  using Sink = std::function<Status(std::span<const char>)>;

  // Sorts everything added so far and streams it to `sink`. May be called
  // once. Returns merge statistics (single round over runs()+1 sources).
  StatusOr<MergeStats> finish(const Sink& sink);

  std::uint64_t records_added() const { return records_added_; }
  std::size_t runs_spilled() const {
    std::size_t n = 0;
    for (const auto& p : spills_) n += p.size();
    return n;
  }
  std::size_t partitions() const { return spills_.size(); }

 private:
  Status spill_buffer();
  void sort_buffer(std::vector<std::uint64_t>& index);
  void select_splitters(const std::vector<std::uint64_t>& index);
  std::size_t partition_of(const char* key) const;

  ThreadPool& pool_;
  ExternalSorterOptions options_;
  std::vector<char> buffer_;
  std::uint64_t buffered_records_ = 0;
  std::uint64_t records_added_ = 0;
  // spills_[partition] = spill run paths for that key range; size is
  // max(1, options.partitions), so the flat single-run layout is the 1 case.
  std::vector<std::vector<std::string>> spills_;
  std::vector<char> splitters_;  // num_splitters * key_bytes, sorted
  bool finished_ = false;
};

}  // namespace supmr::merge
