// Loser-tree (tournament) k-way merge.
//
// Merges N sorted runs into one output in a single pass with log2(N)
// comparisons per element — the p-way merging of Salzberg [9] that SupMR
// substitutes for the runtime's iterative pairwise merge (paper §IV). The
// loser tree keeps the loser of each internal match so advancing the winner
// replays only one root-to-leaf path.
#pragma once

#include <cassert>
#include <cstdint>
#include <span>
#include <vector>

namespace supmr::merge {

template <typename T, typename Cmp>
class LoserTree {
 public:
  // `runs` must each be sorted under `cmp`. Empty runs are allowed.
  LoserTree(std::vector<std::span<const T>> runs, Cmp cmp)
      : runs_(std::move(runs)), cmp_(cmp) {
    k_ = 1;
    while (k_ < runs_.size()) k_ <<= 1;  // pad to a power of two
    cursor_.assign(runs_.size(), 0);
    tree_.assign(k_, kInvalid);
    remaining_ = 0;
    for (const auto& r : runs_) remaining_ += r.size();
    build();
  }

  bool empty() const { return remaining_ == 0; }
  std::uint64_t remaining() const { return remaining_; }

  // Pops the smallest element across all runs.
  const T& pop() {
    assert(!empty());
    const std::size_t win = winner_;
    const T& result = runs_[win][cursor_[win]];
    ++cursor_[win];
    --remaining_;
    replay(win);
    return result;
  }

  // Drains everything into `out` (must have room for remaining()).
  void drain(T* out) {
    while (!empty()) *out++ = pop();
  }

 private:
  static constexpr std::size_t kInvalid = ~std::size_t{0};

  bool exhausted(std::size_t run) const {
    return run >= runs_.size() || cursor_[run] >= runs_[run].size();
  }

  // True if run a's head sorts before run b's head (exhausted runs lose).
  bool beats(std::size_t a, std::size_t b) const {
    if (exhausted(a)) return false;
    if (exhausted(b)) return true;
    return !cmp_(runs_[b][cursor_[b]], runs_[a][cursor_[a]]);  // stable: ties to lower index via caller order
  }

  void build() {
    // Play the full tournament once: leaves are run indices; tree_[i] holds
    // the loser of the match at internal node i; winner_ holds the champion.
    std::vector<std::size_t> up(k_);
    for (std::size_t i = 0; i < k_; ++i) up[i] = i;
    std::size_t level = k_;
    while (level > 1) {
      for (std::size_t i = 0; i < level; i += 2) {
        const std::size_t a = up[i], b = up[i + 1];
        const bool a_wins = beats(a, b);
        const std::size_t winner = a_wins ? a : b;
        const std::size_t loser = a_wins ? b : a;
        tree_[(level + i) / 2] = loser;
        up[i / 2] = winner;
      }
      level /= 2;
    }
    winner_ = up[0];
  }

  void replay(std::size_t run) {
    // Walk from leaf `run` to the root, swapping with stored losers when
    // they now beat the current candidate.
    std::size_t node = (k_ + run) / 2;
    std::size_t candidate = run;
    while (node >= 1) {
      const std::size_t other = tree_[node];
      if (other != kInvalid && beats(other, candidate)) {
        tree_[node] = candidate;
        candidate = other;
      }
      if (node == 1) break;
      node /= 2;
    }
    winner_ = candidate;
  }

  std::vector<std::span<const T>> runs_;
  Cmp cmp_;
  std::size_t k_ = 0;
  std::vector<std::size_t> cursor_;
  std::vector<std::size_t> tree_;  // loser at each internal node
  std::size_t winner_ = kInvalid;
  std::uint64_t remaining_ = 0;
};

}  // namespace supmr::merge
