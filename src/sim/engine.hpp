// Discrete-event simulation engine: a virtual clock and an event calendar.
//
// The perfmodel layer replays the SupMR runtime's schedule (ingest pipeline
// rounds, map waves, merge rounds) against modelled resources at the paper's
// full scale (155 GB / 60 GB, 32 hardware contexts, 384 MB/s RAID-0) in
// milliseconds of host time. Events fire in (time, insertion-sequence) order
// so simultaneous events are deterministic.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

namespace supmr::sim {

using SimTime = double;  // virtual seconds

class Engine {
 public:
  Engine() = default;
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  SimTime now() const { return now_; }

  // Schedules `fn` to run at virtual time `t` (>= now()).
  void schedule_at(SimTime t, std::function<void()> fn);

  // Schedules `fn` to run `delay` seconds from now.
  void schedule_after(SimTime delay, std::function<void()> fn) {
    schedule_at(now_ + delay, std::move(fn));
  }

  // Runs events until the calendar is empty. Returns the final virtual time.
  SimTime run();

  // Runs events with time <= t_end; leaves later events queued.
  void run_until(SimTime t_end);

  std::uint64_t events_executed() const { return executed_; }

 private:
  struct Event {
    SimTime t;
    std::uint64_t seq;
    std::function<void()> fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.t != b.t) return a.t > b.t;
      return a.seq > b.seq;
    }
  };

  std::priority_queue<Event, std::vector<Event>, Later> calendar_;
  SimTime now_ = 0.0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
};

}  // namespace supmr::sim
