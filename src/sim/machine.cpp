#include "sim/machine.hpp"

#include <algorithm>
#include <cassert>

namespace supmr::sim {

Machine::Machine(Engine& engine, MachineConfig config)
    : engine_(engine), config_(config) {
  assert(config.hardware_contexts > 0);
  cpu_ = std::make_unique<PsResource>(engine, "cpu",
                                      double(config.hardware_contexts),
                                      /*per_job_cap=*/1.0);
  blocked_.times.push_back(0.0);
  blocked_.counts.push_back(0);
}

void Machine::attach_device(PsResource* device) {
  devices_.push_back(device);
}

void Machine::set_blocked_delta(int delta) {
  blocked_count_ += delta;
  assert(blocked_count_ >= 0);
  blocked_.times.push_back(engine_.now());
  blocked_.counts.push_back(blocked_count_);
}

void Machine::spawn_thread(std::vector<Stage> stages,
                           std::function<void()> on_exit,
                           bool charge_overhead) {
  ++threads_spawned_;
  auto shared_stages =
      std::make_shared<std::vector<Stage>>(std::move(stages));
  if (charge_overhead && config_.thread_spawn_cost_s > 0.0) {
    // Thread creation is kernel work on the spawning path.
    cpu_->submit(config_.thread_spawn_cost_s, Category::kSys,
                 [this, shared_stages, on_exit = std::move(on_exit),
                  charge_overhead]() mutable {
                   run_stage(shared_stages, 0, std::move(on_exit),
                             charge_overhead);
                 });
  } else {
    run_stage(shared_stages, 0, std::move(on_exit), charge_overhead);
  }
}

void Machine::run_stage(std::shared_ptr<std::vector<Stage>> stages,
                        std::size_t idx, std::function<void()> on_exit,
                        bool charge_overhead) {
  if (idx >= stages->size()) {
    if (charge_overhead && config_.thread_join_cost_s > 0.0) {
      cpu_->submit(config_.thread_join_cost_s, Category::kSys,
                   std::move(on_exit));
    } else if (on_exit) {
      engine_.schedule_after(0.0, std::move(on_exit));
    }
    return;
  }
  const Stage& stage = (*stages)[idx];
  auto next = [this, stages, idx, on_exit = std::move(on_exit),
               charge_overhead]() mutable {
    run_stage(stages, idx + 1, std::move(on_exit), charge_overhead);
  };
  if (stage.kind == Stage::Kind::kCompute) {
    cpu_->submit(stage.demand, stage.cat, std::move(next));
  } else {
    assert(stage.device != nullptr);
    set_blocked_delta(+1);
    stage.device->submit(stage.demand, Category::kSys,
                         [this, next = std::move(next)]() mutable {
                           set_blocked_delta(-1);
                           next();
                         });
  }
}

double Machine::BlockedTimeline::mean(double t0, double t1) const {
  if (t1 <= t0 || times.empty()) return 0.0;
  double integral = 0.0;
  for (std::size_t i = 0; i < times.size(); ++i) {
    const double seg_start = times[i];
    const double seg_end =
        (i + 1 < times.size()) ? times[i + 1] : std::max(t1, seg_start);
    const double lo = std::max(seg_start, t0);
    const double hi = std::min(seg_end, t1);
    if (hi > lo) integral += double(counts[i]) * (hi - lo);
  }
  return integral / (t1 - t0);
}

}  // namespace supmr::sim
