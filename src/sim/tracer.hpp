// Utilization tracer: reconstructs collectl-style CPU traces from a
// completed simulation.
//
// The paper's figures plot total CPU utilization split into user, sys and
// IO-wait channels on a fixed sampling interval. We rebuild the same series
// post-run from the machine's piecewise-constant rate timelines:
//
//   user%   = mean user-category CPU rate / contexts * 100
//   sys%    = mean sys-category CPU rate / contexts * 100
//   iowait% = min(mean blocked threads, idle contexts) / contexts * 100
//
// iowait mirrors the kernel's definition: time where CPUs are idle *and*
// some thread is waiting on I/O.
#pragma once

#include "common/timeseries.hpp"
#include "sim/machine.hpp"

namespace supmr::sim {

struct TracerOptions {
  double sample_interval_s = 1.0;  // collectl default granularity
};

// Samples [t_begin, t_end) of a finished run. Channels: user, sys, iowait.
TimeSeries trace_utilization(const Machine& machine, double t_begin,
                             double t_end, const TracerOptions& options = {});

// Convenience: mean total CPU utilization (user+sys, percent) over a window.
double mean_utilization(const Machine& machine, double t0, double t1);

}  // namespace supmr::sim
