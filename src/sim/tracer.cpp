#include "sim/tracer.hpp"

#include <algorithm>
#include <cassert>

namespace supmr::sim {

TimeSeries trace_utilization(const Machine& machine, double t_begin,
                             double t_end, const TracerOptions& options) {
  assert(options.sample_interval_s > 0.0);
  TimeSeries series({"user", "sys", "iowait"});
  const double contexts = double(machine.config().hardware_contexts);
  const auto& cpu_tl = machine.cpu().timeline();
  const auto& blocked_tl = machine.blocked_timeline();

  for (double t = t_begin; t < t_end; t += options.sample_interval_s) {
    const double t1 = std::min(t + options.sample_interval_s, t_end);
    const double user = cpu_tl.mean_rate(t, t1, Category::kUser);
    const double sys = cpu_tl.mean_rate(t, t1, Category::kSys);
    const double busy = user + sys;
    const double idle = std::max(0.0, contexts - busy);
    const double blocked = blocked_tl.mean(t, t1);
    const double iowait = std::min(blocked, idle);
    series.append(t, {user / contexts * 100.0, sys / contexts * 100.0,
                      iowait / contexts * 100.0});
  }
  return series;
}

double mean_utilization(const Machine& machine, double t0, double t1) {
  const auto& cpu_tl = machine.cpu().timeline();
  const double contexts = double(machine.config().hardware_contexts);
  return cpu_tl.mean_rate_total(t0, t1) / contexts * 100.0;
}

}  // namespace supmr::sim
