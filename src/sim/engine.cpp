#include "sim/engine.hpp"

#include <cassert>

namespace supmr::sim {

void Engine::schedule_at(SimTime t, std::function<void()> fn) {
  assert(t >= now_ - 1e-12 && "cannot schedule into the past");
  if (t < now_) t = now_;
  calendar_.push(Event{t, next_seq_++, std::move(fn)});
}

SimTime Engine::run() {
  while (!calendar_.empty()) {
    // priority_queue::top returns const&; the function object must be moved
    // out before pop, so copy the handle (cheap for std::function with small
    // captures) and pop first.
    Event ev = calendar_.top();
    calendar_.pop();
    now_ = ev.t;
    ++executed_;
    ev.fn();
  }
  return now_;
}

void Engine::run_until(SimTime t_end) {
  while (!calendar_.empty() && calendar_.top().t <= t_end) {
    Event ev = calendar_.top();
    calendar_.pop();
    now_ = ev.t;
    ++executed_;
    ev.fn();
  }
  if (now_ < t_end) now_ = t_end;
}

}  // namespace supmr::sim
