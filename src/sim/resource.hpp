// Processor-sharing resource model.
//
// Models a pool of identical servers (CPU contexts, a disk's aggregate
// bandwidth, a network link). Active jobs share the capacity equally, each
// capped at `per_job_cap` units/s:
//
//   rate_per_job = min(per_job_cap, capacity / n_active)
//
// With capacity = 32 and per_job_cap = 1 this is an ideal 32-context CPU: up
// to 32 threads run at full speed, more than 32 time-share. With capacity =
// 384 MB/s and per_job_cap = capacity it is a shared disk: one reader gets
// full bandwidth, k readers get 1/k each.
//
// The resource re-plans completion times on every arrival/departure (the
// classic PS recomputation) and appends to a piecewise-constant utilization
// timeline, from which the tracer reconstructs figures after the run.
#pragma once

#include <cstdint>
#include <functional>
#include <list>
#include <string>
#include <vector>

#include "sim/engine.hpp"

namespace supmr::sim {

// Work categories, matching collectl's CPU breakdown in the paper's figures.
enum class Category : int { kUser = 0, kSys = 1 };
inline constexpr int kNumCategories = 2;

class PsResource {
 public:
  PsResource(Engine& engine, std::string name, double capacity,
             double per_job_cap);

  PsResource(const PsResource&) = delete;
  PsResource& operator=(const PsResource&) = delete;

  // Submits a job needing `demand` units; calls `on_done` (as an engine
  // event) when served. Demand 0 completes immediately (still via an event,
  // preserving causal ordering).
  void submit(double demand, Category cat, std::function<void()> on_done);

  const std::string& name() const { return name_; }
  double capacity() const { return capacity_; }
  std::size_t active_jobs() const { return jobs_.size(); }

  // Total service delivered so far, per category (units).
  double delivered(Category cat) const {
    return delivered_[static_cast<int>(cat)];
  }
  double delivered_total() const {
    return delivered_[0] + delivered_[1];
  }

  // Piecewise-constant utilization history: at times_[i] the aggregate
  // service rate changed to rates_[i*kNumCategories + cat]. Used by the
  // tracer; O(#submit + #complete) entries.
  struct Timeline {
    std::vector<double> times;
    std::vector<double> rates;  // row-major: sample x category

    // Mean rate of `cat` over [t0, t1) by integrating the step function.
    double mean_rate(double t0, double t1, Category cat) const;
    // Mean rate summed over all categories.
    double mean_rate_total(double t0, double t1) const;
  };
  const Timeline& timeline() const { return timeline_; }

 private:
  struct Job {
    double remaining;
    Category cat;
    std::function<void()> on_done;
    std::uint64_t id;
  };

  // Advances all jobs' remaining demand to engine_.now().
  void advance();
  // Recomputes per-job rate and schedules the next completion event.
  void replan();
  void on_completion_event(std::uint64_t epoch);
  double rate_per_job() const;
  void log_rates();

  Engine& engine_;
  std::string name_;
  double capacity_;
  double per_job_cap_;
  std::list<Job> jobs_;
  double last_advance_ = 0.0;
  double delivered_[kNumCategories] = {0.0, 0.0};
  // Epoch guards stale completion events after a replan.
  std::uint64_t epoch_ = 0;
  std::uint64_t next_job_id_ = 0;
  Timeline timeline_;
};

// Fan-in join for pipeline stages: returns a callable that, after being
// invoked `n` times (across any completion callbacks), runs `fn` once.
// State is shared_ptr-owned so the join outlives its creator's scope.
std::function<void()> make_join(std::size_t n, std::function<void()> fn);

}  // namespace supmr::sim
