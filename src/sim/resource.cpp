#include "sim/resource.hpp"

#include <algorithm>
#include <cassert>
#include <limits>
#include <memory>

namespace supmr::sim {

namespace {
// Demands are heterogeneous units (cpu-seconds, bytes), so completion
// tolerances must be expressed in TIME, the common denominator: a job whose
// remaining demand would be served within kTimeEps seconds is complete.
// Without this, a disk job with a few micro-bytes left computes a completion
// dt below the double-precision ULP of the current virtual time and the
// completion event re-fires at the same timestamp forever.
constexpr double kTimeEps = 1e-9;
// Absolute floor for zero-demand submissions.
constexpr double kEps = 1e-12;
}  // namespace

PsResource::PsResource(Engine& engine, std::string name, double capacity,
                       double per_job_cap)
    : engine_(engine),
      name_(std::move(name)),
      capacity_(capacity),
      per_job_cap_(per_job_cap) {
  assert(capacity > 0.0 && per_job_cap > 0.0);
}

double PsResource::rate_per_job() const {
  if (jobs_.empty()) return 0.0;
  return std::min(per_job_cap_, capacity_ / double(jobs_.size()));
}

void PsResource::advance() {
  const double now = engine_.now();
  const double dt = now - last_advance_;
  if (dt > 0.0 && !jobs_.empty()) {
    const double rate = rate_per_job();
    for (auto& job : jobs_) {
      const double served = std::min(job.remaining, rate * dt);
      job.remaining -= served;
      delivered_[static_cast<int>(job.cat)] += served;
    }
  }
  last_advance_ = now;
}

void PsResource::log_rates() {
  const double rate = rate_per_job();
  double by_cat[kNumCategories] = {0.0, 0.0};
  for (const auto& job : jobs_) by_cat[static_cast<int>(job.cat)] += rate;
  timeline_.times.push_back(engine_.now());
  for (int c = 0; c < kNumCategories; ++c)
    timeline_.rates.push_back(by_cat[c]);
}

void PsResource::replan() {
  ++epoch_;
  log_rates();
  if (jobs_.empty()) return;
  const double rate = rate_per_job();
  double min_remaining = std::numeric_limits<double>::infinity();
  for (const auto& job : jobs_)
    min_remaining = std::min(min_remaining, job.remaining);
  // Guarantee forward progress: never schedule below the time tolerance.
  const double dt = std::max(min_remaining / rate, kTimeEps);
  const std::uint64_t epoch = epoch_;
  engine_.schedule_after(dt, [this, epoch] { on_completion_event(epoch); });
}

void PsResource::submit(double demand, Category cat,
                        std::function<void()> on_done) {
  assert(demand >= 0.0);
  advance();
  if (demand <= kEps) {
    // Zero work: complete via an event to preserve ordering.
    if (on_done) engine_.schedule_after(0.0, std::move(on_done));
    return;
  }
  jobs_.push_back(Job{demand, cat, std::move(on_done), next_job_id_++});
  replan();
}

void PsResource::on_completion_event(std::uint64_t epoch) {
  if (epoch != epoch_) return;  // superseded by a later arrival/completion
  advance();
  // Collect finished jobs first: callbacks may resubmit to this resource.
  // A job is finished once its residual service time is below kTimeEps.
  const double finish_below = rate_per_job() * kTimeEps;
  std::vector<std::function<void()>> done;
  for (auto it = jobs_.begin(); it != jobs_.end();) {
    if (it->remaining <= finish_below) {
      if (it->on_done) done.push_back(std::move(it->on_done));
      it = jobs_.erase(it);
    } else {
      ++it;
    }
  }
  replan();
  for (auto& fn : done) engine_.schedule_after(0.0, std::move(fn));
}

double PsResource::Timeline::mean_rate(double t0, double t1,
                                       Category cat) const {
  if (t1 <= t0 || times.empty()) return 0.0;
  const int c = static_cast<int>(cat);
  double integral = 0.0;
  // The step function holds rates[i] on [times[i], times[i+1]).
  for (std::size_t i = 0; i < times.size(); ++i) {
    const double seg_start = times[i];
    const double seg_end =
        (i + 1 < times.size()) ? times[i + 1] : std::max(t1, seg_start);
    const double lo = std::max(seg_start, t0);
    const double hi = std::min(seg_end, t1);
    if (hi > lo) integral += rates[i * kNumCategories + c] * (hi - lo);
  }
  return integral / (t1 - t0);
}

double PsResource::Timeline::mean_rate_total(double t0, double t1) const {
  double sum = 0.0;
  for (int c = 0; c < kNumCategories; ++c)
    sum += mean_rate(t0, t1, static_cast<Category>(c));
  return sum;
}

std::function<void()> make_join(std::size_t n, std::function<void()> fn) {
  if (n == 0) {
    if (fn) fn();
    return [] {};
  }
  auto remaining = std::make_shared<std::size_t>(n);
  auto body = std::make_shared<std::function<void()>>(std::move(fn));
  return [remaining, body] {
    assert(*remaining > 0 && "join invoked more times than its arity");
    if (--*remaining == 0 && *body) (*body)();
  };
}

}  // namespace supmr::sim
