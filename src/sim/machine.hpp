// Machine model: hardware contexts + attached devices + thread lifecycle.
//
// A simulated thread is a sequence of stages, each either CPU work (charged
// to the shared context pool) or I/O (charged to a device resource). While a
// thread waits on I/O it is counted as blocked; the tracer converts blocked
// threads on otherwise-idle contexts into the "IO wait" channel, matching
// how collectl reported the paper's traces.
//
// Thread spawn/destroy overhead is modelled as a small sys-CPU charge,
// which is what makes tiny ingest chunks measurably expensive (paper §VI.C.1).
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "sim/engine.hpp"
#include "sim/resource.hpp"

namespace supmr::sim {

struct MachineConfig {
  int hardware_contexts = 32;       // paper: 2x8 cores, hyperthreaded
  double thread_spawn_cost_s = 0.0002;   // sys-CPU per thread create
  double thread_join_cost_s = 0.0001;    // sys-CPU per thread destroy
};

// One step of a simulated thread's life.
struct Stage {
  enum class Kind { kCompute, kIo };

  static Stage compute(double cpu_seconds, Category cat = Category::kUser) {
    return Stage{Kind::kCompute, cpu_seconds, cat, nullptr};
  }
  static Stage io(PsResource* device, double bytes) {
    return Stage{Kind::kIo, bytes, Category::kSys, device};
  }

  Kind kind;
  double demand;     // cpu-seconds or bytes
  Category cat;      // for compute stages
  PsResource* device;  // for io stages
};

class Machine {
 public:
  Machine(Engine& engine, MachineConfig config);

  Engine& engine() { return engine_; }
  const MachineConfig& config() const { return config_; }
  PsResource& cpu() { return *cpu_; }
  const PsResource& cpu() const { return *cpu_; }

  // Registers a device resource (disk, link) owned by the caller so the
  // tracer can find it for I/O-busy accounting.
  void attach_device(PsResource* device);
  const std::vector<PsResource*>& devices() const { return devices_; }

  // Spawns a simulated thread running `stages` in order; `on_exit` fires
  // after the final stage (and the join overhead) completes. `charge_overhead`
  // adds the configured spawn/join sys-CPU cost — the runtime's per-round
  // mapper threads pay it; long-lived coordinator threads do not.
  void spawn_thread(std::vector<Stage> stages, std::function<void()> on_exit,
                    bool charge_overhead = true);

  // Piecewise-constant count of threads blocked on I/O (for iowait).
  struct BlockedTimeline {
    std::vector<double> times;
    std::vector<int> counts;
    double mean(double t0, double t1) const;
  };
  const BlockedTimeline& blocked_timeline() const { return blocked_; }

  std::uint64_t threads_spawned() const { return threads_spawned_; }

 private:
  void run_stage(std::shared_ptr<std::vector<Stage>> stages, std::size_t idx,
                 std::function<void()> on_exit, bool charge_overhead);
  void set_blocked_delta(int delta);

  Engine& engine_;
  MachineConfig config_;
  std::unique_ptr<PsResource> cpu_;
  std::vector<PsResource*> devices_;
  int blocked_count_ = 0;
  BlockedTimeline blocked_;
  std::uint64_t threads_spawned_ = 0;
};

}  // namespace supmr::sim
