#include "graph/job_graph.hpp"

#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <deque>
#include <utility>

#include "obs/macros.hpp"
#include "storage/file_device.hpp"
#include "storage/mem_device.hpp"
#include "storage/rate_limiter.hpp"
#include "storage/throttled_device.hpp"

namespace supmr::graph {

std::size_t JobGraph::add_stage(AppFactory make_app, StageOptions options) {
  Stage stage;
  stage.make_app = std::move(make_app);
  stage.options = std::move(options);
  stages_.push_back(std::move(stage));
  return stages_.size() - 1;
}

Status JobGraph::set_source(
    std::size_t stage, std::shared_ptr<const ingest::IngestSource> source) {
  if (stage >= stages_.size())
    return Status::InvalidArgument("graph: set_source on unknown stage");
  if (source == nullptr)
    return Status::InvalidArgument("graph: null source");
  stages_[stage].source = std::move(source);
  return Status::Ok();
}

Status JobGraph::add_edge(std::size_t from, std::size_t to) {
  if (from >= stages_.size() || to >= stages_.size())
    return Status::InvalidArgument("graph: edge references unknown stage");
  if (from == to) return Status::InvalidArgument("graph: self-edge");
  stages_[from].outputs.push_back(to);
  stages_[to].inputs.push_back(from);
  return Status::Ok();
}

StatusOr<std::vector<std::size_t>> JobGraph::topo_order() const {
  if (stages_.empty()) return Status::InvalidArgument("graph: no stages");
  std::size_t sinks = 0;
  for (std::size_t i = 0; i < stages_.size(); ++i) {
    const Stage& s = stages_[i];
    const std::string& name =
        s.options.name.empty() ? "#" + std::to_string(i) : s.options.name;
    if (s.inputs.empty() && s.source == nullptr)
      return Status::InvalidArgument("graph: root stage " + name +
                                     " has no source");
    if (!s.inputs.empty() && s.source != nullptr)
      return Status::InvalidArgument("graph: stage " + name +
                                     " has both a source and in-edges");
    if (!s.inputs.empty() && s.options.format == nullptr)
      return Status::InvalidArgument("graph: stage " + name +
                                     " needs an input format");
    if (!s.make_app)
      return Status::InvalidArgument("graph: stage " + name +
                                     " has no app factory");
    if (s.outputs.empty()) ++sinks;
  }
  if (sinks != 1)
    return Status::InvalidArgument(
        "graph: want exactly one sink stage, have " + std::to_string(sinks));

  // Kahn's algorithm; any leftover stage sits on a cycle.
  std::vector<std::size_t> indegree(stages_.size());
  for (std::size_t i = 0; i < stages_.size(); ++i)
    indegree[i] = stages_[i].inputs.size();
  std::deque<std::size_t> ready;
  for (std::size_t i = 0; i < stages_.size(); ++i)
    if (indegree[i] == 0) ready.push_back(i);
  std::vector<std::size_t> order;
  order.reserve(stages_.size());
  while (!ready.empty()) {
    const std::size_t i = ready.front();
    ready.pop_front();
    order.push_back(i);
    for (std::size_t out : stages_[i].outputs)
      if (--indegree[out] == 0) ready.push_back(out);
  }
  if (order.size() != stages_.size())
    return Status::InvalidArgument("graph: cycle detected");
  return order;
}

StatusOr<std::size_t> JobGraph::sink() const {
  for (std::size_t i = 0; i < stages_.size(); ++i)
    if (stages_[i].outputs.empty()) return i;
  return Status::InvalidArgument("graph: no sink stage");
}

namespace {

// Writes `payload` to an anonymous temp file under `dir` and opens it as a
// FileDevice. The path is unlinked right after open, so the bytes live only
// as long as the returned device's descriptor. A non-null `limiter` charges
// the write here and the re-ingest reads via a ThrottledDevice wrapper.
StatusOr<std::shared_ptr<const storage::Device>> spill_to_file(
    const std::string& payload, const std::string& dir,
    const std::shared_ptr<storage::RateLimiter>& limiter) {
  std::string tmpl = (dir.empty() ? std::string("/tmp") : dir) +
                     "/supmr-graph-spill-XXXXXX";
  std::vector<char> path(tmpl.begin(), tmpl.end());
  path.push_back('\0');
  const int fd = ::mkstemp(path.data());
  if (fd < 0) return Status::IoError("graph: mkstemp failed in " + dir);
  if (limiter != nullptr) limiter->acquire(payload.size());
  std::size_t written = 0;
  while (written < payload.size()) {
    const ::ssize_t n = ::write(fd, payload.data() + written,
                                payload.size() - written);
    if (n <= 0) {
      ::close(fd);
      ::unlink(path.data());
      return Status::IoError("graph: spill write failed");
    }
    written += static_cast<std::size_t>(n);
  }
  ::close(fd);
  auto device = storage::FileDevice::open(path.data());
  ::unlink(path.data());
  SUPMR_RETURN_IF_ERROR(device.status());
  std::shared_ptr<const storage::Device> dev(std::move(*device));
  if (limiter != nullptr) {
    dev = std::make_shared<storage::ThrottledDevice>(std::move(dev), limiter);
  }
  return dev;
}

StatusOr<core::JobResult> run_inline(std::size_t, core::Application& app,
                                     const ingest::IngestSource& source,
                                     const core::JobConfig& cfg) {
  core::MapReduceJob job(app, source, cfg);
  return job.run(cfg.mode);
}

}  // namespace

StatusOr<GraphResult> run_graph(const JobGraph& graph,
                                const GraphOptions& options,
                                const StageRunner& runner) {
  SUPMR_ASSIGN_OR_RETURN(std::vector<std::size_t> order, graph.topo_order());
  const StageRunner& run_stage =
      runner ? runner : StageRunner(run_inline);

  GraphResult result;
  result.stages.reserve(order.size());
  // One limiter for every spill in the run: the emulated device is a single
  // channel, so concurrent spilled edges would contend for it like real
  // files on one disk.
  std::shared_ptr<storage::RateLimiter> spill_limiter;
  if (options.spill_bps > 0) {
    spill_limiter = std::make_shared<storage::RateLimiter>(options.spill_bps);
  }
  // Canonical outputs kept only while a downstream stage still needs them.
  std::vector<std::string> payloads(graph.num_stages());
  std::vector<std::size_t> pending_consumers(graph.num_stages());
  for (std::size_t i = 0; i < graph.num_stages(); ++i)
    pending_consumers[i] = graph.stage(i).outputs.size();

  for (std::size_t idx : order) {
    const JobGraph::Stage& stage = graph.stage(idx);
    std::unique_ptr<core::Application> app = stage.make_app();
    if (app == nullptr)
      return Status::Internal("graph: app factory returned null");

    StatusOr<core::JobResult> job = Status::Internal("graph: stage not run");
    if (stage.source != nullptr) {
      job = run_stage(idx, *app, *stage.source, stage.options.config);
    } else {
      // Assemble this stage's input from its upstream payloads, edge order.
      std::string input;
      for (std::size_t up : stage.inputs) input += payloads[up];
      for (std::size_t up : stage.inputs) {
        if (--pending_consumers[up] == 0) {
          payloads[up].clear();
          payloads[up].shrink_to_fit();
        }
      }
      const bool spill =
          options.handoff == core::GraphHandoff::kFile ||
          (options.memory_budget > 0 && input.size() > options.memory_budget);
      std::shared_ptr<const storage::Device> dev;
      if (spill) {
        result.spill_bytes += input.size();
        ++result.spill_files;
        SUPMR_COUNTER_ADD("graph.spill_bytes", input.size());
        SUPMR_COUNTER_ADD("graph.spill_files", 1);
        SUPMR_ASSIGN_OR_RETURN(
            dev, spill_to_file(input, options.spill_dir, spill_limiter));
        input.clear();
        input.shrink_to_fit();
      } else {
        result.handoff_bytes += input.size();
        SUPMR_COUNTER_ADD("graph.handoff_bytes", input.size());
        dev = std::make_shared<storage::MemDevice>(
            std::move(input), "graph-edge:" + stage.options.name);
      }
      ingest::SingleDeviceSource source(dev, stage.options.format,
                                        stage.options.chunk_bytes,
                                        stage.options.io);
      job = run_stage(idx, *app, source, stage.options.config);
    }
    SUPMR_RETURN_IF_ERROR(job.status());
    SUPMR_COUNTER_ADD("graph.stages_run", 1);

    StageResult sr;
    sr.name = stage.options.name.empty() ? "#" + std::to_string(idx)
                                         : stage.options.name;
    sr.job = std::move(*job);
    payloads[idx] = app->canonical_output();
    sr.output_bytes = payloads[idx].size();
    result.stages.push_back(std::move(sr));
    if (stage.outputs.empty()) {
      result.final_output = std::move(payloads[idx]);
      payloads[idx].clear();
    }
  }
  return result;
}

}  // namespace supmr::graph
