// JobGraph: multi-stage chained MapReduce with in-memory stage handoff.
//
// A graph is a DAG of stages. Each stage is a core::Application (built by a
// factory so the executor — and the sequential oracle in src/ref/ — can
// instantiate fresh twins) plus per-stage config: its own JobConfig, the
// RecordFormat of its *input*, and a chunk size. Root stages read an
// external IngestSource; every other stage consumes the canonical_output()
// bytes of its upstream stages, concatenated in edge-insertion order.
//
// The point of the subsystem is the edge: the classic multi-job pipeline
// writes stage output to a file and re-ingests it, paying the disk round
// trip the paper spends its sections circumventing for a single job. Here
// an edge payload stays in memory — wrapped in a MemDevice, which lends
// zero-copy views to the next stage's ingest pipeline (IoMode::kMmap) — and
// only spills to a temp file when GraphOptions says so: handoff = kFile
// forces the write-out-and-re-ingest baseline (what bench/bench_graph.cpp
// compares against), and with handoff = kMemory a per-boundary
// memory_budget > 0 spills exactly the payloads that exceed it.
//
// Execution is pluggable through StageRunner: the default runs each stage
// inline on private resources (MapReduceJob::run); the JobManager's
// submit_graph() supplies a runner that submits every stage through
// admission so each acquires a ResourceLease. graph.* counters account
// stages run and handoff vs spill bytes.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/status.hpp"
#include "core/application.hpp"
#include "core/job.hpp"
#include "core/job_config.hpp"
#include "core/replay.hpp"
#include "ingest/record_format.hpp"
#include "ingest/source.hpp"

namespace supmr::graph {

using AppFactory = std::function<std::unique_ptr<core::Application>()>;

// Per-stage knobs. `format` describes the stage's INPUT bytes (the upstream
// canonical encoding for interior stages); `chunk_bytes` feeds the stage's
// SingleDeviceSource (0 = one whole-input chunk). Root stages ignore both —
// their external source already carries a format and chunking.
struct StageOptions {
  std::string name;
  core::JobConfig config;
  std::shared_ptr<const ingest::RecordFormat> format;
  std::uint64_t chunk_bytes = 0;
  ingest::IoMode io = ingest::IoMode::kRead;
};

class JobGraph {
 public:
  struct Stage {
    AppFactory make_app;
    StageOptions options;
    std::shared_ptr<const ingest::IngestSource> source;  // roots only
    std::vector<std::size_t> inputs;   // upstream stages, edge order
    std::vector<std::size_t> outputs;  // downstream stages
  };

  // Adds a stage; returns its index. The factory must produce a freshly
  // constructed Application on every call.
  std::size_t add_stage(AppFactory make_app, StageOptions options);

  // Makes `stage` a root reading `source`. A stage may have an external
  // source or in-edges, never both (validate() enforces it).
  Status set_source(std::size_t stage,
                    std::shared_ptr<const ingest::IngestSource> source);

  // Adds the edge from -> to: `from`'s canonical output becomes (part of)
  // `to`'s input. Duplicate edges are legal and append the payload again.
  Status add_edge(std::size_t from, std::size_t to);

  std::size_t num_stages() const { return stages_.size(); }
  const Stage& stage(std::size_t i) const { return stages_[i]; }

  // Structural validation + Kahn topological order. Errors: empty graph, a
  // cycle, a root without a source, an interior stage with a source, a
  // non-root without a format, or a sink count != 1 (the single sink's
  // canonical output is the graph's final output).
  StatusOr<std::vector<std::size_t>> topo_order() const;

  // Index of the unique sink (only meaningful after topo_order() succeeds).
  StatusOr<std::size_t> sink() const;

 private:
  std::vector<Stage> stages_;
};

struct GraphOptions {
  core::GraphHandoff handoff = core::GraphHandoff::kMemory;
  // Per-stage-boundary budget in bytes for kMemory handoff: a consumer's
  // concatenated input payload larger than this spills to a temp file
  // before re-ingest. 0 = unlimited (never spill).
  std::uint64_t memory_budget = 0;
  // Directory for spill files ("" = /tmp). Files are unlinked immediately
  // after opening, so nothing survives the run even on a crash.
  std::string spill_dir;
  // Emulated spill-device bandwidth in bytes/second, 0 = unthrottled. When
  // set, every spilled edge charges its write AND its re-ingest reads
  // against one shared RateLimiter — the same device-class emulation the
  // ingest benchmarks use (tools/supmr --throttle, bench/ablation_disk_bw).
  // On a machine whose page cache absorbs file round trips, this is what
  // makes the file-handoff baseline cost what a disk-backed pipeline costs.
  double spill_bps = 0;
};

struct StageResult {
  std::string name;
  core::JobResult job;               // per-stage phase timings live here
  std::uint64_t output_bytes = 0;    // canonical_output() size
};

struct GraphResult {
  std::vector<StageResult> stages;   // in executed (topological) order
  std::string final_output;          // the sink stage's canonical output
  std::uint64_t handoff_bytes = 0;   // edge payload bytes kept in memory
  std::uint64_t spill_bytes = 0;     // edge payload bytes routed via files
  std::uint64_t spill_files = 0;

  double total_s() const {
    double s = 0;
    for (const auto& st : stages) s += st.job.phases.total_s;
    return s;
  }
};

// How the executor runs one stage. The default (empty) runner executes
// inline: MapReduceJob(app, source, cfg).run(cfg.mode).
using StageRunner = std::function<StatusOr<core::JobResult>(
    std::size_t stage, core::Application&, const ingest::IngestSource&,
    const core::JobConfig&)>;

// Executes the graph: topological order, one stage at a time, payloads
// handed across edges per `options`. Fail-fast: the first stage error
// aborts the graph with that Status.
StatusOr<GraphResult> run_graph(const JobGraph& graph,
                                const GraphOptions& options = {},
                                const StageRunner& runner = {});

}  // namespace supmr::graph
