#include "perfmodel/sim_job.hpp"

#include <cassert>
#include <cmath>
#include <memory>
#include <vector>

#include "sim/engine.hpp"
#include "sim/machine.hpp"
#include "sim/resource.hpp"
#include "sim/tracer.hpp"

namespace supmr::perfmodel {

namespace {

using sim::Category;
using sim::Stage;

// One simulation run's mutable state; methods chain through engine events.
class JobSim {
 public:
  explicit JobSim(const SimJobSpec& spec)
      : spec_(spec),
        machine_(engine_, sim::MachineConfig{spec.machine.contexts,
                                             spec.machine.thread_spawn_s,
                                             spec.machine.thread_join_s}),
        disk_(engine_, "disk", ingest_bw(), ingest_bw()) {
    machine_.attach_device(&disk_);
    plan_chunks();
  }

  SimJobResult run() {
    if (chunks_.size() == 1 && spec_.chunk_bytes == 0) {
      start_original();
    } else {
      start_pipeline();
    }
    engine_.run();
    return collect();
  }

 private:
  double ingest_bw() const {
    return spec_.ingest_bw_override_bps > 0 ? spec_.ingest_bw_override_bps
                                            : spec_.machine.disk_bw_bps;
  }

  void plan_chunks() {
    const std::uint64_t total = spec_.dataset.total_bytes;
    if (spec_.chunk_bytes == 0 || spec_.chunk_bytes >= total) {
      chunks_.push_back(total);
      return;
    }
    std::uint64_t off = 0;
    while (off < total) {
      chunks_.push_back(std::min(spec_.chunk_bytes, total - off));
      off += chunks_.back();
    }
  }

  // --- building blocks ------------------------------------------------

  void spawn_ingest(std::size_t chunk, std::function<void()> done) {
    std::vector<Stage> stages;
    stages.push_back(Stage::io(&disk_, double(chunks_[chunk])));
    const double extra =
        double(chunks_[chunk]) * spec_.app.ingest_extra_cpu_s_per_byte;
    if (extra > 0.0) stages.push_back(Stage::compute(extra, Category::kSys));
    machine_.spawn_thread(std::move(stages), std::move(done));
  }

  void spawn_map_wave(std::uint64_t bytes, std::function<void()> done) {
    const std::size_t mappers = spec_.num_mappers;
    auto join = sim::make_join(mappers, std::move(done));
    const double per_thread =
        double(bytes) * spec_.app.map_cpu_s_per_byte / double(mappers);
    for (std::size_t m = 0; m < mappers; ++m) {
      machine_.spawn_thread({Stage::compute(per_thread, Category::kUser)},
                            join);
    }
    ++map_rounds_;
  }

  void spawn_reduce(std::function<void()> done) {
    const std::size_t workers =
        static_cast<std::size_t>(spec_.machine.contexts);
    auto join = sim::make_join(workers, std::move(done));
    const double per_thread = double(spec_.app.reduce_items) *
                              spec_.app.reduce_cpu_s_per_item /
                              double(workers);
    for (std::size_t w = 0; w < workers; ++w) {
      machine_.spawn_thread({Stage::compute(per_thread, Category::kUser)},
                            join);
    }
  }

  // Merge rounds are memory-stream bound: every record's bytes are read and
  // written once per round, so a round's wall time is its traffic over the
  // machine's stream bandwidth; each active worker is busy (stalled on
  // memory counts as user time) for the whole round.
  double round_traffic_s(double penalty) const {
    return double(spec_.app.merge_records) * spec_.app.merge_record_bytes *
           2.0 * penalty / spec_.machine.mem_stream_bw_bps;
  }

  void spawn_merge_round(std::size_t active, double wall,
                         std::function<void()> done) {
    active = std::min<std::size_t>(
        active, static_cast<std::size_t>(spec_.machine.contexts));
    auto join = sim::make_join(active, std::move(done));
    for (std::size_t w = 0; w < active; ++w) {
      machine_.spawn_thread({Stage::compute(wall, Category::kUser)}, join);
    }
    ++merge_rounds_;
  }

  void do_pairwise_round(std::size_t runs_left) {
    if (runs_left <= 1) {
      finish_merge();
      return;
    }
    const std::size_t pairs = runs_left / 2;
    spawn_merge_round(pairs, round_traffic_s(1.0),
                      [this, runs_left] {
                        do_pairwise_round((runs_left + 1) / 2);
                      });
  }

  void do_merge() {
    t_reduce_end_ = engine_.now();
    if (spec_.app.merge_records == 0) {
      finish_merge();
      return;
    }
    if (spec_.merge_mode == core::MergeMode::kPWay) {
      spawn_merge_round(static_cast<std::size_t>(spec_.machine.contexts),
                        round_traffic_s(spec_.machine.pway_stream_penalty),
                        [this] { finish_merge(); });
    } else if (spec_.merge_mode == core::MergeMode::kPartitioned) {
      // Key-range partitioned shuffle (docs/merge.md): still one round with
      // all contexts active, but each per-partition loser tree streams only
      // its own key range — sequential in, sequential out, no cross-run
      // striding — so the p-way stream penalty does not apply.
      spawn_merge_round(static_cast<std::size_t>(spec_.machine.contexts),
                        round_traffic_s(1.0), [this] { finish_merge(); });
    } else {
      do_pairwise_round(spec_.merge_runs);
    }
  }

  void finish_merge() { t_merge_end_ = engine_.now(); }

  void do_reduce() {
    t_readmap_end_ = engine_.now();
    spawn_reduce([this] { do_merge(); });
  }

  // --- schedules ------------------------------------------------------

  void start_original() {
    spawn_ingest(0, [this] {
      t_ingest_end_ = engine_.now();
      spawn_map_wave(chunks_[0], [this] { do_reduce(); });
    });
  }

  void start_pipeline() {
    const std::size_t n = chunks_.size();
    // gate[i] fires run_round(i) once chunk i is ingested AND round i-1's
    // mappers finished (round 0 waits only on its ingest) — the paper's
    // "loop for each chunk" with double buffering.
    gates_.resize(n);
    for (std::size_t i = 0; i < n; ++i) {
      gates_[i] =
          sim::make_join(i == 0 ? 1 : 2, [this, i] { run_round(i); });
    }
    spawn_ingest(0, [this] { gates_[0](); });
  }

  void run_round(std::size_t i) {
    const std::size_t n = chunks_.size();
    if (i + 1 < n) {
      spawn_ingest(i + 1, [this, i] { gates_[i + 1](); });
    }
    spawn_map_wave(chunks_[i], [this, i, n] {
      if (i + 1 < n) {
        gates_[i + 1]();
      } else {
        do_reduce();
      }
    });
  }

  // --- result assembly -------------------------------------------------

  SimJobResult collect() {
    SimJobResult result;
    const double end = t_merge_end_;
    result.trace = sim::trace_utilization(
        machine_, 0.0, end, sim::TracerOptions{spec_.trace_interval_s});
    result.mean_utilization = sim::mean_utilization(machine_, 0.0, end);
    result.map_rounds = map_rounds_;
    result.merge_rounds = merge_rounds_;
    result.threads_spawned = machine_.threads_spawned();

    PhaseBreakdown& p = result.phases;
    p.input_bytes = spec_.dataset.total_bytes;
    p.map_rounds = map_rounds_;
    p.merge_rounds = merge_rounds_;
    p.reduce_s = t_reduce_end_ - t_readmap_end_;
    p.merge_s = t_merge_end_ - t_reduce_end_;
    p.setup_s = spec_.app.setup_cleanup_s;
    p.total_s = end + spec_.app.setup_cleanup_s;
    if (chunks_.size() == 1 && spec_.chunk_bytes == 0) {
      p.read_s = t_ingest_end_;
      p.map_s = t_readmap_end_ - t_ingest_end_;
      p.num_chunks = chunks_.size();
      p.chunked = false;
    } else {
      p.has_combined_readmap = true;
      p.readmap_s = t_readmap_end_;
      // Decompose for completeness: compute wall is the sum of map waves at
      // full width; the remainder of the combined phase was ingest-starved.
      const double map_wall =
          double(spec_.dataset.total_bytes) * spec_.app.map_cpu_s_per_byte /
          double(spec_.num_mappers);
      p.map_s = map_wall;
      p.read_s = std::max(0.0, t_readmap_end_ - map_wall);
      p.num_chunks = chunks_.size();
      p.chunked = true;
    }
    return result;
  }

  SimJobSpec spec_;
  sim::Engine engine_;
  sim::Machine machine_;
  sim::PsResource disk_;
  std::vector<std::uint64_t> chunks_;
  std::vector<std::function<void()>> gates_;

  double t_ingest_end_ = 0.0;
  double t_readmap_end_ = 0.0;
  double t_reduce_end_ = 0.0;
  double t_merge_end_ = 0.0;
  std::uint64_t map_rounds_ = 0;
  std::uint64_t merge_rounds_ = 0;
};

}  // namespace

SimJobResult simulate_job(const SimJobSpec& spec) {
  JobSim sim(spec);
  return sim.run();
}

}  // namespace supmr::perfmodel
