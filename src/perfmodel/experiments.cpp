#include "perfmodel/experiments.hpp"

namespace supmr::perfmodel {

namespace {

SimJobSpec wordcount_spec(std::uint64_t chunk_bytes) {
  SimJobSpec spec;
  spec.machine = paper_machine();
  spec.dataset = wload::paper_wordcount_dataset();
  spec.app = wordcount_model(spec.dataset);
  spec.chunk_bytes = chunk_bytes;
  // Word count's merge output is tiny either way; the original runtime's
  // pairwise algorithm is kept for the baseline row.
  spec.merge_mode = chunk_bytes == 0 ? core::MergeMode::kPairwise
                                     : core::MergeMode::kPWay;
  return spec;
}

SimJobSpec sort_spec(std::uint64_t chunk_bytes, core::MergeMode mode) {
  SimJobSpec spec;
  spec.machine = paper_machine();
  spec.dataset = wload::paper_sort_dataset();
  spec.app = sort_model(spec.dataset);
  spec.chunk_bytes = chunk_bytes;
  spec.merge_mode = mode;
  return spec;
}

}  // namespace

std::vector<Table2Row> table2_wordcount() {
  std::vector<Table2Row> rows;
  rows.push_back({"none", simulate_job(wordcount_spec(0))});
  rows.push_back({"1GB", simulate_job(wordcount_spec(1 * kGB))});
  rows.push_back({"50GB", simulate_job(wordcount_spec(50 * kGB))});
  return rows;
}

std::vector<Table2Row> table2_sort() {
  std::vector<Table2Row> rows;
  rows.push_back(
      {"none", simulate_job(sort_spec(0, core::MergeMode::kPairwise))});
  rows.push_back(
      {"1GB", simulate_job(sort_spec(1 * kGB, core::MergeMode::kPWay))});
  // Beyond-paper row: same 1 GB chunked ingest, but the merge runs as
  // per-partition merges over a key-range sharded container (docs/merge.md).
  rows.push_back({"1GB+part",
                  simulate_job(sort_spec(1 * kGB,
                                         core::MergeMode::kPartitioned))});
  return rows;
}

SimJobResult fig1_sort_baseline() {
  return simulate_job(sort_spec(0, core::MergeMode::kPairwise));
}

Fig3Result fig3_openmp_vs_mapreduce() {
  Fig3Result fig;
  fig.mapreduce = fig1_sort_baseline();

  // OpenMP-style app, modelled with the same constants (see
  // baseline::run_omp_style_sort for the real-mode twin):
  //   read: sequential full-bandwidth ingest incl. container page-in,
  //   parse: the map work on ONE thread,
  //   sort: parallel sample sort = run-formation pass + p-way merge pass.
  const SimJobSpec spec = sort_spec(0, core::MergeMode::kPWay);
  const double bytes = double(spec.dataset.total_bytes);
  PhaseBreakdown& p = fig.openmp;
  p.read_s = bytes / spec.machine.disk_bw_bps +
             bytes * spec.app.ingest_extra_cpu_s_per_byte;
  p.map_s = bytes * spec.app.map_cpu_s_per_byte;  // single-threaded parse
  const double traffic_s = double(spec.app.merge_records) *
                           spec.app.merge_record_bytes * 2.0 /
                           spec.machine.mem_stream_bw_bps;
  p.merge_s = traffic_s /* run formation */ +
              traffic_s * spec.machine.pway_stream_penalty /* p-way */;
  p.setup_s = spec.app.setup_cleanup_s;
  p.total_s = p.read_s + p.map_s + p.merge_s + p.setup_s;
  p.input_bytes = spec.dataset.total_bytes;

  fig.openmp_compute_s = p.merge_s;
  fig.mapreduce_compute_s = fig.mapreduce.phases.map_s +
                            fig.mapreduce.phases.reduce_s +
                            fig.mapreduce.phases.merge_s;
  return fig;
}

std::vector<std::pair<std::string, SimJobResult>> fig5_wordcount_traces() {
  std::vector<std::pair<std::string, SimJobResult>> traces;
  traces.emplace_back("none", simulate_job(wordcount_spec(0)));
  traces.emplace_back("1GB", simulate_job(wordcount_spec(1 * kGB)));
  traces.emplace_back("50GB", simulate_job(wordcount_spec(50 * kGB)));
  return traces;
}

SimJobResult fig6_sort_pway() {
  return simulate_job(sort_spec(1 * kGB, core::MergeMode::kPWay));
}

Fig7Result fig7_hdfs_casestudy() {
  Fig7Result fig;
  SimJobSpec spec;
  spec.machine = paper_machine();
  spec.dataset = wload::paper_hdfs_dataset();
  spec.app = wordcount_model(spec.dataset);
  spec.ingest_bw_override_bps = 125.0e6;  // one shared 1 Gb/s link

  // Original runtime: copy the 30 GB from the cluster onto the node, then
  // run the computation (paper §VI.C.3).
  spec.chunk_bytes = 0;
  spec.merge_mode = core::MergeMode::kPairwise;
  fig.original = simulate_job(spec);

  // SupMR: ingest chunks stream over the link in parallel with map.
  spec.chunk_bytes = 1 * kGB;
  spec.merge_mode = core::MergeMode::kPWay;
  fig.supmr = simulate_job(spec);

  fig.speedup_s = fig.original.phases.total_s - fig.supmr.phases.total_s;
  return fig;
}

std::vector<SweepPoint> chunk_size_sweep(
    const AppModel& app, const wload::VirtualDataset& dataset,
    core::MergeMode merge_mode, const std::vector<std::uint64_t>& sizes) {
  std::vector<SweepPoint> points;
  for (std::uint64_t size : sizes) {
    SimJobSpec spec;
    spec.machine = paper_machine();
    spec.dataset = dataset;
    spec.app = app;
    spec.chunk_bytes = size;
    spec.merge_mode = merge_mode;
    const SimJobResult r = simulate_job(spec);
    SweepPoint p;
    p.chunk_bytes = size;
    p.total_s = r.phases.total_s;
    p.readmap_s = r.phases.has_combined_readmap
                      ? r.phases.readmap_s
                      : r.phases.read_s + r.phases.map_s;
    p.mean_utilization = r.mean_utilization;
    p.threads_spawned = r.threads_spawned;
    points.push_back(p);
  }
  return points;
}

std::vector<FaninPoint> merge_fanin_sweep(
    const AppModel& app, const wload::VirtualDataset& d,
    const std::vector<std::size_t>& runs) {
  std::vector<FaninPoint> points;
  for (std::size_t r : runs) {
    SimJobSpec spec;
    spec.machine = paper_machine();
    spec.dataset = d;
    spec.app = app;
    spec.chunk_bytes = 0;
    spec.merge_runs = r;

    spec.merge_mode = core::MergeMode::kPairwise;
    const double pairwise = simulate_job(spec).phases.merge_s;
    spec.merge_mode = core::MergeMode::kPWay;
    const double pway = simulate_job(spec).phases.merge_s;
    points.push_back(FaninPoint{r, pairwise, pway});
  }
  return points;
}

}  // namespace supmr::perfmodel
