// Calibrated cost models for paper-scale simulation.
//
// Calibration policy (see DESIGN.md): every constant is pinned from the
// paper's BASELINE ("none") rows of Table II and the stated hardware; the
// SupMR rows and all figures are then *predicted* by the model, never
// fitted. EXPERIMENTS.md tabulates prediction vs. paper for each cell.
//
// Derivations (Table II, 32 hardware contexts):
//   disk_bw        = 155 GB / 403.90 s            = 383.8 MB/s (matches the
//                    stated RAID-0 maximum of 384 MB/s)
//   wc map cpu/B   = 67.41 s * 32 / 155e9 B       = 1.392e-8 s
//   sort map cpu/B = 6.33 s * 32 / 60e9 B         = 3.376e-9 s
//   sort ingest extra (container page-in during read; read row is 182.78 s
//                    vs 156.25 s raw transfer)    = 4.42e-10 s/B (sys)
//   wc reduce/key  = 0.03 s * 32 / 2e6 keys       = 4.8e-7 s
//   sort reduce/rec= 7.72 s * 32 / 600e6          = 4.12e-7 s
//   mem stream bw  : pairwise merge moves all records log2(R)=6 times,
//                    2 x 60 GB traffic per round  => 720 GB / 191.23 s
//                                                  = 3.765 GB/s
//   p-way penalty  : a p-way merge runs p workers x R-run loser trees
//                    (thousands of concurrent streams vs 2 per worker), so
//                    its effective stream bandwidth is halved. This is the
//                    single shape parameter not derivable from a baseline
//                    row; 2.0 predicts 63.7 s vs the paper's 61.14 s.
//   setup+cleanup  : total minus the listed phases ("All job execution
//                    times do not add up", §VI.B): wc 0.40 s, sort 9.25 s.
#pragma once

#include <cstdint>

#include "common/units.hpp"
#include "wload/virtual_dataset.hpp"

namespace supmr::perfmodel {

// Machine + storage constants (paper testbed).
struct CostModel {
  int contexts = 32;
  double disk_bw_bps = 384.0e6;
  double mem_stream_bw_bps = 3.765e9;
  double pway_stream_penalty = 2.0;
  double thread_spawn_s = 0.0002;  // sys-CPU per mapper thread create
  double thread_join_s = 0.0001;   // sys-CPU per mapper thread destroy
};

// Per-application cost description.
struct AppModel {
  // Parallel map work (cpu-seconds per input byte, per thread).
  double map_cpu_s_per_byte = 0.0;
  // Extra kernel-side cost charged while ingesting (page faults while
  // paging freshly allocated container memory in).
  double ingest_extra_cpu_s_per_byte = 0.0;
  // Reduce: items * cost, parallelized over all contexts.
  std::uint64_t reduce_items = 0;
  double reduce_cpu_s_per_item = 0.0;
  // Merge: records of record_bytes moved through the memory system.
  std::uint64_t merge_records = 0;
  double merge_record_bytes = 0.0;
  // Unattributed setup/cleanup added to the job total.
  double setup_cleanup_s = 0.0;
};

inline CostModel paper_machine() { return CostModel{}; }

inline AppModel wordcount_model(const wload::VirtualDataset& d) {
  AppModel m;
  m.map_cpu_s_per_byte = 1.392e-8;
  m.ingest_extra_cpu_s_per_byte = 0.0;
  m.reduce_items = d.distinct_keys;
  m.reduce_cpu_s_per_item = 4.8e-7;
  m.merge_records = d.distinct_keys;
  m.merge_record_bytes = 16.0;  // (word ptr, count) pairs
  m.setup_cleanup_s = 0.40;
  return m;
}

inline AppModel sort_model(const wload::VirtualDataset& d) {
  AppModel m;
  m.map_cpu_s_per_byte = 3.376e-9;
  m.ingest_extra_cpu_s_per_byte = 4.42e-10;
  m.reduce_items = d.num_records;
  m.reduce_cpu_s_per_item = 4.12e-7;
  m.merge_records = d.num_records;
  m.merge_record_bytes = d.avg_record_bytes;
  m.setup_cleanup_s = 9.25;
  return m;
}

}  // namespace supmr::perfmodel
