// Paper-scale job simulation: replays the runtime's schedule against the
// discrete-event machine model.
//
// The schedule mirrors core::MapReduceJob exactly:
//   original runtime:  [ingest all] -> [map wave] -> [reduce] -> [merge]
//   run(kIngestMR):      n+1 pipeline rounds — ingest(c_{i+1}) overlapped with
//                      map(c_i) — then reduce and merge.
// The chunk plan uses the same arithmetic as ingest planning (equal chunks,
// short tail), the map waves use the same "<= mappers tasks per round" rule,
// and the merge rounds use the same run counts, so the simulated schedule is
// the real runtime's schedule with modelled costs.
#pragma once

#include "common/phase_timer.hpp"
#include "common/timeseries.hpp"
#include "core/job_config.hpp"
#include "perfmodel/cost_model.hpp"

namespace supmr::perfmodel {

struct SimJobSpec {
  CostModel machine;
  AppModel app;
  wload::VirtualDataset dataset;

  // 0 => original runtime (single ingest, no pipeline).
  std::uint64_t chunk_bytes = 0;
  core::MergeMode merge_mode = core::MergeMode::kPairwise;
  std::size_t num_mappers = 32;   // map wave width
  std::size_t merge_runs = 64;    // sorted runs entering the final merge

  // Overrides the disk bandwidth (e.g. the HDFS shared 1 Gb/s link).
  double ingest_bw_override_bps = 0.0;

  double trace_interval_s = 1.0;
};

struct SimJobResult {
  PhaseBreakdown phases;
  TimeSeries trace;            // user/sys/iowait, like collectl
  double mean_utilization = 0.0;  // user+sys percent over the whole job
  std::uint64_t map_rounds = 0;
  std::uint64_t merge_rounds = 0;
  std::uint64_t threads_spawned = 0;

  SimJobResult() : trace({"user", "sys", "iowait"}) {}
};

// Runs the simulation to completion (virtual time; returns in milliseconds
// of host time even for 155 GB jobs).
SimJobResult simulate_job(const SimJobSpec& spec);

}  // namespace supmr::perfmodel
