// Per-experiment drivers: one function per table/figure of the paper.
//
// Bench binaries print these results; tests assert their shape (who wins,
// by roughly what factor, where crossovers fall). All run at paper scale in
// virtual time.
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "perfmodel/sim_job.hpp"

namespace supmr::perfmodel {

struct Table2Row {
  std::string label;          // "none", "1GB", "50GB"
  SimJobResult result;
};

// Table II, word count block: chunk sizes none / 1 GB / 50 GB on 155 GB.
std::vector<Table2Row> table2_wordcount();

// Table II, sort block: chunk none (pairwise merge) / 1 GB (p-way merge).
std::vector<Table2Row> table2_sort();

// Fig. 1: original-runtime sort trace (60 GB, no chunks, pairwise merge).
SimJobResult fig1_sort_baseline();

// Fig. 3: OpenMP-style sort vs. the original MapReduce runtime.
struct Fig3Result {
  SimJobResult mapreduce;     // original runtime (same run as Fig. 1)
  PhaseBreakdown openmp;      // sequential ingest+parse, parallel sort
  double openmp_compute_s = 0.0;
  double mapreduce_compute_s = 0.0;
};
Fig3Result fig3_openmp_vs_mapreduce();

// Fig. 5 a/b/c: word count traces at chunk = none / 1 GB / 50 GB.
std::vector<std::pair<std::string, SimJobResult>> fig5_wordcount_traces();

// Fig. 6: SupMR sort trace (1 GB chunks, p-way merge).
SimJobResult fig6_sort_pway();

// Fig. 7: word count ingesting 30 GB from HDFS behind one 1 Gb/s link.
struct Fig7Result {
  SimJobResult original;  // copy everything, then compute
  SimJobResult supmr;     // ingest chunk pipeline over the link
  double speedup_s = 0.0;
};
Fig7Result fig7_hdfs_casestudy();

// Ablation: total job time across a chunk-size sweep (bytes; 0 = none).
struct SweepPoint {
  std::uint64_t chunk_bytes = 0;
  double total_s = 0.0;
  double readmap_s = 0.0;
  double mean_utilization = 0.0;
  std::uint64_t threads_spawned = 0;
};
std::vector<SweepPoint> chunk_size_sweep(
    const AppModel& app, const wload::VirtualDataset& dataset,
    core::MergeMode merge_mode, const std::vector<std::uint64_t>& sizes);

// Ablation: merge wall time vs. fan-in (number of sorted runs).
struct FaninPoint {
  std::size_t runs = 0;
  double pairwise_merge_s = 0.0;
  double pway_merge_s = 0.0;
};
std::vector<FaninPoint> merge_fanin_sweep(const AppModel& app,
                                          const wload::VirtualDataset& d,
                                          const std::vector<std::size_t>& runs);

}  // namespace supmr::perfmodel
