// OpenMP-style sort baseline (paper Fig. 3).
//
// The comparison app the paper builds with OpenMP: a thread-parallel sort
// with *no* MapReduce runtime around it. Its structure is exactly what makes
// it lose on time-to-result despite a faster compute phase:
//   1. read the whole input into memory      (sequential, 1 thread)
//   2. parse records into the working array  (sequential, 1 thread)
//   3. __gnu_parallel::sort-equivalent       (fully parallel sample sort)
// Phases are timed separately so the Fig. 3 geometry — compute faster,
// total slower — is directly observable.
#pragma once

#include <cstdint>
#include <vector>

#include "common/phase_timer.hpp"
#include "common/status.hpp"
#include "storage/device.hpp"

namespace supmr::baseline {

struct OmpSortOptions {
  std::uint32_t key_bytes = 10;
  std::uint32_t record_bytes = 100;
  std::size_t num_threads = 0;  // 0 = hardware concurrency
};

struct OmpSortResult {
  PhaseBreakdown phases;  // read_s = ingest, map_s = parse, merge_s = sort
  std::uint64_t records = 0;
  std::vector<char> sorted;  // records in key order
};

// Sorts the fixed-width records on `device`.
StatusOr<OmpSortResult> run_omp_style_sort(const storage::Device& device,
                                           const OmpSortOptions& options);

}  // namespace supmr::baseline
