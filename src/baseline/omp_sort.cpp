#include "baseline/omp_sort.hpp"

#include <cstring>
#include <thread>

#include "merge/sample_sort.hpp"
#include "threading/thread_pool.hpp"

namespace supmr::baseline {

StatusOr<OmpSortResult> run_omp_style_sort(const storage::Device& device,
                                           const OmpSortOptions& options) {
  OmpSortResult result;
  PhaseClock clock;
  clock.start_total();

  // Phase 1: sequential ingest of the entire input.
  clock.start(Phase::kRead);
  std::vector<char> raw(device.size());
  SUPMR_ASSIGN_OR_RETURN(
      std::size_t n,
      device.read_at(0, std::span<char>(raw.data(), raw.size())));
  clock.stop(Phase::kRead);
  if (n != raw.size()) {
    return Status::IoError("short read of input device");
  }
  if (raw.size() % options.record_bytes != 0) {
    return Status::InvalidArgument("input is not whole records");
  }
  const std::uint64_t records = raw.size() / options.record_bytes;

  // Phase 2: sequential parse — one thread walks every record and builds
  // the index (the "parsing the data with one thread" of Fig. 3; MapReduce
  // gets this for free in its parallel map phase).
  clock.start(Phase::kMap);
  std::vector<std::uint64_t> index(records);
  std::uint64_t parse_guard = 0;
  for (std::uint64_t i = 0; i < records; ++i) {
    index[i] = i;
    // Touch the record's terminator like a real parser would.
    parse_guard += static_cast<unsigned char>(
        raw[i * options.record_bytes + options.record_bytes - 1]);
  }
  clock.stop(Phase::kMap);
  (void)parse_guard;

  // Phase 3: fully parallel sort (the OpenMP parallel-mode sort).
  clock.start(Phase::kMerge);
  const unsigned hw = std::thread::hardware_concurrency();
  const std::size_t threads =
      options.num_threads ? options.num_threads : (hw == 0 ? 4 : hw);
  ThreadPool pool(threads);
  const char* data = raw.data();
  const auto rb = options.record_bytes;
  const auto kb = options.key_bytes;
  auto cmp = [data, rb, kb](std::uint64_t a, std::uint64_t b) {
    return std::memcmp(data + a * rb, data + b * rb, kb) < 0;
  };
  merge::parallel_sample_sort(
      pool, std::span<std::uint64_t>(index.data(), index.size()), cmp);

  result.sorted.resize(raw.size());
  parallel_for_or_throw(pool, records,
                        [&](std::size_t first, std::size_t last, std::size_t) {
                          for (std::size_t i = first; i < last; ++i)
                            std::memcpy(result.sorted.data() + i * rb,
                                        data + index[i] * rb, rb);
                        });
  clock.stop(Phase::kMerge);

  clock.stop_total();
  result.phases = clock.snapshot();
  result.phases.input_bytes = device.size();
  result.records = records;
  return result;
}

}  // namespace supmr::baseline
