// Combiners: how a container folds repeated emissions of the same key.
//
// Phoenix++ fuses the combine step into container insertion so the
// intermediate set stays small (word count's 155 GB input folds to a
// few-million-entry table). A combiner provides:
//   identity()            — initial accumulator,
//   combine(acc, v)       — fold one mapped value in,
//   merge(acc, other)     — fold another accumulator in (cross-thread
//                           reduction in the reduce phase).
#pragma once

#include <algorithm>
#include <cstdint>
#include <limits>
#include <utility>
#include <vector>

namespace supmr::containers {

template <typename V>
struct SumCombiner {
  using value_type = V;
  static V identity() { return V{}; }
  static void combine(V& acc, const V& v) { acc += v; }
  static void merge(V& acc, const V& other) { acc += other; }
};

template <typename V>
struct MinCombiner {
  using value_type = V;
  static V identity() { return std::numeric_limits<V>::max(); }
  static void combine(V& acc, const V& v) { acc = std::min(acc, v); }
  static void merge(V& acc, const V& other) { acc = std::min(acc, other); }
};

template <typename V>
struct MaxCombiner {
  using value_type = V;
  static V identity() { return std::numeric_limits<V>::lowest(); }
  static void combine(V& acc, const V& v) { acc = std::max(acc, v); }
  static void merge(V& acc, const V& other) { acc = std::max(acc, other); }
};

// Keeps every value (no folding): inverted index, grouping workloads.
template <typename V>
struct AppendCombiner {
  using value_type = std::vector<V>;
  static std::vector<V> identity() { return {}; }
  static void combine(std::vector<V>& acc, const V& v) { acc.push_back(v); }
  static void merge(std::vector<V>& acc, const std::vector<V>& other) {
    acc.insert(acc.end(), other.begin(), other.end());
  }
  static void merge(std::vector<V>& acc, std::vector<V>&& other) {
    if (acc.empty()) {
      acc = std::move(other);
    } else {
      acc.insert(acc.end(), std::make_move_iterator(other.begin()),
                 std::make_move_iterator(other.end()));
    }
  }
};

}  // namespace supmr::containers
