// Spilling hash container: external aggregation for intermediate sets
// larger than RAM.
//
// The paper's hash container assumes the (word, count) table fits in memory
// — true for 155 GB of English on a 384 GB box, false for high-cardinality
// keys (URLs, n-grams) or smaller machines. This container keeps the
// lock-free striped emission path, but when the stripes' footprint crosses
// the budget the coordinator spills them as ONE sorted, per-key-combined
// run (length-prefixed (key, count) records), and the final reduce streams
// a k-way combining merge over all runs plus the live stripes — the same
// single-round merge argument as §IV applied to aggregation.
//
// Concurrency contract mirrors the runtime: emit() runs on map threads
// (distinct stripes); maybe_spill() and merge_reduce() run on the
// coordinator between/after map waves.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/status.hpp"
#include "containers/arena_hash_map.hpp"

namespace supmr::containers {

class SpillingHashContainer {
 public:
  struct Options {
    std::uint64_t memory_budget_bytes = 64 << 20;
    std::string spill_dir = "/tmp";
    std::uint64_t merge_read_bytes = 1 << 20;
  };

  SpillingHashContainer() = default;
  ~SpillingHashContainer();

  SpillingHashContainer(const SpillingHashContainer&) = delete;
  SpillingHashContainer& operator=(const SpillingHashContainer&) = delete;

  // Idempotent (persistent across rounds, paper §III.C).
  void init(std::size_t num_map_threads, Options options);

  // Map-side: lock-free fold into the calling thread's stripe.
  void emit(std::size_t thread_id, std::string_view key,
            std::uint64_t count) {
    stripes_[thread_id].find_or_insert(key, 0) += count;
  }

  // Coordinator, between map waves: spills all stripes as one sorted run if
  // the footprint exceeds the budget.
  Status maybe_spill();
  // Unconditional spill (exposed for tests).
  Status spill();

  // Streams the final (key, total) pairs in key order, combining across
  // spilled runs and live stripes. Call once, after the last map wave.
  Status merge_reduce(
      const std::function<void(std::string_view, std::uint64_t)>& fn);

  std::size_t runs_spilled() const { return spill_paths_.size(); }
  std::uint64_t memory_bytes() const;
  bool initialized() const { return initialized_; }

 private:
  // Sorted unique (key, count) snapshot of all stripes; clears them.
  std::vector<std::pair<std::string, std::uint64_t>> drain_stripes();

  Options options_;
  std::vector<ArenaHashMap<std::uint64_t>> stripes_;
  std::vector<std::string> spill_paths_;
  bool initialized_ = false;
};

}  // namespace supmr::containers
