// In-mapper combining container (ROADMAP item 2, Phoenix++'s core insight).
//
// Folds duplicate keys at emit time: one open-addressing hash-aggregate per
// map thread, applying the app-declared associative combine() on every
// map_emit so wordcount-style workloads never push duplicate keys into the
// reduce/merge phases. The in-node combiner paper (PAPERS.md) measures this
// as the single biggest lever for high-duplication workloads — the
// intermediate volume drops by the key-duplication factor before it ever
// touches shuffle bandwidth, which is exactly the resource the SupMR paper
// says saturates first.
//
// Differences from HashContainer (the Phoenix++ default this specializes):
//   * Short keys (<= kInlineKeyBytes) are stored inline in the slot, so the
//     hot fold path — hash, probe, compare, combine — touches one cache line
//     instead of chasing an arena pointer per probe. Word count keys are
//     almost always inline.
//   * Every stripe tracks fold effectiveness (emits, bytes emitted, bytes
//     surviving into merge) with single-writer counters, surfaced through
//     stats() as core::CombineStats and via the container.* obs metrics.
//
// Same persistence contract as HashContainer: init() is idempotent across
// ingest rounds, a thread-count change without reset() is a logic_error,
// and reduce_partition(part, num_parts) is safe to call concurrently for
// distinct partitions (hash-stable across growth).
#pragma once

#include <cassert>
#include <cstdint>
#include <cstring>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "containers/arena_hash_map.hpp"
#include "containers/hash.hpp"
#include "containers/hash_container.hpp"
#include "core/application.hpp"

namespace supmr::containers {

// Byte size of one emitted/stored value as it would cross into merge:
// scalars by sizeof, Append accumulators by their element payload.
template <typename V>
inline std::uint64_t value_payload_bytes(const V&) {
  return sizeof(V);
}
template <typename E>
inline std::uint64_t value_payload_bytes(const std::vector<E>& v) {
  return v.size() * sizeof(E);
}

template <typename Combiner>
class CombiningContainer {
 public:
  using value_type = typename Combiner::value_type;

  // Keys at most this long live inside the slot itself. 12 keeps the whole
  // slot at 32 bytes for 8-byte values — the same density as ArenaHashMap's
  // slot array, but with the key bytes on the slot's own cache line.
  static constexpr std::size_t kInlineKeyBytes = 12;

  // One stripe per map thread; idempotent across rounds, logic_error on a
  // thread-count change (same contract as HashContainer::init).
  void init(std::size_t num_map_threads, std::size_t capacity_hint = 1024) {
    if (initialized_) {
      if (stripes_.size() != num_map_threads)
        throw std::logic_error(
            "CombiningContainer::init: map thread count changed across "
            "rounds (" +
            std::to_string(stripes_.size()) + " -> " +
            std::to_string(num_map_threads) + "); reset() first");
      return;
    }
    stripes_.clear();
    stripes_.resize(num_map_threads);
    for (Stripe& s : stripes_) s.reserve(capacity_hint);
    initialized_ = true;
  }

  bool initialized() const { return initialized_; }

  void reset() {
    stripes_.clear();
    initialized_ = false;
  }

  // The fold: find-or-insert in the calling thread's stripe, then combine.
  // An emit that lands on an existing key is "folded" — it costs a table
  // probe instead of an intermediate record.
  void emit(std::size_t thread_id, std::string_view key,
            const auto& mapped_value) {
    assert(thread_id < stripes_.size());
    Stripe& s = stripes_[thread_id];
    ++s.emits;
    s.bytes_emitted += key.size() + value_payload_bytes(mapped_value);
    value_type& acc = s.find_or_insert(key, Combiner::identity());
    Combiner::combine(acc, mapped_value);
  }

  std::size_t num_stripes() const { return stripes_.size(); }

  // Surviving accumulators across stripes (a key present in two stripes
  // counts twice; reduce de-duplicates).
  std::size_t raw_entries() const {
    std::size_t n = 0;
    for (const Stripe& s : stripes_) n += s.size;
    return n;
  }

  // Cross-thread merge of partition `part`: Combiner::merge over the
  // stripes' surviving accumulators, keyed by the same mixed hash as
  // ArenaHashMap so partitions stay stable. Disjoint partitions may run
  // concurrently.
  std::vector<std::pair<std::string, value_type>> reduce_partition(
      std::size_t part, std::size_t num_parts) const {
    ArenaHashMap<value_type> merged(256);
    for (const Stripe& stripe : stripes_) {
      stripe.for_each_in_partition(
          part, num_parts, [&](std::string_view key, const value_type& v) {
            value_type& acc = merged.find_or_insert(key, Combiner::identity());
            Combiner::merge(acc, v);
          });
    }
    std::vector<std::pair<std::string, value_type>> out;
    out.reserve(merged.size());
    merged.for_each([&](std::string_view key, const value_type& v) {
      out.emplace_back(std::string(key), v);
    });
    return out;
  }

  // --- fold-effectiveness accounting (single-writer per stripe during the
  // map phase; read only after the map waves joined) ---

  std::uint64_t emits() const {
    std::uint64_t n = 0;
    for (const Stripe& s : stripes_) n += s.emits;
    return n;
  }

  // Emits absorbed into an existing accumulator instead of becoming a new
  // intermediate record.
  std::uint64_t keys_folded() const { return emits() - raw_entries(); }

  // Intermediate volume a non-combining container would carry into merge:
  // every emit's key+value payload.
  std::uint64_t bytes_emitted() const {
    std::uint64_t b = 0;
    for (const Stripe& s : stripes_) b += s.bytes_emitted;
    return b;
  }

  // What actually survives the emit-time fold.
  std::uint64_t bytes_into_merge() const {
    std::uint64_t b = 0;
    for (const Stripe& s : stripes_) {
      s.for_each([&](std::string_view key, const value_type& v) {
        b += key.size() + value_payload_bytes(v);
      });
    }
    return b;
  }

  // Resident table footprint (slot arrays + long-key arenas) for lease
  // accounting; tables never shrink before reset(), so this is the peak.
  std::size_t memory_bytes() const {
    std::size_t b = 0;
    for (const Stripe& s : stripes_) b += s.memory_bytes();
    return b;
  }

  core::CombineStats stats() const {
    core::CombineStats s;
    s.emits = emits();
    s.keys_folded = keys_folded();
    s.bytes_emitted = bytes_emitted();
    s.bytes_into_merge = bytes_into_merge();
    s.table_bytes = memory_bytes();
    return s;
  }

 private:
  struct Slot {
    // key_len sentinel for an empty slot; real keys are far shorter.
    static constexpr std::uint32_t kEmpty = 0xffffffffu;
    std::uint64_t hash = 0;
    std::uint32_t key_len = kEmpty;
    // Inline key bytes, or (for keys longer than kInlineKeyBytes) a
    // memcpy'd u64 offset into the stripe's long_keys buffer. A plain byte
    // array instead of a union keeps the slot unpadded: 8 + 4 + 12 + value.
    char key[kInlineKeyBytes] = {};
    value_type value{};

    std::uint64_t long_offset() const {
      std::uint64_t off;
      std::memcpy(&off, key, sizeof(off));
      return off;
    }
    void set_long_offset(std::uint64_t off) {
      std::memcpy(key, &off, sizeof(off));
    }
  };
  // The probe loop is memory-bound: for 8-byte values the slot must stay at
  // 32 bytes (two per cache line), matching ArenaHashMap's density.
  static_assert(sizeof(value_type) != 8 || sizeof(Slot) == 32,
                "Slot layout regressed past 32 bytes for 8-byte values");

  // One map thread's table. Linear probing over a power-of-two slot array,
  // growing at 70% load (same policy as ArenaHashMap); keys longer than the
  // inline capacity spill to an append-only buffer.
  struct Stripe {
    std::vector<Slot> slots;
    std::string long_keys;
    std::size_t size = 0;
    std::uint64_t emits = 0;
    std::uint64_t bytes_emitted = 0;

    void reserve(std::size_t capacity_hint) {
      std::size_t cap = 16;
      while (cap < capacity_hint * 2) cap <<= 1;
      slots.resize(cap);
    }

    std::string_view key_of(const Slot& slot) const {
      return slot.key_len <= kInlineKeyBytes
                 ? std::string_view(slot.key, slot.key_len)
                 : std::string_view(long_keys.data() + slot.long_offset(),
                                    slot.key_len);
    }

    std::size_t probe(std::string_view key, std::uint64_t h) const {
      const std::size_t mask = slots.size() - 1;
      std::size_t idx = h & mask;
      while (slots[idx].key_len != Slot::kEmpty &&
             (slots[idx].hash != h || key_of(slots[idx]) != key)) {
        idx = (idx + 1) & mask;
      }
      return idx;
    }

    value_type& find_or_insert(std::string_view key, const value_type& init) {
      if ((size + 1) * 10 >= slots.size() * 7) grow();
      const std::uint64_t h = hash_bytes(key);
      Slot& slot = slots[probe(key, h)];
      if (slot.key_len == Slot::kEmpty) {
        slot.hash = h;
        slot.key_len = static_cast<std::uint32_t>(key.size());
        if (key.size() <= kInlineKeyBytes) {
          std::memcpy(slot.key, key.data(), key.size());
        } else {
          slot.set_long_offset(long_keys.size());
          long_keys.append(key.data(), key.size());
        }
        slot.value = init;
        ++size;
      }
      return slot.value;
    }

    void grow() {
      std::vector<Slot> old;
      old.swap(slots);
      slots.resize(old.size() * 2);
      const std::size_t mask = slots.size() - 1;
      for (Slot& slot : old) {
        if (slot.key_len == Slot::kEmpty) continue;
        std::size_t idx = slot.hash & mask;
        while (slots[idx].key_len != Slot::kEmpty) idx = (idx + 1) & mask;
        slots[idx] = std::move(slot);
      }
    }

    template <typename Fn>
    void for_each(Fn&& fn) const {
      for (const Slot& slot : slots) {
        if (slot.key_len != Slot::kEmpty) fn(key_of(slot), slot.value);
      }
    }

    template <typename Fn>
    void for_each_in_partition(std::size_t part, std::size_t num_parts,
                               Fn&& fn) const {
      assert(part < num_parts);
      for (const Slot& slot : slots) {
        if (slot.key_len != Slot::kEmpty && slot.hash % num_parts == part)
          fn(key_of(slot), slot.value);
      }
    }

    std::size_t memory_bytes() const {
      return slots.size() * sizeof(Slot) + long_keys.capacity();
    }
  };

  std::vector<Stripe> stripes_;
  bool initialized_ = false;
};

// The emit seam an app with a declared combiner routes through: its default
// HashContainer and the CombiningContainer side by side, with select()
// (called by Application::use_container before init) choosing which one the
// job fills. Everything downstream — reduce_partition's output shape,
// ordering guarantees — is identical between the two, so an app's reduce and
// merge code never branches.
template <typename Combiner>
class SwitchedContainer {
 public:
  using value_type = typename Combiner::value_type;

  // Must run before init(); switching a live container would strand emitted
  // pairs in the other table.
  void select(core::ContainerMode mode) {
    if (hash_.initialized() || combining_.initialized())
      throw std::logic_error(
          "SwitchedContainer::select: container already initialized; "
          "reset() first");
    mode_ = mode;
  }

  core::ContainerMode mode() const { return mode_; }

  void init(std::size_t num_map_threads, std::size_t capacity_hint = 1024) {
    if (combining())
      combining_.init(num_map_threads, capacity_hint);
    else
      hash_.init(num_map_threads, capacity_hint);
  }

  bool initialized() const {
    return combining() ? combining_.initialized() : hash_.initialized();
  }

  void reset() {
    hash_.reset();
    combining_.reset();
  }

  void emit(std::size_t thread_id, std::string_view key,
            const auto& mapped_value) {
    if (combining())
      combining_.emit(thread_id, key, mapped_value);
    else
      hash_.emit(thread_id, key, mapped_value);
  }

  std::vector<std::pair<std::string, value_type>> reduce_partition(
      std::size_t part, std::size_t num_parts) const {
    return combining() ? combining_.reduce_partition(part, num_parts)
                       : hash_.reduce_partition(part, num_parts);
  }

  std::size_t raw_entries() const {
    return combining() ? combining_.raw_entries() : hash_.raw_entries();
  }

  // All-zero in default mode: HashContainer does not track fold counters.
  core::CombineStats stats() const {
    return combining() ? combining_.stats() : core::CombineStats{};
  }

 private:
  bool combining() const { return mode_ == core::ContainerMode::kCombining; }

  core::ContainerMode mode_ = core::ContainerMode::kDefault;
  HashContainer<Combiner> hash_;
  CombiningContainer<Combiner> combining_;
};

}  // namespace supmr::containers
