// Array container: Phoenix's "unlocked storage" for unique-key workloads.
//
// Sort transforms the input into an equal-sized intermediate set with unique
// keys, so hashing is pure overhead (paper §V.B). Instead, all threads write
// fixed-width records into one contiguous array without synchronization:
// before each map round the coordinator claims a slot range for the round's
// records (one atomic extend, resizing while no mappers run), then each
// mapper writes its own disjoint sub-range.
//
// Records are copied in, so the container owns the data and chunk buffers
// can be recycled — which is what lets the persistent container span the
// whole ingest stream while only two chunks stay resident.
#pragma once

#include <cassert>
#include <stdexcept>
#include <cstdint>
#include <cstring>
#include <span>
#include <vector>

namespace supmr::containers {

class ArrayContainer {
 public:
  // Idempotent across map rounds (persistence, paper §III.C).
  void init(std::uint64_t record_bytes, std::uint64_t expected_records = 0) {
    if (initialized_) {
      if (record_bytes_ != record_bytes)
        throw std::logic_error(
            "ArrayContainer::init: record_bytes changed across rounds; "
            "reset() first");
      return;
    }
    record_bytes_ = record_bytes;
    data_.reserve(expected_records * record_bytes);
    used_records_ = 0;
    initialized_ = true;
  }

  bool initialized() const { return initialized_; }
  std::uint64_t record_bytes() const { return record_bytes_; }
  std::uint64_t size() const { return used_records_; }

  void reset() {
    data_.clear();
    used_records_ = 0;
    initialized_ = false;
  }

  // Claims `n` record slots and returns the first slot index. Must be called
  // between map waves (it may reallocate); mappers then fill their disjoint
  // sub-ranges concurrently via write_record().
  std::uint64_t claim(std::uint64_t n) {
    assert(initialized_);
    const std::uint64_t base = used_records_;
    used_records_ += n;
    data_.resize(used_records_ * record_bytes_);
    return base;
  }

  // Unsynchronized write into a claimed slot (each mapper owns its slots).
  void write_record(std::uint64_t slot, std::span<const char> record) {
    assert(slot < used_records_ && record.size() == record_bytes_);
    std::memcpy(data_.data() + slot * record_bytes_, record.data(),
                record_bytes_);
  }

  std::span<const char> record(std::uint64_t slot) const {
    assert(slot < used_records_);
    return std::span<const char>(data_.data() + slot * record_bytes_,
                                 record_bytes_);
  }
  char* mutable_record(std::uint64_t slot) {
    assert(slot < used_records_);
    return data_.data() + slot * record_bytes_;
  }

  const char* data() const { return data_.data(); }
  char* data() { return data_.data(); }

 private:
  std::vector<char> data_;
  std::uint64_t record_bytes_ = 0;
  std::uint64_t used_records_ = 0;
  bool initialized_ = false;
};

}  // namespace supmr::containers
