#include "containers/spilling_hash.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>
#include <cstdio>
#include <cstring>
#include <queue>

#include "merge/introsort.hpp"
#include "obs/macros.hpp"

namespace supmr::containers {

namespace {

// Spill record layout: [u32 key_len][key bytes][u64 count].
constexpr std::size_t kHeaderBytes = sizeof(std::uint32_t);
constexpr std::size_t kCountBytes = sizeof(std::uint64_t);

// Buffered reader over one spill run.
class SpillCursor {
 public:
  Status open(const std::string& path, std::uint64_t read_bytes) {
    file_ = std::fopen(path.c_str(), "rb");
    if (file_ == nullptr) {
      return Status::IoError("cannot reopen spill run " + path);
    }
    buf_.resize(std::max<std::uint64_t>(read_bytes, 4096));
    return advance();
  }

  // In-memory run variant.
  void open_memory(std::vector<std::pair<std::string, std::uint64_t>> pairs) {
    mem_ = std::move(pairs);
    mem_pos_ = 0;
    if (mem_pos_ < mem_.size()) {
      key_ = mem_[mem_pos_].first;
      count_ = mem_[mem_pos_].second;
    } else {
      done_ = true;
    }
  }

  ~SpillCursor() {
    if (file_ != nullptr) std::fclose(file_);
  }

  SpillCursor() = default;
  SpillCursor(const SpillCursor&) = delete;
  SpillCursor& operator=(const SpillCursor&) = delete;

  bool done() const { return done_; }
  std::string_view key() const { return key_; }
  std::uint64_t count() const { return count_; }

  Status advance() {
    if (file_ == nullptr && !mem_.empty()) {
      ++mem_pos_;
      if (mem_pos_ >= mem_.size()) {
        done_ = true;
      } else {
        key_ = mem_[mem_pos_].first;
        count_ = mem_[mem_pos_].second;
      }
      return Status::Ok();
    }
    // File-backed: ensure a whole record is buffered.
    SUPMR_RETURN_IF_ERROR(ensure(kHeaderBytes));
    if (done_) return Status::Ok();
    std::uint32_t len = 0;
    std::memcpy(&len, buf_.data() + pos_, kHeaderBytes);
    SUPMR_RETURN_IF_ERROR(ensure(kHeaderBytes + len + kCountBytes));
    if (done_) return Status::IoError("spill run truncated mid-record");
    key_owned_.assign(buf_.data() + pos_ + kHeaderBytes, len);
    key_ = key_owned_;
    std::memcpy(&count_, buf_.data() + pos_ + kHeaderBytes + len,
                kCountBytes);
    pos_ += kHeaderBytes + len + kCountBytes;
    return Status::Ok();
  }

 private:
  // Makes at least `need` bytes available at pos_, refilling from the file;
  // sets done_ when the run is exhausted cleanly at a record boundary.
  Status ensure(std::size_t need) {
    if (len_ - pos_ >= need) return Status::Ok();
    std::memmove(buf_.data(), buf_.data() + pos_, len_ - pos_);
    len_ -= pos_;
    pos_ = 0;
    const std::size_t n =
        std::fread(buf_.data() + len_, 1, buf_.size() - len_, file_);
    len_ += n;
    if (len_ == 0) {
      done_ = true;
    } else if (len_ < need) {
      done_ = true;  // partial record: caller reports truncation
    }
    return Status::Ok();
  }

  std::FILE* file_ = nullptr;
  std::vector<char> buf_;
  std::size_t pos_ = 0, len_ = 0;
  std::string key_owned_;
  std::vector<std::pair<std::string, std::uint64_t>> mem_;
  std::size_t mem_pos_ = 0;
  std::string_view key_;
  std::uint64_t count_ = 0;
  bool done_ = false;
};

}  // namespace

SpillingHashContainer::~SpillingHashContainer() {
  for (const auto& path : spill_paths_) std::remove(path.c_str());
}

void SpillingHashContainer::init(std::size_t num_map_threads,
                                 Options options) {
  if (initialized_) {
    if (stripes_.size() != num_map_threads)
      throw std::logic_error(
          "SpillingHashContainer::init: map thread count changed across "
          "rounds; reset() first");
    return;
  }
  options_ = options;
  stripes_.clear();
  for (std::size_t i = 0; i < num_map_threads; ++i) stripes_.emplace_back(256);
  initialized_ = true;
}

std::uint64_t SpillingHashContainer::memory_bytes() const {
  std::uint64_t total = 0;
  for (const auto& s : stripes_) total += s.memory_bytes();
  return total;
}

std::vector<std::pair<std::string, std::uint64_t>>
SpillingHashContainer::drain_stripes() {
  // Merge duplicates across stripes through a staging map, then sort.
  ArenaHashMap<std::uint64_t> merged(1024);
  for (auto& stripe : stripes_) {
    stripe.for_each([&](std::string_view key, const std::uint64_t& v) {
      merged.find_or_insert(key, 0) += v;
    });
    stripe.clear();
  }
  std::vector<std::pair<std::string, std::uint64_t>> pairs;
  pairs.reserve(merged.size());
  merged.for_each([&](std::string_view key, const std::uint64_t& v) {
    pairs.emplace_back(std::string(key), v);
  });
  merge::introsort(pairs.begin(), pairs.end(),
                   [](const auto& a, const auto& b) {
                     return a.first < b.first;
                   });
  return pairs;
}

Status SpillingHashContainer::spill() {
  SUPMR_TRACE_SCOPE_VAR(span, "container", "spill.run");
  auto pairs = drain_stripes();
  if (pairs.empty()) return Status::Ok();
  SUPMR_TRACE_SET_ARG(span, "pairs", pairs.size());
  SUPMR_COUNTER_ADD("spill.runs", 1);

  char name[64];
  std::snprintf(name, sizeof(name), "/supmr_agg_%p_%zu.run",
                static_cast<void*>(this), spill_paths_.size());
  const std::string path = options_.spill_dir + name;
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return Status::IoError("cannot create spill " + path);
  std::uint64_t written = 0;
  for (const auto& [key, count] : pairs) {
    const std::uint32_t len = static_cast<std::uint32_t>(key.size());
    if (std::fwrite(&len, 1, kHeaderBytes, f) != kHeaderBytes ||
        std::fwrite(key.data(), 1, len, f) != len ||
        std::fwrite(&count, 1, kCountBytes, f) != kCountBytes) {
      std::fclose(f);
      return Status::IoError("short write to spill " + path);
    }
    written += kHeaderBytes + len + kCountBytes;
  }
  if (std::fclose(f) != 0) return Status::IoError("spill close failed");
  SUPMR_COUNTER_ADD("spill.bytes", written);
  SUPMR_TRACE_SET_ARG2(span, "bytes", written);
  spill_paths_.push_back(path);
  return Status::Ok();
}

Status SpillingHashContainer::maybe_spill() {
  if (memory_bytes() <= options_.memory_budget_bytes) return Status::Ok();
  return spill();
}

Status SpillingHashContainer::merge_reduce(
    const std::function<void(std::string_view, std::uint64_t)>& fn) {
  std::vector<SpillCursor> cursors(spill_paths_.size() + 1);
  for (std::size_t r = 0; r < spill_paths_.size(); ++r) {
    SUPMR_RETURN_IF_ERROR(
        cursors[r].open(spill_paths_[r], options_.merge_read_bytes));
  }
  cursors.back().open_memory(drain_stripes());

  // K-way combining merge: repeatedly take the smallest key across cursors,
  // folding equal keys from multiple runs. K is small (runs + 1), so a
  // linear min-scan per output key is fine.
  while (true) {
    // Find the minimum key among live cursors.
    std::string_view min_key;
    bool any = false;
    for (const auto& c : cursors) {
      if (c.done()) continue;
      if (!any || c.key() < min_key) {
        min_key = c.key();
        any = true;
      }
    }
    if (!any) break;
    const std::string key(min_key);  // copy: advancing invalidates views
    std::uint64_t total = 0;
    for (auto& c : cursors) {
      while (!c.done() && c.key() == key) {
        total += c.count();
        SUPMR_RETURN_IF_ERROR(c.advance());
      }
    }
    fn(key, total);
  }

  for (const auto& path : spill_paths_) std::remove(path.c_str());
  spill_paths_.clear();
  return Status::Ok();
}

}  // namespace supmr::containers
