// Open-addressing hash map with arena-owned string keys.
//
// The per-thread building block of the hash container. Keys are copied into
// an append-only arena on first insert, so entries remain valid after the
// ingest chunk that produced them is recycled — the property the persistent
// container (paper §III.C) depends on. Linear probing over a power-of-two
// table; grows at 70% load.
//
// Not thread-safe by design: each map thread owns one map (Phoenix++'s
// thread-local containers), so the hot path takes no locks.
#pragma once

#include <cassert>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "containers/hash.hpp"

namespace supmr::containers {

template <typename V>
class ArenaHashMap {
 public:
  explicit ArenaHashMap(std::size_t capacity_hint = 16) {
    std::size_t cap = 16;
    while (cap < capacity_hint * 2) cap <<= 1;
    slots_.resize(cap);
  }

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  std::size_t capacity() const { return slots_.size(); }
  std::size_t arena_bytes() const { return arena_.size(); }

  // Approximate resident footprint: slot table + key arena.
  std::size_t memory_bytes() const {
    return slots_.size() * sizeof(Slot) + arena_.capacity();
  }

  // Returns the value slot for `key`, inserting `init` if absent.
  V& find_or_insert(std::string_view key, const V& init) {
    if ((size_ + 1) * 10 >= slots_.size() * 7) grow();
    const std::uint64_t h = hash_bytes(key);
    std::size_t idx = probe(key, h);
    Slot& slot = slots_[idx];
    if (!slot.used) {
      slot.used = true;
      slot.hash = h;
      slot.key_off = arena_.size();
      slot.key_len = key.size();
      arena_.append(key.data(), key.size());
      slot.value = init;
      ++size_;
    }
    return slot.value;
  }

  // Returns nullptr if absent.
  V* find(std::string_view key) {
    const std::uint64_t h = hash_bytes(key);
    const std::size_t idx = probe(key, h);
    return slots_[idx].used ? &slots_[idx].value : nullptr;
  }
  const V* find(std::string_view key) const {
    return const_cast<ArenaHashMap*>(this)->find(key);
  }

  // Iterates all entries: fn(key, value). Order is unspecified.
  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (const Slot& slot : slots_) {
      if (slot.used) fn(key_of(slot), slot.value);
    }
  }

  // Iterates entries whose mixed hash lands in reduce partition `part` of
  // `num_parts`. Partitioning by hash (not bucket index) keeps the partition
  // assignment stable across growth.
  template <typename Fn>
  void for_each_in_partition(std::size_t part, std::size_t num_parts,
                             Fn&& fn) const {
    assert(part < num_parts);
    for (const Slot& slot : slots_) {
      if (slot.used && slot.hash % num_parts == part) fn(key_of(slot), slot.value);
    }
  }

  void clear() {
    slots_.assign(slots_.size(), Slot{});
    arena_.clear();
    size_ = 0;
  }

 private:
  struct Slot {
    std::uint64_t hash = 0;
    std::uint64_t key_off = 0;
    std::uint32_t key_len = 0;
    bool used = false;
    V value{};
  };

  std::string_view key_of(const Slot& slot) const {
    return std::string_view(arena_.data() + slot.key_off, slot.key_len);
  }

  std::size_t probe(std::string_view key, std::uint64_t h) const {
    const std::size_t mask = slots_.size() - 1;
    std::size_t idx = h & mask;
    while (slots_[idx].used &&
           (slots_[idx].hash != h || key_of(slots_[idx]) != key)) {
      idx = (idx + 1) & mask;
    }
    return idx;
  }

  void grow() {
    std::vector<Slot> old;
    old.swap(slots_);
    slots_.resize(old.size() * 2);
    const std::size_t mask = slots_.size() - 1;
    for (Slot& slot : old) {
      if (!slot.used) continue;
      std::size_t idx = slot.hash & mask;
      while (slots_[idx].used) idx = (idx + 1) & mask;
      slots_[idx] = std::move(slot);
    }
  }

  std::vector<Slot> slots_;
  std::string arena_;
  std::size_t size_ = 0;
};

}  // namespace supmr::containers
