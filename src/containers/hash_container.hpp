// Hash container: Phoenix++'s default intermediate store.
//
// One ArenaHashMap per map thread — emission takes no locks (the map thread
// writes only its own stripe). The reduce phase walks a hash partition
// across all stripes and merges accumulators, so reducers also proceed
// without locks (each owns a disjoint partition).
//
// The container is *persistent* across map rounds (paper §III.C): init()
// allocates the stripes once; subsequent rounds' mapper waves keep emitting
// into the same stripes. reset() exists for tests that demonstrate what goes
// wrong when a runtime re-initializes per round.
//
// Best for workloads that fold a large input into a small intermediate set
// (word count). For sort — unique keys, intermediate set == input set — use
// ArrayContainer; the paper explains why a hash container is pathological
// there (§V.B).
#pragma once

#include <cassert>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "containers/arena_hash_map.hpp"

namespace supmr::containers {

template <typename Combiner>
class HashContainer {
 public:
  using value_type = typename Combiner::value_type;

  // Allocates one stripe per map thread. Idempotent: later calls (new map
  // rounds in the chunk pipeline) are no-ops — this is the persistence the
  // SupMR runtime requires.
  //
  // A thread-count change across rounds is a hard error, not an assert: a
  // runtime that re-leases a different thread count mid-job (JobManager)
  // would otherwise index out-of-bounds stripes silently in release builds.
  void init(std::size_t num_map_threads, std::size_t capacity_hint = 1024) {
    if (initialized_) {
      if (stripes_.size() != num_map_threads)
        throw std::logic_error(
            "HashContainer::init: map thread count changed across rounds (" +
            std::to_string(stripes_.size()) + " -> " +
            std::to_string(num_map_threads) + "); reset() first");
      return;
    }
    stripes_.clear();
    stripes_.reserve(num_map_threads);
    for (std::size_t i = 0; i < num_map_threads; ++i)
      stripes_.emplace_back(capacity_hint);
    initialized_ = true;
  }

  bool initialized() const { return initialized_; }

  // Drops all state (the non-persistent behaviour of the original runtime;
  // tests use it to show pair loss across rounds).
  void reset() {
    stripes_.clear();
    initialized_ = false;
  }

  // Map-side emission; `thread_id` must be the calling map thread's index.
  void emit(std::size_t thread_id, std::string_view key,
            const auto& mapped_value) {
    assert(thread_id < stripes_.size());
    value_type& acc =
        stripes_[thread_id].find_or_insert(key, Combiner::identity());
    Combiner::combine(acc, mapped_value);
  }

  std::size_t num_stripes() const { return stripes_.size(); }

  // Total entries across stripes (same key in two stripes counts twice —
  // the reduce phase is what de-duplicates).
  std::size_t raw_entries() const {
    std::size_t n = 0;
    for (const auto& s : stripes_) n += s.size();
    return n;
  }

  // Reduce-side: merges partition `part` of `num_parts` across all stripes
  // into owned (key, accumulator) pairs. Each partition is disjoint, so
  // concurrent calls with distinct `part` are safe.
  std::vector<std::pair<std::string, value_type>> reduce_partition(
      std::size_t part, std::size_t num_parts) const {
    ArenaHashMap<value_type> merged(256);
    for (const auto& stripe : stripes_) {
      stripe.for_each_in_partition(
          part, num_parts, [&](std::string_view key, const value_type& v) {
            value_type& acc = merged.find_or_insert(key, Combiner::identity());
            Combiner::merge(acc, v);
          });
    }
    std::vector<std::pair<std::string, value_type>> out;
    out.reserve(merged.size());
    merged.for_each([&](std::string_view key, const value_type& v) {
      out.emplace_back(std::string(key), v);
    });
    return out;
  }

 private:
  std::vector<ArenaHashMap<value_type>> stripes_;
  bool initialized_ = false;
};

}  // namespace supmr::containers
