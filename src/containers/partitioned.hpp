// Partitioned intermediate container: key-range sharded storage filled
// per-map-thread without cross-thread locking.
//
// The ArrayContainer gives the paper's unlocked writes but keeps one global
// record array, which forces the merge phase into a single round over
// everything (paper Fig. 6's serial barrier). This container crosses that
// with Phoenix++'s per-thread stripes AND sample sort's splitter discipline:
// storage is a (partition, thread) grid of byte stripes, a record appended
// by thread t lands in stripe (partition_of(key), t), and no two threads
// ever touch the same stripe. After the map phase, partition p's stripes
// hold exactly the records whose keys fall in p's key range — so the merge
// phase (merge/partitioned.hpp) runs P independent per-partition merges and
// concatenates the outputs in key order.
//
// Splitters come either from sample_splitters() (evenly spaced probes over
// an early batch, sample-sort style) or set_splitters() (caller-provided,
// e.g. replayed from a previous run). With no splitters the container
// degrades to 1 partition = per-thread ArrayContainer stripes.
#pragma once

#include <algorithm>
#include <cassert>
#include <stdexcept>
#include <cstdint>
#include <cstring>
#include <span>
#include <vector>

namespace supmr::containers {

class PartitionedContainer {
 public:
  // Idempotent across map rounds (persistence, paper §III.C). `partitions`
  // and `threads` are upper bounds fixed at init; key_bytes is the memcmp
  // prefix used for partitioning and must not exceed record_bytes.
  void init(std::uint64_t record_bytes, std::uint64_t key_bytes,
            std::size_t partitions, std::size_t threads) {
    if (initialized_) {
      if (record_bytes_ != record_bytes || key_bytes_ != key_bytes ||
          partitions_ != partitions || threads_ != threads)
        throw std::logic_error(
            "PartitionedContainer::init: geometry (record/key bytes, "
            "partitions, threads) changed across rounds; reset() first");
      return;
    }
    assert(partitions >= 1 && threads >= 1 && key_bytes <= record_bytes);
    record_bytes_ = record_bytes;
    key_bytes_ = key_bytes;
    partitions_ = partitions;
    threads_ = threads;
    stripes_.assign(partitions_ * threads_, {});
    splitters_.clear();
    initialized_ = true;
  }

  bool initialized() const { return initialized_; }
  std::uint64_t record_bytes() const { return record_bytes_; }
  std::uint64_t key_bytes() const { return key_bytes_; }
  std::size_t partitions() const { return partitions_; }
  std::size_t threads() const { return threads_; }

  void reset() {
    stripes_.clear();
    splitters_.clear();
    record_bytes_ = key_bytes_ = 0;
    partitions_ = threads_ = 0;
    initialized_ = false;
  }

  // Installs explicit partition boundaries: splitters must be sorted,
  // strictly increasing key prefixes (key_bytes each, concatenated), at most
  // partitions - 1 of them. Must run between map waves (changes routing).
  void set_splitters(std::vector<char> splitter_keys) {
    assert(initialized_);
    assert(key_bytes_ > 0 && splitter_keys.size() % key_bytes_ == 0);
    assert(splitter_keys.size() / key_bytes_ <= partitions_ - 1);
    splitters_ = std::move(splitter_keys);
  }

  // Sample-sort-style splitter selection from an early record batch: probe
  // `sample` (contiguous records) evenly, sort the probed keys, cut at
  // evenly spaced quantiles, drop duplicate cuts. Deterministic — evenly
  // spaced probes, no RNG — so replayed runs partition identically.
  void sample_splitters(std::span<const char> sample) {
    assert(initialized_ && sample.size() % record_bytes_ == 0);
    splitters_.clear();
    const std::size_t n = sample.size() / record_bytes_;
    if (partitions_ < 2 || n < 2) return;

    const std::size_t want = std::min<std::size_t>(n, 32 * partitions_);
    const std::size_t step = std::max<std::size_t>(1, n / want);
    std::vector<const char*> probes;
    for (std::size_t i = step / 2; i < n; i += step)
      probes.push_back(sample.data() + i * record_bytes_);
    std::sort(probes.begin(), probes.end(),
              [this](const char* a, const char* b) {
                return std::memcmp(a, b, key_bytes_) < 0;
              });

    for (std::size_t p = 1; p < partitions_; ++p) {
      const char* cut = probes[p * probes.size() / partitions_];
      if (!splitters_.empty() &&
          std::memcmp(splitters_.data() + splitters_.size() - key_bytes_, cut,
                      key_bytes_) >= 0) {
        continue;  // duplicate quantile — this key range needs fewer cuts
      }
      splitters_.insert(splitters_.end(), cut, cut + key_bytes_);
    }
  }

  std::size_t num_splitters() const { return splitters_.size() / key_bytes_; }
  std::span<const char> splitter(std::size_t i) const {
    assert(i < num_splitters());
    return std::span<const char>(splitters_.data() + i * key_bytes_,
                                 key_bytes_);
  }

  // Partition for `key` (>= key_bytes readable): the number of splitters
  // <= key, found by binary search. Equal keys always share a partition, so
  // partition p's keys all sort strictly before partition p+1's.
  std::size_t partition_of(const char* key) const {
    std::size_t lo = 0, hi = num_splitters();
    while (lo < hi) {
      const std::size_t mid = lo + (hi - lo) / 2;
      if (std::memcmp(splitters_.data() + mid * key_bytes_, key, key_bytes_) <=
          0) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    return lo;
  }

  // Appends one record from mapper thread `thread`. Lock-free by layout:
  // (partition, thread) stripes are owned by exactly one thread, so
  // concurrent appends from distinct threads never alias. NOT safe to call
  // concurrently with set_splitters/sample_splitters (routing changes
  // between waves only).
  void append(std::size_t thread, std::span<const char> record) {
    assert(initialized_ && thread < threads_);
    assert(record.size() == record_bytes_);
    std::vector<char>& s = stripe_mut(partition_of(record.data()), thread);
    s.insert(s.end(), record.begin(), record.end());
  }

  // Raw stripe bytes for (partition, thread) — consumed by the merge phase.
  std::span<const char> stripe(std::size_t partition,
                               std::size_t thread) const {
    assert(partition < partitions_ && thread < threads_);
    const std::vector<char>& s = stripes_[partition * threads_ + thread];
    return std::span<const char>(s.data(), s.size());
  }
  std::span<char> stripe_span(std::size_t partition, std::size_t thread) {
    assert(partition < partitions_ && thread < threads_);
    std::vector<char>& s = stripes_[partition * threads_ + thread];
    return std::span<char>(s.data(), s.size());
  }

  std::uint64_t partition_bytes(std::size_t partition) const {
    assert(partition < partitions_);
    std::uint64_t bytes = 0;
    for (std::size_t t = 0; t < threads_; ++t)
      bytes += stripes_[partition * threads_ + t].size();
    return bytes;
  }
  std::uint64_t partition_records(std::size_t partition) const {
    return partition_bytes(partition) / record_bytes_;
  }
  std::uint64_t total_records() const {
    std::uint64_t bytes = 0;
    for (const auto& s : stripes_) bytes += s.size();
    return bytes / record_bytes_;
  }

 private:
  std::vector<char>& stripe_mut(std::size_t partition, std::size_t thread) {
    return stripes_[partition * threads_ + thread];
  }

  std::vector<std::vector<char>> stripes_;  // [partition * threads_ + thread]
  std::vector<char> splitters_;             // num_splitters * key_bytes_
  std::uint64_t record_bytes_ = 0;
  std::uint64_t key_bytes_ = 0;
  std::size_t partitions_ = 0;
  std::size_t threads_ = 0;
  bool initialized_ = false;
};

}  // namespace supmr::containers
