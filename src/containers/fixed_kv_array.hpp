// Fixed-key-space container: Phoenix++'s "array container".
//
// For applications whose keys form a small dense integer range known up
// front (histogram bins, byte values, categories), hashing is wasted work:
// each map thread owns a dense V[num_keys] stripe and emission is a direct
// index. Reduce folds stripes per key range — both sides lock-free, like
// the other containers. Persistent across rounds (init idempotent).
#pragma once

#include <cassert>
#include <stdexcept>
#include <cstdint>
#include <vector>

namespace supmr::containers {

template <typename Combiner>
class FixedKvArray {
 public:
  using value_type = typename Combiner::value_type;

  void init(std::size_t num_map_threads, std::size_t num_keys) {
    if (initialized_) {
      if (stripes_.size() != num_map_threads || num_keys_ != num_keys)
        throw std::logic_error(
            "FixedKvArray::init: thread count or key count changed across "
            "rounds; reset() first");
      return;
    }
    num_keys_ = num_keys;
    stripes_.assign(num_map_threads,
                    std::vector<value_type>(num_keys, Combiner::identity()));
    initialized_ = true;
  }

  bool initialized() const { return initialized_; }
  std::size_t num_keys() const { return num_keys_; }
  std::size_t num_stripes() const { return stripes_.size(); }

  void reset() {
    stripes_.clear();
    num_keys_ = 0;
    initialized_ = false;
  }

  // Map-side: fold `v` into `key` on this thread's stripe. No locks.
  void emit(std::size_t thread_id, std::size_t key, const auto& v) {
    assert(thread_id < stripes_.size() && key < num_keys_);
    Combiner::combine(stripes_[thread_id][key], v);
  }

  // Reduce-side: fold all stripes for keys [first, last) into `out`
  // (out[i] corresponds to key first+i). Disjoint ranges may run
  // concurrently.
  void reduce_range(std::size_t first, std::size_t last,
                    value_type* out) const {
    assert(first <= last && last <= num_keys_);
    for (std::size_t k = first; k < last; ++k)
      out[k - first] = Combiner::identity();
    for (const auto& stripe : stripes_) {
      for (std::size_t k = first; k < last; ++k)
        Combiner::merge(out[k - first], stripe[k]);
    }
  }

  // Convenience: full reduction.
  std::vector<value_type> reduce_all() const {
    std::vector<value_type> out(num_keys_, Combiner::identity());
    if (num_keys_ > 0) reduce_range(0, num_keys_, out.data());
    return out;
  }

 private:
  std::vector<std::vector<value_type>> stripes_;
  std::size_t num_keys_ = 0;
  bool initialized_ = false;
};

}  // namespace supmr::containers
