// String hashing for the intermediate containers.
//
// FNV-1a with a 64-bit avalanche finalizer: fast for the short keys word
// count produces, and the finalizer ensures the low bits used for bucket and
// partition selection are well mixed (bucket index and reduce partition are
// both derived from this hash, so they must not correlate).
#pragma once

#include <cstdint>
#include <string_view>

namespace supmr::containers {

inline std::uint64_t mix64(std::uint64_t h) {
  h ^= h >> 33;
  h *= 0xff51afd7ed558ccdULL;
  h ^= h >> 33;
  h *= 0xc4ceb9fe1a85ec53ULL;
  h ^= h >> 33;
  return h;
}

inline std::uint64_t hash_bytes(std::string_view s) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (unsigned char c : s) {
    h ^= c;
    h *= 0x100000001b3ULL;
  }
  return mix64(h);
}

}  // namespace supmr::containers
