// Linear regression — the scalar-aggregation extreme of the application
// spectrum (a classic Phoenix benchmark).
//
// Input: one "x y" pair per line. Map folds the five sufficient statistics
// (n, Σx, Σy, Σx², Σxy) into a tiny per-thread accumulator; reduce folds the
// stripes; merge is a no-op. The intermediate set is CONSTANT size, so with
// the ingest chunk pipeline this job's time collapses to pure ingest — the
// best case for SupMR (Conclusion 1: long map phase relative to reduce and
// merge).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/application.hpp"

namespace supmr::apps {

class LinearRegressionApp final : public core::Application {
 public:
  struct Stats {
    std::uint64_t n = 0;
    double sx = 0.0, sy = 0.0, sxx = 0.0, sxy = 0.0;
  };

  void init(std::size_t num_map_threads) override;
  Status prepare_round(const ingest::IngestChunk& chunk) override;
  std::size_t round_tasks() const override { return splits_.size(); }
  void map_task(std::size_t task, std::size_t thread_id) override;
  Status reduce(ThreadPool& pool, std::size_t num_partitions) override;
  Status merge(ThreadPool& pool, const core::MergePlan& plan,
               merge::MergeStats* stats) override;
  std::uint64_t result_count() const override { return totals_.n ? 1 : 0; }

  // Fitted model y = slope*x + intercept, valid after reduce.
  double slope() const { return slope_; }
  double intercept() const { return intercept_; }
  const Stats& totals() const { return totals_; }

 private:
  std::size_t num_mappers_ = 0;
  std::vector<Stats> per_thread_;
  std::vector<std::span<const char>> splits_;
  Stats totals_;
  double slope_ = 0.0;
  double intercept_ = 0.0;
};

// Generates "x y" lines with y = slope*x + intercept + noise.
std::string generate_xy(std::uint64_t num_points, double slope,
                        double intercept, double noise, std::uint64_t seed);

}  // namespace supmr::apps
