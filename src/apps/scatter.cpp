#include "apps/scatter.hpp"

#include <algorithm>
#include <cassert>
#include <cstring>

#include "merge/introsort.hpp"

namespace supmr::apps {

void ScatterApp::init(std::size_t num_map_threads) {
  num_mappers_ = num_map_threads;
  stripes_.assign(num_map_threads, {});
  staged_.clear();
  routed_.clear();
  output_.clear();
  records_ = 0;
  malformed_ = 0;
}

Status ScatterApp::prepare_round(const ingest::IngestChunk& chunk) {
  const std::span<const char> bytes = chunk.bytes();
  const std::uint64_t rb = options_.record_bytes;
  if (rb == 0) return Status::InvalidArgument("scatter: record_bytes == 0");
  const std::uint64_t num_records = bytes.size() / rb;
  if (bytes.size() % rb != 0) ++malformed_;
  if (chunk.offset % rb != 0) {
    return Status::InvalidArgument(
        "scatter: chunk offset not record-aligned (need CrlfFormat-style "
        "fixed-record chunking)");
  }

  // Stage the records now — the chunk's bytes are only valid for this
  // round, and merge materializes from the staged copy.
  const std::uint64_t stage_at = staged_.size();
  staged_.insert(staged_.end(), bytes.begin(),
                 bytes.begin() + static_cast<std::ptrdiff_t>(num_records * rb));

  // Contiguous record ranges, one per mapper.
  tasks_.clear();
  const std::uint64_t per_task =
      (num_records + num_mappers_ - 1) / std::max<std::uint64_t>(num_mappers_, 1);
  for (std::uint64_t first = 0; first < num_records; first += per_task) {
    RoundTask t;
    t.num_records = std::min(per_task, num_records - first);
    t.chunk_offset = chunk.offset + first * rb;
    t.stage_at = stage_at + first * rb;
    tasks_.push_back(t);
  }
  return Status::Ok();
}

void ScatterApp::map_task(std::size_t task, std::size_t thread_id) {
  assert(task < tasks_.size() && thread_id < num_mappers_);
  const RoundTask& t = tasks_[task];
  const std::uint64_t rb = options_.record_bytes;
  auto& stripe = stripes_[thread_id];
  stripe.reserve(stripe.size() + t.num_records);
  for (std::uint64_t r = 0; r < t.num_records; ++r) {
    const std::uint64_t src = t.stage_at + r * rb;
    const auto first_byte = static_cast<unsigned char>(staged_[src]);
    const std::uint64_t bucket =
        static_cast<std::uint64_t>(first_byte) * options_.buckets / 256;
    const std::uint64_t global_index = (t.chunk_offset + r * rb) / rb;
    stripe.push_back(Routed{bucket << 48 | global_index, src});
  }
}

Status ScatterApp::reduce(ThreadPool&, std::size_t) {
  // Routing entries carry a globally unique order key; reduce just gathers
  // the per-thread stripes.
  std::size_t total = 0;
  for (const auto& s : stripes_) total += s.size();
  routed_.clear();
  routed_.reserve(total);
  for (auto& s : stripes_) {
    routed_.insert(routed_.end(), s.begin(), s.end());
    s.clear();
  }
  return Status::Ok();
}

Status ScatterApp::merge(ThreadPool&, const core::MergePlan&,
                         merge::MergeStats* stats) {
  merge::introsort(
      routed_.begin(), routed_.end(),
      [](const Routed& a, const Routed& b) { return a.order < b.order; });
  const std::uint64_t rb = options_.record_bytes;
  output_.resize(routed_.size() * rb);
  char* dst = output_.data();
  for (const Routed& r : routed_) {
    std::memcpy(dst, staged_.data() + r.src, rb);
    dst += rb;
  }
  records_ = routed_.size();
  routed_.clear();
  staged_.clear();
  staged_.shrink_to_fit();
  if (stats != nullptr) *stats = merge::MergeStats{};
  return Status::Ok();
}

std::string ScatterApp::canonical_output() const {
  return std::string(output_.begin(), output_.end());
}

}  // namespace supmr::apps
