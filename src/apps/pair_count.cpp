#include "apps/pair_count.hpp"

#include <algorithm>
#include <cassert>
#include <functional>

#include "apps/tokenize.hpp"
#include "merge/introsort.hpp"
#include "merge/pairwise.hpp"
#include "merge/pway.hpp"

namespace supmr::apps {

std::vector<std::span<const char>> split_lines(std::span<const char> text,
                                               std::size_t max_splits) {
  std::vector<std::span<const char>> splits;
  if (text.empty() || max_splits == 0) return splits;
  const std::size_t target = (text.size() + max_splits - 1) / max_splits;
  std::size_t begin = 0;
  while (begin < text.size()) {
    std::size_t end = std::min(begin + target, text.size());
    // Cut only after a newline so no pair is torn between splits; the tail
    // split takes whatever remains (possibly without a trailing '\n').
    while (end < text.size() && text[end - 1] != '\n') ++end;
    splits.push_back(text.subspan(begin, end - begin));
    begin = end;
  }
  return splits;
}

void for_each_pair(std::span<const char> text,
                   const std::function<void(std::string_view)>& fn) {
  char key[2 * kMaxWord + 2];
  std::size_t pos = 0;
  while (pos < text.size()) {
    std::size_t eol = pos;
    while (eol < text.size() && text[eol] != '\n') ++eol;
    std::size_t prev_len = 0;  // previous word, already lowercased in key[]
    tokenize_words(text.subspan(pos, eol - pos), [&](std::string_view word) {
      if (prev_len > 0) {
        key[prev_len] = ' ';
        std::copy(word.begin(), word.end(), key + prev_len + 1);
        fn(std::string_view(key, prev_len + 1 + word.size()));
      }
      std::copy(word.begin(), word.end(), key);
      prev_len = word.size();
    });
    pos = eol + 1;
  }
}

void PairCountApp::init(std::size_t num_map_threads) {
  num_mappers_ = num_map_threads;
  container_.init(num_map_threads, /*capacity_hint=*/4096);
  results_.clear();
  partitions_.clear();
}

Status PairCountApp::prepare_round(const ingest::IngestChunk& chunk) {
  splits_ = split_lines(chunk.bytes(), num_mappers_);
  return Status::Ok();
}

void PairCountApp::map_task(std::size_t task, std::size_t thread_id) {
  assert(task < splits_.size() && thread_id < num_mappers_);
  for_each_pair(splits_[task], [&](std::string_view pair) {
    container_.emit(thread_id, pair, std::uint64_t{1});
  });
}

Status PairCountApp::reduce(ThreadPool& pool, std::size_t num_partitions) {
  partitions_.assign(num_partitions, {});
  std::vector<std::function<void(std::size_t)>> tasks;
  tasks.reserve(num_partitions);
  for (std::size_t p = 0; p < num_partitions; ++p) {
    tasks.push_back([this, p, num_partitions](std::size_t) {
      partitions_[p] = container_.reduce_partition(p, num_partitions);
    });
  }
  if (!pool.run_wave(tasks))
    return Status::Internal("reduce wave dropped: thread pool shut down");
  return Status::Ok();
}

Status PairCountApp::merge(ThreadPool& pool, const core::MergePlan& plan,
                           merge::MergeStats* stats) {
  auto by_key = [](const Result& a, const Result& b) {
    return a.first < b.first;
  };
  std::vector<std::function<void(std::size_t)>> sort_tasks;
  for (auto& part : partitions_) {
    sort_tasks.push_back([&part, &by_key](std::size_t) {
      merge::introsort(part.begin(), part.end(), by_key);
    });
  }
  if (!pool.run_wave(sort_tasks))
    return Status::Internal("merge sort wave dropped: thread pool shut down");

  std::uint64_t total = 0;
  for (const auto& part : partitions_) total += part.size();
  results_.resize(total);

  merge::MergeStats local;
  if (plan.mode != core::MergeMode::kPairwise) {
    std::vector<std::span<const Result>> runs;
    runs.reserve(partitions_.size());
    for (const auto& part : partitions_)
      runs.push_back(std::span<const Result>(part.data(), part.size()));
    const std::size_t p = plan.mode == core::MergeMode::kPartitioned
                              ? plan.partitions
                              : 0;
    local = merge::parallel_pway_merge(pool, std::move(runs),
                                       results_.data(), by_key, p);
  } else {
    std::vector<std::span<Result>> runs;
    std::size_t offset = 0;
    for (auto& part : partitions_) {
      std::copy(part.begin(), part.end(), results_.begin() + offset);
      runs.push_back(std::span<Result>(results_.data() + offset, part.size()));
      offset += part.size();
    }
    local = merge::pairwise_merge(
        pool, std::move(runs),
        std::span<Result>(results_.data(), results_.size()), by_key);
  }
  partitions_.clear();
  if (stats != nullptr) *stats = std::move(local);
  return Status::Ok();
}

std::string PairCountApp::canonical_output() const {
  // Pair keys are unique, so merge order is canonical order. The key
  // contains a space but never a tab, keeping "key\tcount" parseable by the
  // downstream PMI join.
  std::string out;
  for (const auto& [pair, count] : results_) {
    out += pair;
    out += '\t';
    out += std::to_string(count);
    out += '\n';
  }
  return out;
}

}  // namespace supmr::apps
