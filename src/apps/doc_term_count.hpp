// Per-document term counts — a root stage of the TF-IDF chain
// (docs/graphs.md).
//
// The multi-file sibling of word count: map tokenizes every file of the
// coalesced chunk and folds ("<file_id>\t<word>", 1) into the hash
// container, so the reduce/merge output is the per-document term frequency
// table. Like the inverted index it REQUIRES intra-file chunking
// (MultiFileSource): file identity comes from the chunk's FileSpans and
// must survive coalescing. Canonical lines are "<file_id>\t<word>\t<count>"
// in composite-key order.
#pragma once

#include <span>
#include <string>
#include <utility>
#include <vector>

#include "containers/combiners.hpp"
#include "containers/combining.hpp"
#include "core/application.hpp"

namespace supmr::apps {

class DocTermCountApp final : public core::Application {
 public:
  using Result = std::pair<std::string, std::uint64_t>;

  void init(std::size_t num_map_threads) override;
  Status prepare_round(const ingest::IngestChunk& chunk) override;
  std::size_t round_tasks() const override { return tasks_.size(); }
  void map_task(std::size_t task, std::size_t thread_id) override;
  Status reduce(ThreadPool& pool, std::size_t num_partitions) override;
  Status merge(ThreadPool& pool, const core::MergePlan& plan,
               merge::MergeStats* stats) override;
  std::uint64_t result_count() const override { return results_.size(); }
  std::string canonical_output() const override;

  core::CombinerKind combiner_kind() const override {
    return core::CombinerKind::kSum;
  }
  Status use_container(core::ContainerMode mode) override {
    container_.select(mode);
    return Status::Ok();
  }
  core::CombineStats combine_stats() const override {
    return container_.stats();
  }

  // ("<file_id>\t<word>", count) sorted by the composite key.
  const std::vector<Result>& results() const { return results_; }

 private:
  struct FileTask {
    std::span<const char> text;
    std::uint32_t file_id = 0;
  };

  std::size_t num_mappers_ = 0;
  containers::SwitchedContainer<containers::SumCombiner<std::uint64_t>>
      container_;
  std::vector<std::vector<FileTask>> tasks_;
  std::vector<std::vector<Result>> partitions_;
  std::vector<Result> results_;
};

}  // namespace supmr::apps
