#include "apps/grep.hpp"

#include <algorithm>
#include <cassert>
#include <cstring>

#include "merge/introsort.hpp"
#include "merge/pairwise.hpp"
#include "merge/pway.hpp"

namespace supmr::apps {

std::uint64_t count_occurrences(std::string_view haystack,
                                std::string_view needle) {
  if (needle.empty() || haystack.size() < needle.size()) return 0;
  std::uint64_t count = 0;
  std::size_t pos = 0;
  while ((pos = haystack.find(needle, pos)) != std::string_view::npos) {
    ++count;
    pos += needle.size();  // non-overlapping
  }
  return count;
}

namespace {

// Splits text into at most `max_splits` pieces at line boundaries, so a line
// is never scanned by two mappers.
std::vector<std::span<const char>> split_lines(std::span<const char> text,
                                               std::size_t max_splits) {
  std::vector<std::span<const char>> splits;
  if (text.empty() || max_splits == 0) return splits;
  const std::size_t target = (text.size() + max_splits - 1) / max_splits;
  std::size_t begin = 0;
  while (begin < text.size()) {
    std::size_t end = std::min(begin + target, text.size());
    while (end < text.size() && text[end - 1] != '\n') ++end;
    splits.push_back(text.subspan(begin, end - begin));
    begin = end;
  }
  return splits;
}

}  // namespace

void GrepApp::init(std::size_t num_map_threads) {
  num_mappers_ = num_map_threads;
  container_.init(num_map_threads, /*capacity_hint=*/64);
  lines_per_thread_.assign(num_map_threads, 0);
  results_.clear();
  partitions_.clear();
}

Status GrepApp::prepare_round(const ingest::IngestChunk& chunk) {
  splits_ = split_lines(chunk.bytes(), num_mappers_);
  return Status::Ok();
}

void GrepApp::map_task(std::size_t task, std::size_t thread_id) {
  assert(task < splits_.size());
  std::span<const char> split = splits_[task];
  std::uint64_t lines = 0;
  std::size_t begin = 0;
  while (begin < split.size()) {
    const void* nl = std::memchr(split.data() + begin, '\n',
                                 split.size() - begin);
    const std::size_t end =
        nl ? static_cast<std::size_t>(static_cast<const char*>(nl) -
                                      split.data())
           : split.size();
    const std::string_view line(split.data() + begin, end - begin);
    for (const std::string& pattern : patterns_) {
      const std::uint64_t hits = count_occurrences(line, pattern);
      if (hits > 0) container_.emit(thread_id, pattern, hits);
    }
    ++lines;
    begin = end + 1;
  }
  lines_per_thread_[thread_id] += lines;
}

Status GrepApp::reduce(ThreadPool& pool, std::size_t num_partitions) {
  partitions_.assign(num_partitions, {});
  std::vector<std::function<void(std::size_t)>> tasks;
  for (std::size_t p = 0; p < num_partitions; ++p) {
    tasks.push_back([this, p, num_partitions](std::size_t) {
      partitions_[p] = container_.reduce_partition(p, num_partitions);
    });
  }
  if (!pool.run_wave(tasks))
    return Status::Internal("reduce wave dropped: thread pool shut down");
  return Status::Ok();
}

Status GrepApp::merge(ThreadPool& pool, const core::MergePlan& plan,
                      merge::MergeStats* stats) {
  (void)pool;
  (void)plan;  // a handful of patterns: a single sequential sort suffices
  results_.clear();
  for (auto& part : partitions_)
    results_.insert(results_.end(), part.begin(), part.end());
  merge::introsort(results_.begin(), results_.end(),
                   [](const Result& a, const Result& b) {
                     return a.first < b.first;
                   });
  partitions_.clear();
  if (stats != nullptr) *stats = merge::MergeStats{};
  return Status::Ok();
}

std::uint64_t GrepApp::lines_scanned() const {
  std::uint64_t n = 0;
  for (auto l : lines_per_thread_) n += l;
  return n;
}

std::string GrepApp::canonical_output() const {
  std::string out;
  for (const auto& [pattern, hits] : results_) {
    out += pattern;
    out += '\t';
    out += std::to_string(hits);
    out += '\n';
  }
  return out;
}

}  // namespace supmr::apps
