#include "apps/word_count.hpp"

#include <algorithm>
#include <cassert>

#include "apps/tokenize.hpp"
#include "merge/pairwise.hpp"
#include "merge/pway.hpp"
#include "merge/introsort.hpp"

namespace supmr::apps {

std::vector<std::span<const char>> split_text(std::span<const char> text,
                                              std::size_t max_splits) {
  std::vector<std::span<const char>> splits;
  if (text.empty() || max_splits == 0) return splits;
  const std::size_t target = (text.size() + max_splits - 1) / max_splits;
  std::size_t begin = 0;
  while (begin < text.size()) {
    std::size_t end = std::min(begin + target, text.size());
    // Never split mid-word: advance to the next non-word byte.
    while (end < text.size() && is_word_char(text[end])) ++end;
    splits.push_back(text.subspan(begin, end - begin));
    begin = end;
  }
  return splits;
}

void for_each_word(std::span<const char> text,
                   const std::function<void(std::string_view)>& fn) {
  tokenize_words(text, fn);
}

void WordCountApp::init(std::size_t num_map_threads) {
  num_mappers_ = num_map_threads;
  container_.init(num_map_threads, /*capacity_hint=*/4096);
  words_per_thread_.assign(num_map_threads, 0);
  results_.clear();
  partitions_.clear();
}

Status WordCountApp::prepare_round(const ingest::IngestChunk& chunk) {
  splits_ = split_text(chunk.bytes(), num_mappers_);
  return Status::Ok();
}

void WordCountApp::map_task(std::size_t task, std::size_t thread_id) {
  assert(task < splits_.size() && thread_id < num_mappers_);
  std::uint64_t words = 0;
  tokenize_words(splits_[task], [&](std::string_view word) {
    container_.emit(thread_id, word, std::uint64_t{1});
    ++words;
  });
  words_per_thread_[thread_id] += words;
}

Status WordCountApp::reduce(ThreadPool& pool, std::size_t num_partitions) {
  partitions_.assign(num_partitions, {});
  std::vector<std::function<void(std::size_t)>> tasks;
  tasks.reserve(num_partitions);
  for (std::size_t p = 0; p < num_partitions; ++p) {
    tasks.push_back([this, p, num_partitions](std::size_t) {
      partitions_[p] = container_.reduce_partition(p, num_partitions);
    });
  }
  if (!pool.run_wave(tasks))
    return Status::Internal("reduce wave dropped: thread pool shut down");
  return Status::Ok();
}

Status WordCountApp::merge(ThreadPool& pool, const core::MergePlan& plan,
                           merge::MergeStats* stats) {
  auto by_key = [](const Result& a, const Result& b) {
    return a.first < b.first;
  };

  // Sort each partition in parallel (run formation), partitions become the
  // sorted runs, then merge with the configured algorithm.
  std::vector<std::function<void(std::size_t)>> sort_tasks;
  for (auto& part : partitions_) {
    sort_tasks.push_back([&part, &by_key](std::size_t) {
      merge::introsort(part.begin(), part.end(), by_key);
    });
  }
  if (!pool.run_wave(sort_tasks))
    return Status::Internal("merge sort wave dropped: thread pool shut down");

  std::uint64_t total = 0;
  for (const auto& part : partitions_) total += part.size();
  results_.resize(total);

  merge::MergeStats local;
  if (plan.mode != core::MergeMode::kPairwise) {
    // kPWay and kPartitioned share the single-round p-way kernel: the hash
    // partitions are the sorted runs, and the key-space split happens inside
    // parallel_pway_merge. kPartitioned pins the worker count to the plan's
    // partition count (its reduce partitions are hash-sharded, not
    // key-range-sharded, so merge-time splitting is the partitioned path).
    std::vector<std::span<const Result>> runs;
    runs.reserve(partitions_.size());
    for (const auto& part : partitions_)
      runs.push_back(std::span<const Result>(part.data(), part.size()));
    const std::size_t p = plan.mode == core::MergeMode::kPartitioned
                              ? plan.partitions
                              : 0;  // 0 = pool-sized
    local = merge::parallel_pway_merge(pool, std::move(runs),
                                       results_.data(), by_key, p);
  } else {
    // Pairwise baseline: pack runs back-to-back into results_, then merge.
    std::vector<std::span<Result>> runs;
    std::size_t offset = 0;
    for (auto& part : partitions_) {
      std::copy(part.begin(), part.end(), results_.begin() + offset);
      runs.push_back(std::span<Result>(results_.data() + offset, part.size()));
      offset += part.size();
    }
    local = merge::pairwise_merge(
        pool, std::move(runs),
        std::span<Result>(results_.data(), results_.size()), by_key);
  }
  partitions_.clear();
  if (stats != nullptr) *stats = std::move(local);
  return Status::Ok();
}

std::uint64_t WordCountApp::words_mapped() const {
  std::uint64_t n = 0;
  for (auto w : words_per_thread_) n += w;
  return n;
}

std::string WordCountApp::canonical_output() const {
  // Keys are unique, so the merge order IS the canonical order: one
  // "word\tcount\n" line per result, in results_ order.
  std::string out;
  for (const auto& [word, count] : results_) {
    out += word;
    out += '\t';
    out += std::to_string(count);
    out += '\n';
  }
  return out;
}

}  // namespace supmr::apps
