// Scatter — the bucketing stage of the multi-round sample-sort chain
// (docs/graphs.md).
//
// Round one of a sample-sort: route every fixed-width record into a
// key-range bucket and emit the records grouped by bucket, leaving the
// within-bucket ordering to the downstream TeraSortApp stage. Splitters are
// fixed-prefix (first key byte, evenly split into `buckets` ranges) rather
// than sampled from the first chunk — sampling would make the routing
// depend on chunk geometry, and a stage's canonical output must be
// chunking-independent. Within a bucket records keep their input order
// (ties broken by the global record index, recovered from the chunk's
// device offset), so the output is a deterministic permutation of the
// input: still valid CrlfFormat records for the next stage to ingest.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/application.hpp"

namespace supmr::apps {

struct ScatterOptions {
  std::uint32_t key_bytes = 10;
  std::uint32_t record_bytes = 100;  // includes the trailing "\r\n"
  std::uint32_t buckets = 16;
};

class ScatterApp final : public core::Application {
 public:
  explicit ScatterApp(ScatterOptions options = {}) : options_(options) {}

  void init(std::size_t num_map_threads) override;
  Status prepare_round(const ingest::IngestChunk& chunk) override;
  std::size_t round_tasks() const override { return tasks_.size(); }
  void map_task(std::size_t task, std::size_t thread_id) override;
  Status reduce(ThreadPool& pool, std::size_t num_partitions) override;
  Status merge(ThreadPool& pool, const core::MergePlan& plan,
               merge::MergeStats* stats) override;
  std::uint64_t result_count() const override { return records_; }
  std::string canonical_output() const override;

  // Records concatenated in (bucket, input order) — result_count() *
  // record_bytes bytes, valid after merge.
  const std::vector<char>& scattered() const { return output_; }
  std::uint64_t malformed_records() const { return malformed_; }

 private:
  struct Routed {
    std::uint64_t order = 0;  // bucket << 48 | global record index
    std::uint64_t src = 0;    // byte offset of the record in staged_
  };
  struct RoundTask {
    const char* src = nullptr;
    std::uint64_t chunk_offset = 0;  // device offset of the first record
    std::uint64_t num_records = 0;
    std::uint64_t stage_at = 0;      // destination offset in staged_
  };

  ScatterOptions options_;
  std::size_t num_mappers_ = 0;
  std::vector<RoundTask> tasks_;
  std::vector<std::vector<Routed>> stripes_;  // per-thread routing entries
  std::vector<char> staged_;                  // record bytes, arrival order
  std::vector<Routed> routed_;
  std::vector<char> output_;
  std::uint64_t records_ = 0;
  std::uint64_t malformed_ = 0;
};

}  // namespace supmr::apps
