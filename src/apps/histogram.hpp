// Histogram — dense-key application on the FixedKvArray container.
//
// Input: newline-separated ASCII integers. Map parses each value and folds
// it into its bin on the thread's dense stripe (a direct array index — no
// hashing, the Phoenix++ array-container workload). Reduce folds stripes by
// bin range in parallel; there is nothing to merge (bins are already
// ordered), so merge is a no-op — the opposite extreme from sort on the
// phase-complexity spectrum of Conclusion 1.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "containers/combiners.hpp"
#include "containers/combining.hpp"
#include "containers/fixed_kv_array.hpp"
#include "core/application.hpp"

namespace supmr::apps {

struct HistogramOptions {
  std::int64_t lo = 0;
  std::int64_t hi = 256;   // exclusive
  std::size_t bins = 256;
};

class HistogramApp final : public core::Application {
 public:
  explicit HistogramApp(HistogramOptions options = {})
      : options_(options) {}

  void init(std::size_t num_map_threads) override;
  Status prepare_round(const ingest::IngestChunk& chunk) override;
  std::size_t round_tasks() const override { return splits_.size(); }
  void map_task(std::size_t task, std::size_t thread_id) override;
  Status reduce(ThreadPool& pool, std::size_t num_partitions) override;
  Status merge(ThreadPool& pool, const core::MergePlan& plan,
               merge::MergeStats* stats) override;
  std::uint64_t result_count() const override { return counts_.size(); }
  std::string canonical_output() const override;

  core::CombinerKind combiner_kind() const override {
    return core::CombinerKind::kSum;
  }
  // Dense bins plus the parsed/dropped trailers: every input slice yields
  // the same line labels, so node outputs fold element-wise.
  core::ShardKind shard_kind() const override {
    return core::ShardKind::kAligned;
  }
  Status use_container(core::ContainerMode mode) override;
  core::CombineStats combine_stats() const override;

  // Per-bin counts, valid after reduce.
  const std::vector<std::uint64_t>& counts() const { return counts_; }
  std::uint64_t values_parsed() const;
  std::uint64_t values_out_of_range() const;

  std::size_t bin_of(std::int64_t value) const;

 private:
  bool combining() const {
    return container_mode_ == core::ContainerMode::kCombining;
  }

  HistogramOptions options_;
  std::size_t num_mappers_ = 0;
  // Default container: dense per-thread bin stripes. Combining mode swaps
  // in the hash-aggregate keyed by the bin index (fixed 8-byte big-endian
  // encoding, so keys are unique per bin and decode back losslessly) — for
  // histogram this is a fold-accounting/uniformity choice, not a volume win,
  // since the dense array already folds at emit time.
  core::ContainerMode container_mode_ = core::ContainerMode::kDefault;
  containers::FixedKvArray<containers::SumCombiner<std::uint64_t>> container_;
  containers::CombiningContainer<containers::SumCombiner<std::uint64_t>>
      combining_;
  std::vector<std::span<const char>> splits_;
  std::vector<std::uint64_t> parsed_per_thread_;
  std::vector<std::uint64_t> dropped_per_thread_;
  std::vector<std::uint64_t> counts_;
};

}  // namespace supmr::apps
